// Package core orchestrates the real-mode EO-ML workflow: the five-stage
// pipeline of the paper (download → preprocess → monitor & trigger →
// inference → shipment) executed against actual bytes — a LAADS-style
// archive over HTTP, HDF-lite granules on disk, Parsl-style elastic
// workers doing real tile extraction, a Globus-Flows-style inference
// flow, and a checksum-verified transfer to the destination filesystem.
//
// Users declare a run in a YAML file (parsed by internal/yamlite), just
// as the paper's users configure their queries, endpoints, products, and
// time spans.
package core

import (
	"fmt"
	"os"
	"time"

	"github.com/eoml/eoml/internal/aicca"
	"github.com/eoml/eoml/internal/modis"
	"github.com/eoml/eoml/internal/yamlite"
)

// Config declares one workflow run.
type Config struct {
	// Observation selection.
	Satellite modis.Satellite
	Year      int
	DOY       int
	// Granules selects five-minute slots (0..287); empty means the whole
	// day.
	Granules []int

	// Archive access.
	ArchiveURL   string
	ArchiveToken string

	// Directories (created if missing).
	DataDir   string // downloaded granules
	TileDir   string // preprocessed tile NetCDF files
	OutboxDir string // labeled files staged for shipment
	DestDir   string // destination filesystem ("Orion")

	// Stage parallelism (the paper's Fig. 6 run uses 3 / 32 / 1).
	DownloadWorkers   int
	PreprocessWorkers int
	InferenceWorkers  int

	// Tile extraction.
	TilePixels   int // tile edge in granule pixels
	MinCloudFrac float64

	// Monitor.
	PollInterval time.Duration

	// StallTimeout caps how long the run waits for inference to catch up
	// with the expected tile-file count before declaring a stall.
	StallTimeout time.Duration

	// Inference batching: tiles from different watched files are
	// coalesced into one encode batch, flushed at BatchTiles tiles or
	// BatchDelay after the first pending tile, whichever comes first.
	BatchTiles int
	BatchDelay time.Duration

	// Precision selects the encode arithmetic for inference: "float32"
	// (the default, full-precision GEMM) or "int8" (symmetric quantized
	// GEMM — faster, with a test-pinned label-flip bound).
	Precision string

	// Model artifacts; when both are set the labeler is loaded from disk
	// instead of being supplied programmatically.
	ModelPath    string
	CodebookPath string

	// MetricsAddr, when non-empty, is the host:port cmd/eoml serves
	// /metrics and /healthz on for the lifetime of the run.
	MetricsAddr string

	// Distribution selects where preprocess and inference execute:
	// "local" (default — in-process Parsl pool and batcher, unchanged)
	// or "fleet" (tasks leased to registered eoml-worker processes via
	// the engine's fleet coordinator). Fleet mode requires model and
	// codebook paths, since workers load weights from shared storage.
	Distribution string
}

// Distribution modes.
const (
	DistributionLocal = "local"
	DistributionFleet = "fleet"
)

// DefaultConfig returns a runnable baseline (archive URL and directories
// must still be set).
func DefaultConfig() Config {
	return Config{
		Satellite:         modis.Terra,
		Year:              2022,
		DOY:               1,
		DownloadWorkers:   3,
		PreprocessWorkers: 8,
		InferenceWorkers:  1,
		TilePixels:        16,
		MinCloudFrac:      0.3,
		PollInterval:      50 * time.Millisecond,
		StallTimeout:      5 * time.Minute,
		BatchTiles:        256,
		BatchDelay:        20 * time.Millisecond,
		Precision:         string(aicca.PrecisionFloat32),
		Distribution:      DistributionLocal,
	}
}

// Validate checks the configuration.
func (c *Config) Validate() error {
	if c.Year < 2000 || c.Year > 2100 {
		return fmt.Errorf("core: year %d out of range", c.Year)
	}
	if c.DOY < 1 || c.DOY > 366 {
		return fmt.Errorf("core: day-of-year %d out of range", c.DOY)
	}
	for _, g := range c.Granules {
		if g < 0 || g >= modis.GranulesPerDay {
			return fmt.Errorf("core: granule index %d out of range", g)
		}
	}
	if c.ArchiveURL == "" {
		return fmt.Errorf("core: archive URL required")
	}
	for name, dir := range map[string]string{
		"data": c.DataDir, "tile": c.TileDir, "outbox": c.OutboxDir, "dest": c.DestDir,
	} {
		if dir == "" {
			return fmt.Errorf("core: %s directory required", name)
		}
	}
	if c.DownloadWorkers <= 0 || c.PreprocessWorkers <= 0 || c.InferenceWorkers <= 0 {
		return fmt.Errorf("core: worker counts must be positive")
	}
	if c.TilePixels < 4 {
		return fmt.Errorf("core: tile pixels %d too small", c.TilePixels)
	}
	if c.MinCloudFrac < 0 || c.MinCloudFrac > 1 {
		return fmt.Errorf("core: cloud fraction %v out of [0,1]", c.MinCloudFrac)
	}
	if c.PollInterval <= 0 {
		return fmt.Errorf("core: poll interval must be positive")
	}
	if c.StallTimeout <= 0 {
		return fmt.Errorf("core: stall timeout must be positive")
	}
	if c.BatchTiles <= 0 {
		return fmt.Errorf("core: batch tiles must be positive")
	}
	if c.BatchDelay <= 0 {
		return fmt.Errorf("core: batch delay must be positive")
	}
	if _, err := aicca.ParsePrecision(c.Precision); err != nil {
		return fmt.Errorf("core: %w", err)
	}
	switch c.Distribution {
	case "", DistributionLocal:
	case DistributionFleet:
		if c.ModelPath == "" || c.CodebookPath == "" {
			return fmt.Errorf("core: distribution %q requires model.weights and model.codebook (workers load artifacts from shared storage)", c.Distribution)
		}
	default:
		return fmt.Errorf("core: unknown distribution %q (want %q or %q)", c.Distribution, DistributionLocal, DistributionFleet)
	}
	return nil
}

// Products returns the three products the pipeline downloads.
func (c *Config) Products() []modis.Product {
	return []modis.Product{
		{Satellite: c.Satellite, Kind: modis.L1B},
		{Satellite: c.Satellite, Kind: modis.Geo},
		{Satellite: c.Satellite, Kind: modis.Cloud},
	}
}

// GranuleIDs expands the configured granule selection.
func (c *Config) GranuleIDs() []modis.GranuleID {
	indices := c.Granules
	if len(indices) == 0 {
		indices = make([]int, modis.GranulesPerDay)
		for i := range indices {
			indices[i] = i
		}
	}
	out := make([]modis.GranuleID, 0, len(indices))
	for _, idx := range indices {
		out = append(out, modis.GranuleID{Satellite: c.Satellite, Year: c.Year, DOY: c.DOY, Index: idx})
	}
	return out
}

// LoadConfig parses a YAML workflow declaration. Example:
//
//	satellite: Terra
//	year: 2022
//	doy: 1
//	granules: [144, 150, 156]
//	archive:
//	  url: http://localhost:8900
//	  token: secret
//	paths:
//	  data: /scratch/eoml/data
//	  tiles: /scratch/eoml/tiles
//	  outbox: /scratch/eoml/outbox
//	  dest: /orion/eoml
//	workers:
//	  download: 3
//	  preprocess: 32
//	  inference: 1
//	tile:
//	  pixels: 16
//	  min_cloud_fraction: 0.3
//	poll_interval_ms: 50
//	stall_timeout_ms: 300000
//	batch:
//	  tiles: 256
//	  delay_ms: 20
//	precision: float32
//	model:
//	  weights: model.hdf
//	  codebook: codebook.hdf
//	metrics_addr: localhost:9090
func LoadConfig(data []byte) (*Config, error) {
	doc, err := yamlite.ParseMap(data)
	if err != nil {
		return nil, err
	}
	cfg := DefaultConfig()

	if v, ok := doc["satellite"].(string); ok {
		switch v {
		case "Terra", "terra":
			cfg.Satellite = modis.Terra
		case "Aqua", "aqua":
			cfg.Satellite = modis.Aqua
		default:
			return nil, fmt.Errorf("core: unknown satellite %q", v)
		}
	}
	if v, ok := doc["year"].(int64); ok {
		cfg.Year = int(v)
	}
	if v, ok := doc["doy"].(int64); ok {
		cfg.DOY = int(v)
	}
	if list, ok := doc["granules"].([]any); ok {
		for _, item := range list {
			n, ok := item.(int64)
			if !ok {
				return nil, fmt.Errorf("core: granule index %v is not an integer", item)
			}
			cfg.Granules = append(cfg.Granules, int(n))
		}
	}
	if m, ok := doc["archive"].(map[string]any); ok {
		if v, ok := m["url"].(string); ok {
			cfg.ArchiveURL = v
		}
		if v, ok := m["token"].(string); ok {
			cfg.ArchiveToken = v
		}
	}
	if m, ok := doc["paths"].(map[string]any); ok {
		if v, ok := m["data"].(string); ok {
			cfg.DataDir = v
		}
		if v, ok := m["tiles"].(string); ok {
			cfg.TileDir = v
		}
		if v, ok := m["outbox"].(string); ok {
			cfg.OutboxDir = v
		}
		if v, ok := m["dest"].(string); ok {
			cfg.DestDir = v
		}
	}
	if m, ok := doc["workers"].(map[string]any); ok {
		if v, ok := m["download"].(int64); ok {
			cfg.DownloadWorkers = int(v)
		}
		if v, ok := m["preprocess"].(int64); ok {
			cfg.PreprocessWorkers = int(v)
		}
		if v, ok := m["inference"].(int64); ok {
			cfg.InferenceWorkers = int(v)
		}
	}
	if m, ok := doc["tile"].(map[string]any); ok {
		if v, ok := m["pixels"].(int64); ok {
			cfg.TilePixels = int(v)
		}
		switch v := m["min_cloud_fraction"].(type) {
		case float64:
			cfg.MinCloudFrac = v
		case int64:
			cfg.MinCloudFrac = float64(v)
		}
	}
	if v, ok := doc["poll_interval_ms"].(int64); ok {
		cfg.PollInterval = time.Duration(v) * time.Millisecond
	}
	if v, ok := doc["stall_timeout_ms"].(int64); ok {
		cfg.StallTimeout = time.Duration(v) * time.Millisecond
	}
	if m, ok := doc["batch"].(map[string]any); ok {
		if v, ok := m["tiles"].(int64); ok {
			cfg.BatchTiles = int(v)
		}
		if v, ok := m["delay_ms"].(int64); ok {
			cfg.BatchDelay = time.Duration(v) * time.Millisecond
		}
	}
	if v, ok := doc["precision"].(string); ok {
		cfg.Precision = v
	}
	if m, ok := doc["model"].(map[string]any); ok {
		if v, ok := m["weights"].(string); ok {
			cfg.ModelPath = v
		}
		if v, ok := m["codebook"].(string); ok {
			cfg.CodebookPath = v
		}
	}
	if v, ok := doc["metrics_addr"].(string); ok {
		cfg.MetricsAddr = v
	}
	if v, ok := doc["distribution"].(string); ok {
		cfg.Distribution = v
	}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &cfg, nil
}

// ConfigKeys lists every YAML key LoadConfig understands, nested keys
// in dotted form. DESIGN.md's config table and cmd/eoml's sample config
// are tested against this list, so a key added to LoadConfig without an
// entry here (or an entry without parsing code) fails the build — see
// TestConfigKeysMatchParser.
func ConfigKeys() []string {
	return []string{
		"satellite",
		"year",
		"doy",
		"granules",
		"archive.url",
		"archive.token",
		"paths.data",
		"paths.tiles",
		"paths.outbox",
		"paths.dest",
		"workers.download",
		"workers.preprocess",
		"workers.inference",
		"tile.pixels",
		"tile.min_cloud_fraction",
		"poll_interval_ms",
		"stall_timeout_ms",
		"batch.tiles",
		"batch.delay_ms",
		"precision",
		"model.weights",
		"model.codebook",
		"metrics_addr",
		"distribution",
	}
}

// LoadConfigFile reads and parses a YAML config from disk.
func LoadConfigFile(path string) (*Config, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	cfg, err := LoadConfig(data)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return cfg, nil
}
