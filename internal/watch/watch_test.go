package watch

import (
	"context"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"
)

func write(t *testing.T, dir, name string, size int) string {
	t.Helper()
	path := filepath.Join(dir, name)
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, make([]byte, size), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestScanOnceRequiresTwoStableScans(t *testing.T) {
	dir := t.TempDir()
	c, err := NewCrawler(Config{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	write(t, dir, "tiles.nc", 100)
	ev, err := c.ScanOnce()
	if err != nil {
		t.Fatal(err)
	}
	if len(ev) != 0 {
		t.Fatalf("first scan triggered %v", ev)
	}
	ev, err = c.ScanOnce()
	if err != nil {
		t.Fatal(err)
	}
	if len(ev) != 1 || ev[0].Size != 100 {
		t.Fatalf("second scan: %v", ev)
	}
	// Never re-triggered.
	ev, err = c.ScanOnce()
	if err != nil {
		t.Fatal(err)
	}
	if len(ev) != 0 {
		t.Fatalf("third scan re-triggered %v", ev)
	}
}

func TestGrowingFileNotTriggered(t *testing.T) {
	dir := t.TempDir()
	c, _ := NewCrawler(Config{Dir: dir})
	write(t, dir, "grow.nc", 10)
	c.ScanOnce()
	write(t, dir, "grow.nc", 20) // grew between scans
	ev, err := c.ScanOnce()
	if err != nil {
		t.Fatal(err)
	}
	if len(ev) != 0 {
		t.Fatalf("growing file triggered: %v", ev)
	}
	ev, _ = c.ScanOnce()
	if len(ev) != 1 || ev[0].Size != 20 {
		t.Fatalf("stabilized file not triggered: %v", ev)
	}
}

func TestPatternAndSuffixFilters(t *testing.T) {
	dir := t.TempDir()
	c, _ := NewCrawler(Config{Dir: dir, Pattern: "*.nc"})
	write(t, dir, "keep.nc", 5)
	write(t, dir, "skip.txt", 5)
	write(t, dir, "partial.nc.part", 5)
	write(t, dir, "moving.nc.transferring", 5)
	c.ScanOnce()
	ev, err := c.ScanOnce()
	if err != nil {
		t.Fatal(err)
	}
	if len(ev) != 1 || filepath.Base(ev[0].Path) != "keep.nc" {
		t.Fatalf("events = %v", ev)
	}
}

func TestRecursiveScan(t *testing.T) {
	dir := t.TempDir()
	c, _ := NewCrawler(Config{Dir: dir})
	write(t, dir, "a/b/deep.nc", 7)
	c.ScanOnce()
	ev, _ := c.ScanOnce()
	if len(ev) != 1 {
		t.Fatalf("nested file not found: %v", ev)
	}
}

func TestRunTriggersCallback(t *testing.T) {
	dir := t.TempDir()
	c, _ := NewCrawler(Config{Dir: dir, Interval: 5 * time.Millisecond})
	var mu sync.Mutex
	var got []string
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		done <- c.Run(ctx, func(events []Event) error {
			mu.Lock()
			for _, e := range events {
				got = append(got, filepath.Base(e.Path))
			}
			n := len(got)
			mu.Unlock()
			if n >= 2 {
				cancel()
			}
			return nil
		})
	}()
	write(t, dir, "one.nc", 1)
	time.Sleep(20 * time.Millisecond)
	write(t, dir, "two.nc", 2)
	select {
	case err := <-done:
		if err != context.Canceled {
			t.Fatalf("run err = %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("crawler never saw both files")
	}
	mu.Lock()
	defer mu.Unlock()
	if len(got) != 2 {
		t.Fatalf("triggered %v", got)
	}
}

func TestDrainUntilIdle(t *testing.T) {
	dir := t.TempDir()
	c, _ := NewCrawler(Config{Dir: dir, Interval: time.Millisecond})
	write(t, dir, "a.nc", 1)
	write(t, dir, "b.nc", 2)
	events, err := c.DrainUntilIdle(context.Background(), 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(events) != 2 {
		t.Fatalf("drained %v", events)
	}
}

func TestConfigValidation(t *testing.T) {
	if _, err := NewCrawler(Config{}); err == nil {
		t.Fatal("empty dir accepted")
	}
}

func TestVanishedFileSkipped(t *testing.T) {
	dir := t.TempDir()
	c, _ := NewCrawler(Config{Dir: dir})
	p := write(t, dir, "ghost.nc", 3)
	c.ScanOnce()
	os.Remove(p)
	if _, err := c.ScanOnce(); err != nil {
		t.Fatalf("scan failed on removed file: %v", err)
	}
}
