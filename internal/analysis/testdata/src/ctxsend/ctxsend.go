// Package ctxsend is the golden fixture for the ctxsend analyzer.
package ctxsend

import "context"

func badBare(ch chan int) {
	ch <- 1 // want "channel send outside a select"
	<-ch    // want "channel receive outside a select"
}

func badRange(ch chan int) {
	for range ch { // want "range over a channel"
	}
}

func badSelectWithoutDone(ch chan int, other chan struct{}) {
	select {
	case ch <- 1: // want "channel send outside a select"
	case <-other: // want "channel receive outside a select"
	}
}

func badInCaseBody(ctx context.Context, ch chan int) {
	select {
	case <-ctx.Done():
		ch <- 1 // want "channel send outside a select"
	}
}

func goodSelectDone(ctx context.Context, ch chan int) {
	select {
	case ch <- 1:
	case <-ctx.Done():
	}
	select {
	case v := <-ch:
		_ = v
	case <-ctx.Done():
	}
}

func goodSelectDefault(ch chan int) {
	select {
	case ch <- 1:
	default:
	}
}

func goodIgnoredBoundedJoin(done chan struct{}) {
	//eomlvet:ignore ctxsend bounded join: the producer closes done unconditionally before exiting
	<-done
}
