package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"strings"
)

// LockGuard mechanizes the invariant every shared structure in the
// control plane (RunRegistry, QuotaPool, the metric registries) holds
// by convention only: struct fields guarded by a sibling sync.Mutex /
// sync.RWMutex must be read and written with that mutex held.
//
// A field becomes guarded two ways:
//
//   - declaration: its doc or line comment says `guarded by <mu>`,
//     naming a sibling mutex field — the explicit contract;
//   - inference: for structs with exactly one mutex field, a field
//     whose accesses are in the clear majority (and at least twice)
//     performed under that mutex is treated as guarded — the "you
//     locked it eleven times and forgot once" bug shape.
//
// Checking is interprocedural: a method that touches guarded state
// without locking is not flagged at the access if every call site in
// the module holds the mutex (the `evictLocked`-style unexported
// helper), but any caller chain that reaches the access without the
// lock is reported with the path. Constructor scopes — functions that
// build the struct with a composite literal — are exempt: the value
// is not yet shared.
//
// RWMutex semantics: writes need the write lock; reads accept RLock.
var LockGuard = &Analyzer{
	Name: "lockguard",
	Doc: "struct fields guarded by a sibling mutex (declared `guarded by <mu>` " +
		"or inferred from majority-of-accesses) must be accessed with it held, " +
		"on every interprocedural path",
	AppliesTo: internalOnly,
	RunModule: runLockGuard,
}

var guardedByRE = regexp.MustCompile(`guarded by (\w+)`)

// guardedStruct is one struct with a mutex and guarded fields.
type guardedStruct struct {
	name    *types.TypeName
	pkg     *Package
	mutexes []*types.Var          // sibling mutex fields, declaration order
	guards  map[*types.Var]*guard // guarded field -> its guard
}

type guard struct {
	mu       *types.Var // the protecting mutex field
	declared bool       // true: doc comment; false: inferred by vote
}

// fieldAccess is one read or write of a candidate field.
type fieldAccess struct {
	pos   token.Pos
	field *types.Var
	owner *guardedStruct
	write bool
	held  lockMode // strongest hold on the owner's mutex at the access
	node  *FuncNode
	scope ast.Node // the *ast.FuncDecl or *ast.FuncLit owning the access
	inLit bool     // access happens inside a function literal scope
}

func runLockGuard(pass *ModulePass) {
	// Phase 1: candidate structs across all packages.
	structs := collectGuardedStructs(pass)
	if len(structs) == 0 {
		return
	}
	fieldOwner := map[*types.Var]*guardedStruct{}
	for _, gs := range structs {
		under := gs.name.Type().Underlying().(*types.Struct)
		for i := 0; i < under.NumFields(); i++ {
			fieldOwner[under.Field(i)] = gs
		}
	}

	// Phase 2: one simulation pass over every declared function,
	// recording candidate-field accesses with their held state, lock
	// activity per function, and the held state at every call site
	// (for the interprocedural pass).
	var accesses []*fieldAccess
	votes := map[*types.Var][2]int{}  // field -> [locked, unlocked] votes
	written := map[*types.Var]bool{}  // field has a tracked (non-ctor) write
	litHeld := map[ast.Node]heldSet{} // FuncLit -> held set at its creation
	heldAtCall := map[token.Pos]heldSet{}
	goCall := map[token.Pos]bool{}
	for _, node := range pass.Graph.Declared {
		node := node
		writes := writeTargets(node.Decl)
		ctors := constructedTypes(node.Pkg.Info, node.Decl)
		locksAny := map[*types.Var]bool{} // mutex fields this function locks
		var local []*fieldAccess
		simulateLocks(node.Decl, node.Pkg.Info, func(n ast.Node, held heldSet, flags visitFlags) {
			switch n := n.(type) {
			case *ast.FuncLit:
				// A literal created while the lock is held is assumed to run
				// under it (the sort.Slice-comparator-under-Lock pattern); a
				// literal launched as a goroutine inherits nothing.
				if !flags.Go {
					litHeld[n] = held.clone()
				}
			case *ast.CallExpr:
				snap := held.clone()
				heldAtCall[n.Pos()] = snap
				if flags.Go {
					goCall[n.Pos()] = true
				}
				if key, op := lockOpOf(node.Pkg.Info, n); op == opLock || op == opRLock {
					if mu, ok := key.field.(*types.Var); ok {
						locksAny[mu] = true
					}
				}
			case *ast.SelectorExpr:
				fv, ok := node.Pkg.Info.ObjectOf(n.Sel).(*types.Var)
				if !ok || !fv.IsField() {
					return
				}
				gs, ok := fieldOwner[fv]
				if !ok || ctors[gs.name] {
					return
				}
				if writes[n] {
					written[fv] = true
				}
				local = append(local, &fieldAccess{
					pos:   n.Sel.Pos(),
					field: fv,
					owner: gs,
					write: writes[n],
					held:  heldOn(held, gs.mutexes),
					node:  node,
					scope: flags.Scope,
					inLit: flags.Scope != node.Decl,
				})
			}
		})
		// Votes for inference come only from functions that manipulate
		// the struct's mutex themselves: a lock-free helper (called with
		// the lock held by its caller) must not dilute the majority.
		for _, a := range local {
			if len(a.owner.mutexes) == 1 && locksAny[a.owner.mutexes[0]] {
				held := a.held
				if a.inLit {
					if lh, ok := litHeld[a.scope]; ok {
						if m := heldOnField(lh, a.owner.mutexes[0]); m > held {
							held = m
						}
					}
				}
				v := votes[a.field]
				if held > 0 {
					v[0]++
				} else {
					v[1]++
				}
				votes[a.field] = v
			}
		}
		accesses = append(accesses, local...)
	}

	// Phase 3: finalize guards — declared ones always, inferred ones by
	// clear majority (≥2 locked accesses, strictly more locked than not).
	// Inference also requires a tracked write: a field only ever read
	// post-construction is immutable and needs no guard, and channel
	// fields synchronize themselves (the mutex guards the close protocol,
	// not the sends).
	for _, gs := range structs {
		under := gs.name.Type().Underlying().(*types.Struct)
		for i := 0; i < under.NumFields(); i++ {
			fv := under.Field(i)
			if _, already := gs.guards[fv]; already || isMutexType(fv.Type()) {
				continue
			}
			if len(gs.mutexes) != 1 || !written[fv] {
				continue
			}
			if _, isChan := fv.Type().Underlying().(*types.Chan); isChan {
				continue
			}
			if v := votes[fv]; v[0] >= 2 && v[0] > v[1] {
				gs.guards[fv] = &guard{mu: gs.mutexes[0], declared: false}
			}
		}
	}

	// Phase 4: judge every access to a guarded field. An in-function
	// unlocked access makes the function a suspect; the suspicion walks
	// up the call graph until a call site holds the mutex (satisfied) or
	// the chain leaves the module / hits a goroutine launch (reported).
	reported := map[token.Pos]bool{}
	for _, a := range accesses {
		g, guarded := a.owner.guards[a.field]
		if !guarded || reported[a.pos] {
			continue
		}
		need := holdRead
		if a.write {
			need = holdWrite
		}
		if a.held >= need {
			continue
		}
		if !pass.InScope(a.node.Pkg) {
			continue
		}
		if a.inLit {
			// A literal created with the lock held runs under it for our
			// purposes (synchronous callbacks like sort comparators);
			// otherwise it is an anonymous scope with unknowable call
			// sites and must take the lock itself.
			if lh, ok := litHeld[a.scope]; ok && heldOnField(lh, g.mu) >= need {
				continue
			}
			report(pass, a, g, "in a function literal inside "+funcLabel(a.node.Fn))
			reported[a.pos] = true
			continue
		}
		if chain, bad := unlockedPath(a.node, g.mu, need, heldAtCall, goCall); bad {
			report(pass, a, g, chain)
			reported[a.pos] = true
		}
	}
}

// report emits one lockguard diagnostic.
func report(pass *ModulePass, a *fieldAccess, g *guard, how string) {
	kind := "read"
	if a.write {
		kind = "written"
	}
	basis := "declared `guarded by " + g.mu.Name() + "`"
	if !g.declared {
		basis = "inferred guarded by " + g.mu.Name() + " (majority of accesses hold it)"
	}
	pass.Reportf(a.pos, "%s.%s is %s without holding %s (%s); %s",
		a.owner.name.Name(), a.field.Name(), kind, g.mu.Name(), basis, how)
}

// unlockedPath walks caller chains from fn looking for a path that
// reaches it without mu held at the call site. Returns a rendered
// chain and true when one exists; false when every path into fn locks
// first. A function with no in-module callers is itself an unlocked
// entry point.
func unlockedPath(fn *FuncNode, mu *types.Var, need lockMode, heldAtCall map[token.Pos]heldSet, goCall map[token.Pos]bool) (string, bool) {
	type frame struct {
		node  *FuncNode
		trail []string
	}
	seen := map[*FuncNode]bool{fn: true}
	queue := []frame{{node: fn, trail: []string{funcLabel(fn.Fn)}}}
	for len(queue) > 0 {
		f := queue[0]
		queue = queue[1:]
		if len(f.node.In) == 0 {
			if f.node == fn {
				return "in " + funcLabel(fn.Fn) + ", which never locks it", true
			}
			return "reached unlocked via " + strings.Join(reverse(f.trail), " → "), true
		}
		for _, site := range f.node.In {
			if heldOnField(heldAtCall[site.Pos], mu) >= need && !goCall[site.Pos] {
				continue // this caller holds the lock across the call
			}
			caller := site.Caller
			if caller.Decl == nil {
				return "reached unlocked via " + strings.Join(reverse(f.trail), " → "), true
			}
			if goCall[site.Pos] {
				// `go helper()` — even a held lock at launch does not
				// cover the goroutine's execution.
				return "launched as a goroutine by " + funcLabel(caller.Fn) +
					" (a held lock does not cover the goroutine)", true
			}
			if seen[caller] || len(f.trail) > 8 {
				continue
			}
			seen[caller] = true
			queue = append(queue, frame{node: caller, trail: append(append([]string{}, f.trail...), funcLabel(caller.Fn))})
		}
	}
	return "", false
}

func reverse(s []string) []string {
	out := make([]string, len(s))
	for i, v := range s {
		out[len(s)-1-i] = v
	}
	return out
}

// heldOn reports the strongest hold on any of the struct's mutexes.
func heldOn(held heldSet, mutexes []*types.Var) lockMode {
	var best lockMode
	for _, mu := range mutexes {
		if m := heldOnField(held, mu); m > best {
			best = m
		}
	}
	return best
}

// heldOnField reports the strongest hold whose key selects the given
// mutex field (any base object — the simulation cannot always prove
// aliasing, and same-field-same-type is the useful approximation).
func heldOnField(held heldSet, mu *types.Var) lockMode {
	var best lockMode
	for k, m := range held {
		if k.field == types.Object(mu) && m > best {
			best = m
		}
	}
	return best
}

// collectGuardedStructs finds every struct declaring a sibling mutex
// field, with `guarded by <mu>` comments resolved to declared guards.
func collectGuardedStructs(pass *ModulePass) []*guardedStruct {
	var out []*guardedStruct
	for _, pkg := range pass.Pkgs {
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				gd, ok := decl.(*ast.GenDecl)
				if !ok || gd.Tok != token.TYPE {
					continue
				}
				for _, spec := range gd.Specs {
					ts, ok := spec.(*ast.TypeSpec)
					if !ok {
						continue
					}
					st, ok := ts.Type.(*ast.StructType)
					if !ok {
						continue
					}
					tn, ok := pkg.Info.Defs[ts.Name].(*types.TypeName)
					if !ok {
						continue
					}
					gs := buildGuardedStruct(pass, pkg, tn, st)
					if gs != nil {
						out = append(out, gs)
					}
				}
			}
		}
	}
	return out
}

func buildGuardedStruct(pass *ModulePass, pkg *Package, tn *types.TypeName, st *ast.StructType) *guardedStruct {
	gs := &guardedStruct{name: tn, pkg: pkg, guards: map[*types.Var]*guard{}}
	byName := map[string]*types.Var{}
	for _, fld := range st.Fields.List {
		for _, name := range fld.Names {
			fv, ok := pkg.Info.Defs[name].(*types.Var)
			if !ok {
				continue
			}
			byName[name.Name] = fv
			if isMutexType(fv.Type()) {
				gs.mutexes = append(gs.mutexes, fv)
			}
		}
	}
	if len(gs.mutexes) == 0 {
		return nil
	}
	// Resolve `guarded by <mu>` comments now the siblings are known.
	for _, fld := range st.Fields.List {
		text := ""
		if fld.Doc != nil {
			text += fld.Doc.Text()
		}
		if fld.Comment != nil {
			text += " " + fld.Comment.Text()
		}
		m := guardedByRE.FindStringSubmatch(text)
		if m == nil {
			continue
		}
		mu, ok := byName[m[1]]
		if !ok || !isMutexType(mu.Type()) {
			pass.Reportf(fld.Pos(), "%s declares `guarded by %s` but %q is not a sibling mutex field",
				tn.Name(), m[1], m[1])
			continue
		}
		for _, name := range fld.Names {
			if fv, ok := pkg.Info.Defs[name].(*types.Var); ok {
				gs.guards[fv] = &guard{mu: mu, declared: true}
			}
		}
	}
	return gs
}

// isMutexType reports whether t is sync.Mutex or sync.RWMutex.
func isMutexType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "sync" &&
		(obj.Name() == "Mutex" || obj.Name() == "RWMutex")
}

// writeTargets marks the SelectorExprs written by fd: assignment
// left-hand sides (unwrapping index chains — `r.items[k] = v` mutates
// r.items), ++/--, delete() on a field-held map, and address-taking
// (a pointer escape is treated as a write).
func writeTargets(fd *ast.FuncDecl) map[ast.Node]bool {
	writes := map[ast.Node]bool{}
	mark := func(e ast.Expr) {
		e = ast.Unparen(e)
		for {
			if ix, ok := e.(*ast.IndexExpr); ok {
				e = ast.Unparen(ix.X)
				continue
			}
			break
		}
		if sel, ok := e.(*ast.SelectorExpr); ok {
			writes[sel] = true
		}
	}
	ast.Inspect(fd, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range n.Lhs {
				mark(lhs)
			}
		case *ast.IncDecStmt:
			mark(n.X)
		case *ast.UnaryExpr:
			if n.Op == token.AND {
				mark(n.X)
			}
		case *ast.CallExpr:
			if id, ok := n.Fun.(*ast.Ident); ok && id.Name == "delete" && len(n.Args) == 2 {
				mark(n.Args[0])
			}
		}
		return true
	})
	return writes
}

// constructedTypes lists the named types fd builds with composite
// literals — constructor scopes, where the value is unshared and
// locking would be wrong.
func constructedTypes(info *types.Info, fd *ast.FuncDecl) map[*types.TypeName]bool {
	out := map[*types.TypeName]bool{}
	ast.Inspect(fd, func(n ast.Node) bool {
		cl, ok := n.(*ast.CompositeLit)
		if !ok {
			return true
		}
		t := info.TypeOf(cl)
		if p, ok := t.(*types.Pointer); ok {
			t = p.Elem()
		}
		if named, ok := t.(*types.Named); ok {
			out[named.Obj()] = true
		}
		return true
	})
	return out
}
