// Package locksleep seeds blocking-under-lock violations: sleeps,
// channel operations, selects, and transitive may-block calls made
// while a mutex is held.
package locksleep

import (
	"sync"
	"time"
)

// Store is the shared structure whose mutex the violations hold.
type Store struct {
	mu sync.Mutex
	n  int
}

func (s *Store) SlowInc() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.n++
	time.Sleep(time.Millisecond) // want "calls time.Sleep while holding s.mu"
}

// fetch blocks; calling it under the lock drags the wait inside the
// critical section.
func fetch(ch chan int) int {
	return <-ch
}

func (s *Store) Absorb(ch chan int) {
	s.mu.Lock()
	s.n = fetch(ch) // want "calls locksleep.fetch"
	s.mu.Unlock()
}

func (s *Store) Publish(ch chan int) {
	s.mu.Lock()
	ch <- s.n // want "sends on a channel while holding s.mu"
	s.mu.Unlock()
}

func (s *Store) Wait(ch chan int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	select { // want "waits in a select while holding s.mu"
	case v := <-ch:
		s.n = v
	}
}

func (s *Store) DrainAll(ch chan int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for v := range ch { // want "ranges over a channel while holding s.mu"
		s.n += v
	}
}

// Checked releases the lock on every path before blocking: the
// early-unlock branch and the fallthrough both unlock first.
func (s *Store) Checked(ch chan int) {
	s.mu.Lock()
	if s.n == 0 {
		s.mu.Unlock()
		return
	}
	s.n--
	s.mu.Unlock()
	ch <- 1 // lock released on every path: fine
}

// TryPublish never waits: the select has a default.
func (s *Store) TryPublish(ch chan int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	select {
	case ch <- s.n:
	default:
	}
}

// Spawn launches the blocking work on its own goroutine; the launch
// itself returns immediately, so nothing blocks under the lock.
func (s *Store) Spawn(ch chan int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	go fetch(ch)
}

// Intentional wait under lock, with a recorded rationale.
func (s *Store) Handoff(ch chan int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	//eomlvet:ignore locksleep fixture: the consumer never takes s.mu, so the handoff cannot deadlock
	ch <- s.n
}
