package experiments

import (
	"strings"
	"testing"
)

func TestFig3ShapeMatchesPaper(t *testing.T) {
	points := Fig3(DefaultDownloadModel(), 3, 1)
	if len(points) != 16 {
		t.Fatalf("points = %d", len(points))
	}
	by := map[int]map[float64]Fig3Point{3: {}, 6: {}}
	for _, p := range points {
		by[p.Workers][p.PerProductGB] = p
	}
	// Claim 1: at the largest size, 6 workers beat 3 by roughly 3 MB/s.
	gain := by[6][30].MeanMBps - by[3][30].MeanMBps
	if gain < 1.5 || gain > 6 {
		t.Fatalf("6-vs-3 worker gain at 30GB = %.2f MB/s, want ≈3", gain)
	}
	// Claim 2: single-file downloads see (almost) no gain.
	smallGain := by[6][0.1].MeanMBps - by[3][0.1].MeanMBps
	if smallGain > gain/2 {
		t.Fatalf("small-size gain %.2f not smaller than large-size gain %.2f", smallGain, gain)
	}
	// Claim 3: speed grows with size (per-file overhead amortizes).
	if by[3][30].MeanMBps <= by[3][0.1].MeanMBps {
		t.Fatalf("speed did not grow with size: %.2f vs %.2f", by[3][0.1].MeanMBps, by[3][30].MeanMBps)
	}
	// Determinism.
	again := Fig3(DefaultDownloadModel(), 3, 1)
	for i := range points {
		if points[i] != again[i] {
			t.Fatal("Fig3 not deterministic for fixed seed")
		}
	}
	out := RenderFig3(points)
	if !strings.Contains(out, "workers") {
		t.Fatalf("render:\n%s", out)
	}
}

func fastScalingConfig() ScalingConfig {
	cfg := DefaultScalingConfig()
	cfg.Iterations = 2
	return cfg
}

func TestFig4StrongWorkersShape(t *testing.T) {
	points := Fig4StrongWorkers(fastScalingConfig())
	if len(points) != 8 {
		t.Fatalf("points = %d", len(points))
	}
	r := map[int]float64{}
	for _, p := range points {
		r[p.Workers] = p.TilesPerSec
	}
	// Sub-linear on-node scaling with a plateau: R(8) ≈ 3±1 × R(1);
	// R(64) gains little over R(16); 128 workers (2 nodes) ≈ 2 × R(64).
	if ratio := r[8] / r[1]; ratio < 2.0 || ratio > 4.5 {
		t.Errorf("R(8)/R(1) = %.2f, want sub-linear ≈3", ratio)
	}
	if r[64] > r[16]*1.25 {
		t.Errorf("no plateau: R(16)=%.1f R(64)=%.1f", r[16], r[64])
	}
	if ratio := r[128] / r[64]; ratio < 1.6 || ratio > 2.4 {
		t.Errorf("second node did not double throughput: %.2f", ratio)
	}
	// Completion time decreases monotonically up to the plateau.
	if points[0].MeanSeconds <= points[3].MeanSeconds {
		t.Errorf("1 worker (%.1fs) not slower than 8 workers (%.1fs)",
			points[0].MeanSeconds, points[3].MeanSeconds)
	}
	// Absolute anchor: single worker ≈ 10.5 tiles/s as in Table I.
	if r[1] < 8.5 || r[1] > 12.5 {
		t.Errorf("R(1) = %.2f, want ≈10.5", r[1])
	}
}

func TestFig4StrongNodesNearLinear(t *testing.T) {
	points := Fig4StrongNodes(fastScalingConfig())
	if len(points) != 10 {
		t.Fatalf("points = %d", len(points))
	}
	r1 := points[0].TilesPerSec
	r10 := points[9].TilesPerSec
	if ratio := r10 / r1; ratio < 7.5 || ratio > 10.5 {
		t.Fatalf("10-node speedup %.2f, want near-linear", ratio)
	}
	// Anchor: one node at 8 workers ≈ 30±8 tiles/s; ten nodes ≈ 270±70.
	if r1 < 22 || r1 > 44 {
		t.Errorf("R(1 node) = %.1f", r1)
	}
	if r10 < 200 || r10 > 340 {
		t.Errorf("R(10 nodes) = %.1f, paper ≈267", r10)
	}
}

func TestFig5WeakScalingShape(t *testing.T) {
	workers := Fig5WeakWorkers(fastScalingConfig())
	nodes := Fig5WeakNodes(fastScalingConfig())
	rw := map[int]float64{}
	for _, p := range workers {
		rw[p.Workers] = p.TilesPerSec
	}
	// On-node weak scaling also saturates.
	if rw[64] > rw[16]*1.3 {
		t.Errorf("weak on-node saturation missing: R(16)=%.1f R(64)=%.1f", rw[16], rw[64])
	}
	// Node weak scaling stays near-linear: time roughly flat, rate grows.
	t1, t10 := nodes[0].MeanSeconds, nodes[9].MeanSeconds
	if t10 > t1*1.6 {
		t.Errorf("weak node scaling time blew up: %.1f -> %.1f", t1, t10)
	}
	if ratio := nodes[9].TilesPerSec / nodes[0].TilesPerSec; ratio < 7 {
		t.Errorf("weak node rate ratio %.1f", ratio)
	}
}

func TestTable1RenderContainsAllRows(t *testing.T) {
	cfg := fastScalingConfig()
	cfg.Iterations = 1
	tab := RunTable1(cfg)
	out := RenderTable1(tab)
	for _, want := range []string{"Strong scaling", "Weak scaling", "128", "10"} {
		if !strings.Contains(out, want) {
			t.Fatalf("table missing %q:\n%s", want, out)
		}
	}
}

func TestHeadline12kTiles(t *testing.T) {
	secs, rate := Headline(fastScalingConfig())
	// Paper: 12,000 tiles in ≈44 s (≈272 tiles/s) with 80 workers on 10
	// nodes. Accept the calibrated band.
	if secs < 30 || secs > 62 {
		t.Fatalf("headline run took %.1f virtual seconds, want ≈44", secs)
	}
	if rate < 190 || rate > 400 {
		t.Fatalf("headline rate %.1f tiles/s, want ≈272", rate)
	}
}

func TestPipelineFig6Timeline(t *testing.T) {
	res, err := RunPipeline(DefaultPipelineConfig())
	if err != nil {
		t.Fatal(err)
	}
	if res.TilesLabeled != res.TilesProduced || res.TilesLabeled == 0 {
		t.Fatalf("tiles produced %d labeled %d", res.TilesProduced, res.TilesLabeled)
	}
	tl := res.Timeline
	// Stage peaks match configured worker budgets.
	if got := tl.PeakCount("download"); got != 3 {
		t.Errorf("download peak = %d", got)
	}
	if got := tl.PeakCount("preprocess"); got < 16 || got > 32 {
		t.Errorf("preprocess peak = %d, want near 32", got)
	}
	if got := tl.PeakCount("inference"); got != 1 {
		t.Errorf("inference peak = %d", got)
	}
	// Ordering: downloads active before preprocessing starts; inference
	// starts before preprocessing fully completes (asynchronous trigger)
	// or shortly after.
	pre := tl.Samples("preprocess")
	dl := tl.Samples("download")
	if len(pre) == 0 || len(dl) == 0 {
		t.Fatal("missing stages in timeline")
	}
	if dl[0].T >= pre[0].T {
		t.Errorf("download started at %.1f, preprocess at %.1f", dl[0].T, pre[0].T)
	}
	inf := tl.Samples("inference")
	if len(inf) == 0 {
		t.Fatal("no inference activity")
	}
	lastPre := pre[len(pre)-1].T
	if inf[0].T >= lastPre {
		t.Errorf("inference first active at %.1f, after preprocessing ended at %.1f (should overlap)", inf[0].T, lastPre)
	}
	out := RenderFig6(res, 60)
	if !strings.Contains(out, "download") || !strings.Contains(out, "inference") {
		t.Fatalf("fig6 render:\n%s", out)
	}
}

func TestPipelineFig7Latencies(t *testing.T) {
	res, err := RunPipeline(DefaultPipelineConfig())
	if err != nil {
		t.Fatal(err)
	}
	dl, ok := res.Spans.Get("download.launch")
	if !ok {
		t.Fatal("no download.launch span")
	}
	// Paper: 5.63 s to launch workers, connect, and configure listings.
	if dl.Duration() < 5 || dl.Duration() > 6.5 {
		t.Errorf("download launch %.2f s, want ≈5.63", dl.Duration())
	}
	pl, ok := res.Spans.Get("preprocess.launch")
	if !ok {
		t.Fatal("no preprocess.launch span")
	}
	if pl.Duration() < 5 || pl.Duration() > 7 {
		t.Errorf("preprocess launch %.2f s (Parsl start + Slurm alloc ≈ 6)", pl.Duration())
	}
	if res.MeanFlowOverhead < 0.04 || res.MeanFlowOverhead > 0.06 {
		t.Errorf("flow overhead %.3f s, want ≈0.05", res.MeanFlowOverhead)
	}
	if _, ok := res.Spans.Get("shipment"); !ok {
		t.Error("no shipment span")
	}
	out := RenderFig7(res)
	if !strings.Contains(out, "flow action dispatch overhead") {
		t.Fatalf("fig7 render:\n%s", out)
	}
}

func TestPipelineValidation(t *testing.T) {
	cfg := DefaultPipelineConfig()
	cfg.Granules = 0
	if _, err := RunPipeline(cfg); err == nil {
		t.Fatal("zero granules accepted")
	}
}

func TestAblationContention(t *testing.T) {
	points := AblationContention(200, nil)
	if len(points) != 7 {
		t.Fatalf("points = %d", len(points))
	}
	// One worker is ≈fully efficient; 64 workers are heavily degraded by
	// the shared node I/O.
	if points[0].EfficiencyShared < 0.9 {
		t.Errorf("1-worker efficiency %.2f", points[0].EfficiencyShared)
	}
	last := points[len(points)-1]
	if last.EfficiencyShared > 0.25 {
		t.Errorf("64-worker efficiency %.2f: contention model too weak", last.EfficiencyShared)
	}
	if !strings.Contains(RenderContention(points), "efficiency") {
		t.Error("render missing header")
	}
}

func TestAblationLustre(t *testing.T) {
	points := AblationLustre(10, 1)
	if len(points) != 10 {
		t.Fatalf("points = %d", len(points))
	}
	// With ample Lustre, 10 nodes stay near-linear; with the ~6-node cap
	// the curve flattens: 10-node throttled rate must sit well below the
	// ample rate and near the cap.
	last := points[9]
	if last.ThrottledRate > last.AmpleRate*0.8 {
		t.Fatalf("throttled Lustre did not bend the curve: ample=%.1f throttled=%.1f",
			last.AmpleRate, last.ThrottledRate)
	}
	// Below the cap the two configurations agree.
	if d := points[2].AmpleRate - points[2].ThrottledRate; d > points[2].AmpleRate*0.15 {
		t.Fatalf("3-node rates diverge below the cap: %.1f vs %.1f",
			points[2].AmpleRate, points[2].ThrottledRate)
	}
	if !strings.Contains(RenderLustre(points), "Lustre") {
		t.Error("render missing header")
	}
}

func TestAblationPoll(t *testing.T) {
	points, err := AblationPoll([]float64{0.1, 2.0})
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 2 {
		t.Fatalf("points = %d", len(points))
	}
	// Slower polling cannot make the pipeline faster, and crawls fewer
	// times.
	if points[1].TotalSeconds+1e-9 < points[0].TotalSeconds {
		t.Errorf("2s poll (%f) faster than 0.1s poll (%f)", points[1].TotalSeconds, points[0].TotalSeconds)
	}
	if points[1].CrawlCount >= points[0].CrawlCount {
		t.Errorf("crawl counts: %d vs %d", points[0].CrawlCount, points[1].CrawlCount)
	}
	if !strings.Contains(RenderPoll(points), "poll") {
		t.Error("render missing header")
	}
}
