package main

import (
	"strconv"
	"strings"
)

// parseBenchLine parses one benchmark result line:
//
//	BenchmarkName/sub-8   	  10	 12362599 ns/op	 21.71 GFLOPS	 40122 B/op	 15 allocs/op
//
// Returns the name (cpu suffix stripped), a unit→value map including the
// iteration count as "iterations", and whether the line parsed.
func parseBenchLine(line string) (string, map[string]float64, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
		return "", nil, false
	}
	iters, err := strconv.ParseFloat(fields[1], 64)
	if err != nil {
		return "", nil, false
	}
	// Value/unit pairs follow the iteration count.
	rest := fields[2:]
	if len(rest)%2 != 0 {
		return "", nil, false
	}
	metrics := map[string]float64{"iterations": iters}
	for i := 0; i < len(rest); i += 2 {
		v, err := strconv.ParseFloat(rest[i], 64)
		if err != nil {
			return "", nil, false
		}
		metrics[jsonKey(rest[i+1])] = v
	}
	return stripCPUSuffix(fields[0]), metrics, true
}

// stripCPUSuffix removes the trailing -<GOMAXPROCS> go test appends to
// benchmark names, without touching sub-benchmark names that contain
// dashes of their own.
func stripCPUSuffix(name string) string {
	i := strings.LastIndexByte(name, '-')
	if i < 0 {
		return name
	}
	if _, err := strconv.Atoi(name[i+1:]); err != nil {
		return name
	}
	return name[:i]
}

// jsonKey normalizes a benchmark unit into a JSON-safe identifier:
// "ns/op" → "ns_per_op", "B/op" → "bytes_per_op", "MB/s" → "mb_per_s",
// "tiles/granule" → "tiles_per_granule".
func jsonKey(unit string) string {
	switch unit {
	case "ns/op":
		return "ns_per_op"
	case "B/op":
		return "bytes_per_op"
	case "allocs/op":
		return "allocs_per_op"
	}
	unit = strings.ReplaceAll(unit, "/", "_per_")
	unit = strings.ReplaceAll(unit, "-", "_")
	return strings.ToLower(unit)
}
