package fleet

import (
	"context"
	"fmt"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"github.com/eoml/eoml/internal/compute"
	"github.com/eoml/eoml/internal/metrics"
)

// newTestControlPlane serves a coordinator's membership API over a real
// listener and returns both.
func newTestControlPlane(t *testing.T, cfg Config) (*Coordinator, *httptest.Server) {
	t.Helper()
	c := NewCoordinator(cfg)
	srv := httptest.NewServer(c.Handler())
	t.Cleanup(func() {
		c.Close()
		srv.Close()
	})
	return c, srv
}

// TestWorkerLifecycle: a real worker registers over HTTP, executes a
// leased task end to end (submit → poll → result), and deregisters on
// Stop.
func TestWorkerLifecycle(t *testing.T) {
	c, srv := newTestControlPlane(t, Config{})

	w, err := NewWorker(WorkerConfig{
		ID:             "it-worker",
		CoordinatorURL: srv.URL,
		Slots:          2,
		Register: func(reg *compute.Registry) error {
			return reg.Register("test.double", func(ctx context.Context, args map[string]any) (any, error) {
				n, _ := args["n"].(float64) // JSON hop
				return n * 2, nil
			})
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Start(context.Background()); err != nil {
		t.Fatal(err)
	}

	ws := c.Workers()
	if len(ws) != 1 || ws[0].ID != "it-worker" || ws[0].Capacity != 2 {
		t.Fatalf("registered workers = %+v", ws)
	}
	if ws[0].URL != w.URL() {
		t.Fatalf("registered URL %q != worker URL %q", ws[0].URL, w.URL())
	}

	fut, err := c.Submit(context.Background(), "test.double", map[string]any{"n": 21})
	if err != nil {
		t.Fatal(err)
	}
	v, err := fut.Get(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if v.(float64) != 42 {
		t.Fatalf("result = %v, want 42", v)
	}

	w.Stop()
	if ws := c.Workers(); len(ws) != 0 {
		t.Fatalf("workers after Stop = %+v, want none", ws)
	}
}

// TestWorkerServesStandardKernels: the standard kernel names are
// registered on every worker endpoint.
func TestWorkerServesStandardKernels(t *testing.T) {
	_, srv := newTestControlPlane(t, Config{})
	w, err := NewWorker(WorkerConfig{ID: "k", CoordinatorURL: srv.URL})
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Start(context.Background()); err != nil {
		t.Fatal(err)
	}
	defer w.Stop()

	remote := compute.NewRemoteEndpoint(w.URL())
	_, _, fns, err := remote.Status(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	have := map[string]bool{}
	for _, f := range fns {
		have[f] = true
	}
	if !have[PreprocessFunction] || !have[LabelFunction] {
		t.Fatalf("worker functions = %v, want %s and %s", fns, PreprocessFunction, LabelFunction)
	}
}

// TestWorkerKilledMidTask is the chaos case: a worker dies (listener
// torn down, no drain) while holding a lease. The coordinator must
// requeue the lease onto the surviving worker and deliver the result
// exactly once.
func TestWorkerKilledMidTask(t *testing.T) {
	c, srv := newTestControlPlane(t, Config{
		HeartbeatTimeout: time.Hour, // eviction must come from the failed transport, not heartbeats
	})
	reg := metrics.NewRegistry()
	c.Instrument(reg)

	var mu sync.Mutex
	executions := 0
	victimGotTask := make(chan struct{})
	victimRelease := make(chan struct{})
	// makeFn builds the chaos function: on the victim the task reports
	// it started and then hangs (a crashed process never answers); on
	// the survivor it completes.
	makeFn := func(victim bool) func(reg *compute.Registry) error {
		return func(reg *compute.Registry) error {
			return reg.Register("test.chaos", func(ctx context.Context, args map[string]any) (any, error) {
				mu.Lock()
				executions++
				mu.Unlock()
				if victim {
					close(victimGotTask)
					<-victimRelease // hung until test teardown
					return nil, fmt.Errorf("victim died")
				}
				return "survivor", nil
			})
		}
	}

	victim, err := NewWorker(WorkerConfig{ID: "a-victim", CoordinatorURL: srv.URL, Register: makeFn(true)})
	if err != nil {
		t.Fatal(err)
	}
	if err := victim.Start(context.Background()); err != nil {
		t.Fatal(err)
	}

	fut, err := c.Submit(context.Background(), "test.chaos", nil)
	if err != nil {
		t.Fatal(err)
	}
	<-victimGotTask // the lease is executing on the victim

	survivor, err := NewWorker(WorkerConfig{ID: "b-survivor", CoordinatorURL: srv.URL, Register: makeFn(false)})
	if err != nil {
		t.Fatal(err)
	}
	if err := survivor.Start(context.Background()); err != nil {
		t.Fatal(err)
	}
	defer survivor.Stop()

	// Kill the victim: close its listener without drain, as a crashed
	// process would. The coordinator's next poll fails, evicts the
	// victim, and requeues the lease.
	_ = victim.srv.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	v, err := fut.Get(ctx)
	if err != nil {
		t.Fatalf("task after worker death: %v", err)
	}
	if v != "survivor" {
		t.Fatalf("result = %v, want survivor's", v)
	}

	if got := counterValue(t, reg, "eoml_fleet_tasks_completed_total"); got != 1 {
		t.Fatalf("completed = %v, want 1 (exactly-once)", got)
	}
	if got := counterValue(t, reg, "eoml_fleet_tasks_requeued_total"); got < 1 {
		t.Fatalf("requeued = %v, want >= 1", got)
	}
	if got := counterValue(t, reg, "eoml_fleet_workers_evicted_total"); got != 1 {
		t.Fatalf("evicted = %v, want 1", got)
	}
	mu.Lock()
	if executions != 2 {
		mu.Unlock()
		t.Fatalf("task executed %d times, want 2 (victim + survivor)", executions)
	}
	mu.Unlock()

	// Teardown: unblock the hung lease so the victim's pool can drain.
	close(victimRelease)
	victim.Stop()
}

// TestWorkerDrainRejectsNewTasks: once Stop begins, direct submissions
// to the endpoint answer with the typed drain error over HTTP.
func TestWorkerDrainRejectsNewTasks(t *testing.T) {
	_, srv := newTestControlPlane(t, Config{})
	w, err := NewWorker(WorkerConfig{ID: "drainer", CoordinatorURL: srv.URL})
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Start(context.Background()); err != nil {
		t.Fatal(err)
	}
	url := w.URL()
	w.Stop()

	// The HTTP listener is down after Stop; a draining-window submit is
	// exercised at the endpoint layer instead (the HTTP mapping itself
	// is pinned in internal/compute's tests).
	_, err = w.ep.Submit("test.anything", nil)
	if err == nil {
		t.Fatalf("submit to %s after Stop succeeded", url)
	}
}
