package aicca

import (
	"fmt"
	"sync"
	"time"

	"github.com/eoml/eoml/internal/metrics"
	"github.com/eoml/eoml/internal/tile"
	"github.com/eoml/eoml/internal/trace"
)

// BatchConfig tunes the cross-file inference batcher.
type BatchConfig struct {
	// MaxTiles flushes the pending batch once this many tiles are
	// queued. Matching the encoder's internal batch width (256) means
	// one coalesced flush is one full encode batch.
	MaxTiles int
	// MaxDelay flushes a partial batch this long after its first tile
	// arrived, bounding the latency a lone file can wait behind an
	// unfilled batch.
	MaxDelay time.Duration
	// Timeline, when set, receives one "inference.batch" span per flush
	// (tile count at flush start, zero at flush end).
	Timeline *trace.Timeline
	// Epoch is the workflow start used for Timeline offsets.
	Epoch time.Time
	// Metrics, when set, receives batch-size and flush-latency
	// histograms per flush. Nil is valid.
	Metrics *metrics.Registry
	// Precision, when non-empty, overrides the labeler's encode
	// precision for batches flushed through this batcher.
	Precision Precision
}

func (c BatchConfig) withDefaults() BatchConfig {
	if c.MaxTiles <= 0 {
		c.MaxTiles = 256
	}
	if c.MaxDelay <= 0 {
		c.MaxDelay = 20 * time.Millisecond
	}
	if c.Epoch.IsZero() {
		c.Epoch = time.Now()
	}
	return c
}

// batchJob is one caller's tile slice waiting for a coalesced encode.
type batchJob struct {
	tiles []*tile.Tile
	res   chan error
}

// BatchLabeler coalesces tiles from concurrent LabelFile/LabelTiles
// callers into shared encode batches. The paper's stage-4 flow fires one
// inference action per watched file; files are small (tens of tiles), so
// per-file encodes waste most of each batch. The batcher instead fills a
// fixed-size batch across files and flushes on size or deadline — one
// Encode (and one pass through the model arena) per flush.
//
// Submission order is preserved per caller; labels are written into the
// submitted tiles in place, exactly as Labeler.LabelTiles does.
type BatchLabeler struct {
	l   *Labeler
	cfg BatchConfig

	jobs chan batchJob
	done chan struct{}

	batchTiles   *metrics.Histogram
	flushSeconds *metrics.Histogram

	mu     sync.Mutex
	closed bool
}

// NewBatchLabeler starts the flusher goroutine. Callers must Close the
// batcher when done (Close is idempotent).
func NewBatchLabeler(l *Labeler, cfg BatchConfig) *BatchLabeler {
	if cfg.Precision != "" && l != nil && l.Precision != cfg.Precision {
		// Shallow copy so the override stays local to this batcher: the
		// model and codebook are shared, the precision knob is not.
		cp := *l
		cp.Precision = cfg.Precision
		l = &cp
	}
	b := &BatchLabeler{
		l:    l,
		cfg:  cfg.withDefaults(),
		jobs: make(chan batchJob, 64),
		done: make(chan struct{}),
	}
	prec := PrecisionFloat32
	if l != nil && l.Precision != "" {
		prec = l.Precision
	}
	b.batchTiles = b.cfg.Metrics.Histogram("eoml_labeler_batch_tiles",
		"Tiles per coalesced encode batch at flush time.", metrics.SizeBuckets(),
		metrics.L("precision", string(prec)))
	b.flushSeconds = b.cfg.Metrics.Histogram("eoml_labeler_flush_seconds",
		"Wall-clock seconds per coalesced encode flush.", metrics.DurationBuckets(),
		metrics.L("precision", string(prec)))
	go b.run()
	return b
}

// LabelTiles queues tiles for the next coalesced batch and blocks until
// they are labeled (in place) or the batch fails.
func (b *BatchLabeler) LabelTiles(tiles []*tile.Tile) error {
	if len(tiles) == 0 {
		return nil
	}
	b.mu.Lock()
	if b.closed {
		b.mu.Unlock()
		return fmt.Errorf("aicca: batch labeler is closed")
	}
	j := batchJob{tiles: tiles, res: make(chan error, 1)}
	//eomlvet:ignore locksleep the send must happen under b.mu so Close cannot close b.jobs between the closed check and the send; run drains the channel without taking the lock, so the wait is bounded
	b.jobs <- j // send under the lock so Close cannot race the channel close
	b.mu.Unlock()
	return <-j.res
}

// LabelFile reads a tile NetCDF, labels its tiles through the shared
// batch, and rewrites the file with labels appended. File I/O runs on
// the caller (so concurrent workers parse and write in parallel); only
// the encode is funneled through the batcher. Returns the number of
// tiles labeled. Drop-in replacement for Labeler.LabelFile.
func (b *BatchLabeler) LabelFile(path string) (int, error) {
	tiles, err := tile.ReadNetCDF(path)
	if err != nil {
		return 0, err
	}
	if len(tiles) == 0 {
		return 0, nil
	}
	if err := b.LabelTiles(tiles); err != nil {
		return 0, err
	}
	labels := make([]int16, len(tiles))
	for i, t := range tiles {
		labels[i] = t.Label
	}
	if err := tile.AppendLabels(path, labels); err != nil {
		return 0, err
	}
	return len(tiles), nil
}

// Close flushes whatever is pending and stops the flusher. Idempotent;
// LabelTiles calls after Close fail cleanly.
func (b *BatchLabeler) Close() {
	b.mu.Lock()
	if b.closed {
		b.mu.Unlock()
		<-b.done
		return
	}
	b.closed = true
	close(b.jobs)
	b.mu.Unlock()
	<-b.done
}

// run is the flusher loop: accumulate jobs until the batch is full or
// the oldest pending job has waited MaxDelay, then label everything
// pending in one Encode call.
//
//eomlvet:ignore ctxflow lifecycle goroutine terminated by close(b.jobs) in Close; the flagged sends are to per-job result channels with capacity 1 and exactly one receiver, so they never block
func (b *BatchLabeler) run() {
	defer close(b.done)
	var pending []batchJob
	count := 0
	var deadline <-chan time.Time

	flush := func() {
		if count == 0 {
			return
		}
		all := make([]*tile.Tile, 0, count)
		for _, j := range pending {
			all = append(all, j.tiles...)
		}
		if tl := b.cfg.Timeline; tl != nil {
			tl.Record("inference.batch", time.Since(b.cfg.Epoch).Seconds(), len(all))
		}
		started := time.Now()
		_, err := b.l.LabelTiles(all)
		b.batchTiles.Observe(float64(len(all)))
		b.flushSeconds.Observe(time.Since(started).Seconds())
		if tl := b.cfg.Timeline; tl != nil {
			tl.Record("inference.batch", time.Since(b.cfg.Epoch).Seconds(), 0)
		}
		for _, j := range pending {
			j.res <- err
		}
		pending = pending[:0]
		count = 0
		deadline = nil
	}

	for {
		select {
		case j, ok := <-b.jobs:
			if !ok {
				flush()
				return
			}
			pending = append(pending, j)
			count += len(j.tiles)
			if count >= b.cfg.MaxTiles {
				flush()
			} else if deadline == nil {
				deadline = time.After(b.cfg.MaxDelay)
			}
		case <-deadline:
			flush()
		}
	}
}
