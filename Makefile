# Standard entry points for the eoml repo.
#
#   make check      — what CI runs: gofmt gate + vet + eomlvet + race tests
#                     + fuzz-smoke + serve-smoke + fleet-smoke +
#                     reduced-size bench smokes (bench-ci, bench-e2e) +
#                     bench-diff
#   make lint       — the repo's own analyzer suite (cmd/eomlvet)
#   make bench      — the hot-path benchmarks, emitted as $(BENCH_OUT)
#   make bench-diff — gate the committed bench records: fails on >10%
#                     throughput regression $(BENCH_OLD) → $(BENCH_NEW)

GO ?= go
BENCHTIME ?= 1s
BENCHCOUNT ?= 3
BENCH_OUT ?= BENCH_10.json
BENCH_OLD ?= BENCH_9.json
BENCH_NEW ?= BENCH_10.json
# At least one compared benchmark must match this, so the fleet
# granules_per_s series cannot silently vanish from the gate.
BENCH_REQUIRE ?= BenchmarkFleetScaling/(strong|weak)/
BENCH_PAT := BenchmarkMatMulBlocked|BenchmarkMatMulSmall|BenchmarkEncodeArena|BenchmarkEncodeQ8|BenchmarkLabelFileBatched|BenchmarkTileExtract|BenchmarkPipelineE2E|BenchmarkFleetScaling

FUZZTIME ?= 10s

.PHONY: build test vet lint race fmt fuzz-smoke bench bench-ci bench-diff bench-all bench-e2e serve-smoke fleet-smoke check

build:
	$(GO) build ./...

# gofmt cleanliness gate: fails listing any file that needs formatting.
fmt:
	@unformatted=$$(gofmt -l .); \
	if [ -n "$$unformatted" ]; then \
		echo "gofmt required for:"; echo "$$unformatted"; exit 1; \
	fi

test:
	$(GO) test ./...

# go vet plus the two extra passes worth running explicitly: copied locks
# and discarded pure-function results.
vet:
	$(GO) vet ./...
	$(GO) vet -copylocks -unusedresult ./...

# eomlvet: the repo's own stdlib-only analyzers for concurrency and
# resource invariants (see DESIGN.md §10). Exits non-zero on any finding.
lint:
	$(GO) run ./cmd/eomlvet ./...

race:
	$(GO) test -race ./...

# Short fuzzing pass over the two parsers that consume untrusted bytes:
# the yamlite config parser and the HDF granule decoder. $(FUZZTIME) per
# target; any crasher found lands in testdata/fuzz/ and from then on
# runs as a plain regression test under `go test`.
fuzz-smoke:
	$(GO) test ./internal/yamlite -run '^$$' -fuzz FuzzParse -fuzztime $(FUZZTIME)
	$(GO) test ./internal/hdf -run '^$$' -fuzz FuzzDecode -fuzztime $(FUZZTIME)

# Hot-path benchmarks (kernels, arena, batching, tile throughput),
# emitted as a machine-readable record via cmd/benchjson. Runs each
# benchmark $(BENCHCOUNT) times; benchjson keeps the fastest repetition
# (best-of-N) so shared-host noise does not trip the bench-diff gate.
# Two steps so a bench failure fails the target (sh pipelines swallow
# the first exit code).
bench:
	$(GO) test -run xxx -bench '$(BENCH_PAT)' -benchmem -benchtime $(BENCHTIME) -count $(BENCHCOUNT) . > bench.out.tmp
	$(GO) run ./cmd/benchjson -pr 10 \
		-title "Fleet hot path: worker granule prefetch, content-addressed download/result cache, batched lease/result RPCs" \
		-command "make bench BENCHTIME=$(BENCHTIME) BENCHCOUNT=$(BENCHCOUNT)" < bench.out.tmp > $(BENCH_OUT)
	@rm -f bench.out.tmp
	@echo "wrote $(BENCH_OUT)"

# CI smoke at reduced size: one iteration per bench, result discarded.
bench-ci:
	@$(MAKE) --no-print-directory bench BENCHTIME=1x BENCHCOUNT=1 BENCH_OUT=/tmp/eoml-bench-ci.json

# End-to-end pipeline smoke: one short ingest → tile-extract → encode →
# label → ship run against the synthetic archive, reporting granules/s
# and tiles/s. Result discarded; this catches wiring breakage, the
# committed BENCH_N.json records carry the real numbers.
bench-e2e:
	$(GO) test -run xxx -bench 'BenchmarkPipelineE2E' -benchtime 1x .

# Control-plane smoke: boots the run API on a real listener, submits a
# campaign over HTTP (model artifacts on disk, synthetic archive),
# polls it to success, and scrapes per-run + aggregate metrics.
serve-smoke:
	$(GO) test -race -run TestServeSmoke -count 1 ./internal/serve

# Worker-fleet smoke: spawns two real worker processes (the test binary
# re-exec'd in worker mode), registers them with an in-process
# coordinator over HTTP, and runs a tiny distribution:fleet campaign
# end to end against the synthetic archive.
fleet-smoke:
	$(GO) test -race -run TestFleetSmoke -count 1 .

# Regression gate over the committed records: deterministic in CI (no
# benchmarks rerun), fails on >10% throughput regression between the two
# most recent BENCH_N.json files. -require additionally fails if the
# fleet scaling series stops being compared (rename/deletion).
bench-diff:
	$(GO) run ./cmd/benchdiff -require '$(BENCH_REQUIRE)' $(BENCH_OLD) $(BENCH_NEW)

# Every figure/table/ablation benchmark in the repo.
bench-all:
	$(GO) test -run xxx -bench . -benchmem ./...

check: fmt vet lint race fuzz-smoke serve-smoke fleet-smoke bench-ci bench-e2e bench-diff
