package core

import (
	"context"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"github.com/eoml/eoml/internal/aicca"
	"github.com/eoml/eoml/internal/laads"
	"github.com/eoml/eoml/internal/modis"
	"github.com/eoml/eoml/internal/ricc"
	"github.com/eoml/eoml/internal/tile"
)

const testScale = 64 // tiny granules; tile edge 4 px

// findProductiveGranules returns day-side granule indices that yield at
// least minTiles ocean-cloud tiles at the test scale.
func findProductiveGranules(t *testing.T, want, minTiles int) []int {
	t.Helper()
	gen, err := modis.NewGenerator(testScale)
	if err != nil {
		t.Fatal(err)
	}
	var out []int
	for idx := 0; idx < modis.GranulesPerDay && len(out) < want; idx++ {
		g := modis.GranuleID{Satellite: modis.Terra, Year: 2022, DOY: 1, Index: idx}
		mod02, err := gen.Generate(modis.MOD021KM, g)
		if err != nil {
			t.Fatal(err)
		}
		if flag, _ := mod02.AttrString("DayNightFlag"); flag != "Day" {
			continue
		}
		mod03, _ := gen.Generate(modis.MOD03, g)
		mod06, _ := gen.Generate(modis.MOD06L2, g)
		res, err := tile.Extract(mod02, mod03, mod06, tile.Options{TileSize: 4})
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Tiles) >= minTiles {
			out = append(out, idx)
		}
	}
	if len(out) < want {
		t.Fatalf("found only %d productive granules", len(out))
	}
	return out
}

// trainTestLabeler builds a tiny labeler from the first granule's tiles.
func trainTestLabeler(t *testing.T, granuleIdx int) *aicca.Labeler {
	t.Helper()
	gen, _ := modis.NewGenerator(testScale)
	g := modis.GranuleID{Satellite: modis.Terra, Year: 2022, DOY: 1, Index: granuleIdx}
	mod02, _ := gen.Generate(modis.MOD021KM, g)
	mod03, _ := gen.Generate(modis.MOD03, g)
	mod06, _ := gen.Generate(modis.MOD06L2, g)
	res, err := tile.Extract(mod02, mod03, mod06, tile.Options{TileSize: 4})
	if err != nil {
		t.Fatal(err)
	}
	cfg := ricc.Config{
		TileSize:  4,
		Channels:  6,
		LatentDim: 8,
		Beta:      0.3,
		LR:        2e-3,
		Epochs:    2,
		BatchSize: 16,
		Rotations: 1,
		Seed:      5,
	}
	k := 4
	if len(res.Tiles) < 8 {
		k = 2
	}
	labeler, _, err := aicca.Train(res.Tiles, cfg, k)
	if err != nil {
		t.Fatal(err)
	}
	return labeler
}

func testConfig(t *testing.T, archiveURL string, granules []int) Config {
	t.Helper()
	root := t.TempDir()
	cfg := DefaultConfig()
	cfg.ArchiveURL = archiveURL
	cfg.ArchiveToken = "test-token"
	cfg.Granules = granules
	cfg.DataDir = filepath.Join(root, "data")
	cfg.TileDir = filepath.Join(root, "tiles")
	cfg.OutboxDir = filepath.Join(root, "outbox")
	cfg.DestDir = filepath.Join(root, "orion")
	cfg.TilePixels = 4
	cfg.DownloadWorkers = 3
	cfg.PreprocessWorkers = 4
	cfg.PollInterval = 10 * time.Millisecond
	return cfg
}

func newArchive(t *testing.T) *httptest.Server {
	t.Helper()
	srv, err := laads.NewServer(laads.ServerConfig{ScaleDown: testScale, Token: "test-token"})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv)
	t.Cleanup(ts.Close)
	return ts
}

func TestPipelineEndToEnd(t *testing.T) {
	granules := findProductiveGranules(t, 3, 3)
	labeler := trainTestLabeler(t, granules[0])
	ts := newArchive(t)
	cfg := testConfig(t, ts.URL, granules)

	p, err := New(cfg, labeler)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := p.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if rep.FilesDownloaded != len(granules)*3 {
		t.Errorf("downloaded %d files, want %d", rep.FilesDownloaded, len(granules)*3)
	}
	if rep.TileFiles == 0 || rep.TilesProduced == 0 {
		t.Fatalf("no tiles produced: %+v", rep)
	}
	if rep.TilesLabeled != rep.TilesProduced {
		t.Errorf("labeled %d of %d tiles", rep.TilesLabeled, rep.TilesProduced)
	}
	if rep.FilesShipped != rep.TileFiles {
		t.Errorf("shipped %d of %d tile files", rep.FilesShipped, rep.TileFiles)
	}

	// Shipped files must carry labels in range.
	entries, err := os.ReadDir(cfg.DestDir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != rep.TileFiles {
		t.Fatalf("destination has %d files", len(entries))
	}
	for _, e := range entries {
		tiles, err := tile.ReadNetCDF(filepath.Join(cfg.DestDir, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		for i, tl := range tiles {
			if tl.Label < 0 {
				t.Fatalf("%s tile %d unlabeled", e.Name(), i)
			}
		}
	}

	// The tile dir must be drained (everything moved to outbox/dest).
	tileEntries, _ := os.ReadDir(cfg.TileDir)
	if len(tileEntries) != 0 {
		t.Errorf("tile dir not drained: %d files", len(tileEntries))
	}

	// Telemetry covers all stages.
	for _, span := range []string{"download", "preprocess", "inference", "shipment"} {
		if _, ok := rep.Spans.Get(span); !ok {
			t.Errorf("missing span %q", span)
		}
	}
	if rep.Timeline.PeakCount("preprocess") == 0 {
		t.Error("no preprocess activity in timeline")
	}
	if !strings.Contains(rep.Summary(), "labeled=") {
		t.Errorf("summary: %s", rep.Summary())
	}
}

func TestPipelineWithNightGranule(t *testing.T) {
	// Include a night granule: it downloads fine, yields no tiles, and
	// must not stall the inference accounting.
	gen, _ := modis.NewGenerator(testScale)
	night := -1
	for idx := 0; idx < modis.GranulesPerDay; idx++ {
		g := modis.GranuleID{Satellite: modis.Terra, Year: 2022, DOY: 1, Index: idx}
		f, _ := gen.Generate(modis.MOD021KM, g)
		if flag, _ := f.AttrString("DayNightFlag"); flag == "Night" {
			night = idx
			break
		}
	}
	if night == -1 {
		t.Fatal("no night granule found")
	}
	day := findProductiveGranules(t, 1, 3)
	labeler := trainTestLabeler(t, day[0])
	ts := newArchive(t)
	cfg := testConfig(t, ts.URL, []int{day[0], night})

	p, err := New(cfg, labeler)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := p.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if rep.TileFiles != 1 {
		t.Fatalf("tile files = %d, want 1 (night granule yields none)", rep.TileFiles)
	}
	if rep.FilesDownloaded != 6 {
		t.Fatalf("downloaded %d", rep.FilesDownloaded)
	}
}

// TestPipelineBatchedInference drives the pipeline with several
// inference workers and a batch size small enough to force multiple
// cross-file flushes, then checks every tile still gets labeled exactly
// once and the per-batch spans show up on the timeline.
func TestPipelineBatchedInference(t *testing.T) {
	granules := findProductiveGranules(t, 4, 3)
	labeler := trainTestLabeler(t, granules[0])
	ts := newArchive(t)
	cfg := testConfig(t, ts.URL, granules)
	cfg.InferenceWorkers = 3
	cfg.BatchTiles = 8
	cfg.BatchDelay = 5 * time.Millisecond

	p, err := New(cfg, labeler)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := p.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if rep.TilesLabeled != rep.TilesProduced {
		t.Errorf("labeled %d of %d tiles", rep.TilesLabeled, rep.TilesProduced)
	}
	if rep.FilesShipped != rep.TileFiles {
		t.Errorf("shipped %d of %d tile files", rep.FilesShipped, rep.TileFiles)
	}
	entries, err := os.ReadDir(cfg.DestDir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		tiles, err := tile.ReadNetCDF(filepath.Join(cfg.DestDir, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		for i, tl := range tiles {
			if tl.Label < 0 {
				t.Fatalf("%s tile %d unlabeled", e.Name(), i)
			}
		}
	}
	if len(rep.Timeline.Samples("inference.batch")) == 0 {
		t.Error("no inference.batch spans recorded")
	}
}

func TestPipelineLoadsModelFromDisk(t *testing.T) {
	granules := findProductiveGranules(t, 1, 3)
	labeler := trainTestLabeler(t, granules[0])
	dir := t.TempDir()
	modelPath := filepath.Join(dir, "model.hdf")
	cbPath := filepath.Join(dir, "codebook.hdf")
	if err := labeler.Model.Save(modelPath); err != nil {
		t.Fatal(err)
	}
	if err := labeler.Codebook.Save(cbPath); err != nil {
		t.Fatal(err)
	}

	ts := newArchive(t)
	cfg := testConfig(t, ts.URL, granules)
	cfg.ModelPath = modelPath
	cfg.CodebookPath = cbPath
	p, err := New(cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := p.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if rep.TilesLabeled == 0 {
		t.Fatal("no tiles labeled with disk-loaded model")
	}
}

func TestNewRequiresLabelerOrPaths(t *testing.T) {
	cfg := testConfig(t, "http://localhost:1", []int{0})
	if _, err := New(cfg, nil); err == nil {
		t.Fatal("nil labeler without model paths accepted")
	}
}

func TestConfigValidation(t *testing.T) {
	base := testConfig(t, "http://x", []int{0})
	cases := []func(*Config){
		func(c *Config) { c.Year = 1 },
		func(c *Config) { c.DOY = 0 },
		func(c *Config) { c.Granules = []int{999} },
		func(c *Config) { c.ArchiveURL = "" },
		func(c *Config) { c.DataDir = "" },
		func(c *Config) { c.DownloadWorkers = 0 },
		func(c *Config) { c.TilePixels = 1 },
		func(c *Config) { c.MinCloudFrac = 2 },
		func(c *Config) { c.PollInterval = 0 },
		func(c *Config) { c.StallTimeout = 0 },
		func(c *Config) { c.BatchTiles = 0 },
		func(c *Config) { c.BatchDelay = 0 },
	}
	for i, mutate := range cases {
		cfg := base
		mutate(&cfg)
		if err := cfg.Validate(); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
	if err := base.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestLoadConfigYAML(t *testing.T) {
	doc := `
satellite: Terra
year: 2022
doy: 1
granules: [144, 150]
archive:
  url: http://localhost:8900
  token: secret
paths:
  data: /tmp/eoml/data
  tiles: /tmp/eoml/tiles
  outbox: /tmp/eoml/outbox
  dest: /tmp/eoml/orion
workers:
  download: 3
  preprocess: 32
  inference: 1
tile:
  pixels: 16
  min_cloud_fraction: 0.3
poll_interval_ms: 25
stall_timeout_ms: 120000
batch:
  tiles: 128
  delay_ms: 10
model:
  weights: m.hdf
  codebook: cb.hdf
`
	cfg, err := LoadConfig([]byte(doc))
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Satellite != modis.Terra || cfg.Year != 2022 || cfg.DOY != 1 {
		t.Fatalf("identity: %+v", cfg)
	}
	if len(cfg.Granules) != 2 || cfg.Granules[1] != 150 {
		t.Fatalf("granules: %v", cfg.Granules)
	}
	if cfg.ArchiveURL != "http://localhost:8900" || cfg.ArchiveToken != "secret" {
		t.Fatalf("archive: %+v", cfg)
	}
	if cfg.PreprocessWorkers != 32 || cfg.InferenceWorkers != 1 {
		t.Fatalf("workers: %+v", cfg)
	}
	if cfg.TilePixels != 16 || cfg.MinCloudFrac != 0.3 {
		t.Fatalf("tile: %+v", cfg)
	}
	if cfg.PollInterval != 25*time.Millisecond {
		t.Fatalf("poll: %v", cfg.PollInterval)
	}
	if cfg.StallTimeout != 2*time.Minute {
		t.Fatalf("stall: %v", cfg.StallTimeout)
	}
	if cfg.BatchTiles != 128 || cfg.BatchDelay != 10*time.Millisecond {
		t.Fatalf("batch: %+v", cfg)
	}
	if cfg.ModelPath != "m.hdf" || cfg.CodebookPath != "cb.hdf" {
		t.Fatalf("model: %+v", cfg)
	}
}

func TestLoadConfigErrors(t *testing.T) {
	cases := map[string]string{
		"bad satellite": "satellite: Sentinel\narchive:\n  url: http://x\npaths:\n  data: a\n  tiles: b\n  outbox: c\n  dest: d",
		"bad granule":   "granules: [oops]\narchive:\n  url: http://x\npaths:\n  data: a\n  tiles: b\n  outbox: c\n  dest: d",
		"missing paths": "archive:\n  url: http://x",
		"bad yaml":      "a: [1,",
	}
	for name, doc := range cases {
		if _, err := LoadConfig([]byte(doc)); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}
