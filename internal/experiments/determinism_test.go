package experiments

import (
	"reflect"
	"testing"
)

// The discrete-event experiments must be bit-for-bit reproducible for a
// fixed seed — that's the property that makes EXPERIMENTS.md's recorded
// numbers stable across machines and runs.

func TestScalingSweepsDeterministic(t *testing.T) {
	cfg := DefaultScalingConfig()
	cfg.Iterations = 1
	a := RunTable1(cfg)
	b := RunTable1(cfg)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("Table 1 differs across identical runs")
	}
	cfg2 := cfg
	cfg2.Seed++
	c := RunTable1(cfg2)
	if reflect.DeepEqual(a.StrongWorkers, c.StrongWorkers) {
		t.Fatal("different seeds produced identical strong-worker sweeps")
	}
}

func TestPipelineDeterministic(t *testing.T) {
	run := func() *PipelineResult {
		res, err := RunPipeline(DefaultPipelineConfig())
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(), run()
	if a.TotalSeconds != b.TotalSeconds || a.TilesLabeled != b.TilesLabeled || a.FlowActions != b.FlowActions {
		t.Fatalf("pipeline runs differ: %+v vs %+v", a, b)
	}
	if !reflect.DeepEqual(a.Timeline.Samples("preprocess"), b.Timeline.Samples("preprocess")) {
		t.Fatal("timelines differ across identical runs")
	}
}

func TestHeadlineDeterministic(t *testing.T) {
	cfg := DefaultScalingConfig()
	s1, r1 := Headline(cfg)
	s2, r2 := Headline(cfg)
	if s1 != s2 || r1 != r2 {
		t.Fatalf("headline differs: (%v,%v) vs (%v,%v)", s1, r1, s2, r2)
	}
}
