package tensor

import (
	"fmt"
	"math"
	"math/rand"
	"testing"
)

// close32 reports whether got and want agree to the mixed tolerance the
// ISSUE acceptance uses: |got-want| <= tol * (1 + |want|).
func close32(got, want float32, tol float64) bool {
	return math.Abs(float64(got-want)) <= tol*(1+math.Abs(float64(want)))
}

func randT(r *rand.Rand, shape ...int) *T {
	t := New(shape...)
	for i := range t.Data {
		t.Data[i] = float32(r.NormFloat64())
	}
	return t
}

func compareT(t *testing.T, label string, got, want *T, tol float64) {
	t.Helper()
	if !got.SameShape(want) {
		t.Fatalf("%s: shape %v, want %v", label, got.Shape, want.Shape)
	}
	for i := range want.Data {
		if !close32(got.Data[i], want.Data[i], tol) {
			t.Fatalf("%s: [%d] = %g, want %g", label, i, got.Data[i], want.Data[i])
		}
	}
}

// matMulShapes covers sizes off every blocking boundary: unit dims,
// non-multiples of the 4×4 tile, exact tile multiples, and skinny
// operands in each direction.
var matMulShapes = [][3]int{
	{1, 1, 1}, {1, 7, 1}, {3, 5, 7}, {4, 4, 4}, {5, 9, 3},
	{7, 1, 19}, {8, 8, 8}, {13, 17, 11}, {16, 33, 4}, {17, 31, 13},
	{33, 65, 29}, {64, 64, 64}, {2, 128, 3}, {65, 3, 66},
}

func TestMatMulBlockedMatchesNaive(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	for _, s := range matMulShapes {
		m, k, n := s[0], s[1], s[2]
		a := randT(r, m, k)
		b := randT(r, k, n)
		compareT(t, fmt.Sprintf("matmul %v", s), MatMul(a, b), MatMulNaive(a, b), 1e-5)
	}
}

func TestMatMulTABlockedMatchesNaive(t *testing.T) {
	r := rand.New(rand.NewSource(12))
	for _, s := range matMulShapes {
		m, k, n := s[0], s[1], s[2]
		a := randT(r, k, m)
		b := randT(r, k, n)
		compareT(t, fmt.Sprintf("matmulTA %v", s), MatMulTA(a, b), MatMulTANaive(a, b), 1e-5)
	}
}

func TestMatMulTBBlockedMatchesNaive(t *testing.T) {
	r := rand.New(rand.NewSource(13))
	for _, s := range matMulShapes {
		m, k, n := s[0], s[1], s[2]
		a := randT(r, m, k)
		b := randT(r, n, k)
		compareT(t, fmt.Sprintf("matmulTB %v", s), MatMulTB(a, b), MatMulTBNaive(a, b), 1e-5)
	}
}

func TestMatMulIntoOverwritesDirtyBuffer(t *testing.T) {
	r := rand.New(rand.NewSource(14))
	a := randT(r, 9, 15)
	b := randT(r, 15, 7)
	out := New(9, 7)
	for i := range out.Data {
		out.Data[i] = 1e9 // poison: kernel must overwrite, not accumulate
	}
	MatMulInto(a, b, out)
	compareT(t, "matmul into", out, MatMulNaive(a, b), 1e-5)
}

func TestMatMulPanicsOnShapeMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on mismatched shapes")
		}
	}()
	MatMul(New(2, 3), New(4, 5))
}

// convCases sweeps odd geometries: pad > 0, stride > 1, non-square-friendly
// input sizes, and kernel sizes that exercise both the fused 3×3 path and
// the generic fallback.
func TestConvFusedMatchesDirect(t *testing.T) {
	r := rand.New(rand.NewSource(21))
	cases := []struct {
		inC, outC, k, stride, pad, inH, inW int
	}{
		{1, 1, 3, 1, 0, 5, 5},
		{3, 4, 3, 1, 1, 7, 9},
		{2, 5, 3, 2, 1, 11, 6},
		{6, 16, 3, 2, 1, 16, 16}, // RICC encoder geometry
		{4, 3, 3, 3, 2, 10, 13},
		{2, 2, 3, 1, 2, 4, 3}, // pad wider than interior
		{3, 2, 3, 2, 0, 9, 7},
		{2, 3, 1, 1, 0, 6, 6},  // generic fallback: k=1
		{2, 3, 5, 2, 2, 11, 9}, // generic fallback: k=5
		{1, 2, 2, 1, 1, 5, 5},  // generic fallback: even kernel
	}
	for _, cs := range cases {
		g, err := NewConvGeom(cs.inC, cs.outC, cs.k, cs.stride, cs.pad, cs.inH, cs.inW)
		if err != nil {
			t.Fatalf("%+v: %v", cs, err)
		}
		for _, n := range []int{1, 3} {
			x := randT(r, n, cs.inC, cs.inH, cs.inW)
			w := randT(r, cs.outC, cs.inC, cs.k, cs.k)
			bias := randT(r, cs.outC)
			label := fmt.Sprintf("conv %+v n=%d", cs, n)
			compareT(t, label, ConvFused(x, w, bias, g), ConvDirect(x, w, bias, g), 1e-5)
			compareT(t, label+" nil-bias", ConvFused(x, w, nil, g), ConvDirect(x, w, nil, g), 1e-5)
		}
	}
}

func TestConvFusedIntoOverwritesDirtyBuffer(t *testing.T) {
	r := rand.New(rand.NewSource(22))
	g, err := NewConvGeom(3, 4, 3, 2, 1, 9, 7)
	if err != nil {
		t.Fatal(err)
	}
	x := randT(r, 2, 3, 9, 7)
	w := randT(r, 4, 3, 3, 3)
	out := New(2, 4, g.OutH, g.OutW)
	for i := range out.Data {
		out.Data[i] = -1e9
	}
	ConvFusedInto(x, w, nil, g, out)
	compareT(t, "conv into", out, ConvDirect(x, w, nil, g), 1e-5)
}

func TestIm2ColIntoReusesBuffer(t *testing.T) {
	r := rand.New(rand.NewSource(23))
	g, err := NewConvGeom(2, 3, 3, 1, 1, 6, 6)
	if err != nil {
		t.Fatal(err)
	}
	x := randT(r, 2, 2, 6, 6)
	want := Im2Col(x, g)
	buf := New(want.Shape[0], want.Shape[1])
	for i := range buf.Data {
		buf.Data[i] = 7 // dirty
	}
	got := Im2ColInto(x, g, buf)
	if &got.Data[0] != &buf.Data[0] {
		t.Fatal("Im2ColInto did not reuse the matching buffer")
	}
	compareT(t, "im2col into", got, want, 0)
	// Mismatched buffer: must allocate fresh, not clobber.
	small := New(1, 1)
	got2 := Im2ColInto(x, g, small)
	if &got2.Data[0] == &small.Data[0] {
		t.Fatal("Im2ColInto reused a mismatched buffer")
	}
	compareT(t, "im2col fresh", got2, want, 0)
}
