//go:build amd64

package tensor

// useSIMD gates the AVX2+FMA kernels on runtime CPU support (CPUID
// feature bits plus OS XMM/YMM state saving).
var useSIMD = cpuSupportsAVX2FMA()

// cpuSupportsAVX2FMA reports whether the CPU and OS support the AVX2 and
// FMA instructions the assembly kernels use. Implemented in simd_amd64.s.
func cpuSupportsAVX2FMA() bool

// axpyAVX computes y[i] += alpha * x[i] over len(x) elements with
// 8-wide FMA. len(y) must be >= len(x). Implemented in simd_amd64.s.
//
//go:noescape
func axpyAVX(alpha float32, x, y []float32)

// dotAVX returns the inner product over len(x) elements with 8-wide
// FMA. len(y) must be >= len(x). Implemented in simd_amd64.s.
//
//go:noescape
func dotAVX(x, y []float32) float32

// SIMDEnabled reports whether the vector kernels are active; benchmarks
// surface it so recorded numbers are interpretable across machines.
func SIMDEnabled() bool { return useSIMD }

func axpy(alpha float32, x, y []float32) {
	if useSIMD {
		axpyAVX(alpha, x, y)
		return
	}
	axpyGeneric(alpha, x, y)
}

func dot(x, y []float32) float32 {
	if useSIMD {
		return dotAVX(x, y)
	}
	return dotGeneric(x, y)
}
