package tensor

import "fmt"

// ConvGeom describes a square-kernel 2-D convolution.
type ConvGeom struct {
	InC, OutC  int
	Kernel     int
	Stride     int
	Pad        int
	InH, InW   int
	OutH, OutW int
}

// NewConvGeom validates and completes a convolution geometry.
func NewConvGeom(inC, outC, kernel, stride, pad, inH, inW int) (ConvGeom, error) {
	g := ConvGeom{InC: inC, OutC: outC, Kernel: kernel, Stride: stride, Pad: pad, InH: inH, InW: inW}
	if inC <= 0 || outC <= 0 || kernel <= 0 || stride <= 0 || pad < 0 {
		return g, fmt.Errorf("tensor: invalid conv geometry %+v", g)
	}
	g.OutH = (inH+2*pad-kernel)/stride + 1
	g.OutW = (inW+2*pad-kernel)/stride + 1
	if g.OutH <= 0 || g.OutW <= 0 {
		return g, fmt.Errorf("tensor: conv output empty for %+v", g)
	}
	return g, nil
}

// Im2Col unfolds input x of shape [N, InC, InH, InW] into a matrix of
// shape [N*OutH*OutW, InC*K*K], so convolution becomes one matmul with a
// weight matrix of shape [InC*K*K, OutC]. This is the standard im2col
// formulation; the ablation bench compares it against the direct loop.
func Im2Col(x *T, g ConvGeom) *T {
	return Im2ColInto(x, g, nil)
}

// Im2ColInto is Im2Col writing into dst when dst already has the right
// shape; otherwise (nil or mismatched) a fresh matrix is allocated. It
// returns the matrix used, letting layers reuse their im2col buffer
// across batches instead of regrowing the heap every forward pass.
func Im2ColInto(x *T, g ConvGeom, dst *T) *T {
	n := x.Shape[0]
	k, stride, pad := g.Kernel, g.Stride, g.Pad
	rows, width := n*g.OutH*g.OutW, g.InC*k*k
	cols := dst
	if cols == nil || len(cols.Shape) != 2 || cols.Shape[0] != rows || cols.Shape[1] != width {
		cols = New(rows, width)
	}
	inPlane := g.InH * g.InW
	parallelWork(n*g.OutH, g.OutW*g.InC*k*k, func(lo, hi int) {
		for row := lo; row < hi; row++ {
			b := row / g.OutH
			oy := row % g.OutH
			for ox := 0; ox < g.OutW; ox++ {
				dst := cols.Data[(row*g.OutW+ox)*g.InC*k*k:]
				di := 0
				for c := 0; c < g.InC; c++ {
					src := x.Data[(b*g.InC+c)*inPlane:]
					for ky := 0; ky < k; ky++ {
						iy := oy*stride + ky - pad
						for kx := 0; kx < k; kx++ {
							ix := ox*stride + kx - pad
							if iy >= 0 && iy < g.InH && ix >= 0 && ix < g.InW {
								dst[di] = src[iy*g.InW+ix]
							} else {
								dst[di] = 0
							}
							di++
						}
					}
				}
			}
		}
	})
	return cols
}

// Col2Im folds a column-gradient matrix (shape [N*OutH*OutW, InC*K*K])
// back into an input-shaped gradient [N, InC, InH, InW], accumulating
// overlapping contributions — the adjoint of Im2Col.
func Col2Im(cols *T, n int, g ConvGeom) *T {
	k, stride, pad := g.Kernel, g.Stride, g.Pad
	out := New(n, g.InC, g.InH, g.InW)
	inPlane := g.InH * g.InW
	// Parallel over batch items: each item's output plane is private.
	parallelWork(n, g.OutH*g.OutW*g.InC*k*k, func(lo, hi int) {
		for b := lo; b < hi; b++ {
			for oy := 0; oy < g.OutH; oy++ {
				for ox := 0; ox < g.OutW; ox++ {
					src := cols.Data[((b*g.OutH+oy)*g.OutW+ox)*g.InC*k*k:]
					si := 0
					for c := 0; c < g.InC; c++ {
						dst := out.Data[(b*g.InC+c)*inPlane:]
						for ky := 0; ky < k; ky++ {
							iy := oy*stride + ky - pad
							for kx := 0; kx < k; kx++ {
								ix := ox*stride + kx - pad
								if iy >= 0 && iy < g.InH && ix >= 0 && ix < g.InW {
									dst[iy*g.InW+ix] += src[si]
								}
								si++
							}
						}
					}
				}
			}
		}
	})
	return out
}

// ConvDirect computes the convolution with plain nested loops (no im2col
// buffer). Used as the reference implementation in tests and as the
// baseline in the im2col ablation bench. Weights have shape
// [OutC, InC, K, K]; bias (optional) has shape [OutC].
func ConvDirect(x, w, bias *T, g ConvGeom) *T {
	n := x.Shape[0]
	out := New(n, g.OutC, g.OutH, g.OutW)
	k, stride, pad := g.Kernel, g.Stride, g.Pad
	inPlane := g.InH * g.InW
	outPlane := g.OutH * g.OutW
	parallelWork(n*g.OutC, g.OutH*g.OutW*g.InC*k*k, func(lo, hi int) {
		for row := lo; row < hi; row++ {
			b := row / g.OutC
			oc := row % g.OutC
			dst := out.Data[(b*g.OutC+oc)*outPlane:]
			var bv float32
			if bias != nil {
				bv = bias.Data[oc]
			}
			for oy := 0; oy < g.OutH; oy++ {
				for ox := 0; ox < g.OutW; ox++ {
					s := bv
					for c := 0; c < g.InC; c++ {
						src := x.Data[(b*g.InC+c)*inPlane:]
						wBase := ((oc * g.InC) + c) * k * k
						for ky := 0; ky < k; ky++ {
							iy := oy*stride + ky - pad
							if iy < 0 || iy >= g.InH {
								continue
							}
							for kx := 0; kx < k; kx++ {
								ix := ox*stride + kx - pad
								if ix < 0 || ix >= g.InW {
									continue
								}
								s += src[iy*g.InW+ix] * w.Data[wBase+ky*k+kx]
							}
						}
					}
					dst[oy*g.OutW+ox] = s
				}
			}
		}
	})
	return out
}

// Rot90 rotates each spatial plane of an [N, C, H, W] tensor by 90°×times
// counterclockwise. H must equal W.
func Rot90(x *T, times int) *T {
	if len(x.Shape) != 4 || x.Shape[2] != x.Shape[3] {
		panic(fmt.Sprintf("tensor: rot90 on shape %v", x.Shape))
	}
	times = ((times % 4) + 4) % 4
	if times == 0 {
		return x.Clone()
	}
	n, c, h := x.Shape[0], x.Shape[1], x.Shape[2]
	out := New(n, c, h, h)
	plane := h * h
	for p := 0; p < n*c; p++ {
		src := x.Data[p*plane : (p+1)*plane]
		dst := out.Data[p*plane : (p+1)*plane]
		for y := 0; y < h; y++ {
			for xx := 0; xx < h; xx++ {
				var sy, sx int
				switch times {
				case 1: // 90° CCW: dst(y,x) = src(x, h-1-y)
					sy, sx = xx, h-1-y
				case 2:
					sy, sx = h-1-y, h-1-xx
				case 3:
					sy, sx = h-1-xx, y
				}
				dst[y*h+xx] = src[sy*h+sx]
			}
		}
	}
	return out
}

// Upsample2x nearest-neighbor upsamples an [N, C, H, W] tensor to
// [N, C, 2H, 2W].
func Upsample2x(x *T) *T {
	n, c, h, w := x.Shape[0], x.Shape[1], x.Shape[2], x.Shape[3]
	out := New(n, c, 2*h, 2*w)
	Upsample2xInto(x, out)
	return out
}

// Upsample2xInto is Upsample2x writing into out, which must have shape
// [N, C, 2H, 2W]. Every element is overwritten.
func Upsample2xInto(x, out *T) {
	n, c, h, w := x.Shape[0], x.Shape[1], x.Shape[2], x.Shape[3]
	if len(out.Shape) != 4 || out.Shape[0] != n || out.Shape[1] != c || out.Shape[2] != 2*h || out.Shape[3] != 2*w {
		panic(fmt.Sprintf("tensor: upsample into %v from %v", out.Shape, x.Shape))
	}
	for p := 0; p < n*c; p++ {
		src := x.Data[p*h*w:]
		dst := out.Data[p*4*h*w:]
		for y := 0; y < h; y++ {
			for xx := 0; xx < w; xx++ {
				v := src[y*w+xx]
				o := (2*y)*(2*w) + 2*xx
				dst[o] = v
				dst[o+1] = v
				dst[o+2*w] = v
				dst[o+2*w+1] = v
			}
		}
	}
}

// Downsample2xSum is the adjoint of Upsample2x: each output cell is the
// sum of its 2×2 source block.
func Downsample2xSum(x *T) *T {
	n, c, h2, w2 := x.Shape[0], x.Shape[1], x.Shape[2], x.Shape[3]
	h, w := h2/2, w2/2
	out := New(n, c, h, w)
	for p := 0; p < n*c; p++ {
		src := x.Data[p*h2*w2:]
		dst := out.Data[p*h*w:]
		for y := 0; y < h; y++ {
			for xx := 0; xx < w; xx++ {
				o := (2*y)*w2 + 2*xx
				dst[y*w+xx] = src[o] + src[o+1] + src[o+w2] + src[o+w2+1]
			}
		}
	}
	return out
}
