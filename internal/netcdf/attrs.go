package netcdf

import (
	"fmt"
	"sort"
)

// Attrs is an ordered attribute set. NetCDF attributes are typed arrays;
// this API accepts the Go types the pipeline uses and normalizes scalars
// to one-element arrays, as the C library does.
type Attrs struct {
	names  []string
	values map[string]attrValue
}

type attrValue struct {
	typ  Type
	text string    // Char
	i8   []int8    // Byte
	i16  []int16   // Short
	i32  []int32   // Int
	f32  []float32 // Float
	f64  []float64 // Double
}

// NewAttrs returns an empty attribute set.
func NewAttrs() *Attrs {
	return &Attrs{values: map[string]attrValue{}}
}

// Len returns the number of attributes.
func (a *Attrs) Len() int { return len(a.names) }

// Names returns attribute names in insertion order.
func (a *Attrs) Names() []string { return append([]string(nil), a.names...) }

func (a *Attrs) put(name string, v attrValue) error {
	if err := checkName(name); err != nil {
		return err
	}
	if _, exists := a.values[name]; !exists {
		a.names = append(a.names, name)
	}
	a.values[name] = v
	return nil
}

// SetString sets a text attribute.
func (a *Attrs) SetString(name, text string) error {
	return a.put(name, attrValue{typ: Char, text: text})
}

// SetInts sets an int attribute array.
func (a *Attrs) SetInts(name string, vals ...int32) error {
	return a.put(name, attrValue{typ: Int, i32: append([]int32(nil), vals...)})
}

// SetShorts sets a short attribute array.
func (a *Attrs) SetShorts(name string, vals ...int16) error {
	return a.put(name, attrValue{typ: Short, i16: append([]int16(nil), vals...)})
}

// SetBytes sets a byte attribute array.
func (a *Attrs) SetBytes(name string, vals ...int8) error {
	return a.put(name, attrValue{typ: Byte, i8: append([]int8(nil), vals...)})
}

// SetFloats sets a float attribute array.
func (a *Attrs) SetFloats(name string, vals ...float32) error {
	return a.put(name, attrValue{typ: Float, f32: append([]float32(nil), vals...)})
}

// SetDoubles sets a double attribute array.
func (a *Attrs) SetDoubles(name string, vals ...float64) error {
	return a.put(name, attrValue{typ: Double, f64: append([]float64(nil), vals...)})
}

// GetString fetches a text attribute.
func (a *Attrs) GetString(name string) (string, bool) {
	v, ok := a.values[name]
	if !ok || v.typ != Char {
		return "", false
	}
	return v.text, true
}

// GetInts fetches an int attribute array.
func (a *Attrs) GetInts(name string) ([]int32, bool) {
	v, ok := a.values[name]
	if !ok || v.typ != Int {
		return nil, false
	}
	return v.i32, true
}

// GetFloats fetches a float attribute array.
func (a *Attrs) GetFloats(name string) ([]float32, bool) {
	v, ok := a.values[name]
	if !ok || v.typ != Float {
		return nil, false
	}
	return v.f32, true
}

// GetDoubles fetches a double attribute array.
func (a *Attrs) GetDoubles(name string) ([]float64, bool) {
	v, ok := a.values[name]
	if !ok || v.typ != Double {
		return nil, false
	}
	return v.f64, true
}

// GetShorts fetches a short attribute array.
func (a *Attrs) GetShorts(name string) ([]int16, bool) {
	v, ok := a.values[name]
	if !ok || v.typ != Short {
		return nil, false
	}
	return v.i16, true
}

// GetBytes fetches a byte attribute array.
func (a *Attrs) GetBytes(name string) ([]int8, bool) {
	v, ok := a.values[name]
	if !ok || v.typ != Byte {
		return nil, false
	}
	return v.i8, true
}

// Equal reports deep equality of two attribute sets, ignoring order.
func (a *Attrs) Equal(b *Attrs) bool {
	if a.Len() != b.Len() {
		return false
	}
	an := append([]string(nil), a.names...)
	bn := append([]string(nil), b.names...)
	sort.Strings(an)
	sort.Strings(bn)
	for i := range an {
		if an[i] != bn[i] {
			return false
		}
	}
	for _, name := range an {
		av, bv := a.values[name], b.values[name]
		if av.typ != bv.typ {
			return false
		}
		if fmt.Sprintf("%v%v%v%v%v%v", av.text, av.i8, av.i16, av.i32, av.f32, av.f64) !=
			fmt.Sprintf("%v%v%v%v%v%v", bv.text, bv.i8, bv.i16, bv.i32, bv.f32, bv.f64) {
			return false
		}
	}
	return true
}

// nelems returns the element count of the attribute payload.
func (v attrValue) nelems() int {
	switch v.typ {
	case Char:
		return len(v.text)
	case Byte:
		return len(v.i8)
	case Short:
		return len(v.i16)
	case Int:
		return len(v.i32)
	case Float:
		return len(v.f32)
	case Double:
		return len(v.f64)
	}
	return 0
}
