//go:build !amd64

package tensor

// SIMDEnabled reports whether the vector kernels are active; on
// non-amd64 platforms the scalar fallbacks are always used.
func SIMDEnabled() bool { return false }

func axpy(alpha float32, x, y []float32) { axpyGeneric(alpha, x, y) }

func dot(x, y []float32) float32 { return dotGeneric(x, y) }
