package pipereg

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"
)

// RunState is the lifecycle position of a submitted run.
type RunState string

// Run lifecycle: Pending (queued behind the concurrency limit) →
// Running → one of the three terminal states. Cancel before a slot is
// acquired goes straight from Pending to Canceled.
const (
	StatePending   RunState = "pending"
	StateRunning   RunState = "running"
	StateSucceeded RunState = "succeeded"
	StateFailed    RunState = "failed"
	StateCanceled  RunState = "canceled"
)

// Terminal reports whether the state is final.
func (s RunState) Terminal() bool {
	return s == StateSucceeded || s == StateFailed || s == StateCanceled
}

// RunRecord is the registry's public view of one submitted run.
type RunRecord struct {
	ID        string    `json:"id"`
	Tenant    string    `json:"tenant,omitempty"`
	State     RunState  `json:"state"`
	Submitted time.Time `json:"submitted"`
	Started   time.Time `json:"started,omitempty"`
	Finished  time.Time `json:"finished,omitempty"`
	Error     string    `json:"error,omitempty"`
	// Result is whatever the run function returned (nil until terminal;
	// the control plane stores the *core.Report here).
	Result any `json:"-"`
	// Meta is the opaque per-run payload the submitter attached — the
	// control plane stores its *core.Run here so handlers can reach the
	// run's live metric registry and health tracker. Held only while the
	// record is retained; eviction drops it so per-run registries become
	// garbage-collectable.
	Meta any `json:"-"`
}

// RunFunc is the work a submitted run executes. The context is canceled
// by RunRegistry.Cancel and by registry Close.
type RunFunc func(ctx context.Context) (any, error)

// runEntry is the registry's internal run state.
type runEntry struct {
	rec    RunRecord
	cancel context.CancelFunc
	done   chan struct{} // closed when the run reaches a terminal state
	seq    int           // submission order, for stable listing/eviction
}

// RunRegistry tracks the lifecycle of concurrently executing workflow
// runs: submit returns an ID immediately, a bounded semaphore limits
// how many execute at once (the rest queue as pending), Cancel aborts a
// pending or running run through its stored CancelFunc, and terminal
// runs are retained for inspection up to a bound — the oldest are
// evicted so a long-lived control plane does not accumulate every
// registry and report it ever produced.
type RunRegistry struct {
	mu sync.Mutex
	// runs maps run ID to its entry. guarded by mu
	runs map[string]*runEntry
	// nextSeq orders submissions for listing and eviction. guarded by mu
	nextSeq int
	sem     chan struct{}
	retain  int
}

// NewRunRegistry builds a run registry executing at most maxConcurrent
// runs at once (minimum 1) and retaining at most retainTerminal
// finished runs (minimum 1 — the run just finished is always
// inspectable).
func NewRunRegistry(maxConcurrent, retainTerminal int) *RunRegistry {
	if maxConcurrent < 1 {
		maxConcurrent = 1
	}
	if retainTerminal < 1 {
		retainTerminal = 1
	}
	return &RunRegistry{
		runs:   map[string]*runEntry{},
		sem:    make(chan struct{}, maxConcurrent),
		retain: retainTerminal,
	}
}

// Submit registers a run and starts its lifecycle goroutine. The
// returned ID is immediately resolvable via Get. meta travels on the
// record (see RunRecord.Meta); fn runs once a concurrency slot frees
// up, under a context canceled by Cancel.
func (r *RunRegistry) Submit(tenant string, meta any, fn RunFunc) string {
	id, _ := r.SubmitBuild(tenant, func(string) (any, RunFunc, error) { return meta, fn, nil })
	return id
}

// SubmitBuild is Submit for callers that need the run ID while
// constructing the run (the control plane labels each run's metric
// series with the registry-assigned ID). The ID is allocated first and
// passed to build; if build fails nothing is registered and the error
// is returned.
func (r *RunRegistry) SubmitBuild(tenant string, build func(id string) (meta any, fn RunFunc, err error)) (string, error) {
	r.mu.Lock()
	r.nextSeq++
	seq := r.nextSeq
	id := fmt.Sprintf("run-%06d", seq)
	r.mu.Unlock()

	meta, fn, err := build(id)
	if err != nil {
		return "", err
	}
	ctx, cancel := context.WithCancel(context.Background())
	e := &runEntry{
		rec: RunRecord{
			ID:        id,
			Tenant:    tenant,
			State:     StatePending,
			Submitted: time.Now(),
			Meta:      meta,
		},
		cancel: cancel,
		done:   make(chan struct{}),
		seq:    seq,
	}
	r.mu.Lock()
	r.runs[id] = e
	r.mu.Unlock()

	go func() {
		defer close(e.done)
		defer cancel()
		// Queue for a slot; cancellation while queued is a pending→canceled
		// transition that never runs fn.
		select {
		case r.sem <- struct{}{}:
		case <-ctx.Done():
			r.finish(e, nil, ctx.Err())
			return
		}
		defer func() { <-r.sem }()
		r.mu.Lock()
		if e.rec.State != StatePending { // canceled between select and here
			r.mu.Unlock()
			return
		}
		e.rec.State = StateRunning
		e.rec.Started = time.Now()
		r.mu.Unlock()
		result, err := fn(ctx)
		if err == nil && ctx.Err() != nil {
			err = ctx.Err() // a canceled run that returned nil still counts canceled
		}
		r.finish(e, result, err)
	}()
	return id, nil
}

// finish records the terminal state and evicts over-retention runs.
func (r *RunRegistry) finish(e *runEntry, result any, err error) {
	r.mu.Lock()
	if e.rec.State.Terminal() {
		r.mu.Unlock()
		return
	}
	e.rec.Finished = time.Now()
	e.rec.Result = result
	switch {
	case err == nil:
		e.rec.State = StateSucceeded
	case errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded):
		e.rec.State = StateCanceled
		e.rec.Error = err.Error()
	default:
		e.rec.State = StateFailed
		e.rec.Error = err.Error()
	}
	r.evictLocked()
	r.mu.Unlock()
}

// evictLocked drops the oldest terminal runs beyond the retention
// bound. Caller holds r.mu. Dropping the map entry releases the
// record's Meta (the control plane's per-run registry), which is the
// point: a long-lived engine must not pin every finished run's metrics.
func (r *RunRegistry) evictLocked() {
	var terminal []*runEntry
	for _, e := range r.runs {
		if e.rec.State.Terminal() {
			terminal = append(terminal, e)
		}
	}
	if len(terminal) <= r.retain {
		return
	}
	sort.Slice(terminal, func(i, j int) bool { return terminal[i].seq < terminal[j].seq })
	for _, e := range terminal[:len(terminal)-r.retain] {
		delete(r.runs, e.rec.ID)
	}
}

// Get returns a copy of the run's record.
func (r *RunRegistry) Get(id string) (RunRecord, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	e, ok := r.runs[id]
	if !ok {
		return RunRecord{}, false
	}
	return e.rec, true
}

// List returns every retained record in submission order.
func (r *RunRegistry) List() []RunRecord {
	r.mu.Lock()
	entries := make([]*runEntry, 0, len(r.runs))
	for _, e := range r.runs {
		entries = append(entries, e)
	}
	sort.Slice(entries, func(i, j int) bool { return entries[i].seq < entries[j].seq })
	out := make([]RunRecord, len(entries))
	for i, e := range entries {
		out[i] = e.rec
	}
	r.mu.Unlock()
	return out
}

// Cancel aborts a pending or running run via its stored CancelFunc. It
// returns false when the run is unknown or already terminal. Callers
// observe the eventual canceled state via Get or Wait — cancellation is
// asynchronous, like the POSIX signal it models.
func (r *RunRegistry) Cancel(id string) bool {
	r.mu.Lock()
	e, ok := r.runs[id]
	if !ok || e.rec.State.Terminal() {
		r.mu.Unlock()
		return false
	}
	cancel := e.cancel
	r.mu.Unlock()
	cancel()
	return true
}

// Wait blocks until the run reaches a terminal state or ctx expires,
// returning the final record.
func (r *RunRegistry) Wait(ctx context.Context, id string) (RunRecord, error) {
	r.mu.Lock()
	e, ok := r.runs[id]
	r.mu.Unlock()
	if !ok {
		return RunRecord{}, fmt.Errorf("pipereg: no run %q", id)
	}
	select {
	case <-e.done:
		r.mu.Lock()
		rec := e.rec
		r.mu.Unlock()
		return rec, nil
	case <-ctx.Done():
		return RunRecord{}, ctx.Err()
	}
}
