package tensor

// Portable scalar reference implementations of the two SIMD primitives
// behind the blocked matmul kernels. On amd64 with AVX2+FMA the
// assembly versions in simd_amd64.s are used instead; these generic
// loops are the fallback and the oracle the asm is tested against.

// axpyGeneric computes y[i] += alpha * x[i] over len(x) elements.
func axpyGeneric(alpha float32, x, y []float32) {
	y = y[:len(x)]
	for i, v := range x {
		y[i] += alpha * v
	}
}

// dotGeneric returns the inner product of x and y over len(x) elements.
func dotGeneric(x, y []float32) float32 {
	y = y[:len(x)]
	var s float32
	for i, v := range x {
		s += v * y[i]
	}
	return s
}

// dotQ8Generic returns the int8 inner product over len(x) elements,
// accumulated exactly in int32. Caller guarantees len(y) >= len(x) and
// len(x) <= MaxQ8K.
func dotQ8Generic(x, y []int8) int32 {
	y = y[:len(x)]
	var s int32
	for i, v := range x {
		s += int32(v) * int32(y[i])
	}
	return s
}

// dotQ8x4Generic computes four int8 dot products of x against the four
// consecutive length-len(x) rows packed in w (row stride = len(x)),
// writing the exact int32 sums into out. Caller guarantees
// len(w) >= 4*len(x). This is the scalar reference for dotQ8x4AVX;
// because int32 accumulation is exact the two agree bit for bit.
func dotQ8x4Generic(x, w []int8, out *[4]int32) {
	k := len(x)
	w0, w1, w2, w3 := w[:k], w[k:2*k], w[2*k:3*k], w[3*k:4*k]
	var s0, s1, s2, s3 int32
	for i, v := range x {
		xv := int32(v)
		s0 += xv * int32(w0[i])
		s1 += xv * int32(w1[i])
		s2 += xv * int32(w2[i])
		s3 += xv * int32(w3[i])
	}
	out[0], out[1], out[2], out[3] = s0, s1, s2, s3
}

// maxAbsGeneric returns max |x[i]|. NaN values lose every comparison, so
// they are ignored — the same semantics the NaN-aware MAXPS operand
// order gives the assembly version.
func maxAbsGeneric(x []float32) float32 {
	var m float32
	for _, v := range x {
		if v < 0 {
			v = -v
		}
		if v > m {
			m = v
		}
	}
	return m
}

// quantizeGeneric quantizes src into dst (len(dst) >= len(src)) with
// the reciprocal scale inv. Scalar reference for quantize32AVX; the two
// agree bit for bit.
func quantizeGeneric(dst []int8, src []float32, inv float32) {
	for i, v := range src {
		dst[i] = quantizeVal(v, inv)
	}
}
