package netcdf

import (
	"encoding/binary"
	"math"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
	"testing/quick"
)

func buildTileFile(t *testing.T) *File {
	t.Helper()
	f := New()
	must := func(err error) {
		t.Helper()
		if err != nil {
			t.Fatal(err)
		}
	}
	must(f.AddDim("tile", 3))
	must(f.AddDim("y", 4))
	must(f.AddDim("x", 4))
	must(f.AddDim("band", 2))
	must(f.Attrs.SetString("title", "AICCA ocean-cloud tiles"))
	must(f.Attrs.SetInts("granule_index", 150))
	must(f.Attrs.SetDoubles("created", 1656e6))

	rad := make([]float32, 3*2*4*4)
	for i := range rad {
		rad[i] = float32(i) / 7
	}
	v, err := f.AddFloat("radiance", []string{"tile", "band", "y", "x"}, rad)
	must(err)
	must(v.Attrs.SetString("units", "W/m^2/um/sr"))
	must(v.Attrs.SetFloats("scale_factor", 0.002))

	labels := []int16{-1, 7, 41}
	_, err = f.AddShort("label", []string{"tile"}, labels)
	must(err)

	lats := []float64{-10.5, 0.25, 33.0}
	_, err = f.AddDouble("lat", []string{"tile"}, lats)
	must(err)

	counts := []int32{100, 200, 300}
	_, err = f.AddInt("count", []string{"tile"}, counts)
	must(err)

	flags := []int8{0, 1, 2}
	_, err = f.AddByte("flag", []string{"tile"}, flags)
	must(err)

	_, err = f.AddChar("tag", []string{"tile"}, "abc")
	must(err)
	return f
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	f := buildTileFile(t)
	data, err := Encode(f)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Decode(data)
	if err != nil {
		t.Fatal(err)
	}

	if !reflect.DeepEqual(got.Dims(), f.Dims()) {
		t.Fatalf("dims: %v vs %v", got.Dims(), f.Dims())
	}
	if !got.Attrs.Equal(f.Attrs) {
		t.Fatal("global attrs differ")
	}
	rv, err := got.Var("radiance")
	if err != nil {
		t.Fatal(err)
	}
	rad, err := rv.Float32s()
	if err != nil {
		t.Fatal(err)
	}
	orig, _ := f.varIdx["radiance"].Float32s()
	if !reflect.DeepEqual(rad, orig) {
		t.Fatal("radiance data differs")
	}
	if units, ok := rv.Attrs.GetString("units"); !ok || units != "W/m^2/um/sr" {
		t.Fatalf("units attr = %q, %v", units, ok)
	}
	if sf, ok := rv.Attrs.GetFloats("scale_factor"); !ok || sf[0] != 0.002 {
		t.Fatalf("scale_factor = %v", sf)
	}
	lv, _ := got.Var("label")
	labels, err := lv.Int16s()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(labels, []int16{-1, 7, 41}) {
		t.Fatalf("labels = %v", labels)
	}
	latV, _ := got.Var("lat")
	lats, _ := latV.Float64s()
	if !reflect.DeepEqual(lats, []float64{-10.5, 0.25, 33.0}) {
		t.Fatalf("lats = %v", lats)
	}
	cv, _ := got.Var("count")
	counts, _ := cv.Int32s()
	if !reflect.DeepEqual(counts, []int32{100, 200, 300}) {
		t.Fatalf("counts = %v", counts)
	}
	fv, _ := got.Var("flag")
	flags, _ := fv.Int8s()
	if !reflect.DeepEqual(flags, []int8{0, 1, 2}) {
		t.Fatalf("flags = %v", flags)
	}
	tv, _ := got.Var("tag")
	text, _ := tv.Text()
	if text != "abc" {
		t.Fatalf("tag = %q", text)
	}
}

func TestSpecHeaderLayout(t *testing.T) {
	// Byte-level checks against the CDF-1 spec: magic, numrecs, the
	// dimension list tag, and big-endian name encoding.
	f := New()
	if err := f.AddDim("x", 2); err != nil {
		t.Fatal(err)
	}
	if _, err := f.AddShort("v", []string{"x"}, []int16{258, -2}); err != nil {
		t.Fatal(err)
	}
	data, err := Encode(f)
	if err != nil {
		t.Fatal(err)
	}
	if string(data[:3]) != "CDF" || data[3] != 1 {
		t.Fatalf("magic = % x", data[:4])
	}
	if binary.BigEndian.Uint32(data[4:8]) != 0 {
		t.Fatal("numrecs != 0")
	}
	if binary.BigEndian.Uint32(data[8:12]) != 0x0A {
		t.Fatalf("dim list tag = %#x", binary.BigEndian.Uint32(data[8:12]))
	}
	if binary.BigEndian.Uint32(data[12:16]) != 1 {
		t.Fatal("dim count != 1")
	}
	// name: len=1, 'x', pad to 4
	if binary.BigEndian.Uint32(data[16:20]) != 1 || data[20] != 'x' {
		t.Fatalf("dim name encoding wrong: % x", data[16:24])
	}
	// Variable data: 2 shorts big-endian, padded to 4 at EOF.
	if len(data)%4 != 0 {
		t.Fatalf("file length %d not 4-aligned", len(data))
	}
	payload := data[len(data)-4:]
	if binary.BigEndian.Uint16(payload[0:2]) != 258 {
		t.Fatalf("first short = % x", payload)
	}
	if int16(binary.BigEndian.Uint16(payload[2:4])) != -2 {
		t.Fatalf("second short = % x", payload)
	}
}

func TestShapeValidation(t *testing.T) {
	f := New()
	if err := f.AddDim("x", 3); err != nil {
		t.Fatal(err)
	}
	if _, err := f.AddFloat("v", []string{"x"}, make([]float32, 2)); err == nil {
		t.Fatal("wrong element count accepted")
	}
	if _, err := f.AddFloat("v", []string{"nope"}, make([]float32, 3)); err == nil {
		t.Fatal("unknown dimension accepted")
	}
	if _, err := f.AddFloat("v", []string{"x"}, make([]float32, 3)); err != nil {
		t.Fatal(err)
	}
	if _, err := f.AddFloat("v", []string{"x"}, make([]float32, 3)); err == nil {
		t.Fatal("duplicate variable accepted")
	}
}

func TestDimValidation(t *testing.T) {
	f := New()
	if err := f.AddDim("x", 0); err == nil {
		t.Fatal("zero-length dimension accepted")
	}
	if err := f.AddDim("", 1); err == nil {
		t.Fatal("empty name accepted")
	}
	if err := f.AddDim("x", 1); err != nil {
		t.Fatal(err)
	}
	if err := f.AddDim("x", 2); err == nil {
		t.Fatal("duplicate dimension accepted")
	}
}

func TestScalarVariable(t *testing.T) {
	f := New()
	if _, err := f.AddInt("answer", nil, []int32{42}); err != nil {
		t.Fatal(err)
	}
	data, err := Encode(f)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Decode(data)
	if err != nil {
		t.Fatal(err)
	}
	v, err := got.Var("answer")
	if err != nil {
		t.Fatal(err)
	}
	vals, _ := v.Int32s()
	if len(vals) != 1 || vals[0] != 42 {
		t.Fatalf("scalar = %v", vals)
	}
}

func TestDecodeRejectsGarbage(t *testing.T) {
	cases := map[string][]byte{
		"empty":       {},
		"bad magic":   []byte("HDF5aaaaaaaaaaaa"),
		"cdf2":        {'C', 'D', 'F', 2, 0, 0, 0, 0},
		"cdf5":        {'C', 'D', 'F', 5, 0, 0, 0, 0},
		"numrecs":     {'C', 'D', 'F', 1, 0, 0, 0, 9},
		"short":       {'C', 'D', 'F', 1, 0, 0},
		"absent tail": {'C', 'D', 'F', 1, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 7},
	}
	for name, data := range cases {
		if _, err := Decode(data); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

func TestDecodeRejectsTruncation(t *testing.T) {
	f := buildTileFile(t)
	data, err := Encode(f)
	if err != nil {
		t.Fatal(err)
	}
	for n := 4; n < len(data)-1; n += 11 {
		if _, err := Decode(data[:n]); err == nil {
			t.Fatalf("truncation to %d bytes accepted", n)
		}
	}
}

func TestFileRoundTripOnDisk(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "tiles.nc")
	f := buildTileFile(t)
	if err := WriteFile(path, f); err != nil {
		t.Fatal(err)
	}
	got, err := ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if title, ok := got.Attrs.GetString("title"); !ok || !strings.Contains(title, "AICCA") {
		t.Fatalf("title = %q", title)
	}
}

func TestTypeAccessorMismatch(t *testing.T) {
	f := New()
	v, err := f.AddFloat("v", nil, []float32{1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := v.Int32s(); err == nil {
		t.Error("Int32s on float")
	}
	if _, err := v.Float64s(); err == nil {
		t.Error("Float64s on float")
	}
	if _, err := v.Text(); err == nil {
		t.Error("Text on float")
	}
}

// Property: float32 payloads of any shape and value (including NaN bit
// patterns) survive encode/decode bit-for-bit, and attributes round-trip.
func TestRoundTripProperty(t *testing.T) {
	prop := func(raw []uint32, label string, scale float64) bool {
		if len(raw) == 0 {
			raw = []uint32{0}
		}
		if len(raw) > 256 {
			raw = raw[:256]
		}
		vals := make([]float32, len(raw))
		for i, u := range raw {
			vals[i] = math.Float32frombits(u)
		}
		f := New()
		if err := f.AddDim("n", len(vals)); err != nil {
			return false
		}
		v, err := f.AddFloat("data", []string{"n"}, vals)
		if err != nil {
			return false
		}
		if err := v.Attrs.SetString("label", label); err != nil {
			return false
		}
		if err := f.Attrs.SetDoubles("scale", scale); err != nil {
			return false
		}
		data, err := Encode(f)
		if err != nil {
			return false
		}
		got, err := Decode(data)
		if err != nil {
			return false
		}
		gv, err := got.Var("data")
		if err != nil {
			return false
		}
		back, err := gv.Float32s()
		if err != nil {
			return false
		}
		for i := range vals {
			if math.Float32bits(vals[i]) != math.Float32bits(back[i]) {
				return false
			}
		}
		if l, ok := gv.Attrs.GetString("label"); !ok || l != label {
			return false
		}
		s, ok := got.Attrs.GetDoubles("scale")
		if !ok || len(s) != 1 {
			return false
		}
		return math.Float64bits(s[0]) == math.Float64bits(scale)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: data offsets in the header are consistent — decoding after
// re-encoding a decoded file yields identical bytes (a fixed point).
func TestEncodeFixedPointProperty(t *testing.T) {
	f := buildTileFile(t)
	d1, err := Encode(f)
	if err != nil {
		t.Fatal(err)
	}
	g, err := Decode(d1)
	if err != nil {
		t.Fatal(err)
	}
	d2, err := Encode(g)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(d1, d2) {
		t.Fatal("encode-decode-encode is not a fixed point")
	}
}
