package experiments

import (
	"fmt"

	"github.com/eoml/eoml/internal/cluster"
	"github.com/eoml/eoml/internal/sim"
	"github.com/eoml/eoml/internal/slurmsim"
)

// ScalingConfig drives the Fig. 4 / Fig. 5 / Table I sweeps.
type ScalingConfig struct {
	// Iterations per data point (5 in the paper).
	Iterations int
	// TilesPerFile is the mean ocean-cloud tile yield of a MOD02 granule
	// (≈42 on the benchmark day: 12,000 tiles from 288 granules).
	TilesPerFile int
	// TileJitterSigma perturbs per-tile service times.
	TileJitterSigma float64
	// SchedLatency is the Slurm allocation latency in virtual seconds.
	SchedLatency float64
	Seed         int64
}

// DefaultScalingConfig matches the paper's setup.
func DefaultScalingConfig() ScalingConfig {
	return ScalingConfig{
		Iterations:      5,
		TilesPerFile:    42,
		TileJitterSigma: 0.25,
		SchedLatency:    2.0,
		Seed:            1,
	}
}

// ScalingPoint is one row of Fig. 4/5 (completion time) and Table I
// (throughput).
type ScalingPoint struct {
	Workers     int // total workers
	Nodes       int
	Files       int
	Tiles       int
	MeanSeconds float64
	StdSeconds  float64
	TilesPerSec float64 // mean tiles per second across iterations
}

// runPreprocess simulates one preprocessing campaign: files are a shared
// bag; workers (spread over an allocation of nodes, workersPerNode each)
// pull the next file when free. Returns the makespan in virtual seconds
// and the total tile count.
func runPreprocess(cfg ScalingConfig, nodes, workersPerNode, files int, rng *sim.RNG) (float64, int) {
	k := sim.NewKernel()
	spec := cluster.Defiant()
	if nodes > spec.Nodes {
		spec.Nodes = nodes
	}
	machine, err := cluster.New(k, spec)
	if err != nil {
		panic(err) // static spec: programming error
	}
	sched := slurmsim.New(k, machine, slurmsim.Config{SchedLatency: sim.Duration(cfg.SchedLatency)})

	// Per-file tile yields, jittered around the mean like real granules
	// (ocean fraction and cloudiness vary swath to swath).
	tileCounts := make([]int, files)
	totalTiles := 0
	for i := range tileCounts {
		n := int(float64(cfg.TilesPerFile) * rng.LogNormalFactor(0.15))
		if n < 1 {
			n = 1
		}
		tileCounts[i] = n
		totalTiles += n
	}
	nextFile := 0
	var start, finish sim.Time
	filesDone := 0

	if _, err := sched.Submit(nodes, func(a *slurmsim.Allocation) {
		start = k.Now()
		for _, node := range a.Nodes {
			for w := 0; w < workersPerNode; w++ {
				worker := &cluster.Worker{
					Node:        node,
					Cost:        cluster.DefaultTileCost(),
					RNG:         rng.Fork(),
					JitterSigma: cfg.TileJitterSigma,
				}
				worker.SetSharedFS(machine.SharedFS)
				worker.RunQueue(func() (int, bool) {
					if nextFile >= len(tileCounts) {
						return 0, false
					}
					n := tileCounts[nextFile]
					nextFile++
					return n, true
				}, func(int) {
					filesDone++
					if filesDone == files {
						finish = k.Now()
						a.Release()
					}
				}, nil)
			}
		}
	}); err != nil {
		panic(err)
	}
	k.Run()
	return float64(finish - start), totalTiles
}

// sweep runs one scaling configuration across iterations.
func sweep(cfg ScalingConfig, nodes, workersPerNode, files int, rng *sim.RNG) ScalingPoint {
	var times []float64
	var rates []float64
	tiles := 0
	for it := 0; it < cfg.Iterations; it++ {
		t, n := runPreprocess(cfg, nodes, workersPerNode, files, rng.Fork())
		times = append(times, t)
		rates = append(rates, float64(n)/t)
		tiles = n
	}
	meanT, stdT := meanStd(times)
	meanR, _ := meanStd(rates)
	return ScalingPoint{
		Workers:     nodes * workersPerNode,
		Nodes:       nodes,
		Files:       files,
		Tiles:       tiles,
		MeanSeconds: meanT,
		StdSeconds:  stdT,
		TilesPerSec: meanR,
	}
}

// Fig4StrongWorkers: 128 MOD02 files fixed; workers double 1→128. Beyond
// 64 workers a second node is used (64 cores per node), exactly as in the
// paper.
func Fig4StrongWorkers(cfg ScalingConfig) []ScalingPoint {
	rng := sim.NewRNG(cfg.Seed)
	var out []ScalingPoint
	for _, w := range []int{1, 2, 4, 8, 16, 32, 64, 128} {
		nodes, perNode := 1, w
		if w > 64 {
			nodes, perNode = 2, w/2
		}
		out = append(out, sweep(cfg, nodes, perNode, 128, rng.Fork()))
	}
	return out
}

// Fig4StrongNodes: 80 files fixed, 8 workers per node, nodes 1→10.
func Fig4StrongNodes(cfg ScalingConfig) []ScalingPoint {
	rng := sim.NewRNG(cfg.Seed + 1)
	var out []ScalingPoint
	for nodes := 1; nodes <= 10; nodes++ {
		out = append(out, sweep(cfg, nodes, 8, 80, rng.Fork()))
	}
	return out
}

// Fig5WeakWorkers: 2 files per worker; workers double 1→128.
func Fig5WeakWorkers(cfg ScalingConfig) []ScalingPoint {
	rng := sim.NewRNG(cfg.Seed + 2)
	var out []ScalingPoint
	for _, w := range []int{1, 2, 4, 8, 16, 32, 64, 128} {
		nodes, perNode := 1, w
		if w > 64 {
			nodes, perNode = 2, w/2
		}
		out = append(out, sweep(cfg, nodes, perNode, 2*w, rng.Fork()))
	}
	return out
}

// Fig5WeakNodes: 8 workers per node, 2 files per worker, nodes 1→10.
func Fig5WeakNodes(cfg ScalingConfig) []ScalingPoint {
	rng := sim.NewRNG(cfg.Seed + 3)
	var out []ScalingPoint
	for nodes := 1; nodes <= 10; nodes++ {
		out = append(out, sweep(cfg, nodes, 8, 2*8*nodes, rng.Fork()))
	}
	return out
}

// Table1 bundles the four Table I sweeps.
type Table1 struct {
	StrongWorkers []ScalingPoint
	StrongNodes   []ScalingPoint
	WeakWorkers   []ScalingPoint
	WeakNodes     []ScalingPoint
}

// RunTable1 executes all four sweeps.
func RunTable1(cfg ScalingConfig) Table1 {
	return Table1{
		StrongWorkers: Fig4StrongWorkers(cfg),
		StrongNodes:   Fig4StrongNodes(cfg),
		WeakWorkers:   Fig5WeakWorkers(cfg),
		WeakNodes:     Fig5WeakNodes(cfg),
	}
}

// RenderScaling prints a Fig. 4/5-style series.
func RenderScaling(title, xLabel string, points []ScalingPoint, byNodes bool) string {
	s := title + "\n"
	s += fmt.Sprintf("%-10s %-8s %-14s %-10s %-14s\n", xLabel, "files", "time (s)", "± std", "tiles/sec")
	for _, p := range points {
		x := p.Workers
		if byNodes {
			x = p.Nodes
		}
		s += fmt.Sprintf("%-10d %-8d %-14.2f %-10.2f %-14.2f\n", x, p.Files, p.MeanSeconds, p.StdSeconds, p.TilesPerSec)
	}
	return s
}

// RenderTable1 prints the full Table I layout.
func RenderTable1(t Table1) string {
	s := "Table I: Throughput of MODIS tile preprocessing (tiles per second)\n\n"
	s += "Strong scaling\n"
	s += fmt.Sprintf("%-10s %-14s    %-8s %-14s\n", "# workers", "# tile per sec", "# nodes", "# tile per sec")
	for i := 0; i < len(t.StrongWorkers) || i < len(t.StrongNodes); i++ {
		w, wr, n, nr := "-", "-", "-", "-"
		if i < len(t.StrongWorkers) {
			w = fmt.Sprint(t.StrongWorkers[i].Workers)
			wr = fmt.Sprintf("%.2f", t.StrongWorkers[i].TilesPerSec)
		}
		if i < len(t.StrongNodes) {
			n = fmt.Sprint(t.StrongNodes[i].Nodes)
			nr = fmt.Sprintf("%.2f", t.StrongNodes[i].TilesPerSec)
		}
		s += fmt.Sprintf("%-10s %-14s    %-8s %-14s\n", w, wr, n, nr)
	}
	s += "\nWeak scaling\n"
	s += fmt.Sprintf("%-10s %-14s    %-8s %-14s\n", "# workers", "# tile per sec", "# nodes", "# tile per sec")
	for i := 0; i < len(t.WeakWorkers) || i < len(t.WeakNodes); i++ {
		w, wr, n, nr := "-", "-", "-", "-"
		if i < len(t.WeakWorkers) {
			w = fmt.Sprint(t.WeakWorkers[i].Workers)
			wr = fmt.Sprintf("%.2f", t.WeakWorkers[i].TilesPerSec)
		}
		if i < len(t.WeakNodes) {
			n = fmt.Sprint(t.WeakNodes[i].Nodes)
			nr = fmt.Sprintf("%.2f", t.WeakNodes[i].TilesPerSec)
		}
		s += fmt.Sprintf("%-10s %-14s    %-8s %-14s\n", w, wr, n, nr)
	}
	return s
}

// Headline reproduces the abstract's claim: 12,000 tiles with 80 workers
// on 10 nodes. Returns the virtual makespan (paper: ≈44 s) and rate.
func Headline(cfg ScalingConfig) (seconds float64, tilesPerSec float64) {
	rng := sim.NewRNG(cfg.Seed + 4)
	files := 12000 / cfg.TilesPerFile
	t, tiles := runPreprocess(cfg, 10, 8, files, rng)
	return t, float64(tiles) / t
}
