package sim

import (
	"math"
	"math/rand"
)

// RNG is a deterministic random stream for simulation models. Each model
// component should own its own stream (derived via Fork) so that adding a
// component never perturbs the draws seen by another — the standard
// variance-reduction discipline for discrete-event simulations.
type RNG struct {
	r *rand.Rand
}

// NewRNG returns a stream seeded with seed.
func NewRNG(seed int64) *RNG {
	return &RNG{r: rand.New(rand.NewSource(seed))}
}

// Fork derives an independent child stream. The child's seed is a function
// of the parent stream state, so forking is itself deterministic.
func (g *RNG) Fork() *RNG {
	return NewRNG(g.r.Int63())
}

// Float64 returns a uniform draw in [0, 1).
func (g *RNG) Float64() float64 { return g.r.Float64() }

// Intn returns a uniform draw in [0, n).
func (g *RNG) Intn(n int) int { return g.r.Intn(n) }

// Normal returns a Gaussian draw with the given mean and standard
// deviation.
func (g *RNG) Normal(mean, stddev float64) float64 {
	return mean + stddev*g.r.NormFloat64()
}

// LogNormalFactor returns a multiplicative jitter factor whose logarithm is
// Gaussian with standard deviation sigma. It is the conventional way to
// perturb task service times without ever producing a negative duration.
func (g *RNG) LogNormalFactor(sigma float64) float64 {
	if sigma <= 0 {
		return 1
	}
	return math.Exp(g.r.NormFloat64() * sigma)
}

// Exp returns an exponential draw with the given mean.
func (g *RNG) Exp(mean float64) float64 {
	return g.r.ExpFloat64() * mean
}

// Perm returns a random permutation of [0, n).
func (g *RNG) Perm(n int) []int { return g.r.Perm(n) }
