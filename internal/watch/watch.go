// Package watch implements the filesystem crawler behind the workflow's
// Monitor & Trigger stage: a poll-based scanner that detects newly
// created files once they are stable (size unchanged across two scans)
// and hands them to a trigger callback exactly once.
//
// Stability detection matters because the paper notes HDF read errors
// from partially written files; the crawler never triggers on a file that
// is still growing, and writers in this repository additionally use
// temp-file + rename so a scan can't even see partial granules.
package watch

import (
	"context"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"
)

// Config tunes a crawler.
type Config struct {
	// Dir is the directory to scan (recursively).
	Dir string
	// Pattern filters file names with filepath.Match; empty matches all.
	Pattern string
	// Interval is the poll period.
	Interval time.Duration
	// IgnoreSuffixes skips in-flight files (".part", ".tmp", ...).
	IgnoreSuffixes []string
}

func (c *Config) fillDefaults() error {
	if c.Dir == "" {
		return fmt.Errorf("watch: no directory")
	}
	if c.Interval <= 0 {
		c.Interval = 50 * time.Millisecond
	}
	if c.IgnoreSuffixes == nil {
		c.IgnoreSuffixes = []string{".part", ".tmp", ".transferring"}
	}
	return nil
}

// Event reports one newly stable file.
type Event struct {
	Path string
	Size int64
}

// Crawler scans a directory tree and emits each stable file once.
type Crawler struct {
	cfg Config

	mu        sync.Mutex
	lastSize  map[string]int64
	triggered map[string]bool
	scans     int
}

// NewCrawler builds a crawler.
func NewCrawler(cfg Config) (*Crawler, error) {
	if err := cfg.fillDefaults(); err != nil {
		return nil, err
	}
	return &Crawler{
		cfg:       cfg,
		lastSize:  map[string]int64{},
		triggered: map[string]bool{},
	}, nil
}

// Scans reports how many scans have run.
func (c *Crawler) Scans() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.scans
}

// ScanOnce walks the tree and returns files that are new since the
// previous scan and stable (same size in two consecutive scans). Each
// file is returned at most once over the crawler's lifetime.
func (c *Crawler) ScanOnce() ([]Event, error) {
	type seen struct {
		path string
		size int64
	}
	var found []seen
	err := filepath.Walk(c.cfg.Dir, func(path string, info os.FileInfo, err error) error {
		if err != nil {
			// A file may vanish between readdir and stat; skip it.
			if os.IsNotExist(err) {
				return nil
			}
			return err
		}
		if info.IsDir() {
			return nil
		}
		name := info.Name()
		for _, suf := range c.cfg.IgnoreSuffixes {
			if strings.HasSuffix(name, suf) {
				return nil
			}
		}
		if c.cfg.Pattern != "" {
			ok, err := filepath.Match(c.cfg.Pattern, name)
			if err != nil {
				return err
			}
			if !ok {
				return nil
			}
		}
		found = append(found, seen{path: path, size: info.Size()})
		return nil
	})
	if err != nil {
		return nil, err
	}

	c.mu.Lock()
	defer c.mu.Unlock()
	c.scans++
	var events []Event
	for _, f := range found {
		if c.triggered[f.path] {
			continue
		}
		prev, known := c.lastSize[f.path]
		c.lastSize[f.path] = f.size
		if known && prev == f.size {
			c.triggered[f.path] = true
			events = append(events, Event{Path: f.path, Size: f.size})
		}
	}
	sort.Slice(events, func(i, j int) bool { return events[i].Path < events[j].Path })
	return events, nil
}

// Run polls until ctx is cancelled, invoking trigger for every batch of
// newly stable files. Trigger errors stop the crawler and are returned.
func (c *Crawler) Run(ctx context.Context, trigger func(events []Event) error) error {
	ticker := time.NewTicker(c.cfg.Interval)
	defer ticker.Stop()
	for {
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-ticker.C:
			events, err := c.ScanOnce()
			if err != nil {
				return err
			}
			if len(events) > 0 {
				if err := trigger(events); err != nil {
					return err
				}
			}
		}
	}
}

// DrainUntilIdle polls until idleScans consecutive scans produce no new
// events (or ctx is cancelled), collecting everything triggered. It is
// the synchronous variant used when downloads are known to be finished.
func (c *Crawler) DrainUntilIdle(ctx context.Context, idleScans int) ([]Event, error) {
	if idleScans <= 0 {
		idleScans = 2
	}
	var all []Event
	idle := 0
	for idle < idleScans {
		if ctx.Err() != nil {
			return all, ctx.Err()
		}
		events, err := c.ScanOnce()
		if err != nil {
			return all, err
		}
		if len(events) == 0 {
			idle++
		} else {
			idle = 0
			all = append(all, events...)
		}
		select {
		case <-ctx.Done():
			return all, ctx.Err()
		case <-time.After(c.cfg.Interval):
		}
	}
	return all, nil
}
