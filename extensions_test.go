package eoml_test

import (
	"context"
	"fmt"
	"testing"

	"github.com/eoml/eoml"
)

func TestSchemaRegistryFacade(t *testing.T) {
	r, err := eoml.NewSchemaRegistry()
	if err != nil {
		t.Fatal(err)
	}
	if err := r.ValidateChain([]string{"download", "preprocess", "inference", "shipment"}); err != nil {
		t.Fatalf("published chain invalid: %v", err)
	}
	if err := r.ValidateChain([]string{"download", "inference"}); err == nil {
		t.Fatal("download->inference chain accepted (granules are not tiles)")
	}
}

func TestPipelineRegistryFacade(t *testing.T) {
	r, err := eoml.NewPipelineRegistry()
	if err != nil {
		t.Fatal(err)
	}
	pub, err := r.Publish(eoml.EOMLRegisteredPipeline())
	if err != nil {
		t.Fatal(err)
	}
	if pub.Ref() != "eo-ml-cloud-classification@1" {
		t.Fatalf("ref = %s", pub.Ref())
	}
	inst, err := r.Instantiate("eo-ml-cloud-classification", map[string]any{"preprocess_workers": 64})
	if err != nil {
		t.Fatal(err)
	}
	if inst.Params["preprocess_workers"] != 64 {
		t.Fatalf("params = %v", inst.Params)
	}
	if got := r.Search("modis"); len(got) != 1 {
		t.Fatalf("search = %v", got)
	}
}

func TestOrchestratorFacade(t *testing.T) {
	o := eoml.NewOrchestrator()
	olcf, err := eoml.NewFacilityAgent("olcf", 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := olcf.RegisterPlugin("echo", func(ctx context.Context, p map[string]any) (any, error) {
		return fmt.Sprint("echo:", p["msg"]), nil
	}); err != nil {
		t.Fatal(err)
	}
	if err := o.Connect(olcf); err != nil {
		t.Fatal(err)
	}
	run, err := o.Submit(context.Background(), &eoml.Campaign{
		Name: "hello",
		Activities: []eoml.CampaignActivity{
			{ID: "a", Facility: "olcf", Plugin: "echo", Params: map[string]any{"msg": "hi"}},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := run.Wait(context.Background()); err != nil {
		t.Fatal(err)
	}
	res, err := run.Result("a")
	if err != nil || res != "echo:hi" {
		t.Fatalf("result %v %v", res, err)
	}
}
