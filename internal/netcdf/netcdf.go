// Package netcdf implements the NetCDF-3 "classic" file format (CDF-1)
// from the published specification, using only the standard library.
//
// The EO-ML workflow's preprocessing stage writes ocean-cloud tiles as
// NetCDF, and the inference stage appends AICCA cloud-class labels to the
// same files — so the reproduction needs a real, spec-conforming NetCDF
// codec, not a stand-in. The subset implemented here covers everything the
// pipeline (and the AICCA dataset itself) uses: fixed-size dimensions,
// global and per-variable attributes, and the six classic external types.
// Record (unlimited) dimensions are intentionally unsupported; tile files
// are fixed-shape by construction.
//
// Files written by this package are readable by ncdump and other standard
// NetCDF tools, and the decoder rejects malformed input with precise
// errors rather than guessing.
package netcdf

import (
	"encoding/binary"
	"fmt"
	"math"
	"os"
	"strings"
)

// Type enumerates the NetCDF classic external types.
type Type int32

// External types with their on-disk codes.
const (
	Byte   Type = 1 // NC_BYTE, int8
	Char   Type = 2 // NC_CHAR, text
	Short  Type = 3 // NC_SHORT, int16
	Int    Type = 4 // NC_INT, int32
	Float  Type = 5 // NC_FLOAT, float32
	Double Type = 6 // NC_DOUBLE, float64
)

// Size returns the byte width of one element.
func (t Type) Size() int {
	switch t {
	case Byte, Char:
		return 1
	case Short:
		return 2
	case Int, Float:
		return 4
	case Double:
		return 8
	}
	return 0
}

// String names the type as in CDL.
func (t Type) String() string {
	switch t {
	case Byte:
		return "byte"
	case Char:
		return "char"
	case Short:
		return "short"
	case Int:
		return "int"
	case Float:
		return "float"
	case Double:
		return "double"
	}
	return fmt.Sprintf("type(%d)", int32(t))
}

// list tags in the header.
const (
	tagDimension uint32 = 0x0A
	tagVariable  uint32 = 0x0B
	tagAttribute uint32 = 0x0C
)

// Dim is a named fixed-size dimension.
type Dim struct {
	Name string
	Len  int
}

// Var is a variable: a typed n-dimensional array over named dimensions.
type Var struct {
	Name  string
	Type  Type
	Dims  []string // dimension names, outermost first
	Attrs *Attrs
	data  []byte // big-endian external representation
}

// File is an in-memory NetCDF dataset.
type File struct {
	dims   []Dim
	dimIdx map[string]int
	Attrs  *Attrs
	vars   []*Var
	varIdx map[string]*Var
}

// New returns an empty dataset.
func New() *File {
	return &File{
		dimIdx: map[string]int{},
		Attrs:  NewAttrs(),
		varIdx: map[string]*Var{},
	}
}

// AddDim defines a dimension. Lengths must be positive (no record
// dimension support).
func (f *File) AddDim(name string, n int) error {
	if err := checkName(name); err != nil {
		return err
	}
	if n <= 0 {
		return fmt.Errorf("netcdf: dimension %q length %d (record dimensions unsupported)", name, n)
	}
	if _, dup := f.dimIdx[name]; dup {
		return fmt.Errorf("netcdf: duplicate dimension %q", name)
	}
	f.dimIdx[name] = len(f.dims)
	f.dims = append(f.dims, Dim{Name: name, Len: n})
	return nil
}

// Dims returns the defined dimensions in order.
func (f *File) Dims() []Dim { return f.dims }

// DimLen returns the length of a named dimension.
func (f *File) DimLen(name string) (int, error) {
	i, ok := f.dimIdx[name]
	if !ok {
		return 0, fmt.Errorf("netcdf: no dimension %q", name)
	}
	return f.dims[i].Len, nil
}

// Vars returns the variables in definition order.
func (f *File) Vars() []*Var { return f.vars }

// Var returns the named variable.
func (f *File) Var(name string) (*Var, error) {
	v, ok := f.varIdx[name]
	if !ok {
		names := make([]string, 0, len(f.vars))
		for _, v := range f.vars {
			names = append(names, v.Name)
		}
		return nil, fmt.Errorf("netcdf: no variable %q (have %v)", name, names)
	}
	return v, nil
}

// shape returns the element count of a variable under this file's
// dimensions.
func (f *File) shape(dims []string) (int, error) {
	n := 1
	for _, d := range dims {
		l, err := f.DimLen(d)
		if err != nil {
			return 0, err
		}
		n *= l
	}
	return n, nil
}

func (f *File) addVar(v *Var, elems int, byteLen int) error {
	if err := checkName(v.Name); err != nil {
		return err
	}
	if _, dup := f.varIdx[v.Name]; dup {
		return fmt.Errorf("netcdf: duplicate variable %q", v.Name)
	}
	want, err := f.shape(v.Dims)
	if err != nil {
		return fmt.Errorf("netcdf: variable %q: %w", v.Name, err)
	}
	if elems != want {
		return fmt.Errorf("netcdf: variable %q: %d elements for shape %v (want %d)", v.Name, elems, v.Dims, want)
	}
	if byteLen != elems*v.Type.Size() {
		return fmt.Errorf("netcdf: variable %q: internal size mismatch", v.Name)
	}
	f.vars = append(f.vars, v)
	f.varIdx[v.Name] = v
	return nil
}

// AddFloat adds a float32 variable.
func (f *File) AddFloat(name string, dims []string, values []float32) (*Var, error) {
	data := make([]byte, 4*len(values))
	for i, x := range values {
		binary.BigEndian.PutUint32(data[4*i:], math.Float32bits(x))
	}
	v := &Var{Name: name, Type: Float, Dims: append([]string(nil), dims...), Attrs: NewAttrs(), data: data}
	if err := f.addVar(v, len(values), len(data)); err != nil {
		return nil, err
	}
	return v, nil
}

// AddDouble adds a float64 variable.
func (f *File) AddDouble(name string, dims []string, values []float64) (*Var, error) {
	data := make([]byte, 8*len(values))
	for i, x := range values {
		binary.BigEndian.PutUint64(data[8*i:], math.Float64bits(x))
	}
	v := &Var{Name: name, Type: Double, Dims: append([]string(nil), dims...), Attrs: NewAttrs(), data: data}
	if err := f.addVar(v, len(values), len(data)); err != nil {
		return nil, err
	}
	return v, nil
}

// AddInt adds an int32 variable.
func (f *File) AddInt(name string, dims []string, values []int32) (*Var, error) {
	data := make([]byte, 4*len(values))
	for i, x := range values {
		binary.BigEndian.PutUint32(data[4*i:], uint32(x))
	}
	v := &Var{Name: name, Type: Int, Dims: append([]string(nil), dims...), Attrs: NewAttrs(), data: data}
	if err := f.addVar(v, len(values), len(data)); err != nil {
		return nil, err
	}
	return v, nil
}

// AddShort adds an int16 variable.
func (f *File) AddShort(name string, dims []string, values []int16) (*Var, error) {
	data := make([]byte, 2*len(values))
	for i, x := range values {
		binary.BigEndian.PutUint16(data[2*i:], uint16(x))
	}
	v := &Var{Name: name, Type: Short, Dims: append([]string(nil), dims...), Attrs: NewAttrs(), data: data}
	if err := f.addVar(v, len(values), len(data)); err != nil {
		return nil, err
	}
	return v, nil
}

// AddByte adds an int8 variable.
func (f *File) AddByte(name string, dims []string, values []int8) (*Var, error) {
	data := make([]byte, len(values))
	for i, x := range values {
		data[i] = byte(x)
	}
	v := &Var{Name: name, Type: Byte, Dims: append([]string(nil), dims...), Attrs: NewAttrs(), data: data}
	if err := f.addVar(v, len(values), len(data)); err != nil {
		return nil, err
	}
	return v, nil
}

// AddChar adds a char variable from text; len(text) must match the shape.
func (f *File) AddChar(name string, dims []string, text string) (*Var, error) {
	v := &Var{Name: name, Type: Char, Dims: append([]string(nil), dims...), Attrs: NewAttrs(), data: []byte(text)}
	if err := f.addVar(v, len(text), len(text)); err != nil {
		return nil, err
	}
	return v, nil
}

// Len returns the element count of the variable's payload.
func (v *Var) Len() int { return len(v.data) / v.Type.Size() }

// Float32s decodes a Float variable.
func (v *Var) Float32s() ([]float32, error) {
	if v.Type != Float {
		return nil, fmt.Errorf("netcdf: variable %q is %v, want float", v.Name, v.Type)
	}
	out := make([]float32, v.Len())
	for i := range out {
		out[i] = math.Float32frombits(binary.BigEndian.Uint32(v.data[4*i:]))
	}
	return out, nil
}

// Float64s decodes a Double variable.
func (v *Var) Float64s() ([]float64, error) {
	if v.Type != Double {
		return nil, fmt.Errorf("netcdf: variable %q is %v, want double", v.Name, v.Type)
	}
	out := make([]float64, v.Len())
	for i := range out {
		out[i] = math.Float64frombits(binary.BigEndian.Uint64(v.data[8*i:]))
	}
	return out, nil
}

// Int32s decodes an Int variable.
func (v *Var) Int32s() ([]int32, error) {
	if v.Type != Int {
		return nil, fmt.Errorf("netcdf: variable %q is %v, want int", v.Name, v.Type)
	}
	out := make([]int32, v.Len())
	for i := range out {
		out[i] = int32(binary.BigEndian.Uint32(v.data[4*i:]))
	}
	return out, nil
}

// Int16s decodes a Short variable.
func (v *Var) Int16s() ([]int16, error) {
	if v.Type != Short {
		return nil, fmt.Errorf("netcdf: variable %q is %v, want short", v.Name, v.Type)
	}
	out := make([]int16, v.Len())
	for i := range out {
		out[i] = int16(binary.BigEndian.Uint16(v.data[2*i:]))
	}
	return out, nil
}

// Int8s decodes a Byte variable.
func (v *Var) Int8s() ([]int8, error) {
	if v.Type != Byte {
		return nil, fmt.Errorf("netcdf: variable %q is %v, want byte", v.Name, v.Type)
	}
	out := make([]int8, len(v.data))
	for i := range out {
		out[i] = int8(v.data[i])
	}
	return out, nil
}

// SetShorts replaces the payload of a Short variable in place. The new
// values must match the variable's element count. This is how the
// inference stage appends AICCA labels to an existing tile file: read,
// overwrite the label variable, rewrite.
func (v *Var) SetShorts(values []int16) error {
	if v.Type != Short {
		return fmt.Errorf("netcdf: variable %q is %v, want short", v.Name, v.Type)
	}
	if len(values) != v.Len() {
		return fmt.Errorf("netcdf: variable %q has %d elements, got %d", v.Name, v.Len(), len(values))
	}
	for i, x := range values {
		binary.BigEndian.PutUint16(v.data[2*i:], uint16(x))
	}
	return nil
}

// Text decodes a Char variable.
func (v *Var) Text() (string, error) {
	if v.Type != Char {
		return "", fmt.Errorf("netcdf: variable %q is %v, want char", v.Name, v.Type)
	}
	return string(v.data), nil
}

// checkName enforces a conservative subset of NetCDF name rules.
func checkName(name string) error {
	if name == "" {
		return fmt.Errorf("netcdf: empty name")
	}
	if strings.ContainsAny(name, "/\x00") {
		return fmt.Errorf("netcdf: invalid character in name %q", name)
	}
	return nil
}

// WriteFile encodes the dataset to path atomically (temp file + rename).
func WriteFile(path string, f *File) error {
	data, err := Encode(f)
	if err != nil {
		return err
	}
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		return err
	}
	return os.Rename(tmp, path)
}

// ReadFile decodes the dataset at path.
func ReadFile(path string) (*File, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	f, err := Decode(data)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return f, nil
}
