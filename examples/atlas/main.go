// Atlas scenario: the climate-science payoff of the workflow.
//
// AICCA's purpose is to relate AI-derived cloud classes to physical cloud
// properties across space and time. This example labels several days of
// synthetic MODIS observations, aggregates the per-class physics (cloud
// top pressure, optical thickness, effective radius, ice fraction), and
// prints the class atlas plus a latitude-band distribution — a miniature
// of the daily-to-decadal analysis the paper's §II describes.
//
//	go run ./examples/atlas
package main

import (
	"context"
	"fmt"
	"log"
	"net/http/httptest"
	"os"
	"path/filepath"
	"time"

	"github.com/eoml/eoml"
)

func main() {
	const scale = 32
	archive, err := eoml.NewArchiveServer(eoml.ArchiveOptions{ScaleDown: scale})
	if err != nil {
		log.Fatal(err)
	}
	server := httptest.NewServer(archive)
	defer server.Close()

	root, err := os.MkdirTemp("", "eoml-atlas-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(root)

	baseCfg := eoml.DefaultConfig()
	baseCfg.ArchiveURL = server.URL
	baseCfg.TilePixels = 4
	baseCfg.PreprocessWorkers = 8
	baseCfg.PollInterval = 20 * time.Millisecond

	// Train once on day 1.
	baseCfg.DataDir = filepath.Join(root, "train", "data")
	baseCfg.TileDir = filepath.Join(root, "train", "tiles")
	baseCfg.OutboxDir = filepath.Join(root, "train", "outbox")
	baseCfg.DestDir = filepath.Join(root, "train", "dest")
	trainGranules, err := eoml.FindDayGranules(baseCfg, scale, 4, 4)
	if err != nil {
		log.Fatal(err)
	}
	baseCfg.Granules = trainGranules
	ctx := context.Background()
	fmt.Printf("atlas: training on granules %v of day 1…\n", trainGranules)
	labeler, err := eoml.TrainFromArchive(ctx, baseCfg, eoml.TrainOptions{Classes: 8, Epochs: 3, Seed: 4})
	if err != nil {
		log.Fatal(err)
	}

	// Label three days and accumulate every shipped tile.
	var allTiles []*eoml.Tile
	for _, doy := range []int{1, 2, 3} {
		cfg := baseCfg
		cfg.DOY = doy
		day := fmt.Sprintf("day%03d", doy)
		cfg.DataDir = filepath.Join(root, day, "data")
		cfg.TileDir = filepath.Join(root, day, "tiles")
		cfg.OutboxDir = filepath.Join(root, day, "outbox")
		cfg.DestDir = filepath.Join(root, day, "dest")
		granules, err := eoml.FindDayGranules(cfg, scale, 4, 4)
		if err != nil {
			log.Fatal(err)
		}
		cfg.Granules = granules
		pipe, err := eoml.NewPipeline(cfg, labeler)
		if err != nil {
			log.Fatal(err)
		}
		rep, err := pipe.Run(ctx)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("atlas: day %d: %s\n", doy, rep.Summary())
		shipped, err := filepath.Glob(filepath.Join(cfg.DestDir, "*.nc"))
		if err != nil {
			log.Fatal(err)
		}
		for _, path := range shipped {
			tiles, err := eoml.ReadTiles(path)
			if err != nil {
				log.Fatal(err)
			}
			allTiles = append(allTiles, tiles...)
		}
	}

	// The class atlas: AI classes ↔ cloud physics.
	fmt.Printf("\nAICCA class atlas over %d ocean-cloud tiles:\n", len(allTiles))
	fmt.Printf("%-6s %-7s %-10s %-10s %-10s %-10s %-8s\n",
		"class", "count", "CTP(hPa)", "COT", "CER(um)", "cloudfrac", "ice")
	for _, cs := range eoml.ClassAtlas(allTiles) {
		fmt.Printf("%-6d %-7d %-10.0f %-10.1f %-10.1f %-10.2f %-8.2f\n",
			cs.Class, cs.Count, cs.MeanCloudTopPressure, cs.MeanOpticalThickness,
			cs.MeanEffectiveRadius, cs.MeanCloudFraction, cs.IceFraction)
	}

	// Geographic class distribution, the kind of spatial association
	// AICCA publishes (e.g. stratocumulus decks in the subtropics).
	fmt.Println("\nclass occurrence by 20° cell (dominant class and share):")
	cells, err := eoml.GeoHistogram(allTiles, 20)
	if err != nil {
		log.Fatal(err)
	}
	for _, c := range cells {
		cl, share := c.DominantClass()
		fmt.Printf("  lat %+4.0f..%+4.0f lon %+5.0f..%+5.0f: %4d tiles, class %d (%.0f%%)\n",
			c.LatMin, c.LatMin+20, c.LonMin, c.LonMin+20, c.Total, cl, share*100)
	}
}
