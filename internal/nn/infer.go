// Inference-only forward passes.
//
// Infer differs from Forward in two ways that matter for the serving
// path:
//
//   - No state is saved for Backward, so one model can serve concurrent
//     Infer calls as long as each caller brings its own arena.
//   - Scratch and output buffers come from a tensor.Arena, so
//     steady-state inference recycles memory instead of regrowing the
//     heap every batch.
//
// Buffer ownership: a layer's Infer may return an arena-owned tensor or
// a view of its input (reshapes). Sequential.Infer recycles each
// intermediate back into the arena once the next layer has consumed it,
// except when the next output aliases it. The tensor returned to the
// caller is arena-owned: the caller must copy out what it keeps and
// should Put the tensor back. Never Put the same backing twice.

package nn

import (
	"fmt"
	"math"

	"github.com/eoml/eoml/internal/tensor"
)

func sigmoid32(v float32) float32 {
	return float32(1 / (1 + math.Exp(-float64(v))))
}

// sameBase reports whether two tensors share a backing array (one is a
// reshape view of the other).
func sameBase(a, b *tensor.T) bool {
	return len(a.Data) > 0 && len(b.Data) > 0 && &a.Data[0] == &b.Data[0]
}

// Infer computes the convolution through the fused direct kernel,
// skipping the im2col matrix entirely — for RICC-sized batches that
// matrix is 9× the input and dominated Forward's allocations.
func (l *Conv2D) Infer(x *tensor.T, a *tensor.Arena) *tensor.T {
	g := l.geom
	if len(x.Shape) != 4 || x.Shape[1] != g.InC || x.Shape[2] != g.InH || x.Shape[3] != g.InW {
		panic(fmt.Sprintf("nn: %s: input %v, want [N %d %d %d]", l.label, x.Shape, g.InC, g.InH, g.InW))
	}
	// Transpose weights from the matmul layout [InC*K*K, OutC] kept for
	// training into the [OutC, InC, K, K] layout the fused kernel reads.
	kk := g.InC * g.Kernel * g.Kernel
	wd := a.Get(g.OutC, g.InC, g.Kernel, g.Kernel)
	for r := 0; r < kk; r++ {
		row := l.w.W.Data[r*g.OutC : (r+1)*g.OutC]
		for oc, v := range row {
			wd.Data[oc*kk+r] = v
		}
	}
	out := a.Get(x.Shape[0], g.OutC, g.OutH, g.OutW)
	tensor.ConvFusedInto(x, wd, l.b.W, g, out)
	a.Put(wd)
	return out
}

// Infer computes x·W + b into an arena buffer.
func (l *Dense) Infer(x *tensor.T, a *tensor.Arena) *tensor.T {
	if len(x.Shape) != 2 || x.Shape[1] != l.in {
		panic(fmt.Sprintf("nn: %s: input %v, want [N %d]", l.label, x.Shape, l.in))
	}
	out := a.Get(x.Shape[0], l.out)
	tensor.MatMulInto(x, l.w.W, out)
	bias := l.b.W.Data
	for r := 0; r < out.Shape[0]; r++ {
		row := out.Data[r*l.out : (r+1)*l.out]
		for j, bv := range bias {
			row[j] += bv
		}
	}
	return out
}

// Infer applies the activation into an arena buffer.
func (l *LeakyReLU) Infer(x *tensor.T, a *tensor.Arena) *tensor.T {
	out := a.Get(x.Shape...)
	for i, v := range x.Data {
		if v < 0 {
			v *= l.alpha
		}
		out.Data[i] = v
	}
	return out
}

// Infer applies the logistic function into an arena buffer.
func (l *Sigmoid) Infer(x *tensor.T, a *tensor.Arena) *tensor.T {
	out := a.Get(x.Shape...)
	for i, v := range x.Data {
		out.Data[i] = sigmoid32(v)
	}
	return out
}

// Infer returns a flattened view; no buffer changes hands.
func (l *Flatten) Infer(x *tensor.T, _ *tensor.Arena) *tensor.T {
	return x.Reshape(x.Shape[0], x.Len()/x.Shape[0])
}

// Infer returns an NCHW view; no buffer changes hands.
func (l *Reshape4D) Infer(x *tensor.T, _ *tensor.Arena) *tensor.T {
	return x.Reshape(x.Shape[0], l.c, l.h, l.w)
}

// Infer upsamples into an arena buffer.
func (l *Upsample2x) Infer(x *tensor.T, a *tensor.Arena) *tensor.T {
	out := a.Get(x.Shape[0], x.Shape[1], 2*x.Shape[2], 2*x.Shape[3])
	tensor.Upsample2xInto(x, out)
	return out
}

// Infer runs all layers, recycling every intermediate buffer back into
// the arena as soon as the next layer has consumed it. The returned
// tensor is arena-owned; the caller copies out what it keeps and Puts
// it back.
func (s *Sequential) Infer(x *tensor.T, a *tensor.Arena) *tensor.T {
	cur := x
	for _, l := range s.Layers {
		next := l.Infer(cur, a)
		// Recycle the intermediate unless it aliases the new output (a
		// reshape view) or the caller's own input.
		if cur != x && !sameBase(cur, next) && !sameBase(cur, x) {
			a.Put(cur)
		}
		cur = next
	}
	return cur
}
