// Package ctxflow seeds context-flow violations: functions that may
// block un-cancellably without taking a context.Context or being
// reachable only from functions that do.
package ctxflow

import (
	"context"
	"time"
)

// waitForSlot blocks with no context anywhere in sight.
func waitForSlot() { // want "may block un-cancellably"
	time.Sleep(time.Second)
}

// poll is cancellable end to end: the select bails on ctx.Done().
func poll(ctx context.Context) error {
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-time.After(time.Minute):
		return nil
	}
}

// drain blocks, but every call path starts from a context-taking
// function — the obligation rests with Run's context.
func drain(ch chan int) int {
	return <-ch
}

// Run is protected by its own context parameter.
func Run(ctx context.Context, ch chan int) int {
	if err := poll(ctx); err != nil {
		return 0
	}
	return drain(ch)
}

// helper takes a context but ignores it for the receive — it stays
// protected itself (callers can in principle release it), while a
// caller that hands it a dead context revives the un-cancellable wait.
func helper(ctx context.Context, ch chan int) int {
	_ = ctx
	return <-ch
}

// entry severs its own cancellation by passing context.Background().
func entry(ch chan int) int { // want "may block un-cancellably"
	return helper(context.Background(), ch)
}

// pump is reached only through a goroutine launch, which severs the
// spawner's context even though spawn itself never blocks.
func pump(ch chan int) { // want "may block un-cancellably"
	ch <- 1
}

func spawn(ch chan int) {
	go pump(ch)
}

// loop waits on a stop channel — the shutdown idiom close(stop)
// releases it, so the select is not an un-cancellable block.
func loop(stop chan struct{}, work chan int) {
	for {
		select {
		case <-stop:
			return
		case w := <-work:
			_ = w
		}
	}
}

// pumpExempt is the intentional-lifecycle escape hatch.
//
//eomlvet:ignore ctxflow fixture: lifecycle goroutine with an out-of-band shutdown protocol
func pumpExempt(ch chan int) {
	ch <- 2
}

func spawnExempt(ch chan int) {
	go pumpExempt(ch)
}

var sink = []any{waitForSlot, Run, entry, spawn, loop, spawnExempt}
