package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func writeDoc(t *testing.T, name, body string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), name)
	if err := os.WriteFile(path, []byte(body), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

const oldDoc = `{
  "pr": 4,
  "benchmarks": {
    "BenchmarkEncodeArena/arena": {"ns_per_op": 1000000, "allocs_per_op": 15},
    "BenchmarkLabelFileBatched/batched": {"tiles_per_s": 20000},
    "BenchmarkMatMulBlocked/blocked_256": {"gflops": 30}
  }
}`

func TestBenchdiffFailsOnSyntheticRegression(t *testing.T) {
	// >10% slower ns/op and >10% lower tiles/s: both must gate.
	newDoc := `{
	  "pr": 5,
	  "benchmarks": {
	    "BenchmarkEncodeArena/arena": {"ns_per_op": 1150000, "allocs_per_op": 2},
	    "BenchmarkLabelFileBatched/batched": {"tiles_per_s": 17000},
	    "BenchmarkMatMulBlocked/blocked_256": {"gflops": 30}
	  }
	}`
	var out strings.Builder
	err := run([]string{writeDoc(t, "old.json", oldDoc), writeDoc(t, "new.json", newDoc)}, &out)
	if err == nil {
		t.Fatalf("synthetic regression passed the gate; output:\n%s", out.String())
	}
	if !strings.Contains(err.Error(), "2 throughput metric(s) regressed") {
		t.Fatalf("error = %v, want 2 regressed metrics", err)
	}
	if !strings.Contains(out.String(), "REGRESSION") {
		t.Fatalf("output lacks REGRESSION marker:\n%s", out.String())
	}
}

func TestBenchdiffPassesWithinThreshold(t *testing.T) {
	// 5% slower is inside the default 10% gate; the alloc-count column is
	// never a gate even when it explodes.
	newDoc := `{
	  "pr": 5,
	  "benchmarks": {
	    "BenchmarkEncodeArena/arena": {"ns_per_op": 1050000, "allocs_per_op": 500},
	    "BenchmarkLabelFileBatched/batched": {"tiles_per_s": 21000},
	    "BenchmarkMatMulBlocked/blocked_256": {"gflops": 33}
	  }
	}`
	var out strings.Builder
	if err := run([]string{writeDoc(t, "old.json", oldDoc), writeDoc(t, "new.json", newDoc)}, &out); err != nil {
		t.Fatalf("within-threshold diff failed: %v\n%s", err, out.String())
	}
	if !strings.Contains(out.String(), "ok: no throughput regression") {
		t.Fatalf("missing ok line:\n%s", out.String())
	}
}

func TestBenchdiffThresholdFlag(t *testing.T) {
	// The same 5% slip fails when the operator tightens the gate to 2%.
	newDoc := `{
	  "pr": 5,
	  "benchmarks": {
	    "BenchmarkEncodeArena/arena": {"ns_per_op": 1050000}
	  }
	}`
	var out strings.Builder
	err := run([]string{"-threshold", "0.02",
		writeDoc(t, "old.json", oldDoc), writeDoc(t, "new.json", newDoc)}, &out)
	if err == nil {
		t.Fatal("5% slip passed a 2% gate")
	}
}

func TestBenchdiffRejectsDisjointRecords(t *testing.T) {
	newDoc := `{"pr": 5, "benchmarks": {"BenchmarkSomethingElse": {"ns_per_op": 1}}}`
	var out strings.Builder
	err := run([]string{writeDoc(t, "old.json", oldDoc), writeDoc(t, "new.json", newDoc)}, &out)
	if err == nil || !strings.Contains(err.Error(), "no shared throughput metrics") {
		t.Fatalf("err = %v, want no-shared-metrics failure", err)
	}
}
