// Package yamlite implements a small, strict subset of YAML sufficient for
// EO-ML workflow configuration files — the YAML the paper's users write to
// declare compute endpoints, LAADS credentials, MODIS products, time spans,
// and output paths.
//
// Supported syntax:
//
//   - block mappings ("key: value") and nested mappings via indentation
//   - block sequences ("- item"), including "- key: value" inline starts
//   - flow sequences ("[a, b, c]") and flow mappings ("{a: 1, b: 2}")
//   - scalars: null/~, booleans, base-10 integers, floats, single- and
//     double-quoted strings (with \n, \t, \\, \" escapes), plain strings
//   - comments ("# ..." to end of line, outside quotes)
//
// Anything outside this subset (anchors, aliases, tags, multi-document
// streams, block scalars) is rejected with a line-numbered error. The
// parser produces map[string]any / []any / scalar trees like a dynamic
// YAML decoder would.
package yamlite

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// Parse decodes a yamlite document into a tree of map[string]any, []any,
// string, int64, float64, bool, and nil values.
func Parse(data []byte) (any, error) {
	p := &parser{}
	p.split(string(data))
	if p.err != nil {
		return nil, p.err
	}
	if len(p.lines) == 0 {
		return nil, nil
	}
	v, next, err := p.parseBlock(0, p.lines[0].indent)
	if err != nil {
		return nil, err
	}
	if next != len(p.lines) {
		return nil, fmt.Errorf("yamlite: line %d: trailing content at lower indentation", p.lines[next].num)
	}
	return v, nil
}

// ParseMap decodes a document whose root must be a mapping.
func ParseMap(data []byte) (map[string]any, error) {
	v, err := Parse(data)
	if err != nil {
		return nil, err
	}
	if v == nil {
		return map[string]any{}, nil
	}
	m, ok := v.(map[string]any)
	if !ok {
		return nil, fmt.Errorf("yamlite: document root is %T, want mapping", v)
	}
	return m, nil
}

type line struct {
	num    int // 1-based source line
	indent int
	text   string // content with indentation stripped
}

type parser struct {
	lines []line
	err   error
}

// split tokenizes the input into meaningful lines, stripping comments and
// blank lines.
func (p *parser) split(src string) {
	for i, raw := range strings.Split(src, "\n") {
		text := stripComment(raw)
		trimmed := strings.TrimRight(text, " \t\r")
		content := strings.TrimLeft(trimmed, " \t")
		if content == "" {
			continue
		}
		if strings.ContainsRune(trimmed[:len(trimmed)-len(content)], '\t') {
			// YAML forbids tabs in indentation; enforcing it here gives a
			// much better error than a confusing structure mismatch later.
			if p.err == nil {
				p.err = fmt.Errorf("yamlite: line %d: tab character in indentation", i+1)
			}
			return
		}
		indent := len(trimmed) - len(content)
		p.lines = append(p.lines, line{num: i + 1, indent: indent, text: content})
	}
}

// stripComment removes a trailing comment, honoring quoted strings.
func stripComment(s string) string {
	inSingle, inDouble := false, false
	for i := 0; i < len(s); i++ {
		switch c := s[i]; {
		case inDouble && c == '\\':
			i++ // the escape consumes the next byte, including `\"` and `\\`
		case c == '\'' && !inDouble:
			inSingle = !inSingle
		case c == '"' && !inSingle:
			inDouble = !inDouble
		case c == '#' && !inSingle && !inDouble:
			// A '#' only begins a comment at line start or after whitespace.
			if i == 0 || s[i-1] == ' ' || s[i-1] == '\t' {
				return s[:i]
			}
		}
	}
	return s
}

// parseBlock parses a block (mapping, sequence, or bare scalar) whose
// entries all sit at the given indent, starting at line index i. It
// returns the value and the index of the first unconsumed line.
func (p *parser) parseBlock(i, indent int) (any, int, error) {
	if i >= len(p.lines) {
		return nil, i, nil
	}
	ln := p.lines[i]
	if strings.HasPrefix(ln.text, "- ") || ln.text == "-" {
		return p.parseSequence(i, indent)
	}
	if !looksLikeMapEntry(ln.text) {
		// A lone non-entry line is a scalar document (or scalar value of
		// the enclosing key): `null`, `42`, `[1, 2]`. Marshal emits these
		// for scalar trees, so Parse must accept them back.
		v, err := parseScalar(ln.text, ln.num)
		if err != nil {
			return nil, i, err
		}
		return v, i + 1, nil
	}
	return p.parseMapping(i, indent)
}

func (p *parser) parseSequence(i, indent int) (any, int, error) {
	var seq []any
	for i < len(p.lines) {
		ln := p.lines[i]
		if ln.indent != indent || !(strings.HasPrefix(ln.text, "- ") || ln.text == "-") {
			break
		}
		rest := strings.TrimPrefix(strings.TrimPrefix(ln.text, "-"), " ")
		switch {
		case rest == "":
			// Nested block on following lines.
			if i+1 < len(p.lines) && p.lines[i+1].indent > indent {
				v, next, err := p.parseBlock(i+1, p.lines[i+1].indent)
				if err != nil {
					return nil, i, err
				}
				seq = append(seq, v)
				i = next
			} else {
				seq = append(seq, nil)
				i++
			}
		case looksLikeMapEntry(rest):
			// "- key: value" starts an inline mapping whose further keys are
			// indented past the dash.
			itemIndent := indent + (len(ln.text) - len(rest))
			p.lines[i] = line{num: ln.num, indent: itemIndent, text: rest}
			v, next, err := p.parseMapping(i, itemIndent)
			if err != nil {
				return nil, i, err
			}
			seq = append(seq, v)
			i = next
		default:
			v, err := parseScalar(rest, ln.num)
			if err != nil {
				return nil, i, err
			}
			seq = append(seq, v)
			i++
		}
	}
	return seq, i, nil
}

func (p *parser) parseMapping(i, indent int) (any, int, error) {
	m := map[string]any{}
	for i < len(p.lines) {
		ln := p.lines[i]
		if ln.indent != indent {
			if ln.indent > indent {
				return nil, i, fmt.Errorf("yamlite: line %d: unexpected indentation", ln.num)
			}
			break
		}
		if strings.HasPrefix(ln.text, "- ") || ln.text == "-" {
			return nil, i, fmt.Errorf("yamlite: line %d: sequence entry inside mapping", ln.num)
		}
		key, rest, err := splitKey(ln.text, ln.num)
		if err != nil {
			return nil, i, err
		}
		if _, dup := m[key]; dup {
			return nil, i, fmt.Errorf("yamlite: line %d: duplicate key %q", ln.num, key)
		}
		if rest == "" {
			// Value is a nested block (or null if nothing deeper follows).
			if i+1 < len(p.lines) && p.lines[i+1].indent > indent {
				v, next, err := p.parseBlock(i+1, p.lines[i+1].indent)
				if err != nil {
					return nil, i, err
				}
				m[key] = v
				i = next
			} else {
				m[key] = nil
				i++
			}
			continue
		}
		v, err := parseScalar(rest, ln.num)
		if err != nil {
			return nil, i, err
		}
		m[key] = v
		i++
	}
	return m, i, nil
}

// looksLikeMapEntry reports whether s begins with "key:" at the top level
// (outside quotes and flow collections).
func looksLikeMapEntry(s string) bool {
	_, _, err := splitKey(s, 0)
	return err == nil
}

// splitKey splits "key: value" (or "key:") into the unquoted key and the
// raw remainder.
func splitKey(s string, lineNum int) (key, rest string, err error) {
	inSingle, inDouble, depth := false, false, 0
	for i := 0; i < len(s); i++ {
		switch c := s[i]; {
		case inDouble && c == '\\':
			i++ // the escape consumes the next byte, including `\"` and `\\`
		case c == '\'' && !inDouble:
			inSingle = !inSingle
		case c == '"' && !inSingle:
			inDouble = !inDouble
		case (c == '[' || c == '{') && !inSingle && !inDouble:
			depth++
		case (c == ']' || c == '}') && !inSingle && !inDouble:
			depth--
		case c == ':' && !inSingle && !inDouble && depth == 0:
			if i+1 < len(s) && s[i+1] != ' ' {
				continue // "12:30" style plain scalar, not a key
			}
			rawKey := strings.TrimSpace(s[:i])
			if rawKey == "" {
				return "", "", fmt.Errorf("yamlite: line %d: empty key", lineNum)
			}
			k, err := unquoteIfQuoted(rawKey, lineNum)
			if err != nil {
				return "", "", err
			}
			return k, strings.TrimSpace(s[i+1:]), nil
		}
	}
	return "", "", fmt.Errorf("yamlite: line %d: expected \"key: value\"", lineNum)
}

func unquoteIfQuoted(s string, lineNum int) (string, error) {
	if len(s) >= 2 && (s[0] == '"' || s[0] == '\'') {
		v, err := parseScalar(s, lineNum)
		if err != nil {
			return "", err
		}
		str, ok := v.(string)
		if !ok {
			return "", fmt.Errorf("yamlite: line %d: quoted key is not a string", lineNum)
		}
		return str, nil
	}
	return s, nil
}

// parseScalar interprets a trimmed scalar or flow-collection literal.
func parseScalar(s string, lineNum int) (any, error) {
	switch {
	case s == "" || s == "~" || s == "null" || s == "Null" || s == "NULL":
		return nil, nil
	case s == "true" || s == "True" || s == "TRUE":
		return true, nil
	case s == "false" || s == "False" || s == "FALSE":
		return false, nil
	}
	if s[0] == '[' || s[0] == '{' {
		return parseFlow(s, lineNum)
	}
	if s[0] == '"' {
		if len(s) < 2 || s[len(s)-1] != '"' {
			return nil, fmt.Errorf("yamlite: line %d: unterminated double-quoted string", lineNum)
		}
		return unescapeDouble(s[1:len(s)-1], lineNum)
	}
	if s[0] == '\'' {
		if len(s) < 2 || s[len(s)-1] != '\'' {
			return nil, fmt.Errorf("yamlite: line %d: unterminated single-quoted string", lineNum)
		}
		return strings.ReplaceAll(s[1:len(s)-1], "''", "'"), nil
	}
	if s[0] == '&' || s[0] == '*' || s[0] == '!' || s[0] == '|' || s[0] == '>' {
		return nil, fmt.Errorf("yamlite: line %d: unsupported YAML feature %q", lineNum, s[0])
	}
	if n, err := strconv.ParseInt(s, 10, 64); err == nil {
		return n, nil
	}
	if f, err := strconv.ParseFloat(s, 64); err == nil {
		return f, nil
	}
	return s, nil
}

func unescapeDouble(s string, lineNum int) (string, error) {
	var b strings.Builder
	for i := 0; i < len(s); i++ {
		c := s[i]
		if c != '\\' {
			b.WriteByte(c)
			continue
		}
		i++
		if i >= len(s) {
			return "", fmt.Errorf("yamlite: line %d: dangling escape", lineNum)
		}
		switch s[i] {
		case 'n':
			b.WriteByte('\n')
		case 't':
			b.WriteByte('\t')
		case 'r':
			b.WriteByte('\r')
		case '\\':
			b.WriteByte('\\')
		case '"':
			b.WriteByte('"')
		case 'a':
			b.WriteByte('\a')
		case 'b':
			b.WriteByte('\b')
		case 'f':
			b.WriteByte('\f')
		case 'v':
			b.WriteByte('\v')
		case 'x', 'u', 'U':
			// Hex escapes, as strconv.Quote emits for control characters
			// and non-printable runes: \xHH (one byte), \uHHHH, \UHHHHHHHH
			// (one rune). Marshal quotes with strconv.Quote, so Parse must
			// read everything it can produce.
			digits := map[byte]int{'x': 2, 'u': 4, 'U': 8}[s[i]]
			if i+digits >= len(s) {
				return "", fmt.Errorf("yamlite: line %d: truncated \\%c escape", lineNum, s[i])
			}
			n, err := strconv.ParseUint(s[i+1:i+1+digits], 16, 32)
			if err != nil {
				return "", fmt.Errorf("yamlite: line %d: bad \\%c escape: %v", lineNum, s[i], err)
			}
			if s[i] == 'x' {
				b.WriteByte(byte(n))
			} else {
				b.WriteRune(rune(n))
			}
			i += digits
		default:
			return "", fmt.Errorf("yamlite: line %d: unknown escape \\%c", lineNum, s[i])
		}
	}
	return b.String(), nil
}

// parseFlow parses a flow sequence or mapping ("[...]", "{...}").
func parseFlow(s string, lineNum int) (any, error) {
	v, rest, err := parseFlowValue(s, lineNum)
	if err != nil {
		return nil, err
	}
	if strings.TrimSpace(rest) != "" {
		return nil, fmt.Errorf("yamlite: line %d: trailing content after flow collection", lineNum)
	}
	return v, nil
}

func parseFlowValue(s string, lineNum int) (any, string, error) {
	s = strings.TrimLeft(s, " ")
	if s == "" {
		return nil, "", fmt.Errorf("yamlite: line %d: empty flow value", lineNum)
	}
	switch s[0] {
	case '[':
		return parseFlowSeq(s[1:], lineNum)
	case '{':
		return parseFlowMap(s[1:], lineNum)
	case '"', '\'':
		quote := s[0]
		for i := 1; i < len(s); i++ {
			if quote == '"' && s[i] == '\\' {
				i++ // the escape consumes the next byte
				continue
			}
			if s[i] == quote {
				v, err := parseScalar(s[:i+1], lineNum)
				return v, s[i+1:], err
			}
		}
		return nil, "", fmt.Errorf("yamlite: line %d: unterminated quoted string in flow", lineNum)
	default:
		end := strings.IndexAny(s, ",]}")
		if end == -1 {
			end = len(s)
		}
		v, err := parseScalar(strings.TrimSpace(s[:end]), lineNum)
		return v, s[end:], err
	}
}

func parseFlowSeq(s string, lineNum int) (any, string, error) {
	seq := []any{}
	s = strings.TrimLeft(s, " ")
	if strings.HasPrefix(s, "]") {
		return seq, s[1:], nil
	}
	for {
		v, rest, err := parseFlowValue(s, lineNum)
		if err != nil {
			return nil, "", err
		}
		seq = append(seq, v)
		rest = strings.TrimLeft(rest, " ")
		switch {
		case strings.HasPrefix(rest, ","):
			s = rest[1:]
		case strings.HasPrefix(rest, "]"):
			return seq, rest[1:], nil
		default:
			return nil, "", fmt.Errorf("yamlite: line %d: expected ',' or ']' in flow sequence", lineNum)
		}
	}
}

func parseFlowMap(s string, lineNum int) (any, string, error) {
	m := map[string]any{}
	s = strings.TrimLeft(s, " ")
	if strings.HasPrefix(s, "}") {
		return m, s[1:], nil
	}
	for {
		colon := strings.Index(s, ":")
		if colon == -1 {
			return nil, "", fmt.Errorf("yamlite: line %d: expected key in flow mapping", lineNum)
		}
		key, err := unquoteIfQuoted(strings.TrimSpace(s[:colon]), lineNum)
		if err != nil {
			return nil, "", err
		}
		v, rest, err := parseFlowValue(s[colon+1:], lineNum)
		if err != nil {
			return nil, "", err
		}
		m[key] = v
		rest = strings.TrimLeft(rest, " ")
		switch {
		case strings.HasPrefix(rest, ","):
			s = strings.TrimLeft(rest[1:], " ")
		case strings.HasPrefix(rest, "}"):
			return m, rest[1:], nil
		default:
			return nil, "", fmt.Errorf("yamlite: line %d: expected ',' or '}' in flow mapping", lineNum)
		}
	}
}

// Marshal renders a value tree back into yamlite syntax. It supports the
// same value types Parse produces and is primarily used for writing
// generated configs and in round-trip tests.
func Marshal(v any) []byte {
	var b strings.Builder
	marshalValue(&b, v, 0)
	return []byte(b.String())
}

func marshalValue(b *strings.Builder, v any, indent int) {
	switch t := v.(type) {
	case map[string]any:
		if len(t) == 0 {
			b.WriteString(strings.Repeat(" ", indent) + "{}\n")
			return
		}
		keys := make([]string, 0, len(t))
		for k := range t {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			b.WriteString(strings.Repeat(" ", indent))
			b.WriteString(quoteKeyIfNeeded(k))
			val := t[k]
			if isNested(val) {
				b.WriteString(":\n")
				marshalValue(b, val, indent+2)
			} else {
				b.WriteString(": ")
				b.WriteString(scalarString(val))
				b.WriteString("\n")
			}
		}
	case []any:
		if len(t) == 0 {
			b.WriteString(strings.Repeat(" ", indent) + "[]\n")
			return
		}
		for _, item := range t {
			if isNested(item) {
				b.WriteString(strings.Repeat(" ", indent) + "-\n")
				marshalValue(b, item, indent+2)
			} else {
				b.WriteString(strings.Repeat(" ", indent) + "- " + scalarString(item) + "\n")
			}
		}
	default:
		b.WriteString(strings.Repeat(" ", indent) + scalarString(v) + "\n")
	}
}

func isNested(v any) bool {
	switch t := v.(type) {
	case map[string]any:
		return len(t) > 0
	case []any:
		return len(t) > 0
	}
	return false
}

func quoteKeyIfNeeded(k string) string {
	if k == "" || strings.ContainsAny(k, ":#\"'\n\t[]{},") || k != strings.TrimSpace(k) {
		return strconv.Quote(k)
	}
	return k
}

func scalarString(v any) string {
	switch t := v.(type) {
	case nil:
		return "null"
	case bool:
		if t {
			return "true"
		}
		return "false"
	case int64:
		return strconv.FormatInt(t, 10)
	case int:
		return strconv.Itoa(t)
	case float64:
		s := strconv.FormatFloat(t, 'g', -1, 64)
		if !strings.ContainsAny(s, ".eE") {
			s += ".0" // keep the float/int distinction across round trips
		}
		return s
	case string:
		if needsQuoting(t) {
			return strconv.Quote(t)
		}
		return t
	case map[string]any:
		return "{}"
	case []any:
		return "[]"
	default:
		return fmt.Sprintf("%v", t)
	}
}

func needsQuoting(s string) bool {
	if s == "" || s == "~" || s == "null" || s == "true" || s == "false" {
		return true
	}
	if _, err := strconv.ParseInt(s, 10, 64); err == nil {
		return true
	}
	if _, err := strconv.ParseFloat(s, 64); err == nil {
		return true
	}
	if s != strings.TrimSpace(s) {
		return true
	}
	if strings.HasPrefix(s, "- ") || s == "-" {
		return true
	}
	switch s[0] {
	case '&', '*', '!', '|', '>', '[', '{', '"', '\'', '#', '@', '`':
		return true
	}
	return strings.ContainsAny(s, "\n\t") || strings.Contains(s, ": ") || strings.HasSuffix(s, ":") || strings.Contains(s, " #")
}
