// Package spanpair is the golden fixture for the spanpair analyzer.
package spanpair

import "github.com/eoml/eoml/internal/trace"

func badDiscarded(sp *trace.Spans) {
	sp.Begin("download", 0) // want "handle discarded"
}

func badBlankAssigned(sp *trace.Spans) {
	_ = sp.Begin("download", 0) // want "handle discarded"
}

func badNeverEnded(sp *trace.Spans) {
	h := sp.Begin("download", 0) // want "no paired End"
	println(h.Name())
}

func goodDirectEnd(sp *trace.Spans) {
	h := sp.Begin("download", 0)
	h.End(1)
}

func goodDeferredEnd(sp *trace.Spans) {
	h := sp.Begin("download", 0)
	defer func() { h.End(2) }()
}

func goodChained(sp *trace.Spans) {
	sp.Begin("download", 0).End(1)
}

func goodEscapeReturn(sp *trace.Spans) *trace.SpanHandle {
	// The caller owns the End.
	return sp.Begin("download", 0)
}

func goodEscapeArgument(sp *trace.Spans) {
	finish(sp.Begin("download", 0))
}

func finish(h *trace.SpanHandle) { h.End(3) }
