package modis

import "math"

// noise2 is deterministic multi-octave value noise ("fractal Brownian
// motion") over a 2-D domain. It synthesizes the spatially coherent fields
// a swath needs — cloud decks, radiance texture, continents — without any
// external data. The lattice values come from an integer hash, so the same
// (seed, x, y) always yields the same field on every platform.
type noise2 struct {
	seed    int64
	octaves int
	// lacunarity is fixed at 2 and gain at 0.5, the textbook fBm values.
}

func newNoise2(seed int64, octaves int) *noise2 {
	if octaves < 1 {
		octaves = 1
	}
	return &noise2{seed: seed, octaves: octaves}
}

// at evaluates the noise field at (x, y), returning a value in [0, 1].
func (n *noise2) at(x, y float64) float64 {
	sum, amp, norm := 0.0, 1.0, 0.0
	freq := 1.0
	for o := 0; o < n.octaves; o++ {
		sum += amp * n.value(x*freq, y*freq, int64(o))
		norm += amp
		amp *= 0.5
		freq *= 2
	}
	return sum / norm
}

// value computes single-octave value noise via bilinear interpolation of
// hashed lattice values, with smoothstep easing.
func (n *noise2) value(x, y float64, octave int64) float64 {
	x0, y0 := math.Floor(x), math.Floor(y)
	fx, fy := x-x0, y-y0
	ix, iy := int64(x0), int64(y0)

	v00 := latticeHash(n.seed, octave, ix, iy)
	v10 := latticeHash(n.seed, octave, ix+1, iy)
	v01 := latticeHash(n.seed, octave, ix, iy+1)
	v11 := latticeHash(n.seed, octave, ix+1, iy+1)

	sx := smoothstep(fx)
	sy := smoothstep(fy)
	top := v00 + (v10-v00)*sx
	bot := v01 + (v11-v01)*sx
	return top + (bot-top)*sy
}

func smoothstep(t float64) float64 { return t * t * (3 - 2*t) }

// latticeHash maps an integer lattice point to a uniform value in [0, 1)
// using a splitmix64-style mixer.
func latticeHash(seed, octave, x, y int64) float64 {
	h := uint64(seed) ^ uint64(octave)*0x9E3779B97F4A7C15 ^
		uint64(x)*0xBF58476D1CE4E5B9 ^ uint64(y)*0x94D049BB133111EB
	h ^= h >> 30
	h *= 0xBF58476D1CE4E5B9
	h ^= h >> 27
	h *= 0x94D049BB133111EB
	h ^= h >> 31
	return float64(h>>11) / float64(1<<53)
}
