package analysis

import (
	"go/ast"
)

// SpanPair pairs telemetry span lifetimes: a trace.Spans.Begin with no
// reachable End leaves the span unrecorded, which silently blanks a row
// of the Fig. 7 latency breakdown — the failure is invisible until
// someone reads the report. Within one function declaration, the handle
// returned by Begin must either have End called on it (directly,
// deferred, or in a nested literal) or escape the function (returned,
// stored, or passed on), in which case the receiver owns the End.
// Discarding the handle outright is always an error: nothing can ever
// End that span.
var SpanPair = &Analyzer{
	Name: "spanpair",
	Doc:  "trace.Spans.Begin must have a paired SpanHandle.End, or the handle must escape to the owner that will End it",
	Run:  runSpanPair,
}

const tracePkg = "github.com/eoml/eoml/internal/trace"

func runSpanPair(pass *Pass) {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok && fd.Body != nil {
				checkSpanPairs(pass, fd)
			}
		}
	}
}

func checkSpanPairs(pass *Pass, fd *ast.FuncDecl) {
	// Parent links let us classify how each Begin call's result is used.
	parents := parentMap(fd.Body)

	// Find every Begin call and the identifier its handle is bound to.
	type binding struct {
		call *ast.CallExpr
		def  *ast.Ident // nil when the result is used without a variable
	}
	var bindings []binding
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || !isBeginCall(pass, call) {
			return true
		}
		b := binding{call: call}
		if assign, ok := parents[call].(*ast.AssignStmt); ok && len(assign.Lhs) == 1 && len(assign.Rhs) == 1 {
			if id, ok := assign.Lhs[0].(*ast.Ident); ok && id.Name != "_" {
				b.def = id
			}
		}
		bindings = append(bindings, b)
		return true
	})

	for _, b := range bindings {
		if b.def == nil {
			switch parents[b.call].(type) {
			case *ast.SelectorExpr:
				// Chained use (Begin(...).End(...)): the pair is immediate.
			case *ast.ExprStmt, *ast.AssignStmt:
				// A bare statement, or `_ = Begin(...)`: the handle is gone.
				pass.Reportf(b.call.Pos(), "span Begin handle discarded in %s; nothing can ever End this span", fd.Name.Name)
			default:
				// Result flows somewhere (return, call argument, composite
				// literal): the receiver owns the End.
			}
			continue
		}
		obj := pass.Info.ObjectOf(b.def)
		if obj == nil {
			continue
		}
		ended, escaped := false, false
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			id, ok := n.(*ast.Ident)
			if !ok || id == b.def || pass.Info.ObjectOf(id) != obj {
				return true
			}
			// Classify the use: `h.End(...)` is the pair; another method
			// or field access keeps the handle local and proves nothing;
			// any remaining use (return, call argument, store) hands the
			// handle to code that can End it.
			if sel, ok := parents[id].(*ast.SelectorExpr); ok && sel.X == id {
				if sel.Sel.Name == "End" {
					if call, ok := parents[sel].(*ast.CallExpr); ok && call.Fun == sel {
						ended = true
					}
				}
				return true
			}
			escaped = true
			return true
		})
		if !ended && !escaped {
			pass.Reportf(b.call.Pos(), "span Begin in %s has no paired End and the handle never escapes; the span is never recorded", fd.Name.Name)
		}
	}
}

// isBeginCall reports whether call is (trace.Spans).Begin.
func isBeginCall(pass *Pass, call *ast.CallExpr) bool {
	return isMethodOn(calleeFunc(pass.Info, call), tracePkg, "Spans", "Begin")
}
