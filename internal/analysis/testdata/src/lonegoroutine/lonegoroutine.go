// Package lonegoroutine is the golden fixture for the lonegoroutine
// analyzer.
package lonegoroutine

import "sync"

func badFireAndForget(work func()) {
	go func() { // want "no join"
		work()
	}()
}

func badShadowedClose(work func(string)) {
	close := work
	go func() { // want "no join"
		close("x")
	}()
}

func goodWaitGroup(work func()) {
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		work()
	}()
	wg.Wait()
}

func goodWaitGroupInNestedLiteral(work func()) {
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer func() { wg.Done() }()
		work()
	}()
	wg.Wait()
}

func goodChannelClose(work func()) {
	done := make(chan struct{})
	go func() {
		defer close(done)
		work()
	}()
	<-done
}

func goodChannelSend(work func() error) error {
	errs := make(chan error, 1)
	go func() {
		errs <- work()
	}()
	return <-errs
}

func goodNamedFunction(work func()) {
	// Named-function goroutines are out of scope; the join discipline is
	// audited at the callee.
	go namedWorker(work)
}

func namedWorker(work func()) { work() }
