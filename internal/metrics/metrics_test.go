package metrics

import (
	"fmt"
	"math"
	"sync"
	"testing"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("eoml_test_total", "help")
	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	// Idempotent: same name+labels yields the same metric.
	if again := r.Counter("eoml_test_total", "help"); again != c {
		t.Fatal("re-registration returned a different counter")
	}

	g := r.Gauge("eoml_test_gauge", "help", L("worker", "w1"))
	g.Set(10)
	g.Add(-3)
	g.Inc()
	g.Dec()
	if got := g.Value(); got != 7 {
		t.Fatalf("gauge = %d, want 7", got)
	}
	// Different labels yield a distinct series.
	other := r.Gauge("eoml_test_gauge", "help", L("worker", "w2"))
	if other == g {
		t.Fatal("distinct labels returned the same gauge")
	}
	// Label order must not matter for identity.
	a := r.Counter("eoml_lbl_total", "", L("a", "1"), L("b", "2"))
	b := r.Counter("eoml_lbl_total", "", L("b", "2"), L("a", "1"))
	if a != b {
		t.Fatal("label order changed series identity")
	}
}

func TestCounterPanicsOnNegativeAdd(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("negative Add did not panic")
		}
	}()
	new(Counter).Add(-1)
}

func TestRegisterPanicsOnKindConflict(t *testing.T) {
	r := NewRegistry()
	r.Counter("eoml_conflict", "")
	defer func() {
		if recover() == nil {
			t.Fatal("kind conflict did not panic")
		}
	}()
	r.Gauge("eoml_conflict", "")
}

func TestRegisterPanicsOnBadName(t *testing.T) {
	r := NewRegistry()
	defer func() {
		if recover() == nil {
			t.Fatal("bad metric name did not panic")
		}
	}()
	r.Counter("0bad-name", "")
}

func TestHistogramObserve(t *testing.T) {
	h := newHistogram([]float64{1, 5, 10})
	for _, v := range []float64{0.5, 1, 3, 7, 100} {
		h.Observe(v)
	}
	if got := h.Count(); got != 5 {
		t.Fatalf("count = %d, want 5", got)
	}
	if got := h.Sum(); math.Abs(got-111.5) > 1e-9 {
		t.Fatalf("sum = %v, want 111.5", got)
	}

	r := NewRegistry()
	r.Histogram("eoml_hist", "", []float64{1, 5, 10}).Observe(3)
	snap := r.Snapshot()
	if len(snap) != 1 || snap[0].Series[0].Histogram == nil {
		t.Fatalf("unexpected snapshot %+v", snap)
	}
	hs := snap[0].Series[0].Histogram
	want := []int64{0, 1, 1} // cumulative: <=1, <=5, <=10
	for i, w := range want {
		if hs.Cumulative[i] != w {
			t.Fatalf("cumulative[%d] = %d, want %d (%+v)", i, hs.Cumulative[i], w, hs)
		}
	}
	if hs.Count != 1 || hs.Sum != 3 {
		t.Fatalf("count/sum = %d/%v, want 1/3", hs.Count, hs.Sum)
	}
}

func TestHistogramBucketEdges(t *testing.T) {
	h := newHistogram([]float64{1, 2})
	h.Observe(1) // on the edge: belongs to the le="1" bucket
	h.Observe(2.5)
	if got := h.counts[0].Load(); got != 1 {
		t.Fatalf("edge sample landed in bucket %v", h.counts)
	}
	if got := h.counts[2].Load(); got != 1 {
		t.Fatalf("overflow sample missing from +Inf bucket: %v", h.counts)
	}
}

func TestFuncMetrics(t *testing.T) {
	r := NewRegistry()
	v := 3.0
	r.GaugeFunc("eoml_fn_gauge", "", func() float64 { return v })
	snap := r.Snapshot()
	if snap[0].Series[0].Value != 3 {
		t.Fatalf("gauge func value = %v", snap[0].Series[0].Value)
	}
	// Re-registering replaces fn (successor component takes over).
	r.GaugeFunc("eoml_fn_gauge", "", func() float64 { return 9 })
	if got := r.Snapshot()[0].Series[0].Value; got != 9 {
		t.Fatalf("replaced gauge func value = %v, want 9", got)
	}
	r.CounterFunc("eoml_fn_total", "", func() float64 { return 42 })
	snap = r.Snapshot()
	if got := snap[1].Series[0].Value; got != 42 {
		t.Fatalf("counter func value = %v, want 42", got)
	}
}

func TestNilRegistrySafe(t *testing.T) {
	var r *Registry
	r.Counter("eoml_nil_total", "").Inc()
	r.Gauge("eoml_nil_gauge", "").Set(1)
	r.Histogram("eoml_nil_hist", "", DurationBuckets()).Observe(1)
	r.GaugeFunc("eoml_nil_fn", "", func() float64 { return 1 })
	r.CounterFunc("eoml_nil_cfn", "", func() float64 { return 1 })
	if snap := r.Snapshot(); snap != nil {
		t.Fatalf("nil registry snapshot = %+v, want nil", snap)
	}
}

// TestRegistryConcurrency hammers the registry from N writer goroutines
// (registering and incrementing overlapping series) while a reader
// snapshots continuously. Run under -race this is the data-race gate
// for the lock-free hot path.
func TestRegistryConcurrency(t *testing.T) {
	r := NewRegistry()
	const writers = 8
	const perWriter = 2000

	stop := make(chan struct{})
	var readerWG sync.WaitGroup
	readerWG.Add(1)
	go func() {
		defer readerWG.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			for _, fam := range r.Snapshot() {
				for _, s := range fam.Series {
					_ = s.Value
				}
			}
		}
	}()

	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				// Shared series: every writer contends on the same atomics.
				r.Counter("eoml_race_total", "").Inc()
				r.Histogram("eoml_race_seconds", "", DurationBuckets()).Observe(float64(i) / 1000)
				// Per-writer series: registration races on the registry map.
				r.Gauge("eoml_race_gauge", "", L("writer", fmt.Sprint(w))).Set(int64(i))
			}
		}(w)
	}
	wg.Wait()
	close(stop)
	readerWG.Wait()

	if got := r.Counter("eoml_race_total", "").Value(); got != writers*perWriter {
		t.Fatalf("counter = %d, want %d", got, writers*perWriter)
	}
	if got := r.Histogram("eoml_race_seconds", "", DurationBuckets()).Count(); got != writers*perWriter {
		t.Fatalf("histogram count = %d, want %d", got, writers*perWriter)
	}
}
