package ricc

import (
	"math"
	"math/rand"
	"testing"

	"github.com/eoml/eoml/internal/tile"
)

// populationTiles fabricates tiles from a distinct visual population:
// population 0 is compact bright blobs, population 1 is diagonal wave
// patterns — different enough that a small autoencoder trained on one
// reconstructs the other poorly.
func populationTiles(pop, n int, seed int64) []*tile.Tile {
	r := rand.New(rand.NewSource(seed))
	const ts, nb = 8, 3
	bands := []int{0, 1, 2}
	tiles := make([]*tile.Tile, n)
	for i := range tiles {
		data := make([]float32, nb*ts*ts)
		cx, cy := 2+r.Float64()*4, 2+r.Float64()*4
		phase := r.Float64() * 6
		for b := 0; b < nb; b++ {
			for y := 0; y < ts; y++ {
				for x := 0; x < ts; x++ {
					var v float64
					if pop == 0 {
						dx, dy := float64(x)-cx, float64(y)-cy
						v = 1.2 * math.Exp(-(dx*dx+dy*dy)/4)
					} else {
						v = 0.5 + 0.5*math.Sin(float64(x+y)/2+phase)
					}
					data[b*ts*ts+y*ts+x] = float32(v + 0.01*r.NormFloat64())
				}
			}
		}
		tiles[i] = &tile.Tile{Data: data, Bands: bands, TileSize: ts, Label: -1}
	}
	return tiles
}

func continualConfig() Config {
	return Config{
		TileSize:  8,
		Channels:  3,
		LatentDim: 6,
		Beta:      0,
		LR:        3e-3,
		Epochs:    8,
		BatchSize: 16,
		Rotations: 0,
		Seed:      21,
	}
}

func TestReplayBufferReservoir(t *testing.T) {
	b, err := NewReplayBuffer(10, 1)
	if err != nil {
		t.Fatal(err)
	}
	all := populationTiles(0, 100, 2)
	b.Add(all[:5])
	if b.Len() != 5 {
		t.Fatalf("len = %d", b.Len())
	}
	b.Add(all[5:])
	if b.Len() != 10 {
		t.Fatalf("len after overflow = %d", b.Len())
	}
	s := b.Sample(4)
	if len(s) != 4 {
		t.Fatalf("sample = %d", len(s))
	}
	if got := b.Sample(100); len(got) != 10 {
		t.Fatalf("oversample = %d", len(got))
	}
	if _, err := NewReplayBuffer(0, 1); err == nil {
		t.Fatal("zero capacity accepted")
	}
}

func TestContinualUpdateValidation(t *testing.T) {
	m, err := NewModel(continualConfig())
	if err != nil {
		t.Fatal(err)
	}
	if err := m.ContinualUpdate(populationTiles(0, 4, 3), nil, 1); err == nil {
		t.Fatal("untrained model accepted")
	}
	if _, err := m.ReconstructionError(nil); err == nil {
		t.Fatal("untrained reconstruction accepted")
	}
	if _, err := m.Train(populationTiles(0, 32, 4)); err != nil {
		t.Fatal(err)
	}
	if err := m.ContinualUpdate(nil, nil, 1); err == nil {
		t.Fatal("empty update accepted")
	}
}

func TestReplayMitigatesCatastrophicForgetting(t *testing.T) {
	popA := populationTiles(0, 64, 5)
	popB := populationTiles(1, 64, 6)
	holdoutA := populationTiles(0, 24, 7)

	train := func(withReplay bool) (before, after float64) {
		m, err := NewModel(continualConfig())
		if err != nil {
			t.Fatal(err)
		}
		if _, err := m.Train(popA); err != nil {
			t.Fatal(err)
		}
		before, err = m.ReconstructionError(holdoutA)
		if err != nil {
			t.Fatal(err)
		}
		var buf *ReplayBuffer
		if withReplay {
			buf, err = NewReplayBuffer(64, 8)
			if err != nil {
				t.Fatal(err)
			}
			buf.Add(popA)
		}
		if err := m.ContinualUpdate(popB, buf, 8); err != nil {
			t.Fatal(err)
		}
		after, err = m.ReconstructionError(holdoutA)
		if err != nil {
			t.Fatal(err)
		}
		return before, after
	}

	_, afterNoReplay := train(false)
	beforeReplay, afterReplay := train(true)

	// Replay must retain old-population skill much better than no replay.
	if !(afterReplay < afterNoReplay*0.7) {
		t.Fatalf("replay did not mitigate forgetting: with=%.5f without=%.5f", afterReplay, afterNoReplay)
	}
	// And stay within a sane multiple of the pre-update error.
	if afterReplay > beforeReplay*3 {
		t.Fatalf("replay model still degraded badly: %.5f -> %.5f", beforeReplay, afterReplay)
	}
}

func TestContinualUpdateLearnsNewPopulation(t *testing.T) {
	popA := populationTiles(0, 64, 9)
	popB := populationTiles(1, 64, 10)
	holdoutB := populationTiles(1, 24, 11)

	m, err := NewModel(continualConfig())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Train(popA); err != nil {
		t.Fatal(err)
	}
	beforeB, err := m.ReconstructionError(holdoutB)
	if err != nil {
		t.Fatal(err)
	}
	buf, err := NewReplayBuffer(64, 12)
	if err != nil {
		t.Fatal(err)
	}
	buf.Add(popA)
	if err := m.ContinualUpdate(popB, buf, 8); err != nil {
		t.Fatal(err)
	}
	afterB, err := m.ReconstructionError(holdoutB)
	if err != nil {
		t.Fatal(err)
	}
	if !(afterB < beforeB*0.8) {
		t.Fatalf("update did not learn the new population: %.5f -> %.5f", beforeB, afterB)
	}
	// Buffer absorbed the new tiles.
	if buf.Len() != 64 {
		t.Fatalf("buffer len = %d", buf.Len())
	}
}

func TestContinualUpdatePreservesNormalizer(t *testing.T) {
	popA := populationTiles(0, 32, 13)
	m, err := NewModel(continualConfig())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Train(popA); err != nil {
		t.Fatal(err)
	}
	minBefore := append([]float32(nil), m.Norm.Min...)
	if err := m.ContinualUpdate(populationTiles(1, 16, 14), nil, 1); err != nil {
		t.Fatal(err)
	}
	for i := range minBefore {
		if m.Norm.Min[i] != minBefore[i] {
			t.Fatal("continual update changed the normalizer; archive labels would drift")
		}
	}
}
