// Package arenapair is the golden fixture for the arenapair analyzer.
package arenapair

import (
	"sync"

	"github.com/eoml/eoml/internal/tensor"
)

func badLeak(a *tensor.Arena) float32 {
	x := a.Get(4, 4) // want "without any Put"
	return x.Data[0]
}

type holder struct {
	buf *tensor.T
}

func badFieldStore(h *holder, a *tensor.Arena) {
	h.buf = a.Get(8) // want "without any Put"
}

func goodPaired(a *tensor.Arena) {
	x := a.Get(4, 4)
	defer a.Put(x)
}

func goodLoopPaired(a *tensor.Arena) {
	for i := 0; i < 3; i++ {
		x := a.Get(8)
		a.Put(x)
	}
}

func goodPutInNestedLiteral(a *tensor.Arena) {
	x := a.Get(8)
	defer func() { a.Put(x) }()
}

func goodOwnershipReturnedDirect(a *tensor.Arena) *tensor.T {
	// The Layer.Infer contract: the caller owns the tensor and recycles.
	return a.Get(16)
}

func goodOwnershipReturnedViaVar(a *tensor.Arena) *tensor.T {
	out := a.Get(16)
	out.Data[0] = 1
	return out
}

func goodFieldStoreDocumented(h *holder, a *tensor.Arena) {
	//eomlvet:ignore arenapair ownership transfers to holder, whose release method Puts the buffer
	h.buf = a.Get(8)
}

func goodUnrelatedGet(p *sync.Pool) any {
	// sync.Pool.Get is not tensor.Arena.Get.
	return p.Get()
}

func badLocalLeak(a *tensor.LocalArena) float32 {
	x := a.Get(4, 4) // want "without any Put"
	return x.Data[0]
}

func badAllocatorLeak(a tensor.Allocator) float32 {
	// Calls through the interface are the same ownership class as the
	// concrete arenas behind it.
	x := a.Get(4, 4) // want "without any Put"
	return x.Data[0]
}

func goodLocalPaired(a *tensor.LocalArena) {
	x := a.Get(8)
	defer a.Put(x)
}

func goodAllocatorPaired(a tensor.Allocator) {
	x := a.Get(8)
	a.Put(x)
}

func goodCrossAllocatorPut(a *tensor.LocalArena) *tensor.T {
	// A Put on any arena type counts as pairing evidence for the
	// function's Gets; which tensor went where is the reviewer's job.
	scratch := a.Get(8)
	out := a.Get(8)
	a.Put(scratch)
	return out
}

func badI8Leak(a *tensor.Arena) int8 {
	q := a.GetI8(64) // want "GetI8 without any PutI8"
	return q[0]
}

func badI8LeakDespiteFloatPut(a tensor.Allocator) int8 {
	// Int8 scratch is its own ownership class: a float Put does not
	// pair a quantized GetI8.
	x := a.Get(8)
	q := a.GetI8(64) // want "GetI8 without any PutI8"
	a.Put(x)
	return q[0]
}

func goodI8Paired(a *tensor.LocalArena) {
	q := a.GetI8(64)
	defer a.PutI8(q)
}

func goodI8Returned(a tensor.Allocator) []int8 {
	// Ownership transfer to the caller, as with float tensors.
	return a.GetI8(64)
}

func badAcquireLeak(s *tensor.ShardedArena) float32 {
	shard := s.Acquire()        // want "without any Release"
	return shard.Get(1).Data[0] // want "without any Put"
}

func goodAcquirePaired(s *tensor.ShardedArena) {
	shard := s.Acquire()
	defer s.Release(shard)
	x := shard.Get(8)
	shard.Put(x)
}

func goodAcquireReturned(s *tensor.ShardedArena) *tensor.LocalArena {
	// Checkout on behalf of the caller, who must Release.
	return s.Acquire()
}

type worker struct {
	shard *tensor.LocalArena
}

func goodAcquireStoreDocumented(w *worker, s *tensor.ShardedArena) {
	//eomlvet:ignore arenapair shard parked on the worker; its stop path Releases it
	w.shard = s.Acquire()
}
