package main

import (
	"fmt"
	"net/http"
	"strings"
	"testing"

	"github.com/eoml/eoml"
)

func get(t *testing.T, url string) (int, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var b strings.Builder
	buf := make([]byte, 4096)
	for {
		n, err := resp.Body.Read(buf)
		b.Write(buf[:n])
		if err != nil {
			break
		}
	}
	return resp.StatusCode, b.String()
}

// TestMuxSetSharesOneAddress: two roles asked onto the same address
// land on the same mux and bind exactly one listener.
func TestMuxSetSharesOneAddress(t *testing.T) {
	ms := newMuxSet()
	a := ms.mux("127.0.0.1:0")
	b := ms.mux("127.0.0.1:0")
	if a != b {
		t.Fatal("same address produced two muxes")
	}
	a.HandleFunc("/one", func(w http.ResponseWriter, r *http.Request) { fmt.Fprint(w, "one") })
	b.HandleFunc("/two", func(w http.ResponseWriter, r *http.Request) { fmt.Fprint(w, "two") })
	bound, err := ms.start()
	if err != nil {
		t.Fatal(err)
	}
	defer ms.stop()
	if len(bound) != 1 {
		t.Fatalf("bound %d listeners, want 1", len(bound))
	}
	base := "http://" + bound["127.0.0.1:0"].String()
	if _, body := get(t, base+"/one"); body != "one" {
		t.Fatalf("/one = %q", body)
	}
	if _, body := get(t, base+"/two"); body != "two" {
		t.Fatalf("/two = %q", body)
	}
}

// TestMuxSetDistinctAddresses: different addresses get their own
// listeners.
func TestMuxSetDistinctAddresses(t *testing.T) {
	ms := newMuxSet()
	ms.mux("127.0.0.1:0").HandleFunc("/a", func(w http.ResponseWriter, r *http.Request) {})
	ms.mux("localhost:0").HandleFunc("/b", func(w http.ResponseWriter, r *http.Request) {})
	bound, err := ms.start()
	if err != nil {
		t.Fatal(err)
	}
	defer ms.stop()
	if len(bound) != 2 {
		t.Fatalf("bound %d listeners, want 2", len(bound))
	}
	if bound["127.0.0.1:0"].String() == bound["localhost:0"].String() {
		t.Fatal("distinct addresses share a bound listener")
	}
}

// TestServeListenerComposesWithPprof is the regression test for the
// double-bind bug: the serve subcommand's run API, the aggregate
// metrics endpoints, and /debug/pprof all asked onto ONE address must
// come up on one shared listener instead of the second bind failing.
func TestServeListenerComposesWithPprof(t *testing.T) {
	eng := eoml.NewEngine(eoml.EngineOptions{Quotas: eoml.NewQuotaPool(100, 8)})
	cp := eoml.NewControlPlane(eng, eoml.ControlPlaneOptions{})

	// Mirror runServe with -pprof-addr equal to -addr.
	const addr = "127.0.0.1:0"
	ms := newMuxSet()
	ms.mux(addr).Handle("/", cp)
	attachPprof(ms.mux(addr))
	bound, err := ms.start()
	if err != nil {
		t.Fatal(err)
	}
	defer ms.stop()
	if len(bound) != 1 {
		t.Fatalf("bound %d listeners, want 1", len(bound))
	}
	base := "http://" + bound[addr].String()

	if status, body := get(t, base+"/api/v1/runs"); status != http.StatusOK || !strings.HasPrefix(strings.TrimSpace(body), "[") {
		t.Fatalf("run API: %d %q", status, body)
	}
	if status, body := get(t, base+"/metrics"); status != http.StatusOK || !strings.Contains(body, "eoml_serve_runs_submitted_total") {
		t.Fatalf("metrics: %d %.120q", status, body)
	}
	if status, _ := get(t, base+"/healthz"); status != http.StatusOK {
		t.Fatalf("healthz status = %d", status)
	}
	if status, body := get(t, base+"/debug/pprof/cmdline"); status != http.StatusOK || body == "" {
		t.Fatalf("pprof status = %d", status)
	}
}

// The -init sample must always parse and validate: a user's very first
// contact with the tool cannot be a config error.
func TestSampleConfigParses(t *testing.T) {
	cfg, err := eoml.LoadConfig([]byte(sampleConfig))
	if err != nil {
		t.Fatalf("sample config invalid: %v", err)
	}
	if cfg.ArchiveURL == "" || len(cfg.Granules) == 0 {
		t.Fatalf("sample config incomplete: %+v", cfg)
	}
	if cfg.ModelPath == "" || cfg.CodebookPath == "" {
		t.Fatal("sample config must name model artifacts so -train can save them")
	}
}
