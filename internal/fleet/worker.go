package fleet

import (
	"context"
	"errors"
	"fmt"
	"net"
	"net/http"
	"sync"
	"time"

	"github.com/eoml/eoml/internal/compute"
	"github.com/eoml/eoml/internal/laads"
	"github.com/eoml/eoml/internal/metrics"
)

// WorkerConfig tunes one worker process.
type WorkerConfig struct {
	// ID names the worker to the coordinator; required.
	ID string
	// CoordinatorURL is the control plane's base URL (the /fleet/
	// membership API); required.
	CoordinatorURL string
	// ListenAddr is the endpoint's listen address; default "127.0.0.1:0"
	// (an OS-assigned port).
	ListenAddr string
	// AdvertiseURL overrides the URL registered with the coordinator;
	// default is the actual listen address. Set it when the worker sits
	// behind NAT or a different hostname (multi-facility).
	AdvertiseURL string
	// Slots is both the endpoint's pool size and the in-flight capacity
	// registered with the coordinator; default 1.
	Slots int
	// Heartbeat overrides the cadence the coordinator requests; 0 obeys
	// the coordinator.
	Heartbeat time.Duration
	// TaskTimeout bounds each task's execution; 0 disables.
	TaskTimeout time.Duration
	// PrefetchWindow is how many leased granules fetch their archive
	// inputs ahead of a free compute slot. It also extends the capacity
	// registered with the coordinator (Slots + PrefetchWindow) so extra
	// leases queue at the endpoint where the prefetcher can see them.
	// 0 disables prefetching.
	PrefetchWindow int
	// CacheDir, when set, enables the content-addressed on-disk download
	// cache so re-leased granules hit disk instead of the archive.
	CacheDir string
	// CacheMaxBytes bounds the download cache; <= 0 means unbounded.
	CacheMaxBytes int64
	// ArchiveQuota, when set, gates every archive fetch — prefetch and
	// in-slot — on the owning tenant's token bucket.
	ArchiveQuota *laads.QuotaPool
	// Metrics, when set, receives the worker-side cache and prefetch
	// series (eoml_fleet_cache_*, eoml_fleet_prefetch_inflight).
	Metrics *metrics.Registry
	// Register, when set, adds extra functions to the worker's registry
	// before the standard kernels (tests).
	Register func(reg *compute.Registry) error
}

// Worker is one fleet worker process: a compute endpoint serving the
// standard kernels over HTTP, registered with a coordinator and kept
// live by heartbeats. Start it, let the coordinator lease tasks to it,
// Stop it to drain gracefully.
type Worker struct {
	cfg      WorkerConfig
	client   *Client
	ep       *compute.Endpoint
	srv      *http.Server
	kernels  *Kernels
	prefetch *Prefetcher
	capacity int // Slots + PrefetchWindow, registered with the coordinator

	mu sync.Mutex
	// url is the advertised endpoint URL, known after Start. guarded by mu
	url string
	// stop cancels the heartbeat loop. guarded by mu
	stop context.CancelFunc

	wg sync.WaitGroup
}

// NewWorker builds a worker; Start makes it live.
func NewWorker(cfg WorkerConfig) (*Worker, error) {
	if cfg.ID == "" || cfg.CoordinatorURL == "" {
		return nil, fmt.Errorf("fleet: worker needs an id and a coordinator url")
	}
	if cfg.ListenAddr == "" {
		cfg.ListenAddr = "127.0.0.1:0"
	}
	if cfg.Slots <= 0 {
		cfg.Slots = 1
	}
	if cfg.PrefetchWindow < 0 {
		cfg.PrefetchWindow = 0
	}
	reg := compute.NewRegistry()
	if cfg.Register != nil {
		if err := cfg.Register(reg); err != nil {
			return nil, err
		}
	}
	kernels, err := NewKernelsWith(KernelConfig{
		CacheDir:      cfg.CacheDir,
		CacheMaxBytes: cfg.CacheMaxBytes,
		Quota:         cfg.ArchiveQuota,
	})
	if err != nil {
		return nil, err
	}
	if err := kernels.Register(reg); err != nil {
		return nil, err
	}
	if cfg.Metrics != nil {
		kernels.Instrument(cfg.Metrics)
	}
	prefetch := NewPrefetcher(kernels, cfg.PrefetchWindow)
	ep, err := compute.NewEndpoint(cfg.ID, reg, compute.EndpointConfig{
		Workers:     cfg.Slots,
		TaskTimeout: cfg.TaskTimeout,
		OnEnqueue:   prefetch.OnEnqueue,
	})
	if err != nil {
		return nil, err
	}
	return &Worker{
		cfg:      cfg,
		client:   NewClient(cfg.CoordinatorURL),
		ep:       ep,
		kernels:  kernels,
		prefetch: prefetch,
		// Lease-ahead: advertise more capacity than compute slots so the
		// next PrefetchWindow granules queue here for the prefetcher.
		capacity: cfg.Slots + cfg.PrefetchWindow,
	}, nil
}

// Kernels exposes the worker's kernel state (cache statistics) for
// tests and benchmarks.
func (w *Worker) Kernels() *Kernels { return w.kernels }

// URL reports the advertised endpoint URL (empty before Start).
func (w *Worker) URL() string {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.url
}

// Start listens, launches the task pool, registers with the
// coordinator, and begins heartbeating. ctx bounds the registration
// call only; the heartbeat loop runs until Stop.
func (w *Worker) Start(ctx context.Context) error {
	ln, err := net.Listen("tcp", w.cfg.ListenAddr)
	if err != nil {
		return err
	}
	url := w.cfg.AdvertiseURL
	if url == "" {
		url = "http://" + ln.Addr().String()
	}
	w.ep.Start()
	w.srv = &http.Server{Handler: w.ep.Handler()}
	w.wg.Add(1)
	go func() {
		defer w.wg.Done()
		_ = w.srv.Serve(ln) // returns on Close/Shutdown
	}()

	cadence, err := w.client.Register(ctx, w.cfg.ID, url, w.capacity)
	if err != nil {
		_ = w.srv.Close()
		w.ep.Stop()
		w.wg.Wait()
		return fmt.Errorf("fleet: worker %s register: %w", w.cfg.ID, err)
	}
	if w.cfg.Heartbeat > 0 {
		cadence = w.cfg.Heartbeat
	}
	if cadence <= 0 {
		cadence = time.Second
	}

	hbCtx, cancel := context.WithCancel(context.Background())
	w.mu.Lock()
	w.url = url
	w.stop = cancel
	w.mu.Unlock()
	w.wg.Add(1)
	go w.heartbeatLoop(hbCtx, url, cadence)
	return nil
}

// heartbeatLoop keeps the worker live, re-registering if the
// coordinator evicted it (coordinator restart, missed heartbeats).
func (w *Worker) heartbeatLoop(ctx context.Context, url string, cadence time.Duration) {
	defer w.wg.Done()
	ticker := time.NewTicker(cadence)
	defer ticker.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-ticker.C:
			err := w.client.Heartbeat(ctx, w.cfg.ID)
			var unknown *ErrUnknownWorker
			if errors.As(err, &unknown) {
				_, _ = w.client.Register(ctx, w.cfg.ID, url, w.capacity)
			}
		}
	}
}

// Stop drains gracefully: stop heartbeating, deregister so the
// coordinator leases nothing new here (late submissions get the typed
// compute.ErrDraining and requeue), finish in-flight tasks, then shut
// the HTTP server down once outstanding result polls settle.
func (w *Worker) Stop() {
	w.mu.Lock()
	stop := w.stop
	w.stop = nil
	w.mu.Unlock()
	if stop != nil {
		stop()
	}
	dctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	_ = w.client.Deregister(dctx, w.cfg.ID)
	w.ep.Stop()
	w.prefetch.Close()
	if w.srv != nil {
		_ = w.srv.Shutdown(dctx)
		_ = w.srv.Close()
	}
	w.wg.Wait()
}
