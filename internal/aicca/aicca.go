// Package aicca produces the AI-driven Cloud Classification Atlas labels:
// it couples a trained RICC encoder with the fixed 42-class centroid
// codebook to assign a cloud class to every ocean-cloud tile, and
// aggregates per-class physical statistics from the MOD06-derived tile
// properties — the association between AICCA classes and cloud physics
// that the atlas publishes.
package aicca

import (
	"fmt"
	"math"
	"sort"

	"github.com/eoml/eoml/internal/cluster42"
	"github.com/eoml/eoml/internal/ricc"
	"github.com/eoml/eoml/internal/tile"
)

// NumClasses re-exports the AICCA class count.
const NumClasses = cluster42.NumClasses

// Labeler assigns AICCA classes to tiles.
type Labeler struct {
	Model    *ricc.Model
	Codebook *ricc.Codebook
	// Precision selects the encode arithmetic; zero value (or
	// PrecisionFloat32) is the full-precision path, PrecisionInt8 the
	// quantized one.
	Precision Precision
}

// NewLabeler validates and wraps a trained model and codebook.
func NewLabeler(m *ricc.Model, cb *ricc.Codebook) (*Labeler, error) {
	if m == nil || m.Norm == nil {
		return nil, fmt.Errorf("aicca: labeler needs a trained model")
	}
	if cb == nil || len(cb.Centroids) == 0 {
		return nil, fmt.Errorf("aicca: labeler needs a non-empty codebook")
	}
	if len(cb.Centroids[0]) != m.Cfg.LatentDim {
		return nil, fmt.Errorf("aicca: codebook dim %d != model latent %d", len(cb.Centroids[0]), m.Cfg.LatentDim)
	}
	return &Labeler{Model: m, Codebook: cb}, nil
}

// Train builds a Labeler from scratch: fit the RICC autoencoder on the
// training tiles, encode them, and cluster the latents into k classes.
// This is the paper's "RICC training" + "cluster evaluation" stages.
func Train(tiles []*tile.Tile, cfg ricc.Config, k int) (*Labeler, *cluster42.Result, error) {
	if k <= 0 {
		return nil, nil, fmt.Errorf("aicca: k must be positive")
	}
	if len(tiles) < k {
		return nil, nil, fmt.Errorf("aicca: %d training tiles for %d classes", len(tiles), k)
	}
	m, err := ricc.NewModel(cfg)
	if err != nil {
		return nil, nil, err
	}
	if _, err := m.Train(tiles); err != nil {
		return nil, nil, err
	}
	latents, err := m.Encode(tiles)
	if err != nil {
		return nil, nil, err
	}
	cb, res, err := ricc.BuildCodebook(latents, k)
	if err != nil {
		return nil, nil, err
	}
	l, err := NewLabeler(m, cb)
	if err != nil {
		return nil, nil, err
	}
	return l, res, nil
}

// encode runs the batch encode in the labeler's configured precision.
func (l *Labeler) encode(tiles []*tile.Tile) ([][]float32, error) {
	if l.Precision == PrecisionInt8 {
		return l.Model.EncodeBatchQ8(tiles)
	}
	return l.Model.EncodeBatch(tiles)
}

// LabelTiles assigns classes to tiles in place and returns the labels.
// Encoding goes through the batch-GEMM path (float32 or int8 per the
// Precision field), so a BatchLabeler flush that packed tiles from
// several files runs one blocked matmul per layer for the whole pack.
func (l *Labeler) LabelTiles(tiles []*tile.Tile) ([]int16, error) {
	if len(tiles) == 0 {
		return nil, nil
	}
	latents, err := l.encode(tiles)
	if err != nil {
		return nil, err
	}
	classes, err := l.Codebook.Assign(latents)
	if err != nil {
		return nil, err
	}
	labels := make([]int16, len(tiles))
	for i, c := range classes {
		labels[i] = int16(c)
		tiles[i].Label = int16(c)
	}
	return labels, nil
}

// LabelFile reads a tile NetCDF, labels its tiles, and rewrites the file
// with the labels appended — one inference Flow action of the paper's
// stage 4. It returns the number of tiles labeled.
func (l *Labeler) LabelFile(path string) (int, error) {
	tiles, err := tile.ReadNetCDF(path)
	if err != nil {
		return 0, err
	}
	labels, err := l.LabelTiles(tiles)
	if err != nil {
		return 0, err
	}
	if len(labels) == 0 {
		return 0, nil
	}
	if err := tile.AppendLabels(path, labels); err != nil {
		return 0, err
	}
	return len(labels), nil
}

// ClassStats summarizes one AICCA class over a labeled tile population.
type ClassStats struct {
	Class                int
	Count                int
	MeanCloudTopPressure float64
	MeanOpticalThickness float64
	MeanEffectiveRadius  float64
	MeanCloudFraction    float64
	IceFraction          float64
}

// GeoCell is one latitude/longitude cell of a class-occurrence map.
type GeoCell struct {
	LatMin, LonMin float64 // cell lower-left corner, degrees
	Counts         map[int]int
	Total          int
}

// GeoHistogram grids labeled tiles into cellDeg × cellDeg cells and
// counts class occurrences per cell — the spatial association AICCA
// publishes (e.g. stratocumulus classes concentrating in the eastern
// subtropical ocean basins). Unlabeled tiles are skipped. Cells are
// returned sorted south-to-north, then west-to-east.
func GeoHistogram(tiles []*tile.Tile, cellDeg float64) ([]GeoCell, error) {
	if cellDeg <= 0 || cellDeg > 90 {
		return nil, fmt.Errorf("aicca: cell size %v out of (0,90]", cellDeg)
	}
	type key struct{ lat, lon int }
	cells := map[key]*GeoCell{}
	for _, t := range tiles {
		if t.Label < 0 {
			continue
		}
		k := key{
			lat: int(math.Floor(float64(t.Lat) / cellDeg)),
			lon: int(math.Floor(float64(t.Lon) / cellDeg)),
		}
		c, ok := cells[k]
		if !ok {
			c = &GeoCell{
				LatMin: float64(k.lat) * cellDeg,
				LonMin: float64(k.lon) * cellDeg,
				Counts: map[int]int{},
			}
			cells[k] = c
		}
		c.Counts[int(t.Label)]++
		c.Total++
	}
	out := make([]GeoCell, 0, len(cells))
	for _, c := range cells {
		out = append(out, *c)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].LatMin != out[j].LatMin {
			return out[i].LatMin < out[j].LatMin
		}
		return out[i].LonMin < out[j].LonMin
	})
	return out, nil
}

// DominantClass returns the most frequent class in the cell (lowest class
// wins ties) and its share of the cell total.
func (c GeoCell) DominantClass() (class int, share float64) {
	best, bestN := -1, 0
	classes := make([]int, 0, len(c.Counts))
	for cl := range c.Counts {
		classes = append(classes, cl)
	}
	sort.Ints(classes)
	for _, cl := range classes {
		if c.Counts[cl] > bestN {
			best, bestN = cl, c.Counts[cl]
		}
	}
	if c.Total == 0 {
		return -1, 0
	}
	return best, float64(bestN) / float64(c.Total)
}

// Atlas aggregates per-class physical statistics from labeled tiles —
// the class/physics association table that makes AICCA useful for climate
// analysis. Unlabeled tiles (label < 0) are skipped.
func Atlas(tiles []*tile.Tile) []ClassStats {
	byClass := map[int]*ClassStats{}
	for _, t := range tiles {
		if t.Label < 0 {
			continue
		}
		c := int(t.Label)
		st, ok := byClass[c]
		if !ok {
			st = &ClassStats{Class: c}
			byClass[c] = st
		}
		st.Count++
		st.MeanCloudTopPressure += float64(t.MeanCTP)
		st.MeanOpticalThickness += float64(t.MeanCOT)
		st.MeanEffectiveRadius += float64(t.MeanCER)
		st.MeanCloudFraction += float64(t.CloudFrac)
		st.IceFraction += float64(t.IcePhaseFrac)
	}
	out := make([]ClassStats, 0, len(byClass))
	for _, st := range byClass {
		n := float64(st.Count)
		st.MeanCloudTopPressure /= n
		st.MeanOpticalThickness /= n
		st.MeanEffectiveRadius /= n
		st.MeanCloudFraction /= n
		st.IceFraction /= n
		out = append(out, *st)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Class < out[j].Class })
	return out
}
