package parsl

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func newExec(t *testing.T, cfg HTEXConfig) *HighThroughputExecutor {
	t.Helper()
	if cfg.Label == "" {
		cfg.Label = "test"
	}
	if cfg.WorkersPerNode == 0 {
		cfg.WorkersPerNode = 4
	}
	e, err := NewHTEX(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Start(context.Background()); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		if err := e.Shutdown(context.Background()); err != nil {
			t.Errorf("shutdown: %v", err)
		}
	})
	return e
}

func TestHTEXRunsTasks(t *testing.T) {
	e := newExec(t, HTEXConfig{InitBlocks: 1, MaxBlocks: 1})
	var count int64
	var wg sync.WaitGroup
	for i := 0; i < 100; i++ {
		wg.Add(1)
		if err := e.Submit(func() {
			atomic.AddInt64(&count, 1)
			wg.Done()
		}); err != nil {
			t.Fatal(err)
		}
	}
	wg.Wait()
	if count != 100 {
		t.Fatalf("count = %d", count)
	}
}

func TestHTEXBoundedWorkers(t *testing.T) {
	e := newExec(t, HTEXConfig{InitBlocks: 1, MaxBlocks: 1, NodesPerBlock: 1, WorkersPerNode: 3})
	var now, peak int64
	var wg sync.WaitGroup
	for i := 0; i < 30; i++ {
		wg.Add(1)
		if err := e.Submit(func() {
			defer wg.Done()
			v := atomic.AddInt64(&now, 1)
			for {
				p := atomic.LoadInt64(&peak)
				if v <= p || atomic.CompareAndSwapInt64(&peak, p, v) {
					break
				}
			}
			time.Sleep(5 * time.Millisecond)
			atomic.AddInt64(&now, -1)
		}); err != nil {
			t.Fatal(err)
		}
	}
	wg.Wait()
	if peak > 3 {
		t.Fatalf("peak %d > 3 workers", peak)
	}
}

func TestHTEXElasticScaleOut(t *testing.T) {
	p := &LocalProvider{}
	e := newExec(t, HTEXConfig{
		Provider:       p,
		InitBlocks:     1,
		MaxBlocks:      4,
		NodesPerBlock:  1,
		WorkersPerNode: 1,
		ScaleInterval:  2 * time.Millisecond,
		IdleTimeout:    time.Hour, // no scale-in during this test
	})
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		if err := e.Submit(func() {
			defer wg.Done()
			time.Sleep(20 * time.Millisecond)
		}); err != nil {
			t.Fatal(err)
		}
	}
	wg.Wait()
	if got := e.Blocks(); got < 2 {
		t.Fatalf("blocks = %d; executor never scaled out", got)
	}
	if got := e.Blocks(); got > 4 {
		t.Fatalf("blocks = %d exceeds MaxBlocks", got)
	}
}

func TestHTEXScaleInWhenIdle(t *testing.T) {
	e := newExec(t, HTEXConfig{
		InitBlocks:     3,
		MaxBlocks:      3,
		MinBlocks:      1,
		NodesPerBlock:  1,
		WorkersPerNode: 1,
		ScaleInterval:  2 * time.Millisecond,
		IdleTimeout:    10 * time.Millisecond,
	})
	deadline := time.Now().Add(2 * time.Second)
	for e.Blocks() > 1 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if got := e.Blocks(); got != 1 {
		t.Fatalf("blocks = %d after idle period, want MinBlocks=1", got)
	}
}

func TestHTEXWorkerHookSeesActivity(t *testing.T) {
	var maxBusy int64
	e := newExec(t, HTEXConfig{
		InitBlocks:     1,
		MaxBlocks:      1,
		WorkersPerNode: 4,
		OnWorkerChange: func(busy int) {
			for {
				cur := atomic.LoadInt64(&maxBusy)
				if int64(busy) <= cur || atomic.CompareAndSwapInt64(&maxBusy, cur, int64(busy)) {
					break
				}
			}
		},
	})
	var wg sync.WaitGroup
	for i := 0; i < 12; i++ {
		wg.Add(1)
		if err := e.Submit(func() { time.Sleep(10 * time.Millisecond); wg.Done() }); err != nil {
			t.Fatal(err)
		}
	}
	wg.Wait()
	if atomic.LoadInt64(&maxBusy) < 2 {
		t.Fatalf("hook max busy = %d", maxBusy)
	}
}

func TestProviderValidationAndCapacity(t *testing.T) {
	p := &LocalProvider{MaxNodes: 2}
	if _, err := p.Allocate(context.Background(), 0, 1); err == nil {
		t.Error("zero nodes accepted")
	}
	id1, err := p.Allocate(context.Background(), 2, 4)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.Allocate(context.Background(), 1, 1); err == nil {
		t.Error("over-capacity allocation accepted")
	}
	if p.NodesInUse() != 2 {
		t.Fatalf("nodes in use = %d", p.NodesInUse())
	}
	if err := p.Release(id1); err != nil {
		t.Fatal(err)
	}
	if err := p.Release(id1); err == nil {
		t.Error("double release accepted")
	}
}

func TestDFKDependencies(t *testing.T) {
	e := newExec(t, HTEXConfig{InitBlocks: 1, MaxBlocks: 1})
	d, err := NewDFK(e, DFKConfig{})
	if err != nil {
		t.Fatal(err)
	}
	var order []string
	var mu sync.Mutex
	record := func(name string) App {
		return func(ctx context.Context) (any, error) {
			mu.Lock()
			order = append(order, name)
			mu.Unlock()
			return name, nil
		}
	}
	a := d.Submit("a", record("a"))
	b := d.Submit("b", record("b"), a)
	c := d.Submit("c", record("c"), a, b)
	if _, err := c.Get(context.Background()); err != nil {
		t.Fatal(err)
	}
	d.Drain()
	mu.Lock()
	defer mu.Unlock()
	if len(order) != 3 || order[0] != "a" || order[2] != "c" {
		t.Fatalf("order = %v", order)
	}
	_ = b
}

func TestDFKDependencyFailureSkipsDownstream(t *testing.T) {
	e := newExec(t, HTEXConfig{InitBlocks: 1, MaxBlocks: 1})
	d, _ := NewDFK(e, DFKConfig{})
	ran := false
	bad := d.Submit("bad", func(ctx context.Context) (any, error) {
		return nil, errors.New("upstream exploded")
	})
	down := d.Submit("down", func(ctx context.Context) (any, error) {
		ran = true
		return nil, nil
	}, bad)
	_, err := down.Get(context.Background())
	var depErr *DependencyError
	if !errors.As(err, &depErr) {
		t.Fatalf("error %v is not a DependencyError", err)
	}
	if depErr.Dep != "bad" {
		t.Fatalf("dep = %q", depErr.Dep)
	}
	if ran {
		t.Fatal("downstream body ran despite failed dependency")
	}
}

func TestDFKRetries(t *testing.T) {
	e := newExec(t, HTEXConfig{InitBlocks: 1, MaxBlocks: 1})
	d, _ := NewDFK(e, DFKConfig{Retries: 3})
	var attempts int64
	f := d.Submit("flaky", func(ctx context.Context) (any, error) {
		if atomic.AddInt64(&attempts, 1) < 3 {
			return nil, errors.New("transient")
		}
		return "ok", nil
	})
	v, err := f.Get(context.Background())
	if err != nil || v != "ok" {
		t.Fatalf("result %v, %v", v, err)
	}
	if attempts != 3 {
		t.Fatalf("attempts = %d", attempts)
	}
}

func TestDFKRetriesExhausted(t *testing.T) {
	e := newExec(t, HTEXConfig{InitBlocks: 1, MaxBlocks: 1})
	d, _ := NewDFK(e, DFKConfig{Retries: 2})
	var attempts int64
	f := d.Submit("doomed", func(ctx context.Context) (any, error) {
		atomic.AddInt64(&attempts, 1)
		return nil, errors.New("permanent")
	})
	if _, err := f.Get(context.Background()); err == nil {
		t.Fatal("exhausted retries returned success")
	}
	if attempts != 3 {
		t.Fatalf("attempts = %d, want 3 (1 + 2 retries)", attempts)
	}
}

func TestDFKAppPanicIsError(t *testing.T) {
	e := newExec(t, HTEXConfig{InitBlocks: 1, MaxBlocks: 1})
	d, _ := NewDFK(e, DFKConfig{})
	f := d.Submit("panics", func(ctx context.Context) (any, error) {
		panic("app bug")
	})
	if _, err := f.Get(context.Background()); err == nil {
		t.Fatal("panic not surfaced as error")
	}
}

func TestDFKMapAndWaitAll(t *testing.T) {
	e := newExec(t, HTEXConfig{InitBlocks: 1, MaxBlocks: 1, WorkersPerNode: 8})
	d, _ := NewDFK(e, DFKConfig{})
	apps := make([]App, 50)
	for i := range apps {
		i := i
		apps[i] = func(ctx context.Context) (any, error) { return i * i, nil }
	}
	futs := d.Map("square", apps)
	if err := WaitAll(context.Background(), futs); err != nil {
		t.Fatal(err)
	}
	for i, f := range futs {
		v, err := f.Get(context.Background())
		if err != nil || v.(int) != i*i {
			t.Fatalf("square[%d] = %v, %v", i, v, err)
		}
	}
}

func TestWaitAllReportsFirstError(t *testing.T) {
	e := newExec(t, HTEXConfig{InitBlocks: 1, MaxBlocks: 1})
	d, _ := NewDFK(e, DFKConfig{})
	futs := []*AppFuture{
		d.Submit("ok", func(ctx context.Context) (any, error) { return nil, nil }),
		d.Submit("bad", func(ctx context.Context) (any, error) { return nil, fmt.Errorf("nope") }),
	}
	err := WaitAll(context.Background(), futs)
	if err == nil {
		t.Fatal("error swallowed")
	}
}

func TestHTEXConfigValidation(t *testing.T) {
	if _, err := NewHTEX(HTEXConfig{Label: "x"}); err == nil {
		t.Error("zero workers per node accepted")
	}
	if _, err := NewHTEX(HTEXConfig{Label: "x", WorkersPerNode: 1, MinBlocks: 5, MaxBlocks: 2}); err == nil {
		t.Error("MinBlocks > MaxBlocks accepted")
	}
}

func TestShutdownDrainsQueueEvenWithoutBlocks(t *testing.T) {
	e, err := NewHTEX(HTEXConfig{
		Label:          "drain",
		WorkersPerNode: 2,
		InitBlocks:     0,
		MinBlocks:      0,
		MaxBlocks:      1,
		ScaleInterval:  time.Hour, // scaler never fires
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Start(context.Background()); err != nil {
		t.Fatal(err)
	}
	ran := false
	if err := e.Submit(func() { ran = true }); err != nil {
		t.Fatal(err)
	}
	if err := e.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}
	if !ran {
		t.Fatal("queued task dropped at shutdown")
	}
}
