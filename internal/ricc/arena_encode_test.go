package ricc

import (
	"math"
	"reflect"
	"sync"
	"testing"
)

func TestEncodeMatchesNoArena(t *testing.T) {
	cfg := smallConfig()
	cfg.Epochs = 2
	m, err := NewModel(cfg)
	if err != nil {
		t.Fatal(err)
	}
	tiles := syntheticTiles(300, cfg.TileSize, cfg.Channels, 8) // >maxBatch: two batches
	if _, err := m.Train(tiles[:64]); err != nil {
		t.Fatal(err)
	}
	want, err := m.EncodeNoArena(tiles)
	if err != nil {
		t.Fatal(err)
	}
	got, err := m.Encode(tiles)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("len %d, want %d", len(got), len(want))
	}
	for i := range want {
		for j := range want[i] {
			d := math.Abs(float64(got[i][j] - want[i][j]))
			if d > 1e-5*(1+math.Abs(float64(want[i][j]))) {
				t.Fatalf("tile %d dim %d: %g vs %g", i, j, got[i][j], want[i][j])
			}
		}
	}
}

// TestEncodeArenaConcurrent proves arena buffers never alias across
// concurrent Encode calls: every concurrent result must be bit-identical
// to the sequential one, across repeated iterations that maximally churn
// the pools.
func TestEncodeArenaConcurrent(t *testing.T) {
	cfg := smallConfig()
	cfg.Epochs = 2
	m, err := NewModel(cfg)
	if err != nil {
		t.Fatal(err)
	}
	tiles := syntheticTiles(80, cfg.TileSize, cfg.Channels, 9)
	if _, err := m.Train(tiles[:64]); err != nil {
		t.Fatal(err)
	}
	ref, err := m.Encode(tiles)
	if err != nil {
		t.Fatal(err)
	}
	const workers = 6
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for iter := 0; iter < 10; iter++ {
				got, err := m.Encode(tiles)
				if err != nil {
					errs <- err
					return
				}
				if !reflect.DeepEqual(got, ref) {
					t.Error("concurrent Encode diverged from sequential result")
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}
