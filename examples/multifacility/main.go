// Multi-facility scenario: the paper's production story at container
// scale. A "NASA LAADS DAAC" archive (HTTP server with token auth and
// bandwidth shaping) feeds an "ACE Defiant" working area; labeled NetCDF
// products are shipped to a separate "Frontier Orion" filesystem with
// checksum verification. The run prints the per-stage latency breakdown
// (the real-mode counterpart of Fig. 7) and the worker-activity timeline
// (Fig. 6), then summarizes what landed on the destination facility.
//
//	go run ./examples/multifacility
package main

import (
	"context"
	"fmt"
	"log"
	"net/http/httptest"
	"os"
	"path/filepath"
	"time"

	"github.com/eoml/eoml"
)

func main() {
	const scale = 32

	// Facility 1: the data archive, bandwidth-shaped like a WAN link.
	archive, err := eoml.NewArchiveServer(eoml.ArchiveOptions{
		ScaleDown:            scale,
		Token:                "olcf-ace",
		PerConnBytesPerSec:   8 << 20,
		AggregateBytesPerSec: 24 << 20,
	})
	if err != nil {
		log.Fatal(err)
	}
	server := httptest.NewServer(archive)
	defer server.Close()

	// Facility 2: the compute site's scratch tree.
	defiant, err := os.MkdirTemp("", "eoml-defiant-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(defiant)
	// Facility 3: the analysis site's filesystem.
	orion, err := os.MkdirTemp("", "eoml-orion-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(orion)

	cfg := eoml.DefaultConfig()
	cfg.ArchiveURL = server.URL
	cfg.ArchiveToken = "olcf-ace"
	cfg.TilePixels = 4
	cfg.DownloadWorkers = 3
	cfg.PreprocessWorkers = 8
	cfg.InferenceWorkers = 1
	cfg.PollInterval = 20 * time.Millisecond
	cfg.DataDir = filepath.Join(defiant, "modis")
	cfg.TileDir = filepath.Join(defiant, "tiles")
	cfg.OutboxDir = filepath.Join(defiant, "outbox")
	cfg.DestDir = filepath.Join(orion, "aicca")

	granules, err := eoml.FindDayGranules(cfg, scale, 6, 4)
	if err != nil {
		log.Fatal(err)
	}
	cfg.Granules = granules
	fmt.Printf("multifacility: processing %d granules of 2022-001 across three facilities\n", len(granules))

	ctx := context.Background()
	labeler, err := eoml.TrainFromArchive(ctx, cfg, eoml.TrainOptions{
		Granules: granules[:2], // train on a subset, infer on the full set
		Classes:  8,
		Epochs:   3,
		Seed:     2,
	})
	if err != nil {
		log.Fatal(err)
	}

	// Persist the model artifacts, as a facility-resident service would.
	modelDir := filepath.Join(defiant, "models")
	if err := os.MkdirAll(modelDir, 0o755); err != nil {
		log.Fatal(err)
	}
	cfg.ModelPath = filepath.Join(modelDir, "ricc.hdf")
	cfg.CodebookPath = filepath.Join(modelDir, "aicca-codebook.hdf")
	if err := eoml.SaveLabeler(labeler, cfg.ModelPath, cfg.CodebookPath); err != nil {
		log.Fatal(err)
	}

	// The pipeline loads the artifacts from disk (labeler == nil).
	pipe, err := eoml.NewPipeline(cfg, nil)
	if err != nil {
		log.Fatal(err)
	}
	rep, err := pipe.Run(ctx)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("\nrun report: ", rep.Summary())
	fmt.Println("\nstage latency breakdown (cf. paper Fig. 7):")
	fmt.Print(rep.Spans.Render())
	fmt.Println("\nworker activity timeline (cf. paper Fig. 6):")
	fmt.Print(rep.Timeline.Render(rep.Elapsed.Seconds(), 72))

	shipped, err := filepath.Glob(filepath.Join(cfg.DestDir, "*.nc"))
	if err != nil {
		log.Fatal(err)
	}
	totalTiles := 0
	for _, path := range shipped {
		tiles, err := eoml.ReadTiles(path)
		if err != nil {
			log.Fatal(err)
		}
		totalTiles += len(tiles)
	}
	fmt.Printf("\nlanded on Orion: %d labeled NetCDF files, %d tiles, ready for downstream climate analysis\n",
		len(shipped), totalTiles)
}
