// Package provenance records workflow lineage and component schemas —
// the reproducibility layer the paper's §V.A calls for: "integrate
// advanced provenance tracking and telemetry tools for real-time workflow
// insights" and "publishing clear input and output schemas for each
// workflow component".
//
// The model follows W3C PROV's core triangle, trimmed to what the EO-ML
// workflow needs:
//
//   - an Entity is a data artifact (a granule, a tile NetCDF, a model
//     checkpoint, a shipped product), identified by a stable ID;
//   - an Activity is a processing step (download, preprocess, inference,
//     shipment) consuming and producing entities;
//   - lineage queries walk backwards from any entity to the activities
//     and source entities it was derived from.
//
// A SchemaRegistry declares each component's expected inputs/outputs so a
// workflow composer can detect mismatched pipelines before running them.
package provenance

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"sync"
	"time"
)

// Entity is one data artifact.
type Entity struct {
	ID    string            `json:"id"`
	Kind  string            `json:"kind"` // "granule", "tiles", "model", ...
	URI   string            `json:"uri"`
	Attrs map[string]string `json:"attrs,omitempty"`
}

// Activity is one processing step.
type Activity struct {
	ID      string    `json:"id"`
	Name    string    `json:"name"` // component name, e.g. "preprocess"
	Agent   string    `json:"agent"`
	Started time.Time `json:"started"`
	Ended   time.Time `json:"ended"`
	Inputs  []string  `json:"inputs"`  // entity IDs
	Outputs []string  `json:"outputs"` // entity IDs
}

// Store is an in-memory provenance graph with JSON import/export.
type Store struct {
	mu         sync.RWMutex
	entities   map[string]Entity
	activities map[string]Activity
	producer   map[string]string // entity ID -> activity ID that produced it
	order      []string          // activity IDs in record order
}

// NewStore returns an empty graph.
func NewStore() *Store {
	return &Store{
		entities:   map[string]Entity{},
		activities: map[string]Activity{},
		producer:   map[string]string{},
	}
}

// AddEntity records an artifact. Re-adding the same ID must carry the
// same kind; attrs are merged.
func (s *Store) AddEntity(e Entity) error {
	if e.ID == "" || e.Kind == "" {
		return fmt.Errorf("provenance: entity needs id and kind")
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if old, ok := s.entities[e.ID]; ok {
		if old.Kind != e.Kind {
			return fmt.Errorf("provenance: entity %q re-registered as %q (was %q)", e.ID, e.Kind, old.Kind)
		}
		for k, v := range e.Attrs {
			if old.Attrs == nil {
				old.Attrs = map[string]string{}
			}
			old.Attrs[k] = v
		}
		if e.URI != "" {
			old.URI = e.URI
		}
		s.entities[e.ID] = old
		return nil
	}
	s.entities[e.ID] = e
	return nil
}

// AddActivity records a step. Every referenced entity must exist, and an
// output entity may have only one producer.
func (s *Store) AddActivity(a Activity) error {
	if a.ID == "" || a.Name == "" {
		return fmt.Errorf("provenance: activity needs id and name")
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, dup := s.activities[a.ID]; dup {
		return fmt.Errorf("provenance: duplicate activity %q", a.ID)
	}
	for _, id := range append(append([]string{}, a.Inputs...), a.Outputs...) {
		if _, ok := s.entities[id]; !ok {
			return fmt.Errorf("provenance: activity %q references unknown entity %q", a.ID, id)
		}
	}
	for _, out := range a.Outputs {
		if prev, taken := s.producer[out]; taken {
			return fmt.Errorf("provenance: entity %q already produced by %q", out, prev)
		}
	}
	s.activities[a.ID] = a
	s.order = append(s.order, a.ID)
	for _, out := range a.Outputs {
		s.producer[out] = a.ID
	}
	return nil
}

// Entity fetches an artifact.
func (s *Store) Entity(id string) (Entity, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	e, ok := s.entities[id]
	if !ok {
		return Entity{}, fmt.Errorf("provenance: no entity %q", id)
	}
	return e, nil
}

// Activities returns all activities in record order.
func (s *Store) Activities() []Activity {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]Activity, 0, len(s.order))
	for _, id := range s.order {
		out = append(out, s.activities[id])
	}
	return out
}

// Step is one hop of a lineage trace.
type Step struct {
	Activity Activity
	Inputs   []Entity
}

// Lineage walks backwards from an entity, returning the chain of
// activities (most recent first) that led to it. Shared ancestors are
// reported once.
func (s *Store) Lineage(entityID string) ([]Step, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if _, ok := s.entities[entityID]; !ok {
		return nil, fmt.Errorf("provenance: no entity %q", entityID)
	}
	var steps []Step
	seenActivity := map[string]bool{}
	frontier := []string{entityID}
	for len(frontier) > 0 {
		var next []string
		for _, eid := range frontier {
			actID, produced := s.producer[eid]
			if !produced || seenActivity[actID] {
				continue
			}
			seenActivity[actID] = true
			act := s.activities[actID]
			step := Step{Activity: act}
			for _, in := range act.Inputs {
				step.Inputs = append(step.Inputs, s.entities[in])
				next = append(next, in)
			}
			steps = append(steps, step)
		}
		frontier = next
	}
	return steps, nil
}

// Derived returns every entity transitively derived from the given one
// (forward lineage), sorted by ID.
func (s *Store) Derived(entityID string) ([]Entity, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if _, ok := s.entities[entityID]; !ok {
		return nil, fmt.Errorf("provenance: no entity %q", entityID)
	}
	consumers := map[string][]string{} // entity -> activities consuming it
	for id, act := range s.activities {
		for _, in := range act.Inputs {
			consumers[in] = append(consumers[in], id)
		}
	}
	seen := map[string]bool{}
	var out []Entity
	frontier := []string{entityID}
	for len(frontier) > 0 {
		var next []string
		for _, eid := range frontier {
			for _, actID := range consumers[eid] {
				for _, produced := range s.activities[actID].Outputs {
					if !seen[produced] {
						seen[produced] = true
						out = append(out, s.entities[produced])
						next = append(next, produced)
					}
				}
			}
		}
		frontier = next
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out, nil
}

// document is the JSON export shape.
type document struct {
	Entities   []Entity   `json:"entities"`
	Activities []Activity `json:"activities"`
}

// Export writes the graph as JSON.
func (s *Store) Export(w io.Writer) error {
	s.mu.RLock()
	doc := document{}
	ids := make([]string, 0, len(s.entities))
	for id := range s.entities {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	for _, id := range ids {
		doc.Entities = append(doc.Entities, s.entities[id])
	}
	for _, id := range s.order {
		doc.Activities = append(doc.Activities, s.activities[id])
	}
	s.mu.RUnlock()
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(doc)
}

// Import loads a JSON export into an empty store.
func Import(r io.Reader) (*Store, error) {
	var doc document
	if err := json.NewDecoder(r).Decode(&doc); err != nil {
		return nil, fmt.Errorf("provenance: import: %w", err)
	}
	s := NewStore()
	for _, e := range doc.Entities {
		if err := s.AddEntity(e); err != nil {
			return nil, err
		}
	}
	for _, a := range doc.Activities {
		if err := s.AddActivity(a); err != nil {
			return nil, err
		}
	}
	return s, nil
}
