package tensor

import (
	"math"
	"math/rand"
	"testing"
)

// Lengths straddle every unroll boundary in the assembly: scalar tail
// only, one 8-wide group, the 32-wide body, and combinations.
var simdLens = []int{0, 1, 2, 3, 7, 8, 9, 15, 16, 17, 31, 32, 33, 63, 64, 100, 255, 256, 1000}

func TestAxpyMatchesGeneric(t *testing.T) {
	r := rand.New(rand.NewSource(31))
	for _, n := range simdLens {
		x := make([]float32, n)
		y := make([]float32, n)
		want := make([]float32, n)
		for i := range x {
			x[i] = float32(r.NormFloat64())
			y[i] = float32(r.NormFloat64())
			want[i] = y[i]
		}
		alpha := float32(r.NormFloat64())
		axpyGeneric(alpha, x, want)
		axpy(alpha, x, y)
		for i := range y {
			if !close32(y[i], want[i], 1e-6) {
				t.Fatalf("axpy n=%d: [%d] = %g, want %g", n, i, y[i], want[i])
			}
		}
	}
}

func TestDotMatchesGeneric(t *testing.T) {
	r := rand.New(rand.NewSource(32))
	for _, n := range simdLens {
		x := make([]float32, n)
		y := make([]float32, n)
		for i := range x {
			x[i] = float32(r.NormFloat64())
			y[i] = float32(r.NormFloat64())
		}
		want := dotGeneric(x, y)
		got := dot(x, y)
		if !close32(got, want, 1e-5) {
			t.Fatalf("dot n=%d: %g, want %g", n, got, want)
		}
	}
}

// smallInts fills a slice with integer-valued float32s in [-8, 8]. For
// such inputs every product and partial sum is exactly representable,
// so the fused (FMA) and unfused (mul + add) evaluation orders agree to
// the bit — which lets the tail paths of the assembly be pinned
// bit-for-bit against the scalar fallback, not just to a tolerance.
func smallInts(r *rand.Rand, n int) []float32 {
	s := make([]float32, n)
	for i := range s {
		s[i] = float32(r.Intn(17) - 8)
	}
	return s
}

// TestAxpyTailBitExact exercises every remainder path (n % 32, n % 8,
// n == 0) with integer-valued inputs and demands bit identity with the
// scalar fallback.
func TestAxpyTailBitExact(t *testing.T) {
	r := rand.New(rand.NewSource(33))
	for _, n := range simdLens {
		x := smallInts(r, n)
		y := smallInts(r, n)
		want := append([]float32(nil), y...)
		alpha := float32(r.Intn(9) - 4)
		axpyGeneric(alpha, x, want)
		axpy(alpha, x, y)
		for i := range y {
			if math.Float32bits(y[i]) != math.Float32bits(want[i]) {
				t.Fatalf("axpy n=%d: [%d] = %g (bits %#x), want %g (bits %#x)",
					n, i, y[i], math.Float32bits(y[i]), want[i], math.Float32bits(want[i]))
			}
		}
	}
}

// TestDotTailBitExact is the dot-product analogue: integer-valued
// inputs, every unroll boundary, bit-for-bit against dotGeneric.
func TestDotTailBitExact(t *testing.T) {
	r := rand.New(rand.NewSource(34))
	for _, n := range simdLens {
		x := smallInts(r, n)
		y := smallInts(r, n)
		want := dotGeneric(x, y)
		got := dot(x, y)
		if math.Float32bits(got) != math.Float32bits(want) {
			t.Fatalf("dot n=%d: %g (bits %#x), want %g (bits %#x)",
				n, got, math.Float32bits(got), want, math.Float32bits(want))
		}
	}
}

// TestAxpyNaNPropagation plants NaNs in the vector body and in the
// scalar tail and checks the SIMD path poisons exactly the elements the
// scalar fallback poisons, leaving every other element bit-identical.
func TestAxpyNaNPropagation(t *testing.T) {
	nan := float32(math.NaN())
	for _, n := range []int{1, 9, 33, 100} {
		r := rand.New(rand.NewSource(int64(35 + n)))
		x := smallInts(r, n)
		y := smallInts(r, n)
		x[0] = nan
		x[n-1] = nan // lands in the scalar tail when n % 8 != 0
		want := append([]float32(nil), y...)
		axpyGeneric(2, x, want)
		axpy(2, x, y)
		for i := range y {
			gotNaN := y[i] != y[i]
			wantNaN := want[i] != want[i]
			if gotNaN != wantNaN {
				t.Fatalf("axpy n=%d: [%d] NaN=%v, scalar fallback NaN=%v", n, i, gotNaN, wantNaN)
			}
			if !wantNaN && math.Float32bits(y[i]) != math.Float32bits(want[i]) {
				t.Fatalf("axpy n=%d: [%d] = %g, want %g", n, i, y[i], want[i])
			}
		}
	}
}

// TestDotNaNPropagation: a NaN anywhere — including the tail — must
// surface in the reduced result, as it does in the scalar fallback.
func TestDotNaNPropagation(t *testing.T) {
	nan := float32(math.NaN())
	for _, pos := range []int{0, 8, 16} {
		const n = 17 // 16-wide body plus a 1-element tail
		r := rand.New(rand.NewSource(int64(36 + pos)))
		x := smallInts(r, n)
		y := smallInts(r, n)
		x[pos] = nan
		want := dotGeneric(x, y)
		got := dot(x, y)
		if !(want != want) {
			t.Fatalf("oracle lost the NaN at %d", pos)
		}
		if !(got != got) {
			t.Fatalf("dot n=%d NaN at %d: got %g, want NaN", n, pos, got)
		}
	}
}
