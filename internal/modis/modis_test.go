package modis

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestProductNames(t *testing.T) {
	cases := []struct {
		p    Product
		name string
	}{
		{MOD021KM, "MOD021KM"},
		{MOD03, "MOD03"},
		{MOD06L2, "MOD06_L2"},
		{MYD021KM, "MYD021KM"},
		{MYD03, "MYD03"},
		{MYD06L2, "MYD06_L2"},
	}
	for _, c := range cases {
		if got := c.p.ShortName(); got != c.name {
			t.Errorf("ShortName(%v) = %q, want %q", c.p, got, c.name)
		}
		back, err := ParseProduct(c.name)
		if err != nil || back != c.p {
			t.Errorf("ParseProduct(%q) = %v, %v", c.name, back, err)
		}
	}
	if _, err := ParseProduct("MOD09GA"); err == nil {
		t.Error("unknown product accepted")
	}
}

func TestFileNameRoundTrip(t *testing.T) {
	g := GranuleID{Satellite: Terra, Year: 2022, DOY: 1, Index: 0}
	name := FileName(MOD021KM, g)
	if !strings.HasPrefix(name, "MOD021KM.A2022001.0000.061.") || !strings.HasSuffix(name, ".hdf") {
		t.Fatalf("unexpected file name %q", name)
	}
	p, back, err := ParseFileName(name)
	if err != nil {
		t.Fatal(err)
	}
	if p != MOD021KM || back != g {
		t.Fatalf("round trip: %v %v", p, back)
	}
}

func TestFileNameRoundTripProperty(t *testing.T) {
	prop := func(sat bool, doy uint16, idx uint16) bool {
		g := GranuleID{
			Satellite: Terra,
			Year:      2022,
			DOY:       int(doy)%365 + 1,
			Index:     int(idx) % GranulesPerDay,
		}
		if sat {
			g.Satellite = Aqua
		}
		for _, kind := range []Kind{L1B, Geo, Cloud} {
			p := Product{g.Satellite, kind}
			gotP, gotG, err := ParseFileName(FileName(p, g))
			if err != nil || gotP != p || gotG != g {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestParseFileNameRejectsMalformed(t *testing.T) {
	bad := []string{
		"",
		"MOD021KM.hdf",
		"MOD021KM.A2022001.0000.061.x.nc",
		"XYZ12345.A2022001.0000.061.2022003.hdf",
		"MOD021KM.B2022001.0000.061.2022003.hdf",
		"MOD021KM.A2022001.0003.061.2022003.hdf", // not a 5-min slot
		"MOD021KM.A2022400.0000.061.2022003.hdf", // bad DOY
	}
	for _, name := range bad {
		if _, _, err := ParseFileName(name); err == nil {
			t.Errorf("malformed name %q accepted", name)
		}
	}
}

func TestGranuleHHMM(t *testing.T) {
	cases := map[int]string{0: "0000", 1: "0005", 12: "0100", 287: "2355"}
	for idx, want := range cases {
		g := GranuleID{Index: idx}
		if got := g.HHMM(); got != want {
			t.Errorf("HHMM(%d) = %q, want %q", idx, got, want)
		}
	}
}

func TestGranuleSeedSharedAcrossProductsDistinctAcrossGranules(t *testing.T) {
	a := GranuleID{Terra, 2022, 1, 0}
	b := GranuleID{Terra, 2022, 1, 1}
	c := GranuleID{Aqua, 2022, 1, 0}
	if a.Seed() == b.Seed() || a.Seed() == c.Seed() {
		t.Fatalf("seed collisions: %d %d %d", a.Seed(), b.Seed(), c.Seed())
	}
}

func TestNominalBytesMatchPaperVolumes(t *testing.T) {
	// ~32 GB, 8.4 GB, 18 GB per day across 288 granules.
	const tol = 1e3 * GranulesPerDay // integer division truncation
	if v := NominalBytes(MOD021KM) * GranulesPerDay; math.Abs(float64(v)-32e9) > tol {
		t.Errorf("MOD02 daily volume = %d", v)
	}
	if v := NominalBytes(MOD03) * GranulesPerDay; math.Abs(float64(v)-8.4e9) > tol {
		t.Errorf("MOD03 daily volume = %d", v)
	}
	if v := NominalBytes(MOD06L2) * GranulesPerDay; math.Abs(float64(v)-18e9) > tol {
		t.Errorf("MOD06 daily volume = %d", v)
	}
}

func TestGeneratorDims(t *testing.T) {
	gen, err := NewGenerator(8)
	if err != nil {
		t.Fatal(err)
	}
	ny, nx := gen.Dims()
	if ny != 253 || nx != 169 {
		t.Fatalf("dims = %d×%d", ny, nx)
	}
	if gen.TilePixels() != 16 {
		t.Fatalf("tile pixels = %d", gen.TilePixels())
	}
	if _, err := NewGenerator(0); err == nil {
		t.Fatal("scale 0 accepted")
	}
}

func testGranule() GranuleID {
	// A granule over low latitudes with daytime lighting.
	return GranuleID{Satellite: Terra, Year: 2022, DOY: 1, Index: 150}
}

func TestGenerateGeo(t *testing.T) {
	gen, _ := NewGenerator(8)
	g := testGranule()
	f, err := gen.Generate(MOD03, g)
	if err != nil {
		t.Fatal(err)
	}
	ny, nx := gen.Dims()
	lat, err := f.Dataset("Latitude")
	if err != nil {
		t.Fatal(err)
	}
	if lat.Dims[0] != ny || lat.Dims[1] != nx {
		t.Fatalf("lat dims = %v", lat.Dims)
	}
	lats, _ := lat.Float32s()
	lonD, _ := f.Dataset("Longitude")
	lons, _ := lonD.Float32s()
	for i, v := range lats {
		if v < -90 || v > 90 {
			t.Fatalf("lat[%d] = %v out of range", i, v)
		}
	}
	for i, v := range lons {
		if v < -180 || v >= 180.0001 {
			t.Fatalf("lon[%d] = %v out of range", i, v)
		}
	}
	lsm, err := f.Dataset("LandSeaMask")
	if err != nil {
		t.Fatal(err)
	}
	vals, _ := lsm.Uint8s()
	for i, v := range vals {
		if v > 2 {
			t.Fatalf("land class %d at %d", v, i)
		}
	}
}

func TestGenerateL1BDayNight(t *testing.T) {
	gen, _ := NewGenerator(8)
	dayFound, nightFound := false, false
	for idx := 0; idx < GranulesPerDay && !(dayFound && nightFound); idx += 24 {
		g := GranuleID{Satellite: Terra, Year: 2022, DOY: 1, Index: idx}
		f, err := gen.Generate(MOD021KM, g)
		if err != nil {
			t.Fatal(err)
		}
		flag, _ := f.AttrString("DayNightFlag")
		ds, err := f.Dataset("EV_1KM_RefSB")
		if err != nil {
			t.Fatal(err)
		}
		vals, _ := ds.Uint16s()
		ny, nx := gen.Dims()
		n := ny * nx
		if flag == "Day" {
			dayFound = true
			// Reflective band 0 must carry data during the day.
			allFill := true
			for _, v := range vals[:n] {
				if v != 65535 {
					allFill = false
					break
				}
			}
			if allFill {
				t.Error("day granule has fill-only reflective band")
			}
		} else {
			nightFound = true
			for i, v := range vals[:n] {
				if v != 65535 {
					t.Fatalf("night granule has reflective data at %d = %d", i, v)
					break
				}
			}
			// Thermal band 30 must carry data at night.
			thermal := vals[30*n : 31*n]
			allFill := true
			for _, v := range thermal {
				if v != 65535 {
					allFill = false
					break
				}
			}
			if allFill {
				t.Error("night granule has fill-only thermal band")
			}
		}
	}
	if !dayFound || !nightFound {
		t.Fatalf("sampled day=%v night=%v; orbit model never crosses the terminator", dayFound, nightFound)
	}
}

func TestGenerateCloudConsistency(t *testing.T) {
	gen, _ := NewGenerator(8)
	g := testGranule()
	f, err := gen.Generate(MOD06L2, g)
	if err != nil {
		t.Fatal(err)
	}
	maskD, _ := f.Dataset("Cloud_Mask_1km")
	mask, _ := maskD.Uint8s()
	ctpD, _ := f.Dataset("Cloud_Top_Pressure")
	ctp, _ := ctpD.Float32s()
	phaseD, _ := f.Dataset("Cloud_Phase_Infrared")
	phase, _ := phaseD.Uint8s()
	cloudy := 0
	for i := range mask {
		switch mask[i] {
		case 0:
			if ctp[i] != 1013 {
				t.Fatalf("clear pixel %d has CTP %v", i, ctp[i])
			}
			if phase[i] != 0 {
				t.Fatalf("clear pixel %d has phase %d", i, phase[i])
			}
		case 1:
			cloudy++
			if ctp[i] >= 1013 || ctp[i] < 200 {
				t.Fatalf("cloudy pixel %d has CTP %v", i, ctp[i])
			}
			if phase[i] != 1 && phase[i] != 2 {
				t.Fatalf("cloudy pixel %d has phase %d", i, phase[i])
			}
			if ctp[i] < 450 && phase[i] != 2 {
				t.Fatalf("high cloud at %d not ice", i)
			}
		default:
			t.Fatalf("mask[%d] = %d", i, mask[i])
		}
	}
	frac := float64(cloudy) / float64(len(mask))
	if frac < 0.15 || frac > 0.9 {
		t.Fatalf("cloud fraction %.2f implausible", frac)
	}
}

func TestGenerateDeterministic(t *testing.T) {
	gen, _ := NewGenerator(16)
	g := testGranule()
	a, err := gen.GenerateBytes(MOD021KM, g)
	if err != nil {
		t.Fatal(err)
	}
	b, err := gen.GenerateBytes(MOD021KM, g)
	if err != nil {
		t.Fatal(err)
	}
	if string(a) != string(b) {
		t.Fatal("generation is not deterministic")
	}
}

func TestGenerateRejectsMismatchedSatellite(t *testing.T) {
	gen, _ := NewGenerator(8)
	g := testGranule() // Terra
	if _, err := gen.Generate(MYD021KM, g); err == nil {
		t.Fatal("Aqua product for Terra granule accepted")
	}
}

func TestGenerateRejectsInvalidGranule(t *testing.T) {
	gen, _ := NewGenerator(8)
	bad := GranuleID{Satellite: Terra, Year: 2022, DOY: 0, Index: 0}
	if _, err := gen.Generate(MOD021KM, bad); err == nil {
		t.Fatal("invalid granule accepted")
	}
}

func TestPlanetHasBothLandAndOcean(t *testing.T) {
	land, ocean := 0, 0
	for lat := -80.0; lat <= 80; lat += 4 {
		for lon := -180.0; lon < 180; lon += 4 {
			if isLand(lat, lon) {
				land++
			} else {
				ocean++
			}
		}
	}
	total := land + ocean
	landFrac := float64(land) / float64(total)
	if landFrac < 0.1 || landFrac > 0.6 {
		t.Fatalf("land fraction %.2f implausible (want mostly ocean, some land)", landFrac)
	}
}

func TestLandMaskConsistentAcrossGranules(t *testing.T) {
	// The same lat/lon must be classified identically by every granule:
	// pick a coordinate from one granule's grid and evaluate the planetary
	// field directly.
	gen, _ := NewGenerator(8)
	g := testGranule()
	f, err := gen.Generate(MOD03, g)
	if err != nil {
		t.Fatal(err)
	}
	latD, _ := f.Dataset("Latitude")
	lonD, _ := f.Dataset("Longitude")
	lsmD, _ := f.Dataset("LandSeaMask")
	lats, _ := latD.Float32s()
	lons, _ := lonD.Float32s()
	lsm, _ := lsmD.Uint8s()
	for i := 0; i < len(lats); i += 997 {
		want := isLand(float64(lats[i]), float64(lons[i]))
		got := lsm[i] != 0
		if got != want {
			t.Fatalf("pixel %d: mask=%v planet=%v", i, got, want)
		}
	}
}

func TestNoiseRangeAndDeterminism(t *testing.T) {
	n := newNoise2(42, 4)
	m := newNoise2(42, 4)
	for i := 0; i < 500; i++ {
		x := float64(i) * 0.37
		y := float64(i) * -0.21
		v := n.at(x, y)
		if v < 0 || v > 1 {
			t.Fatalf("noise out of range at (%v,%v): %v", x, y, v)
		}
		if v != m.at(x, y) {
			t.Fatal("noise not deterministic")
		}
	}
}

func TestNoiseSpatialCoherence(t *testing.T) {
	// Neighboring samples must be similar (it's a smooth field), distant
	// samples must decorrelate.
	n := newNoise2(7, 3)
	var nearDiff, farDiff float64
	count := 0
	for i := 0; i < 200; i++ {
		x := float64(i) * 1.618
		y := float64(i) * 0.707
		v := n.at(x, y)
		nearDiff += math.Abs(v - n.at(x+0.01, y))
		farDiff += math.Abs(v - n.at(x+137.5, y+81.1))
		count++
	}
	if nearDiff/float64(count) > 0.05 {
		t.Fatalf("field not smooth: mean near diff %v", nearDiff/float64(count))
	}
	if farDiff/float64(count) < 0.05 {
		t.Fatalf("field suspiciously flat: mean far diff %v", farDiff/float64(count))
	}
}
