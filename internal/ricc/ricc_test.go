package ricc

import (
	"math"
	"math/rand"
	"path/filepath"
	"reflect"
	"testing"

	"github.com/eoml/eoml/internal/tile"
)

// syntheticTiles fabricates tiles with structured per-band patterns so the
// autoencoder has something learnable.
func syntheticTiles(n, ts, nb int, seed int64) []*tile.Tile {
	r := rand.New(rand.NewSource(seed))
	tiles := make([]*tile.Tile, n)
	bands := make([]int, nb)
	for b := range bands {
		bands[b] = b
	}
	for i := range tiles {
		data := make([]float32, nb*ts*ts)
		cx, cy := r.Float64()*float64(ts), r.Float64()*float64(ts)
		amp := 0.5 + r.Float64()
		for b := 0; b < nb; b++ {
			for y := 0; y < ts; y++ {
				for x := 0; x < ts; x++ {
					dx, dy := float64(x)-cx, float64(y)-cy
					v := amp * math.Exp(-(dx*dx+dy*dy)/float64(ts*2)) * (1 + 0.2*float64(b))
					data[b*ts*ts+y*ts+x] = float32(v + 0.02*r.NormFloat64())
				}
			}
		}
		tiles[i] = &tile.Tile{
			Granule:  "TEST",
			Data:     data,
			Bands:    bands,
			TileSize: ts,
			Label:    -1,
		}
	}
	return tiles
}

func smallConfig() Config {
	return Config{
		TileSize:  8,
		Channels:  3,
		LatentDim: 8,
		Beta:      0.5,
		LR:        2e-3,
		Epochs:    6,
		BatchSize: 16,
		Rotations: 3,
		Seed:      7,
	}
}

func TestConfigValidation(t *testing.T) {
	bad := []Config{
		{TileSize: 7, Channels: 1, LatentDim: 1, BatchSize: 1},
		{TileSize: 0, Channels: 1, LatentDim: 1, BatchSize: 1},
		{TileSize: 8, Channels: 0, LatentDim: 1, BatchSize: 1},
		{TileSize: 8, Channels: 1, LatentDim: 1, BatchSize: 1, Rotations: 4},
	}
	for i, cfg := range bad {
		if _, err := NewModel(cfg); err == nil {
			t.Errorf("config %d accepted: %+v", i, cfg)
		}
	}
	if _, err := NewModel(DefaultConfig()); err != nil {
		t.Fatal(err)
	}
}

func TestTrainingReducesReconstructionLoss(t *testing.T) {
	cfg := smallConfig()
	m, err := NewModel(cfg)
	if err != nil {
		t.Fatal(err)
	}
	tiles := syntheticTiles(64, cfg.TileSize, cfg.Channels, 1)
	hist, err := m.Train(tiles)
	if err != nil {
		t.Fatal(err)
	}
	if len(hist) != cfg.Epochs {
		t.Fatalf("history length %d", len(hist))
	}
	first, last := hist[0].Reconstruction, hist[len(hist)-1].Reconstruction
	if !(last < first*0.8) {
		t.Fatalf("reconstruction did not improve: %v -> %v", first, last)
	}
}

func TestRotationPenaltyImprovesInvariance(t *testing.T) {
	// Train twin models from the same seed, one with Beta=0 — the design
	// choice the paper's RICC hinges on. The invariant model must embed
	// rotated tiles closer to the canonical embedding.
	cfgInv := smallConfig()
	cfgPlain := cfgInv
	cfgPlain.Beta = 0

	tiles := syntheticTiles(64, cfgInv.TileSize, cfgInv.Channels, 2)
	eval := syntheticTiles(16, cfgInv.TileSize, cfgInv.Channels, 3)

	mInv, err := NewModel(cfgInv)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := mInv.Train(tiles); err != nil {
		t.Fatal(err)
	}
	mPlain, err := NewModel(cfgPlain)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := mPlain.Train(tiles); err != nil {
		t.Fatal(err)
	}

	errInv, err := mInv.InvarianceError(eval)
	if err != nil {
		t.Fatal(err)
	}
	errPlain, err := mPlain.InvarianceError(eval)
	if err != nil {
		t.Fatal(err)
	}
	if !(errInv < errPlain*0.8) {
		t.Fatalf("rotation penalty did not help: with=%.4f without=%.4f", errInv, errPlain)
	}
}

func TestEncodeShapeAndDeterminism(t *testing.T) {
	cfg := smallConfig()
	cfg.Epochs = 2
	m, err := NewModel(cfg)
	if err != nil {
		t.Fatal(err)
	}
	tiles := syntheticTiles(40, cfg.TileSize, cfg.Channels, 4)
	if _, err := m.Train(tiles); err != nil {
		t.Fatal(err)
	}
	z1, err := m.Encode(tiles)
	if err != nil {
		t.Fatal(err)
	}
	z2, err := m.Encode(tiles)
	if err != nil {
		t.Fatal(err)
	}
	if len(z1) != len(tiles) || len(z1[0]) != cfg.LatentDim {
		t.Fatalf("embedding shape %d×%d", len(z1), len(z1[0]))
	}
	if !reflect.DeepEqual(z1, z2) {
		t.Fatal("encoding is not deterministic")
	}
}

func TestEncodeRequiresTraining(t *testing.T) {
	m, err := NewModel(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Encode(syntheticTiles(2, 8, 3, 5)); err == nil {
		t.Fatal("untrained encode accepted")
	}
	if _, err := m.InvarianceError(syntheticTiles(2, 8, 3, 5)); err == nil {
		t.Fatal("untrained invariance accepted")
	}
}

func TestSaveLoadModelRoundTrip(t *testing.T) {
	cfg := smallConfig()
	cfg.Epochs = 2
	m, err := NewModel(cfg)
	if err != nil {
		t.Fatal(err)
	}
	tiles := syntheticTiles(32, cfg.TileSize, cfg.Channels, 6)
	if _, err := m.Train(tiles); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "model.hdf")
	if err := m.Save(path); err != nil {
		t.Fatal(err)
	}
	m2, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if m2.Cfg.TileSize != cfg.TileSize || m2.Cfg.LatentDim != cfg.LatentDim {
		t.Fatalf("config lost: %+v", m2.Cfg)
	}
	z1, err := m.Encode(tiles[:8])
	if err != nil {
		t.Fatal(err)
	}
	z2, err := m2.Encode(tiles[:8])
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(z1, z2) {
		t.Fatal("loaded model encodes differently")
	}
}

func TestSaveUntrainedModelRejected(t *testing.T) {
	m, err := NewModel(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Save(filepath.Join(t.TempDir(), "m.hdf")); err == nil {
		t.Fatal("untrained save accepted")
	}
}

func TestCodebookRoundTripAndAssign(t *testing.T) {
	// Latents in three obvious groups.
	var latents [][]float32
	for g := 0; g < 3; g++ {
		for i := 0; i < 10; i++ {
			latents = append(latents, []float32{float32(g) * 10, float32(g)*10 + float32(i)*0.01})
		}
	}
	cb, res, err := BuildCodebook(latents, 3)
	if err != nil {
		t.Fatal(err)
	}
	if res.K() != 3 || len(cb.Centroids) != 3 {
		t.Fatalf("K = %d", res.K())
	}
	labels, err := cb.Assign(latents)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(labels, res.Labels) {
		t.Fatal("assignment disagrees with clustering")
	}
	path := filepath.Join(t.TempDir(), "codebook.hdf")
	if err := cb.Save(path); err != nil {
		t.Fatal(err)
	}
	cb2, err := LoadCodebook(path)
	if err != nil {
		t.Fatal(err)
	}
	labels2, err := cb2.Assign(latents)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(labels, labels2) {
		t.Fatal("loaded codebook assigns differently")
	}
}

func TestLoadRejectsWrongKind(t *testing.T) {
	dir := t.TempDir()
	cb := &Codebook{Centroids: [][]float32{{1, 2}}}
	path := filepath.Join(dir, "cb.hdf")
	if err := cb.Save(path); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(path); err == nil {
		t.Fatal("codebook loaded as model")
	}
}

func TestNormalizerMapsToUnitRange(t *testing.T) {
	tiles := syntheticTiles(16, 8, 3, 7)
	norm, err := FitNormalizer(tiles)
	if err != nil {
		t.Fatal(err)
	}
	x, err := TilesToTensor(tiles, norm)
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range x.Data {
		if v < 0 || v > 1 {
			t.Fatalf("normalized value %v at %d", v, i)
		}
	}
}

func TestFitNormalizerDegenerateBand(t *testing.T) {
	ts := 4
	data := make([]float32, 2*ts*ts) // all zeros: degenerate range
	tl := &tile.Tile{Data: data, Bands: []int{0, 1}, TileSize: ts}
	norm, err := FitNormalizer([]*tile.Tile{tl})
	if err != nil {
		t.Fatal(err)
	}
	x, err := TilesToTensor([]*tile.Tile{tl}, norm)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range x.Data {
		if math.IsNaN(float64(v)) || math.IsInf(float64(v), 0) {
			t.Fatal("degenerate band produced NaN/Inf")
		}
	}
}
