// Package experiments regenerates every table and figure of the paper's
// evaluation (§IV): download-speed curves (Fig. 3), strong and weak
// scaling of preprocessing (Fig. 4, Fig. 5, Table I), the dynamic
// worker-allocation timeline (Fig. 6), the latency breakdown (Fig. 7),
// and the headline 12,000-tiles-in-44-seconds run.
//
// Experiments run on the discrete-event simulator calibrated in
// internal/cluster, so a 10-node, 128-worker campaign completes in
// milliseconds of wall time while reporting virtual-time numbers whose
// *shape* matches the paper's (absolute numbers are calibrated, not
// measured on Defiant — see EXPERIMENTS.md).
package experiments

import (
	"fmt"
	"math"
	"sort"

	"github.com/eoml/eoml/internal/modis"
	"github.com/eoml/eoml/internal/sim"
)

// DownloadModel calibrates the Fig. 3 transfer behaviour: LAADS serves
// each HTTPS connection at up to PerConnMBps, the site uplink tops out at
// AggregateMBps, and every file pays a fixed request overhead. With these
// defaults 3 workers sustain ≈12 MB/s and 6 workers ≈15 MB/s — the
// ≈3 MB/s gain the paper reports — and single-file downloads see no gain
// at all (only one connection can be active).
type DownloadModel struct {
	PerConnMBps    float64
	AggregateMBps  float64
	PerFileLatency float64 // seconds of setup per file
	JitterSigma    float64 // log-normal sigma on per-connection speed
}

// DefaultDownloadModel returns the calibrated Fig. 3 parameters.
func DefaultDownloadModel() DownloadModel {
	return DownloadModel{
		PerConnMBps:    4.2,
		AggregateMBps:  15.5,
		PerFileLatency: 1.1,
		JitterSigma:    0.18,
	}
}

// simulateDownload plays out a worker pool pulling files from a queue.
// Each active connection receives min(perConn, aggregate/active) MB/s;
// rates are recomputed at every queue event. Returns the makespan in
// seconds.
func (m DownloadModel) simulateDownload(fileMBs []float64, workers int, rng *sim.RNG) float64 {
	if len(fileMBs) == 0 {
		return 0
	}
	if workers > len(fileMBs) {
		workers = len(fileMBs)
	}
	type conn struct {
		remaining float64 // MB left
		latency   float64 // setup time left, seconds
		speedMult float64
	}
	queue := append([]float64(nil), fileMBs...)
	active := make([]*conn, 0, workers)
	takeNext := func() *conn {
		if len(queue) == 0 {
			return nil
		}
		c := &conn{remaining: queue[0], latency: m.PerFileLatency, speedMult: rng.LogNormalFactor(m.JitterSigma)}
		queue = queue[1:]
		return c
	}
	for i := 0; i < workers; i++ {
		if c := takeNext(); c != nil {
			active = append(active, c)
		}
	}
	now := 0.0
	for len(active) > 0 {
		// Transfer rate per connection past its setup latency.
		transferring := 0
		for _, c := range active {
			if c.latency <= 0 {
				transferring++
			}
		}
		rate := func(c *conn) float64 {
			if c.latency > 0 || transferring == 0 {
				return 0
			}
			r := m.PerConnMBps * c.speedMult
			if share := m.AggregateMBps / float64(transferring); share < r {
				r = share
			}
			return r
		}
		// Next event: a setup completes or a transfer finishes.
		dt := math.Inf(1)
		for _, c := range active {
			if c.latency > 0 {
				if c.latency < dt {
					dt = c.latency
				}
			} else if r := rate(c); r > 0 {
				if d := c.remaining / r; d < dt {
					dt = d
				}
			}
		}
		if math.IsInf(dt, 1) {
			break // defensive: nothing can progress
		}
		now += dt
		next := active[:0]
		for _, c := range active {
			if c.latency > 0 {
				c.latency -= dt
				if c.latency < 1e-12 {
					c.latency = 0
				}
				next = append(next, c)
				continue
			}
			c.remaining -= rate(c) * dt
			if c.remaining > 1e-9 {
				next = append(next, c)
				continue
			}
			if n := takeNext(); n != nil {
				next = append(next, n)
			}
		}
		active = next
	}
	return now
}

// Fig3Point is one dot (mean ± std) of Fig. 3.
type Fig3Point struct {
	PerProductGB float64
	Files        int // per product
	Workers      int
	MeanMBps     float64
	StdMBps      float64
}

// Fig3 sweeps per-product volumes from 100 MB to 30 GB for 3 and 6
// download workers, iterating each point iterations times (3 in the
// paper).
func Fig3(model DownloadModel, iterations int, seed int64) []Fig3Point {
	if iterations <= 0 {
		iterations = 3
	}
	sizesGB := []float64{0.1, 0.5, 1, 2, 5, 10, 20, 30}
	products := []modis.Product{modis.MOD021KM, modis.MOD03, modis.MOD06L2}
	rng := sim.NewRNG(seed)
	var out []Fig3Point
	for _, workers := range []int{3, 6} {
		for _, gb := range sizesGB {
			var speeds []float64
			var files int
			for it := 0; it < iterations; it++ {
				// Build the file list: each product contributes files of
				// its nominal granule size until the per-product volume is
				// reached.
				var fileMBs []float64
				files = 0
				for _, p := range products {
					fileMB := float64(modis.NominalBytes(p)) / 1e6
					n := int(math.Ceil(gb * 1000 / fileMB))
					if n < 1 {
						n = 1
					}
					if files == 0 || n > files {
						files = n
					}
					for i := 0; i < n; i++ {
						fileMBs = append(fileMBs, fileMB)
					}
				}
				total := 0.0
				for _, f := range fileMBs {
					total += f
				}
				elapsed := model.simulateDownload(fileMBs, workers, rng.Fork())
				speeds = append(speeds, total/elapsed)
			}
			mean, std := meanStd(speeds)
			out = append(out, Fig3Point{
				PerProductGB: gb,
				Files:        files,
				Workers:      workers,
				MeanMBps:     mean,
				StdMBps:      std,
			})
		}
	}
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].Workers != out[j].Workers {
			return out[i].Workers < out[j].Workers
		}
		return out[i].PerProductGB < out[j].PerProductGB
	})
	return out
}

func meanStd(xs []float64) (mean, std float64) {
	if len(xs) == 0 {
		return 0, 0
	}
	for _, x := range xs {
		mean += x
	}
	mean /= float64(len(xs))
	for _, x := range xs {
		std += (x - mean) * (x - mean)
	}
	std = math.Sqrt(std / float64(len(xs)))
	return mean, std
}

// RenderFig3 prints the figure as a table.
func RenderFig3(points []Fig3Point) string {
	s := fmt.Sprintf("%-14s %-8s %-9s %-12s %-10s\n", "size/product", "files", "workers", "mean MB/s", "std")
	for _, p := range points {
		s += fmt.Sprintf("%-14.1f %-8d %-9d %-12.2f %-10.2f\n", p.PerProductGB, p.Files, p.Workers, p.MeanMBps, p.StdMBps)
	}
	return s
}
