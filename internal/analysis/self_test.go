package analysis

import (
	"strings"
	"testing"
)

// TestRepoIsClean runs the full suite over this module the same way
// `eomlvet ./...` (make lint) does and asserts zero diagnostics: every
// invariant the suite mechanizes holds across the tree, and every
// intentional exemption carries a rationale. A failure here prints the
// exact findings a contributor would see from make lint.
func TestRepoIsClean(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks the whole module (stdlib from source); skipped in -short")
	}
	root, err := FindModuleRoot(".")
	if err != nil {
		t.Fatal(err)
	}
	diags, err := RunModule(root, DefaultAnalyzers())
	if err != nil {
		t.Fatal(err)
	}
	if len(diags) > 0 {
		var b strings.Builder
		for _, d := range diags {
			b.WriteString(d.String())
			b.WriteByte('\n')
		}
		t.Fatalf("eomlvet found %d issue(s) in the repo:\n%s", len(diags), b.String())
	}
}

// TestRunModuleCoversAllPackages guards the loader's package discovery:
// the walk must find the module root package, cmd/, examples/, and every
// internal/ package, and must not descend into testdata.
func TestRunModuleCoversAllPackages(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks the whole module; skipped in -short")
	}
	root, err := FindModuleRoot(".")
	if err != nil {
		t.Fatal(err)
	}
	loader, err := NewLoader(root)
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := loader.LoadAll()
	if err != nil {
		t.Fatal(err)
	}
	paths := map[string]bool{}
	for _, p := range pkgs {
		paths[p.Path] = true
		if strings.Contains(p.Path, "testdata") {
			t.Errorf("loader descended into testdata: %s", p.Path)
		}
	}
	for _, must := range []string{
		"github.com/eoml/eoml",
		"github.com/eoml/eoml/cmd/eomlvet",
		"github.com/eoml/eoml/internal/analysis",
		"github.com/eoml/eoml/internal/stage",
		"github.com/eoml/eoml/internal/tensor",
		"github.com/eoml/eoml/examples/streaming",
	} {
		if !paths[must] {
			t.Errorf("loader missed package %s (got %d packages)", must, len(pkgs))
		}
	}
}
