//go:build amd64

#include "textflag.h"

// func cpuSupportsAVX2FMA() bool
//
// CPUID leaf 1 ECX: FMA (bit 12), OSXSAVE (bit 27), AVX (bit 28);
// XGETBV XCR0 bits 1|2 confirm the OS saves XMM/YMM state;
// CPUID leaf 7 EBX bit 5 is AVX2.
TEXT ·cpuSupportsAVX2FMA(SB), NOSPLIT, $0-1
	MOVL $1, AX
	XORL CX, CX
	CPUID
	MOVL CX, R8
	ANDL $0x18001000, R8
	CMPL R8, $0x18001000
	JNE  no
	XORL CX, CX
	XGETBV
	ANDL $6, AX
	CMPL AX, $6
	JNE  no
	MOVL $7, AX
	XORL CX, CX
	CPUID
	ANDL $0x20, BX
	JZ   no
	MOVB $1, ret+0(FP)
	RET
no:
	MOVB $0, ret+0(FP)
	RET

// func axpyAVX(alpha float32, x, y []float32)
//
// y[i] += alpha * x[i] for i < len(x). Caller guarantees
// len(y) >= len(x). 4x-unrolled 8-wide FMA body, then an 8-wide loop,
// then a scalar loop for the remainder.
TEXT ·axpyAVX(SB), NOSPLIT, $0-56
	VBROADCASTSS alpha+0(FP), Y0
	MOVQ x_base+8(FP), SI
	MOVQ x_len+16(FP), CX
	MOVQ y_base+32(FP), DI
	MOVQ CX, DX
	SHRQ $5, DX
	JZ   axpy_tail8
axpy_loop32:
	VMOVUPS (SI), Y1
	VMOVUPS 32(SI), Y2
	VMOVUPS 64(SI), Y3
	VMOVUPS 96(SI), Y4
	VFMADD213PS (DI), Y0, Y1
	VFMADD213PS 32(DI), Y0, Y2
	VFMADD213PS 64(DI), Y0, Y3
	VFMADD213PS 96(DI), Y0, Y4
	VMOVUPS Y1, (DI)
	VMOVUPS Y2, 32(DI)
	VMOVUPS Y3, 64(DI)
	VMOVUPS Y4, 96(DI)
	ADDQ $128, SI
	ADDQ $128, DI
	DECQ DX
	JNZ  axpy_loop32
axpy_tail8:
	MOVQ CX, DX
	ANDQ $31, DX
	MOVQ DX, R8
	SHRQ $3, R8
	JZ   axpy_tail1
axpy_loop8:
	VMOVUPS (SI), Y1
	VFMADD213PS (DI), Y0, Y1
	VMOVUPS Y1, (DI)
	ADDQ $32, SI
	ADDQ $32, DI
	DECQ R8
	JNZ  axpy_loop8
axpy_tail1:
	ANDQ $7, DX
	JZ   axpy_done
axpy_loop1:
	VMOVSS (SI), X1
	VFMADD213SS (DI), X0, X1
	VMOVSS X1, (DI)
	ADDQ $4, SI
	ADDQ $4, DI
	DECQ DX
	JNZ  axpy_loop1
axpy_done:
	VZEROUPPER
	RET

// func dotAVX(x, y []float32) float32
//
// Inner product over len(x) elements. Caller guarantees
// len(y) >= len(x). Two independent 8-wide FMA accumulators hide
// FMA latency; horizontal reduction, then a scalar remainder loop.
TEXT ·dotAVX(SB), NOSPLIT, $0-52
	MOVQ x_base+0(FP), SI
	MOVQ x_len+8(FP), CX
	MOVQ y_base+24(FP), DI
	VXORPS Y0, Y0, Y0
	VXORPS Y5, Y5, Y5
	MOVQ CX, DX
	SHRQ $4, DX
	JZ   dot_reduce
dot_loop16:
	VMOVUPS (SI), Y1
	VMOVUPS 32(SI), Y2
	VFMADD231PS (DI), Y1, Y0
	VFMADD231PS 32(DI), Y2, Y5
	ADDQ $64, SI
	ADDQ $64, DI
	DECQ DX
	JNZ  dot_loop16
dot_reduce:
	VADDPS Y5, Y0, Y0
	VEXTRACTF128 $1, Y0, X1
	VADDPS X1, X0, X0
	VHADDPS X0, X0, X0
	VHADDPS X0, X0, X0
	ANDQ $15, CX
	JZ   dot_done
dot_loop1:
	VMOVSS (SI), X1
	VMOVSS (DI), X2
	VFMADD231SS X2, X1, X0
	ADDQ $4, SI
	ADDQ $4, DI
	DECQ CX
	JNZ  dot_loop1
dot_done:
	VMOVSS X0, ret+48(FP)
	VZEROUPPER
	RET
