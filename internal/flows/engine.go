package flows

import (
	"context"
	"fmt"
	"sync"
	"time"
)

// ActionProvider executes one Action state. Parameters arrive with all
// "$.x" references already substituted.
type ActionProvider func(ctx context.Context, params map[string]any) (any, error)

// RunStatus is the lifecycle state of a flow run.
type RunStatus string

// Run states.
const (
	RunActive    RunStatus = "ACTIVE"
	RunSucceeded RunStatus = "SUCCEEDED"
	RunFailed    RunStatus = "FAILED"
)

// EventKind classifies log events.
type EventKind string

// Event kinds.
const (
	EventStateEntered EventKind = "state_entered"
	EventStateExited  EventKind = "state_exited"
	EventRunStarted   EventKind = "run_started"
	EventRunSucceeded EventKind = "run_succeeded"
	EventRunFailed    EventKind = "run_failed"
)

// Event is one entry of a run's event log.
type Event struct {
	Time   time.Time
	Kind   EventKind
	State  string
	Detail string
}

// Run is one asynchronous flow execution.
type Run struct {
	ID string

	mu     sync.Mutex
	status RunStatus
	events []Event
	output map[string]any
	err    error
	done   chan struct{}
}

// Status snapshots the run status.
func (r *Run) Status() RunStatus {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.status
}

// Events copies the event log.
func (r *Run) Events() []Event {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]Event(nil), r.events...)
}

// Wait blocks until the run completes and returns the final flow
// document.
func (r *Run) Wait(ctx context.Context) (map[string]any, error) {
	select {
	case <-r.done:
		r.mu.Lock()
		defer r.mu.Unlock()
		return r.output, r.err
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

func (r *Run) log(kind EventKind, state, detail string) {
	r.mu.Lock()
	r.events = append(r.events, Event{Time: time.Now(), Kind: kind, State: state, Detail: detail})
	r.mu.Unlock()
}

// EngineConfig tunes the engine.
type EngineConfig struct {
	// ActionOverhead is slept before each Action state, modeling the
	// flows-service dispatch latency (≈50 ms in the paper's Fig. 7).
	ActionOverhead time.Duration
	// MaxTransitions bounds a run, guarding against definition cycles.
	MaxTransitions int
}

// Engine executes flow definitions against registered action providers.
type Engine struct {
	cfg EngineConfig

	mu        sync.Mutex
	providers map[string]ActionProvider
	runs      map[string]*Run
	nextRun   int
}

// NewEngine builds an engine.
func NewEngine(cfg EngineConfig) *Engine {
	if cfg.MaxTransitions <= 0 {
		cfg.MaxTransitions = 10000
	}
	return &Engine{cfg: cfg, providers: map[string]ActionProvider{}, runs: map[string]*Run{}}
}

// RegisterProvider names an action provider.
func (e *Engine) RegisterProvider(name string, p ActionProvider) error {
	if name == "" || p == nil {
		return fmt.Errorf("flows: provider needs a name and a function")
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	if _, dup := e.providers[name]; dup {
		return fmt.Errorf("flows: provider %q already registered", name)
	}
	e.providers[name] = p
	return nil
}

// Start validates and launches a run asynchronously.
func (e *Engine) Start(ctx context.Context, def *Definition, input map[string]any) (*Run, error) {
	if err := def.Validate(); err != nil {
		return nil, err
	}
	// Check providers up front so a bad definition fails fast.
	e.mu.Lock()
	for name, st := range def.States {
		if st.Type == TypeAction {
			if _, ok := e.providers[st.ActionProvider]; !ok {
				e.mu.Unlock()
				return nil, fmt.Errorf("flows: state %q uses unregistered provider %q", name, st.ActionProvider)
			}
		}
	}
	e.nextRun++
	run := &Run{
		ID:     fmt.Sprintf("run-%06d", e.nextRun),
		status: RunActive,
		done:   make(chan struct{}),
	}
	e.runs[run.ID] = run
	e.mu.Unlock()

	doc := map[string]any{}
	for k, v := range input {
		doc[k] = v
	}
	go e.execute(ctx, def, run, doc)
	return run, nil
}

// Run looks up a run by ID.
func (e *Engine) Run(id string) (*Run, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	r, ok := e.runs[id]
	if !ok {
		return nil, fmt.Errorf("flows: no run %q", id)
	}
	return r, nil
}

func (e *Engine) execute(ctx context.Context, def *Definition, run *Run, doc map[string]any) {
	run.log(EventRunStarted, def.StartAt, "")
	finish := func(status RunStatus, err error) {
		run.mu.Lock()
		run.status = status
		run.output = doc
		run.err = err
		run.mu.Unlock()
		if status == RunSucceeded {
			run.log(EventRunSucceeded, "", "")
		} else {
			run.log(EventRunFailed, "", fmt.Sprint(err))
		}
		close(run.done)
	}

	current := def.StartAt
	for transitions := 0; ; transitions++ {
		if transitions >= e.cfg.MaxTransitions {
			finish(RunFailed, fmt.Errorf("flows: exceeded %d transitions (cycle?)", e.cfg.MaxTransitions))
			return
		}
		if ctx.Err() != nil {
			finish(RunFailed, ctx.Err())
			return
		}
		st := def.States[current]
		run.log(EventStateEntered, current, st.Type)

		var next string
		switch st.Type {
		case TypeAction:
			if e.cfg.ActionOverhead > 0 {
				//eomlvet:ignore sleeppoll modeled Step Functions action overhead, one bounded sleep per state; the loop checks ctx.Err() each iteration
				time.Sleep(e.cfg.ActionOverhead)
			}
			e.mu.Lock()
			provider := e.providers[st.ActionProvider]
			e.mu.Unlock()
			params, err := substituteParams(st.Parameters, doc)
			if err != nil {
				finish(RunFailed, fmt.Errorf("flows: state %q: %w", current, err))
				return
			}
			attempts := 1
			if st.Retry != nil {
				attempts = st.Retry.MaxAttempts
			}
			var result any
			for try := 1; try <= attempts; try++ {
				result, err = runProvider(ctx, provider, params)
				if err == nil {
					break
				}
				run.log(EventStateEntered, current, fmt.Sprintf("attempt %d failed: %v", try, err))
				if try < attempts && st.Retry != nil && st.Retry.IntervalSeconds > 0 {
					select {
					case <-time.After(time.Duration(st.Retry.IntervalSeconds * float64(time.Second))):
					case <-ctx.Done():
						finish(RunFailed, ctx.Err())
						return
					}
				}
			}
			if err != nil {
				if st.Catch != nil {
					if st.Catch.ErrorPath != "" {
						if perr := setPath(doc, st.Catch.ErrorPath, err.Error()); perr != nil {
							finish(RunFailed, fmt.Errorf("flows: state %q: %w", current, perr))
							return
						}
					}
					run.log(EventStateExited, current, "caught: "+err.Error())
					current = st.Catch.Next
					continue
				}
				finish(RunFailed, fmt.Errorf("flows: state %q: %w", current, err))
				return
			}
			if st.ResultPath != "" {
				if err := setPath(doc, st.ResultPath, result); err != nil {
					finish(RunFailed, fmt.Errorf("flows: state %q: %w", current, err))
					return
				}
			}
			next = st.Next
		case TypePass:
			if st.Result != nil && st.ResultPath != "" {
				if err := setPath(doc, st.ResultPath, st.Result); err != nil {
					finish(RunFailed, fmt.Errorf("flows: state %q: %w", current, err))
					return
				}
			}
			next = st.Next
		case TypeWait:
			select {
			case <-time.After(time.Duration(st.Seconds * float64(time.Second))):
			case <-ctx.Done():
				finish(RunFailed, ctx.Err())
				return
			}
			next = st.Next
		case TypeChoice:
			matched := false
			for _, rule := range st.Choices {
				ok, err := rule.evaluate(doc)
				if err != nil {
					finish(RunFailed, fmt.Errorf("flows: state %q: %w", current, err))
					return
				}
				if ok {
					next = rule.Next
					matched = true
					break
				}
			}
			if !matched {
				if st.Default == "" {
					finish(RunFailed, fmt.Errorf("flows: state %q: no choice matched and no default", current))
					return
				}
				next = st.Default
			}
		case TypeSucceed:
			run.log(EventStateExited, current, "")
			finish(RunSucceeded, nil)
			return
		case TypeFail:
			run.log(EventStateExited, current, st.Error)
			finish(RunFailed, fmt.Errorf("flows: %s: %s", st.Error, st.Cause))
			return
		}
		run.log(EventStateExited, current, "")
		if st.End || next == "" {
			finish(RunSucceeded, nil)
			return
		}
		current = next
	}
}

func runProvider(ctx context.Context, p ActionProvider, params map[string]any) (result any, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("flows: provider panicked: %v", r)
		}
	}()
	return p(ctx, params)
}

// MeanActionLatency computes the mean enter→exit latency of Action states
// over a run's event log — the Fig. 7 measurement.
func MeanActionLatency(events []Event, def *Definition) time.Duration {
	var total time.Duration
	count := 0
	enter := map[string]time.Time{}
	for _, ev := range events {
		switch ev.Kind {
		case EventStateEntered:
			enter[ev.State] = ev.Time
		case EventStateExited:
			if st, ok := def.States[ev.State]; ok && st.Type == TypeAction {
				if t0, ok := enter[ev.State]; ok {
					total += ev.Time.Sub(t0)
					count++
				}
			}
		}
	}
	if count == 0 {
		return 0
	}
	return total / time.Duration(count)
}
