package hdf

import (
	"bytes"
	"math"
	"math/rand"
	"os"
	"path/filepath"
	"reflect"
	"testing"
	"testing/quick"
)

func buildSample(t *testing.T) *File {
	t.Helper()
	f := NewFile()
	f.Attrs["product"] = "MOD021KM"
	f.Attrs["orbit"] = int64(88211)
	f.Attrs["scale"] = 0.015
	rad, err := NewFloat32("EV_1KM_RefSB", []int{2, 3, 4}, seq32(24))
	if err != nil {
		t.Fatal(err)
	}
	mask, err := NewUint8("CloudMask", []int{3, 4}, []uint8{0, 1, 2, 3, 0, 1, 2, 3, 0, 1, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	lat, err := NewInt16("Latitude", []int{4}, []int16{-32768, -1, 0, 32767})
	if err != nil {
		t.Fatal(err)
	}
	si, err := NewUint16("EV_SI", []int{2}, []uint16{0, 65535})
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range []*Dataset{rad, mask, lat, si} {
		if err := f.Add(d); err != nil {
			t.Fatal(err)
		}
	}
	return f
}

func seq32(n int) []float32 {
	out := make([]float32, n)
	for i := range out {
		out[i] = float32(i) * 1.5
	}
	return out
}

func TestRoundTrip(t *testing.T) {
	f := buildSample(t)
	var buf bytes.Buffer
	if err := Write(&buf, f); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got.Attrs, f.Attrs) {
		t.Fatalf("attrs: got %#v want %#v", got.Attrs, f.Attrs)
	}
	if len(got.Datasets()) != 4 {
		t.Fatalf("datasets: %d", len(got.Datasets()))
	}
	rad, err := got.Dataset("EV_1KM_RefSB")
	if err != nil {
		t.Fatal(err)
	}
	vals, err := rad.Float32s()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(vals, seq32(24)) {
		t.Fatalf("radiance values differ: %v", vals)
	}
	if !reflect.DeepEqual(rad.Dims, []int{2, 3, 4}) {
		t.Fatalf("dims = %v", rad.Dims)
	}
	lat, _ := got.Dataset("Latitude")
	lv, err := lat.Int16s()
	if err != nil {
		t.Fatal(err)
	}
	if lv[0] != -32768 || lv[3] != 32767 {
		t.Fatalf("int16 extremes lost: %v", lv)
	}
	si, _ := got.Dataset("EV_SI")
	sv, err := si.Uint16s()
	if err != nil {
		t.Fatal(err)
	}
	if sv[1] != 65535 {
		t.Fatalf("uint16 extreme lost: %v", sv)
	}
}

func TestCRCDetectsCorruption(t *testing.T) {
	f := buildSample(t)
	var buf bytes.Buffer
	if err := Write(&buf, f); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	for _, pos := range []int{8, len(data) / 2, len(data) - 5} {
		corrupt := append([]byte(nil), data...)
		corrupt[pos] ^= 0xFF
		if _, err := Decode(corrupt); err == nil {
			t.Errorf("corruption at byte %d not detected", pos)
		}
	}
}

func TestBadMagicRejected(t *testing.T) {
	if _, err := Decode([]byte("NOTHDF00xxxxxxxxxxxx")); err == nil {
		t.Fatal("bad magic accepted")
	}
}

func TestTruncationRejected(t *testing.T) {
	f := buildSample(t)
	var buf bytes.Buffer
	if err := Write(&buf, f); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	for n := 0; n < len(data); n += 7 {
		if _, err := Decode(data[:n]); err == nil {
			t.Fatalf("truncation to %d bytes accepted", n)
		}
	}
}

func TestDuplicateDatasetRejected(t *testing.T) {
	f := NewFile()
	d1, _ := NewUint8("x", []int{1}, []uint8{1})
	d2, _ := NewUint8("x", []int{1}, []uint8{2})
	if err := f.Add(d1); err != nil {
		t.Fatal(err)
	}
	if err := f.Add(d2); err == nil {
		t.Fatal("duplicate dataset accepted")
	}
}

func TestDimsMismatchRejected(t *testing.T) {
	if _, err := NewFloat32("x", []int{2, 2}, make([]float32, 3)); err == nil {
		t.Fatal("wrong value count accepted")
	}
	if _, err := NewFloat32("x", []int{0}, nil); err == nil {
		t.Fatal("zero dim accepted")
	}
	if _, err := NewFloat32("x", []int{-1}, nil); err == nil {
		t.Fatal("negative dim accepted")
	}
}

func TestWrongTypeAccessorErrors(t *testing.T) {
	d, _ := NewFloat32("x", []int{1}, []float32{1})
	if _, err := d.Uint8s(); err == nil {
		t.Error("Uint8s on float32 dataset succeeded")
	}
	if _, err := d.Int16s(); err == nil {
		t.Error("Int16s on float32 dataset succeeded")
	}
	if _, err := d.Uint16s(); err == nil {
		t.Error("Uint16s on float32 dataset succeeded")
	}
	u, _ := NewUint8("y", []int{1}, []uint8{1})
	if _, err := u.Float32s(); err == nil {
		t.Error("Float32s on uint8 dataset succeeded")
	}
}

func TestMissingDatasetErrorListsNames(t *testing.T) {
	f := buildSample(t)
	_, err := f.Dataset("nope")
	if err == nil {
		t.Fatal("missing dataset found")
	}
	if !bytes.Contains([]byte(err.Error()), []byte("EV_1KM_RefSB")) {
		t.Fatalf("error does not list available datasets: %v", err)
	}
}

func TestFileRoundTripOnDisk(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "MOD021KM.A2022001.0000.061.hdf")
	f := buildSample(t)
	if err := WriteFile(path, f); err != nil {
		t.Fatal(err)
	}
	got, err := ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Attrs["product"] != "MOD021KM" {
		t.Fatalf("attrs = %#v", got.Attrs)
	}
	// The temporary file must be gone after a successful write.
	if _, err := os.Stat(path + ".tmp"); !os.IsNotExist(err) {
		t.Fatalf("temporary file left behind: %v", err)
	}
}

func TestUnsupportedAttrTypeRejected(t *testing.T) {
	f := NewFile()
	f.Attrs["bad"] = []string{"not", "supported"}
	if err := Write(&bytes.Buffer{}, f); err == nil {
		t.Fatal("unsupported attr type accepted")
	}
}

// Property: arbitrary float32 payloads (including NaN bit patterns and
// infinities) survive a write/read cycle bit-for-bit.
func TestRoundTripFloat32Property(t *testing.T) {
	prop := func(seed int64, n uint8) bool {
		r := rand.New(rand.NewSource(seed))
		count := int(n)%64 + 1
		vals := make([]float32, count)
		for i := range vals {
			switch r.Intn(5) {
			case 0:
				vals[i] = float32(math.Inf(1))
			case 1:
				vals[i] = float32(math.Inf(-1))
			case 2:
				vals[i] = float32(math.NaN())
			default:
				vals[i] = float32(r.NormFloat64() * 1e6)
			}
		}
		f := NewFile()
		d, err := NewFloat32("v", []int{count}, vals)
		if err != nil {
			return false
		}
		if err := f.Add(d); err != nil {
			return false
		}
		var buf bytes.Buffer
		if err := Write(&buf, f); err != nil {
			return false
		}
		got, err := Decode(buf.Bytes())
		if err != nil {
			return false
		}
		ds, err := got.Dataset("v")
		if err != nil {
			return false
		}
		back, err := ds.Float32s()
		if err != nil {
			return false
		}
		for i := range vals {
			if math.Float32bits(vals[i]) != math.Float32bits(back[i]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: attribute maps of the three supported kinds round-trip.
func TestRoundTripAttrsProperty(t *testing.T) {
	prop := func(strs map[string]string, ints map[string]int64) bool {
		f := NewFile()
		for k, v := range strs {
			f.Attrs["s:"+k] = v
		}
		for k, v := range ints {
			f.Attrs["i:"+k] = v
		}
		var buf bytes.Buffer
		if err := Write(&buf, f); err != nil {
			return false
		}
		got, err := Decode(buf.Bytes())
		if err != nil {
			return false
		}
		return reflect.DeepEqual(got.Attrs, f.Attrs)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
