package aicca

import (
	"fmt"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"github.com/eoml/eoml/internal/tile"
	"github.com/eoml/eoml/internal/trace"
)

func trainBatchLabeler(t *testing.T) *Labeler {
	t.Helper()
	l, _, err := Train(makeTiles(48, 5), trainCfg(), 3)
	if err != nil {
		t.Fatal(err)
	}
	return l
}

// TestBatchLabelerMatchesUnbatched: labels assigned through the batcher
// must equal the ones the plain labeler assigns.
func TestBatchLabelerMatchesUnbatched(t *testing.T) {
	l := trainBatchLabeler(t)
	want := makeTiles(30, 7)
	if _, err := l.LabelTiles(want); err != nil {
		t.Fatal(err)
	}
	got := makeTiles(30, 7)
	b := NewBatchLabeler(l, BatchConfig{MaxTiles: 16, MaxDelay: 5 * time.Millisecond})
	defer b.Close()
	if err := b.LabelTiles(got); err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if got[i].Label != want[i].Label {
			t.Fatalf("tile %d: batched label %d, unbatched %d", i, got[i].Label, want[i].Label)
		}
	}
}

// TestBatchLabelerCoalesces submits many small files from concurrent
// workers and checks (a) every tile is labeled correctly and (b) the
// timeline shows fewer encode flushes than files — the whole point of
// batching.
func TestBatchLabelerCoalesces(t *testing.T) {
	l := trainBatchLabeler(t)
	tl := trace.NewTimeline()
	b := NewBatchLabeler(l, BatchConfig{
		MaxTiles: 64,
		MaxDelay: 50 * time.Millisecond,
		Timeline: tl,
		Epoch:    time.Now(),
	})
	defer b.Close()

	const files, perFile = 12, 8
	dir := t.TempDir()
	paths := make([]string, files)
	for i := range paths {
		paths[i] = filepath.Join(dir, fmt.Sprintf("tiles%02d.nc", i))
		if err := tile.WriteNetCDF(paths[i], makeTiles(perFile, int64(20+i))); err != nil {
			t.Fatal(err)
		}
	}

	var wg sync.WaitGroup
	errs := make(chan error, files)
	counts := make(chan int, files)
	for _, p := range paths {
		wg.Add(1)
		go func(p string) {
			defer wg.Done()
			n, err := b.LabelFile(p)
			if err != nil {
				errs <- err
				return
			}
			counts <- n
		}(p)
	}
	wg.Wait()
	close(errs)
	close(counts)
	for err := range errs {
		t.Fatal(err)
	}
	total := 0
	for n := range counts {
		total += n
	}
	if total != files*perFile {
		t.Fatalf("labeled %d tiles, want %d", total, files*perFile)
	}
	for _, p := range paths {
		back, err := tile.ReadNetCDF(p)
		if err != nil {
			t.Fatal(err)
		}
		for i, tt := range back {
			if tt.Label < 0 {
				t.Fatalf("%s tile %d unlabeled", p, i)
			}
		}
	}
	// Each flush records a start sample (count>0) and an end sample.
	flushes := 0
	for _, s := range tl.Samples("inference.batch") {
		if s.Count > 0 {
			flushes++
		}
	}
	if flushes == 0 {
		t.Fatal("no batch spans recorded")
	}
	if flushes >= files {
		t.Fatalf("%d flushes for %d files: nothing was coalesced", flushes, files)
	}
}

// TestBatchLabelerDeadlineFlush: a lone partial batch must flush after
// MaxDelay rather than waiting for MaxTiles.
func TestBatchLabelerDeadlineFlush(t *testing.T) {
	l := trainBatchLabeler(t)
	b := NewBatchLabeler(l, BatchConfig{MaxTiles: 1 << 20, MaxDelay: 10 * time.Millisecond})
	defer b.Close()
	tiles := makeTiles(4, 31)
	start := time.Now()
	if err := b.LabelTiles(tiles); err != nil {
		t.Fatal(err)
	}
	if e := time.Since(start); e > 5*time.Second {
		t.Fatalf("deadline flush took %v", e)
	}
	for i, tt := range tiles {
		if tt.Label < 0 {
			t.Fatalf("tile %d unlabeled", i)
		}
	}
}

// TestBatchLabelerClose: Close flushes pending work, is idempotent, and
// later submissions fail cleanly instead of panicking.
func TestBatchLabelerClose(t *testing.T) {
	l := trainBatchLabeler(t)
	b := NewBatchLabeler(l, BatchConfig{MaxTiles: 1 << 20, MaxDelay: time.Hour})
	tiles := makeTiles(4, 32)
	done := make(chan error, 1)
	go func() { done <- b.LabelTiles(tiles) }()
	time.Sleep(20 * time.Millisecond) // let the job reach the flusher
	b.Close()
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	for i, tt := range tiles {
		if tt.Label < 0 {
			t.Fatalf("tile %d not labeled by the closing flush", i)
		}
	}
	b.Close() // idempotent
	if err := b.LabelTiles(makeTiles(2, 33)); err == nil {
		t.Fatal("LabelTiles after Close did not fail")
	}
}
