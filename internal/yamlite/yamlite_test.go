package yamlite

import (
	"math"
	"reflect"
	"strings"
	"testing"
	"testing/quick"
)

func TestParseFlatMapping(t *testing.T) {
	doc := `
name: eoml
workers: 8
rate: 2.5
enabled: true
missing: null
`
	got, err := ParseMap([]byte(doc))
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]any{
		"name":    "eoml",
		"workers": int64(8),
		"rate":    2.5,
		"enabled": true,
		"missing": nil,
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("got %#v, want %#v", got, want)
	}
}

func TestParseNestedMapping(t *testing.T) {
	doc := `
endpoint:
  host: defiant.olcf.ornl.gov
  port: 8443
  auth:
    token: abc123
products:
  - MOD021KM
  - MOD03
  - MOD06_L2
`
	got, err := ParseMap([]byte(doc))
	if err != nil {
		t.Fatal(err)
	}
	ep := got["endpoint"].(map[string]any)
	if ep["host"] != "defiant.olcf.ornl.gov" || ep["port"] != int64(8443) {
		t.Fatalf("endpoint = %#v", ep)
	}
	if ep["auth"].(map[string]any)["token"] != "abc123" {
		t.Fatalf("auth = %#v", ep["auth"])
	}
	prods := got["products"].([]any)
	if len(prods) != 3 || prods[2] != "MOD06_L2" {
		t.Fatalf("products = %#v", prods)
	}
}

func TestParseSequenceOfMappings(t *testing.T) {
	doc := `
stages:
  - name: download
    workers: 3
  - name: preprocess
    workers: 32
`
	got, err := ParseMap([]byte(doc))
	if err != nil {
		t.Fatal(err)
	}
	stages := got["stages"].([]any)
	if len(stages) != 2 {
		t.Fatalf("stages = %#v", stages)
	}
	s1 := stages[1].(map[string]any)
	if s1["name"] != "preprocess" || s1["workers"] != int64(32) {
		t.Fatalf("stage[1] = %#v", s1)
	}
}

func TestParseComments(t *testing.T) {
	doc := `
# leading comment
key: value # trailing comment
url: "http://x#y" # the fragment is not a comment
anchor: a#b
`
	got, err := ParseMap([]byte(doc))
	if err != nil {
		t.Fatal(err)
	}
	if got["key"] != "value" {
		t.Fatalf("key = %#v", got["key"])
	}
	if got["url"] != "http://x#y" {
		t.Fatalf("url = %#v", got["url"])
	}
	if got["anchor"] != "a#b" {
		t.Fatalf("anchor = %#v (mid-token # must not start a comment)", got["anchor"])
	}
}

func TestParseQuotedStrings(t *testing.T) {
	doc := `
dq: "line\nbreak and \"quote\""
sq: 'it''s plain'
plain: hello world
time: 12:30
`
	got, err := ParseMap([]byte(doc))
	if err != nil {
		t.Fatal(err)
	}
	if got["dq"] != "line\nbreak and \"quote\"" {
		t.Fatalf("dq = %q", got["dq"])
	}
	if got["sq"] != "it's plain" {
		t.Fatalf("sq = %q", got["sq"])
	}
	if got["plain"] != "hello world" {
		t.Fatalf("plain = %q", got["plain"])
	}
	if got["time"] != "12:30" {
		t.Fatalf("time = %q (colon without space is not a key separator)", got["time"])
	}
}

func TestParseFlowCollections(t *testing.T) {
	doc := `
bands: [1, 2, 3, 6, 7, 20]
empty: []
limits: {cpu: 64, mem: 256.0}
nested: [[1, 2], [3]]
strs: ["a, b", 'c']
`
	got, err := ParseMap([]byte(doc))
	if err != nil {
		t.Fatal(err)
	}
	bands := got["bands"].([]any)
	if len(bands) != 6 || bands[5] != int64(20) {
		t.Fatalf("bands = %#v", bands)
	}
	if len(got["empty"].([]any)) != 0 {
		t.Fatalf("empty = %#v", got["empty"])
	}
	limits := got["limits"].(map[string]any)
	if limits["cpu"] != int64(64) || limits["mem"] != 256.0 {
		t.Fatalf("limits = %#v", limits)
	}
	nested := got["nested"].([]any)
	if !reflect.DeepEqual(nested[0], []any{int64(1), int64(2)}) {
		t.Fatalf("nested = %#v", nested)
	}
	strs := got["strs"].([]any)
	if strs[0] != "a, b" || strs[1] != "c" {
		t.Fatalf("strs = %#v", strs)
	}
}

func TestParseErrors(t *testing.T) {
	cases := map[string]string{
		"tab indent":        "a:\n\tb: 1",
		"duplicate key":     "a: 1\na: 2",
		"anchor":            "a: &x 1",
		"alias":             "a: *x",
		"block scalar":      "a: |",
		"unterminated dq":   `a: "oops`,
		"unterminated sq":   "a: 'oops",
		"unterminated flow": "a: [1, 2",
		"bad escape":        `a: "\q"`,
		"seq in map":        "a: 1\n- b",
	}
	for name, doc := range cases {
		if _, err := Parse([]byte(doc)); err == nil {
			t.Errorf("%s: no error for %q", name, doc)
		}
	}
}

func TestParseEmptyDocument(t *testing.T) {
	for _, doc := range []string{"", "\n\n", "# only comments\n"} {
		v, err := Parse([]byte(doc))
		if err != nil || v != nil {
			t.Fatalf("Parse(%q) = %v, %v", doc, v, err)
		}
		m, err := ParseMap([]byte(doc))
		if err != nil || len(m) != 0 {
			t.Fatalf("ParseMap(%q) = %v, %v", doc, m, err)
		}
	}
}

func TestParseRootSequence(t *testing.T) {
	v, err := Parse([]byte("- 1\n- 2\n"))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(v, []any{int64(1), int64(2)}) {
		t.Fatalf("got %#v", v)
	}
}

func TestParseNullNestedValue(t *testing.T) {
	got, err := ParseMap([]byte("a:\nb: 1\n"))
	if err != nil {
		t.Fatal(err)
	}
	if got["a"] != nil || got["b"] != int64(1) {
		t.Fatalf("got %#v", got)
	}
}

func TestMarshalRoundTripsHandwrittenDoc(t *testing.T) {
	doc := `
workflow:
  name: eo-ml
  stages:
    - name: download
      workers: 3
      products: [MOD021KM, MOD03]
    - name: preprocess
      workers: 32
  paths:
    scratch: /lustre/orion/scratch
    "weird key": "needs: quoting"
  ratio: 0.5
  big: 123456789
  flag: false
  nothing: null
`
	v1, err := Parse([]byte(doc))
	if err != nil {
		t.Fatal(err)
	}
	v2, err := Parse(Marshal(v1))
	if err != nil {
		t.Fatalf("reparse: %v\n%s", err, Marshal(v1))
	}
	if !reflect.DeepEqual(v1, v2) {
		t.Fatalf("round trip mismatch:\n%#v\n%#v", v1, v2)
	}
}

// genValue builds a random value tree using only yamlite-representable
// types.
func genValue(r *quickRand, depth int) any {
	if depth <= 0 {
		return genScalar(r)
	}
	switch r.intn(4) {
	case 0:
		n := r.intn(4)
		m := map[string]any{}
		for i := 0; i < n; i++ {
			m[genKey(r, i)] = genValue(r, depth-1)
		}
		return m
	case 1:
		n := r.intn(4)
		s := make([]any, 0, n)
		for i := 0; i < n; i++ {
			s = append(s, genValue(r, depth-1))
		}
		return s
	default:
		return genScalar(r)
	}
}

func genScalar(r *quickRand) any {
	switch r.intn(6) {
	case 0:
		return nil
	case 1:
		return r.intn(2) == 0
	case 2:
		return int64(r.intn(100000) - 50000)
	case 3:
		f := float64(r.intn(1000)) / 8.0
		if math.Trunc(f) == f {
			f += 0.5
		}
		return f
	case 4:
		return strings.Repeat("x", r.intn(5)) + "plain"
	default:
		weird := []string{"needs: quote", "# hash", "true", "123", "", "tab\tchar", "new\nline", "- dash", "a'b\"c"}
		return weird[r.intn(len(weird))]
	}
}

func genKey(r *quickRand, i int) string {
	keys := []string{"alpha", "beta", "gamma", "delta", "weird key", "a:b", "#k", "k" + strings.Repeat("x", i)}
	return keys[(r.intn(len(keys))+i)%len(keys)]
}

type quickRand struct{ state uint64 }

func (r *quickRand) intn(n int) int {
	r.state = r.state*6364136223846793005 + 1442695040888963407
	return int((r.state >> 33) % uint64(n))
}

// Property: Marshal(Parse) is the identity on randomly generated value
// trees of supported types.
func TestMarshalParsePropertyRoundTrip(t *testing.T) {
	prop := func(seed uint64) bool {
		r := &quickRand{state: seed}
		v := map[string]any{"root": genValue(r, 3)}
		data := Marshal(v)
		got, err := Parse(data)
		if err != nil {
			t.Logf("parse error: %v\ndoc:\n%s", err, data)
			return false
		}
		if !reflect.DeepEqual(got, v) {
			t.Logf("mismatch:\n doc:\n%s\n got: %#v\nwant: %#v", data, got, v)
			return false
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
