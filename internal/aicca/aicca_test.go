package aicca

import (
	"math"
	"math/rand"
	"path/filepath"
	"testing"

	"github.com/eoml/eoml/internal/ricc"
	"github.com/eoml/eoml/internal/tile"
)

// makeTiles fabricates tiles from two visually distinct populations
// (bright compact blobs vs dim broad gradients) with correlated physical
// properties, so clustering has structure to find.
func makeTiles(n int, seed int64) []*tile.Tile {
	r := rand.New(rand.NewSource(seed))
	const ts, nb = 8, 3
	bands := []int{0, 1, 2}
	tiles := make([]*tile.Tile, n)
	for i := range tiles {
		kind := i % 2
		data := make([]float32, nb*ts*ts)
		for b := 0; b < nb; b++ {
			for y := 0; y < ts; y++ {
				for x := 0; x < ts; x++ {
					var v float64
					if kind == 0 {
						dx, dy := float64(x)-4, float64(y)-4
						v = 1.5 * math.Exp(-(dx*dx+dy*dy)/6)
					} else {
						v = 0.2 + 0.05*float64(x+y)/float64(2*ts)
					}
					data[b*ts*ts+y*ts+x] = float32(v + 0.02*r.NormFloat64())
				}
			}
		}
		t := &tile.Tile{
			Granule:   "TEST",
			Row:       i,
			Data:      data,
			Bands:     bands,
			TileSize:  ts,
			Label:     -1,
			CloudFrac: 0.5,
		}
		if kind == 0 {
			t.MeanCTP, t.MeanCOT, t.IcePhaseFrac = 400, 30, 0.8
		} else {
			t.MeanCTP, t.MeanCOT, t.IcePhaseFrac = 900, 5, 0.0
		}
		tiles[i] = t
	}
	return tiles
}

func trainCfg() ricc.Config {
	return ricc.Config{
		TileSize:  8,
		Channels:  3,
		LatentDim: 8,
		Beta:      0.3,
		LR:        2e-3,
		Epochs:    4,
		BatchSize: 16,
		Rotations: 1,
		Seed:      11,
	}
}

func TestTrainAndLabelTiles(t *testing.T) {
	tiles := makeTiles(64, 1)
	labeler, res, err := Train(tiles, trainCfg(), 4)
	if err != nil {
		t.Fatal(err)
	}
	if res.K() != 4 {
		t.Fatalf("K = %d", res.K())
	}
	fresh := makeTiles(20, 2)
	labels, err := labeler.LabelTiles(fresh)
	if err != nil {
		t.Fatal(err)
	}
	if len(labels) != 20 {
		t.Fatalf("labels = %d", len(labels))
	}
	for i, l := range labels {
		if l < 0 || int(l) >= 4 {
			t.Fatalf("label[%d] = %d out of range", i, l)
		}
		if fresh[i].Label != l {
			t.Fatalf("tile %d label not set in place", i)
		}
	}
}

func TestLabelSeparatesPopulations(t *testing.T) {
	// The two synthetic populations must not be fused into a single class
	// mapping: tiles of different kinds should mostly get different labels.
	tiles := makeTiles(64, 3)
	labeler, _, err := Train(tiles, trainCfg(), 2)
	if err != nil {
		t.Fatal(err)
	}
	fresh := makeTiles(40, 4)
	labels, err := labeler.LabelTiles(fresh)
	if err != nil {
		t.Fatal(err)
	}
	agree := 0
	for i := 0; i < len(fresh); i += 2 {
		if i+1 < len(fresh) && labels[i] != labels[i+1] {
			agree++
		}
	}
	if agree < len(fresh)/2*7/10 {
		t.Fatalf("populations not separated: %d/%d pairs got distinct labels", agree, len(fresh)/2)
	}
}

func TestLabelFileEndToEnd(t *testing.T) {
	tiles := makeTiles(48, 5)
	labeler, _, err := Train(tiles, trainCfg(), 3)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "tiles.nc")
	fresh := makeTiles(12, 6)
	if err := tile.WriteNetCDF(path, fresh); err != nil {
		t.Fatal(err)
	}
	n, err := labeler.LabelFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if n != 12 {
		t.Fatalf("labeled %d tiles", n)
	}
	back, err := tile.ReadNetCDF(path)
	if err != nil {
		t.Fatal(err)
	}
	for i, tl := range back {
		if tl.Label < 0 || int(tl.Label) >= 3 {
			t.Fatalf("file tile %d label %d", i, tl.Label)
		}
	}
}

func TestNewLabelerValidation(t *testing.T) {
	m, err := ricc.NewModel(trainCfg())
	if err != nil {
		t.Fatal(err)
	}
	cb := &ricc.Codebook{Centroids: [][]float32{{1, 2}}}
	if _, err := NewLabeler(m, cb); err == nil {
		t.Error("untrained model accepted")
	}
	tiles := makeTiles(32, 7)
	if _, err := m.Train(tiles); err != nil {
		t.Fatal(err)
	}
	if _, err := NewLabeler(m, cb); err == nil {
		t.Error("dim-mismatched codebook accepted")
	}
	if _, err := NewLabeler(m, &ricc.Codebook{}); err == nil {
		t.Error("empty codebook accepted")
	}
	if _, err := NewLabeler(nil, cb); err == nil {
		t.Error("nil model accepted")
	}
}

func TestTrainValidation(t *testing.T) {
	tiles := makeTiles(8, 8)
	if _, _, err := Train(tiles, trainCfg(), 0); err == nil {
		t.Error("k=0 accepted")
	}
	if _, _, err := Train(tiles, trainCfg(), 100); err == nil {
		t.Error("k > n accepted")
	}
}

func TestAtlasAggregation(t *testing.T) {
	tiles := makeTiles(20, 9)
	for i, tl := range tiles {
		tl.Label = int16(i % 2)
	}
	// One unlabeled tile must be skipped.
	tiles[0].Label = -1
	stats := Atlas(tiles)
	if len(stats) != 2 {
		t.Fatalf("classes = %d", len(stats))
	}
	if stats[0].Class != 0 || stats[1].Class != 1 {
		t.Fatalf("class order: %+v", stats)
	}
	if stats[0].Count+stats[1].Count != 19 {
		t.Fatalf("counts = %d + %d", stats[0].Count, stats[1].Count)
	}
	// Kind-0 tiles carry CTP 400 and land on even indices = label 0 (after
	// the unlabeled skip the mix shifts, so just check ranges).
	for _, st := range stats {
		if st.MeanCloudTopPressure < 300 || st.MeanCloudTopPressure > 1000 {
			t.Fatalf("CTP = %v", st.MeanCloudTopPressure)
		}
		if st.MeanCloudFraction != 0.5 {
			t.Fatalf("cloud fraction = %v", st.MeanCloudFraction)
		}
	}
	if len(Atlas(nil)) != 0 {
		t.Fatal("empty atlas not empty")
	}
}

func TestLabelTilesEmpty(t *testing.T) {
	tiles := makeTiles(32, 10)
	labeler, _, err := Train(tiles, trainCfg(), 2)
	if err != nil {
		t.Fatal(err)
	}
	labels, err := labeler.LabelTiles(nil)
	if err != nil || labels != nil {
		t.Fatalf("empty input: %v, %v", labels, err)
	}
}
