package hdf

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestDecodeNeverPanicsOnRandomBytes(t *testing.T) {
	prop := func(seed int64, n uint16) (ok bool) {
		defer func() {
			if recover() != nil {
				ok = false
			}
		}()
		r := rand.New(rand.NewSource(seed))
		data := make([]byte, int(n)%4096)
		r.Read(data)
		_, _ = Decode(data)
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestDecodeNeverPanicsOnMutatedGranule(t *testing.T) {
	f := buildSample(t)
	var valid []byte
	{
		var buf buffer
		if err := Write(&buf, f); err != nil {
			t.Fatal(err)
		}
		valid = buf.data
	}
	prop := func(seed int64) (ok bool) {
		defer func() {
			if recover() != nil {
				ok = false
			}
		}()
		r := rand.New(rand.NewSource(seed))
		data := append([]byte(nil), valid...)
		for i := 0; i < r.Intn(4)+1; i++ {
			data[r.Intn(len(data))] ^= byte(1 << r.Intn(8))
		}
		// CRC catches all single-region mutations; either way, no panic.
		_, _ = Decode(data)
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// buffer is a minimal io.Writer accumulating bytes.
type buffer struct{ data []byte }

func (b *buffer) Write(p []byte) (int, error) {
	b.data = append(b.data, p...)
	return len(p), nil
}
