// Package arenapair is the golden fixture for the arenapair analyzer.
package arenapair

import (
	"sync"

	"github.com/eoml/eoml/internal/tensor"
)

func badLeak(a *tensor.Arena) float32 {
	x := a.Get(4, 4) // want "without any Put"
	return x.Data[0]
}

type holder struct {
	buf *tensor.T
}

func badFieldStore(h *holder, a *tensor.Arena) {
	h.buf = a.Get(8) // want "without any Put"
}

func goodPaired(a *tensor.Arena) {
	x := a.Get(4, 4)
	defer a.Put(x)
}

func goodLoopPaired(a *tensor.Arena) {
	for i := 0; i < 3; i++ {
		x := a.Get(8)
		a.Put(x)
	}
}

func goodPutInNestedLiteral(a *tensor.Arena) {
	x := a.Get(8)
	defer func() { a.Put(x) }()
}

func goodOwnershipReturnedDirect(a *tensor.Arena) *tensor.T {
	// The Layer.Infer contract: the caller owns the tensor and recycles.
	return a.Get(16)
}

func goodOwnershipReturnedViaVar(a *tensor.Arena) *tensor.T {
	out := a.Get(16)
	out.Data[0] = 1
	return out
}

func goodFieldStoreDocumented(h *holder, a *tensor.Arena) {
	//eomlvet:ignore arenapair ownership transfers to holder, whose release method Puts the buffer
	h.buf = a.Get(8)
}

func goodUnrelatedGet(p *sync.Pool) any {
	// sync.Pool.Get is not tensor.Arena.Get.
	return p.Get()
}
