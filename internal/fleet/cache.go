package fleet

import (
	"container/list"
	"context"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
)

// DownloadCache is a worker-local, content-addressed on-disk cache of
// archive granule files. The fleet ships granule *references*, so every
// re-lease, steal retry, or new run over the same day would otherwise
// re-fetch identical bytes from the archive; the cache makes those hits
// a local disk read instead.
//
// Keying: an entry is addressed by sha256 over (archive URL, sha256 of
// the archive token, file name) — the token participates hashed so two
// tenants with different credentials never share entries and the
// credential itself never appears on disk. Each entry is a pair of
// files under the cache directory, `<key>.granule` (the payload,
// written temp+rename so a crash never leaves a partial entry) and
// `<key>.sha256` (the payload's content hash). Every hit re-verifies
// the content hash; a corrupted or truncated entry is evicted and the
// fetch falls through to the archive.
//
// Size is bounded by LRU eviction, and concurrent fetches of one key
// coalesce: the first caller downloads, the rest wait and read the
// cache (singleflight), so a prefetcher racing the compute slot costs
// one archive fetch, not two.
type DownloadCache struct {
	dir string
	max int64 // byte budget; <=0 means unbounded

	mu sync.Mutex
	// entries maps key hash to its LRU element. guarded by mu
	entries map[string]*list.Element
	// order is the LRU list, most recently used at the front. guarded by mu
	order *list.List
	// total is the summed payload size of all entries. guarded by mu
	total int64
	// inflight coalesces concurrent fetches of one key. guarded by mu
	inflight map[string]*fetchCall

	hits      atomic.Int64
	misses    atomic.Int64
	evictions atomic.Int64
}

// cacheEntry is one cached granule file.
type cacheEntry struct {
	key  string
	size int64
}

// fetchCall is one in-flight archive fetch that later callers wait on.
type fetchCall struct {
	done chan struct{}
	err  error
	path string // the filled destination of the leader's call
}

// CacheKey addresses one archive file.
type CacheKey struct {
	ArchiveURL string
	Token      string
	Name       string
}

// hash renders the content address of the key.
func (k CacheKey) hash() string {
	tok := sha256.Sum256([]byte(k.Token))
	h := sha256.New()
	h.Write([]byte(k.ArchiveURL))
	h.Write([]byte{0})
	h.Write(tok[:])
	h.Write([]byte{0})
	h.Write([]byte(k.Name))
	return hex.EncodeToString(h.Sum(nil))
}

// NewDownloadCache opens (or creates) a cache directory and rebuilds
// the LRU index from entries already on disk, oldest first by mtime, so
// a restarted worker keeps its warm set. maxBytes <= 0 disables the
// size bound.
func NewDownloadCache(dir string, maxBytes int64) (*DownloadCache, error) {
	if dir == "" {
		return nil, fmt.Errorf("fleet: download cache needs a directory")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	c := &DownloadCache{
		dir:      dir,
		max:      maxBytes,
		entries:  map[string]*list.Element{},
		order:    list.New(),
		inflight: map[string]*fetchCall{},
	}
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	type onDisk struct {
		key   string
		size  int64
		mtime int64
	}
	var found []onDisk
	for _, e := range ents {
		name := e.Name()
		if filepath.Ext(name) != ".granule" {
			continue
		}
		key := name[:len(name)-len(".granule")]
		info, err := e.Info()
		if err != nil {
			continue
		}
		if _, err := os.Stat(filepath.Join(dir, key+".sha256")); err != nil {
			// Orphan payload (crash between data rename and sum write):
			// useless without its hash, remove it.
			os.Remove(filepath.Join(dir, name))
			continue
		}
		found = append(found, onDisk{key: key, size: info.Size(), mtime: info.ModTime().UnixNano()})
	}
	// Oldest first, so the front of the rebuilt LRU is the newest.
	for i := 0; i < len(found); i++ {
		for j := i + 1; j < len(found); j++ {
			if found[j].mtime < found[i].mtime {
				found[i], found[j] = found[j], found[i]
			}
		}
	}
	// No other goroutine can hold c yet, but the *Locked helpers declare
	// the mu invariant, so honor it here too.
	c.mu.Lock()
	for _, f := range found {
		c.entries[f.key] = c.order.PushFront(&cacheEntry{key: f.key, size: f.size})
		c.total += f.size
	}
	c.evictOverBudgetLocked()
	c.mu.Unlock()
	return c, nil
}

// Stats reports lifetime hit/miss/eviction counts.
func (c *DownloadCache) Stats() (hits, misses, evictions int64) {
	return c.hits.Load(), c.misses.Load(), c.evictions.Load()
}

// SizeBytes reports the summed payload size of resident entries.
func (c *DownloadCache) SizeBytes() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.total
}

// Fetch materializes the file for key at destDir/<key.Name>. A cache
// hit links (or copies) the verified entry into place without touching
// the archive; a miss runs fill — which must download the file to the
// returned path — and then ingests the result into the cache.
// Concurrent fetches of one key coalesce onto a single fill.
//
// The returned hit is true when the bytes came from the cache (including
// coalesced waits on another caller's fill).
func (c *DownloadCache) Fetch(ctx context.Context, key CacheKey, destDir string, fill func(ctx context.Context) (string, error)) (string, bool, error) {
	kh := key.hash()
	dest := filepath.Join(destDir, key.Name)

	for {
		c.mu.Lock()
		if el, ok := c.entries[kh]; ok {
			c.order.MoveToFront(el)
			c.mu.Unlock()
			if err := c.materialize(kh, dest); err == nil {
				c.hits.Add(1)
				return dest, true, nil
			}
			// Corrupted, truncated, or vanished entry: evict and fall
			// through to a real fetch.
			c.remove(kh)
		} else {
			c.mu.Unlock()
		}

		c.mu.Lock()
		if call, ok := c.inflight[kh]; ok {
			c.mu.Unlock()
			select {
			case <-call.done:
			case <-ctx.Done():
				return "", false, ctx.Err()
			}
			if call.err != nil {
				return "", false, call.err
			}
			if call.path == dest {
				// The leader filled our exact destination.
				c.hits.Add(1)
				return dest, true, nil
			}
			// The leader filled another run's directory; serve ourselves
			// from the entry it ingested (loop re-checks the cache).
			continue
		}
		call := &fetchCall{done: make(chan struct{})}
		c.inflight[kh] = call
		c.mu.Unlock()

		path, err := fill(ctx)
		if err == nil {
			c.ingest(kh, path)
		}
		c.mu.Lock()
		delete(c.inflight, kh)
		c.mu.Unlock()
		call.path, call.err = path, err
		close(call.done)
		if err != nil {
			return "", false, err
		}
		c.misses.Add(1)
		return path, false, nil
	}
}

// materialize links or copies a verified entry to dest. An existing
// dest file is left alone (the kernel's own stat check already accepts
// on-disk inputs).
func (c *DownloadCache) materialize(kh, dest string) error {
	data := filepath.Join(c.dir, kh+".granule")
	wantSum, err := os.ReadFile(filepath.Join(c.dir, kh+".sha256"))
	if err != nil {
		return err
	}
	got, err := hashFile(data)
	if err != nil {
		return err
	}
	if got != string(wantSum) {
		return fmt.Errorf("fleet: cache entry %s content hash mismatch", kh)
	}
	if _, err := os.Stat(dest); err == nil {
		return nil
	}
	if err := os.MkdirAll(filepath.Dir(dest), 0o755); err != nil {
		return err
	}
	if err := os.Link(data, dest); err == nil {
		return nil
	}
	// Cross-device or link-hostile filesystem: copy via temp+rename.
	return copyAtomic(data, dest)
}

// ingest copies a freshly downloaded file into the cache under key kh.
// Ingest failures are swallowed: the download itself succeeded and the
// caller has its file; the cache just stays cold for that key.
func (c *DownloadCache) ingest(kh, src string) {
	info, err := os.Stat(src)
	if err != nil {
		return
	}
	if c.max > 0 && info.Size() > c.max {
		return // larger than the whole budget; never cacheable
	}
	data := filepath.Join(c.dir, kh+".granule")
	tmp := data + ".part"
	sum, err := copyHashing(src, tmp)
	if err != nil {
		os.Remove(tmp)
		return
	}
	if err := os.Rename(tmp, data); err != nil {
		os.Remove(tmp)
		return
	}
	sumTmp := filepath.Join(c.dir, kh+".sha256.part")
	if err := os.WriteFile(sumTmp, []byte(sum), 0o644); err != nil {
		os.Remove(sumTmp)
		return
	}
	if err := os.Rename(sumTmp, filepath.Join(c.dir, kh+".sha256")); err != nil {
		os.Remove(sumTmp)
		return
	}
	c.mu.Lock()
	if el, ok := c.entries[kh]; ok {
		// Re-ingest of an existing key (concurrent fill): replace size.
		c.total += info.Size() - el.Value.(*cacheEntry).size
		el.Value.(*cacheEntry).size = info.Size()
		c.order.MoveToFront(el)
	} else {
		c.entries[kh] = c.order.PushFront(&cacheEntry{key: kh, size: info.Size()})
		c.total += info.Size()
	}
	c.evictOverBudgetLocked()
	c.mu.Unlock()
}

// remove evicts one entry (bad hash, vanished file).
func (c *DownloadCache) remove(kh string) {
	c.mu.Lock()
	if el, ok := c.entries[kh]; ok {
		c.evictLocked(el)
	}
	c.mu.Unlock()
}

// evictOverBudgetLocked drops least-recently-used entries until the
// budget holds. Caller holds mu.
func (c *DownloadCache) evictOverBudgetLocked() {
	if c.max <= 0 {
		return
	}
	for c.total > c.max {
		back := c.order.Back()
		if back == nil {
			return
		}
		c.evictLocked(back)
	}
}

// evictLocked removes one LRU element and its files. Caller holds mu.
func (c *DownloadCache) evictLocked(el *list.Element) {
	ent := el.Value.(*cacheEntry)
	c.order.Remove(el)
	delete(c.entries, ent.key)
	c.total -= ent.size
	c.evictions.Add(1)
	os.Remove(filepath.Join(c.dir, ent.key+".granule"))
	os.Remove(filepath.Join(c.dir, ent.key+".sha256"))
}

// hashFile returns the hex sha256 of a file's content.
func hashFile(path string) (string, error) {
	f, err := os.Open(path)
	if err != nil {
		return "", err
	}
	defer f.Close()
	h := sha256.New()
	if _, err := io.Copy(h, f); err != nil {
		return "", err
	}
	return hex.EncodeToString(h.Sum(nil)), nil
}

// copyHashing copies src to dst, returning the hex sha256 of the bytes
// written.
func copyHashing(src, dst string) (string, error) {
	in, err := os.Open(src)
	if err != nil {
		return "", err
	}
	defer in.Close()
	out, err := os.Create(dst)
	if err != nil {
		return "", err
	}
	h := sha256.New()
	_, err = io.Copy(io.MultiWriter(out, h), in)
	if cerr := out.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return "", err
	}
	return hex.EncodeToString(h.Sum(nil)), nil
}

// copyAtomic copies src to dst via temp+rename.
func copyAtomic(src, dst string) error {
	tmp := dst + ".part"
	if _, err := copyHashing(src, tmp); err != nil {
		os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, dst); err != nil {
		os.Remove(tmp)
		return err
	}
	return nil
}

// ResultCache memoizes completed task results keyed on the task's
// granule-ref identity, bounded LRU. A requeued or stolen task whose
// work already finished on this worker returns the memoized result
// instead of recomputing — the coordinator's exactly-once result
// contract already discards duplicates, so the memo only changes the
// cost of at-least-once execution, never its outcome.
type ResultCache struct {
	max int

	mu sync.Mutex
	// entries maps result key to its LRU element. guarded by mu
	entries map[string]*list.Element
	// order is the LRU list, most recently used at the front. guarded by mu
	order *list.List

	hits      atomic.Int64
	misses    atomic.Int64
	evictions atomic.Int64
}

// resultEntry is one memoized result.
type resultEntry struct {
	key string
	val any
}

// NewResultCache builds a memo bounded to max entries (<=0 means a
// default of 1024).
func NewResultCache(max int) *ResultCache {
	if max <= 0 {
		max = 1024
	}
	return &ResultCache{max: max, entries: map[string]*list.Element{}, order: list.New()}
}

// Get returns the memoized result for key, if any.
func (r *ResultCache) Get(key string) (any, bool) {
	r.mu.Lock()
	el, ok := r.entries[key]
	if !ok {
		r.mu.Unlock()
		r.misses.Add(1)
		return nil, false
	}
	r.order.MoveToFront(el)
	v := el.Value.(*resultEntry).val
	r.mu.Unlock()
	r.hits.Add(1)
	return v, true
}

// Put memoizes a completed result.
func (r *ResultCache) Put(key string, v any) {
	r.mu.Lock()
	if el, ok := r.entries[key]; ok {
		el.Value.(*resultEntry).val = v
		r.order.MoveToFront(el)
	} else {
		r.entries[key] = r.order.PushFront(&resultEntry{key: key, val: v})
		for r.order.Len() > r.max {
			back := r.order.Back()
			delete(r.entries, back.Value.(*resultEntry).key)
			r.order.Remove(back)
			r.evictions.Add(1)
		}
	}
	r.mu.Unlock()
}

// Delete drops a stale memo (its on-disk artifact vanished).
func (r *ResultCache) Delete(key string) {
	r.mu.Lock()
	if el, ok := r.entries[key]; ok {
		delete(r.entries, key)
		r.order.Remove(el)
	}
	r.mu.Unlock()
}

// Stats reports lifetime hit/miss/eviction counts.
func (r *ResultCache) Stats() (hits, misses, evictions int64) {
	return r.hits.Load(), r.misses.Load(), r.evictions.Load()
}
