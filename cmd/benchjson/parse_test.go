package main

import (
	"strings"
	"testing"
)

func TestParseBenchLine(t *testing.T) {
	name, m, ok := parseBenchLine(
		"BenchmarkMatMulBlocked/blocked-8   \t     100\t  12362599 ns/op\t  21.71 GFLOPS\t   40122 B/op\t      15 allocs/op")
	if !ok {
		t.Fatal("line did not parse")
	}
	if name != "BenchmarkMatMulBlocked/blocked" {
		t.Fatalf("name %q", name)
	}
	want := map[string]float64{
		"iterations": 100, "ns_per_op": 12362599,
		"gflops": 21.71, "bytes_per_op": 40122, "allocs_per_op": 15,
	}
	for k, v := range want {
		if m[k] != v {
			t.Errorf("%s = %v, want %v", k, m[k], v)
		}
	}
}

func TestParseBenchLineRejectsNonBench(t *testing.T) {
	for _, line := range []string{
		"PASS",
		"ok  \tgithub.com/eoml/eoml\t12.3s",
		"goos: linux",
		"BenchmarkBroken 12", // no metrics
		"Benchmark 12 x ns/op",
	} {
		if _, _, ok := parseBenchLine(line); ok {
			t.Errorf("line %q parsed as a benchmark", line)
		}
	}
}

func TestStripCPUSuffix(t *testing.T) {
	cases := map[string]string{
		"BenchmarkX-8":               "BenchmarkX",
		"BenchmarkX/sub-case-4":      "BenchmarkX/sub-case",
		"BenchmarkNoSuffix":          "BenchmarkNoSuffix",
		"BenchmarkX/size=512x512-32": "BenchmarkX/size=512x512",
	}
	for in, wantOut := range cases {
		if got := stripCPUSuffix(in); got != wantOut {
			t.Errorf("stripCPUSuffix(%q) = %q, want %q", in, got, wantOut)
		}
	}
}

func TestParseDocument(t *testing.T) {
	input := `goos: linux
goarch: amd64
pkg: github.com/eoml/eoml
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkTileExtract-2            	      33	  35881523 ns/op	       272.0 tiles/granule
BenchmarkLabelFileBatched/batched-2 	      66	  17252926 ns/op	     14838 tiles/s
PASS
ok  	github.com/eoml/eoml	4.2s
`
	doc, err := Parse(strings.NewReader(input))
	if err != nil {
		t.Fatal(err)
	}
	if doc.Host.GOOS != "linux" || doc.Host.GOARCH != "amd64" || !strings.Contains(doc.Host.CPU, "Xeon") {
		t.Fatalf("host %+v", doc.Host)
	}
	if len(doc.Benchmarks) != 2 {
		t.Fatalf("parsed %d benchmarks, want 2", len(doc.Benchmarks))
	}
	if v := doc.Benchmarks["BenchmarkTileExtract"]["tiles_per_granule"]; v != 272 {
		t.Fatalf("tiles_per_granule = %v", v)
	}
	if v := doc.Benchmarks["BenchmarkLabelFileBatched/batched"]["tiles_per_s"]; v != 14838 {
		t.Fatalf("tiles_per_s = %v", v)
	}
}

func TestParseBestOfN(t *testing.T) {
	// -count N repetitions collapse to the fastest one, and that
	// repetition's other metrics ride along (no cross-rep mixing).
	input := "BenchmarkX-2 10 6 ns/op 100 tiles/s\n" +
		"BenchmarkX-2 10 5 ns/op 120 tiles/s\n" +
		"BenchmarkX-2 10 7 ns/op 130 tiles/s\n"
	doc, err := Parse(strings.NewReader(input))
	if err != nil {
		t.Fatal(err)
	}
	m := doc.Benchmarks["BenchmarkX"]
	if m["ns_per_op"] != 5 || m["tiles_per_s"] != 120 {
		t.Fatalf("best-of-N picked %v, want ns_per_op=5 tiles_per_s=120", m)
	}
}
