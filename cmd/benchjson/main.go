// Command benchjson converts `go test -bench` output on stdin into the
// machine-readable benchmark record the repo commits per PR (BENCH_N.json).
// It parses the standard benchmark lines — iterations, ns/op, B/op,
// allocs/op, and any b.ReportMetric custom units — plus the goos/goarch/cpu
// header go test prints, and emits one JSON document:
//
//	go test -run xxx -bench 'MatMulBlocked|TileExtract' -benchmem . |
//	    benchjson -pr 4 -title "..." -command "make bench" > BENCH_4.json
//
// Units become JSON-safe keys ("ns/op" → "ns_per_op", "B/op" →
// "bytes_per_op", "tiles/s" → "tiles_per_s"); sub-benchmark names keep
// their full slash-separated path with the -<cpus> suffix stripped.
// Repeated lines for one benchmark (from -count N) collapse best-of-N:
// the fastest repetition wins, taming shared-host noise in the records
// that cmd/benchdiff gates on.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"io"
	"log"
	"os"
	"runtime"
	"time"

	"github.com/eoml/eoml/internal/benchfmt"
	"github.com/eoml/eoml/internal/tensor"
)

func main() {
	pr := flag.Int("pr", 0, "PR number recorded in the document")
	title := flag.String("title", "", "one-line description of what was benchmarked")
	command := flag.String("command", "", "the command that produced the input, for reproducibility")
	notes := flag.String("notes", "", "free-form caveats (noise, host sharing, ...)")
	date := flag.String("date", time.Now().Format("2006-01-02"), "date recorded in the document")
	flag.Parse()

	doc, err := Parse(os.Stdin)
	if err != nil {
		log.Fatalf("benchjson: %v", err)
	}
	if len(doc.Benchmarks) == 0 {
		log.Fatal("benchjson: no benchmark lines on stdin")
	}
	doc.PR = *pr
	doc.Title = *title
	doc.Command = *command
	doc.Notes = *notes
	doc.Date = *date

	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(doc); err != nil {
		log.Fatal(err)
	}
}

// Parse reads `go test -bench` output and collects every benchmark
// result line and the host header into the shared record shape
// (internal/benchfmt) that cmd/benchdiff consumes.
func Parse(r io.Reader) (*benchfmt.Document, error) {
	doc := &benchfmt.Document{
		Host: benchfmt.Host{
			GOOS:       runtime.GOOS,
			GOARCH:     runtime.GOARCH,
			CPUs:       runtime.NumCPU(),
			GOMAXPROCS: runtime.GOMAXPROCS(0),
			AVX2:       tensor.SIMDEnabled(),
		},
		Benchmarks: map[string]map[string]float64{},
	}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		var s string
		switch {
		case scanHeader(line, "goos: ", &s):
			doc.Host.GOOS = s
		case scanHeader(line, "goarch: ", &s):
			doc.Host.GOARCH = s
		case scanHeader(line, "cpu: ", &s):
			doc.Host.CPU = s
		default:
			name, metrics, ok := parseBenchLine(line)
			if !ok {
				continue
			}
			// Repeated lines for one benchmark (go test -count N) reduce
			// best-of-N: the repetition with the lowest ns/op carries the
			// least scheduler interference on a shared host, and keeping
			// that repetition's whole metric set means ns/op and the
			// throughput units come from the same run.
			if prev, dup := doc.Benchmarks[name]; dup && metrics["ns_per_op"] >= prev["ns_per_op"] {
				continue
			}
			doc.Benchmarks[name] = metrics
		}
	}
	return doc, sc.Err()
}

func scanHeader(line, prefix string, out *string) bool {
	if len(line) > len(prefix) && line[:len(prefix)] == prefix {
		*out = line[len(prefix):]
		return true
	}
	return false
}
