// Package modis synthesizes MODIS-like satellite data products.
//
// The paper's workflow consumes three NASA products per five-minute
// granule: MOD021KM (Level-1B calibrated radiances, 36 spectral bands),
// MOD03 (1 km geolocation), and MOD06_L2 (Level-2 cloud properties).
// Real granules require LAADS DAAC credentials and ~60 GB/day; this package
// generates deterministic synthetic granules with the same structure —
// swath geometry, band layout, scaled-integer radiance encoding, land/sea
// and cloud masks, product file naming — so every downstream stage
// (download, tile extraction, masking, inference) runs the code path it
// would run on real data.
//
// The MOD/MYD prefix distinguishes the Terra and Aqua satellites, as in
// the real archive.
package modis

import (
	"fmt"
	"strconv"
	"strings"
	"time"
)

// Satellite identifies the MODIS host platform.
type Satellite int

// The two MODIS platforms.
const (
	Terra Satellite = iota // MOD prefix, in operation since 2000
	Aqua                   // MYD prefix, in operation since 2002
)

// String returns the platform name.
func (s Satellite) String() string {
	if s == Aqua {
		return "Aqua"
	}
	return "Terra"
}

// Prefix returns the product-name prefix for the platform.
func (s Satellite) Prefix() string {
	if s == Aqua {
		return "MYD"
	}
	return "MOD"
}

// Kind enumerates the product families used by the workflow.
type Kind int

// Product families.
const (
	L1B   Kind = iota // calibrated radiances (MOD021KM / MYD021KM)
	Geo               // geolocation (MOD03 / MYD03)
	Cloud             // L2 cloud properties (MOD06_L2 / MYD06_L2)
)

// Product is a satellite-qualified product family.
type Product struct {
	Satellite Satellite
	Kind      Kind
}

// Convenience Terra products (the benchmark day in the paper is Terra).
var (
	MOD021KM = Product{Terra, L1B}
	MOD03    = Product{Terra, Geo}
	MOD06L2  = Product{Terra, Cloud}
	MYD021KM = Product{Aqua, L1B}
	MYD03    = Product{Aqua, Geo}
	MYD06L2  = Product{Aqua, Cloud}
)

// ShortName returns the archive product name, e.g. "MOD021KM".
func (p Product) ShortName() string {
	switch p.Kind {
	case L1B:
		return p.Satellite.Prefix() + "021KM"
	case Geo:
		return p.Satellite.Prefix() + "03"
	case Cloud:
		return p.Satellite.Prefix() + "06_L2"
	}
	return "UNKNOWN"
}

// ParseProduct maps an archive short name back to a Product.
func ParseProduct(name string) (Product, error) {
	var sat Satellite
	switch {
	case strings.HasPrefix(name, "MOD"):
		sat = Terra
	case strings.HasPrefix(name, "MYD"):
		sat = Aqua
	default:
		return Product{}, fmt.Errorf("modis: unknown product %q", name)
	}
	switch name[3:] {
	case "021KM":
		return Product{sat, L1B}, nil
	case "03":
		return Product{sat, Geo}, nil
	case "06_L2":
		return Product{sat, Cloud}, nil
	}
	return Product{}, fmt.Errorf("modis: unknown product %q", name)
}

// GranulesPerDay is the number of five-minute granules in a day.
const GranulesPerDay = 288

// GranuleID identifies one five-minute observation window of one platform.
type GranuleID struct {
	Satellite Satellite
	Year      int
	DOY       int // day of year, 1-based
	Index     int // five-minute slot, 0..287
}

// HHMM formats the granule start time as in archive file names.
func (g GranuleID) HHMM() string {
	minutes := g.Index * 5
	return fmt.Sprintf("%02d%02d", minutes/60, minutes%60)
}

// Time returns the granule start instant in UTC.
func (g GranuleID) Time() time.Time {
	return time.Date(g.Year, 1, 1, 0, g.Index*5, 0, 0, time.UTC).AddDate(0, 0, g.DOY-1)
}

// Seed derives a deterministic noise seed shared by all products of the
// same granule, so the cloud field seen by MOD021KM radiances matches the
// cloud properties reported by MOD06_L2.
func (g GranuleID) Seed() int64 {
	return int64(g.Satellite)<<40 ^ int64(g.Year)<<28 ^ int64(g.DOY)<<12 ^ int64(g.Index)
}

// Validate reports whether the ID fields are in range.
func (g GranuleID) Validate() error {
	if g.Year < 2000 || g.Year > 2100 {
		return fmt.Errorf("modis: year %d out of range", g.Year)
	}
	if g.DOY < 1 || g.DOY > 366 {
		return fmt.Errorf("modis: day-of-year %d out of range", g.DOY)
	}
	if g.Index < 0 || g.Index >= GranulesPerDay {
		return fmt.Errorf("modis: granule index %d out of range", g.Index)
	}
	return nil
}

// Collection is the MODIS processing collection used in file names.
const Collection = "061"

// FileName renders the archive file name for a product granule, e.g.
// "MOD021KM.A2022001.0000.061.2022003192844.hdf". The production timestamp
// is synthesized deterministically from the granule ID.
func FileName(p Product, g GranuleID) string {
	prod := g.Time().Add(49*time.Hour + time.Duration(g.Index)*time.Second)
	return fmt.Sprintf("%s.A%04d%03d.%s.%s.%s.hdf",
		p.ShortName(), g.Year, g.DOY, g.HHMM(), Collection, prod.Format("2006002150405"))
}

// ParseFileName inverts FileName.
func ParseFileName(name string) (Product, GranuleID, error) {
	parts := strings.Split(name, ".")
	if len(parts) != 6 || parts[5] != "hdf" {
		return Product{}, GranuleID{}, fmt.Errorf("modis: malformed granule name %q", name)
	}
	p, err := ParseProduct(parts[0])
	if err != nil {
		return Product{}, GranuleID{}, err
	}
	if len(parts[1]) != 8 || parts[1][0] != 'A' {
		return Product{}, GranuleID{}, fmt.Errorf("modis: malformed acquisition date in %q", name)
	}
	year, err1 := strconv.Atoi(parts[1][1:5])
	doy, err2 := strconv.Atoi(parts[1][5:8])
	if err1 != nil || err2 != nil {
		return Product{}, GranuleID{}, fmt.Errorf("modis: malformed acquisition date in %q", name)
	}
	if len(parts[2]) != 4 {
		return Product{}, GranuleID{}, fmt.Errorf("modis: malformed time in %q", name)
	}
	hh, err1 := strconv.Atoi(parts[2][:2])
	mm, err2 := strconv.Atoi(parts[2][2:])
	if err1 != nil || err2 != nil || mm%5 != 0 {
		return Product{}, GranuleID{}, fmt.Errorf("modis: malformed time in %q", name)
	}
	g := GranuleID{Satellite: p.Satellite, Year: year, DOY: doy, Index: hh*12 + mm/5}
	if err := g.Validate(); err != nil {
		return Product{}, GranuleID{}, err
	}
	return p, g, nil
}

// Swath dimensions of a full-resolution 1 km MODIS granule.
const (
	FullAlongTrack = 2030 // pixels along track (rows)
	FullCrossTrack = 1354 // pixels across track (columns)
	NumBands       = 36   // spectral bands in MOD021KM
)

// TileSize is the edge length of AICCA tiles in pixels.
const TileSize = 128

// AICCABands lists the six MOD021KM band indices (0-based) used to build
// tiles, following the AICCA channel selection (MODIS bands 6, 7, 20, 28,
// 29, 31 — a mix of shortwave-IR reflectance and thermal emission that
// separates cloud texture and phase).
var AICCABands = []int{5, 6, 19, 27, 28, 30}

// NominalBytes returns the full-archive size of one granule of the
// product, matching the paper's daily volumes (≈32 GB MOD02, 8.4 GB MOD03,
// 18 GB MOD06 per day of 288 granules). The DES experiments account bytes
// at this scale even when the real files on disk are generated smaller.
func NominalBytes(p Product) int64 {
	switch p.Kind {
	case L1B:
		return int64(32e9) / GranulesPerDay
	case Geo:
		return int64(8.4e9) / GranulesPerDay
	case Cloud:
		return int64(18e9) / GranulesPerDay
	}
	return 0
}
