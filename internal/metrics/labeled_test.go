package metrics

import (
	"strings"
	"testing"
)

// TestLabeledRegistryStampsBaseLabels checks that a child registry adds
// its base labels to every series, on top of per-series labels.
func TestLabeledRegistryStampsBaseLabels(t *testing.T) {
	r := NewLabeledRegistry(L("run", "r1"), L("tenant", "acme"))
	r.Counter("eoml_test_total", "help").Add(3)
	r.Gauge("eoml_test_gauge", "help", L("stage", "download")).Set(7)

	snap := r.Snapshot()
	if len(snap) != 2 {
		t.Fatalf("families = %d, want 2", len(snap))
	}
	got := snap[0].Series[0].Labels
	if len(got) != 2 || got[0] != L("run", "r1") || got[1] != L("tenant", "acme") {
		t.Fatalf("counter labels = %v", got)
	}
	got = snap[1].Series[0].Labels
	if len(got) != 3 || got[2] != L("stage", "download") {
		t.Fatalf("gauge labels = %v", got)
	}
	if r.BaseLabels()[0] != L("run", "r1") {
		t.Fatalf("base labels = %v", r.BaseLabels())
	}
}

// TestLabeledRegistriesShareFamilyNames is the re-registration property
// the multi-run engine needs: two runs emit the same family name from
// their own registries, and the merged exposition stays valid — one TYPE
// line per family, series kept disjoint by the run label.
func TestLabeledRegistriesShareFamilyNames(t *testing.T) {
	a := NewLabeledRegistry(L("run", "a"))
	b := NewLabeledRegistry(L("run", "b"))
	for _, r := range []*Registry{a, b} {
		r.Counter("eoml_stage_events_total", "events", L("stage", "download")).Inc()
		r.Histogram("eoml_stage_seconds", "latency", DurationBuckets(), L("stage", "download")).Observe(0.2)
	}
	a.Counter("eoml_stage_events_total", "events", L("stage", "download")).Inc()

	merged := MergeFamilies(a.Snapshot(), b.Snapshot())
	if len(merged) != 2 {
		t.Fatalf("merged families = %d, want 2", len(merged))
	}
	if n := len(merged[0].Series); n != 2 {
		t.Fatalf("merged counter series = %d, want 2", n)
	}
	if v := merged[0].Series[0].Value; v != 2 {
		t.Fatalf("run a counter = %v, want 2 (isolated from run b's 1)", v)
	}
	if v := merged[0].Series[1].Value; v != 1 {
		t.Fatalf("run b counter = %v, want 1", v)
	}

	var text strings.Builder
	if err := WriteFamilies(&text, merged); err != nil {
		t.Fatal(err)
	}
	if err := ValidatePrometheus(strings.NewReader(text.String())); err != nil {
		t.Fatalf("merged exposition invalid: %v\n%s", err, text.String())
	}
	if !strings.Contains(text.String(), `run="a"`) || !strings.Contains(text.String(), `run="b"`) {
		t.Fatalf("merged exposition missing run labels:\n%s", text.String())
	}
}

// TestMergeFamiliesKindConflict pins the conflict behavior: a family
// re-declared under a different kind is dropped from the merge instead
// of being emitted under the wrong TYPE line.
func TestMergeFamiliesKindConflict(t *testing.T) {
	a := NewRegistry()
	a.Counter("eoml_conflict", "as counter").Inc()
	b := NewRegistry()
	b.Gauge("eoml_conflict", "as gauge").Set(9)

	merged := MergeFamilies(a.Snapshot(), b.Snapshot())
	if len(merged) != 1 || merged[0].Kind != KindCounter {
		t.Fatalf("merged = %+v", merged)
	}
	if len(merged[0].Series) != 1 {
		t.Fatalf("conflicting series kept: %+v", merged[0].Series)
	}
}

// TestInvalidBaseLabelPanics mirrors the name-grammar panic of register.
func TestInvalidBaseLabelPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("bad base label key accepted")
		}
	}()
	NewLabeledRegistry(L("bad key", "v"))
}
