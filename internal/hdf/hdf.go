// Package hdf implements a compact, self-describing binary container for
// synthetic MODIS granules.
//
// NASA distributes MODIS Level-1B and Level-2 products as HDF4 files. HDF4
// is a large legacy format; reimplementing it would add nothing to the
// workflow being reproduced, so this package defines "HDF-lite": named
// n-dimensional typed datasets plus file-level attributes, little-endian,
// CRC-protected. Everything the EO-ML pipeline reads from a MODIS granule —
// calibrated radiance bands, geolocation arrays, cloud/land masks, product
// metadata — round-trips through this container, so the preprocessing code
// path (open granule, select bands, slice tiles) is exercised exactly as it
// would be against HDF4.
//
// Layout (all integers little-endian):
//
//	magic   [8]byte  "EOHDF1\n\x00"
//	nattrs  uint32
//	  per attr:  name (u16 len + bytes), kind u8, payload
//	ndatasets uint32
//	  per dataset: name (u16 len + bytes), dtype u8, rank u8,
//	               dims []uint32, nbytes uint64, raw values
//	crc32   uint32   IEEE CRC of all preceding bytes
package hdf

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash"
	"hash/crc32"
	"io"
	"math"
	"os"
	"sort"
)

// Magic identifies an HDF-lite stream.
var Magic = [8]byte{'E', 'O', 'H', 'D', 'F', '1', '\n', 0}

// DType enumerates dataset element types.
type DType uint8

// Supported element types.
const (
	Uint8 DType = iota
	Int16
	Uint16
	Int32
	Float32
	Float64
)

// Size returns the byte width of one element.
func (d DType) Size() int {
	switch d {
	case Uint8:
		return 1
	case Int16, Uint16:
		return 2
	case Int32, Float32:
		return 4
	case Float64:
		return 8
	}
	return 0
}

// String names the dtype for diagnostics.
func (d DType) String() string {
	switch d {
	case Uint8:
		return "uint8"
	case Int16:
		return "int16"
	case Uint16:
		return "uint16"
	case Int32:
		return "int32"
	case Float32:
		return "float32"
	case Float64:
		return "float64"
	}
	return fmt.Sprintf("dtype(%d)", uint8(d))
}

// attribute kinds on the wire.
const (
	attrString uint8 = iota
	attrInt
	attrFloat
)

// Dataset is a named n-dimensional array of one element type. The raw
// backing buffer is little-endian regardless of host order.
type Dataset struct {
	Name  string
	DType DType
	Dims  []int
	raw   []byte
}

// Len returns the number of elements.
func (d *Dataset) Len() int {
	n := 1
	for _, dim := range d.Dims {
		n *= dim
	}
	if len(d.Dims) == 0 {
		return 0
	}
	return n
}

// Raw exposes the little-endian backing bytes (not a copy).
func (d *Dataset) Raw() []byte { return d.raw }

// NewFloat32 builds a float32 dataset; len(values) must equal the product
// of dims.
func NewFloat32(name string, dims []int, values []float32) (*Dataset, error) {
	d := &Dataset{Name: name, DType: Float32, Dims: append([]int(nil), dims...)}
	if err := d.checkLen(len(values)); err != nil {
		return nil, err
	}
	d.raw = make([]byte, 4*len(values))
	for i, v := range values {
		binary.LittleEndian.PutUint32(d.raw[4*i:], math.Float32bits(v))
	}
	return d, nil
}

// NewUint8 builds a uint8 dataset.
func NewUint8(name string, dims []int, values []uint8) (*Dataset, error) {
	d := &Dataset{Name: name, DType: Uint8, Dims: append([]int(nil), dims...)}
	if err := d.checkLen(len(values)); err != nil {
		return nil, err
	}
	d.raw = append([]byte(nil), values...)
	return d, nil
}

// NewInt16 builds an int16 dataset.
func NewInt16(name string, dims []int, values []int16) (*Dataset, error) {
	d := &Dataset{Name: name, DType: Int16, Dims: append([]int(nil), dims...)}
	if err := d.checkLen(len(values)); err != nil {
		return nil, err
	}
	d.raw = make([]byte, 2*len(values))
	for i, v := range values {
		binary.LittleEndian.PutUint16(d.raw[2*i:], uint16(v))
	}
	return d, nil
}

// NewUint16 builds a uint16 dataset. MODIS L1B scaled integers are uint16.
func NewUint16(name string, dims []int, values []uint16) (*Dataset, error) {
	d := &Dataset{Name: name, DType: Uint16, Dims: append([]int(nil), dims...)}
	if err := d.checkLen(len(values)); err != nil {
		return nil, err
	}
	d.raw = make([]byte, 2*len(values))
	for i, v := range values {
		binary.LittleEndian.PutUint16(d.raw[2*i:], v)
	}
	return d, nil
}

func (d *Dataset) checkLen(n int) error {
	if n != d.Len() {
		return fmt.Errorf("hdf: dataset %q: %d values for dims %v", d.Name, n, d.Dims)
	}
	for _, dim := range d.Dims {
		if dim <= 0 {
			return fmt.Errorf("hdf: dataset %q: non-positive dim in %v", d.Name, d.Dims)
		}
	}
	return nil
}

// Float32s decodes the dataset as float32 values. It errors if the dtype
// differs.
func (d *Dataset) Float32s() ([]float32, error) {
	if d.DType != Float32 {
		return nil, fmt.Errorf("hdf: dataset %q is %v, want float32", d.Name, d.DType)
	}
	out := make([]float32, d.Len())
	for i := range out {
		out[i] = math.Float32frombits(binary.LittleEndian.Uint32(d.raw[4*i:]))
	}
	return out, nil
}

// Float32sInto decodes the dataset into dst, which must have length
// Len(). It is Float32s without the allocation, for callers recycling
// granule scratch through an arena.
func (d *Dataset) Float32sInto(dst []float32) error {
	if d.DType != Float32 {
		return fmt.Errorf("hdf: dataset %q is %v, want float32", d.Name, d.DType)
	}
	if len(dst) != d.Len() {
		return fmt.Errorf("hdf: dataset %q: dst length %d, want %d", d.Name, len(dst), d.Len())
	}
	for i := range dst {
		dst[i] = math.Float32frombits(binary.LittleEndian.Uint32(d.raw[4*i:]))
	}
	return nil
}

// ScaledPlaneInto decodes plane p of a rank-3 uint16 dataset (MODIS L1B
// scaled integers, [band, y, x]) into dst as v*scale + offset, mapping
// the fill value to NaN. Decoding one selected plane at a time lets the
// caller skip the other bands entirely instead of materializing the
// full uint16 cube.
func (d *Dataset) ScaledPlaneInto(p int, scale, offset float64, fill uint16, dst []float32) error {
	if d.DType != Uint16 {
		return fmt.Errorf("hdf: dataset %q is %v, want uint16", d.Name, d.DType)
	}
	if len(d.Dims) != 3 {
		return fmt.Errorf("hdf: dataset %q rank %d, want 3", d.Name, len(d.Dims))
	}
	n := d.Dims[1] * d.Dims[2]
	if p < 0 || p >= d.Dims[0] {
		return fmt.Errorf("hdf: dataset %q plane %d out of range [0,%d)", d.Name, p, d.Dims[0])
	}
	if len(dst) != n {
		return fmt.Errorf("hdf: dataset %q: dst length %d, want %d", d.Name, len(dst), n)
	}
	raw := d.raw[2*p*n:]
	nan := float32(math.NaN())
	for i := 0; i < n; i++ {
		v := binary.LittleEndian.Uint16(raw[2*i:])
		if v == fill {
			dst[i] = nan
			continue
		}
		dst[i] = float32(float64(v)*scale + offset)
	}
	return nil
}

// Uint8s decodes the dataset as uint8 values.
func (d *Dataset) Uint8s() ([]uint8, error) {
	if d.DType != Uint8 {
		return nil, fmt.Errorf("hdf: dataset %q is %v, want uint8", d.Name, d.DType)
	}
	return append([]uint8(nil), d.raw...), nil
}

// Int16s decodes the dataset as int16 values.
func (d *Dataset) Int16s() ([]int16, error) {
	if d.DType != Int16 {
		return nil, fmt.Errorf("hdf: dataset %q is %v, want int16", d.Name, d.DType)
	}
	out := make([]int16, d.Len())
	for i := range out {
		out[i] = int16(binary.LittleEndian.Uint16(d.raw[2*i:]))
	}
	return out, nil
}

// Uint16s decodes the dataset as uint16 values.
func (d *Dataset) Uint16s() ([]uint16, error) {
	if d.DType != Uint16 {
		return nil, fmt.Errorf("hdf: dataset %q is %v, want uint16", d.Name, d.DType)
	}
	out := make([]uint16, d.Len())
	for i := range out {
		out[i] = binary.LittleEndian.Uint16(d.raw[2*i:])
	}
	return out, nil
}

// File is an in-memory HDF-lite granule: global attributes plus datasets.
type File struct {
	Attrs    map[string]any // string, int64 or float64 values
	datasets []*Dataset
	byName   map[string]*Dataset
}

// NewFile returns an empty granule.
func NewFile() *File {
	return &File{Attrs: map[string]any{}, byName: map[string]*Dataset{}}
}

// Add appends a dataset; names must be unique within the file.
func (f *File) Add(d *Dataset) error {
	if d == nil || d.Name == "" {
		return fmt.Errorf("hdf: empty dataset name")
	}
	if _, dup := f.byName[d.Name]; dup {
		return fmt.Errorf("hdf: duplicate dataset %q", d.Name)
	}
	f.datasets = append(f.datasets, d)
	f.byName[d.Name] = d
	return nil
}

// Dataset returns the named dataset or an error listing what exists.
func (f *File) Dataset(name string) (*Dataset, error) {
	if d, ok := f.byName[name]; ok {
		return d, nil
	}
	names := make([]string, 0, len(f.datasets))
	for _, d := range f.datasets {
		names = append(names, d.Name)
	}
	return nil, fmt.Errorf("hdf: no dataset %q (have %v)", name, names)
}

// Datasets returns datasets in insertion order.
func (f *File) Datasets() []*Dataset { return f.datasets }

// AttrString fetches a string attribute.
func (f *File) AttrString(name string) (string, bool) {
	s, ok := f.Attrs[name].(string)
	return s, ok
}

// AttrInt fetches an integer attribute.
func (f *File) AttrInt(name string) (int64, bool) {
	n, ok := f.Attrs[name].(int64)
	return n, ok
}

// AttrFloat fetches a float attribute.
func (f *File) AttrFloat(name string) (float64, bool) {
	x, ok := f.Attrs[name].(float64)
	return x, ok
}

type crcWriter struct {
	w   io.Writer
	crc hash.Hash32
}

func (cw *crcWriter) Write(p []byte) (int, error) {
	cw.crc.Write(p)
	return cw.w.Write(p)
}

// Write encodes the file to w.
func Write(w io.Writer, f *File) error {
	bw := bufio.NewWriterSize(w, 1<<16)
	cw := &crcWriter{w: bw, crc: crc32.NewIEEE()}
	if _, err := cw.Write(Magic[:]); err != nil {
		return err
	}
	// Attributes in sorted order so encoding is deterministic.
	names := make([]string, 0, len(f.Attrs))
	for k := range f.Attrs {
		names = append(names, k)
	}
	sort.Strings(names)
	if err := writeU32(cw, uint32(len(names))); err != nil {
		return err
	}
	for _, k := range names {
		if err := writeString(cw, k); err != nil {
			return err
		}
		switch v := f.Attrs[k].(type) {
		case string:
			if err := writeByte(cw, attrString); err != nil {
				return err
			}
			if err := writeString(cw, v); err != nil {
				return err
			}
		case int64:
			if err := writeByte(cw, attrInt); err != nil {
				return err
			}
			if err := writeU64(cw, uint64(v)); err != nil {
				return err
			}
		case float64:
			if err := writeByte(cw, attrFloat); err != nil {
				return err
			}
			if err := writeU64(cw, math.Float64bits(v)); err != nil {
				return err
			}
		default:
			return fmt.Errorf("hdf: attribute %q has unsupported type %T", k, v)
		}
	}
	if err := writeU32(cw, uint32(len(f.datasets))); err != nil {
		return err
	}
	for _, d := range f.datasets {
		if err := writeString(cw, d.Name); err != nil {
			return err
		}
		if err := writeByte(cw, uint8(d.DType)); err != nil {
			return err
		}
		if len(d.Dims) > 255 {
			return fmt.Errorf("hdf: dataset %q rank %d too large", d.Name, len(d.Dims))
		}
		if err := writeByte(cw, uint8(len(d.Dims))); err != nil {
			return err
		}
		for _, dim := range d.Dims {
			if err := writeU32(cw, uint32(dim)); err != nil {
				return err
			}
		}
		if err := writeU64(cw, uint64(len(d.raw))); err != nil {
			return err
		}
		if _, err := cw.Write(d.raw); err != nil {
			return err
		}
	}
	var crcBuf [4]byte
	binary.LittleEndian.PutUint32(crcBuf[:], cw.crc.Sum32())
	if _, err := bw.Write(crcBuf[:]); err != nil {
		return err
	}
	return bw.Flush()
}

// Read decodes an HDF-lite stream, verifying magic and CRC.
func Read(r io.Reader) (*File, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, err
	}
	return Decode(data)
}

// Decode decodes an HDF-lite byte slice, verifying magic and CRC.
func Decode(data []byte) (*File, error) {
	if len(data) < len(Magic)+4 {
		return nil, fmt.Errorf("hdf: truncated stream (%d bytes)", len(data))
	}
	body, tail := data[:len(data)-4], data[len(data)-4:]
	if string(body[:8]) != string(Magic[:]) {
		return nil, fmt.Errorf("hdf: bad magic %q", body[:8])
	}
	if got, want := crc32.ChecksumIEEE(body), binary.LittleEndian.Uint32(tail); got != want {
		return nil, fmt.Errorf("hdf: CRC mismatch: file %08x, computed %08x", want, got)
	}
	d := &decoder{buf: body[8:]}
	f := NewFile()
	nattrs, err := d.u32()
	if err != nil {
		return nil, err
	}
	for i := uint32(0); i < nattrs; i++ {
		name, err := d.str()
		if err != nil {
			return nil, err
		}
		kind, err := d.byte()
		if err != nil {
			return nil, err
		}
		switch kind {
		case attrString:
			s, err := d.str()
			if err != nil {
				return nil, err
			}
			f.Attrs[name] = s
		case attrInt:
			v, err := d.u64()
			if err != nil {
				return nil, err
			}
			f.Attrs[name] = int64(v)
		case attrFloat:
			v, err := d.u64()
			if err != nil {
				return nil, err
			}
			f.Attrs[name] = math.Float64frombits(v)
		default:
			return nil, fmt.Errorf("hdf: attribute %q: unknown kind %d", name, kind)
		}
	}
	ndatasets, err := d.u32()
	if err != nil {
		return nil, err
	}
	for i := uint32(0); i < ndatasets; i++ {
		name, err := d.str()
		if err != nil {
			return nil, err
		}
		dtypeByte, err := d.byte()
		if err != nil {
			return nil, err
		}
		dtype := DType(dtypeByte)
		if dtype.Size() == 0 {
			return nil, fmt.Errorf("hdf: dataset %q: unknown dtype %d", name, dtypeByte)
		}
		rank, err := d.byte()
		if err != nil {
			return nil, err
		}
		dims := make([]int, rank)
		elems := 1
		for j := range dims {
			v, err := d.u32()
			if err != nil {
				return nil, err
			}
			dims[j] = int(v)
			elems *= dims[j]
		}
		nbytes, err := d.u64()
		if err != nil {
			return nil, err
		}
		if rank == 0 {
			elems = 0
		}
		if want := uint64(elems * dtype.Size()); nbytes != want {
			return nil, fmt.Errorf("hdf: dataset %q: %d bytes for dims %v of %v (want %d)", name, nbytes, dims, dtype, want)
		}
		raw, err := d.bytes(int(nbytes))
		if err != nil {
			return nil, err
		}
		ds := &Dataset{Name: name, DType: dtype, Dims: dims, raw: append([]byte(nil), raw...)}
		if err := f.Add(ds); err != nil {
			return nil, err
		}
	}
	if len(d.buf) != 0 {
		return nil, fmt.Errorf("hdf: %d trailing bytes", len(d.buf))
	}
	return f, nil
}

// WriteFile encodes f to path, replacing any existing file atomically via a
// temporary file and rename, so a crawler never observes a half-written
// granule.
func WriteFile(path string, f *File) error {
	tmp := path + ".tmp"
	out, err := os.Create(tmp)
	if err != nil {
		return err
	}
	if err := Write(out, f); err != nil {
		_ = out.Close() // the Write error is the one worth reporting
		os.Remove(tmp)
		return err
	}
	if err := out.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	return os.Rename(tmp, path)
}

// ReadFile decodes the granule at path.
func ReadFile(path string) (*File, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	f, err := Decode(data)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return f, nil
}

type decoder struct{ buf []byte }

func (d *decoder) bytes(n int) ([]byte, error) {
	if n < 0 || n > len(d.buf) {
		return nil, fmt.Errorf("hdf: truncated stream (need %d, have %d)", n, len(d.buf))
	}
	out := d.buf[:n]
	d.buf = d.buf[n:]
	return out, nil
}

func (d *decoder) byte() (uint8, error) {
	b, err := d.bytes(1)
	if err != nil {
		return 0, err
	}
	return b[0], nil
}

func (d *decoder) u32() (uint32, error) {
	b, err := d.bytes(4)
	if err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint32(b), nil
}

func (d *decoder) u64() (uint64, error) {
	b, err := d.bytes(8)
	if err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint64(b), nil
}

func (d *decoder) str() (string, error) {
	lb, err := d.bytes(2)
	if err != nil {
		return "", err
	}
	n := int(binary.LittleEndian.Uint16(lb))
	b, err := d.bytes(n)
	if err != nil {
		return "", err
	}
	return string(b), nil
}

func writeByte(w io.Writer, b uint8) error {
	_, err := w.Write([]byte{b})
	return err
}

func writeU32(w io.Writer, v uint32) error {
	var buf [4]byte
	binary.LittleEndian.PutUint32(buf[:], v)
	_, err := w.Write(buf[:])
	return err
}

func writeU64(w io.Writer, v uint64) error {
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], v)
	_, err := w.Write(buf[:])
	return err
}

func writeString(w io.Writer, s string) error {
	if len(s) > math.MaxUint16 {
		return fmt.Errorf("hdf: string too long (%d bytes)", len(s))
	}
	var buf [2]byte
	binary.LittleEndian.PutUint16(buf[:], uint16(len(s)))
	if _, err := w.Write(buf[:]); err != nil {
		return err
	}
	_, err := io.WriteString(w, s)
	return err
}
