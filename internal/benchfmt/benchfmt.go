// Package benchfmt defines the machine-readable benchmark record the
// repo commits per PR (BENCH_N.json): the document shape cmd/benchjson
// emits, and the throughput comparison cmd/benchdiff gates CI on.
package benchfmt

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"
)

// Host describes the machine the benchmarks ran on.
type Host struct {
	CPU    string `json:"cpu"`
	GOOS   string `json:"goos"`
	GOARCH string `json:"goarch"`
	CPUs   int    `json:"cpus"`
	// GOMAXPROCS is the scheduler parallelism the run actually had —
	// on a cgroup-limited host it can be far below CPUs, which changes
	// what the numbers mean.
	GOMAXPROCS int `json:"gomaxprocs,omitempty"`
	// AVX2 records whether the SIMD kernels were live; a record from a
	// generic-fallback run is not comparable to an accelerated one.
	AVX2 bool `json:"avx2,omitempty"`
}

// Document is one committed benchmark record.
type Document struct {
	PR         int                           `json:"pr"`
	Title      string                        `json:"title"`
	Date       string                        `json:"date"`
	Host       Host                          `json:"host"`
	Command    string                        `json:"command"`
	Benchmarks map[string]map[string]float64 `json:"benchmarks"`
	Notes      string                        `json:"notes,omitempty"`
}

// ReadFile loads one BENCH_N.json document.
func ReadFile(path string) (*Document, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var doc Document
	if err := json.Unmarshal(raw, &doc); err != nil {
		return nil, fmt.Errorf("benchfmt: %s: %w", path, err)
	}
	if len(doc.Benchmarks) == 0 {
		return nil, fmt.Errorf("benchfmt: %s: no benchmarks", path)
	}
	return &doc, nil
}

// Throughput metrics and their direction. Memory metrics (bytes_per_op,
// allocs_per_op) are reported but never gate: trading allocations for
// wall-clock is exactly the regression class this tool exists to catch,
// so only time and rate metrics can fail the diff.
var lowerIsBetter = map[string]bool{"ns_per_op": true}
var higherIsBetter = map[string]bool{"tiles_per_s": true, "gflops": true, "granules_per_s": true}

// Delta is one throughput metric's change between two records.
type Delta struct {
	Bench, Metric string
	Old, New      float64
	// Ratio is new/old; direction-aware interpretation is Regression's
	// job, the ratio is for display.
	Ratio      float64
	Regression bool
}

// Compare checks every throughput metric present in both documents and
// flags regressions beyond threshold (0.10 = 10% slower or 10% less
// throughput). Results are sorted by benchmark then metric; benchmarks
// present in only one document are skipped (bench sets change across
// PRs).
func Compare(oldDoc, newDoc *Document, threshold float64) []Delta {
	var out []Delta
	for bench, oldM := range oldDoc.Benchmarks {
		newM, ok := newDoc.Benchmarks[bench]
		if !ok {
			continue
		}
		for metric, oldV := range oldM {
			if !lowerIsBetter[metric] && !higherIsBetter[metric] {
				continue
			}
			newV, ok := newM[metric]
			if !ok || oldV == 0 {
				continue
			}
			d := Delta{Bench: bench, Metric: metric, Old: oldV, New: newV, Ratio: newV / oldV}
			if lowerIsBetter[metric] {
				d.Regression = d.Ratio > 1+threshold
			} else {
				d.Regression = d.Ratio < 1-threshold
			}
			out = append(out, d)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Bench != out[j].Bench {
			return out[i].Bench < out[j].Bench
		}
		return out[i].Metric < out[j].Metric
	})
	return out
}
