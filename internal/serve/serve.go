// Package serve is the workflow control plane's HTTP surface: a run
// API over one shared core.Engine. Clients POST a pipeline config and
// get back a run ID; N runs execute concurrently (bounded), each with
// its own metric registry labeled run=/tenant=; runs can be listed,
// inspected, canceled, and scraped individually, while the classic
// /metrics and /healthz endpoints aggregate across every retained run.
// This is the paper's §V.A pipeline-as-a-service step: the workflow
// stops being one process per campaign and becomes a long-lived
// service campaigns are submitted to.
package serve

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"

	"github.com/eoml/eoml/internal/core"
	"github.com/eoml/eoml/internal/metrics"
	"github.com/eoml/eoml/internal/pipereg"
)

// TenantHeader names the request header carrying the submitting
// tenant; empty means the shared default tenant.
const TenantHeader = "X-Eoml-Tenant"

// maxConfigBytes bounds a submitted config body; real configs are a
// few hundred bytes, so 1 MiB is generous without inviting abuse.
const maxConfigBytes = 1 << 20

// Options tunes a Server.
type Options struct {
	// MaxConcurrentRuns bounds how many runs execute at once; further
	// submissions queue as pending. Default 2.
	MaxConcurrentRuns int
	// RetainRuns bounds how many terminal runs stay inspectable (and how
	// many per-run registries stay reachable from /metrics); the oldest
	// are evicted beyond it. Default 16.
	RetainRuns int
}

// Server routes the run API. It implements http.Handler; mount it at
// the listener root.
type Server struct {
	engine *core.Engine
	runs   *pipereg.RunRegistry
	reg    *metrics.Registry // control-plane-level series (submissions, quota waits)
	mux    *http.ServeMux

	submitted *metrics.Counter
	rejected  *metrics.Counter
}

// New builds a control-plane server over an engine.
func New(engine *core.Engine, opts Options) *Server {
	if opts.MaxConcurrentRuns <= 0 {
		opts.MaxConcurrentRuns = 2
	}
	if opts.RetainRuns <= 0 {
		opts.RetainRuns = 16
	}
	s := &Server{
		engine: engine,
		runs:   pipereg.NewRunRegistry(opts.MaxConcurrentRuns, opts.RetainRuns),
		reg:    metrics.NewRegistry(),
		mux:    http.NewServeMux(),
	}
	s.submitted = s.reg.Counter("eoml_serve_runs_submitted_total",
		"Workflow runs accepted through POST /api/v1/runs.")
	s.rejected = s.reg.Counter("eoml_serve_runs_rejected_total",
		"Run submissions refused (unparsable or invalid configs).")
	s.reg.GaugeFunc("eoml_serve_runs_active",
		"Runs currently pending or running.", func() float64 {
			n := 0
			for _, rec := range s.runs.List() {
				if !rec.State.Terminal() {
					n++
				}
			}
			return float64(n)
		})
	engine.Quotas().Instrument(s.reg)
	if fl := engine.Fleet(); fl != nil {
		// Worker membership rides the control plane: workers register
		// and heartbeat here, and the eoml_fleet_* series land in the
		// aggregate /metrics exposition.
		fl.Instrument(s.reg)
		s.mux.Handle("/fleet/", fl.Handler())
	}

	s.mux.HandleFunc("POST /api/v1/runs", s.handleSubmit)
	s.mux.HandleFunc("GET /api/v1/runs", s.handleList)
	s.mux.HandleFunc("GET /api/v1/runs/{id}", s.handleGet)
	s.mux.HandleFunc("DELETE /api/v1/runs/{id}", s.handleCancel)
	s.mux.HandleFunc("GET /api/v1/runs/{id}/metrics", s.handleRunMetrics)
	s.mux.HandleFunc("GET /metrics", s.handleAggregateMetrics)
	s.mux.HandleFunc("GET /healthz", s.handleHealth)
	return s
}

// ServeHTTP dispatches to the run API.
func (s *Server) ServeHTTP(w http.ResponseWriter, req *http.Request) { s.mux.ServeHTTP(w, req) }

// Runs exposes the registry, for drivers that submit programmatically
// (the one-shot CLI path submits and waits through the same registry
// the HTTP API uses).
func (s *Server) Runs() *pipereg.RunRegistry { return s.runs }

// runView is the JSON rendering of one run.
type runView struct {
	pipereg.RunRecord
	Summary string `json:"summary,omitempty"`
}

func viewOf(rec pipereg.RunRecord) runView {
	v := runView{RunRecord: rec}
	if rep, ok := rec.Result.(*core.Report); ok && rep != nil {
		v.Summary = rep.Summary()
	}
	return v
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func writeError(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, map[string]string{"error": fmt.Sprintf(format, args...)})
}

// handleSubmit accepts a YAML pipeline config, builds an isolated run
// on the shared engine, and returns its ID without waiting for it.
func (s *Server) handleSubmit(w http.ResponseWriter, req *http.Request) {
	body, err := io.ReadAll(io.LimitReader(req.Body, maxConfigBytes+1))
	if err != nil {
		s.rejected.Inc()
		writeError(w, http.StatusBadRequest, "reading body: %v", err)
		return
	}
	if len(body) > maxConfigBytes {
		s.rejected.Inc()
		writeError(w, http.StatusRequestEntityTooLarge, "config exceeds %d bytes", maxConfigBytes)
		return
	}
	cfg, err := core.LoadConfig(body)
	if err != nil {
		s.rejected.Inc()
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	tenant := req.Header.Get(TenantHeader)
	id, err := s.runs.SubmitBuild(tenant, func(id string) (any, pipereg.RunFunc, error) {
		run, err := s.engine.NewRun(*cfg, core.RunOptions{ID: id, Tenant: tenant})
		if err != nil {
			return nil, nil, err
		}
		fn := func(ctx context.Context) (any, error) { return run.Run(ctx) }
		return run, fn, nil
	})
	if err != nil {
		s.rejected.Inc()
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	s.submitted.Inc()
	rec, _ := s.runs.Get(id)
	writeJSON(w, http.StatusAccepted, viewOf(rec))
}

// handleList renders every retained run in submission order.
func (s *Server) handleList(w http.ResponseWriter, req *http.Request) {
	recs := s.runs.List()
	views := make([]runView, len(recs))
	for i, rec := range recs {
		views[i] = viewOf(rec)
	}
	writeJSON(w, http.StatusOK, views)
}

func (s *Server) handleGet(w http.ResponseWriter, req *http.Request) {
	rec, ok := s.runs.Get(req.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, "no run %q", req.PathValue("id"))
		return
	}
	writeJSON(w, http.StatusOK, viewOf(rec))
}

// handleCancel aborts a pending or running run. Cancellation is
// asynchronous: 202 means the cancel signal was delivered, and the
// record reaches the canceled state when the run's stages unwind.
func (s *Server) handleCancel(w http.ResponseWriter, req *http.Request) {
	id := req.PathValue("id")
	rec, ok := s.runs.Get(id)
	if !ok {
		writeError(w, http.StatusNotFound, "no run %q", id)
		return
	}
	if !s.runs.Cancel(id) {
		writeError(w, http.StatusConflict, "run %s already %s", id, rec.State)
		return
	}
	rec, _ = s.runs.Get(id)
	writeJSON(w, http.StatusAccepted, viewOf(rec))
}

// handleRunMetrics scrapes one run's own registry — only its series,
// stamped with its run/tenant labels.
func (s *Server) handleRunMetrics(w http.ResponseWriter, req *http.Request) {
	rec, ok := s.runs.Get(req.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, "no run %q", req.PathValue("id"))
		return
	}
	run, ok := rec.Meta.(*core.Run)
	if !ok {
		writeError(w, http.StatusNotFound, "run %s has no registry", rec.ID)
		return
	}
	run.Metrics().ServeHTTP(w, req)
}

// handleAggregateMetrics merges the control-plane registry with every
// retained run's registry into one exposition. The merge happens per
// scrape over the registry's current retention window — nothing here
// holds a reference to an evicted run, so old registries stay
// garbage-collectable no matter how long the server lives.
func (s *Server) handleAggregateMetrics(w http.ResponseWriter, req *http.Request) {
	snapshots := [][]metrics.Family{s.reg.Snapshot()}
	for _, rec := range s.runs.List() {
		if run, ok := rec.Meta.(*core.Run); ok {
			snapshots = append(snapshots, run.Metrics().Snapshot())
		}
	}
	metrics.ExposeFamilies(w, req, metrics.MergeFamilies(snapshots...))
}

// runHealth is one run's entry in the aggregate health report.
type runHealth struct {
	ID      string                `json:"id"`
	State   pipereg.RunState      `json:"state"`
	Healthy bool                  `json:"healthy"`
	Stages  []metrics.StageHealth `json:"stages,omitempty"`
}

// handleHealth reports 200 while every live run's stages are healthy
// and 503 as soon as any run has a stalled or failed stage — the same
// contract the single-run /healthz had, widened over the fleet. An
// idle server (no live runs) is healthy.
func (s *Server) handleHealth(w http.ResponseWriter, req *http.Request) {
	allHealthy := true
	var views []runHealth
	for _, rec := range s.runs.List() {
		run, ok := rec.Meta.(*core.Run)
		if !ok {
			continue
		}
		healthy, stages := run.Health().Check()
		if !rec.State.Terminal() && !healthy {
			allHealthy = false
		}
		views = append(views, runHealth{
			ID:      rec.ID,
			State:   rec.State,
			Healthy: healthy || rec.State.Terminal(),
			Stages:  stages,
		})
	}
	status := http.StatusOK
	overall := "ok"
	if !allHealthy {
		status = http.StatusServiceUnavailable
		overall = "unhealthy"
	}
	writeJSON(w, status, map[string]any{"status": overall, "runs": views})
}
