package metrics

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"regexp"
	"strconv"
	"strings"
)

// PrometheusContentType is the text exposition format version served on
// /metrics.
const PrometheusContentType = "text/plain; version=0.0.4; charset=utf-8"

// ServeHTTP renders the registry: Prometheus text exposition by
// default, the JSON variant when the request asks for it with
// ?format=json or an Accept: application/json header.
func (r *Registry) ServeHTTP(w http.ResponseWriter, req *http.Request) {
	snap := r.Snapshot()
	if snap == nil {
		snap = []Family{}
	}
	ExposeFamilies(w, req, snap)
}

// ExposeFamilies serves a frozen family list the way Registry.ServeHTTP
// serves a live registry: Prometheus text exposition by default, JSON on
// request. The control plane uses it to expose a MergeFamilies view over
// several per-run registries.
func ExposeFamilies(w http.ResponseWriter, req *http.Request, fams []Family) {
	if req.URL.Query().Get("format") == "json" ||
		strings.Contains(req.Header.Get("Accept"), "application/json") {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		// An encode error means the client went away mid-write; nothing
		// sensible to do.
		_ = enc.Encode(fams)
		return
	}
	w.Header().Set("Content-Type", PrometheusContentType)
	_ = WriteFamilies(w, fams)
}

// WriteJSON renders the snapshot as a JSON array of families.
func (r *Registry) WriteJSON(w io.Writer) error {
	snap := r.Snapshot()
	if snap == nil {
		snap = []Family{}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(snap)
}

// WritePrometheus renders the snapshot in Prometheus text exposition
// format (one HELP and TYPE line per family, then its series).
func (r *Registry) WritePrometheus(w io.Writer) error {
	return WriteFamilies(w, r.Snapshot())
}

// WriteFamilies renders a frozen family list — a single registry's
// snapshot or a MergeFamilies result — in Prometheus text exposition
// format.
func WriteFamilies(w io.Writer, fams []Family) error {
	bw := bufio.NewWriter(w)
	for _, fam := range fams {
		if fam.Help != "" {
			fmt.Fprintf(bw, "# HELP %s %s\n", fam.Name, escapeHelp(fam.Help))
		}
		fmt.Fprintf(bw, "# TYPE %s %s\n", fam.Name, fam.Kind)
		for _, s := range fam.Series {
			if fam.Kind == KindHistogram && s.Histogram != nil {
				writeHistogram(bw, fam.Name, s)
				continue
			}
			fmt.Fprintf(bw, "%s%s %s\n", fam.Name, renderLabels(s.Labels), formatValue(s.Value))
		}
	}
	return bw.Flush()
}

// writeHistogram renders one histogram series: cumulative _bucket lines
// (including the mandatory le="+Inf"), then _sum and _count.
func writeHistogram(w io.Writer, name string, s Series) {
	h := s.Histogram
	for i, bound := range h.Bounds {
		labels := append(append([]Label(nil), s.Labels...), Label{Key: "le", Value: formatValue(bound)})
		fmt.Fprintf(w, "%s_bucket%s %d\n", name, renderLabels(labels), h.Cumulative[i])
	}
	inf := append(append([]Label(nil), s.Labels...), Label{Key: "le", Value: "+Inf"})
	fmt.Fprintf(w, "%s_bucket%s %d\n", name, renderLabels(inf), h.Count)
	fmt.Fprintf(w, "%s_sum%s %s\n", name, renderLabels(s.Labels), formatValue(h.Sum))
	fmt.Fprintf(w, "%s_count%s %d\n", name, renderLabels(s.Labels), h.Count)
}

// renderLabels renders {k="v",...} or "" for an unlabeled series.
func renderLabels(labels []Label) string {
	if len(labels) == 0 {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, l := range labels {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Key)
		b.WriteString(`="`)
		b.WriteString(escapeLabelValue(l.Value))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

// escapeLabelValue escapes backslash, double quote, and newline per the
// exposition format.
func escapeLabelValue(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, "\n", `\n`)
	return strings.ReplaceAll(v, `"`, `\"`)
}

// escapeHelp escapes backslash and newline in HELP text.
func escapeHelp(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	return strings.ReplaceAll(v, "\n", `\n`)
}

// formatValue renders a sample value the way Prometheus expects
// (shortest float form; integers without an exponent).
func formatValue(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// sampleRE matches one exposition sample line: name, optional label
// block, and a float value (Prometheus accepts +Inf/-Inf/NaN too).
var sampleRE = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[a-zA-Z_][a-zA-Z0-9_]*="(\\.|[^"\\])*"(,[a-zA-Z_][a-zA-Z0-9_]*="(\\.|[^"\\])*")*\})? (NaN|[+-]?Inf|[+-]?[0-9].*)$`)

// typeRE matches a TYPE comment and captures the declared kind.
var typeRE = regexp.MustCompile(`^# TYPE ([a-zA-Z_:][a-zA-Z0-9_:]*) (counter|gauge|histogram|summary|untyped)$`)

// ValidatePrometheus checks that r holds well-formed text exposition
// format: every non-comment line parses as a sample, every sample's
// family has a preceding TYPE line (histogram samples may use the
// _bucket/_sum/_count suffixes), and no family is declared twice. It is
// a structural lint for tests, not a full Prometheus parser.
func ValidatePrometheus(r io.Reader) error {
	typed := map[string]string{}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<20)
	line := 0
	for sc.Scan() {
		line++
		text := sc.Text()
		if text == "" {
			continue
		}
		if strings.HasPrefix(text, "# TYPE ") {
			m := typeRE.FindStringSubmatch(text)
			if m == nil {
				return fmt.Errorf("line %d: malformed TYPE comment %q", line, text)
			}
			if _, dup := typed[m[1]]; dup {
				return fmt.Errorf("line %d: duplicate TYPE for %s", line, m[1])
			}
			typed[m[1]] = m[2]
			continue
		}
		if strings.HasPrefix(text, "#") {
			continue // HELP or free comment
		}
		if !sampleRE.MatchString(text) {
			return fmt.Errorf("line %d: malformed sample %q", line, text)
		}
		name := text
		if i := strings.IndexAny(name, "{ "); i >= 0 {
			name = name[:i]
		}
		base := name
		for _, suffix := range []string{"_bucket", "_sum", "_count"} {
			trimmed := strings.TrimSuffix(name, suffix)
			if trimmed != name && typed[trimmed] == "histogram" {
				base = trimmed
				break
			}
		}
		if _, ok := typed[base]; !ok {
			return fmt.Errorf("line %d: sample %s has no TYPE line", line, name)
		}
	}
	return sc.Err()
}
