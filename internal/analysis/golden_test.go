package analysis

import (
	"go/ast"
	"path/filepath"
	"regexp"
	"strings"
	"sync"
	"testing"
)

// sharedLoader amortizes stdlib type-checking across the fixture tests;
// the loader caches packages, so context/time/sync/os check once.
var (
	loaderOnce sync.Once
	loaderErr  error
	loader     *Loader
)

func fixtureLoader(t *testing.T) *Loader {
	t.Helper()
	loaderOnce.Do(func() {
		root, err := FindModuleRoot(".")
		if err != nil {
			loaderErr = err
			return
		}
		loader, loaderErr = NewLoader(root)
	})
	if loaderErr != nil {
		t.Fatalf("loader: %v", loaderErr)
	}
	return loader
}

// want is one `// want "regex"` expectation in a fixture file.
type want struct {
	file    string
	line    int
	pattern *regexp.Regexp
	matched bool
}

var wantRE = regexp.MustCompile(`// want (.*)$`)

// collectWants parses the `// want "..."` expectations from the loaded
// fixture files. Several quoted patterns may follow one want marker.
func collectWants(t *testing.T, l *Loader, files []*ast.File) []*want {
	t.Helper()
	var wants []*want
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := wantRE.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pos := l.Fset.Position(c.Pos())
				for _, q := range strings.Split(strings.TrimSpace(m[1]), `" "`) {
					q = strings.Trim(q, `"`)
					re, err := regexp.Compile(q)
					if err != nil {
						t.Fatalf("%s: bad want pattern %q: %v", pos, q, err)
					}
					wants = append(wants, &want{file: pos.Filename, line: pos.Line, pattern: re})
				}
			}
		}
	}
	return wants
}

// runAnyAnalyzer dispatches on analyzer kind: per-package analyzers run
// directly over the fixture package, interprocedural ones get a call
// graph built over it (a fixture is a one-package module).
func runAnyAnalyzer(a *Analyzer, l *Loader, pkg *Package) []Diagnostic {
	if a.RunModule != nil {
		return RunModuleAnalyzer(a, l.Fset, []*Package{pkg})
	}
	return RunAnalyzer(a, l.Fset, pkg)
}

// runFixture loads testdata/src/<name> and checks the analyzer's output
// (after ignore-directive filtering) against the want expectations.
func runFixture(t *testing.T, a *Analyzer) {
	l := fixtureLoader(t)
	dir := filepath.Join("testdata", "src", a.Name)
	abs, err := filepath.Abs(dir)
	if err != nil {
		t.Fatal(err)
	}
	pkg, err := l.LoadDir(abs, a.Name)
	if err != nil {
		t.Fatalf("loading fixture %s: %v", dir, err)
	}
	known := map[string]bool{}
	for _, da := range DefaultAnalyzers() {
		known[da.Name] = true
	}
	diags := applyIgnores(runAnyAnalyzer(a, l, pkg), collectIgnores(l.Fset, pkg.Files), known)
	wants := collectWants(t, l, pkg.Files)
	if len(wants) == 0 {
		t.Fatalf("fixture %s has no want expectations", dir)
	}

	for _, d := range diags {
		ok := false
		for _, w := range wants {
			if !w.matched && w.file == d.Pos.Filename && w.line == d.Pos.Line && w.pattern.MatchString(d.Message) {
				w.matched = true
				ok = true
				break
			}
		}
		if !ok {
			t.Errorf("unexpected diagnostic: %s", d)
		}
	}
	for _, w := range wants {
		if !w.matched {
			t.Errorf("%s:%d: expected diagnostic matching %q, got none", w.file, w.line, w.pattern)
		}
	}
}

func TestCtxSendFixture(t *testing.T)       { runFixture(t, CtxSend) }
func TestSleepPollFixture(t *testing.T)     { runFixture(t, SleepPoll) }
func TestLoneGoroutineFixture(t *testing.T) { runFixture(t, LoneGoroutine) }
func TestCloseCheckFixture(t *testing.T)    { runFixture(t, CloseCheck) }
func TestArenaPairFixture(t *testing.T)     { runFixture(t, ArenaPair) }
func TestSpanPairFixture(t *testing.T)      { runFixture(t, SpanPair) }
func TestPkgDocFixture(t *testing.T)        { runFixture(t, PkgDoc) }
func TestLockGuardFixture(t *testing.T)     { runFixture(t, LockGuard) }
func TestCtxFlowFixture(t *testing.T)       { runFixture(t, CtxFlow) }
func TestLockSleepFixture(t *testing.T)     { runFixture(t, LockSleep) }

// TestAnalyzerMetadata keeps the suite's self-description coherent.
func TestAnalyzerMetadata(t *testing.T) {
	seen := map[string]bool{}
	for _, a := range DefaultAnalyzers() {
		if a.Name == "" || a.Doc == "" {
			t.Fatalf("analyzer %+v is missing metadata", a)
		}
		if (a.Run == nil) == (a.RunModule == nil) {
			t.Fatalf("analyzer %s must set exactly one of Run and RunModule", a.Name)
		}
		if seen[a.Name] {
			t.Fatalf("duplicate analyzer name %s", a.Name)
		}
		seen[a.Name] = true
		if a.Name == "ignore" {
			t.Fatal("\"ignore\" is reserved for directive diagnostics")
		}
	}
}

// TestScoping pins each analyzer's path scope: ctxsend is orchestration
// code only, sleeppoll and lonegoroutine are library (internal/) code,
// the resource-pairing checks are module-wide.
func TestScoping(t *testing.T) {
	cases := []struct {
		analyzer *Analyzer
		pkgPath  string
		applies  bool
	}{
		{CtxSend, "github.com/eoml/eoml/internal/stage", true},
		{CtxSend, "github.com/eoml/eoml/internal/core", true},
		{CtxSend, "github.com/eoml/eoml/internal/watch", true},
		{CtxSend, "github.com/eoml/eoml/internal/laads", false},
		{CtxSend, "github.com/eoml/eoml/cmd/eoml", false},
		{SleepPoll, "github.com/eoml/eoml/internal/laads", true},
		{SleepPoll, "github.com/eoml/eoml/cmd/eoml", false},
		{SleepPoll, "github.com/eoml/eoml/examples/streaming", false},
		{LoneGoroutine, "github.com/eoml/eoml/internal/transfer", true},
		{LoneGoroutine, "github.com/eoml/eoml/examples/streaming", false},
		{LockGuard, "github.com/eoml/eoml/internal/pipereg", true},
		{LockGuard, "github.com/eoml/eoml/cmd/eoml", false},
		{CtxFlow, "github.com/eoml/eoml/internal/laads", true},
		{CtxFlow, "github.com/eoml/eoml/examples/streaming", false},
		{LockSleep, "github.com/eoml/eoml/internal/compute", true},
		{LockSleep, "github.com/eoml/eoml/cmd/eomlvet", false},
	}
	for _, c := range cases {
		if got := c.analyzer.AppliesTo(c.pkgPath); got != c.applies {
			t.Errorf("%s.AppliesTo(%s) = %v, want %v", c.analyzer.Name, c.pkgPath, got, c.applies)
		}
	}
	for _, a := range []*Analyzer{CloseCheck, ArenaPair, SpanPair, PkgDoc} {
		if a.AppliesTo != nil {
			t.Errorf("%s should be module-wide (nil AppliesTo)", a.Name)
		}
	}
}

// TestSeededViolationFailsGate demonstrates the acceptance criterion:
// the gate exits non-zero on a violation. Each fixture package seeds
// real violations, so each analyzer must produce a non-empty finding
// list there before ignore filtering.
func TestSeededViolationFailsGate(t *testing.T) {
	l := fixtureLoader(t)
	for _, a := range DefaultAnalyzers() {
		abs, err := filepath.Abs(filepath.Join("testdata", "src", a.Name))
		if err != nil {
			t.Fatal(err)
		}
		pkg, err := l.LoadDir(abs, a.Name)
		if err != nil {
			t.Fatalf("%s: %v", a.Name, err)
		}
		if diags := runAnyAnalyzer(a, l, pkg); len(diags) == 0 {
			t.Errorf("%s found nothing in its seeded fixture; the gate would pass a violation", a.Name)
		}
	}
}
