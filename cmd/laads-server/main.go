// Command laads-server runs the simulated NASA LAADS DAAC archive: an
// HTTP server generating synthetic MODIS granules on demand, with
// LAADS-style listing and download endpoints, optional token auth,
// bandwidth shaping, and a /metrics endpoint for the archive-side
// request, byte, and token-bucket-wait series.
//
// Usage:
//
//	laads-server -addr :8900 -scale 16 -token secret \
//	    -per-conn-mbps 4.2 -aggregate-mbps 15.5
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"

	"github.com/eoml/eoml/internal/laads"
	"github.com/eoml/eoml/internal/metrics"
)

func main() {
	addr := flag.String("addr", ":8900", "listen address")
	scale := flag.Int("scale", 16, "granule resolution divisor (1 = full 2030x1354 swaths)")
	token := flag.String("token", "", "require this Bearer token (empty disables auth)")
	perConn := flag.Float64("per-conn-mbps", 0, "per-connection bandwidth cap in MB/s (0 = unlimited)")
	aggregate := flag.Float64("aggregate-mbps", 0, "server-wide bandwidth cap in MB/s (0 = unlimited)")
	failRate := flag.Float64("fail-rate", 0, "inject 503 responses with this probability")
	flag.Parse()

	reg := metrics.NewRegistry()
	srv, err := laads.NewServer(laads.ServerConfig{
		ScaleDown:            *scale,
		Token:                *token,
		PerConnBytesPerSec:   int64(*perConn * 1e6),
		AggregateBytesPerSec: int64(*aggregate * 1e6),
		FailureRate:          *failRate,
		Metrics:              reg,
	})
	if err != nil {
		log.Fatalf("laads-server: %v", err)
	}
	mux := http.NewServeMux()
	mux.Handle("/metrics", reg)
	mux.Handle("/", srv)
	fmt.Printf("laads-server: serving synthetic MODIS archive on %s (%s)\n", *addr, srv)
	fmt.Printf("  listing:  GET /archive/MOD021KM/2022/1/\n")
	fmt.Printf("  download: GET /archive/MOD021KM/2022/1/<file>.hdf\n")
	fmt.Printf("  metrics:  GET /metrics\n")
	log.Fatal(http.ListenAndServe(*addr, mux))
}
