// Command eomlvet runs the repo's static-analysis suite (internal/analysis)
// over the module containing the working directory. It is the `make lint`
// gate: zero diagnostics exits 0, anything else prints editor-friendly
// `path/file.go:line:col: check: message` lines and exits 1.
//
// Usage:
//
//	eomlvet [-json] [./...]
//	eomlvet -list
//
// The only supported pattern is the whole module (`./...`, the default):
// the analyzers are cheap compared to type-checking, and the invariants
// they enforce are module-wide properties. Suppress a finding in-code
// with `//eomlvet:ignore <check> <rationale>` (see internal/analysis).
//
// -json switches the finding stream to JSON Lines (one object per
// finding: file, line, col, check, message). In the default text mode,
// when GITHUB_ACTIONS=true the findings are additionally emitted as
// `::error` workflow commands so they surface as inline pull-request
// annotations; JSON mode stays pure JSON for machine consumers.
package main

import (
	"flag"
	"fmt"
	"os"

	"github.com/eoml/eoml/internal/analysis"
)

func main() {
	list := flag.Bool("list", false, "list the checks in the suite and exit")
	jsonOut := flag.Bool("json", false, "emit findings as JSON Lines instead of text")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: eomlvet [-list] [-json] [./...]\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	analyzers := analysis.DefaultAnalyzers()
	if *list {
		for _, a := range analyzers {
			fmt.Printf("%-14s %s\n", a.Name, a.Doc)
		}
		return
	}
	for _, arg := range flag.Args() {
		if arg != "./..." {
			fmt.Fprintf(os.Stderr, "eomlvet: unsupported pattern %q (only ./... is supported)\n", arg)
			os.Exit(2)
		}
	}

	wd, err := os.Getwd()
	if err != nil {
		fatal(err)
	}
	root, err := analysis.FindModuleRoot(wd)
	if err != nil {
		fatal(err)
	}
	diags, err := analysis.RunModule(root, analyzers)
	if err != nil {
		fatal(err)
	}
	if *jsonOut {
		if err := analysis.WriteJSON(os.Stdout, diags); err != nil {
			fatal(err)
		}
	} else {
		for _, d := range diags {
			fmt.Println(d)
		}
		if os.Getenv("GITHUB_ACTIONS") == "true" {
			analysis.WriteGitHubAnnotations(os.Stdout, diags)
		}
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "eomlvet: %d finding(s)\n", len(diags))
		os.Exit(1)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "eomlvet:", err)
	os.Exit(2)
}
