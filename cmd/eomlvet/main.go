// Command eomlvet runs the repo's static-analysis suite (internal/analysis)
// over the module containing the working directory. It is the `make lint`
// gate: zero diagnostics exits 0, anything else prints editor-friendly
// `path/file.go:line:col: check: message` lines and exits 1.
//
// Usage:
//
//	eomlvet [./...]
//	eomlvet -list
//
// The only supported pattern is the whole module (`./...`, the default):
// the analyzers are cheap compared to type-checking, and the invariants
// they enforce are module-wide properties. Suppress a finding in-code
// with `//eomlvet:ignore <check> <rationale>` (see internal/analysis).
package main

import (
	"flag"
	"fmt"
	"os"

	"github.com/eoml/eoml/internal/analysis"
)

func main() {
	list := flag.Bool("list", false, "list the checks in the suite and exit")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: eomlvet [-list] [./...]\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	analyzers := analysis.DefaultAnalyzers()
	if *list {
		for _, a := range analyzers {
			fmt.Printf("%-14s %s\n", a.Name, a.Doc)
		}
		return
	}
	for _, arg := range flag.Args() {
		if arg != "./..." {
			fmt.Fprintf(os.Stderr, "eomlvet: unsupported pattern %q (only ./... is supported)\n", arg)
			os.Exit(2)
		}
	}

	wd, err := os.Getwd()
	if err != nil {
		fatal(err)
	}
	root, err := analysis.FindModuleRoot(wd)
	if err != nil {
		fatal(err)
	}
	diags, err := analysis.RunModule(root, analyzers)
	if err != nil {
		fatal(err)
	}
	for _, d := range diags {
		fmt.Println(d)
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "eomlvet: %d finding(s)\n", len(diags))
		os.Exit(1)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "eomlvet:", err)
	os.Exit(2)
}
