package fleet

import (
	"context"
	"fmt"
	"os"
	"path/filepath"
	"sync"

	"github.com/eoml/eoml/internal/aicca"
	"github.com/eoml/eoml/internal/compute"
	"github.com/eoml/eoml/internal/hdf"
	"github.com/eoml/eoml/internal/laads"
	"github.com/eoml/eoml/internal/modis"
	"github.com/eoml/eoml/internal/ricc"
	"github.com/eoml/eoml/internal/tensor"
	"github.com/eoml/eoml/internal/tile"
)

// Names of the task functions every worker serves. Task arguments ship
// granule *references* — archive coordinates and shared-storage paths —
// never pixel bytes.
const (
	PreprocessFunction = "eoml.preprocess_granule"
	LabelFunction      = "eoml.label_file"
)

// PreprocessArgs is the wire form of one tile-extraction task: which
// granule, where its HDF triple lives (DataDir), where the tile NetCDF
// goes (TileDir), and optionally which archive to fetch missing inputs
// from — the multi-facility case where the worker does not share the
// submitter's filesystem.
type PreprocessArgs struct {
	Satellite    string  `json:"satellite"`
	Year         int     `json:"year"`
	DOY          int     `json:"doy"`
	Index        int     `json:"index"`
	DataDir      string  `json:"data_dir"`
	TileDir      string  `json:"tile_dir"`
	TilePixels   int     `json:"tile_pixels"`
	MinCloudFrac float64 `json:"min_cloud_frac"`
	ArchiveURL   string  `json:"archive_url,omitempty"`
	ArchiveToken string  `json:"archive_token,omitempty"`
}

// Args flattens to the compute fabric's map form.
func (a PreprocessArgs) Args() map[string]any {
	return map[string]any{
		"satellite": a.Satellite, "year": a.Year, "doy": a.DOY, "index": a.Index,
		"data_dir": a.DataDir, "tile_dir": a.TileDir,
		"tile_pixels": a.TilePixels, "min_cloud_frac": a.MinCloudFrac,
		"archive_url": a.ArchiveURL, "archive_token": a.ArchiveToken,
	}
}

// PreprocessResult reports one granule's extraction outcome.
type PreprocessResult struct {
	Tiles int    `json:"tiles"`
	File  string `json:"file"`
}

// ParsePreprocessResult decodes a task result from its wire form.
func ParsePreprocessResult(v any) (PreprocessResult, error) {
	m, ok := v.(map[string]any)
	if !ok {
		return PreprocessResult{}, fmt.Errorf("fleet: preprocess result is %T, want map", v)
	}
	return PreprocessResult{Tiles: intFrom(m, "tiles"), File: stringFrom(m, "file")}, nil
}

// LabelArgs is the wire form of one inference task: the tile file to
// label in place plus the model/codebook refs the worker loads (and
// caches) from shared storage.
type LabelArgs struct {
	File      string `json:"file"`
	Model     string `json:"model"`
	Codebook  string `json:"codebook"`
	Precision string `json:"precision,omitempty"`
}

// Args flattens to the compute fabric's map form.
func (a LabelArgs) Args() map[string]any {
	return map[string]any{
		"file": a.File, "model": a.Model, "codebook": a.Codebook, "precision": a.Precision,
	}
}

// LabelResult reports one file's labeling outcome.
type LabelResult struct {
	Labeled int `json:"labeled"`
}

// ParseLabelResult decodes a task result from its wire form.
func ParseLabelResult(v any) (LabelResult, error) {
	m, ok := v.(map[string]any)
	if !ok {
		return LabelResult{}, fmt.Errorf("fleet: label result is %T, want map", v)
	}
	return LabelResult{Labeled: intFrom(m, "labeled")}, nil
}

// Kernels hosts the worker-side task implementations against shared
// per-process state: one decode arena for tile extraction and a
// model/codebook cache for inference (loaded once per pair, like
// core.Engine's weights cache).
type Kernels struct {
	arena *tensor.ShardedArena

	mu sync.Mutex
	// models caches loaded labelers keyed "modelPath|codebookPath".
	// guarded by mu
	models map[string]*aicca.Labeler
}

// NewKernels builds the worker kernel set.
func NewKernels() *Kernels {
	return &Kernels{arena: tensor.NewShardedArena(), models: map[string]*aicca.Labeler{}}
}

// Register adds both task functions to a compute registry.
func (k *Kernels) Register(reg *compute.Registry) error {
	if err := reg.Register(PreprocessFunction, k.preprocess); err != nil {
		return err
	}
	return reg.Register(LabelFunction, k.label)
}

// preprocess is the tile-extraction kernel. Inputs absent from DataDir
// are fetched from the archive when credentials are supplied, so a
// worker at another facility only needs the granule reference. The
// output NetCDF is written via an atomic temp+rename with fully
// deterministic content, which is what makes duplicated leases (steal,
// requeue-after-partial) safe.
func (k *Kernels) preprocess(ctx context.Context, args map[string]any) (any, error) {
	sat, err := parseSatellite(stringFrom(args, "satellite"))
	if err != nil {
		return nil, err
	}
	g := modis.GranuleID{
		Satellite: sat,
		Year:      intFrom(args, "year"),
		DOY:       intFrom(args, "doy"),
		Index:     intFrom(args, "index"),
	}
	if err := g.Validate(); err != nil {
		return nil, err
	}
	dataDir := stringFrom(args, "data_dir")
	tileDir := stringFrom(args, "tile_dir")
	if dataDir == "" || tileDir == "" {
		return nil, fmt.Errorf("fleet: preprocess needs data_dir and tile_dir")
	}

	var client *laads.Client
	if url := stringFrom(args, "archive_url"); url != "" {
		client = laads.NewClient(url, stringFrom(args, "archive_token"))
	}
	read := func(kind modis.Kind) (*hdf.File, error) {
		prod := modis.Product{Satellite: g.Satellite, Kind: kind}
		name := modis.FileName(prod, g)
		path := filepath.Join(dataDir, name)
		if _, err := os.Stat(path); os.IsNotExist(err) && client != nil {
			if err := os.MkdirAll(dataDir, 0o755); err != nil {
				return nil, err
			}
			if _, err := client.Download(ctx, prod, g.Year, g.DOY, name, dataDir); err != nil {
				return nil, fmt.Errorf("fetch %s: %w", name, err)
			}
		}
		return hdf.ReadFile(path)
	}
	mod02, err := read(modis.L1B)
	if err != nil {
		return nil, err
	}
	mod03, err := read(modis.Geo)
	if err != nil {
		return nil, err
	}
	mod06, err := read(modis.Cloud)
	if err != nil {
		return nil, err
	}
	res, err := tile.Extract(mod02, mod03, mod06, tile.Options{
		TileSize:     intFrom(args, "tile_pixels"),
		MinCloudFrac: floatFrom(args, "min_cloud_frac"),
		Arena:        k.arena,
	})
	if err != nil {
		return nil, err
	}
	if len(res.Tiles) == 0 {
		return PreprocessResult{}.asMap(), nil // night granule or no ocean clouds
	}
	if err := os.MkdirAll(tileDir, 0o755); err != nil {
		return nil, err
	}
	// Same name core's in-process path produces, so local and fleet
	// distribution yield byte-identical layouts on shared storage.
	name := fmt.Sprintf("tiles.%s.A%04d%03d.%s.nc", g.Satellite.Prefix(), g.Year, g.DOY, g.HHMM())
	path := filepath.Join(tileDir, name)
	if err := tile.WriteNetCDF(path, res.Tiles); err != nil {
		return nil, err
	}
	return PreprocessResult{Tiles: len(res.Tiles), File: path}.asMap(), nil
}

func (r PreprocessResult) asMap() map[string]any {
	return map[string]any{"tiles": r.Tiles, "file": r.File}
}

// label is the inference kernel: load (or reuse) the labeler for the
// model/codebook pair and label the tile file in place. AppendLabels
// rewrites via temp+rename, and labels are deterministic for a given
// precision, so duplicated leases are idempotent here too.
func (k *Kernels) label(ctx context.Context, args map[string]any) (any, error) {
	file := stringFrom(args, "file")
	model := stringFrom(args, "model")
	codebook := stringFrom(args, "codebook")
	if file == "" || model == "" || codebook == "" {
		return nil, fmt.Errorf("fleet: label needs file, model and codebook")
	}
	prec, err := aicca.ParsePrecision(stringFrom(args, "precision"))
	if err != nil {
		return nil, err
	}
	l, err := k.labelerFor(model, codebook)
	if err != nil {
		return nil, err
	}
	if l.Precision != prec {
		// Shallow per-task override, same trick as aicca's BatchConfig:
		// the shared model/codebook pointers stay cached.
		ll := *l
		ll.Precision = prec
		l = &ll
	}
	n, err := l.LabelFile(file)
	if err != nil {
		return nil, err
	}
	return map[string]any{"labeled": n}, nil
}

// labelerFor loads a labeler once per model/codebook pair.
func (k *Kernels) labelerFor(model, codebook string) (*aicca.Labeler, error) {
	key := model + "|" + codebook
	k.mu.Lock()
	defer k.mu.Unlock()
	if l, ok := k.models[key]; ok {
		return l, nil
	}
	m, err := ricc.Load(model)
	if err != nil {
		return nil, fmt.Errorf("fleet: load model: %w", err)
	}
	cb, err := ricc.LoadCodebook(codebook)
	if err != nil {
		return nil, fmt.Errorf("fleet: load codebook: %w", err)
	}
	l, err := aicca.NewLabeler(m, cb)
	if err != nil {
		return nil, err
	}
	k.models[key] = l
	return l, nil
}

func parseSatellite(s string) (modis.Satellite, error) {
	switch s {
	case "Terra":
		return modis.Terra, nil
	case "Aqua":
		return modis.Aqua, nil
	}
	return 0, fmt.Errorf("fleet: unknown satellite %q", s)
}

// intFrom tolerates the JSON hop turning ints into float64s.
func intFrom(m map[string]any, key string) int {
	switch v := m[key].(type) {
	case int:
		return v
	case float64:
		return int(v)
	}
	return 0
}

func floatFrom(m map[string]any, key string) float64 {
	switch v := m[key].(type) {
	case float64:
		return v
	case int:
		return float64(v)
	}
	return 0
}

func stringFrom(m map[string]any, key string) string {
	s, _ := m[key].(string)
	return s
}
