package analysis

// CtxFlow closes the gap ctxsend leaves open: ctxsend proves each
// channel op in orchestration code sits under a select with a ctx.Done
// case, but says nothing about a function that buries its waiting three
// calls deep. CtxFlow is transitive — the MayBlock fact propagates
// bottom-up over the call graph, stopping at calls into context-taking
// callees (a cancellable callee blocks only as long as its caller
// lets it, so the obligation transfers to the context it was given).
//
// A function is then flagged when it may block un-cancellably and the
// context plumbing cannot reach it: it has no context.Context parameter
// of its own, and at least one call path into it starts from a function
// without one (or from a goroutine launch, which severs the caller's
// context). Passing context.Background()/TODO() inline at a call site
// counts as blocking — a dead context revives the un-cancellable wait.
var CtxFlow = &Analyzer{
	Name: "ctxflow",
	Doc: "functions that may block un-cancellably must take a context.Context " +
		"or be reachable only from functions that do",
	AppliesTo: internalOnly,
	RunModule: runCtxFlow,
}

func runCtxFlow(pass *ModulePass) {
	g, facts := pass.Graph, pass.Facts

	// protected(f): f takes a context itself, or every in-module call
	// site sits in a protected caller (fixpoint, monotone upward). A
	// goroutine launch never confers protection — the spawned frame
	// outlives the caller's context unless one is passed explicitly.
	protected := map[*FuncNode]bool{}
	for _, node := range g.Declared {
		protected[node] = facts.TakesCtx[node]
	}
	for changed := true; changed; {
		changed = false
		for _, node := range g.Declared {
			if protected[node] || len(node.In) == 0 {
				continue
			}
			all := true
			for _, site := range node.In {
				if site.Go || site.Caller.Decl == nil || !protected[site.Caller] {
					all = false
					break
				}
			}
			if all {
				protected[node] = true
				changed = true
			}
		}
	}

	for _, node := range g.Declared {
		if !pass.InScope(node.Pkg) || protected[node] {
			continue
		}
		cause := facts.MayBlock[node]
		if cause == nil {
			continue
		}
		pass.Reportf(node.Decl.Name.Pos(),
			"%s may block un-cancellably (%s) but neither takes a context.Context nor is reached only from functions that do%s",
			funcLabel(node.Fn), cause.Chain(), entryNote(node))
	}
}

// entryNote explains why protection fails when it is not obvious from
// the signature alone.
func entryNote(node *FuncNode) string {
	if len(node.In) == 0 {
		return " (no in-module callers: it is an entry point)"
	}
	for _, site := range node.In {
		if site.Go {
			return " (launched as a goroutine by " + callerLabel(site) + ")"
		}
	}
	for _, site := range node.In {
		if site.Caller.Decl != nil {
			return " (e.g. called from " + callerLabel(site) + ")"
		}
	}
	return ""
}

func callerLabel(site *CallSite) string {
	if site.Caller == nil || site.Caller.Fn == nil {
		return "<unknown>"
	}
	return funcLabel(site.Caller.Fn)
}
