package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// LockSleep flags blocking while a mutex is held — the failure mode
// that turns one slow granule fetch into a stalled control plane: a
// method takes the registry lock, then sleeps, waits on a channel, or
// calls into a function that (transitively) does. Every other locker
// queues behind the wait, including the HTTP handlers the run API
// serves status from.
//
// Held state comes from the same branch-aware simulation as lockguard;
// "may block" for callees is the raw transitive fact (a cancellable
// wait still holds the mutex while it waits, so taking a context does
// not excuse the callee here). sync primitives themselves (Unlock,
// Cond.Wait) are exempt — bounded handoffs are how locks work.
var LockSleep = &Analyzer{
	Name: "locksleep",
	Doc: "no blocking operation — sleep, channel op, select wait, or call " +
		"into a function that may block — while holding a mutex",
	AppliesTo: internalOnly,
	RunModule: runLockSleep,
}

func runLockSleep(pass *ModulePass) {
	seen := map[token.Pos]bool{}
	flag := func(pos token.Pos, held heldSet, what string) {
		if seen[pos] {
			return
		}
		seen[pos] = true
		pass.Reportf(pos, "%s while holding %s", what, heldLabel(held))
	}
	for _, node := range pass.Graph.Declared {
		if !pass.InScope(node.Pkg) {
			continue
		}
		info := node.Pkg.Info
		simulateLocks(node.Decl, info, func(n ast.Node, held heldSet, flags visitFlags) {
			// `go f()` returns immediately; deferred calls run after the
			// scope's deferred Unlocks are already queued to release.
			if len(held) == 0 || flags.Go || flags.Deferred {
				return
			}
			switch n := n.(type) {
			case *ast.CallExpr:
				fn := calleeFunc(info, n)
				switch {
				case isPkgFunc(fn, "time", "Sleep"):
					flag(n.Pos(), held, "calls time.Sleep")
				case isPkgFunc(fn, "net/http", "Get") || isPkgFunc(fn, "net/http", "Post") ||
					isPkgFunc(fn, "net/http", "PostForm") || isPkgFunc(fn, "net/http", "Head"):
					flag(n.Pos(), held, "calls net/http."+fn.Name())
				case fn != nil:
					callee := pass.Graph.Nodes[fn]
					if callee == nil {
						return
					}
					if cause := pass.Facts.MayBlockRaw[callee]; cause != nil {
						flag(n.Pos(), held, "calls "+funcLabel(fn)+", which "+cause.Chain()+",")
					}
				}
			case *ast.SendStmt:
				if !flags.SelectComm {
					flag(n.Pos(), held, "sends on a channel")
				}
			case *ast.UnaryExpr:
				if n.Op == token.ARROW && !flags.SelectComm {
					flag(n.Pos(), held, "receives from a channel")
				}
			case *ast.SelectStmt:
				if !selectHasDefault(n) {
					flag(n.Pos(), held, "waits in a select")
				}
			case *ast.RangeStmt:
				if _, ok := info.TypeOf(n.X).Underlying().(*types.Chan); ok {
					flag(n.Pos(), held, "ranges over a channel")
				}
			}
		})
	}
}

// selectHasDefault reports whether sel can skip communication entirely.
// Unlike ctxflow's selectCanBail, a cancellation case is not enough
// here: a select waiting on ctx.Done() still holds the mutex while it
// waits.
func selectHasDefault(sel *ast.SelectStmt) bool {
	for _, clause := range sel.Body.List {
		if cc, ok := clause.(*ast.CommClause); ok && cc.Comm == nil {
			return true
		}
	}
	return false
}

// heldLabel renders the held mutexes for a message ("r.mu" or
// "mu, pool.mu").
func heldLabel(held heldSet) string {
	var names []string
	for k := range held {
		var parts []string
		if k.base != nil {
			parts = append(parts, k.base.Name())
		}
		if k.field != nil {
			parts = append(parts, k.field.Name())
		}
		names = append(names, strings.Join(parts, "."))
	}
	sort.Strings(names)
	return strings.Join(names, ", ")
}
