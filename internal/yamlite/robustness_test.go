package yamlite

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

// Parse handles user-authored workflow configs; arbitrary text must never
// panic or loop.

func TestParseNeverPanicsOnRandomText(t *testing.T) {
	alphabet := []rune("abz: -\"'[]{}#\n\t0123456789.~|&*!%αβ")
	prop := func(seed int64, n uint16) (ok bool) {
		defer func() {
			if recover() != nil {
				ok = false
			}
		}()
		r := rand.New(rand.NewSource(seed))
		var b strings.Builder
		for i := 0; i < int(n)%2048; i++ {
			b.WriteRune(alphabet[r.Intn(len(alphabet))])
		}
		_, _ = Parse([]byte(b.String()))
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestParseNeverPanicsOnRandomBytes(t *testing.T) {
	prop := func(data []byte) (ok bool) {
		defer func() {
			if recover() != nil {
				ok = false
			}
		}()
		_, _ = Parse(data)
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestDeeplyNestedDocumentTerminates(t *testing.T) {
	var b strings.Builder
	for depth := 0; depth < 200; depth++ {
		b.WriteString(strings.Repeat(" ", depth*2))
		b.WriteString("k:\n")
	}
	if _, err := Parse([]byte(b.String())); err != nil {
		// Deep nesting is fine to reject; it must simply not hang.
		t.Logf("deep nesting rejected: %v", err)
	}
}
