package tensor

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewAndReshape(t *testing.T) {
	x := New(2, 3, 4)
	if x.Len() != 24 || len(x.Data) != 24 {
		t.Fatalf("len = %d", x.Len())
	}
	y := x.Reshape(6, 4)
	if y.Shape[0] != 6 || y.Shape[1] != 4 {
		t.Fatalf("reshape = %v", y.Shape)
	}
	y.Data[0] = 7
	if x.Data[0] != 7 {
		t.Fatal("reshape must share storage")
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("volume-changing reshape did not panic")
			}
		}()
		x.Reshape(5, 5)
	}()
}

func TestMatMulKnownValues(t *testing.T) {
	a := FromSlice([]float32{1, 2, 3, 4, 5, 6}, 2, 3)
	b := FromSlice([]float32{7, 8, 9, 10, 11, 12}, 3, 2)
	c := MatMul(a, b)
	want := []float32{58, 64, 139, 154}
	for i := range want {
		if c.Data[i] != want[i] {
			t.Fatalf("C = %v, want %v", c.Data, want)
		}
	}
}

func TestMatMulTransposesAgree(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	a := New(5, 7)
	b := New(7, 4)
	a.Randn(r, 1)
	b.Randn(r, 1)
	c := MatMul(a, b)

	// Aᵀ stored transposed, then MatMulTA must agree.
	at := New(7, 5)
	for i := 0; i < 5; i++ {
		for j := 0; j < 7; j++ {
			at.Data[j*5+i] = a.Data[i*7+j]
		}
	}
	c2 := MatMulTA(at, b)
	// Bᵀ stored transposed, then MatMulTB must agree.
	bt := New(4, 7)
	for i := 0; i < 7; i++ {
		for j := 0; j < 4; j++ {
			bt.Data[j*7+i] = b.Data[i*4+j]
		}
	}
	c3 := MatMulTB(a, bt)
	for i := range c.Data {
		if math.Abs(float64(c.Data[i]-c2.Data[i])) > 1e-4 {
			t.Fatalf("TA mismatch at %d: %v vs %v", i, c.Data[i], c2.Data[i])
		}
		if math.Abs(float64(c.Data[i]-c3.Data[i])) > 1e-4 {
			t.Fatalf("TB mismatch at %d: %v vs %v", i, c.Data[i], c3.Data[i])
		}
	}
}

func TestMatMulShapePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("shape mismatch did not panic")
		}
	}()
	MatMul(New(2, 3), New(4, 2))
}

func TestIm2ColMatchesDirectConv(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	for _, cfg := range []struct{ n, inC, outC, k, stride, pad, h, w int }{
		{2, 3, 4, 3, 1, 1, 8, 8},
		{1, 6, 8, 3, 2, 1, 16, 16},
		{3, 2, 2, 5, 2, 2, 9, 11},
		{1, 1, 1, 1, 1, 0, 4, 4},
	} {
		g, err := NewConvGeom(cfg.inC, cfg.outC, cfg.k, cfg.stride, cfg.pad, cfg.h, cfg.w)
		if err != nil {
			t.Fatal(err)
		}
		x := New(cfg.n, cfg.inC, cfg.h, cfg.w)
		x.Randn(r, 1)
		w := New(cfg.outC, cfg.inC, cfg.k, cfg.k)
		w.Randn(r, 0.5)
		bias := New(cfg.outC)
		bias.Randn(r, 0.1)

		direct := ConvDirect(x, w, bias, g)

		cols := Im2Col(x, g)
		wmat := New(cfg.inC*cfg.k*cfg.k, cfg.outC)
		for oc := 0; oc < cfg.outC; oc++ {
			for i := 0; i < cfg.inC*cfg.k*cfg.k; i++ {
				wmat.Data[i*cfg.outC+oc] = w.Data[oc*cfg.inC*cfg.k*cfg.k+i]
			}
		}
		prod := MatMul(cols, wmat) // [n*oh*ow, outC]
		// Rearrange to NCHW and add bias.
		viaCols := New(cfg.n, cfg.outC, g.OutH, g.OutW)
		for b := 0; b < cfg.n; b++ {
			for oy := 0; oy < g.OutH; oy++ {
				for ox := 0; ox < g.OutW; ox++ {
					row := (b*g.OutH+oy)*g.OutW + ox
					for oc := 0; oc < cfg.outC; oc++ {
						viaCols.Data[((b*cfg.outC+oc)*g.OutH+oy)*g.OutW+ox] = prod.Data[row*cfg.outC+oc] + bias.Data[oc]
					}
				}
			}
		}
		for i := range direct.Data {
			if math.Abs(float64(direct.Data[i]-viaCols.Data[i])) > 1e-3 {
				t.Fatalf("cfg %+v: mismatch at %d: %v vs %v", cfg, i, direct.Data[i], viaCols.Data[i])
			}
		}
	}
}

func TestCol2ImIsAdjointOfIm2Col(t *testing.T) {
	// <Im2Col(x), y> == <x, Col2Im(y)> for random x, y — the defining
	// property of an adjoint, which is exactly what backprop requires.
	r := rand.New(rand.NewSource(3))
	g, err := NewConvGeom(3, 4, 3, 2, 1, 10, 8)
	if err != nil {
		t.Fatal(err)
	}
	n := 2
	x := New(n, g.InC, g.InH, g.InW)
	x.Randn(r, 1)
	cols := Im2Col(x, g)
	y := New(cols.Shape[0], cols.Shape[1])
	y.Randn(r, 1)
	lhs := Dot(cols, y)
	back := Col2Im(y, n, g)
	rhs := Dot(x, back)
	if math.Abs(lhs-rhs)/math.Max(1, math.Abs(lhs)) > 1e-4 {
		t.Fatalf("adjoint identity violated: %v vs %v", lhs, rhs)
	}
}

func TestRot90Composition(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	x := New(2, 3, 6, 6)
	x.Randn(r, 1)
	// Four rotations must be the identity.
	y := Rot90(Rot90(Rot90(Rot90(x, 1), 1), 1), 1)
	for i := range x.Data {
		if x.Data[i] != y.Data[i] {
			t.Fatal("rot90^4 != identity")
		}
	}
	// Rot90(x,2) must equal Rot90(Rot90(x,1),1).
	a := Rot90(x, 2)
	b := Rot90(Rot90(x, 1), 1)
	for i := range a.Data {
		if a.Data[i] != b.Data[i] {
			t.Fatal("rot90 composition mismatch")
		}
	}
	// Negative times behave modulo 4.
	c := Rot90(x, -1)
	d := Rot90(x, 3)
	for i := range c.Data {
		if c.Data[i] != d.Data[i] {
			t.Fatal("negative rotation mismatch")
		}
	}
}

func TestRot90KnownPattern(t *testing.T) {
	// 2×2 plane: [[1,2],[3,4]] rotated 90° CCW -> [[2,4],[1,3]].
	x := FromSlice([]float32{1, 2, 3, 4}, 1, 1, 2, 2)
	y := Rot90(x, 1)
	want := []float32{2, 4, 1, 3}
	for i := range want {
		if y.Data[i] != want[i] {
			t.Fatalf("rot90 = %v, want %v", y.Data, want)
		}
	}
}

func TestUpsampleDownsampleAdjoint(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	x := New(2, 3, 4, 5)
	x.Randn(r, 1)
	up := Upsample2x(x)
	if up.Shape[2] != 8 || up.Shape[3] != 10 {
		t.Fatalf("upsample shape %v", up.Shape)
	}
	y := New(2, 3, 8, 10)
	y.Randn(r, 1)
	lhs := Dot(up, y)
	rhs := Dot(x, Downsample2xSum(y))
	if math.Abs(lhs-rhs)/math.Max(1, math.Abs(lhs)) > 1e-4 {
		t.Fatalf("upsample adjoint violated: %v vs %v", lhs, rhs)
	}
}

func TestUpsampleValues(t *testing.T) {
	x := FromSlice([]float32{1, 2, 3, 4}, 1, 1, 2, 2)
	up := Upsample2x(x)
	want := []float32{1, 1, 2, 2, 1, 1, 2, 2, 3, 3, 4, 4, 3, 3, 4, 4}
	for i := range want {
		if up.Data[i] != want[i] {
			t.Fatalf("upsample = %v", up.Data)
		}
	}
}

// Property: matmul distributes over addition: (A+B)·C == A·C + B·C.
func TestMatMulLinearityProperty(t *testing.T) {
	prop := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		m, k, n := r.Intn(6)+1, r.Intn(6)+1, r.Intn(6)+1
		a, b, c := New(m, k), New(m, k), New(k, n)
		a.Randn(r, 1)
		b.Randn(r, 1)
		c.Randn(r, 1)
		sum := a.Clone()
		sum.AddInPlace(b)
		left := MatMul(sum, c)
		right := MatMul(a, c)
		right.AddInPlace(MatMul(b, c))
		for i := range left.Data {
			if math.Abs(float64(left.Data[i]-right.Data[i])) > 1e-3 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
