// Package cluster models an HPC machine for discrete-event simulation:
// nodes with exclusive cores and a fair-shared per-node I/O+memory
// bandwidth, plus a shared parallel filesystem — the resource structure
// of OLCF's ACE "Defiant" cluster on which the paper's scaling
// experiments ran.
//
// The contention model is the load-bearing piece of the reproduction:
// per-tile work has a core-private CPU phase and an I/O phase served by
// the node's fair-share bandwidth, so adding workers on one node
// saturates (the sub-linear curves of Fig. 4a/5a), while adding nodes
// adds private bandwidth and scales near-linearly (Fig. 4b/5b) until the
// shared filesystem would bind.
package cluster

import (
	"fmt"

	"github.com/eoml/eoml/internal/sim"
)

// Spec describes a machine.
type Spec struct {
	Name         string
	Nodes        int
	CoresPerNode int
	MemGBPerNode int
	// NodeIOCapacity is per-node fair-shared service capacity in
	// tile-units per virtual second.
	NodeIOCapacity float64
	// SharedFSCapacity is the Lustre-like global capacity in tile-units
	// per virtual second.
	SharedFSCapacity float64
}

// Defiant returns the calibrated spec of the 36-node ACE Defiant cluster
// (64-core EPYC 7662, 256 GB, Slingshot-10, 1.6 PB Lustre).
//
// NodeIOCapacity and the per-tile costs in the experiments package are
// jointly calibrated against Table I: one preprocessing worker yields
// ≈10.5 tiles/s, a fully loaded node plateaus near ≈38 tiles/s, and ten
// nodes at 8 workers/node sustain ≈270 tiles/s.
func Defiant() Spec {
	return Spec{
		Name:             "defiant",
		Nodes:            36,
		CoresPerNode:     64,
		MemGBPerNode:     256,
		NodeIOCapacity:   38.5,
		SharedFSCapacity: 36 * 38.5 * 4, // Lustre never binds at 36 nodes
	}
}

// Validate checks the spec.
func (s Spec) Validate() error {
	if s.Nodes <= 0 || s.CoresPerNode <= 0 {
		return fmt.Errorf("cluster: spec needs nodes and cores: %+v", s)
	}
	if s.NodeIOCapacity <= 0 || s.SharedFSCapacity <= 0 {
		return fmt.Errorf("cluster: spec needs positive bandwidths: %+v", s)
	}
	return nil
}

// Machine is an instantiated simulated cluster.
type Machine struct {
	Spec     Spec
	SharedFS *sim.FairShare

	k     *sim.Kernel
	nodes []*Node
}

// Node is one compute node.
type Node struct {
	ID    int
	Cores *sim.Server
	IO    *sim.FairShare
	k     *sim.Kernel
}

// New builds a machine on a kernel.
func New(k *sim.Kernel, spec Spec) (*Machine, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	m := &Machine{
		Spec:     spec,
		SharedFS: sim.NewFairShare(k, spec.SharedFSCapacity),
		k:        k,
	}
	for i := 0; i < spec.Nodes; i++ {
		m.nodes = append(m.nodes, &Node{
			ID:    i,
			Cores: sim.NewServer(k, spec.CoresPerNode),
			IO:    sim.NewFairShare(k, spec.NodeIOCapacity),
			k:     k,
		})
	}
	return m, nil
}

// Node returns node i.
func (m *Machine) Node(i int) (*Node, error) {
	if i < 0 || i >= len(m.nodes) {
		return nil, fmt.Errorf("cluster: node %d of %d", i, len(m.nodes))
	}
	return m.nodes[i], nil
}

// NumNodes returns the node count.
func (m *Machine) NumNodes() int { return len(m.nodes) }

// TileCost is the calibrated per-tile resource demand of the
// preprocessing kernel.
type TileCost struct {
	// CPUSeconds is the core-private compute time per tile.
	CPUSeconds float64
	// IOUnits is the fair-shared node I/O demand per tile.
	IOUnits float64
	// FSUnits is the shared-filesystem demand per tile (NetCDF write).
	FSUnits float64
}

// DefaultTileCost is calibrated with Defiant's NodeIOCapacity so that a
// single worker processes ≈10.5 tiles/s and a saturated node ≈38:
// R(w) = w / (CPUSeconds + w·IOUnits/NodeIOCapacity).
func DefaultTileCost() TileCost {
	return TileCost{
		CPUSeconds: 0.0692,
		IOUnits:    1.0,
		FSUnits:    0.05,
	}
}

// ProcessTile models one tile on this node: a CPU delay followed by an
// I/O phase through the node's fair share and a (much lighter) write
// through the shared filesystem. done fires when the tile is complete.
// The caller is responsible for core accounting (one worker = one core).
func (n *Node) ProcessTile(cost TileCost, sharedFS *sim.FairShare, jitter float64, done func()) {
	cpu := sim.Duration(cost.CPUSeconds * jitter)
	n.k.After(cpu, func() {
		n.IO.Submit(cost.IOUnits*jitter, func() {
			if cost.FSUnits > 0 && sharedFS != nil {
				sharedFS.Submit(cost.FSUnits, done)
			} else {
				done()
			}
		})
	})
}

// Worker drains files from a shared queue, processing each file's tiles
// sequentially — the behaviour of one Parsl worker in the preprocessing
// stage. It invokes onFileDone after each file and onIdle when the queue
// is empty.
type Worker struct {
	Node *Node
	Cost TileCost
	// RNG jitters per-tile service times log-normally.
	RNG *sim.RNG
	// JitterSigma is the log-normal sigma (0 disables jitter).
	JitterSigma float64

	sharedFS *sim.FairShare
}

// RunQueue starts the worker on a queue of per-file tile counts. next
// must return the tile count of the next file and true, or false when the
// queue is empty. onFileDone is called after each completed file; onIdle
// when the worker exits.
func (w *Worker) RunQueue(next func() (tiles int, ok bool), onFileDone func(tiles int), onIdle func()) {
	var processFile func()
	processFile = func() {
		tiles, ok := next()
		if !ok {
			if onIdle != nil {
				onIdle()
			}
			return
		}
		w.processTiles(tiles, func() {
			if onFileDone != nil {
				onFileDone(tiles)
			}
			processFile()
		})
	}
	processFile()
}

// SetSharedFS routes tile filesystem writes through fs.
func (w *Worker) SetSharedFS(fs *sim.FairShare) { w.sharedFS = fs }

func (w *Worker) processTiles(remaining int, done func()) {
	if remaining <= 0 {
		done()
		return
	}
	jitter := 1.0
	if w.RNG != nil && w.JitterSigma > 0 {
		jitter = w.RNG.LogNormalFactor(w.JitterSigma)
	}
	w.Node.ProcessTile(w.Cost, w.sharedFS, jitter, func() {
		w.processTiles(remaining-1, done)
	})
}
