package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"strings"
)

// ignorePrefix introduces a suppression directive:
//
//	//eomlvet:ignore <check> <rationale>
//
// The directive suppresses <check> diagnostics on its own line and on
// the line directly below it (so it works both trailing a statement and
// standing alone above one). The rationale is mandatory: a bare ignore
// is reported as a diagnostic itself, because an unexplained exemption
// is exactly the review knowledge this suite exists to preserve.
const ignorePrefix = "eomlvet:ignore"

type ignoreDirective struct {
	pos    token.Position
	check  string
	reason string
	used   bool
}

// collectIgnores extracts every ignore directive in the files.
func collectIgnores(fset *token.FileSet, files []*ast.File) []*ignoreDirective {
	var out []*ignoreDirective
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimPrefix(c.Text, "//")
				text = strings.TrimSpace(text)
				rest, ok := strings.CutPrefix(text, ignorePrefix)
				if !ok {
					continue
				}
				fields := strings.Fields(rest)
				d := &ignoreDirective{pos: fset.Position(c.Pos())}
				if len(fields) > 0 {
					d.check = fields[0]
					d.reason = strings.TrimSpace(strings.TrimPrefix(strings.TrimSpace(rest), fields[0]))
				}
				out = append(out, d)
			}
		}
	}
	return out
}

// suppresses reports whether d silences diag.
func (d *ignoreDirective) suppresses(diag Diagnostic) bool {
	return d.check == diag.Check &&
		d.pos.Filename == diag.Pos.Filename &&
		(d.pos.Line == diag.Pos.Line || d.pos.Line == diag.Pos.Line-1)
}

// applyIgnores drops suppressed diagnostics and appends directive-level
// findings: a directive with no rationale, with an unknown check name,
// or that suppressed nothing (stale) is itself reported.
func applyIgnores(diags []Diagnostic, directives []*ignoreDirective, known map[string]bool) []Diagnostic {
	kept := diags[:0]
	for _, diag := range diags {
		suppressed := false
		for _, d := range directives {
			if d.suppresses(diag) {
				d.used = true
				suppressed = true
			}
		}
		if !suppressed {
			kept = append(kept, diag)
		}
	}
	for _, d := range directives {
		switch {
		case d.check == "":
			kept = append(kept, Diagnostic{Pos: d.pos, Check: "ignore",
				Message: "eomlvet:ignore needs a check name and a rationale"})
		case !known[d.check]:
			kept = append(kept, Diagnostic{Pos: d.pos, Check: "ignore",
				Message: fmt.Sprintf("eomlvet:ignore names unknown check %q", d.check)})
		case d.reason == "":
			kept = append(kept, Diagnostic{Pos: d.pos, Check: "ignore",
				Message: "eomlvet:ignore " + d.check + " has no rationale; say why this site is exempt"})
		case !d.used:
			kept = append(kept, Diagnostic{Pos: d.pos, Check: "ignore",
				Message: "eomlvet:ignore " + d.check + " suppresses nothing here; remove the stale directive"})
		}
	}
	return kept
}
