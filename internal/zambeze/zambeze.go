// Package zambeze implements cross-facility workflow orchestration in the
// style of the Zambeze framework the paper plans to adopt (§V.A,
// Skluzacek et al., PEARC 2024): campaigns of activities are dispatched
// over a message bus to per-facility agents, which execute them through
// registered plugins. This is the "remote configuration, invocation, and
// monitoring of workflow components" layer that the paper identifies as
// the missing piece for seamless OLCF/NERSC/ALCF interoperability.
//
// The model:
//
//   - an Agent represents one facility (e.g. "olcf", "nersc"); it
//     registers named plugins (shell-outs, compute submissions, transfer
//     requests — here, Go callbacks);
//   - a Campaign is a DAG of Activities, each targeted at a facility and
//     a plugin with parameters;
//   - the Orchestrator validates the DAG, dispatches activities whose
//     dependencies are satisfied, routes them to the right facility's
//     queue, and tracks per-activity status and a campaign event log.
package zambeze

import (
	"context"
	"fmt"
	"sort"
	"sync"
	"time"
)

// Plugin executes one activity on a facility agent.
type Plugin func(ctx context.Context, params map[string]any) (any, error)

// Agent is a facility-resident executor.
type Agent struct {
	Facility string

	mu      sync.RWMutex
	plugins map[string]Plugin
	// Concurrency bounds simultaneous activities at the facility.
	sem chan struct{}
}

// NewAgent builds an agent for a facility with the given concurrency.
func NewAgent(facility string, concurrency int) (*Agent, error) {
	if facility == "" {
		return nil, fmt.Errorf("zambeze: agent needs a facility name")
	}
	if concurrency <= 0 {
		concurrency = 4
	}
	return &Agent{
		Facility: facility,
		plugins:  map[string]Plugin{},
		sem:      make(chan struct{}, concurrency),
	}, nil
}

// RegisterPlugin names an executable capability.
func (a *Agent) RegisterPlugin(name string, p Plugin) error {
	if name == "" || p == nil {
		return fmt.Errorf("zambeze: plugin needs a name and a function")
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	if _, dup := a.plugins[name]; dup {
		return fmt.Errorf("zambeze: plugin %q already registered on %s", name, a.Facility)
	}
	a.plugins[name] = p
	return nil
}

// Plugins lists registered plugin names, sorted.
func (a *Agent) Plugins() []string {
	a.mu.RLock()
	defer a.mu.RUnlock()
	out := make([]string, 0, len(a.plugins))
	for name := range a.plugins {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// run executes one activity under the agent's concurrency bound.
func (a *Agent) run(ctx context.Context, plugin string, params map[string]any) (any, error) {
	a.mu.RLock()
	p, ok := a.plugins[plugin]
	a.mu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("zambeze: facility %s has no plugin %q", a.Facility, plugin)
	}
	select {
	case a.sem <- struct{}{}:
		defer func() { <-a.sem }()
	case <-ctx.Done():
		return nil, ctx.Err()
	}
	return runPlugin(ctx, p, params)
}

func runPlugin(ctx context.Context, p Plugin, params map[string]any) (result any, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("zambeze: plugin panicked: %v", r)
		}
	}()
	return p(ctx, params)
}

// Activity is one unit of a campaign.
type Activity struct {
	ID        string
	Facility  string
	Plugin    string
	Params    map[string]any
	DependsOn []string
}

// Campaign is a named DAG of activities.
type Campaign struct {
	Name       string
	Activities []Activity
}

// Validate checks IDs, dependencies, and acyclicity.
func (c *Campaign) Validate() error {
	if c.Name == "" {
		return fmt.Errorf("zambeze: campaign needs a name")
	}
	if len(c.Activities) == 0 {
		return fmt.Errorf("zambeze: campaign %q has no activities", c.Name)
	}
	byID := map[string]*Activity{}
	for i := range c.Activities {
		act := &c.Activities[i]
		if act.ID == "" {
			return fmt.Errorf("zambeze: campaign %q: activity %d has no ID", c.Name, i)
		}
		if act.Facility == "" || act.Plugin == "" {
			return fmt.Errorf("zambeze: activity %q needs a facility and a plugin", act.ID)
		}
		if _, dup := byID[act.ID]; dup {
			return fmt.Errorf("zambeze: duplicate activity ID %q", act.ID)
		}
		byID[act.ID] = act
	}
	for _, act := range c.Activities {
		for _, dep := range act.DependsOn {
			if _, ok := byID[dep]; !ok {
				return fmt.Errorf("zambeze: activity %q depends on unknown %q", act.ID, dep)
			}
			if dep == act.ID {
				return fmt.Errorf("zambeze: activity %q depends on itself", act.ID)
			}
		}
	}
	// Cycle detection via Kahn's algorithm.
	indeg := map[string]int{}
	out := map[string][]string{}
	for _, act := range c.Activities {
		indeg[act.ID] += 0
		for _, dep := range act.DependsOn {
			indeg[act.ID]++
			out[dep] = append(out[dep], act.ID)
		}
	}
	var ready []string
	for id, d := range indeg {
		if d == 0 {
			ready = append(ready, id)
		}
	}
	visited := 0
	for len(ready) > 0 {
		id := ready[len(ready)-1]
		ready = ready[:len(ready)-1]
		visited++
		for _, next := range out[id] {
			indeg[next]--
			if indeg[next] == 0 {
				ready = append(ready, next)
			}
		}
	}
	if visited != len(c.Activities) {
		return fmt.Errorf("zambeze: campaign %q has a dependency cycle", c.Name)
	}
	return nil
}

// ActivityState is a lifecycle state.
type ActivityState string

// Activity states.
const (
	StatePending   ActivityState = "PENDING"
	StateDispatch  ActivityState = "DISPATCHED"
	StateSucceeded ActivityState = "SUCCEEDED"
	StateFailed    ActivityState = "FAILED"
	StateSkipped   ActivityState = "SKIPPED" // upstream failure
)

// Event is one campaign log entry.
type Event struct {
	Time     time.Time
	Activity string
	State    ActivityState
	Detail   string
}

// CampaignRun tracks one submitted campaign.
type CampaignRun struct {
	Campaign string

	mu      sync.Mutex
	states  map[string]ActivityState
	results map[string]any
	errs    map[string]error
	events  []Event
	done    chan struct{}
}

// State returns an activity's state.
func (r *CampaignRun) State(activityID string) ActivityState {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.states[activityID]
}

// Result returns an activity's result and error.
func (r *CampaignRun) Result(activityID string) (any, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.results[activityID], r.errs[activityID]
}

// Events copies the event log.
func (r *CampaignRun) Events() []Event {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]Event(nil), r.events...)
}

// Wait blocks until every activity reaches a terminal state; it returns
// the first activity error in DAG order (nil if all succeeded).
func (r *CampaignRun) Wait(ctx context.Context) error {
	select {
	case <-r.done:
	case <-ctx.Done():
		return ctx.Err()
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	ids := make([]string, 0, len(r.errs))
	for id := range r.errs {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	for _, id := range ids {
		if err := r.errs[id]; err != nil {
			return fmt.Errorf("activity %s: %w", id, err)
		}
	}
	return nil
}

func (r *CampaignRun) set(id string, st ActivityState, detail string) {
	r.mu.Lock()
	r.states[id] = st
	r.events = append(r.events, Event{Time: time.Now(), Activity: id, State: st, Detail: detail})
	r.mu.Unlock()
}

// Orchestrator routes campaign activities to facility agents.
type Orchestrator struct {
	mu     sync.RWMutex
	agents map[string]*Agent
}

// NewOrchestrator builds an empty orchestrator.
func NewOrchestrator() *Orchestrator {
	return &Orchestrator{agents: map[string]*Agent{}}
}

// Connect attaches a facility agent.
func (o *Orchestrator) Connect(a *Agent) error {
	if a == nil {
		return fmt.Errorf("zambeze: nil agent")
	}
	o.mu.Lock()
	defer o.mu.Unlock()
	if _, dup := o.agents[a.Facility]; dup {
		return fmt.Errorf("zambeze: facility %q already connected", a.Facility)
	}
	o.agents[a.Facility] = a
	return nil
}

// Facilities lists connected facilities, sorted.
func (o *Orchestrator) Facilities() []string {
	o.mu.RLock()
	defer o.mu.RUnlock()
	out := make([]string, 0, len(o.agents))
	for f := range o.agents {
		out = append(out, f)
	}
	sort.Strings(out)
	return out
}

// Submit validates and launches a campaign asynchronously. Activities run
// as soon as their dependencies succeed; activities downstream of a
// failure are skipped.
func (o *Orchestrator) Submit(ctx context.Context, c *Campaign) (*CampaignRun, error) {
	if err := c.Validate(); err != nil {
		return nil, err
	}
	o.mu.RLock()
	for _, act := range c.Activities {
		if _, ok := o.agents[act.Facility]; !ok {
			o.mu.RUnlock()
			return nil, fmt.Errorf("zambeze: activity %q targets unconnected facility %q", act.ID, act.Facility)
		}
	}
	o.mu.RUnlock()

	run := &CampaignRun{
		Campaign: c.Name,
		states:   map[string]ActivityState{},
		results:  map[string]any{},
		errs:     map[string]error{},
		done:     make(chan struct{}),
	}
	doneCh := map[string]chan struct{}{}
	for _, act := range c.Activities {
		run.states[act.ID] = StatePending
		doneCh[act.ID] = make(chan struct{})
	}

	var wg sync.WaitGroup
	for i := range c.Activities {
		act := c.Activities[i]
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer close(doneCh[act.ID])
			// Wait for dependencies.
			for _, dep := range act.DependsOn {
				select {
				case <-doneCh[dep]:
				case <-ctx.Done():
					run.mu.Lock()
					run.errs[act.ID] = ctx.Err()
					run.mu.Unlock()
					run.set(act.ID, StateFailed, "context cancelled")
					return
				}
				run.mu.Lock()
				depFailed := run.states[dep] == StateFailed || run.states[dep] == StateSkipped
				run.mu.Unlock()
				if depFailed {
					run.mu.Lock()
					run.errs[act.ID] = fmt.Errorf("zambeze: dependency %s did not succeed", dep)
					run.mu.Unlock()
					run.set(act.ID, StateSkipped, "upstream failure: "+dep)
					return
				}
			}
			o.mu.RLock()
			agent := o.agents[act.Facility]
			o.mu.RUnlock()
			run.set(act.ID, StateDispatch, "routed to "+act.Facility)
			result, err := agent.run(ctx, act.Plugin, act.Params)
			run.mu.Lock()
			run.results[act.ID] = result
			run.errs[act.ID] = err
			run.mu.Unlock()
			if err != nil {
				run.set(act.ID, StateFailed, err.Error())
			} else {
				run.set(act.ID, StateSucceeded, "")
			}
		}()
	}
	go func() {
		wg.Wait()
		close(run.done)
	}()
	return run, nil
}
