package analysis

import (
	"go/ast"
	"go/parser"
	"go/token"
	"strings"
	"testing"
)

// parseIgnores parses src and returns its directives.
func parseIgnores(t *testing.T, src string) (*token.FileSet, []*ignoreDirective) {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "fix.go", src, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	return fset, collectIgnores(fset, []*ast.File{f})
}

func TestIgnoreDirectiveParsing(t *testing.T) {
	_, directives := parseIgnores(t, `package p

//eomlvet:ignore sleeppoll modeled overhead in the simulator
func a() {}

//eomlvet:ignore ctxsend
func b() {}

//eomlvet:ignore
func c() {}
`)
	if len(directives) != 3 {
		t.Fatalf("directives = %d, want 3", len(directives))
	}
	if directives[0].check != "sleeppoll" || directives[0].reason != "modeled overhead in the simulator" {
		t.Fatalf("directive 0 = %+v", directives[0])
	}
	if directives[1].check != "ctxsend" || directives[1].reason != "" {
		t.Fatalf("directive 1 = %+v", directives[1])
	}
	if directives[2].check != "" {
		t.Fatalf("directive 2 = %+v", directives[2])
	}
}

func TestApplyIgnores(t *testing.T) {
	known := map[string]bool{"sleeppoll": true, "ctxsend": true}
	mk := func(line int, check string) Diagnostic {
		return Diagnostic{Pos: token.Position{Filename: "fix.go", Line: line}, Check: check, Message: "m"}
	}
	dir := func(line int, check, reason string) *ignoreDirective {
		return &ignoreDirective{pos: token.Position{Filename: "fix.go", Line: line}, check: check, reason: reason}
	}

	t.Run("suppresses same and next line with rationale", func(t *testing.T) {
		got := applyIgnores(
			[]Diagnostic{mk(5, "sleeppoll"), mk(6, "sleeppoll"), mk(9, "sleeppoll")},
			[]*ignoreDirective{dir(5, "sleeppoll", "why"), dir(9, "ctxsend", "why")},
			known)
		// Line 5 (same line) and 6 (next line) suppressed; line 9 has a
		// directive for a different check, so the finding survives and
		// the directive is stale.
		var msgs []string
		for _, d := range got {
			msgs = append(msgs, d.String())
		}
		joined := strings.Join(msgs, "\n")
		if len(got) != 2 ||
			!strings.Contains(joined, "fix.go:9: sleeppoll") ||
			!strings.Contains(joined, "suppresses nothing") {
			t.Fatalf("got:\n%s", joined)
		}
	})

	t.Run("missing rationale is a finding", func(t *testing.T) {
		got := applyIgnores(
			[]Diagnostic{mk(5, "sleeppoll")},
			[]*ignoreDirective{dir(5, "sleeppoll", "")},
			known)
		if len(got) != 1 || got[0].Check != "ignore" || !strings.Contains(got[0].Message, "no rationale") {
			t.Fatalf("got: %v", got)
		}
	})

	t.Run("unknown check is a finding", func(t *testing.T) {
		got := applyIgnores(nil,
			[]*ignoreDirective{dir(5, "nosuchcheck", "why")},
			known)
		if len(got) != 1 || !strings.Contains(got[0].Message, "unknown check") {
			t.Fatalf("got: %v", got)
		}
	})

	t.Run("bare directive is a finding", func(t *testing.T) {
		got := applyIgnores(nil, []*ignoreDirective{dir(5, "", "")}, known)
		if len(got) != 1 || !strings.Contains(got[0].Message, "needs a check name") {
			t.Fatalf("got: %v", got)
		}
	})
}
