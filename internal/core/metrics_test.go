package core

import (
	"context"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"

	"github.com/eoml/eoml/internal/fleet"
	"github.com/eoml/eoml/internal/laads"
	"github.com/eoml/eoml/internal/metrics"
)

// scrape GETs a URL and returns (status, body).
func scrape(t *testing.T, url string) (int, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("read %s: %v", url, err)
	}
	return resp.StatusCode, string(body)
}

// TestStreamingMetricsScrape is the acceptance check for the live
// endpoints: scraping /metrics DURING a streaming run returns valid
// Prometheus text exposition covering all five paper stages, and
// /healthz reports 200 while every stage is live.
func TestStreamingMetricsScrape(t *testing.T) {
	granules := findProductiveGranules(t, 2, 3)
	labeler := trainTestLabeler(t, granules[0])
	ts := newArchive(t)
	cfg := testConfig(t, ts.URL, nil) // stream mode ignores cfg.Granules
	p, err := New(cfg, labeler)
	if err != nil {
		t.Fatal(err)
	}
	msrv := httptest.NewServer(p.Metrics())
	defer msrv.Close()
	hsrv := httptest.NewServer(p.Health())
	defer hsrv.Close()

	arrivals := make(chan int)
	type result struct {
		rep *Report
		err error
	}
	done := make(chan result, 1)
	go func() {
		rep, err := p.RunStream(context.Background(), arrivals)
		done <- result{rep, err}
	}()
	// Unbuffered sends return only after ingest accepted each granule,
	// so by the last send the run is mid-flight with every stage's
	// series registered.
	for _, idx := range granules {
		arrivals <- idx
	}
	code, body := scrape(t, msrv.URL)
	if code != http.StatusOK {
		t.Fatalf("mid-run /metrics status %d", code)
	}
	if err := metrics.ValidatePrometheus(strings.NewReader(body)); err != nil {
		t.Fatalf("mid-run /metrics is not valid exposition text: %v\n%s", err, body)
	}
	for _, stageName := range []string{"download", "preprocess", "monitor", "inference", "shipment"} {
		if want := fmt.Sprintf("stage=%q", stageName); !strings.Contains(body, want) {
			t.Errorf("mid-run /metrics missing series for %s stage", stageName)
		}
	}
	if code, hbody := scrape(t, hsrv.URL); code != http.StatusOK {
		t.Errorf("mid-run /healthz = %d, want 200\n%s", code, hbody)
	}

	close(arrivals)
	res := <-done
	if res.err != nil {
		t.Fatal(res.err)
	}
	// The report embeds the final snapshot, at parity with a last scrape.
	fams := map[string]bool{}
	for _, f := range res.rep.Metrics {
		fams[f.Name] = true
	}
	for _, want := range []string{
		"eoml_stage_events_total", "eoml_stage_seconds",
		"eoml_laads_client_requests_total", "eoml_labeler_batch_tiles",
		"eoml_inference_tiles_labeled_total", "eoml_executor_busy_workers",
	} {
		if !fams[want] {
			t.Errorf("report snapshot missing family %s", want)
		}
	}
	if code, hbody := scrape(t, hsrv.URL); code != http.StatusOK {
		t.Errorf("post-run /healthz = %d, want 200\n%s", code, hbody)
	}
}

// operationsDoc reads docs/OPERATIONS.md from the repo root.
func operationsDoc(t *testing.T) string {
	t.Helper()
	data, err := os.ReadFile(filepath.Join("..", "..", "docs", "OPERATIONS.md"))
	if err != nil {
		t.Fatalf("docs/OPERATIONS.md: %v", err)
	}
	return string(data)
}

// TestOperationsDocCoversAllMetrics diffs the full registered metric
// catalogue — a real batch run's registry plus the archive server's —
// against docs/OPERATIONS.md, in both directions: every exported family
// must be documented, and every eoml_* name the doc mentions must exist.
func TestOperationsDocCoversAllMetrics(t *testing.T) {
	granules := findProductiveGranules(t, 2, 3)
	labeler := trainTestLabeler(t, granules[0])
	ts := newArchive(t)
	cfg := testConfig(t, ts.URL, granules)
	p, err := New(cfg, labeler)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := p.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}

	names := map[string]bool{}
	for _, f := range rep.Metrics {
		names[f.Name] = true
	}
	// The archive-side families live in the laads server's registry, not
	// the pipeline's; union them in for full catalogue coverage.
	srvReg := metrics.NewRegistry()
	if _, err := laads.NewServer(laads.ServerConfig{ScaleDown: testScale, Metrics: srvReg}); err != nil {
		t.Fatal(err)
	}
	for _, f := range srvReg.Snapshot() {
		names[f.Name] = true
	}
	// The tenant quota wait histogram registers only when an engine runs
	// with quotas enabled; union it from a live pool.
	quotaReg := metrics.NewRegistry()
	pool := laads.NewQuotaPool(1, 1)
	pool.Instrument(quotaReg)
	pool.Tenant("doc")
	for _, f := range quotaReg.Snapshot() {
		names[f.Name] = true
	}
	// The worker-fleet families register on the engine's coordinator
	// (serve wires them when -fleet is set); union an instrumented one.
	fleetReg := metrics.NewRegistry()
	fc := fleet.NewCoordinator(fleet.Config{})
	fc.Instrument(fleetReg)
	fc.Close()
	for _, f := range fleetReg.Snapshot() {
		names[f.Name] = true
	}
	// The worker-side cache/prefetch families register on each worker's
	// kernel set (eoml-worker wires them); union an instrumented one.
	kernReg := metrics.NewRegistry()
	kern, err := fleet.NewKernelsWith(fleet.KernelConfig{CacheDir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	kern.Instrument(kernReg)
	for _, f := range kernReg.Snapshot() {
		names[f.Name] = true
	}
	if len(names) < 20 {
		t.Fatalf("only %d families registered — instrumentation regressed?", len(names))
	}

	doc := operationsDoc(t)
	for name := range names {
		if !strings.Contains(doc, "`"+name+"`") {
			t.Errorf("docs/OPERATIONS.md does not document exported family %s", name)
		}
	}
	// Reverse direction: the doc must not name series that don't exist.
	// Histogram sample suffixes (_bucket/_sum/_count) in curl examples
	// resolve to their base family.
	for _, tok := range regexp.MustCompile(`eoml_[a-z0-9_]+`).FindAllString(doc, -1) {
		if strings.HasSuffix(tok, "_") {
			// Prefix reference (eoml_laads_server_*, a grep alternation):
			// some family must carry it.
			ok := false
			for name := range names {
				ok = ok || strings.HasPrefix(name, tok)
			}
			if !ok {
				t.Errorf("docs/OPERATIONS.md prefix %s* matches no registered family", tok)
			}
			continue
		}
		if strings.HasPrefix(tok, "eoml_serve_") {
			// Control-plane families register in internal/serve, which this
			// package cannot import (serve imports core); their drift test
			// is TestServeDocCoversControlPlaneMetrics over there.
			continue
		}
		base := tok
		for _, suffix := range []string{"_bucket", "_sum", "_count"} {
			base = strings.TrimSuffix(base, suffix)
		}
		if !names[tok] && !names[base] {
			t.Errorf("docs/OPERATIONS.md mentions %s, which no component registers", tok)
		}
	}
}
