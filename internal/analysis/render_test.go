package analysis

import (
	"encoding/json"
	"go/token"
	"strings"
	"testing"
)

func renderFixtures() []Diagnostic {
	return []Diagnostic{
		{
			Pos:     token.Position{Filename: "internal/laads/quota.go", Line: 125, Column: 9},
			Check:   "lockguard",
			Message: "Quota.rate is read without holding mu",
		},
		{
			Pos:     token.Position{Filename: "internal/parsl/executor.go", Line: 47, Column: 25},
			Check:   "ctxflow",
			Message: "may block: 50% of paths\nsecond line",
		},
	}
}

func TestWriteJSON(t *testing.T) {
	var b strings.Builder
	if err := WriteJSON(&b, renderFixtures()); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(b.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("got %d lines, want 2:\n%s", len(lines), b.String())
	}
	var first map[string]any
	if err := json.Unmarshal([]byte(lines[0]), &first); err != nil {
		t.Fatalf("line 1 is not valid JSON: %v", err)
	}
	for k, want := range map[string]any{
		"file":    "internal/laads/quota.go",
		"line":    float64(125),
		"col":     float64(9),
		"check":   "lockguard",
		"message": "Quota.rate is read without holding mu",
	} {
		if first[k] != want {
			t.Errorf("json field %q = %v, want %v", k, first[k], want)
		}
	}
	// Multi-line messages stay on one JSON line.
	var second map[string]any
	if err := json.Unmarshal([]byte(lines[1]), &second); err != nil {
		t.Fatalf("line 2 is not valid JSON: %v", err)
	}
	if !strings.Contains(second["message"].(string), "second line") {
		t.Errorf("message lost content: %v", second["message"])
	}
}

func TestWriteGitHubAnnotations(t *testing.T) {
	var b strings.Builder
	WriteGitHubAnnotations(&b, renderFixtures())
	lines := strings.Split(strings.TrimSpace(b.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("got %d lines, want 2:\n%s", len(lines), b.String())
	}
	want := "::error file=internal/laads/quota.go,line=125,col=9,title=eomlvet lockguard::Quota.rate is read without holding mu"
	if lines[0] != want {
		t.Errorf("annotation = %q\nwant        %q", lines[0], want)
	}
	// Newlines and percent signs must be escaped, never raw.
	if strings.Contains(lines[1], "\n") || !strings.Contains(lines[1], "%0A") {
		t.Errorf("newline not escaped: %q", lines[1])
	}
	if !strings.Contains(lines[1], "50%25") {
		t.Errorf("percent not escaped: %q", lines[1])
	}
}

func TestAnnotationEscaping(t *testing.T) {
	if got := escapeAnnotationProperty("a:b,c%d"); got != "a%3Ab%2Cc%25d" {
		t.Errorf("property escape = %q", got)
	}
	if got := escapeAnnotationData("x%y\r\nz"); got != "x%25y%0D%0Az" {
		t.Errorf("data escape = %q", got)
	}
}
