package fleet

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"

	"github.com/eoml/eoml/internal/aicca"
	"github.com/eoml/eoml/internal/compute"
	"github.com/eoml/eoml/internal/hdf"
	"github.com/eoml/eoml/internal/laads"
	"github.com/eoml/eoml/internal/metrics"
	"github.com/eoml/eoml/internal/modis"
	"github.com/eoml/eoml/internal/ricc"
	"github.com/eoml/eoml/internal/tensor"
	"github.com/eoml/eoml/internal/tile"
)

// Names of the task functions every worker serves. Task arguments ship
// granule *references* — archive coordinates and shared-storage paths —
// never pixel bytes.
const (
	PreprocessFunction = "eoml.preprocess_granule"
	LabelFunction      = "eoml.label_file"
)

// PreprocessArgs is the wire form of one tile-extraction task: which
// granule, where its HDF triple lives (DataDir), where the tile NetCDF
// goes (TileDir), and optionally which archive to fetch missing inputs
// from — the multi-facility case where the worker does not share the
// submitter's filesystem.
type PreprocessArgs struct {
	Satellite    string  `json:"satellite"`
	Year         int     `json:"year"`
	DOY          int     `json:"doy"`
	Index        int     `json:"index"`
	DataDir      string  `json:"data_dir"`
	TileDir      string  `json:"tile_dir"`
	TilePixels   int     `json:"tile_pixels"`
	MinCloudFrac float64 `json:"min_cloud_frac"`
	ArchiveURL   string  `json:"archive_url,omitempty"`
	ArchiveToken string  `json:"archive_token,omitempty"`
}

// Args flattens to the compute fabric's map form.
func (a PreprocessArgs) Args() map[string]any {
	return map[string]any{
		"satellite": a.Satellite, "year": a.Year, "doy": a.DOY, "index": a.Index,
		"data_dir": a.DataDir, "tile_dir": a.TileDir,
		"tile_pixels": a.TilePixels, "min_cloud_frac": a.MinCloudFrac,
		"archive_url": a.ArchiveURL, "archive_token": a.ArchiveToken,
	}
}

// PreprocessResult reports one granule's extraction outcome.
type PreprocessResult struct {
	Tiles int    `json:"tiles"`
	File  string `json:"file"`
}

// ParsePreprocessResult decodes a task result from its wire form.
func ParsePreprocessResult(v any) (PreprocessResult, error) {
	m, ok := v.(map[string]any)
	if !ok {
		return PreprocessResult{}, fmt.Errorf("fleet: preprocess result is %T, want map", v)
	}
	return PreprocessResult{Tiles: intFrom(m, "tiles"), File: stringFrom(m, "file")}, nil
}

// LabelArgs is the wire form of one inference task: the tile file to
// label in place plus the model/codebook refs the worker loads (and
// caches) from shared storage.
type LabelArgs struct {
	File      string `json:"file"`
	Model     string `json:"model"`
	Codebook  string `json:"codebook"`
	Precision string `json:"precision,omitempty"`
}

// Args flattens to the compute fabric's map form.
func (a LabelArgs) Args() map[string]any {
	return map[string]any{
		"file": a.File, "model": a.Model, "codebook": a.Codebook, "precision": a.Precision,
	}
}

// LabelResult reports one file's labeling outcome.
type LabelResult struct {
	Labeled int `json:"labeled"`
}

// ParseLabelResult decodes a task result from its wire form.
func ParseLabelResult(v any) (LabelResult, error) {
	m, ok := v.(map[string]any)
	if !ok {
		return LabelResult{}, fmt.Errorf("fleet: label result is %T, want map", v)
	}
	return LabelResult{Labeled: intFrom(m, "labeled")}, nil
}

// KernelConfig tunes the worker kernel set's caches and archive access.
// The zero value disables the on-disk download cache and admits every
// archive request (no quota), matching the PR-9 behavior.
type KernelConfig struct {
	// CacheDir, when set, enables the content-addressed on-disk download
	// cache: archive fetches land there and re-leases hit disk instead
	// of the archive.
	CacheDir string
	// CacheMaxBytes bounds the download cache; <= 0 means unbounded.
	CacheMaxBytes int64
	// ResultCacheSize bounds memoized task results; 0 means 1024.
	ResultCacheSize int
	// Quota, when set, gates archive fetches on the owning tenant's
	// token bucket — the prefetcher shares it with the compute slots, so
	// overlap never exceeds the facility's request-rate agreement.
	Quota *laads.QuotaPool
}

// Kernels hosts the worker-side task implementations against shared
// per-process state: one decode arena for tile extraction, a
// model/codebook cache for inference (loaded once per pair, like
// core.Engine's weights cache), a content-addressed download cache, and
// a bounded memo of completed task results so requeued or stolen tasks
// skip redone work.
type Kernels struct {
	arena     *tensor.ShardedArena
	downloads *DownloadCache // nil when CacheDir is unset
	results   *ResultCache
	quota     *laads.QuotaPool // nil admits everything

	mu sync.Mutex
	// models caches loaded labelers keyed "modelPath|codebookPath".
	// guarded by mu
	models map[string]*aicca.Labeler
	// clients caches archive clients keyed "url|token" so every fetch —
	// prefetch or in-slot — shares one connection pool and one quota
	// hook per tenant. guarded by mu
	clients map[string]*laads.Client
	// fetches coalesces concurrent cache-less downloads of one
	// destination path: the prefetcher and a compute slot racing on the
	// same granule must cost one archive fetch, not two concurrent
	// writers. (With the cache enabled its own singleflight covers
	// this.) guarded by mu
	fetches map[string]*fetchCall

	prefetchInflight atomic.Int64
}

// NewKernels builds the worker kernel set with caching and quota off.
func NewKernels() *Kernels {
	k, err := NewKernelsWith(KernelConfig{})
	if err != nil {
		panic(err) // unreachable: only CacheDir setup can fail
	}
	return k
}

// NewKernelsWith builds the worker kernel set.
func NewKernelsWith(cfg KernelConfig) (*Kernels, error) {
	k := &Kernels{
		arena:   tensor.NewShardedArena(),
		results: NewResultCache(cfg.ResultCacheSize),
		quota:   cfg.Quota,
		models:  map[string]*aicca.Labeler{},
		clients: map[string]*laads.Client{},
		fetches: map[string]*fetchCall{},
	}
	if cfg.CacheDir != "" {
		dc, err := NewDownloadCache(cfg.CacheDir, cfg.CacheMaxBytes)
		if err != nil {
			return nil, err
		}
		k.downloads = dc
	}
	return k, nil
}

// Instrument registers the worker-side cache and prefetch series on
// reg: eoml_fleet_cache_{hits,misses,evictions}_total broken out by
// cache={download,result}, and the eoml_fleet_prefetch_inflight gauge.
func (k *Kernels) Instrument(reg *metrics.Registry) {
	dl := metrics.L("cache", "download")
	rs := metrics.L("cache", "result")
	pick := func(sel func(h, m, e int64) int64, download bool) func() float64 {
		return func() float64 {
			if download {
				if k.downloads == nil {
					return 0
				}
				return float64(sel(k.downloads.Stats()))
			}
			return float64(sel(k.results.Stats()))
		}
	}
	hitsOf := func(h, _, _ int64) int64 { return h }
	missesOf := func(_, m, _ int64) int64 { return m }
	evictionsOf := func(_, _, e int64) int64 { return e }
	const (
		hitsHelp      = "Cache hits, by cache (download = archive bytes served from disk, result = task results served from memo)."
		missesHelp    = "Cache misses, by cache (download = archive fetches that went to the network, result = tasks computed fresh)."
		evictionsHelp = "Cache evictions, by cache (LRU size bound or integrity failure)."
	)
	reg.CounterFunc("eoml_fleet_cache_hits_total", hitsHelp, pick(hitsOf, true), dl)
	reg.CounterFunc("eoml_fleet_cache_hits_total", hitsHelp, pick(hitsOf, false), rs)
	reg.CounterFunc("eoml_fleet_cache_misses_total", missesHelp, pick(missesOf, true), dl)
	reg.CounterFunc("eoml_fleet_cache_misses_total", missesHelp, pick(missesOf, false), rs)
	reg.CounterFunc("eoml_fleet_cache_evictions_total", evictionsHelp, pick(evictionsOf, true), dl)
	reg.CounterFunc("eoml_fleet_cache_evictions_total", evictionsHelp, pick(evictionsOf, false), rs)
	reg.GaugeFunc("eoml_fleet_prefetch_inflight",
		"Granule input fetches currently running ahead of their compute slot.",
		func() float64 { return float64(k.prefetchInflight.Load()) })
}

// Register adds both task functions to a compute registry.
func (k *Kernels) Register(reg *compute.Registry) error {
	if err := reg.Register(PreprocessFunction, k.preprocess); err != nil {
		return err
	}
	return reg.Register(LabelFunction, k.label)
}

// clientFor finds or creates the archive client for one url+token pair,
// so prefetch and in-slot fetches share a connection pool and the
// tenant's quota bucket. Tenants are keyed to the archive credential
// (hashed — the secret never becomes a metric label).
func (k *Kernels) clientFor(url, token string) *laads.Client {
	key := url + "|" + token
	k.mu.Lock()
	defer k.mu.Unlock()
	if c, ok := k.clients[key]; ok {
		return c
	}
	c := laads.NewClient(url, token)
	if k.quota != nil {
		tok := sha256.Sum256([]byte(token))
		c.Quota = k.quota.Tenant(hex.EncodeToString(tok[:6]))
	}
	k.clients[key] = c
	return c
}

// fetchGranuleInputs fetches the granule's product files missing from
// dataDir, all three concurrently — against a latency-shaped archive
// the triple costs one round-trip instead of three. Each fetch goes
// through the download cache (when enabled), so re-leases and restarted
// runs hit disk. No archive URL means shared storage; missing files
// surface later as read errors.
func (k *Kernels) fetchGranuleInputs(ctx context.Context, g modis.GranuleID, dataDir, url, token string) error {
	if url == "" {
		return nil
	}
	client := k.clientFor(url, token)
	kinds := []modis.Kind{modis.L1B, modis.Geo, modis.Cloud}
	var (
		wg   sync.WaitGroup
		errs = make([]error, len(kinds))
	)
	for i, kind := range kinds {
		prod := modis.Product{Satellite: g.Satellite, Kind: kind}
		name := modis.FileName(prod, g)
		if _, err := os.Stat(filepath.Join(dataDir, name)); err == nil {
			continue
		}
		if err := os.MkdirAll(dataDir, 0o755); err != nil {
			return err
		}
		wg.Add(1)
		go func(i int, prod modis.Product, name string) {
			defer wg.Done()
			fill := func(ctx context.Context) (string, error) {
				if _, err := client.Download(ctx, prod, g.Year, g.DOY, name, dataDir); err != nil {
					return "", fmt.Errorf("fetch %s: %w", name, err)
				}
				return filepath.Join(dataDir, name), nil
			}
			if k.downloads == nil {
				errs[i] = k.fetchDirect(ctx, filepath.Join(dataDir, name), fill)
				return
			}
			key := CacheKey{ArchiveURL: url, Token: token, Name: name}
			_, _, errs[i] = k.downloads.Fetch(ctx, key, dataDir, fill)
		}(i, prod, name)
	}
	wg.Wait()
	return errors.Join(errs...)
}

// fetchDirect runs fill for dest, coalescing concurrent callers: the
// first becomes the leader, the rest wait and succeed when it does. A
// waiter whose leader failed (possibly on the leader's own canceled
// context) loops and retries as leader, so a compute slot never fails
// a fetch just because the prefetcher's attempt died.
func (k *Kernels) fetchDirect(ctx context.Context, dest string, fill func(context.Context) (string, error)) error {
	for {
		if _, err := os.Stat(dest); err == nil {
			return nil
		}
		k.mu.Lock()
		if call, ok := k.fetches[dest]; ok {
			k.mu.Unlock()
			select {
			case <-call.done:
			case <-ctx.Done():
				return ctx.Err()
			}
			if call.err == nil {
				return nil
			}
			continue
		}
		call := &fetchCall{done: make(chan struct{})}
		k.fetches[dest] = call
		k.mu.Unlock()
		_, call.err = fill(ctx)
		k.mu.Lock()
		delete(k.fetches, dest)
		k.mu.Unlock()
		close(call.done)
		return call.err
	}
}

// parsePreprocessRef validates the granule reference shared by the
// preprocess kernel and the prefetcher.
func parsePreprocessRef(args map[string]any) (modis.GranuleID, string, string, error) {
	sat, err := parseSatellite(stringFrom(args, "satellite"))
	if err != nil {
		return modis.GranuleID{}, "", "", err
	}
	g := modis.GranuleID{
		Satellite: sat,
		Year:      intFrom(args, "year"),
		DOY:       intFrom(args, "doy"),
		Index:     intFrom(args, "index"),
	}
	if err := g.Validate(); err != nil {
		return modis.GranuleID{}, "", "", err
	}
	dataDir := stringFrom(args, "data_dir")
	tileDir := stringFrom(args, "tile_dir")
	if dataDir == "" || tileDir == "" {
		return modis.GranuleID{}, "", "", fmt.Errorf("fleet: preprocess needs data_dir and tile_dir")
	}
	return g, dataDir, tileDir, nil
}

// prefetchInputs fetches one enqueued preprocess task's inputs ahead of
// its compute slot. Errors are dropped: the kernel repeats the fetch
// (cache-assisted) and reports failures through the normal task path.
func (k *Kernels) prefetchInputs(ctx context.Context, args map[string]any) {
	g, dataDir, _, err := parsePreprocessRef(args)
	if err != nil {
		return
	}
	k.prefetchInflight.Add(1)
	defer k.prefetchInflight.Add(-1)
	_ = k.fetchGranuleInputs(ctx, g, dataDir, stringFrom(args, "archive_url"), stringFrom(args, "archive_token"))
}

// preprocess is the tile-extraction kernel. Inputs absent from DataDir
// are fetched from the archive when credentials are supplied, so a
// worker at another facility only needs the granule reference. The
// output NetCDF is written via an atomic temp+rename with fully
// deterministic content, which is what makes duplicated leases (steal,
// requeue-after-partial) safe — and completed results are memoized on
// the granule ref, so a duplicate lease that already ran here returns
// without recomputing at all.
func (k *Kernels) preprocess(ctx context.Context, args map[string]any) (any, error) {
	g, dataDir, tileDir, err := parsePreprocessRef(args)
	if err != nil {
		return nil, err
	}
	memoKey := fmt.Sprintf("preprocess|%s|%04d%03d.%d|%s|%d|%g",
		stringFrom(args, "satellite"), g.Year, g.DOY, g.Index,
		tileDir, intFrom(args, "tile_pixels"), floatFrom(args, "min_cloud_frac"))
	if v, ok := k.results.Get(memoKey); ok {
		r := v.(PreprocessResult)
		if r.File == "" {
			return r.asMap(), nil // memoized empty granule
		}
		if _, err := os.Stat(r.File); err == nil {
			return r.asMap(), nil
		}
		k.results.Delete(memoKey) // output vanished; recompute
	}

	if err := k.fetchGranuleInputs(ctx, g, dataDir, stringFrom(args, "archive_url"), stringFrom(args, "archive_token")); err != nil {
		return nil, err
	}
	read := func(kind modis.Kind) (*hdf.File, error) {
		prod := modis.Product{Satellite: g.Satellite, Kind: kind}
		return hdf.ReadFile(filepath.Join(dataDir, modis.FileName(prod, g)))
	}
	mod02, err := read(modis.L1B)
	if err != nil {
		return nil, err
	}
	mod03, err := read(modis.Geo)
	if err != nil {
		return nil, err
	}
	mod06, err := read(modis.Cloud)
	if err != nil {
		return nil, err
	}
	res, err := tile.Extract(mod02, mod03, mod06, tile.Options{
		TileSize:     intFrom(args, "tile_pixels"),
		MinCloudFrac: floatFrom(args, "min_cloud_frac"),
		Arena:        k.arena,
	})
	if err != nil {
		return nil, err
	}
	if len(res.Tiles) == 0 {
		out := PreprocessResult{}
		k.results.Put(memoKey, out)
		return out.asMap(), nil // night granule or no ocean clouds
	}
	if err := os.MkdirAll(tileDir, 0o755); err != nil {
		return nil, err
	}
	// Same name core's in-process path produces, so local and fleet
	// distribution yield byte-identical layouts on shared storage.
	name := fmt.Sprintf("tiles.%s.A%04d%03d.%s.nc", g.Satellite.Prefix(), g.Year, g.DOY, g.HHMM())
	path := filepath.Join(tileDir, name)
	if err := tile.WriteNetCDF(path, res.Tiles); err != nil {
		return nil, err
	}
	out := PreprocessResult{Tiles: len(res.Tiles), File: path}
	k.results.Put(memoKey, out)
	return out.asMap(), nil
}

func (r PreprocessResult) asMap() map[string]any {
	return map[string]any{"tiles": r.Tiles, "file": r.File}
}

// label is the inference kernel: load (or reuse) the labeler for the
// model/codebook pair and label the tile file in place. AppendLabels
// rewrites via temp+rename, and labels are deterministic for a given
// precision, so duplicated leases are idempotent here too — and, like
// preprocess, memoized: a stolen or requeued task whose file this
// worker already labeled returns the cached count without rerunning
// inference.
func (k *Kernels) label(ctx context.Context, args map[string]any) (any, error) {
	file := stringFrom(args, "file")
	model := stringFrom(args, "model")
	codebook := stringFrom(args, "codebook")
	if file == "" || model == "" || codebook == "" {
		return nil, fmt.Errorf("fleet: label needs file, model and codebook")
	}
	prec, err := aicca.ParsePrecision(stringFrom(args, "precision"))
	if err != nil {
		return nil, err
	}
	memoKey := fmt.Sprintf("label|%s|%s|%s|%v", file, model, codebook, prec)
	if v, ok := k.results.Get(memoKey); ok {
		if _, err := os.Stat(file); err == nil {
			return map[string]any{"labeled": v.(int)}, nil
		}
		k.results.Delete(memoKey) // labeled file vanished; recompute
	}
	l, err := k.labelerFor(model, codebook)
	if err != nil {
		return nil, err
	}
	if l.Precision != prec {
		// Shallow per-task override, same trick as aicca's BatchConfig:
		// the shared model/codebook pointers stay cached.
		ll := *l
		ll.Precision = prec
		l = &ll
	}
	n, err := l.LabelFile(file)
	if err != nil {
		return nil, err
	}
	k.results.Put(memoKey, n)
	return map[string]any{"labeled": n}, nil
}

// labelerFor loads a labeler once per model/codebook pair.
func (k *Kernels) labelerFor(model, codebook string) (*aicca.Labeler, error) {
	key := model + "|" + codebook
	k.mu.Lock()
	defer k.mu.Unlock()
	if l, ok := k.models[key]; ok {
		return l, nil
	}
	m, err := ricc.Load(model)
	if err != nil {
		return nil, fmt.Errorf("fleet: load model: %w", err)
	}
	cb, err := ricc.LoadCodebook(codebook)
	if err != nil {
		return nil, fmt.Errorf("fleet: load codebook: %w", err)
	}
	l, err := aicca.NewLabeler(m, cb)
	if err != nil {
		return nil, err
	}
	k.models[key] = l
	return l, nil
}

func parseSatellite(s string) (modis.Satellite, error) {
	switch s {
	case "Terra":
		return modis.Terra, nil
	case "Aqua":
		return modis.Aqua, nil
	}
	return 0, fmt.Errorf("fleet: unknown satellite %q", s)
}

// intFrom tolerates the JSON hop turning ints into float64s.
func intFrom(m map[string]any, key string) int {
	switch v := m[key].(type) {
	case int:
		return v
	case float64:
		return int(v)
	}
	return 0
}

func floatFrom(m map[string]any, key string) float64 {
	switch v := m[key].(type) {
	case float64:
		return v
	case int:
		return float64(v)
	}
	return 0
}

func stringFrom(m map[string]any, key string) string {
	s, _ := m[key].(string)
	return s
}
