package nn

import (
	"math"
	"math/rand"
	"sync"
	"testing"

	"github.com/eoml/eoml/internal/tensor"
)

// riccLikeStack builds an encoder+decoder chain exercising every layer
// type the RICC autoencoder uses: conv, activations, flatten/reshape,
// dense, and nearest-neighbor upsampling.
func riccLikeStack(t *testing.T, r *rand.Rand) *Sequential {
	t.Helper()
	c1, err := NewConv2D("c1", 3, 8, 3, 2, 1, 16, 16, r)
	if err != nil {
		t.Fatal(err)
	}
	c2, err := NewConv2D("c2", 8, 4, 3, 1, 1, 8, 8, r)
	if err != nil {
		t.Fatal(err)
	}
	c3, err := NewConv2D("c3", 4, 3, 3, 1, 1, 16, 16, r)
	if err != nil {
		t.Fatal(err)
	}
	return NewSequential("stack",
		c1, NewLeakyReLU("a1", 0.1),
		c2, NewLeakyReLU("a2", 0.1),
		NewFlatten("fl"),
		NewDense("d1", 4*8*8, 4*8*8, r),
		NewReshape4D("rs", 4, 8, 8),
		NewUpsample2x("up"),
		c3, NewSigmoid("sg"),
	)
}

func inferDiff(got, want *tensor.T) float64 {
	worst := 0.0
	for i := range want.Data {
		d := math.Abs(float64(got.Data[i]-want.Data[i])) / (1 + math.Abs(float64(want.Data[i])))
		if d > worst {
			worst = d
		}
	}
	return worst
}

func TestInferMatchesForward(t *testing.T) {
	r := rand.New(rand.NewSource(41))
	model := riccLikeStack(t, r)
	x := tensor.New(5, 3, 16, 16)
	for i := range x.Data {
		x.Data[i] = float32(r.Float64())
	}
	want := model.Forward(x)
	arena := tensor.NewArena()
	for pass := 0; pass < 3; pass++ { // repeated passes hit recycled buffers
		got := model.Infer(x, arena)
		if !got.SameShape(want) {
			t.Fatalf("pass %d: shape %v, want %v", pass, got.Shape, want.Shape)
		}
		if d := inferDiff(got, want); d > 1e-5 {
			t.Fatalf("pass %d: worst relative diff %g", pass, d)
		}
		arena.Put(got)
	}
}

func TestInferNilArena(t *testing.T) {
	r := rand.New(rand.NewSource(42))
	model := riccLikeStack(t, r)
	x := tensor.New(2, 3, 16, 16)
	for i := range x.Data {
		x.Data[i] = float32(r.Float64())
	}
	want := model.Forward(x)
	got := model.Infer(x, nil)
	if d := inferDiff(got, want); d > 1e-5 {
		t.Fatalf("worst relative diff %g", d)
	}
}

// TestInferConcurrent runs concurrent Infer calls on one model, each
// with a private arena, under the race detector: Infer must not touch
// shared layer state the way Forward does.
func TestInferConcurrent(t *testing.T) {
	r := rand.New(rand.NewSource(43))
	model := riccLikeStack(t, r)
	x := tensor.New(3, 3, 16, 16)
	for i := range x.Data {
		x.Data[i] = float32(r.Float64())
	}
	want := model.Forward(x)
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			arena := tensor.NewArena()
			for iter := 0; iter < 5; iter++ {
				got := model.Infer(x, arena)
				if d := inferDiff(got, want); d > 1e-5 {
					t.Errorf("worst relative diff %g", d)
					return
				}
				arena.Put(got)
			}
		}()
	}
	wg.Wait()
}

// TestInferBatchMatchesForward pins the batch-GEMM path to the training
// forward pass bit-for-bit: both run im2col + the blocked matmul with
// the identical bias/NCHW epilogue, so any drift means the batched
// kernels diverged. Covers N=1 and batch sizes that are not multiples
// of the GEMM register block.
func TestInferBatchMatchesForward(t *testing.T) {
	r := rand.New(rand.NewSource(44))
	model := riccLikeStack(t, r)
	for _, n := range []int{1, 3, 5, 7} {
		x := tensor.New(n, 3, 16, 16)
		for i := range x.Data {
			x.Data[i] = float32(r.Float64())
		}
		want := model.Forward(x)
		shards := tensor.NewShardedArena()
		arena := shards.Acquire()
		for pass := 0; pass < 3; pass++ { // repeated passes hit recycled buffers
			got := model.InferBatch(x, arena)
			if !got.SameShape(want) {
				t.Fatalf("n=%d pass %d: shape %v, want %v", n, pass, got.Shape, want.Shape)
			}
			for i := range want.Data {
				if got.Data[i] != want.Data[i] {
					t.Fatalf("n=%d pass %d: InferBatch[%d]=%g, Forward=%g (want bit-identical)",
						n, pass, i, got.Data[i], want.Data[i])
				}
			}
			arena.Put(got)
		}
		shards.Release(arena)
	}
}

// cosine32 returns the cosine similarity of two equal-length float32
// slices.
func cosine32(a, b []float32) float64 {
	var dot, na, nb float64
	for i := range a {
		dot += float64(a[i]) * float64(b[i])
		na += float64(a[i]) * float64(a[i])
		nb += float64(b[i]) * float64(b[i])
	}
	if na == 0 || nb == 0 {
		return 0
	}
	return dot / math.Sqrt(na*nb)
}

// TestInferBatchQ8CloseToFloat runs the full layer stack through the
// int8 path and pins its output to the float oracle with a cosine
// floor: quantization noise is bounded (one half-step per GEMM), so the
// two paths must stay nearly parallel.
func TestInferBatchQ8CloseToFloat(t *testing.T) {
	r := rand.New(rand.NewSource(46))
	model := riccLikeStack(t, r)
	x := tensor.New(4, 3, 16, 16)
	for i := range x.Data {
		x.Data[i] = float32(r.Float64())
	}
	want := model.InferBatch(x, nil)
	shards := tensor.NewShardedArena()
	arena := shards.Acquire()
	defer shards.Release(arena)
	for pass := 0; pass < 3; pass++ { // repeated passes hit recycled buffers
		got := model.InferBatchQ8(x, arena)
		if !got.SameShape(want) {
			t.Fatalf("pass %d: shape %v, want %v", pass, got.Shape, want.Shape)
		}
		if cos := cosine32(got.Data, want.Data); cos < 0.995 {
			t.Fatalf("pass %d: cosine vs float path %g < 0.995", pass, cos)
		}
		arena.Put(got)
	}
}

// TestInferBatchQ8Deterministic demands bit-identical output across
// calls and allocators: int32 accumulation makes the int8 path exactly
// reproducible, unlike the float path whose parallel split is benign
// only because the float kernels are also order-fixed.
func TestInferBatchQ8Deterministic(t *testing.T) {
	r := rand.New(rand.NewSource(47))
	model := riccLikeStack(t, r)
	x := tensor.New(3, 3, 16, 16)
	for i := range x.Data {
		x.Data[i] = float32(r.Float64())
	}
	first := model.InferBatchQ8(x, nil)
	arena := tensor.NewArena()
	for pass := 0; pass < 3; pass++ {
		got := model.InferBatchQ8(x, arena)
		for i := range first.Data {
			if math.Float32bits(got.Data[i]) != math.Float32bits(first.Data[i]) {
				t.Fatalf("pass %d: [%d] = %g, first run %g (want bit-identical)",
					pass, i, got.Data[i], first.Data[i])
			}
		}
		arena.Put(got)
	}
}

// TestInferBatchQ8RequantizesAfterForward proves the cached int8
// weights are invalidated by the training path: after Forward and a
// weight update, Q8 inference must see the new weights (scaling W by 2
// exactly doubles the symmetric-quantized output when bias is zero).
func TestInferBatchQ8RequantizesAfterForward(t *testing.T) {
	r := rand.New(rand.NewSource(48))
	d := NewDense("d", 8, 4, r)
	x := tensor.New(2, 8)
	for i := range x.Data {
		x.Data[i] = float32(r.Float64())
	}
	a := (*tensor.Arena)(nil) // direct layer call: degrade to plain allocation
	before := d.InferBatchQ8(x, a)
	d.Forward(x) // the training path: invalidates the quantized cache
	for i := range d.w.W.Data {
		d.w.W.Data[i] *= 2
	}
	after := d.InferBatchQ8(x, a)
	for i := range before.Data {
		if after.Data[i] != 2*before.Data[i] {
			t.Fatalf("[%d] = %g after doubling W, want %g — stale quantized weights?",
				i, after.Data[i], 2*before.Data[i])
		}
	}
}

func TestInferBatchNilAllocator(t *testing.T) {
	r := rand.New(rand.NewSource(45))
	model := riccLikeStack(t, r)
	x := tensor.New(2, 3, 16, 16)
	for i := range x.Data {
		x.Data[i] = float32(r.Float64())
	}
	want := model.Forward(x)
	got := model.InferBatch(x, nil)
	if d := inferDiff(got, want); d != 0 {
		t.Fatalf("worst relative diff %g, want bit-identical", d)
	}
}
