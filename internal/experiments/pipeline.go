package experiments

import (
	"fmt"

	"github.com/eoml/eoml/internal/cluster"
	"github.com/eoml/eoml/internal/sim"
	"github.com/eoml/eoml/internal/slurmsim"
	"github.com/eoml/eoml/internal/trace"
)

// PipelineConfig drives the end-to-end DES pipeline used for Fig. 6 (the
// dynamic worker-allocation timeline) and Fig. 7 (the latency breakdown).
type PipelineConfig struct {
	Granules          int // MOD02 granules to process (×3 products downloaded)
	DownloadWorkers   int // 3 in the paper's Fig. 6
	PreprocessWorkers int // 32
	PreprocessNodes   int
	InferenceWorkers  int // 1

	// Launch latencies (virtual seconds), calibrated to Fig. 7.
	EndpointLaunch  float64 // Globus Compute worker launch ≈2.4 s
	ArchiveConnect  float64 // LAADS connection ≈1.9 s
	ListingSetup    float64 // file-list configuration ≈1.3 s (sum ≈5.6 s)
	ParslStart      float64 // Parsl DFK start ≈4.0 s
	SchedLatency    float64 // Slurm allocation ≈2.0 s
	FlowOverhead    float64 // Globus Flows action dispatch ≈0.05 s
	PollInterval    float64 // monitor crawl period
	InferPerTileSec float64 // inference compute per tile

	TilesPerFile int
	Download     DownloadModel
	Seed         int64
}

// DefaultPipelineConfig matches the paper's Fig. 6 example run.
func DefaultPipelineConfig() PipelineConfig {
	return PipelineConfig{
		Granules:          24,
		DownloadWorkers:   3,
		PreprocessWorkers: 32,
		PreprocessNodes:   1,
		InferenceWorkers:  1,
		EndpointLaunch:    2.4,
		ArchiveConnect:    1.9,
		ListingSetup:      1.33,
		ParslStart:        4.0,
		SchedLatency:      2.0,
		FlowOverhead:      0.05,
		PollInterval:      0.5,
		InferPerTileSec:   0.002,
		TilesPerFile:      42,
		Download:          DefaultDownloadModel(),
		Seed:              7,
	}
}

// PipelineResult carries the telemetry of one simulated pipeline run.
type PipelineResult struct {
	Timeline *trace.Timeline
	Spans    *trace.Spans

	TotalSeconds     float64
	FilesDownloaded  int
	TilesProduced    int
	TilesLabeled     int
	FlowActions      int
	MeanFlowOverhead float64
}

// RunPipeline plays the five-stage workflow in virtual time:
// download (Globus Compute workers) → preprocess (Parsl block on the
// simulated cluster) → monitor & trigger (poll crawler) → inference
// (Globus Flow actions) → shipment (Globus Transfer).
func RunPipeline(cfg PipelineConfig) (*PipelineResult, error) {
	if cfg.Granules <= 0 || cfg.DownloadWorkers <= 0 || cfg.PreprocessWorkers <= 0 || cfg.InferenceWorkers <= 0 {
		return nil, fmt.Errorf("experiments: pipeline config needs positive counts: %+v", cfg)
	}
	if cfg.PreprocessNodes <= 0 {
		cfg.PreprocessNodes = (cfg.PreprocessWorkers + 63) / 64
	}
	k := sim.NewKernel()
	rng := sim.NewRNG(cfg.Seed)
	tl := trace.NewTimeline()
	spans := trace.NewSpans()
	res := &PipelineResult{Timeline: tl, Spans: spans}

	machine, err := cluster.New(k, cluster.Defiant())
	if err != nil {
		return nil, err
	}
	sched := slurmsim.New(k, machine, slurmsim.Config{SchedLatency: sim.Duration(cfg.SchedLatency)})

	// ---- Stage 1: download -------------------------------------------
	// 3 products per granule; each worker downloads files sequentially at
	// the fair-share effective rate. Worker activity feeds the timeline.
	nFiles := cfg.Granules * 3
	fileMBs := make([]float64, nFiles)
	for i := range fileMBs {
		switch i % 3 {
		case 0:
			fileMBs[i] = 111.1 // MOD02
		case 1:
			fileMBs[i] = 29.2 // MOD03
		default:
			fileMBs[i] = 62.5 // MOD06
		}
	}
	launchDone := cfg.EndpointLaunch + cfg.ArchiveConnect + cfg.ListingSetup
	spans.Add("download.launch", 0, launchDone)

	effRate := cfg.Download.PerConnMBps
	if share := cfg.Download.AggregateMBps / float64(cfg.DownloadWorkers); share < effRate {
		effRate = share
	}

	dlActive := 0
	nextDL := 0
	dlDone := 0
	var preprocessStart func()

	var dlWorker func()
	dlWorker = func() {
		if nextDL >= nFiles {
			if dlActive == 0 && dlDone == nFiles {
				// last worker retired
			}
			tl.Record("download", float64(k.Now()), dlActive)
			return
		}
		mb := fileMBs[nextDL]
		nextDL++
		dur := cfg.Download.PerFileLatency + mb/(effRate*rng.LogNormalFactor(cfg.Download.JitterSigma))
		k.After(sim.Duration(dur), func() {
			dlDone++
			if dlDone == nFiles {
				spans.Add("download.transfer", launchDone, float64(k.Now()))
				// Preprocessing is delayed until all downloads complete to
				// avoid partial-file HDF read errors (paper §III.2).
				preprocessStart()
			}
			dlWorker()
		})
	}
	k.At(sim.Time(launchDone), func() {
		dlActive = cfg.DownloadWorkers
		tl.Record("download", float64(k.Now()), dlActive)
		for w := 0; w < cfg.DownloadWorkers; w++ {
			dlWorker()
		}
	})
	// Download workers retire as the queue drains; sample the tail.
	// (Active-count bookkeeping: decrement when a worker finds no file.)
	origDLWorker := dlWorker
	dlWorker = func() {
		if nextDL >= nFiles {
			dlActive--
			tl.Record("download", float64(k.Now()), dlActive)
			return
		}
		origDLWorker()
	}

	// ---- Stage 2: preprocess -----------------------------------------
	preBusy := 0
	filesPre := 0
	granulesTotal := cfg.Granules
	var tileFileReady func(tiles int)

	preprocessStart = func() {
		parslUp := float64(k.Now()) + cfg.ParslStart
		spans.Add("preprocess.launch", float64(k.Now()), parslUp+cfg.SchedLatency)
		k.At(sim.Time(parslUp), func() {
			if _, err := sched.Submit(cfg.PreprocessNodes, func(a *slurmsim.Allocation) {
				tilesStart := float64(k.Now())
				nextGranule := 0
				perNode := (cfg.PreprocessWorkers + len(a.Nodes) - 1) / len(a.Nodes)
				launched := 0
				for _, node := range a.Nodes {
					for w := 0; w < perNode && launched < cfg.PreprocessWorkers; w++ {
						launched++
						worker := &cluster.Worker{
							Node:        node,
							Cost:        cluster.DefaultTileCost(),
							RNG:         rng.Fork(),
							JitterSigma: 0.25,
						}
						worker.SetSharedFS(machine.SharedFS)
						worker.RunQueue(func() (int, bool) {
							if nextGranule >= granulesTotal {
								return 0, false
							}
							nextGranule++
							preBusy++
							tl.Record("preprocess", float64(k.Now()), preBusy)
							n := int(float64(cfg.TilesPerFile) * rng.LogNormalFactor(0.15))
							if n < 1 {
								n = 1
							}
							return n, true
						}, func(tiles int) {
							preBusy--
							filesPre++
							res.TilesProduced += tiles
							tl.Record("preprocess", float64(k.Now()), preBusy)
							tileFileReady(tiles)
							if filesPre == granulesTotal {
								spans.Add("preprocess.tiles", tilesStart, float64(k.Now()))
								a.Release()
							}
						}, nil)
					}
				}
			}); err != nil {
				panic(err)
			}
		})
	}

	// ---- Stages 3+4: monitor & trigger, inference --------------------
	// The crawler polls; newly stable tile files trigger a Flow run whose
	// actions pay the dispatch overhead. Inference capacity is a small
	// worker pool (1 in the paper's example).
	inferSrv := sim.NewServer(k, cfg.InferenceWorkers)
	inferBusy := 0
	pendingTriggers := []int{}
	labeledFiles := 0
	var firstFlow, lastInference float64
	firstFlow = -1

	launchInference := func(tiles int) {
		inferSrv.Acquire(1, func() {
			inferBusy++
			tl.Record("inference", float64(k.Now()), inferBusy)
			if firstFlow < 0 {
				firstFlow = float64(k.Now())
			}
			// Flow: infer -> append labels -> move to outbox. Three
			// actions, each paying the dispatch overhead.
			actions := 3
			dur := float64(actions)*cfg.FlowOverhead + float64(tiles)*cfg.InferPerTileSec
			res.FlowActions += actions
			k.After(sim.Duration(dur), func() {
				inferBusy--
				labeledFiles++
				res.TilesLabeled += tiles
				lastInference = float64(k.Now())
				tl.Record("inference", float64(k.Now()), inferBusy)
				inferSrv.Release(1)
			})
		})
	}
	tileFileReady = func(tiles int) {
		pendingTriggers = append(pendingTriggers, tiles)
	}
	var poll func()
	poll = func() {
		for _, tiles := range pendingTriggers {
			launchInference(tiles)
		}
		pendingTriggers = pendingTriggers[:0]
		if labeledFiles < granulesTotal {
			k.After(sim.Duration(cfg.PollInterval), poll)
		}
	}
	k.At(sim.Time(launchDone), poll)

	// ---- Stage 5: shipment -------------------------------------------
	// One Globus Transfer of all labeled NetCDF to Orion once inference
	// finishes. Modeled as a bandwidth-limited copy.
	k.Run()
	if labeledFiles != granulesTotal {
		return nil, fmt.Errorf("experiments: pipeline stalled: %d/%d files labeled", labeledFiles, granulesTotal)
	}
	shipStart := lastInference + cfg.FlowOverhead
	tileMB := float64(res.TilesLabeled) * 0.4 // ≈0.4 MB per 128² ×6 tile record
	shipSeconds := tileMB / 1250              // Slingshot-class 1.25 GB/s effective
	spans.Add("inference.flow", firstFlow, lastInference)
	spans.Add("shipment", shipStart, shipStart+shipSeconds)

	res.TotalSeconds = shipStart + shipSeconds
	res.FilesDownloaded = nFiles
	res.MeanFlowOverhead = cfg.FlowOverhead
	return res, nil
}

// RenderFig6 prints the worker-allocation timeline.
func RenderFig6(res *PipelineResult, buckets int) string {
	return res.Timeline.Render(res.TotalSeconds, buckets)
}

// RenderFig7 prints the latency breakdown.
func RenderFig7(res *PipelineResult) string {
	s := res.Spans.Render()
	s += fmt.Sprintf("\nflow action dispatch overhead: %.0f ms per action (%d actions)\n",
		res.MeanFlowOverhead*1000, res.FlowActions)
	if dl, ok := res.Spans.Get("download.launch"); ok {
		s += fmt.Sprintf("download launch latency: %.2f s (paper: 5.63 s)\n", dl.Duration())
	}
	if pp, ok := res.Spans.Get("preprocess.launch"); ok {
		if pt, ok2 := res.Spans.Get("preprocess.tiles"); ok2 {
			s += fmt.Sprintf("preprocess latency: %.2f s launch + %.2f s tile creation (paper: 32.80 s total)\n",
				pp.Duration(), pt.Duration())
		}
	}
	return s
}
