package core

import (
	"context"
	"fmt"
	"testing"
)

// pinnedReportString renders the deterministic subset of a Report — every
// field except wall-clock telemetry — as one canonical string.
func pinnedReportString(r *Report) string {
	return fmt.Sprintf("granules=%d files=%d bytes=%d tileFiles=%d tiles=%d labeled=%d shipped=%d flowsFailed=%d",
		r.GranulesRequested, r.FilesDownloaded, r.BytesDownloaded,
		r.TileFiles, r.TilesProduced, r.TilesLabeled, r.FilesShipped, r.FlowsFailed)
}

// TestOneShotReportPinned pins the legacy one-shot path's Report to the
// byte-exact pre-refactor outcome on a fixed config: the same granule
// set, test scale, and training seed the pre-engine Pipeline produced
// this golden string for. Any refactor of the run lifecycle (the
// Engine/Run split) must keep the one-shot path byte-equivalent here.
func TestOneShotReportPinned(t *testing.T) {
	granules := findProductiveGranules(t, 3, 3)
	labeler := trainTestLabeler(t, granules[0])
	ts := newArchive(t)
	cfg := testConfig(t, ts.URL, granules)

	p, err := New(cfg, labeler)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := p.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}

	const golden = "granules=3 files=9 bytes=205944 tileFiles=3 tiles=67 labeled=67 shipped=3 flowsFailed=0"
	if got := pinnedReportString(rep); got != golden {
		t.Errorf("one-shot report drifted from the pre-refactor pin:\n got: %s\nwant: %s", got, golden)
	}
}
