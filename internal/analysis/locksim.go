package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// This file approximates, per function scope, which mutexes are held at
// every call and field access — the substrate under lockguard (guarded
// fields must be touched under their mutex) and locksleep (no blocking
// while a mutex is held). The simulation is a statement-tree abstract
// interpretation, not a position scan: `mu.Lock(); if bad { mu.Unlock();
// return }; f = x; mu.Unlock()` keeps the lock held across the early-out
// branch, and `defer mu.Unlock()` holds to the end of the scope. Loops
// run once, branches merge by intersection (held only if held on every
// surviving path), so the result errs toward "not held" — the safe
// direction for lockguard's majority vote and the noisy-but-honest
// direction for flagged accesses.

// lockKey identifies one mutex: the leftmost identifier's object (a
// receiver, local, or package var) plus the mutex field selected from
// it (nil when the identifier is itself the mutex, or receives a
// promoted method from an embedded mutex).
type lockKey struct {
	base  types.Object
	field types.Object
}

// lockMode distinguishes shared from exclusive holds.
type lockMode int

const (
	holdRead  lockMode = 1 // RLock
	holdWrite lockMode = 2 // Lock
)

// heldSet maps each held mutex to the strongest mode on every path.
type heldSet map[lockKey]lockMode

func (h heldSet) clone() heldSet {
	out := make(heldSet, len(h))
	for k, v := range h {
		out[k] = v
	}
	return out
}

// intersect keeps mutexes held on both paths at the weaker mode.
func intersect(a, b heldSet) heldSet {
	out := heldSet{}
	for k, va := range a {
		if vb, ok := b[k]; ok {
			if vb < va {
				va = vb
			}
			out[k] = va
		}
	}
	return out
}

// visitFlags qualifies how a visited node executes.
type visitFlags struct {
	Go         bool     // inside a `go f(...)` call expression
	Deferred   bool     // inside a `defer f(...)` call expression
	SelectComm bool     // the node is a select case's communication op
	Scope      ast.Node // the *ast.FuncDecl or *ast.FuncLit owning the node
}

// lockVisit observes one call, selector, channel operation, select, or
// range statement with the locks held there.
type lockVisit func(n ast.Node, held heldSet, flags visitFlags)

// lockSim drives the simulation over one function declaration and
// every function literal inside it (each literal is its own scope with
// an empty entry state — a goroutine or callback does not inherit the
// frame's locks; it must take its own).
type lockSim struct {
	info   *types.Info
	visit  lockVisit
	lits   []*ast.FuncLit
	scope  ast.Node
	inComm bool
}

// simulateLocks runs the held-mutex simulation over fd, invoking visit
// for every CallExpr, SelectorExpr, channel op, select, and range
// statement with the locks held at that point.
func simulateLocks(fd *ast.FuncDecl, info *types.Info, visit lockVisit) {
	s := &lockSim{info: info, visit: visit, scope: fd}
	s.block(fd.Body.List, heldSet{})
	// Literals queued during the walk, plus any discovered inside them.
	// Each literal is its own scope with an empty entry state.
	for i := 0; i < len(s.lits); i++ {
		s.scope = s.lits[i]
		s.block(s.lits[i].Body.List, heldSet{})
	}
}

// notify invokes the visitor with scope and select-comm context filled.
func (s *lockSim) notify(n ast.Node, held heldSet, flags visitFlags) {
	flags.Scope = s.scope
	flags.SelectComm = flags.SelectComm || s.inComm
	s.visit(n, held, flags)
}

// block simulates a statement list, returning the exit state and
// whether the list always terminates (return/branch/panic).
func (s *lockSim) block(list []ast.Stmt, held heldSet) (heldSet, bool) {
	for _, st := range list {
		var term bool
		held, term = s.stmt(st, held)
		if term {
			return held, true
		}
	}
	return held, false
}

func (s *lockSim) stmt(st ast.Stmt, held heldSet) (heldSet, bool) {
	switch st := st.(type) {
	case *ast.BlockStmt:
		return s.block(st.List, held)
	case *ast.LabeledStmt:
		return s.stmt(st.Stmt, held)
	case *ast.ExprStmt:
		s.exprs(held, visitFlags{}, st.X)
		if call, ok := ast.Unparen(st.X).(*ast.CallExpr); ok {
			if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "panic" {
				if _, builtin := s.info.ObjectOf(id).(*types.Builtin); builtin {
					return held, true
				}
			}
		}
		return held, false
	case *ast.AssignStmt:
		s.exprs(held, visitFlags{}, append(append([]ast.Expr{}, st.Rhs...), st.Lhs...)...)
		return held, false
	case *ast.IncDecStmt:
		s.exprs(held, visitFlags{}, st.X)
		return held, false
	case *ast.SendStmt:
		s.notify(st, held, visitFlags{})
		s.exprs(held, visitFlags{}, st.Chan, st.Value)
		return held, false
	case *ast.DeclStmt:
		if gd, ok := st.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					s.exprs(held, visitFlags{}, vs.Values...)
				}
			}
		}
		return held, false
	case *ast.ReturnStmt:
		s.exprs(held, visitFlags{}, st.Results...)
		return held, true
	case *ast.BranchStmt:
		return held, true
	case *ast.GoStmt:
		s.exprs(held, visitFlags{Go: true}, st.Call)
		return held, false
	case *ast.DeferStmt:
		// A deferred Unlock keeps the mutex held for the rest of the
		// scope (the unlock runs at return); other deferred calls are
		// visited with the current state as an approximation.
		s.exprs(held, visitFlags{Deferred: true}, st.Call)
		return held, false
	case *ast.IfStmt:
		if st.Init != nil {
			held, _ = s.stmt(st.Init, held)
		}
		s.exprs(held, visitFlags{}, st.Cond)
		afterBody, bodyTerm := s.block(st.Body.List, held.clone())
		afterElse, elseTerm := held, false
		if st.Else != nil {
			afterElse, elseTerm = s.stmt(st.Else, held.clone())
		}
		switch {
		case bodyTerm && elseTerm:
			return held, true
		case bodyTerm:
			return afterElse, false
		case elseTerm:
			return afterBody, false
		default:
			return intersect(afterBody, afterElse), false
		}
	case *ast.ForStmt:
		if st.Init != nil {
			held, _ = s.stmt(st.Init, held)
		}
		if st.Cond != nil {
			s.exprs(held, visitFlags{}, st.Cond)
		}
		afterBody, term := s.block(st.Body.List, held.clone())
		if st.Post != nil {
			afterBody, _ = s.stmt(st.Post, afterBody)
		}
		if term || st.Cond == nil {
			// Body always exits via return/branch, or the loop has no
			// condition (runs at least once toward those exits).
			return held, false
		}
		return intersect(held, afterBody), false
	case *ast.RangeStmt:
		s.notify(st, held, visitFlags{})
		s.exprs(held, visitFlags{}, st.X)
		afterBody, term := s.block(st.Body.List, held.clone())
		if term {
			return held, false
		}
		return intersect(held, afterBody), false
	case *ast.SwitchStmt:
		if st.Init != nil {
			held, _ = s.stmt(st.Init, held)
		}
		if st.Tag != nil {
			s.exprs(held, visitFlags{}, st.Tag)
		}
		return s.clauses(st.Body.List, held)
	case *ast.TypeSwitchStmt:
		if st.Init != nil {
			held, _ = s.stmt(st.Init, held)
		}
		return s.clauses(st.Body.List, held)
	case *ast.SelectStmt:
		s.notify(st, held, visitFlags{})
		exit := heldSet(nil)
		allTerm := true
		for _, clause := range st.Body.List {
			cc := clause.(*ast.CommClause)
			branch := held.clone()
			if cc.Comm != nil {
				s.inComm = true
				branch, _ = s.stmt(cc.Comm, branch)
				s.inComm = false
			}
			after, term := s.block(cc.Body, branch)
			if !term {
				allTerm = false
				if exit == nil {
					exit = after
				} else {
					exit = intersect(exit, after)
				}
			}
		}
		if allTerm && len(st.Body.List) > 0 {
			return held, true
		}
		if exit == nil {
			exit = held
		}
		return exit, false
	default:
		return held, false
	}
}

// clauses merges switch/type-switch case bodies: the exit state is the
// intersection of every non-terminating case, plus the entry state
// unless a default clause guarantees some case runs.
func (s *lockSim) clauses(list []ast.Stmt, held heldSet) (heldSet, bool) {
	exit := heldSet(nil)
	hasDefault := false
	allTerm := true
	for _, clause := range list {
		cc, ok := clause.(*ast.CaseClause)
		if !ok {
			continue
		}
		if cc.List == nil {
			hasDefault = true
		}
		branch := held.clone()
		s.exprs(branch, visitFlags{}, cc.List...)
		after, term := s.block(cc.Body, branch)
		if !term {
			allTerm = false
			if exit == nil {
				exit = after
			} else {
				exit = intersect(exit, after)
			}
		}
	}
	if hasDefault && allTerm && len(list) > 0 {
		return held, true
	}
	if exit == nil {
		exit = held
	}
	if !hasDefault {
		exit = intersect(exit, held)
	}
	return exit, false
}

// exprs walks expressions in source order: visiting calls and
// selectors with the current held set, applying Lock/Unlock effects as
// they are encountered, and queuing function literals as separate
// scopes.
func (s *lockSim) exprs(held heldSet, flags visitFlags, roots ...ast.Expr) {
	for _, root := range roots {
		if root == nil {
			continue
		}
		ast.Inspect(root, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncLit:
				// Notified at creation with the enclosing frame's held set
				// (so analyzers can reason about synchronously-invoked
				// closures), then simulated as its own scope.
				s.notify(n, held, flags)
				s.lits = append(s.lits, n)
				return false
			case *ast.CallExpr:
				s.notify(n, held, flags)
				key, op := lockOpOf(s.info, n)
				if op != opNone && key.base != nil {
					switch op {
					case opLock:
						held[key] = holdWrite
					case opRLock:
						if held[key] < holdRead {
							held[key] = holdRead
						}
					case opUnlock, opRUnlock:
						if !flags.Deferred {
							delete(held, key)
						}
					}
				}
				return true
			case *ast.UnaryExpr:
				if n.Op == token.ARROW {
					s.notify(n, held, flags)
				}
				return true
			case *ast.SelectorExpr:
				s.notify(n, held, flags)
				return true
			}
			return true
		})
	}
}

type lockOpKind int

const (
	opNone lockOpKind = iota
	opLock
	opRLock
	opUnlock
	opRUnlock
)

// lockOpOf recognizes sync.Mutex/RWMutex Lock/Unlock/RLock/RUnlock
// calls and derives the mutex's identity key.
func lockOpOf(info *types.Info, call *ast.CallExpr) (lockKey, lockOpKind) {
	fn := calleeFunc(info, call)
	if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return lockKey{}, opNone
	}
	if !isMethodOn(fn, "sync", "Mutex", fn.Name()) && !isMethodOn(fn, "sync", "RWMutex", fn.Name()) {
		return lockKey{}, opNone
	}
	var op lockOpKind
	switch fn.Name() {
	case "Lock":
		op = opLock
	case "RLock":
		op = opRLock
	case "Unlock":
		op = opUnlock
	case "RUnlock":
		op = opRUnlock
	default:
		return lockKey{}, opNone
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return lockKey{}, opNone
	}
	return keyOf(info, sel.X), op
}

// keyOf derives the lock identity of a mutex-valued expression:
// `mu` → (mu, nil); `r.mu`, `r.inner.mu` → (r, mu-field). Expressions
// without an identifier root (map lookups, call results) are
// untracked.
func keyOf(info *types.Info, expr ast.Expr) lockKey {
	switch e := ast.Unparen(expr).(type) {
	case *ast.Ident:
		return lockKey{base: info.ObjectOf(e)}
	case *ast.SelectorExpr:
		return lockKey{base: rootIdentObj(info, e.X), field: info.ObjectOf(e.Sel)}
	}
	return lockKey{}
}

// rootIdentObj resolves the leftmost identifier of a selector chain.
func rootIdentObj(info *types.Info, expr ast.Expr) types.Object {
	for {
		switch e := ast.Unparen(expr).(type) {
		case *ast.Ident:
			return info.ObjectOf(e)
		case *ast.SelectorExpr:
			expr = e.X
		case *ast.StarExpr:
			expr = e.X
		case *ast.IndexExpr:
			expr = e.X
		default:
			return nil
		}
	}
}
