// Inference-only forward passes.
//
// Infer and InferBatch differ from Forward in two ways that matter for
// the serving path:
//
//   - No state is saved for Backward, so one model can serve concurrent
//     calls as long as each caller brings its own allocator (an arena
//     shard from tensor.ShardedArena.Acquire, or a private Arena).
//   - Scratch and output buffers come from a tensor.Allocator, so
//     steady-state inference recycles memory instead of regrowing the
//     heap every batch.
//
// The two entry points trade latency against throughput:
//
//   - Infer is the small-batch/latency path: convolutions run through
//     the fused direct kernel (no im2col matrix at all), which wins
//     when the batch is a handful of tiles and the im2col buffer would
//     be pure overhead.
//   - InferBatch is the throughput path: each convolution materializes
//     the im2col matrix in arena scratch and runs ONE blocked SIMD GEMM
//     for the whole batch — the same kernel schedule as Forward, minus
//     its allocations. For encode-sized batches (256 tiles) the GEMM
//     runs at SIMD rate while the fused kernel is bound by scalar FMAs,
//     which is exactly the BENCH_4 arena-slower-than-noarena regression
//     this path erases.
//
// Buffer ownership: a layer's Infer/InferBatch may return an
// arena-owned tensor or a view of its input (reshapes). The Sequential
// drivers recycle each intermediate back into the allocator once the
// next layer has consumed it, except when the next output aliases it.
// The tensor returned to the caller is arena-owned: the caller must
// copy out what it keeps and should Put the tensor back. Never Put the
// same backing twice.

package nn

import (
	"fmt"
	"math"

	"github.com/eoml/eoml/internal/tensor"
)

func sigmoid32(v float32) float32 {
	return float32(1 / (1 + math.Exp(-float64(v))))
}

// sameBase reports whether two tensors share a backing array (one is a
// reshape view of the other).
func sameBase(a, b *tensor.T) bool {
	return len(a.Data) > 0 && len(b.Data) > 0 && &a.Data[0] == &b.Data[0]
}

// Infer computes the convolution through the fused direct kernel,
// skipping the im2col matrix entirely — for single-file batches that
// matrix is 9× the input and dominates the memory traffic.
func (l *Conv2D) Infer(x *tensor.T, a tensor.Allocator) *tensor.T {
	g := l.geom
	if len(x.Shape) != 4 || x.Shape[1] != g.InC || x.Shape[2] != g.InH || x.Shape[3] != g.InW {
		panic(fmt.Sprintf("nn: %s: input %v, want [N %d %d %d]", l.label, x.Shape, g.InC, g.InH, g.InW))
	}
	// Transpose weights from the matmul layout [InC*K*K, OutC] kept for
	// training into the [OutC, InC, K, K] layout the fused kernel reads.
	kk := g.InC * g.Kernel * g.Kernel
	wd := a.Get(g.OutC, g.InC, g.Kernel, g.Kernel)
	for r := 0; r < kk; r++ {
		row := l.w.W.Data[r*g.OutC : (r+1)*g.OutC]
		for oc, v := range row {
			wd.Data[oc*kk+r] = v
		}
	}
	out := a.Get(x.Shape[0], g.OutC, g.OutH, g.OutW)
	tensor.ConvFusedInto(x, wd, l.b.W, g, out)
	a.Put(wd)
	return out
}

// InferBatch computes the convolution as im2col + one blocked GEMM over
// the whole batch, with both the column matrix and the product living
// in arena scratch. Weights stay in their training layout [InC*K*K,
// OutC], so no per-call transpose is needed.
func (l *Conv2D) InferBatch(x *tensor.T, a tensor.Allocator) *tensor.T {
	g := l.geom
	if len(x.Shape) != 4 || x.Shape[1] != g.InC || x.Shape[2] != g.InH || x.Shape[3] != g.InW {
		panic(fmt.Sprintf("nn: %s: input %v, want [N %d %d %d]", l.label, x.Shape, g.InC, g.InH, g.InW))
	}
	n := x.Shape[0]
	plane := g.OutH * g.OutW
	rows, width := n*plane, g.InC*g.Kernel*g.Kernel
	cols := a.Get(rows, width)
	tensor.Im2ColInto(x, g, cols) // overwrites every element
	prod := a.Get(rows, g.OutC)
	tensor.MatMulInto(cols, l.w.W, prod)
	a.Put(cols)
	// Rearrange the [N*OH*OW, OutC] product into NCHW and add the bias,
	// the same epilogue Forward runs — results are bit-identical.
	out := a.Get(n, g.OutC, g.OutH, g.OutW)
	bias := l.b.W.Data
	for b := 0; b < n; b++ {
		for p := 0; p < plane; p++ {
			row := prod.Data[(b*plane+p)*g.OutC:]
			for oc := 0; oc < g.OutC; oc++ {
				out.Data[(b*g.OutC+oc)*plane+p] = row[oc] + bias[oc]
			}
		}
	}
	a.Put(prod)
	return out
}

// invalidateQuant drops the cached int8 weights; Forward calls it so
// the next Q8 inference requantizes post-training-step weights.
func (l *Conv2D) invalidateQuant() {
	l.qmu.Lock()
	l.qw = nil
	l.qmu.Unlock()
}

// quantWeights returns the per-output-channel int8 weights, quantizing
// on first use and caching until the next Forward invalidates.
func (l *Conv2D) quantWeights() *tensor.QWeights {
	l.qmu.Lock()
	defer l.qmu.Unlock()
	if l.qw == nil {
		l.qw = tensor.QuantizeWeights(l.w.W)
	}
	return l.qw
}

// InferBatchQ8 is InferBatch with the GEMM in symmetric int8: the input
// tensor is quantized once per call (cheaper than quantizing the
// K²-times-larger column matrix, and bit-identical to it — symmetric
// quantization maps the zero padding to int8 zero), the bytes are
// gathered into an int8 column matrix, and one int8×int8→int32 GEMM
// rescales directly into the float product. Bias addition and the NCHW
// epilogue stay in float32, identical to InferBatch.
func (l *Conv2D) InferBatchQ8(x *tensor.T, a tensor.Allocator) *tensor.T {
	g := l.geom
	if len(x.Shape) != 4 || x.Shape[1] != g.InC || x.Shape[2] != g.InH || x.Shape[3] != g.InW {
		panic(fmt.Sprintf("nn: %s: input %v, want [N %d %d %d]", l.label, x.Shape, g.InC, g.InH, g.InW))
	}
	qw := l.quantWeights()
	n := x.Shape[0]
	plane := g.OutH * g.OutW
	rows, width := n*plane, g.InC*g.Kernel*g.Kernel
	xq := a.GetI8(len(x.Data))
	sx := tensor.Quantize(xq, x.Data)
	cols := a.GetI8(rows * width)
	tensor.Im2ColQ8Into(xq, n, g, cols)
	a.PutI8(xq)
	prod := a.Get(rows, g.OutC)
	tensor.MatMulQ8Into(cols, sx, qw, rows, prod.Data)
	a.PutI8(cols)
	out := a.Get(n, g.OutC, g.OutH, g.OutW)
	bias := l.b.W.Data
	for b := 0; b < n; b++ {
		for p := 0; p < plane; p++ {
			row := prod.Data[(b*plane+p)*g.OutC:]
			for oc := 0; oc < g.OutC; oc++ {
				out.Data[(b*g.OutC+oc)*plane+p] = row[oc] + bias[oc]
			}
		}
	}
	a.Put(prod)
	return out
}

// Infer computes x·W + b into an arena buffer.
func (l *Dense) Infer(x *tensor.T, a tensor.Allocator) *tensor.T {
	if len(x.Shape) != 2 || x.Shape[1] != l.in {
		panic(fmt.Sprintf("nn: %s: input %v, want [N %d]", l.label, x.Shape, l.in))
	}
	out := a.Get(x.Shape[0], l.out)
	tensor.MatMulInto(x, l.w.W, out)
	bias := l.b.W.Data
	for r := 0; r < out.Shape[0]; r++ {
		row := out.Data[r*l.out : (r+1)*l.out]
		for j, bv := range bias {
			row[j] += bv
		}
	}
	return out
}

// InferBatch is Infer: a dense layer is already one batch-wide GEMM.
func (l *Dense) InferBatch(x *tensor.T, a tensor.Allocator) *tensor.T { return l.Infer(x, a) }

// invalidateQuant drops the cached int8 weights (see Conv2D).
func (l *Dense) invalidateQuant() {
	l.qmu.Lock()
	l.qw = nil
	l.qmu.Unlock()
}

// quantWeights returns the cached per-output-channel int8 weights.
func (l *Dense) quantWeights() *tensor.QWeights {
	l.qmu.Lock()
	defer l.qmu.Unlock()
	if l.qw == nil {
		l.qw = tensor.QuantizeWeights(l.w.W)
	}
	return l.qw
}

// InferBatchQ8 computes x·W + b with the GEMM in symmetric int8: x is
// quantized per tensor, W per output channel, and the int32 accumulator
// rescales straight into the float output before the float bias add.
func (l *Dense) InferBatchQ8(x *tensor.T, a tensor.Allocator) *tensor.T {
	if len(x.Shape) != 2 || x.Shape[1] != l.in {
		panic(fmt.Sprintf("nn: %s: input %v, want [N %d]", l.label, x.Shape, l.in))
	}
	qw := l.quantWeights()
	m := x.Shape[0]
	xq := a.GetI8(len(x.Data))
	sx := tensor.Quantize(xq, x.Data)
	out := a.Get(m, l.out)
	tensor.MatMulQ8Into(xq, sx, qw, m, out.Data)
	a.PutI8(xq)
	bias := l.b.W.Data
	for r := 0; r < m; r++ {
		row := out.Data[r*l.out : (r+1)*l.out]
		for j, bv := range bias {
			row[j] += bv
		}
	}
	return out
}

// Infer applies the activation into an arena buffer.
func (l *LeakyReLU) Infer(x *tensor.T, a tensor.Allocator) *tensor.T {
	out := a.Get(x.Shape...)
	for i, v := range x.Data {
		if v < 0 {
			v *= l.alpha
		}
		out.Data[i] = v
	}
	return out
}

// InferBatch is Infer: the activation is elementwise either way.
func (l *LeakyReLU) InferBatch(x *tensor.T, a tensor.Allocator) *tensor.T { return l.Infer(x, a) }

// InferBatchQ8 is Infer: activations stay in float32; only GEMM layers
// quantize.
func (l *LeakyReLU) InferBatchQ8(x *tensor.T, a tensor.Allocator) *tensor.T { return l.Infer(x, a) }

// Infer applies the logistic function into an arena buffer.
func (l *Sigmoid) Infer(x *tensor.T, a tensor.Allocator) *tensor.T {
	out := a.Get(x.Shape...)
	for i, v := range x.Data {
		out.Data[i] = sigmoid32(v)
	}
	return out
}

// InferBatch is Infer: the activation is elementwise either way.
func (l *Sigmoid) InferBatch(x *tensor.T, a tensor.Allocator) *tensor.T { return l.Infer(x, a) }

// InferBatchQ8 is Infer: activations stay in float32.
func (l *Sigmoid) InferBatchQ8(x *tensor.T, a tensor.Allocator) *tensor.T { return l.Infer(x, a) }

// Infer returns a flattened view; no buffer changes hands.
func (l *Flatten) Infer(x *tensor.T, _ tensor.Allocator) *tensor.T {
	return x.Reshape(x.Shape[0], x.Len()/x.Shape[0])
}

// InferBatch is Infer: reshapes are free at any batch size.
func (l *Flatten) InferBatch(x *tensor.T, a tensor.Allocator) *tensor.T { return l.Infer(x, a) }

// InferBatchQ8 is Infer: reshapes carry no arithmetic to quantize.
func (l *Flatten) InferBatchQ8(x *tensor.T, a tensor.Allocator) *tensor.T { return l.Infer(x, a) }

// Infer returns an NCHW view; no buffer changes hands.
func (l *Reshape4D) Infer(x *tensor.T, _ tensor.Allocator) *tensor.T {
	return x.Reshape(x.Shape[0], l.c, l.h, l.w)
}

// InferBatch is Infer: reshapes are free at any batch size.
func (l *Reshape4D) InferBatch(x *tensor.T, a tensor.Allocator) *tensor.T { return l.Infer(x, a) }

// InferBatchQ8 is Infer: reshapes carry no arithmetic to quantize.
func (l *Reshape4D) InferBatchQ8(x *tensor.T, a tensor.Allocator) *tensor.T { return l.Infer(x, a) }

// Infer upsamples into an arena buffer.
func (l *Upsample2x) Infer(x *tensor.T, a tensor.Allocator) *tensor.T {
	out := a.Get(x.Shape[0], x.Shape[1], 2*x.Shape[2], 2*x.Shape[3])
	tensor.Upsample2xInto(x, out)
	return out
}

// InferBatch is Infer: the copy pattern is batch-size agnostic.
func (l *Upsample2x) InferBatch(x *tensor.T, a tensor.Allocator) *tensor.T { return l.Infer(x, a) }

// InferBatchQ8 is Infer: nearest-neighbor copies carry no arithmetic.
func (l *Upsample2x) InferBatchQ8(x *tensor.T, a tensor.Allocator) *tensor.T { return l.Infer(x, a) }

// run drives the layer chain through step, recycling every intermediate
// buffer back into the allocator as soon as the next layer has consumed
// it (unless the new output aliases it — a reshape view — or the
// caller's own input).
func (s *Sequential) run(x *tensor.T, a tensor.Allocator, step func(Layer, *tensor.T, tensor.Allocator) *tensor.T) *tensor.T {
	if a == nil {
		a = (*tensor.Arena)(nil) // degrade to plain allocation
	}
	cur := x
	for _, l := range s.Layers {
		next := step(l, cur, a)
		if cur != x && !sameBase(cur, next) && !sameBase(cur, x) {
			a.Put(cur)
		}
		cur = next
	}
	return cur
}

// Infer runs all layers through the fused small-batch kernels. The
// returned tensor is arena-owned; the caller copies out what it keeps
// and Puts it back.
func (s *Sequential) Infer(x *tensor.T, a tensor.Allocator) *tensor.T {
	return s.run(x, a, func(l Layer, x *tensor.T, a tensor.Allocator) *tensor.T { return l.Infer(x, a) })
}

// InferBatch runs all layers through the batch-GEMM kernels: one
// blocked matmul per layer for the whole batch. Same ownership contract
// as Infer.
func (s *Sequential) InferBatch(x *tensor.T, a tensor.Allocator) *tensor.T {
	return s.run(x, a, func(l Layer, x *tensor.T, a tensor.Allocator) *tensor.T { return l.InferBatch(x, a) })
}

// InferBatchQ8 runs all layers through the symmetric int8 GEMM kernels;
// InferBatch is its accuracy oracle (ricc pins the divergence with a
// cosine-similarity floor and a label-flip gate). Same ownership
// contract as Infer.
func (s *Sequential) InferBatchQ8(x *tensor.T, a tensor.Allocator) *tensor.T {
	return s.run(x, a, func(l Layer, x *tensor.T, a tensor.Allocator) *tensor.T { return l.InferBatchQ8(x, a) })
}
