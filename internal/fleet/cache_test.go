package fleet

import (
	"context"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"
)

// cacheFill returns a fill func that writes content at destDir/name and
// counts invocations.
func cacheFill(t *testing.T, destDir, name, content string, calls *atomic.Int64) func(context.Context) (string, error) {
	t.Helper()
	return func(context.Context) (string, error) {
		calls.Add(1)
		path := filepath.Join(destDir, name)
		if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
			return "", err
		}
		return path, nil
	}
}

func TestDownloadCacheHitSkipsFill(t *testing.T) {
	cache, err := NewDownloadCache(t.TempDir(), 0)
	if err != nil {
		t.Fatal(err)
	}
	key := CacheKey{ArchiveURL: "http://archive", Token: "tok", Name: "g1.hdf"}
	var calls atomic.Int64

	dir1 := t.TempDir()
	path, hit, err := cache.Fetch(context.Background(), key, dir1, cacheFill(t, dir1, key.Name, "payload-1", &calls))
	if err != nil || hit {
		t.Fatalf("first fetch: path=%q hit=%v err=%v", path, hit, err)
	}

	dir2 := t.TempDir()
	path, hit, err = cache.Fetch(context.Background(), key, dir2, func(context.Context) (string, error) {
		t.Fatal("fill ran on a warm key")
		return "", nil
	})
	if err != nil || !hit {
		t.Fatalf("second fetch: hit=%v err=%v", hit, err)
	}
	got, err := os.ReadFile(path)
	if err != nil || string(got) != "payload-1" {
		t.Fatalf("materialized content %q err=%v", got, err)
	}
	if calls.Load() != 1 {
		t.Fatalf("fill ran %d times, want 1", calls.Load())
	}
	hits, misses, _ := cache.Stats()
	if hits != 1 || misses != 1 {
		t.Fatalf("stats hits=%d misses=%d, want 1/1", hits, misses)
	}
}

func TestDownloadCacheKeysSeparateTokens(t *testing.T) {
	cache, err := NewDownloadCache(t.TempDir(), 0)
	if err != nil {
		t.Fatal(err)
	}
	var calls atomic.Int64
	for i, tok := range []string{"alice", "bob"} {
		dir := t.TempDir()
		key := CacheKey{ArchiveURL: "http://archive", Token: tok, Name: "g.hdf"}
		_, hit, err := cache.Fetch(context.Background(), key, dir, cacheFill(t, dir, key.Name, fmt.Sprintf("tenant-%d", i), &calls))
		if err != nil || hit {
			t.Fatalf("tenant %d: hit=%v err=%v", i, hit, err)
		}
	}
	if calls.Load() != 2 {
		t.Fatalf("fill ran %d times, want 2 (distinct tokens must not share entries)", calls.Load())
	}
}

func TestDownloadCacheLRUEviction(t *testing.T) {
	// Budget fits two 8-byte payloads; inserting a third evicts the
	// least recently used.
	cache, err := NewDownloadCache(t.TempDir(), 16)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	fetch := func(name, content string) {
		t.Helper()
		dir := t.TempDir()
		var calls atomic.Int64
		if _, _, err := cache.Fetch(ctx, CacheKey{ArchiveURL: "u", Token: "t", Name: name}, dir, cacheFill(t, dir, name, content, &calls)); err != nil {
			t.Fatal(err)
		}
	}
	fetch("a", "aaaaaaaa")
	fetch("b", "bbbbbbbb")
	// Touch a so b becomes LRU.
	dir := t.TempDir()
	if _, hit, err := cache.Fetch(ctx, CacheKey{ArchiveURL: "u", Token: "t", Name: "a"}, dir, nil); err != nil || !hit {
		t.Fatalf("touch a: hit=%v err=%v", hit, err)
	}
	fetch("c", "cccccccc")

	if got := cache.SizeBytes(); got != 16 {
		t.Fatalf("cache size %d, want 16", got)
	}
	_, _, evictions := cache.Stats()
	if evictions != 1 {
		t.Fatalf("evictions=%d, want 1", evictions)
	}
	// b must refetch; a must still hit.
	var calls atomic.Int64
	dirB := t.TempDir()
	if _, hit, err := cache.Fetch(ctx, CacheKey{ArchiveURL: "u", Token: "t", Name: "b"}, dirB, cacheFill(t, dirB, "b", "bbbbbbbb", &calls)); err != nil || hit {
		t.Fatalf("refetch b: hit=%v err=%v", hit, err)
	}
	if calls.Load() != 1 {
		t.Fatalf("b fill ran %d times, want 1", calls.Load())
	}
}

func TestDownloadCacheCorruptionEvictsAndRefetches(t *testing.T) {
	dir := t.TempDir()
	cache, err := NewDownloadCache(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	key := CacheKey{ArchiveURL: "u", Token: "t", Name: "g.hdf"}
	var calls atomic.Int64
	d1 := t.TempDir()
	if _, _, err := cache.Fetch(ctx, key, d1, cacheFill(t, d1, key.Name, "good-bytes", &calls)); err != nil {
		t.Fatal(err)
	}

	// Truncate the cached payload behind the cache's back.
	data := filepath.Join(dir, key.hash()+".granule")
	if err := os.WriteFile(data, []byte("trunc"), 0o644); err != nil {
		t.Fatal(err)
	}

	d2 := t.TempDir()
	path, hit, err := cache.Fetch(ctx, key, d2, cacheFill(t, d2, key.Name, "good-bytes", &calls))
	if err != nil || hit {
		t.Fatalf("corrupted entry served as hit=%v err=%v", hit, err)
	}
	got, _ := os.ReadFile(path)
	if string(got) != "good-bytes" {
		t.Fatalf("refetched content %q", got)
	}
	if calls.Load() != 2 {
		t.Fatalf("fill ran %d times, want 2 (corruption must force a refetch)", calls.Load())
	}
	_, _, evictions := cache.Stats()
	if evictions != 1 {
		t.Fatalf("evictions=%d, want 1", evictions)
	}
	// The repaired entry is trustworthy again.
	d3 := t.TempDir()
	if _, hit, err := cache.Fetch(ctx, key, d3, nil); err != nil || !hit {
		t.Fatalf("post-repair fetch: hit=%v err=%v", hit, err)
	}
}

func TestDownloadCacheSingleflight(t *testing.T) {
	cache, err := NewDownloadCache(t.TempDir(), 0)
	if err != nil {
		t.Fatal(err)
	}
	key := CacheKey{ArchiveURL: "u", Token: "t", Name: "g.hdf"}
	destDir := t.TempDir()
	var calls atomic.Int64
	gate := make(chan struct{})
	fill := func(context.Context) (string, error) {
		calls.Add(1)
		<-gate
		path := filepath.Join(destDir, key.Name)
		if err := os.WriteFile(path, []byte("shared"), 0o644); err != nil {
			return "", err
		}
		return path, nil
	}

	const racers = 8
	var wg sync.WaitGroup
	errs := make([]error, racers)
	started := make(chan struct{}, racers)
	for i := 0; i < racers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			started <- struct{}{}
			_, _, errs[i] = cache.Fetch(context.Background(), key, destDir, fill)
		}(i)
	}
	for i := 0; i < racers; i++ {
		<-started
	}
	close(gate)
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("racer %d: %v", i, err)
		}
	}
	if calls.Load() != 1 {
		t.Fatalf("fill ran %d times under contention, want 1", calls.Load())
	}
}

func TestDownloadCacheRebuildsFromDisk(t *testing.T) {
	dir := t.TempDir()
	cache, err := NewDownloadCache(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	key := CacheKey{ArchiveURL: "u", Token: "t", Name: "g.hdf"}
	var calls atomic.Int64
	d1 := t.TempDir()
	if _, _, err := cache.Fetch(context.Background(), key, d1, cacheFill(t, d1, key.Name, "persisted", &calls)); err != nil {
		t.Fatal(err)
	}

	// A restarted worker reopens the same directory and keeps the warm set.
	reopened, err := NewDownloadCache(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	d2 := t.TempDir()
	path, hit, err := reopened.Fetch(context.Background(), key, d2, nil)
	if err != nil || !hit {
		t.Fatalf("fetch after reopen: hit=%v err=%v", hit, err)
	}
	got, _ := os.ReadFile(path)
	if string(got) != "persisted" {
		t.Fatalf("content %q after reopen", got)
	}
}

func TestResultCacheMemoizesAndEvicts(t *testing.T) {
	rc := NewResultCache(2)
	if _, ok := rc.Get("a"); ok {
		t.Fatal("empty cache returned a value")
	}
	rc.Put("a", 1)
	rc.Put("b", 2)
	if v, ok := rc.Get("a"); !ok || v.(int) != 1 {
		t.Fatalf("get a = %v %v", v, ok)
	}
	// b is now LRU; inserting c evicts it.
	rc.Put("c", 3)
	if _, ok := rc.Get("b"); ok {
		t.Fatal("b survived past the bound")
	}
	if v, ok := rc.Get("a"); !ok || v.(int) != 1 {
		t.Fatalf("a evicted wrongly: %v %v", v, ok)
	}
	hits, misses, evictions := rc.Stats()
	if hits != 2 || misses != 2 || evictions != 1 {
		t.Fatalf("stats hits=%d misses=%d evictions=%d", hits, misses, evictions)
	}
	rc.Delete("a")
	if _, ok := rc.Get("a"); ok {
		t.Fatal("a survived Delete")
	}
}
