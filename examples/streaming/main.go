// Streaming + continual learning: the paper's §V vision of "more dynamic
// AI applications that involve training new versions of the models,
// continual learning and inferring with batch as well as streaming data".
//
// Day 1 is processed as a batch and used to train the model. Day 2 then
// arrives as a *stream* of granules (a simulated downlink); each granule
// is downloaded and labeled as it lands. Finally the model is continually
// updated on the day-2 tiles with replay from day 1, and the drift of the
// encoder on day-1 data is reported with and without that update — plus
// the provenance lineage of one shipped product.
//
//	go run ./examples/streaming
package main

import (
	"context"
	"fmt"
	"log"
	"net/http/httptest"
	"os"
	"path/filepath"
	"time"

	"github.com/eoml/eoml"
)

func main() {
	const scale = 32
	archive, err := eoml.NewArchiveServer(eoml.ArchiveOptions{ScaleDown: scale})
	if err != nil {
		log.Fatal(err)
	}
	server := httptest.NewServer(archive)
	defer server.Close()

	root, err := os.MkdirTemp("", "eoml-streaming-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(root)

	mkcfg := func(day int, sub string) eoml.Config {
		cfg := eoml.DefaultConfig()
		cfg.ArchiveURL = server.URL
		cfg.DOY = day
		cfg.TilePixels = 4
		cfg.PreprocessWorkers = 4
		cfg.PollInterval = 20 * time.Millisecond
		cfg.DataDir = filepath.Join(root, sub, "data")
		cfg.TileDir = filepath.Join(root, sub, "tiles")
		cfg.OutboxDir = filepath.Join(root, sub, "outbox")
		cfg.DestDir = filepath.Join(root, sub, "dest")
		return cfg
	}
	ctx := context.Background()

	// ---- Day 1: batch training ---------------------------------------
	day1 := mkcfg(1, "day1")
	g1, err := eoml.FindDayGranules(day1, scale, 4, 4)
	if err != nil {
		log.Fatal(err)
	}
	day1.Granules = g1
	fmt.Printf("streaming: training on day 1 granules %v…\n", g1)
	labeler, err := eoml.TrainFromArchive(ctx, day1, eoml.TrainOptions{Classes: 6, Epochs: 3, Seed: 9})
	if err != nil {
		log.Fatal(err)
	}

	// Keep day-1 tiles in a replay buffer and as a drift probe.
	pipe1, err := eoml.NewPipeline(day1, labeler)
	if err != nil {
		log.Fatal(err)
	}
	if _, err := pipe1.Run(ctx); err != nil {
		log.Fatal(err)
	}
	var day1Tiles []*eoml.Tile
	shipped1, _ := filepath.Glob(filepath.Join(day1.DestDir, "*.nc"))
	for _, path := range shipped1 {
		tiles, err := eoml.ReadTiles(path)
		if err != nil {
			log.Fatal(err)
		}
		day1Tiles = append(day1Tiles, tiles...)
	}
	replay, err := eoml.NewReplayBuffer(256, 10)
	if err != nil {
		log.Fatal(err)
	}
	replay.Add(day1Tiles)
	driftBefore, err := eoml.LabelerDriftOn(labeler, day1Tiles)
	if err != nil {
		log.Fatal(err)
	}

	// ---- Day 2: streaming inference with provenance -------------------
	day2 := mkcfg(2, "day2")
	g2, err := eoml.FindDayGranules(day2, scale, 4, 4)
	if err != nil {
		log.Fatal(err)
	}
	pipe2, err := eoml.NewPipeline(day2, labeler)
	if err != nil {
		log.Fatal(err)
	}
	prov := eoml.NewProvenanceStore()
	pipe2.SetProvenance(prov)

	arrivals := make(chan int)
	go func() {
		defer close(arrivals)
		for _, idx := range g2 {
			fmt.Printf("streaming: granule %d downlinked\n", idx)
			arrivals <- idx
			time.Sleep(30 * time.Millisecond)
		}
	}()
	rep, err := pipe2.RunStream(ctx, arrivals)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("streaming: day 2 stream:", rep.Summary())

	// ---- Continual update with replay ----------------------------------
	var day2Tiles []*eoml.Tile
	shipped2, _ := filepath.Glob(filepath.Join(day2.DestDir, "*.nc"))
	for _, path := range shipped2 {
		tiles, err := eoml.ReadTiles(path)
		if err != nil {
			log.Fatal(err)
		}
		day2Tiles = append(day2Tiles, tiles...)
	}
	if err := eoml.UpdateLabeler(labeler, day2Tiles, replay, 3); err != nil {
		log.Fatal(err)
	}
	driftAfter, err := eoml.LabelerDriftOn(labeler, day1Tiles)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("streaming: continual update on %d day-2 tiles with replay — day-1 reconstruction error %.5f → %.5f\n",
		len(day2Tiles), driftBefore, driftAfter)

	// ---- Provenance lineage of one shipped product ---------------------
	if len(shipped2) > 0 {
		name := filepath.Base(shipped2[0])
		steps, err := prov.Lineage("shipped:" + name)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\nprovenance of %s:\n", name)
		for _, s := range steps {
			fmt.Printf("  %-10s by %-16s inputs=%d\n", s.Activity.Name, s.Activity.Agent, len(s.Inputs))
		}
	}
}
