package provenance

import (
	"bytes"
	"strings"
	"testing"
	"time"
)

// buildEOMLGraph records the lineage of one labeled tile file:
// granules -> preprocess -> tiles -> inference -> labeled -> shipment.
func buildEOMLGraph(t *testing.T) *Store {
	t.Helper()
	s := NewStore()
	must := func(err error) {
		t.Helper()
		if err != nil {
			t.Fatal(err)
		}
	}
	must(s.AddEntity(Entity{ID: "mod02", Kind: "granule", URI: "laads://MOD021KM.A2022001.1230"}))
	must(s.AddEntity(Entity{ID: "mod03", Kind: "granule", URI: "laads://MOD03.A2022001.1230"}))
	must(s.AddEntity(Entity{ID: "mod06", Kind: "granule", URI: "laads://MOD06_L2.A2022001.1230"}))
	must(s.AddEntity(Entity{ID: "tiles", Kind: "tiles", URI: "file:///scratch/tiles.nc"}))
	must(s.AddEntity(Entity{ID: "model", Kind: "model", URI: "file:///models/ricc.hdf"}))
	must(s.AddEntity(Entity{ID: "labeled", Kind: "tiles", URI: "file:///outbox/tiles.nc"}))
	must(s.AddEntity(Entity{ID: "shipped", Kind: "tiles", URI: "orion:///aicca/tiles.nc"}))

	now := time.Now()
	must(s.AddActivity(Activity{
		ID: "pre-1", Name: "preprocess", Agent: "defiant",
		Started: now, Ended: now.Add(time.Second),
		Inputs: []string{"mod02", "mod03", "mod06"}, Outputs: []string{"tiles"},
	}))
	must(s.AddActivity(Activity{
		ID: "inf-1", Name: "inference", Agent: "defiant",
		Started: now.Add(time.Second), Ended: now.Add(2 * time.Second),
		Inputs: []string{"tiles", "model"}, Outputs: []string{"labeled"},
	}))
	must(s.AddActivity(Activity{
		ID: "ship-1", Name: "shipment", Agent: "globus",
		Started: now.Add(2 * time.Second), Ended: now.Add(3 * time.Second),
		Inputs: []string{"labeled"}, Outputs: []string{"shipped"},
	}))
	return s
}

func TestLineageWalksToSources(t *testing.T) {
	s := buildEOMLGraph(t)
	steps, err := s.Lineage("shipped")
	if err != nil {
		t.Fatal(err)
	}
	if len(steps) != 3 {
		t.Fatalf("steps = %d", len(steps))
	}
	if steps[0].Activity.Name != "shipment" || steps[1].Activity.Name != "inference" || steps[2].Activity.Name != "preprocess" {
		t.Fatalf("order: %v %v %v", steps[0].Activity.Name, steps[1].Activity.Name, steps[2].Activity.Name)
	}
	// The deepest step's inputs are the three granules.
	if len(steps[2].Inputs) != 3 {
		t.Fatalf("source inputs: %v", steps[2].Inputs)
	}
	// Source entity has no lineage.
	src, err := s.Lineage("mod02")
	if err != nil {
		t.Fatal(err)
	}
	if len(src) != 0 {
		t.Fatalf("granule lineage = %v", src)
	}
	if _, err := s.Lineage("ghost"); err == nil {
		t.Fatal("unknown entity accepted")
	}
}

func TestDerivedWalksForward(t *testing.T) {
	s := buildEOMLGraph(t)
	derived, err := s.Derived("mod02")
	if err != nil {
		t.Fatal(err)
	}
	ids := make([]string, len(derived))
	for i, e := range derived {
		ids[i] = e.ID
	}
	want := "labeled shipped tiles"
	if strings.Join(ids, " ") != want {
		t.Fatalf("derived = %v, want %s", ids, want)
	}
	leaf, err := s.Derived("shipped")
	if err != nil || len(leaf) != 0 {
		t.Fatalf("leaf derived = %v, %v", leaf, err)
	}
}

func TestStoreValidation(t *testing.T) {
	s := NewStore()
	if err := s.AddEntity(Entity{Kind: "x"}); err == nil {
		t.Error("entity without id accepted")
	}
	if err := s.AddEntity(Entity{ID: "a", Kind: "granule"}); err != nil {
		t.Fatal(err)
	}
	if err := s.AddEntity(Entity{ID: "a", Kind: "tiles"}); err == nil {
		t.Error("kind change accepted")
	}
	// Merge attrs on re-add.
	if err := s.AddEntity(Entity{ID: "a", Kind: "granule", Attrs: map[string]string{"day": "1"}}); err != nil {
		t.Fatal(err)
	}
	e, _ := s.Entity("a")
	if e.Attrs["day"] != "1" {
		t.Errorf("attrs not merged: %v", e.Attrs)
	}

	if err := s.AddActivity(Activity{ID: "act", Name: "n", Inputs: []string{"ghost"}}); err == nil {
		t.Error("unknown input accepted")
	}
	if err := s.AddEntity(Entity{ID: "out", Kind: "tiles"}); err != nil {
		t.Fatal(err)
	}
	if err := s.AddActivity(Activity{ID: "act", Name: "n", Inputs: []string{"a"}, Outputs: []string{"out"}}); err != nil {
		t.Fatal(err)
	}
	if err := s.AddActivity(Activity{ID: "act", Name: "n2"}); err == nil {
		t.Error("duplicate activity accepted")
	}
	if err := s.AddActivity(Activity{ID: "act2", Name: "n2", Outputs: []string{"out"}}); err == nil {
		t.Error("second producer accepted")
	}
	if _, err := s.Entity("nope"); err == nil {
		t.Error("unknown entity fetched")
	}
}

func TestExportImportRoundTrip(t *testing.T) {
	s := buildEOMLGraph(t)
	var buf bytes.Buffer
	if err := s.Export(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := Import(&buf)
	if err != nil {
		t.Fatal(err)
	}
	steps, err := back.Lineage("shipped")
	if err != nil {
		t.Fatal(err)
	}
	if len(steps) != 3 {
		t.Fatalf("imported lineage = %d steps", len(steps))
	}
	if len(back.Activities()) != 3 {
		t.Fatalf("imported activities = %d", len(back.Activities()))
	}
	if _, err := Import(strings.NewReader("{garbage")); err == nil {
		t.Fatal("garbage import accepted")
	}
}

func TestSchemaRegistry(t *testing.T) {
	r := NewSchemaRegistry()
	for _, s := range EOMLSchemas() {
		if err := r.Register(s); err != nil {
			t.Fatal(err)
		}
	}
	if got := r.Components(); len(got) != 4 || got[0] != "download" {
		t.Fatalf("components = %v", got)
	}
	// The published pipeline composes.
	if err := r.ValidateChain([]string{"download", "preprocess", "inference", "shipment"}); err != nil {
		t.Fatalf("published chain invalid: %v", err)
	}
	// A mis-ordered chain fails.
	if err := r.ValidateChain([]string{"download", "inference"}); err == nil {
		t.Fatal("download->inference accepted (no tiles produced)")
	}
	// Bindings validate by kind.
	if err := r.ValidateBinding("inference", map[string]string{"tiles": "tiles"}); err != nil {
		t.Fatalf("optional model should be skippable: %v", err)
	}
	if err := r.ValidateBinding("inference", map[string]string{"tiles": "granule"}); err == nil {
		t.Fatal("wrong kind accepted")
	}
	if err := r.ValidateBinding("inference", map[string]string{}); err == nil {
		t.Fatal("missing required input accepted")
	}
	if err := r.ValidateBinding("inference", map[string]string{"tiles": "tiles", "bogus": "x"}); err == nil {
		t.Fatal("unknown input accepted")
	}
	if err := r.ValidateBinding("nope", nil); err == nil {
		t.Fatal("unknown component accepted")
	}
}

func TestSchemaValidation(t *testing.T) {
	r := NewSchemaRegistry()
	bad := []Schema{
		{},
		{Component: "x", Inputs: []Field{{Name: "", Kind: "k"}}},
		{Component: "x", Inputs: []Field{{Name: "a", Kind: ""}}},
		{Component: "x", Inputs: []Field{{Name: "a", Kind: "k"}, {Name: "a", Kind: "k"}}},
	}
	for i, s := range bad {
		if err := r.Register(s); err == nil {
			t.Errorf("schema %d accepted", i)
		}
	}
	ok := Schema{Component: "x", Inputs: []Field{{Name: "a", Kind: "k"}}}
	if err := r.Register(ok); err != nil {
		t.Fatal(err)
	}
	if err := r.Register(ok); err == nil {
		t.Error("duplicate schema accepted")
	}
}
