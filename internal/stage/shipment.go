package stage

import (
	"context"
	"fmt"
	"os"
	"time"

	"github.com/eoml/eoml/internal/transfer"
)

// ShipmentConfig tunes a Shipment stage.
type ShipmentConfig struct {
	// SrcDir is shipped (recursively) to DestDir.
	SrcDir  string
	DestDir string
	// SrcName / DestName label the endpoints; defaults "defiant"/"orion"
	// after the paper's facilities.
	SrcName  string
	DestName string
	// Parallelism bounds concurrent file copies; default 4.
	Parallelism int
	// Skip, when set and returning true at run time, elides the transfer
	// entirely (e.g. no tile files were produced upstream).
	Skip func() bool
	// OnShipped, when set, observes the shipped file names (provenance).
	OnShipped func(names []string, started, ended time.Time)
}

func (c ShipmentConfig) withDefaults() ShipmentConfig {
	if c.SrcName == "" {
		c.SrcName = "ACE Defiant"
	}
	if c.DestName == "" {
		c.DestName = "Frontier Orion"
	}
	if c.Parallelism <= 0 {
		c.Parallelism = 4
	}
	return c
}

// Shipment is the workflow's stage 5 as a Stage: a checksum-verified
// Globus-Transfer-style move of the outbox to the destination facility.
type Shipment struct {
	cfg ShipmentConfig

	filesShipped int
}

// NewShipment builds the shipment stage.
func NewShipment(cfg ShipmentConfig) *Shipment {
	return &Shipment{cfg: cfg.withDefaults()}
}

// Name implements Stage.
func (s *Shipment) Name() string { return "shipment" }

// Run performs the transfer (unless skipped) and records the outcome.
func (s *Shipment) Run(ctx context.Context, rc *RunContext) error {
	if s.cfg.Skip != nil && s.cfg.Skip() {
		return nil
	}
	started := time.Now()
	svc := transfer.NewService(transfer.Options{VerifyChecksum: true, Parallelism: s.cfg.Parallelism})
	if _, err := svc.RegisterEndpoint("defiant", s.cfg.SrcName, s.cfg.SrcDir); err != nil {
		return err
	}
	if _, err := svc.RegisterEndpoint("orion", s.cfg.DestName, s.cfg.DestDir); err != nil {
		return err
	}
	taskID, err := svc.SubmitDir("defiant", "orion", ".", ".")
	if err != nil {
		return err
	}
	st, err := svc.Wait(ctx, taskID)
	if err != nil {
		return err
	}
	if st.State != transfer.Succeeded {
		return fmt.Errorf("shipment failed: %v", st.Errors)
	}
	s.filesShipped = st.FilesDone
	rc.EventCounter(s.Name(), EventIn).Add(int64(st.FilesDone))
	rc.EventCounter(s.Name(), EventOut).Add(int64(st.FilesDone))
	rc.Health.Beat(s.Name())
	if s.cfg.OnShipped != nil {
		if names, err := listFiles(s.cfg.SrcDir); err == nil {
			s.cfg.OnShipped(names, started, time.Now())
		}
	}
	return nil
}

// FilesShipped reports how many files the transfer completed.
func (s *Shipment) FilesShipped() int { return s.filesShipped }

// listFiles returns the plain-file names directly under dir.
func listFiles(dir string) ([]string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range entries {
		if !e.IsDir() {
			names = append(names, e.Name())
		}
	}
	return names, nil
}
