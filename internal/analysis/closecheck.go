package analysis

import (
	"go/ast"
	"go/types"
)

// CloseCheck guards the durability edges of the pipeline: an error from
// Close, Sync, or Flush on a write path, or from os.Rename, is the only
// notification that buffered bytes never reached disk — the atomic
// write-then-rename pattern the granule writers rely on is void if those
// errors vanish. Two rules:
//
//  1. A statement that discards an error result from a Close/Sync/Flush
//     method or from os.Rename is flagged. Discarding deliberately (an
//     error path that already has a better error to return) is spelled
//     `_ = f.Close()` — the explicit blank assignment is the
//     acknowledgement and is not flagged.
//  2. `defer f.Close()` on a file obtained from os.Create, os.OpenFile,
//     or os.CreateTemp is flagged: the write-path close error is
//     unobservable from a plain defer. Close explicitly before rename,
//     or fold the close error into a named return.
//
// Read-path defers (os.Open, response bodies) are idiomatic and exempt.
var CloseCheck = &Analyzer{
	Name: "closecheck",
	Doc:  "errors from Close/Sync/Flush and os.Rename must be checked (or explicitly discarded with _ =) on write paths",
	Run:  runCloseCheck,
}

// closeMethods are the flush-to-durability methods whose error results
// matter on write paths.
var closeMethods = map[string]bool{"Close": true, "Sync": true, "Flush": true}

// fileCreators are the os functions whose result is a write-path file.
var fileCreators = []string{"Create", "OpenFile", "CreateTemp"}

func runCloseCheck(pass *Pass) {
	for _, f := range pass.Files {
		created := writePathFiles(pass, f)
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.ExprStmt:
				if call, ok := n.X.(*ast.CallExpr); ok {
					if name, ok := discardsError(pass, call); ok {
						pass.Reportf(n.Pos(), "%s error discarded; check it or acknowledge with `_ = ...`", name)
					}
				}
			case *ast.DeferStmt:
				if obj := deferredCloseTarget(pass, n.Call); obj != nil {
					if creator := created[obj]; creator != nil {
						pass.Reportf(n.Pos(), "defer %s.Close() on a file from os.%s discards the write-path close error; close explicitly and check, or fold into a named return", obj.Name(), creator.Name())
					}
				}
			}
			return true
		})
	}
}

// discardsError reports whether call returns an error that the caller is
// dropping, for the Close/Sync/Flush + os.Rename family. Returns a
// human-readable callee name.
func discardsError(pass *Pass, call *ast.CallExpr) (string, bool) {
	fn := calleeFunc(pass.Info, call)
	if fn == nil || !returnsError(fn) {
		return "", false
	}
	if isPkgFunc(fn, "os", "Rename") {
		return "os.Rename", true
	}
	sig := fn.Type().(*types.Signature)
	if sig.Recv() != nil && closeMethods[fn.Name()] {
		return fn.Name(), true
	}
	return "", false
}

// writePathFiles maps variables assigned from os.Create / os.OpenFile /
// os.CreateTemp anywhere in the file to the creating function.
func writePathFiles(pass *Pass, f *ast.File) map[types.Object]*types.Func {
	out := map[types.Object]*types.Func{}
	ast.Inspect(f, func(n ast.Node) bool {
		assign, ok := n.(*ast.AssignStmt)
		if !ok || len(assign.Rhs) != 1 {
			return true
		}
		call, ok := assign.Rhs[0].(*ast.CallExpr)
		if !ok {
			return true
		}
		fn := calleeFunc(pass.Info, call)
		creator := false
		for _, name := range fileCreators {
			if isPkgFunc(fn, "os", name) {
				creator = true
			}
		}
		if !creator {
			return true
		}
		if id, ok := assign.Lhs[0].(*ast.Ident); ok && id.Name != "_" {
			if obj := pass.Info.ObjectOf(id); obj != nil {
				out[obj] = fn
			}
		}
		return true
	})
	return out
}

// deferredCloseTarget returns the object x in `defer x.Close()`, or nil.
func deferredCloseTarget(pass *Pass, call *ast.CallExpr) types.Object {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Close" {
		return nil
	}
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return nil
	}
	return pass.Info.ObjectOf(id)
}
