package hdf

import (
	"bytes"
	"testing"
)

// fuzzSeedFile builds a small valid file so the fuzzer starts from a
// structurally correct stream (magic, attrs, datasets, CRC) and mutates
// from there, instead of spending its budget rediscovering the header.
func fuzzSeedFile(t testing.TB) []byte {
	f := NewFile()
	f.Attrs["product"] = "MOD021KM"
	f.Attrs["year"] = int64(2024)
	f.Attrs["scale"] = 0.01
	rad, err := NewFloat32("radiance", []int{2, 3}, []float32{1, 2, 3, 4, 5, 6})
	if err != nil {
		t.Fatal(err)
	}
	mask, err := NewUint8("cloud_mask", []int{6}, []byte{0, 1, 1, 0, 1, 0})
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range []*Dataset{rad, mask} {
		if err := f.Add(d); err != nil {
			t.Fatal(err)
		}
	}
	var buf bytes.Buffer
	if err := Write(&buf, f); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// FuzzDecode drives the granule header/stream reader with arbitrary
// bytes. Decode must never panic — granule files arrive over the
// network from the archive simulator and land on shared scratch, so
// truncated and corrupted streams are an expected input class, and the
// reader's length fields must not be trusted before bounds checks.
// Any stream Decode accepts must also survive a Write → Decode round
// trip.
func FuzzDecode(f *testing.F) {
	valid := fuzzSeedFile(f)
	f.Add(valid)
	f.Add(valid[:len(valid)-4]) // CRC stripped
	f.Add(valid[:9])            // header only
	f.Add([]byte{})
	f.Add([]byte("EOMLHDF1"))              // magic alone
	f.Add(bytes.Repeat([]byte{0xff}, 64))  // no magic
	f.Add(append([]byte{}, valid[:20]...)) // truncated mid-attrs
	corrupt := append([]byte{}, valid...)  // flip one payload byte
	corrupt[len(corrupt)/2] ^= 0x40
	f.Add(corrupt)
	f.Fuzz(func(t *testing.T, data []byte) {
		decoded, err := Decode(data)
		if err != nil {
			return
		}
		var buf bytes.Buffer
		if err := Write(&buf, decoded); err != nil {
			t.Fatalf("re-encode of accepted stream failed: %v", err)
		}
		if _, err := Decode(buf.Bytes()); err != nil {
			t.Fatalf("re-decode of re-encoded stream failed: %v", err)
		}
	})
}
