// Package flows is a Globus-Flows-like automation engine: workflows are
// JSON state machines (a dialect of the Amazon States Language, as Globus
// Flows uses) whose Action states invoke registered action providers —
// transfer, compute, inference — with parameters drawn from a JSON flow
// document. Runs execute asynchronously with a full event log, which is
// how the paper measures the ~50 ms action-transition overhead of its
// monitor→infer→append→move inference flow (Fig. 7).
package flows

import (
	"encoding/json"
	"fmt"
	"strings"
)

// State types.
const (
	TypeAction  = "Action"
	TypePass    = "Pass"
	TypeChoice  = "Choice"
	TypeWait    = "Wait"
	TypeSucceed = "Succeed"
	TypeFail    = "Fail"
)

// Definition is a parsed flow.
type Definition struct {
	Comment string           `json:"Comment,omitempty"`
	StartAt string           `json:"StartAt"`
	States  map[string]State `json:"States"`
}

// State is one node of the machine.
type State struct {
	Type string `json:"Type"`

	// Action states.
	ActionProvider string         `json:"ActionProvider,omitempty"`
	Parameters     map[string]any `json:"Parameters,omitempty"`
	ResultPath     string         `json:"ResultPath,omitempty"`
	// Retry re-runs a failed action: at most MaxAttempts total tries with
	// IntervalSeconds between them (ASL-style, single catch-all retrier).
	Retry *RetrySpec `json:"Retry,omitempty"`
	// Catch redirects control to another state when the action fails
	// after retries, storing the error text at ErrorPath.
	Catch *CatchSpec `json:"Catch,omitempty"`

	// Choice states.
	Choices []ChoiceRule `json:"Choices,omitempty"`
	Default string       `json:"Default,omitempty"`

	// Wait states.
	Seconds float64 `json:"Seconds,omitempty"`

	// Fail states.
	Error string `json:"Error,omitempty"`
	Cause string `json:"Cause,omitempty"`

	// Pass states may inject a literal result.
	Result any `json:"Result,omitempty"`

	Next string `json:"Next,omitempty"`
	End  bool   `json:"End,omitempty"`
}

// RetrySpec declares action retry behaviour.
type RetrySpec struct {
	MaxAttempts     int     `json:"MaxAttempts"`
	IntervalSeconds float64 `json:"IntervalSeconds,omitempty"`
}

// CatchSpec declares the failure handler of an action.
type CatchSpec struct {
	Next      string `json:"Next"`
	ErrorPath string `json:"ErrorPath,omitempty"`
}

// ChoiceRule is a single comparison; exactly one comparator must be set.
type ChoiceRule struct {
	Variable           string   `json:"Variable"`
	StringEquals       *string  `json:"StringEquals,omitempty"`
	NumericEquals      *float64 `json:"NumericEquals,omitempty"`
	NumericGreaterThan *float64 `json:"NumericGreaterThan,omitempty"`
	NumericLessThan    *float64 `json:"NumericLessThan,omitempty"`
	BooleanEquals      *bool    `json:"BooleanEquals,omitempty"`
	IsNull             *bool    `json:"IsNull,omitempty"`
	Next               string   `json:"Next"`
}

// ParseDefinition decodes and validates a flow definition.
func ParseDefinition(data []byte) (*Definition, error) {
	var def Definition
	dec := json.NewDecoder(strings.NewReader(string(data)))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&def); err != nil {
		return nil, fmt.Errorf("flows: parse: %w", err)
	}
	if err := def.Validate(); err != nil {
		return nil, err
	}
	return &def, nil
}

// Validate checks structural invariants: the start state exists, every
// transition targets a defined state, every non-terminal state has a way
// forward, and terminal states exist.
func (d *Definition) Validate() error {
	if d.StartAt == "" {
		return fmt.Errorf("flows: missing StartAt")
	}
	if len(d.States) == 0 {
		return fmt.Errorf("flows: no states")
	}
	if _, ok := d.States[d.StartAt]; !ok {
		return fmt.Errorf("flows: StartAt %q is not a state", d.StartAt)
	}
	checkTarget := func(from, to string) error {
		if to == "" {
			return nil
		}
		if _, ok := d.States[to]; !ok {
			return fmt.Errorf("flows: state %q targets undefined state %q", from, to)
		}
		return nil
	}
	hasTerminal := false
	for name, st := range d.States {
		switch st.Type {
		case TypeAction:
			if st.ActionProvider == "" {
				return fmt.Errorf("flows: action state %q has no provider", name)
			}
			if !st.End && st.Next == "" {
				return fmt.Errorf("flows: action state %q has neither Next nor End", name)
			}
			if st.Retry != nil && st.Retry.MaxAttempts < 1 {
				return fmt.Errorf("flows: action state %q retry needs MaxAttempts >= 1", name)
			}
			if st.Catch != nil {
				if st.Catch.Next == "" {
					return fmt.Errorf("flows: action state %q catch needs Next", name)
				}
				if err := checkTarget(name, st.Catch.Next); err != nil {
					return err
				}
			}
		case TypePass, TypeWait:
			if !st.End && st.Next == "" {
				return fmt.Errorf("flows: state %q has neither Next nor End", name)
			}
		case TypeChoice:
			if len(st.Choices) == 0 {
				return fmt.Errorf("flows: choice state %q has no rules", name)
			}
			for i, rule := range st.Choices {
				if rule.Next == "" {
					return fmt.Errorf("flows: choice state %q rule %d has no Next", name, i)
				}
				if err := checkTarget(name, rule.Next); err != nil {
					return err
				}
				if rule.comparatorCount() != 1 {
					return fmt.Errorf("flows: choice state %q rule %d needs exactly one comparator", name, i)
				}
			}
			if err := checkTarget(name, st.Default); err != nil {
				return err
			}
		case TypeSucceed, TypeFail:
			hasTerminal = true
		default:
			return fmt.Errorf("flows: state %q has unknown type %q", name, st.Type)
		}
		if st.End {
			hasTerminal = true
		}
		if err := checkTarget(name, st.Next); err != nil {
			return err
		}
	}
	if !hasTerminal {
		return fmt.Errorf("flows: no terminal state (End, Succeed, or Fail)")
	}
	return nil
}

func (r ChoiceRule) comparatorCount() int {
	n := 0
	if r.StringEquals != nil {
		n++
	}
	if r.NumericEquals != nil {
		n++
	}
	if r.NumericGreaterThan != nil {
		n++
	}
	if r.NumericLessThan != nil {
		n++
	}
	if r.BooleanEquals != nil {
		n++
	}
	if r.IsNull != nil {
		n++
	}
	return n
}

// evaluate tests the rule against the flow document.
func (r ChoiceRule) evaluate(doc map[string]any) (bool, error) {
	v, err := resolvePath(doc, r.Variable)
	switch {
	case r.IsNull != nil:
		isNull := err != nil || v == nil
		return isNull == *r.IsNull, nil
	case err != nil:
		return false, err
	case r.StringEquals != nil:
		s, ok := v.(string)
		return ok && s == *r.StringEquals, nil
	case r.NumericEquals != nil:
		f, ok := toFloat(v)
		return ok && f == *r.NumericEquals, nil
	case r.NumericGreaterThan != nil:
		f, ok := toFloat(v)
		return ok && f > *r.NumericGreaterThan, nil
	case r.NumericLessThan != nil:
		f, ok := toFloat(v)
		return ok && f < *r.NumericLessThan, nil
	case r.BooleanEquals != nil:
		b, ok := v.(bool)
		return ok && b == *r.BooleanEquals, nil
	}
	return false, fmt.Errorf("flows: rule on %q has no comparator", r.Variable)
}

func toFloat(v any) (float64, bool) {
	switch t := v.(type) {
	case float64:
		return t, true
	case int:
		return float64(t), true
	case int64:
		return float64(t), true
	case float32:
		return float64(t), true
	}
	return 0, false
}

// resolvePath walks "$.a.b.c" through nested maps.
func resolvePath(doc map[string]any, path string) (any, error) {
	if !strings.HasPrefix(path, "$.") && path != "$" {
		return nil, fmt.Errorf("flows: path %q must start with $.", path)
	}
	if path == "$" {
		return doc, nil
	}
	var cur any = doc
	for _, part := range strings.Split(path[2:], ".") {
		m, ok := cur.(map[string]any)
		if !ok {
			return nil, fmt.Errorf("flows: path %q traverses non-object", path)
		}
		cur, ok = m[part]
		if !ok {
			return nil, fmt.Errorf("flows: path %q not found", path)
		}
	}
	return cur, nil
}

// setPath stores a value at "$.a.b", creating intermediate objects.
func setPath(doc map[string]any, path string, value any) error {
	if !strings.HasPrefix(path, "$.") {
		return fmt.Errorf("flows: result path %q must start with $.", path)
	}
	parts := strings.Split(path[2:], ".")
	cur := doc
	for _, part := range parts[:len(parts)-1] {
		next, ok := cur[part].(map[string]any)
		if !ok {
			next = map[string]any{}
			cur[part] = next
		}
		cur = next
	}
	cur[parts[len(parts)-1]] = value
	return nil
}

// substituteParams deep-copies params, replacing any string value of the
// form "$.x.y" with the referenced document value.
func substituteParams(params map[string]any, doc map[string]any) (map[string]any, error) {
	out := map[string]any{}
	for k, v := range params {
		sub, err := substituteValue(v, doc)
		if err != nil {
			return nil, fmt.Errorf("parameter %q: %w", k, err)
		}
		out[k] = sub
	}
	return out, nil
}

func substituteValue(v any, doc map[string]any) (any, error) {
	switch t := v.(type) {
	case string:
		if strings.HasPrefix(t, "$.") || t == "$" {
			return resolvePath(doc, t)
		}
		return t, nil
	case map[string]any:
		return substituteParams(t, doc)
	case []any:
		out := make([]any, len(t))
		for i, item := range t {
			sub, err := substituteValue(item, doc)
			if err != nil {
				return nil, err
			}
			out[i] = sub
		}
		return out, nil
	default:
		return v, nil
	}
}
