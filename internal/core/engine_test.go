package core

import (
	"bytes"
	"context"
	"fmt"
	"sync"
	"testing"

	"github.com/eoml/eoml/internal/laads"
	"github.com/eoml/eoml/internal/metrics"
)

// TestEngineConcurrentRunsIsolated is the tentpole acceptance test: one
// engine, two runs executing at the same time, and afterwards each
// run's report and metric series must be fully its own — disjoint
// run="<id>" label values, per-run counts matching per-run reports.
func TestEngineConcurrentRunsIsolated(t *testing.T) {
	granules := findProductiveGranules(t, 2, 3)
	labeler := trainTestLabeler(t, granules[0])
	ts := newArchive(t)
	eng := NewEngine(EngineOptions{
		Labeler: labeler,
		Quotas:  laads.NewQuotaPool(10_000, 64), // generous: shaping is exercised elsewhere
	})

	runs := make([]*Run, 2)
	for i := range runs {
		cfg := testConfig(t, ts.URL, granules[i:i+1])
		r, err := eng.NewRun(cfg, RunOptions{ID: fmt.Sprintf("run-%d", i), Tenant: "acme"})
		if err != nil {
			t.Fatal(err)
		}
		runs[i] = r
	}

	reports := make([]*Report, 2)
	errs := make([]error, 2)
	var wg sync.WaitGroup
	for i, r := range runs {
		i, r := i, r
		wg.Add(1)
		go func() {
			defer wg.Done()
			reports[i], errs[i] = r.Run(context.Background())
		}()
	}
	wg.Wait()

	for i := range runs {
		if errs[i] != nil {
			t.Fatalf("run %d: %v", i, errs[i])
		}
		if reports[i].TilesProduced == 0 || reports[i].TilesLabeled != reports[i].TilesProduced {
			t.Fatalf("run %d labeled %d of %d tiles", i, reports[i].TilesLabeled, reports[i].TilesProduced)
		}
		if reports[i].FilesShipped != 1 {
			t.Fatalf("run %d shipped %d files, want 1", i, reports[i].FilesShipped)
		}
	}

	// Every series a run emits must carry exactly that run's identity.
	for i, r := range runs {
		wantRun := fmt.Sprintf("run-%d", i)
		for _, fam := range r.Metrics().Snapshot() {
			for _, s := range fam.Series {
				got := map[string]string{}
				for _, l := range s.Labels {
					got[l.Key] = l.Value
				}
				if got["run"] != wantRun || got["tenant"] != "acme" {
					t.Fatalf("run %d series %s has labels %v", i, fam.Name, s.Labels)
				}
			}
		}
	}

	// The per-run shipped-file counters must match the per-run reports,
	// not the aggregate — the isolation the old global registry lost.
	for i, r := range runs {
		found := false
		for _, fam := range r.Metrics().Snapshot() {
			if fam.Name != "eoml_stage_events_total" {
				continue
			}
			for _, s := range fam.Series {
				stageLbl, dirLbl := "", ""
				for _, l := range s.Labels {
					switch l.Key {
					case "stage":
						stageLbl = l.Value
					case "dir":
						dirLbl = l.Value
					}
				}
				if stageLbl == "download" && dirLbl == "out" {
					found = true
					if s.Value != float64(reports[i].FilesDownloaded) {
						t.Fatalf("run %d download-out series = %v, report says %d",
							i, s.Value, reports[i].FilesDownloaded)
					}
				}
			}
		}
		if !found {
			t.Fatalf("run %d has no download event series", i)
		}
	}

	// Merging the two run registries must still be a valid exposition.
	merged := metrics.MergeFamilies(runs[0].Metrics().Snapshot(), runs[1].Metrics().Snapshot())
	var buf bytes.Buffer
	if err := metrics.WriteFamilies(&buf, merged); err != nil {
		t.Fatal(err)
	}
	if err := metrics.ValidatePrometheus(&buf); err != nil {
		t.Fatalf("merged exposition invalid: %v", err)
	}
}

// TestEngineSharesModelWeights verifies the engine's artifact-keyed
// labeler cache: two runs naming the same model/codebook paths must
// share one in-memory labeler.
func TestEngineSharesModelWeights(t *testing.T) {
	granules := findProductiveGranules(t, 1, 3)
	labeler := trainTestLabeler(t, granules[0])
	dir := t.TempDir()
	modelPath, cbPath := dir+"/model.bin", dir+"/codebook.bin"
	if err := labeler.Model.Save(modelPath); err != nil {
		t.Fatal(err)
	}
	if err := labeler.Codebook.Save(cbPath); err != nil {
		t.Fatal(err)
	}

	eng := NewEngine(EngineOptions{})
	cfg := testConfig(t, "http://unused", granules)
	cfg.ModelPath, cfg.CodebookPath = modelPath, cbPath
	a, err := eng.NewRun(cfg, RunOptions{ID: "a"})
	if err != nil {
		t.Fatal(err)
	}
	b, err := eng.NewRun(cfg, RunOptions{ID: "b"})
	if err != nil {
		t.Fatal(err)
	}
	if a.labeler != b.labeler {
		t.Fatal("same artifacts loaded twice instead of shared")
	}

	// And with no engine labeler and no artifacts, NewRun must refuse.
	plain := testConfig(t, "http://unused", granules)
	if _, err := eng.NewRun(plain, RunOptions{}); err == nil {
		t.Fatal("run with no labeler source was accepted")
	}
}

// TestEngineTenantQuotaShared verifies two runs of one tenant draw from
// the same token bucket while a different tenant gets its own.
func TestEngineTenantQuotaShared(t *testing.T) {
	granules := findProductiveGranules(t, 1, 3)
	labeler := trainTestLabeler(t, granules[0])
	eng := NewEngine(EngineOptions{Labeler: labeler, Quotas: laads.NewQuotaPool(100, 8)})
	cfg := testConfig(t, "http://unused", granules)
	a, _ := eng.NewRun(cfg, RunOptions{ID: "a", Tenant: "acme"})
	b, _ := eng.NewRun(cfg, RunOptions{ID: "b", Tenant: "acme"})
	c, _ := eng.NewRun(cfg, RunOptions{ID: "c", Tenant: "umbrella"})
	if a.quota != b.quota {
		t.Fatal("same tenant's runs got distinct quotas")
	}
	if a.quota == c.quota {
		t.Fatal("distinct tenants share a quota")
	}
}
