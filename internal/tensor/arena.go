package tensor

import (
	"math/bits"
	"sync"
	"sync/atomic"

	"github.com/eoml/eoml/internal/metrics"
)

// arenaBuckets caps the pooled size classes at 2^27 floats (512 MiB);
// larger tensors bypass the pool.
const arenaBuckets = 28

// Arena recycles tensor backing buffers in power-of-two size classes.
// It is safe for concurrent use; each Get hands out a distinct buffer.
// Inference allocates the same handful of activation shapes for every
// batch; the arena recycles those buffers through per-size-class
// sync.Pools so the encode hot path stops regrowing the heap on every
// call.
//
// Lifecycle rules (see DESIGN.md §"Tensor arena"):
//   - Get returns a tensor with UNDEFINED contents; callers must
//     overwrite every element (all Into kernels in this package do).
//   - Put recycles a tensor obtained from Get. Never Put a view
//     (Reshape result) or a tensor handed to an external caller; the
//     owner of a returned tensor is whoever the API gave it to.
//   - A nil *Arena is valid and degrades to plain New/no-op Put, so the
//     same code path serves pooled and unpooled callers.
type Arena struct {
	pools [arenaBuckets]sync.Pool

	// poolsI8 recycles the int8 scratch of the quantized inference path
	// (quantized activations, int8 im2col). Same size classes, same
	// lifecycle rules; GetI8/PutI8 pair exactly like Get/Put.
	poolsI8 [arenaBuckets]sync.Pool

	gets atomic.Int64 // Get + GetI8 calls
	news atomic.Int64 // Gets that missed the pool and allocated
	puts atomic.Int64 // tensors returned
}

// NewArena returns an empty arena.
func NewArena() *Arena { return &Arena{} }

// bucketFor returns the smallest b with 1<<b >= n.
func bucketFor(n int) int {
	if n <= 1 {
		return 0
	}
	return bits.Len(uint(n - 1))
}

// Get returns a tensor of the given shape with undefined contents. On a
// pool hit the tensor struct, shape slice, and data buffer are all
// reused; on a miss the data buffer is allocated at the full size-class
// capacity so Put can re-bucket it exactly.
func (a *Arena) Get(shape ...int) *T {
	if a == nil {
		return New(shape...)
	}
	n := 1
	for _, s := range shape {
		if s <= 0 {
			panic("tensor: non-positive dim in arena Get")
		}
		n *= s
	}
	a.gets.Add(1)
	b := bucketFor(n)
	if b < arenaBuckets {
		if v := a.pools[b].Get(); v != nil {
			t := v.(*T)
			t.Data = t.Data[:n]
			t.Shape = append(t.Shape[:0], shape...)
			return t
		}
	}
	a.news.Add(1)
	capacity := n
	if b < arenaBuckets {
		capacity = 1 << b
	}
	return &T{Shape: append([]int(nil), shape...), Data: make([]float32, n, capacity)}
}

// Put returns a tensor to the arena. Tensors whose capacity is not a
// pooled size class (e.g. built with New or FromSlice) are dropped for
// the garbage collector; that is safe, just not recycled.
func (a *Arena) Put(t *T) {
	if a == nil || t == nil || cap(t.Data) == 0 {
		return
	}
	c := cap(t.Data)
	if c&(c-1) != 0 {
		return
	}
	b := bits.Len(uint(c)) - 1
	if b >= arenaBuckets {
		return
	}
	a.puts.Add(1)
	t.Data = t.Data[:0]
	a.pools[b].Put(t)
}

// GetI8 returns an int8 scratch slice of length n with undefined
// contents, pooled in the same power-of-two size classes as Get. A nil
// receiver degrades to plain allocation.
func (a *Arena) GetI8(n int) []int8 {
	if n <= 0 {
		panic("tensor: non-positive length in arena GetI8")
	}
	if a == nil {
		return make([]int8, n)
	}
	a.gets.Add(1)
	b := bucketFor(n)
	if b < arenaBuckets {
		if v := a.poolsI8[b].Get(); v != nil {
			return (*v.(*[]int8))[:n]
		}
	}
	a.news.Add(1)
	capacity := n
	if b < arenaBuckets {
		capacity = 1 << b
	}
	return make([]int8, n, capacity)
}

// PutI8 returns an int8 scratch slice obtained from GetI8. Slices whose
// capacity is not a pooled size class are dropped for the garbage
// collector.
func (a *Arena) PutI8(s []int8) {
	if a == nil || cap(s) == 0 {
		return
	}
	c := cap(s)
	if c&(c-1) != 0 {
		return
	}
	b := bits.Len(uint(c)) - 1
	if b >= arenaBuckets {
		return
	}
	a.puts.Add(1)
	s = s[:0]
	a.poolsI8[b].Put(&s)
}

// Stats reports Get calls, pool misses (fresh allocations), and Puts —
// used by tests to prove reuse.
func (a *Arena) Stats() (gets, news, puts int64) {
	if a == nil {
		return 0, 0, 0
	}
	return a.gets.Load(), a.news.Load(), a.puts.Load()
}

// Instrument exports the arena's hit/miss/outstanding counters to reg
// under the given arena label. Safe on a nil arena or nil registry
// (no-op and throwaway registration respectively); re-instrumenting the
// same label hands the series to the newest arena.
func (a *Arena) Instrument(reg *metrics.Registry, name string) {
	if a == nil {
		return
	}
	l := metrics.L("arena", name)
	reg.CounterFunc("eoml_arena_hits_total",
		"Arena Gets served from the pool without allocating.",
		func() float64 { gets, news, _ := a.Stats(); return float64(gets - news) }, l)
	reg.CounterFunc("eoml_arena_misses_total",
		"Arena Gets that missed the pool and allocated.",
		func() float64 { _, news, _ := a.Stats(); return float64(news) }, l)
	reg.GaugeFunc("eoml_arena_outstanding",
		"Tensors handed out by Get and not yet returned by Put.",
		func() float64 { gets, _, puts := a.Stats(); return float64(gets - puts) }, l)
}
