package fleet

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"time"

	"github.com/eoml/eoml/internal/compute"
)

// The fleet wire protocol extends the compute fabric with membership:
//
//	POST /fleet/register   {"id","url","capacity"} -> {"heartbeat_seconds"}
//	POST /fleet/heartbeat  {"id"} -> 200, or 404 when the worker was
//	                       evicted and must re-register
//	POST /fleet/deregister {"id"} -> 200
//	GET  /fleet/workers    -> {"workers": [...]}
//
// Task execution itself rides the compute protocol served by each
// worker's own endpoint: POST /submit + GET /tasks/{id} for single
// leases, POST /submit_batch + POST /tasks/poll for batched leases —
// one round-trip carrying a whole lease window and one poll per
// interval collecting every outstanding result.

type registerRequest struct {
	ID       string `json:"id"`
	URL      string `json:"url"`
	Capacity int    `json:"capacity"`
}

type registerResponse struct {
	HeartbeatSeconds float64 `json:"heartbeat_seconds"`
}

type heartbeatRequest struct {
	ID string `json:"id"`
}

type workersResponse struct {
	Workers []WorkerStatus `json:"workers"`
}

// Handler exposes the coordinator's membership API. Mount it at
// /fleet/ on the control-plane mux.
func (c *Coordinator) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/fleet/register", func(w http.ResponseWriter, r *http.Request) {
		var req registerRequest
		if !decodePost(w, r, &req) {
			return
		}
		if err := c.Register(req.ID, req.URL, req.Capacity); err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		writeJSON(w, registerResponse{HeartbeatSeconds: (c.cfg.HeartbeatTimeout / 3).Seconds()})
	})
	mux.HandleFunc("/fleet/heartbeat", func(w http.ResponseWriter, r *http.Request) {
		var req heartbeatRequest
		if !decodePost(w, r, &req) {
			return
		}
		if !c.Heartbeat(req.ID) {
			http.Error(w, fmt.Sprintf("fleet: unknown worker %q, re-register", req.ID), http.StatusNotFound)
			return
		}
		writeJSON(w, map[string]string{"status": "ok"})
	})
	mux.HandleFunc("/fleet/deregister", func(w http.ResponseWriter, r *http.Request) {
		var req heartbeatRequest
		if !decodePost(w, r, &req) {
			return
		}
		c.Deregister(req.ID)
		writeJSON(w, map[string]string{"status": "ok"})
	})
	mux.HandleFunc("/fleet/workers", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, workersResponse{Workers: c.Workers()})
	})
	return mux
}

func decodePost(w http.ResponseWriter, r *http.Request, v any) bool {
	if r.Method != http.MethodPost {
		http.Error(w, "POST required", http.StatusMethodNotAllowed)
		return false
	}
	if err := json.NewDecoder(io.LimitReader(r.Body, 1<<20)).Decode(v); err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return false
	}
	return true
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(v); err != nil {
		// Connection gone; nothing to recover.
		return
	}
}

// Client is a worker's view of the coordinator's membership API.
type Client struct {
	BaseURL string
	HTTP    *http.Client
}

// NewClient builds a membership client for a control-plane base URL
// (the /fleet/ prefix is appended per call).
func NewClient(baseURL string) *Client {
	return &Client{BaseURL: strings.TrimSuffix(baseURL, "/"), HTTP: http.DefaultClient}
}

// Register announces the worker; the returned duration is the
// coordinator's requested heartbeat cadence.
func (cl *Client) Register(ctx context.Context, id, url string, capacity int) (time.Duration, error) {
	var resp registerResponse
	if err := cl.post(ctx, "/fleet/register", registerRequest{ID: id, URL: url, Capacity: capacity}, &resp); err != nil {
		return 0, err
	}
	return time.Duration(resp.HeartbeatSeconds * float64(time.Second)), nil
}

// ErrUnknownWorker reports a heartbeat for an evicted worker.
type ErrUnknownWorker struct{ ID string }

func (e *ErrUnknownWorker) Error() string {
	return fmt.Sprintf("fleet: unknown worker %q, re-register", e.ID)
}

// Heartbeat refreshes liveness; an *ErrUnknownWorker error means the
// coordinator evicted this worker and it must re-register.
func (cl *Client) Heartbeat(ctx context.Context, id string) error {
	err := cl.post(ctx, "/fleet/heartbeat", heartbeatRequest{ID: id}, nil)
	if err != nil && strings.Contains(err.Error(), "404") {
		return &ErrUnknownWorker{ID: id}
	}
	return err
}

// Deregister removes the worker gracefully.
func (cl *Client) Deregister(ctx context.Context, id string) error {
	return cl.post(ctx, "/fleet/deregister", heartbeatRequest{ID: id}, nil)
}

// Workers lists the coordinator's live worker set.
func (cl *Client) Workers(ctx context.Context) ([]WorkerStatus, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, cl.BaseURL+"/fleet/workers", nil)
	if err != nil {
		return nil, err
	}
	resp, err := cl.HTTP.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		return nil, fmt.Errorf("fleet: workers: %s: %s", resp.Status, strings.TrimSpace(string(msg)))
	}
	var wr workersResponse
	if err := json.NewDecoder(resp.Body).Decode(&wr); err != nil {
		return nil, err
	}
	return wr.Workers, nil
}

func (cl *Client) post(ctx context.Context, path string, body, out any) error {
	raw, err := json.Marshal(body)
	if err != nil {
		return err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, cl.BaseURL+path, bytes.NewReader(raw))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := cl.HTTP.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		return fmt.Errorf("fleet: %s: %s: %s", path, resp.Status, strings.TrimSpace(string(msg)))
	}
	if out != nil {
		return json.NewDecoder(resp.Body).Decode(out)
	}
	return nil
}

// HTTPTransport runs fleet tasks over the compute fabric's HTTP
// protocol: submit to the worker's endpoint, poll the future until it
// resolves. Task-function failures surface as *TaskError; everything
// else (connection refused, drain rejection, poll failure) is a
// transport error the coordinator requeues.
type HTTPTransport struct {
	// PollInterval is the future poll cadence; 0 means 5ms.
	PollInterval time.Duration
	// HTTP overrides the client; nil means http.DefaultClient.
	HTTP *http.Client
}

// NewHTTPTransport returns a transport with default polling.
func NewHTTPTransport() *HTTPTransport {
	return &HTTPTransport{PollInterval: 5 * time.Millisecond}
}

func (t *HTTPTransport) remote(workerURL string) *compute.RemoteEndpoint {
	remote := compute.NewRemoteEndpoint(workerURL)
	if t.HTTP != nil {
		remote.HTTP = t.HTTP
	}
	if t.PollInterval > 0 {
		remote.PollInterval = t.PollInterval
	}
	return remote
}

// Run implements Transport.
func (t *HTTPTransport) Run(ctx context.Context, workerURL, function string, args map[string]any) (any, error) {
	remote := t.remote(workerURL)
	fut, err := remote.Submit(ctx, function, args)
	if err != nil {
		return nil, err // transport failure (includes ErrDraining): requeue-able
	}
	interval := remote.PollInterval
	for {
		tr, err := fut.Poll(ctx)
		if err != nil {
			return nil, err // transport failure mid-flight: requeue-able
		}
		switch tr.State {
		case compute.Completed:
			return tr.Result, nil
		case compute.Errored:
			return nil, &TaskError{Msg: tr.Error}
		}
		select {
		case <-ctx.Done():
			return nil, ctx.Err()
		case <-time.After(interval):
		}
	}
}

// RunBatch implements BatchTransport: one POST /submit_batch carries
// the whole lease, then one POST /tasks/poll per poll interval collects
// every still-running task's state — per-task HTTP overhead becomes
// per-batch. Results are folded as they settle; the call returns when
// the last task does.
func (t *HTTPTransport) RunBatch(ctx context.Context, workerURL string, specs []TaskSpec) ([]TaskResult, error) {
	remote := t.remote(workerURL)
	cspecs := make([]compute.Spec, len(specs))
	for i, s := range specs {
		cspecs[i] = compute.Spec{Function: s.Function, Args: s.Args}
	}
	futs, err := remote.SubmitBatch(ctx, cspecs)
	if err != nil {
		return nil, err // batch-level transport failure: requeue all
	}
	index := make(map[string]int, len(futs))
	pending := make([]string, len(futs))
	for i, f := range futs {
		index[f.TaskID] = i
		pending[i] = f.TaskID
	}
	out := make([]TaskResult, len(specs))
	interval := remote.PollInterval
	for len(pending) > 0 {
		statuses, err := remote.PollBatch(ctx, pending)
		if err != nil {
			return nil, err // poll failure loses the whole batch: requeue all
		}
		next := pending[:0]
		for _, st := range statuses {
			i, ok := index[st.TaskID]
			if !ok {
				continue
			}
			switch st.State {
			case compute.Completed:
				out[i] = TaskResult{Result: st.Result}
			case compute.Errored:
				out[i] = TaskResult{Err: &TaskError{Msg: st.Error}}
			default:
				next = append(next, st.TaskID)
			}
		}
		pending = next
		if len(pending) == 0 {
			break
		}
		select {
		case <-ctx.Done():
			return nil, ctx.Err()
		case <-time.After(interval):
		}
	}
	return out, nil
}
