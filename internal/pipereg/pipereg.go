// Package pipereg implements the federated pipeline-as-a-service registry
// the paper's §V.A envisions: "a shareable and publicly accessible
// repository of complete workflows or individual workflow steps, which
// can be customized with various components from a community-driven
// pipeline service ... registered as executable and shareable functions".
//
// Pipelines are registered under name@version with metadata (owner,
// facility requirements, tags), carry either a Globus-Flows-style
// definition or an ordered component list validated against the
// provenance schema registry, and can be searched, exported, imported,
// and instantiated with per-run parameter overrides.
package pipereg

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"
	"time"

	"github.com/eoml/eoml/internal/flows"
	"github.com/eoml/eoml/internal/provenance"
)

// Pipeline is one registered, shareable workflow.
type Pipeline struct {
	Name        string            `json:"name"`
	Version     int               `json:"version"`
	Owner       string            `json:"owner"`
	Description string            `json:"description"`
	Tags        []string          `json:"tags,omitempty"`
	Facilities  []string          `json:"facilities,omitempty"` // required facilities
	Components  []string          `json:"components,omitempty"` // ordered stage names
	FlowJSON    json.RawMessage   `json:"flow,omitempty"`       // optional flows definition
	Defaults    map[string]any    `json:"defaults,omitempty"`   // default parameters
	Published   time.Time         `json:"published"`
	Annotations map[string]string `json:"annotations,omitempty"`
}

// Ref renders the canonical name@version reference.
func (p *Pipeline) Ref() string { return fmt.Sprintf("%s@%d", p.Name, p.Version) }

// Registry stores pipelines with versioning and search.
type Registry struct {
	mu      sync.RWMutex
	byName  map[string][]*Pipeline // ascending version order
	schemas *provenance.SchemaRegistry
}

// NewRegistry builds a registry. schemas may be nil to skip component
// validation.
func NewRegistry(schemas *provenance.SchemaRegistry) *Registry {
	return &Registry{byName: map[string][]*Pipeline{}, schemas: schemas}
}

// Publish registers a new pipeline version. The version is assigned
// automatically (1 + latest). Component chains are validated against the
// schema registry when one is configured; embedded flow definitions must
// parse.
func (r *Registry) Publish(p Pipeline) (*Pipeline, error) {
	if p.Name == "" || strings.ContainsAny(p.Name, "@ \t\n") {
		return nil, fmt.Errorf("pipereg: invalid pipeline name %q", p.Name)
	}
	if p.Owner == "" {
		return nil, fmt.Errorf("pipereg: pipeline %q needs an owner", p.Name)
	}
	if len(p.Components) == 0 && len(p.FlowJSON) == 0 {
		return nil, fmt.Errorf("pipereg: pipeline %q needs components or a flow definition", p.Name)
	}
	if len(p.FlowJSON) > 0 {
		if _, err := flows.ParseDefinition(p.FlowJSON); err != nil {
			return nil, fmt.Errorf("pipereg: pipeline %q: %w", p.Name, err)
		}
	}
	if r.schemas != nil && len(p.Components) > 1 {
		if err := r.schemas.ValidateChain(p.Components); err != nil {
			return nil, fmt.Errorf("pipereg: pipeline %q: %w", p.Name, err)
		}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	versions := r.byName[p.Name]
	p.Version = 1
	if len(versions) > 0 {
		p.Version = versions[len(versions)-1].Version + 1
	}
	if p.Published.IsZero() {
		p.Published = time.Now()
	}
	stored := p
	r.byName[p.Name] = append(versions, &stored)
	return &stored, nil
}

// Get fetches a pipeline by reference: "name" (latest) or "name@N".
func (r *Registry) Get(ref string) (*Pipeline, error) {
	name, version := ref, 0
	if at := strings.LastIndex(ref, "@"); at >= 0 {
		name = ref[:at]
		if _, err := fmt.Sscanf(ref[at+1:], "%d", &version); err != nil {
			return nil, fmt.Errorf("pipereg: bad reference %q", ref)
		}
	}
	r.mu.RLock()
	defer r.mu.RUnlock()
	versions := r.byName[name]
	if len(versions) == 0 {
		return nil, fmt.Errorf("pipereg: no pipeline %q", name)
	}
	if version == 0 {
		return versions[len(versions)-1], nil
	}
	for _, p := range versions {
		if p.Version == version {
			return p, nil
		}
	}
	return nil, fmt.Errorf("pipereg: no version %d of %q (latest %d)", version, name, versions[len(versions)-1].Version)
}

// List returns the latest version of every pipeline, sorted by name.
func (r *Registry) List() []*Pipeline {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]*Pipeline, 0, len(r.byName))
	for _, versions := range r.byName {
		out = append(out, versions[len(versions)-1])
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Search returns latest pipelines matching all given tags (case
// insensitive).
func (r *Registry) Search(tags ...string) []*Pipeline {
	var out []*Pipeline
	for _, p := range r.List() {
		have := map[string]bool{}
		for _, t := range p.Tags {
			have[strings.ToLower(t)] = true
		}
		all := true
		for _, t := range tags {
			if !have[strings.ToLower(t)] {
				all = false
				break
			}
		}
		if all {
			out = append(out, p)
		}
	}
	return out
}

// Instance is a pipeline resolved with run parameters.
type Instance struct {
	Pipeline *Pipeline
	Params   map[string]any
	Flow     *flows.Definition // parsed, when the pipeline embeds one
}

// Instantiate merges overrides over the pipeline defaults and parses the
// embedded flow definition if present.
func (r *Registry) Instantiate(ref string, overrides map[string]any) (*Instance, error) {
	p, err := r.Get(ref)
	if err != nil {
		return nil, err
	}
	params := map[string]any{}
	for k, v := range p.Defaults {
		params[k] = v
	}
	for k, v := range overrides {
		if _, known := params[k]; !known && len(p.Defaults) > 0 {
			return nil, fmt.Errorf("pipereg: %s has no parameter %q", p.Ref(), k)
		}
		params[k] = v
	}
	inst := &Instance{Pipeline: p, Params: params}
	if len(p.FlowJSON) > 0 {
		def, err := flows.ParseDefinition(p.FlowJSON)
		if err != nil {
			return nil, err
		}
		inst.Flow = def
	}
	return inst, nil
}

// Export writes every version of every pipeline as JSON.
func (r *Registry) Export(w io.Writer) error {
	r.mu.RLock()
	var all []*Pipeline
	names := make([]string, 0, len(r.byName))
	for name := range r.byName {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		all = append(all, r.byName[name]...)
	}
	r.mu.RUnlock()
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(all)
}

// Import merges an exported registry; versions are preserved, and
// conflicting (name, version) pairs are rejected.
func (r *Registry) Import(rd io.Reader) error {
	var all []*Pipeline
	if err := json.NewDecoder(rd).Decode(&all); err != nil {
		return fmt.Errorf("pipereg: import: %w", err)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, p := range all {
		for _, existing := range r.byName[p.Name] {
			if existing.Version == p.Version {
				return fmt.Errorf("pipereg: import conflict: %s", p.Ref())
			}
		}
	}
	for _, p := range all {
		r.byName[p.Name] = append(r.byName[p.Name], p)
		sort.Slice(r.byName[p.Name], func(i, j int) bool {
			return r.byName[p.Name][i].Version < r.byName[p.Name][j].Version
		})
	}
	return nil
}

// EOMLPipeline returns this repository's workflow as a publishable
// pipeline, with its component chain and default parameters.
func EOMLPipeline() Pipeline {
	return Pipeline{
		Name:        "eo-ml-cloud-classification",
		Owner:       "olcf",
		Description: "MODIS download, ocean-cloud tiling, RICC/AICCA inference, shipment",
		Tags:        []string{"climate", "modis", "ai", "multi-facility"},
		Facilities:  []string{"olcf"},
		Components:  []string{"download", "preprocess", "inference", "shipment"},
		Defaults: map[string]any{
			"tile_pixels":        16,
			"min_cloud_fraction": 0.3,
			"download_workers":   3,
			"preprocess_workers": 32,
			"inference_workers":  1,
		},
	}
}
