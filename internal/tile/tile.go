// Package tile implements the preprocessing stage of the EO-ML workflow:
// decomposing a MODIS swath into fixed-size multi-channel "tiles" and
// selecting the ocean-cloud tiles used for RICC inference and AICCA label
// production.
//
// Following the paper (§III.2) and the AICCA tile definition, a swath of
// 2030×1354 pixels × 36 channels is cut into non-overlapping square tiles
// of 6 selected channels. A tile is kept only if every pixel is ocean and
// at least 30% of its pixels are cloudy. Tiles whose selected bands carry
// the L1B fill value (nighttime granules lack reflective bands) are
// rejected, which reproduces the day/night processing-time variability the
// paper notes.
package tile

import (
	"fmt"

	"github.com/eoml/eoml/internal/hdf"
	"github.com/eoml/eoml/internal/modis"
	"github.com/eoml/eoml/internal/tensor"
)

// Options configures tile extraction.
type Options struct {
	// TileSize is the tile edge length in pixels of the input granule.
	// At full resolution this is 128; granules generated with ScaleDown s
	// use 128/s so a tile still covers ~100 km × 100 km.
	TileSize int
	// Bands are the EV_1KM_RefSB band indices to extract (default
	// modis.AICCABands).
	Bands []int
	// MinCloudFrac is the minimum cloudy-pixel fraction (default 0.3).
	MinCloudFrac float64
	// Arena, when set, recycles the per-granule decode scratch (~1MB of
	// float32 planes at container scale) across Extract calls; the
	// concurrent preprocessing workers share one ShardedArena and each
	// call checks out its own shard. Nil allocates per call.
	Arena *tensor.ShardedArena
}

// withDefaults fills unset fields.
func (o Options) withDefaults() Options {
	if o.TileSize == 0 {
		o.TileSize = modis.TileSize
	}
	if o.Bands == nil {
		o.Bands = modis.AICCABands
	}
	if o.MinCloudFrac == 0 {
		o.MinCloudFrac = 0.3
	}
	return o
}

// Tile is one ocean-cloud tile with its normalized radiances and the
// MOD06-derived physical properties AICCA attaches to each record.
type Tile struct {
	Granule  string // source granule file name (MOD02)
	Row, Col int    // tile grid position within the swath

	// Data holds band-major normalized radiances: Bands × TileSize ×
	// TileSize values in physical units (scale/offset applied).
	Data     []float32
	Bands    []int
	TileSize int

	// Geolocation of the tile center.
	Lat, Lon float32

	// Cloud statistics from MOD06.
	CloudFrac    float32 // fraction of cloudy pixels
	MeanCTP      float32 // mean cloud-top pressure over cloudy pixels, hPa
	MeanCOT      float32 // mean cloud optical thickness
	MeanCER      float32 // mean cloud effective radius, micron
	MeanCWP      float32 // mean cloud water path, g/m^2
	IcePhaseFrac float32 // fraction of cloudy pixels in ice phase

	// Label is the AICCA class assigned by inference; -1 before inference.
	Label int16
}

// Stats summarizes an extraction for monitoring and tests.
type Stats struct {
	GridRows, GridCols int
	Candidates         int // total grid positions
	RejectedLand       int // tiles containing land or coast pixels
	RejectedCloud      int // all-ocean tiles under the cloud threshold
	RejectedFill       int // tiles with fill radiances (nighttime)
	Kept               int
}

// Result carries the kept tiles plus extraction statistics.
type Result struct {
	Tiles []*Tile
	Stats Stats
}

// Extract cuts ocean-cloud tiles from one granule triple. The three files
// must come from the same granule (matching AcquisitionDate attributes).
func Extract(mod02, mod03, mod06 *hdf.File, opts Options) (*Result, error) {
	o := opts.withDefaults()
	if err := sameGranule(mod02, mod03, mod06); err != nil {
		return nil, err
	}

	rad, err := mod02.Dataset("EV_1KM_RefSB")
	if err != nil {
		return nil, fmt.Errorf("tile: MOD02: %w", err)
	}
	if len(rad.Dims) != 3 {
		return nil, fmt.Errorf("tile: EV_1KM_RefSB rank %d, want 3", len(rad.Dims))
	}
	nbands, ny, nx := rad.Dims[0], rad.Dims[1], rad.Dims[2]
	scale, ok := mod02.AttrFloat("radiance_scale")
	if !ok {
		return nil, fmt.Errorf("tile: MOD02 missing radiance_scale attribute")
	}
	offset, _ := mod02.AttrFloat("radiance_offset")
	fillAttr, ok := mod02.AttrInt("_FillValue")
	if !ok {
		fillAttr = 65535
	}
	fill := uint16(fillAttr)

	for _, b := range o.Bands {
		if b < 0 || b >= nbands {
			return nil, fmt.Errorf("tile: band %d out of range [0,%d)", b, nbands)
		}
	}

	// All float32 granule scratch below lives in one arena shard checked
	// out for the duration of this call.
	shard := o.Arena.Acquire()
	defer o.Arena.Release(shard)
	sc := &granuleScratch{a: shard}
	defer sc.release()

	// Decode only the selected band planes, scale/offset applied and fill
	// mapped to NaN — the full uint16 cube (36 bands) never materializes.
	plane := ny * nx
	bandVals := sc.get(len(o.Bands) * plane)
	for bi, b := range o.Bands {
		if err := rad.ScaledPlaneInto(b, scale, offset, fill, bandVals[bi*plane:(bi+1)*plane]); err != nil {
			return nil, err
		}
	}

	land, err := maskFrom(mod03, "LandSeaMask", ny, nx)
	if err != nil {
		return nil, fmt.Errorf("tile: MOD03: %w", err)
	}
	cloud, err := maskFrom(mod06, "Cloud_Mask_1km", ny, nx)
	if err != nil {
		return nil, fmt.Errorf("tile: MOD06: %w", err)
	}
	latD, err := mod03.Dataset("Latitude")
	if err != nil {
		return nil, fmt.Errorf("tile: MOD03: %w", err)
	}
	lats := sc.get(plane)
	if err := latD.Float32sInto(lats); err != nil {
		return nil, err
	}
	lonD, err := mod03.Dataset("Longitude")
	if err != nil {
		return nil, fmt.Errorf("tile: MOD03: %w", err)
	}
	lons := sc.get(plane)
	if err := lonD.Float32sInto(lons); err != nil {
		return nil, err
	}

	props, err := cloudProps(mod06, ny, nx, sc)
	if err != nil {
		return nil, err
	}

	ts := o.TileSize
	if ts <= 0 || ts > ny || ts > nx {
		return nil, fmt.Errorf("tile: tile size %d incompatible with swath %d×%d", ts, ny, nx)
	}
	rows, cols := ny/ts, nx/ts
	granule, _ := mod02.AttrString("ShortName")
	acq, _ := mod02.AttrString("AcquisitionDate")
	granule = granule + "." + acq

	res := &Result{Stats: Stats{GridRows: rows, GridCols: cols, Candidates: rows * cols}}
	npix := ts * ts
	minCloudPix := int(o.MinCloudFrac * float64(npix))

	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			y0, x0 := r*ts, c*ts
			// Pass 1: masks. All pixels must be ocean; count cloudy ones.
			allOcean := true
			cloudy := 0
			for y := y0; y < y0+ts && allOcean; y++ {
				base := y * nx
				for x := x0; x < x0+ts; x++ {
					if land[base+x] != 0 {
						allOcean = false
						break
					}
					if cloud[base+x] != 0 {
						cloudy++
					}
				}
			}
			if !allOcean {
				res.Stats.RejectedLand++
				continue
			}
			if cloudy < minCloudPix {
				res.Stats.RejectedCloud++
				continue
			}
			// Pass 2: radiances; reject on fill (night reflective bands),
			// which ScaledPlaneInto decoded to NaN. The check runs before
			// any allocation, so rejected candidates cost nothing.
			hasFill := false
			for bi := range o.Bands {
				bp := bandVals[bi*plane:]
				for y := 0; y < ts && !hasFill; y++ {
					srcBase := (y0+y)*nx + x0
					for x := 0; x < ts; x++ {
						if v := bp[srcBase+x]; v != v { // NaN: fill
							hasFill = true
							break
						}
					}
				}
				if hasFill {
					break
				}
			}
			if hasFill {
				res.Stats.RejectedFill++
				continue
			}
			// The tile escapes into the result, so its Data is an exact-size
			// heap buffer gathered row-wise from the decoded planes.
			data := make([]float32, len(o.Bands)*npix)
			for bi := range o.Bands {
				bp := bandVals[bi*plane:]
				for y := 0; y < ts; y++ {
					copy(data[bi*npix+y*ts:bi*npix+(y+1)*ts], bp[(y0+y)*nx+x0:])
				}
			}
			center := (y0+ts/2)*nx + x0 + ts/2
			t := &Tile{
				Granule:  granule,
				Row:      r,
				Col:      c,
				Data:     data,
				Bands:    append([]int(nil), o.Bands...),
				TileSize: ts,
				Lat:      lats[center],
				Lon:      lons[center],
				Label:    -1,
			}
			fillCloudStats(t, props, cloud, y0, x0, ts, nx)
			res.Tiles = append(res.Tiles, t)
		}
	}
	res.Stats.Kept = len(res.Tiles)
	return res, nil
}

// granuleScratch hands out float32 decode buffers backed by arena
// tensors for the span of one Extract call; release parks them all back
// on the shard. The slices it returns must not outlive the call.
type granuleScratch struct {
	a    *tensor.LocalArena
	bufs []*tensor.T
}

func (s *granuleScratch) get(n int) []float32 {
	//eomlvet:ignore arenapair ownership parked in s.bufs; release() Puts every tensor back
	t := s.a.Get(n)
	s.bufs = append(s.bufs, t)
	return t.Data
}

func (s *granuleScratch) release() {
	for _, t := range s.bufs {
		s.a.Put(t)
	}
	s.bufs = s.bufs[:0]
}

// sameGranule verifies the three products describe the same observation.
func sameGranule(files ...*hdf.File) error {
	var acq string
	for i, f := range files {
		a, ok := f.AttrString("AcquisitionDate")
		if !ok {
			return fmt.Errorf("tile: product %d missing AcquisitionDate", i)
		}
		if i == 0 {
			acq = a
		} else if a != acq {
			return fmt.Errorf("tile: granule mismatch: %q vs %q", acq, a)
		}
	}
	return nil
}

func maskFrom(f *hdf.File, name string, ny, nx int) ([]uint8, error) {
	d, err := f.Dataset(name)
	if err != nil {
		return nil, err
	}
	if len(d.Dims) != 2 || d.Dims[0] != ny || d.Dims[1] != nx {
		return nil, fmt.Errorf("tile: %s dims %v, want [%d %d]", name, d.Dims, ny, nx)
	}
	return d.Uint8s()
}

type physProps struct {
	ctp, cot, cer, cwp []float32
	phase              []uint8
}

func cloudProps(mod06 *hdf.File, ny, nx int, sc *granuleScratch) (*physProps, error) {
	get := func(name string) ([]float32, error) {
		d, err := mod06.Dataset(name)
		if err != nil {
			return nil, fmt.Errorf("tile: MOD06: %w", err)
		}
		if len(d.Dims) != 2 || d.Dims[0] != ny || d.Dims[1] != nx {
			return nil, fmt.Errorf("tile: MOD06 %s dims %v, want [%d %d]", name, d.Dims, ny, nx)
		}
		buf := sc.get(ny * nx)
		if err := d.Float32sInto(buf); err != nil {
			return nil, err
		}
		return buf, nil
	}
	p := &physProps{}
	var err error
	if p.ctp, err = get("Cloud_Top_Pressure"); err != nil {
		return nil, err
	}
	if p.cot, err = get("Cloud_Optical_Thickness"); err != nil {
		return nil, err
	}
	if p.cer, err = get("Cloud_Effective_Radius"); err != nil {
		return nil, err
	}
	if p.cwp, err = get("Cloud_Water_Path"); err != nil {
		return nil, err
	}
	phaseD, err := mod06.Dataset("Cloud_Phase_Infrared")
	if err != nil {
		return nil, fmt.Errorf("tile: MOD06: %w", err)
	}
	if p.phase, err = phaseD.Uint8s(); err != nil {
		return nil, err
	}
	return p, nil
}

func fillCloudStats(t *Tile, p *physProps, cloud []uint8, y0, x0, ts, nx int) {
	var sumCTP, sumCOT, sumCER, sumCWP float64
	cloudy, ice := 0, 0
	for y := y0; y < y0+ts; y++ {
		base := y * nx
		for x := x0; x < x0+ts; x++ {
			i := base + x
			if cloud[i] == 0 {
				continue
			}
			cloudy++
			sumCTP += float64(p.ctp[i])
			sumCOT += float64(p.cot[i])
			sumCER += float64(p.cer[i])
			sumCWP += float64(p.cwp[i])
			if p.phase[i] == 2 {
				ice++
			}
		}
	}
	t.CloudFrac = float32(cloudy) / float32(ts*ts)
	if cloudy > 0 {
		t.MeanCTP = float32(sumCTP / float64(cloudy))
		t.MeanCOT = float32(sumCOT / float64(cloudy))
		t.MeanCER = float32(sumCER / float64(cloudy))
		t.MeanCWP = float32(sumCWP / float64(cloudy))
		t.IcePhaseFrac = float32(ice) / float32(cloudy)
	}
}
