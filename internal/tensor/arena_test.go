package tensor

import (
	"sync"
	"testing"
)

func TestArenaReusesBuffers(t *testing.T) {
	a := NewArena()
	first := a.Get(3, 5, 7)
	if first.Len() != 105 || len(first.Data) != 105 {
		t.Fatalf("shape/len mismatch: %v len %d", first.Shape, len(first.Data))
	}
	a.Put(first)
	gets, news, puts := a.Stats()
	if gets != 1 || news != 1 || puts != 1 {
		t.Fatalf("stats gets=%d news=%d puts=%d, want 1/1/1", gets, news, puts)
	}
	// A Put buffer of the same size class (105 -> 128) should come back
	// from the pool. sync.Pool deliberately drops a fraction of Puts when
	// the race detector is on, so demand a reuse within a few round trips
	// rather than on the first one. (LocalArena, with deterministic free
	// lists, asserts exact reuse in its own tests.)
	reused := false
	for i := 0; i < 20 && !reused; i++ {
		x := a.Get(128)
		p := &x.Data[:1][0]
		a.Put(x)
		y := a.Get(128)
		reused = &y.Data[:1][0] == p
	}
	if !reused {
		t.Fatal("same-class Get never reused a pooled buffer")
	}
}

func TestArenaBucketBoundaries(t *testing.T) {
	for _, n := range []int{1, 2, 3, 4, 63, 64, 65, 1023, 1024, 1025} {
		b := bucketFor(n)
		if 1<<b < n {
			t.Fatalf("bucketFor(%d) = %d: class too small", n, b)
		}
		if b > 0 && 1<<(b-1) >= n {
			t.Fatalf("bucketFor(%d) = %d: class not minimal", n, b)
		}
	}
}

func TestArenaDropsForeignBuffers(t *testing.T) {
	a := NewArena()
	// New allocates exact-size backing (105 is not a power of two), so
	// Put must drop it rather than mis-bucket it.
	a.Put(New(3, 5, 7))
	if _, _, puts := a.Stats(); puts != 0 {
		t.Fatalf("pooled a non-size-class buffer (puts=%d)", puts)
	}
	a.Put(nil) // must not panic
}

func TestNilArenaDegradesToNew(t *testing.T) {
	var a *Arena
	x := a.Get(2, 3)
	if x.Len() != 6 {
		t.Fatalf("nil arena Get: %v", x.Shape)
	}
	a.Put(x) // no-op, must not panic
}

func TestArenaConcurrentDistinctBuffers(t *testing.T) {
	a := NewArena()
	const workers = 8
	var wg sync.WaitGroup
	bufs := make([]*T, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for iter := 0; iter < 50; iter++ {
				x := a.Get(64, 9)
				for i := range x.Data {
					x.Data[i] = float32(w)
				}
				for i := range x.Data {
					if x.Data[i] != float32(w) {
						t.Errorf("worker %d saw foreign write", w)
						return
					}
				}
				if iter == 49 {
					bufs[w] = x // hold the last one for the aliasing check
					return
				}
				a.Put(x)
			}
		}(w)
	}
	wg.Wait()
	for i := 0; i < workers; i++ {
		for j := i + 1; j < workers; j++ {
			if &bufs[i].Data[0] == &bufs[j].Data[0] {
				t.Fatalf("workers %d and %d hold the same buffer", i, j)
			}
		}
	}
}
