package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func writeDoc(t *testing.T, name, body string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), name)
	if err := os.WriteFile(path, []byte(body), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

const oldDoc = `{
  "pr": 4,
  "benchmarks": {
    "BenchmarkEncodeArena/arena": {"ns_per_op": 1000000, "allocs_per_op": 15},
    "BenchmarkLabelFileBatched/batched": {"tiles_per_s": 20000},
    "BenchmarkMatMulBlocked/blocked_256": {"gflops": 30}
  }
}`

func TestBenchdiffFailsOnSyntheticRegression(t *testing.T) {
	// >10% slower ns/op and >10% lower tiles/s: both must gate.
	newDoc := `{
	  "pr": 5,
	  "benchmarks": {
	    "BenchmarkEncodeArena/arena": {"ns_per_op": 1150000, "allocs_per_op": 2},
	    "BenchmarkLabelFileBatched/batched": {"tiles_per_s": 17000},
	    "BenchmarkMatMulBlocked/blocked_256": {"gflops": 30}
	  }
	}`
	var out strings.Builder
	err := run([]string{writeDoc(t, "old.json", oldDoc), writeDoc(t, "new.json", newDoc)}, &out)
	if err == nil {
		t.Fatalf("synthetic regression passed the gate; output:\n%s", out.String())
	}
	if !strings.Contains(err.Error(), "2 throughput metric(s) regressed") {
		t.Fatalf("error = %v, want 2 regressed metrics", err)
	}
	if !strings.Contains(out.String(), "REGRESSION") {
		t.Fatalf("output lacks REGRESSION marker:\n%s", out.String())
	}
}

func TestBenchdiffPassesWithinThreshold(t *testing.T) {
	// 5% slower is inside the default 10% gate; the alloc-count column is
	// never a gate even when it explodes.
	newDoc := `{
	  "pr": 5,
	  "benchmarks": {
	    "BenchmarkEncodeArena/arena": {"ns_per_op": 1050000, "allocs_per_op": 500},
	    "BenchmarkLabelFileBatched/batched": {"tiles_per_s": 21000},
	    "BenchmarkMatMulBlocked/blocked_256": {"gflops": 33}
	  }
	}`
	var out strings.Builder
	if err := run([]string{writeDoc(t, "old.json", oldDoc), writeDoc(t, "new.json", newDoc)}, &out); err != nil {
		t.Fatalf("within-threshold diff failed: %v\n%s", err, out.String())
	}
	if !strings.Contains(out.String(), "ok: no throughput regression") {
		t.Fatalf("missing ok line:\n%s", out.String())
	}
}

func TestBenchdiffThresholdFlag(t *testing.T) {
	// The same 5% slip fails when the operator tightens the gate to 2%.
	newDoc := `{
	  "pr": 5,
	  "benchmarks": {
	    "BenchmarkEncodeArena/arena": {"ns_per_op": 1050000}
	  }
	}`
	var out strings.Builder
	err := run([]string{"-threshold", "0.02",
		writeDoc(t, "old.json", oldDoc), writeDoc(t, "new.json", newDoc)}, &out)
	if err == nil {
		t.Fatal("5% slip passed a 2% gate")
	}
}

func TestBenchdiffRejectsDisjointRecords(t *testing.T) {
	newDoc := `{"pr": 5, "benchmarks": {"BenchmarkSomethingElse": {"ns_per_op": 1}}}`
	var out strings.Builder
	err := run([]string{writeDoc(t, "old.json", oldDoc), writeDoc(t, "new.json", newDoc)}, &out)
	if err == nil || !strings.Contains(err.Error(), "no shared throughput metrics") {
		t.Fatalf("err = %v, want no-shared-metrics failure", err)
	}
}

func TestBenchdiffRequireCatchesDroppedSeries(t *testing.T) {
	// The fleet series exists in the old record but was renamed in the
	// new one: Compare silently skips it, so without -require the gate
	// passes on the surviving kernel benchmark alone.
	oldFleet := `{
	  "pr": 9,
	  "benchmarks": {
	    "BenchmarkFleetScaling/strong/workers=1": {"granules_per_s": 4.8},
	    "BenchmarkMatMulBlocked/blocked_256": {"gflops": 30}
	  }
	}`
	newFleet := `{
	  "pr": 10,
	  "benchmarks": {
	    "BenchmarkFleetScaling/renamed/workers=1": {"granules_per_s": 1.0},
	    "BenchmarkMatMulBlocked/blocked_256": {"gflops": 30}
	  }
	}`
	oldPath := writeDoc(t, "old.json", oldFleet)
	newPath := writeDoc(t, "new.json", newFleet)

	var out strings.Builder
	if err := run([]string{oldPath, newPath}, &out); err != nil {
		t.Fatalf("without -require the rename should slip through, got: %v", err)
	}
	out.Reset()
	err := run([]string{"-require", "FleetScaling/strong/", oldPath, newPath}, &out)
	if err == nil || !strings.Contains(err.Error(), "renamed or dropped") {
		t.Fatalf("-require missed the dropped series: %v", err)
	}
}

func TestBenchdiffRequirePassesWhenSeriesCompared(t *testing.T) {
	oldFleet := `{
	  "pr": 9,
	  "benchmarks": {
	    "BenchmarkFleetScaling/strong/workers=1": {"granules_per_s": 4.8}
	  }
	}`
	newFleet := `{
	  "pr": 10,
	  "benchmarks": {
	    "BenchmarkFleetScaling/strong/workers=1": {"granules_per_s": 9.0}
	  }
	}`
	var out strings.Builder
	err := run([]string{"-require", "FleetScaling/strong/",
		writeDoc(t, "old.json", oldFleet), writeDoc(t, "new.json", newFleet)}, &out)
	if err != nil {
		t.Fatalf("compared fleet series should satisfy -require: %v\n%s", err, out.String())
	}
}

func TestBenchdiffRequireRejectsBadRegexp(t *testing.T) {
	var out strings.Builder
	err := run([]string{"-require", "(", "a.json", "b.json"}, &out)
	if err == nil || !strings.Contains(err.Error(), "bad -require regexp") {
		t.Fatalf("bad regexp accepted: %v", err)
	}
}
