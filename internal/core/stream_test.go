package core

import (
	"bytes"
	"context"
	"os"
	"path/filepath"
	"testing"
	"time"

	"github.com/eoml/eoml/internal/provenance"
)

func TestRunStreamProcessesArrivals(t *testing.T) {
	granules := findProductiveGranules(t, 3, 3)
	labeler := trainTestLabeler(t, granules[0])
	ts := newArchive(t)
	cfg := testConfig(t, ts.URL, nil) // stream mode ignores cfg.Granules

	p, err := New(cfg, labeler)
	if err != nil {
		t.Fatal(err)
	}
	arrivals := make(chan int)
	go func() {
		defer close(arrivals)
		for _, idx := range granules {
			arrivals <- idx
			time.Sleep(10 * time.Millisecond) // staggered downlink
		}
	}()
	rep, err := p.RunStream(context.Background(), arrivals)
	if err != nil {
		t.Fatal(err)
	}
	if rep.GranulesRequested != 3 || rep.FilesDownloaded != 9 {
		t.Fatalf("report %s", rep.Summary())
	}
	if rep.TilesLabeled != rep.TilesProduced || rep.TilesProduced == 0 {
		t.Fatalf("labeling incomplete: %s", rep.Summary())
	}
	if rep.FilesShipped != rep.TileFiles {
		t.Fatalf("shipment incomplete: %s", rep.Summary())
	}
	entries, err := os.ReadDir(cfg.DestDir)
	if err != nil || len(entries) != rep.TileFiles {
		t.Fatalf("destination: %v, %v", entries, err)
	}
}

func TestRunStreamRejectsBadIndex(t *testing.T) {
	granules := findProductiveGranules(t, 1, 3)
	labeler := trainTestLabeler(t, granules[0])
	ts := newArchive(t)
	cfg := testConfig(t, ts.URL, nil)
	p, err := New(cfg, labeler)
	if err != nil {
		t.Fatal(err)
	}
	arrivals := make(chan int, 1)
	arrivals <- 999
	close(arrivals)
	if _, err := p.RunStream(context.Background(), arrivals); err == nil {
		t.Fatal("bad index accepted")
	}
}

func TestRunStreamEmptyStream(t *testing.T) {
	granules := findProductiveGranules(t, 1, 3)
	labeler := trainTestLabeler(t, granules[0])
	ts := newArchive(t)
	cfg := testConfig(t, ts.URL, nil)
	p, err := New(cfg, labeler)
	if err != nil {
		t.Fatal(err)
	}
	arrivals := make(chan int)
	close(arrivals)
	rep, err := p.RunStream(context.Background(), arrivals)
	if err != nil {
		t.Fatal(err)
	}
	if rep.GranulesRequested != 0 || rep.FilesShipped != 0 {
		t.Fatalf("empty stream report: %s", rep.Summary())
	}
}

func TestRunRecordsProvenance(t *testing.T) {
	granules := findProductiveGranules(t, 2, 3)
	labeler := trainTestLabeler(t, granules[0])
	ts := newArchive(t)
	cfg := testConfig(t, ts.URL, granules)

	p, err := New(cfg, labeler)
	if err != nil {
		t.Fatal(err)
	}
	store := provenance.NewStore()
	p.SetProvenance(store)
	rep, err := p.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if rep.FilesShipped == 0 {
		t.Fatalf("nothing shipped: %s", rep.Summary())
	}

	// Every shipped file must have full lineage back to three granules.
	entries, err := os.ReadDir(cfg.DestDir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		steps, err := store.Lineage("shipped:" + e.Name())
		if err != nil {
			t.Fatalf("lineage of %s: %v", e.Name(), err)
		}
		names := map[string]bool{}
		for _, s := range steps {
			names[s.Activity.Name] = true
		}
		for _, want := range []string{"shipment", "inference", "preprocess"} {
			if !names[want] {
				t.Fatalf("%s lineage missing %q: %v", e.Name(), want, names)
			}
		}
		// The deepest step consumes the granule triple.
		last := steps[len(steps)-1]
		if last.Activity.Name != "preprocess" || len(last.Inputs) != 3 {
			t.Fatalf("deepest step: %+v", last)
		}
		for _, in := range last.Inputs {
			if in.Kind != "granule" {
				t.Fatalf("source kind %q", in.Kind)
			}
		}
	}

	// The graph round-trips through export.
	var buf bytes.Buffer
	if err := store.Export(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := provenance.Import(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Activities()) != len(store.Activities()) {
		t.Fatal("export/import lost activities")
	}

	// Forward lineage: a granule derives the shipped product.
	acts := store.Activities()
	var granuleID string
	for _, a := range acts {
		if a.Name == "preprocess" {
			granuleID = a.Inputs[0]
			break
		}
	}
	derived, err := store.Derived(granuleID)
	if err != nil {
		t.Fatal(err)
	}
	foundShipped := false
	for _, d := range derived {
		if filepath.Ext(d.URI) == ".nc" && d.Kind == "tiles" {
			foundShipped = true
		}
	}
	if !foundShipped {
		t.Fatalf("granule %s derived no tile products: %v", granuleID, derived)
	}
}
