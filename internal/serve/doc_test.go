package serve

import (
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"

	"github.com/eoml/eoml/internal/core"
)

// TestServeDocCoversControlPlaneMetrics is the serve-side half of the
// metric-catalogue drift test (the pipeline half lives in
// internal/core's TestOperationsDocCoversAllMetrics, which cannot
// import this package): every family the control plane registers must
// be documented in docs/OPERATIONS.md, and every eoml_serve_* name the
// doc mentions must be registered.
func TestServeDocCoversControlPlaneMetrics(t *testing.T) {
	s := New(core.NewEngine(core.EngineOptions{}), Options{})
	names := map[string]bool{}
	for _, f := range s.reg.Snapshot() {
		names[f.Name] = true
	}
	if len(names) < 3 {
		t.Fatalf("only %d control-plane families registered — instrumentation regressed?", len(names))
	}

	data, err := os.ReadFile(filepath.Join("..", "..", "docs", "OPERATIONS.md"))
	if err != nil {
		t.Fatalf("docs/OPERATIONS.md: %v", err)
	}
	doc := string(data)
	for name := range names {
		if !strings.Contains(doc, "`"+name+"`") {
			t.Errorf("docs/OPERATIONS.md does not document control-plane family %s", name)
		}
	}
	for _, tok := range regexp.MustCompile(`eoml_serve_[a-z0-9_]+`).FindAllString(doc, -1) {
		if !names[strings.TrimSuffix(tok, "_")] && !names[tok] {
			t.Errorf("docs/OPERATIONS.md mentions %s, which the control plane does not register", tok)
		}
	}
}
