package modis

import "math"

// Orbit constants approximating the Terra/Aqua sun-synchronous orbits.
// The model is deliberately simple — a sinusoidal ground track with the
// right inclination, period, and westward precession — because the
// workflow only needs *plausible, smoothly varying* geolocation fields to
// exercise the ocean-masking logic, not ephemeris-grade accuracy.
const (
	orbitPeriodMin = 98.8 // minutes per orbit
	maxLatitude    = 81.4 // degrees, ground-track extreme for 98.2° inclination
	swathWidthKM   = 2330.0
	swathLengthKM  = 2030.0
	kmPerDegree    = 111.195
)

// groundTrack returns the sub-satellite latitude/longitude and the local
// heading (radians from north, eastward positive) at a fractional granule
// position. slot may be fractional to interpolate within a granule.
func groundTrack(g GranuleID, slot float64) (lat, lon, heading float64) {
	// Minutes since start of day, offset per platform so Terra and Aqua
	// tracks differ (Aqua crosses the equator in the afternoon).
	minutes := slot * 5
	phaseOffset := 0.0
	if g.Satellite == Aqua {
		phaseOffset = 0.5
	}
	orbitPhase := minutes/orbitPeriodMin + phaseOffset + float64(g.DOY)*0.31
	angle := 2 * math.Pi * orbitPhase

	lat = maxLatitude * math.Sin(angle)
	// Longitude precesses westward: one full revolution of the Earth per
	// day under the orbit plane, plus the equatorial crossing spacing.
	lon = wrapLon(-360*(minutes/1440) + 360*orbitPhase*0.0 + float64(g.DOY)*7.9 - 77)
	// Heading from the track derivative: dlat/dphase vs eastward motion.
	dlat := maxLatitude * math.Cos(angle)
	heading = math.Atan2(1.0, dlat) // mostly northward/southward motion
	if math.Cos(angle) < 0 {
		heading = math.Pi - heading // descending node
	}
	return lat, lon, heading
}

// isDaySide reports whether the granule at the given fractional slot is on
// the sunlit half of the orbit. Terra is sun-synchronous with a ~10:30
// descending node: the descending half of each orbit is in daylight and
// the ascending half in darkness (Aqua, with a 13:30 ascending node, is
// the mirror image). This is why roughly half of all MODIS granules lack
// reflective-band data.
func isDaySide(g GranuleID, slot float64) bool {
	minutes := slot * 5
	phaseOffset := 0.0
	if g.Satellite == Aqua {
		phaseOffset = 0.5
	}
	orbitPhase := minutes/orbitPeriodMin + phaseOffset + float64(g.DOY)*0.31
	descending := math.Cos(2*math.Pi*orbitPhase) < 0
	if g.Satellite == Aqua {
		return !descending
	}
	return descending
}

// wrapLon folds a longitude into [-180, 180).
func wrapLon(lon float64) float64 {
	lon = math.Mod(lon+180, 360)
	if lon < 0 {
		lon += 360
	}
	return lon - 180
}

// clampLat folds a latitude into [-90, 90].
func clampLat(lat float64) float64 {
	if lat > 90 {
		return 90
	}
	if lat < -90 {
		return -90
	}
	return lat
}

// swathGrid fills lat/lon arrays of shape ny×nx for the granule. Row 0 is
// the leading scan; columns run across track. The full swath covers
// 2030 km along track and 2330 km across track regardless of the
// resolution the caller asked for.
func swathGrid(g GranuleID, ny, nx int) (lats, lons []float32) {
	lats = make([]float32, ny*nx)
	lons = make([]float32, ny*nx)
	for i := 0; i < ny; i++ {
		// Interpolate the sub-satellite point along the granule.
		frac := float64(i) / float64(ny)
		clat, clon, heading := groundTrack(g, float64(g.Index)+frac)
		sinH, cosH := math.Sin(heading), math.Cos(heading)
		for j := 0; j < nx; j++ {
			// Cross-track offset in km, negative on the left of track.
			xt := (float64(j)/float64(nx-1) - 0.5) * swathWidthKM
			// Convert the cross-track displacement to lat/lon: the
			// cross-track direction is perpendicular to the heading.
			dLatKM := xt * -sinH
			dLonKM := xt * cosH
			lat := clat + dLatKM/kmPerDegree
			lonScale := math.Cos(lat * math.Pi / 180)
			if math.Abs(lonScale) < 0.05 {
				lonScale = math.Copysign(0.05, lonScale)
			}
			lon := clon + dLonKM/(kmPerDegree*lonScale)
			idx := i*nx + j
			lats[idx] = float32(clampLat(lat))
			lons[idx] = float32(wrapLon(lon))
		}
	}
	return lats, lons
}

// planetSeed fixes the synthetic planet's continents across all granules
// and both satellites, so the same lat/lon is land in every product of
// every day — a property the tile ocean filter depends on.
const planetSeed int64 = 0x0EA51DE5EA

// landFraction is tuned so roughly two thirds of the synthetic planet is
// ocean, matching Earth.
const landThreshold = 0.58

// isLand evaluates the fixed planetary land field at a coordinate.
func isLand(lat, lon float64) bool {
	n := newNoise2(planetSeed, 4)
	// Sample on a cylindrical projection with mild latitude stretching;
	// continents are a few thousand km across at these frequencies.
	v := n.at(lon/23.0, lat/17.0)
	// Polar caps: Antarctica-like land at extreme south.
	if lat < -78 {
		return true
	}
	return v > landThreshold
}
