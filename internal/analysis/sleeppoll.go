package analysis

import (
	"go/ast"
)

// SleepPoll bans the bug class PR 1 removed by hand: time.Sleep inside a
// for loop in library code is a sleep-poll — it wastes a scheduler slot,
// adds up to the poll interval of latency per iteration, and cannot
// observe cancellation. Use a time.Timer/Ticker inside a select with a
// ctx.Done() case instead. Simulated-overhead sites (the parsl, laads,
// and flows engines model real-world latencies with sleeps) carry ignore
// directives stating that the sleep *is* the modeled behaviour.
var SleepPoll = &Analyzer{
	Name:      "sleeppoll",
	Doc:       "time.Sleep inside a for loop in library code is a sleep-poll; use a timer in a select with ctx.Done()",
	AppliesTo: internalOnly,
	Run:       runSleepPoll,
}

func runSleepPoll(pass *Pass) {
	for _, f := range pass.Files {
		inspectStack(f, func(n ast.Node, stack []ast.Node) {
			call, ok := n.(*ast.CallExpr)
			if !ok || !isPkgFunc(calleeFunc(pass.Info, call), "time", "Sleep") {
				return
			}
			// Walk outward to the enclosing function boundary; a sleep
			// inside a func literal is attributed to the literal, not to
			// loops around the literal.
			for i := len(stack) - 1; i >= 0; i-- {
				switch stack[i].(type) {
				case *ast.FuncDecl, *ast.FuncLit:
					return
				case *ast.ForStmt, *ast.RangeStmt:
					pass.Reportf(call.Pos(), "time.Sleep inside a for loop (sleep-poll); wait on a timer in a select with ctx.Done() instead")
					return
				}
			}
		})
	}
}
