package tensor

import (
	"math"
	"math/rand"
	"testing"
)

// randI8 fills a slice with values spanning the full symmetric range.
func randI8(r *rand.Rand, n int) []int8 {
	s := make([]int8, n)
	for i := range s {
		s[i] = int8(r.Intn(255) - 127)
	}
	return s
}

// TestDotQ8x4MatchesGeneric pins the dispatched 4-row int8 dot kernel
// (AVX2 when the host supports it) to the scalar reference EXACTLY:
// int32 accumulation has no rounding, so unlike the float kernels there
// is no tolerance.
func TestDotQ8x4MatchesGeneric(t *testing.T) {
	r := rand.New(rand.NewSource(40))
	for _, k := range simdLens {
		x := randI8(r, k)
		w := randI8(r, 4*k)
		var want, got [4]int32
		dotQ8x4Generic(x, w, &want)
		dotQ8x4(x, w, &got)
		if got != want {
			t.Fatalf("dotQ8x4 k=%d (simd=%v): %v, want %v", k, SIMDEnabled(), got, want)
		}
	}
}

// TestDotQ8x4Saturating drives the kernel with worst-case ±127 inputs at
// a length where the int16 pair products hit their extremes, proving the
// widening path does not overflow.
func TestDotQ8x4Saturating(t *testing.T) {
	const k = 1000
	x := make([]int8, k)
	w := make([]int8, 4*k)
	for i := range x {
		x[i] = 127
	}
	for i := range w {
		w[i] = -127
	}
	var got [4]int32
	dotQ8x4(x, w, &got)
	want := int32(-127 * 127 * k)
	for r, v := range got {
		if v != want {
			t.Fatalf("row %d: %d, want %d", r, v, want)
		}
	}
}

func TestQuantizeKnownValues(t *testing.T) {
	src := []float32{0, 0.4, 0.5, -0.5, -0.4, 126.4, 126.5, 200, -200, float32(math.NaN())}
	dst := make([]int8, len(src))
	QuantizeInto(dst, src, 1)
	want := []int8{0, 0, 1, -1, 0, 126, 127, 127, -127, 0}
	for i := range want {
		if dst[i] != want[i] {
			t.Fatalf("quantize %g @ scale 1: %d, want %d", src[i], dst[i], want[i])
		}
	}
}

func TestQuantizeScale(t *testing.T) {
	if s := QuantizeScale([]float32{0, 0, 0}); s != 1 {
		t.Fatalf("all-zero scale %g, want 1", s)
	}
	if s := QuantizeScale([]float32{3, -254, 10}); s != 2 {
		t.Fatalf("scale %g, want 2", s)
	}
}

// TestMatMulQ8MatchesNaive pins the blocked, 4-row-grouped, possibly
// SIMD kernel to the serial naive oracle bit for bit across shapes that
// straddle the group width (n % 4) and the 16-wide asm body (k % 16).
func TestMatMulQ8MatchesNaive(t *testing.T) {
	r := rand.New(rand.NewSource(41))
	shapes := []struct{ m, k, n int }{
		{1, 1, 1}, {3, 7, 5}, {4, 16, 4}, {5, 17, 3},
		{16, 54, 16}, {9, 100, 7}, {64, 144, 32}, {33, 512, 6},
	}
	for _, s := range shapes {
		a := randI8(r, s.m*s.k)
		w := New(s.k, s.n)
		w.Randn(r, 0.5)
		q := QuantizeWeights(w)
		sa := float32(0.031)
		want := MatMulQ8Naive(a, sa, q, s.m)
		got := make([]float32, s.m*s.n)
		MatMulQ8Into(a, sa, q, s.m, got)
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("m=%d k=%d n=%d: out[%d] = %g, want %g (exact)", s.m, s.k, s.n, i, got[i], want[i])
			}
		}
	}
}

// TestMatMulQ8Deterministic runs the same multiply twice (goroutine
// scheduling and all) and demands identical bits: int32 accumulation is
// order-independent, which is the reproducibility claim of the int8
// path.
func TestMatMulQ8Deterministic(t *testing.T) {
	r := rand.New(rand.NewSource(42))
	const m, k, n = 37, 130, 11
	a := randI8(r, m*k)
	w := New(k, n)
	w.Randn(r, 1)
	q := QuantizeWeights(w)
	run := func() []float32 {
		out := make([]float32, m*n)
		MatMulQ8Into(a, 0.017, q, m, out)
		return out
	}
	first := run()
	for trial := 0; trial < 4; trial++ {
		again := run()
		for i := range first {
			if first[i] != again[i] {
				t.Fatalf("trial %d: out[%d] changed %g -> %g", trial, i, first[i], again[i])
			}
		}
	}
}

// TestQuantizeWeightsPerChannel checks the per-output-channel scales and
// the transposed [Out][K] layout: dequantizing row j must land within
// half a quantization step of column j of the float matrix.
func TestQuantizeWeightsPerChannel(t *testing.T) {
	r := rand.New(rand.NewSource(43))
	const k, out = 29, 6
	w := New(k, out)
	w.Randn(r, 1)
	// Give channels wildly different magnitudes so a per-tensor scale
	// would visibly fail the half-step bound on the small channels.
	for j := 0; j < out; j++ {
		mag := float32(math.Pow(10, float64(j)-3))
		for p := 0; p < k; p++ {
			w.Data[p*out+j] *= mag
		}
	}
	q := QuantizeWeights(w)
	if q.K != k || q.Out != out {
		t.Fatalf("dims %dx%d, want %dx%d", q.K, q.Out, k, out)
	}
	for j := 0; j < out; j++ {
		scale := q.Scales[j]
		for p := 0; p < k; p++ {
			got := Dequantize(q.Data[j*k+p], scale)
			wantV := w.Data[p*out+j]
			if diff := math.Abs(float64(got - wantV)); diff > float64(scale)/2+1e-12 {
				t.Fatalf("channel %d weight %d: dequant %g vs %g exceeds half-step %g", j, p, got, wantV, scale/2)
			}
		}
	}
}

// TestIm2ColQ8MatchesFloatIm2Col proves the cheap ordering — quantize
// the input once, then gather bytes — equals quantizing the 9×-larger
// float im2col matrix: symmetric quantization maps the zero padding to
// int8 zero.
func TestIm2ColQ8MatchesFloatIm2Col(t *testing.T) {
	r := rand.New(rand.NewSource(44))
	g, err := NewConvGeom(3, 8, 3, 2, 1, 10, 10)
	if err != nil {
		t.Fatal(err)
	}
	const n = 2
	x := New(n, g.InC, g.InH, g.InW)
	x.Randn(r, 1)

	scale := QuantizeScale(x.Data)
	xq := make([]int8, len(x.Data))
	QuantizeInto(xq, x.Data, scale)
	rows, width := n*g.OutH*g.OutW, g.InC*g.Kernel*g.Kernel
	got := make([]int8, rows*width)
	Im2ColQ8Into(xq, n, g, got)

	colsF := Im2Col(x, g)
	want := make([]int8, rows*width)
	QuantizeInto(want, colsF.Data, scale)

	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("im2colQ8[%d] = %d, want %d", i, got[i], want[i])
		}
	}
}

func TestArenaI8Reuse(t *testing.T) {
	a := NewArena()
	s := a.GetI8(100)
	if len(s) != 100 {
		t.Fatalf("len %d, want 100", len(s))
	}
	a.PutI8(s)
	gets, news, puts := a.Stats()
	if gets != 1 || news != 1 || puts != 1 {
		t.Fatalf("stats gets=%d news=%d puts=%d, want 1/1/1", gets, news, puts)
	}
	// sync.Pool deliberately drops a fraction of Puts under the race
	// detector, so demand a same-class reuse within a few round trips
	// rather than on the first one (same pattern as TestArenaReusesBuffers;
	// LocalArena asserts exact reuse with its deterministic free lists).
	reused := false
	for i := 0; i < 20 && !reused; i++ {
		x := a.GetI8(128)
		p := &x[:1][0]
		a.PutI8(x)
		y := a.GetI8(128)
		reused = &y[:1][0] == p
	}
	if !reused {
		t.Fatal("same-class GetI8 never reused a pooled buffer")
	}
}

func TestLocalArenaI8Reuse(t *testing.T) {
	a := NewLocal()
	s := a.GetI8(100)
	a.PutI8(s)
	_ = a.GetI8(90)
	gets, news, puts := a.Stats()
	if gets != 2 || news != 1 || puts != 1 {
		t.Fatalf("stats gets=%d news=%d puts=%d, want 2/1/1", gets, news, puts)
	}
	var nilArena *LocalArena
	if got := nilArena.GetI8(5); len(got) != 5 {
		t.Fatalf("nil LocalArena GetI8 len %d", len(got))
	}
	nilArena.PutI8(nil) // must not panic
}

// TestQuantizeSpanBitExact pins the AVX2 quantize kernel to the scalar
// quantizeVal element by element, across every 32-wide body/tail split
// and the special values the scalar branches handle: NaN, ±Inf, values
// past the clamp, and exact half-step boundaries.
func TestQuantizeSpanBitExact(t *testing.T) {
	r := rand.New(rand.NewSource(61))
	specials := []float32{
		float32(math.NaN()), float32(math.Inf(1)), float32(math.Inf(-1)),
		0, float32(math.Copysign(0, -1)), 126.5, -126.5, 127, -127, 200, -200,
		0.5, -0.5, 1.5, -1.5, 126.4999, -126.4999,
	}
	for _, n := range []int{0, 1, 31, 32, 33, 63, 64, 65, 100, 256, 1000} {
		for _, scale := range []float32{1, 0.037, 12.5} {
			src := make([]float32, n)
			for i := range src {
				if r.Intn(4) == 0 {
					src[i] = specials[r.Intn(len(specials))] * scale
				} else {
					src[i] = float32(r.NormFloat64()) * 100 * scale
				}
			}
			got := make([]int8, n)
			QuantizeInto(got, src, scale)
			inv := 1 / scale
			for i, v := range src {
				if want := quantizeVal(v, inv); got[i] != want {
					t.Fatalf("n=%d scale=%g: [%d] quantize(%g) = %d, want %d", n, scale, i, v, got[i], want)
				}
			}
		}
	}
}

// TestMaxAbsMatchesGeneric pins the AVX2 max-abs scan to the scalar
// fallback, including NaN lanes (ignored by both) in body and tail.
func TestMaxAbsMatchesGeneric(t *testing.T) {
	r := rand.New(rand.NewSource(62))
	for _, n := range []int{0, 1, 7, 8, 9, 15, 16, 17, 64, 100, 1000} {
		x := make([]float32, n)
		for i := range x {
			x[i] = float32(r.NormFloat64()) * 50
		}
		if n > 2 {
			x[0] = float32(math.NaN())
			x[n-1] = float32(math.NaN()) // lands in the scalar tail when n%8 != 0
		}
		want := maxAbsGeneric(x)
		got := maxAbs(x)
		if math.Float32bits(got) != math.Float32bits(want) {
			t.Fatalf("maxAbs n=%d: %g, want %g", n, got, want)
		}
	}
	// All-NaN input: every comparison loses, the zero identity survives.
	allNaN := []float32{float32(math.NaN()), float32(math.NaN()), float32(math.NaN()),
		float32(math.NaN()), float32(math.NaN()), float32(math.NaN()),
		float32(math.NaN()), float32(math.NaN())}
	if got := maxAbs(allNaN); got != 0 {
		t.Fatalf("maxAbs(all NaN) = %g, want 0", got)
	}
}
