package parsl

import (
	"context"
	"fmt"
	"sync"
)

// AppFuture is the result handle of one app invocation.
type AppFuture struct {
	ID    string
	Label string

	mu     sync.Mutex
	done   chan struct{}
	result any
	err    error
}

func newAppFuture(id, label string) *AppFuture {
	return &AppFuture{ID: id, Label: label, done: make(chan struct{})}
}

// Done returns a channel closed at completion.
func (f *AppFuture) Done() <-chan struct{} { return f.done }

// Get blocks for the result.
func (f *AppFuture) Get(ctx context.Context) (any, error) {
	select {
	case <-f.done:
		f.mu.Lock()
		defer f.mu.Unlock()
		return f.result, f.err
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

// Err returns the error if the future completed; nil otherwise.
func (f *AppFuture) Err() error {
	select {
	case <-f.done:
		f.mu.Lock()
		defer f.mu.Unlock()
		return f.err
	default:
		return nil
	}
}

func (f *AppFuture) complete(result any, err error) {
	f.mu.Lock()
	f.result, f.err = result, err
	f.mu.Unlock()
	close(f.done)
}

// App is the body of a Parsl app.
type App func(ctx context.Context) (any, error)

// DependencyError marks a task skipped because an upstream future failed.
type DependencyError struct {
	Task string
	Dep  string
	Err  error
}

// Error describes the failed dependency.
func (e *DependencyError) Error() string {
	return fmt.Sprintf("parsl: task %s skipped: dependency %s failed: %v", e.Task, e.Dep, e.Err)
}

// Unwrap exposes the underlying dependency error.
func (e *DependencyError) Unwrap() error { return e.Err }

// DFKConfig tunes the DataFlowKernel.
type DFKConfig struct {
	// Retries re-runs a failed app body this many times before the
	// failure is recorded (Parsl's `retries` parameter).
	Retries int
}

// DFK is the DataFlowKernel: it tracks dependencies between app futures
// and submits each task to the executor once its inputs resolve.
type DFK struct {
	cfg  DFKConfig
	exec *HighThroughputExecutor

	mu      sync.Mutex
	nextID  int
	pending sync.WaitGroup
}

// NewDFK builds a kernel over a started executor.
func NewDFK(exec *HighThroughputExecutor, cfg DFKConfig) (*DFK, error) {
	if exec == nil {
		return nil, fmt.Errorf("parsl: DFK needs an executor")
	}
	return &DFK{cfg: cfg, exec: exec}, nil
}

// Submit registers an app invocation with dependencies. The app runs only
// after every dependency completes successfully; if any dependency fails,
// the future completes with a DependencyError without running the body.
func (d *DFK) Submit(label string, app App, deps ...*AppFuture) *AppFuture {
	d.mu.Lock()
	d.nextID++
	id := fmt.Sprintf("app-%06d", d.nextID)
	d.mu.Unlock()
	fut := newAppFuture(id, label)
	d.pending.Add(1)

	go func() {
		// Wait for dependencies in order; ordering does not matter for
		// correctness since all must complete.
		for _, dep := range deps {
			<-dep.Done()
			if err := dep.Err(); err != nil {
				fut.complete(nil, &DependencyError{Task: label, Dep: dep.Label, Err: err})
				d.pending.Done()
				return
			}
		}
		task := func() {
			defer d.pending.Done()
			var result any
			var err error
			for attempt := 0; attempt <= d.cfg.Retries; attempt++ {
				result, err = runApp(app)
				if err == nil {
					break
				}
			}
			fut.complete(result, err)
		}
		if err := d.exec.Submit(task); err != nil {
			fut.complete(nil, err)
			d.pending.Done()
		}
	}()
	return fut
}

func runApp(app App) (result any, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("parsl: app panicked: %v", r)
		}
	}()
	return app(context.Background())
}

// Map submits one app per item with no inter-dependencies and returns the
// futures in order — the bag-of-tasks pattern the preprocessing stage
// uses (one task per granule).
func (d *DFK) Map(label string, apps []App) []*AppFuture {
	futs := make([]*AppFuture, len(apps))
	for i, app := range apps {
		futs[i] = d.Submit(fmt.Sprintf("%s[%d]", label, i), app)
	}
	return futs
}

// WaitAll blocks until all given futures complete and returns the first
// error encountered (in future order).
func WaitAll(ctx context.Context, futs []*AppFuture) error {
	var firstErr error
	for _, f := range futs {
		if _, err := f.Get(ctx); err != nil && firstErr == nil {
			firstErr = fmt.Errorf("%s: %w", f.Label, err)
		}
	}
	return firstErr
}

// Drain waits for every submitted app (including dependency-skipped ones)
// to reach a terminal state.
func (d *DFK) Drain() {
	d.pending.Wait()
}
