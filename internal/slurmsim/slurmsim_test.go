package slurmsim

import (
	"testing"

	"github.com/eoml/eoml/internal/cluster"
	"github.com/eoml/eoml/internal/sim"
)

func newSched(t *testing.T, nodes int, latency sim.Duration) (*sim.Kernel, *Scheduler) {
	t.Helper()
	k := sim.NewKernel()
	spec := cluster.Defiant()
	spec.Nodes = nodes
	m, err := cluster.New(k, spec)
	if err != nil {
		t.Fatal(err)
	}
	return k, New(k, m, Config{SchedLatency: latency})
}

func TestAllocateAndRelease(t *testing.T) {
	k, s := newSched(t, 4, 0)
	var got *Allocation
	id, err := s.Submit(2, func(a *Allocation) { got = a })
	if err != nil {
		t.Fatal(err)
	}
	k.Run()
	if got == nil || len(got.Nodes) != 2 {
		t.Fatalf("allocation %v", got)
	}
	if st, _ := s.JobState(id); st != StateRunning {
		t.Fatalf("state %v", st)
	}
	if s.FreeNodes() != 2 {
		t.Fatalf("free = %d", s.FreeNodes())
	}
	got.Release()
	got.Release() // idempotent
	if s.FreeNodes() != 4 {
		t.Fatalf("free after release = %d", s.FreeNodes())
	}
	if st, _ := s.JobState(id); st != StateCompleted {
		t.Fatalf("state %v", st)
	}
}

func TestQueueingFCFS(t *testing.T) {
	k, s := newSched(t, 4, 0)
	var order []int
	var alloc1 *Allocation
	s.Submit(3, func(a *Allocation) {
		order = append(order, 1)
		alloc1 = a
	})
	// Job 2 wants 3 nodes: must wait even though 1 node is free.
	s.Submit(3, func(a *Allocation) {
		order = append(order, 2)
		a.Release()
	})
	// Job 3 wants 1 node: behind job 2 in FCFS order.
	s.Submit(1, func(a *Allocation) {
		order = append(order, 3)
		a.Release()
	})
	k.Run()
	if len(order) != 1 || order[0] != 1 {
		t.Fatalf("order before release: %v (small job must not jump the queue)", order)
	}
	if s.QueueLength() != 2 {
		t.Fatalf("queue = %d", s.QueueLength())
	}
	alloc1.Release()
	k.Run()
	if len(order) != 3 || order[1] != 2 || order[2] != 3 {
		t.Fatalf("final order: %v", order)
	}
}

func TestSchedulerLatency(t *testing.T) {
	k, s := newSched(t, 2, 1.5)
	var grantedAt sim.Time
	s.Submit(1, func(a *Allocation) {
		grantedAt = k.Now()
		a.Release()
	})
	k.Run()
	if grantedAt != 1.5 {
		t.Fatalf("granted at %v, want 1.5", grantedAt)
	}
}

func TestSubmitValidation(t *testing.T) {
	_, s := newSched(t, 2, 0)
	if _, err := s.Submit(0, nil); err == nil {
		t.Error("0-node job accepted")
	}
	if _, err := s.Submit(3, nil); err == nil {
		t.Error("oversized job accepted")
	}
	if _, err := s.JobState(99); err == nil {
		t.Error("unknown job state returned")
	}
}

func TestAllocationsAreDisjoint(t *testing.T) {
	k, s := newSched(t, 6, 0)
	seen := map[int]bool{}
	dup := false
	for i := 0; i < 3; i++ {
		s.Submit(2, func(a *Allocation) {
			for _, n := range a.Nodes {
				if seen[n.ID] {
					dup = true
				}
				seen[n.ID] = true
			}
		})
	}
	k.Run()
	if dup {
		t.Fatal("overlapping allocations")
	}
	if len(seen) != 6 {
		t.Fatalf("allocated %d distinct nodes", len(seen))
	}
}

func TestReleaseReusesNodesDeterministically(t *testing.T) {
	k, s := newSched(t, 2, 0)
	var first, second []int
	s.Submit(2, func(a *Allocation) {
		for _, n := range a.Nodes {
			first = append(first, n.ID)
		}
		a.Release()
	})
	k.Run()
	s.Submit(2, func(a *Allocation) {
		for _, n := range a.Nodes {
			second = append(second, n.ID)
		}
		a.Release()
	})
	k.Run()
	if len(first) != 2 || len(second) != 2 {
		t.Fatalf("allocations %v %v", first, second)
	}
	for i := range first {
		if first[i] != second[i] {
			t.Fatalf("node order changed across identical runs: %v vs %v", first, second)
		}
	}
}

// End-to-end DES check: a Parsl-like block running tile workers through a
// Slurm allocation completes a fixed workload in sensible virtual time.
func TestBlockOfWorkersProcessesFiles(t *testing.T) {
	k, s := newSched(t, 2, 2.0)
	const files = 16
	const tilesPerFile = 40
	remaining := files
	filesDone := 0
	var finished sim.Time
	s.Submit(2, func(a *Allocation) {
		for _, node := range a.Nodes {
			for w := 0; w < 8; w++ {
				worker := &cluster.Worker{Node: node, Cost: cluster.DefaultTileCost()}
				worker.RunQueue(func() (int, bool) {
					if remaining == 0 {
						return 0, false
					}
					remaining--
					return tilesPerFile, true
				}, func(int) {
					filesDone++
					if filesDone == files {
						finished = k.Now()
						a.Release()
					}
				}, nil)
			}
		}
	})
	k.Run()
	if filesDone != files {
		t.Fatalf("files done = %d", filesDone)
	}
	// 640 tiles at ≈2 nodes × ≈29 tiles/s plus 2s scheduling ≈ 13s.
	if finished < 5 || finished > 30 {
		t.Fatalf("finished at %.1f virtual seconds", float64(finished))
	}
	if s.FreeNodes() != 2 {
		t.Fatalf("nodes not returned: %d", s.FreeNodes())
	}
}
