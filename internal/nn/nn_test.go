package nn

import (
	"math"
	"math/rand"
	"path/filepath"
	"testing"

	"github.com/eoml/eoml/internal/tensor"
)

// numericalGrad estimates dLoss/dparam[i] by central differences.
func numericalGrad(f func() float64, w []float32, i int) float64 {
	const eps = 1e-3
	orig := w[i]
	w[i] = orig + eps
	up := f()
	w[i] = orig - eps
	down := f()
	w[i] = orig
	return (up - down) / (2 * eps)
}

// checkGradients compares backprop gradients of a model against numerical
// differentiation on a small random problem.
func checkGradients(t *testing.T, model *Sequential, x, target *tensor.T, tol float64) {
	t.Helper()
	loss := func() float64 {
		out := model.Forward(x)
		l, _ := MSELoss(out, target)
		return l
	}
	ZeroGrad(model.Params())
	out := model.Forward(x)
	_, grad := MSELoss(out, target)
	model.Backward(grad)

	for _, p := range model.Params() {
		// Sample a few indices per parameter to keep runtime sane.
		step := p.W.Len()/5 + 1
		for i := 0; i < p.W.Len(); i += step {
			want := numericalGrad(loss, p.W.Data, i)
			got := float64(p.G.Data[i])
			diff := math.Abs(want - got)
			scale := math.Max(1e-2, math.Abs(want)+math.Abs(got))
			if diff/scale > tol {
				t.Errorf("%s[%d]: backprop %v vs numerical %v", p.Name, i, got, want)
			}
		}
	}
}

func TestDenseGradients(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	model := NewSequential("m",
		NewDense("d1", 6, 5, r),
		NewLeakyReLU("a1", 0.1),
		NewDense("d2", 5, 3, r),
	)
	x := tensor.New(4, 6)
	x.Randn(r, 1)
	target := tensor.New(4, 3)
	target.Randn(r, 1)
	checkGradients(t, model, x, target, 0.05)
}

func TestConvGradients(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	conv1, err := NewConv2D("c1", 2, 3, 3, 2, 1, 8, 8, r)
	if err != nil {
		t.Fatal(err)
	}
	g1 := conv1.Geom()
	conv2, err := NewConv2D("c2", 3, 2, 3, 1, 1, g1.OutH, g1.OutW, r)
	if err != nil {
		t.Fatal(err)
	}
	g2 := conv2.Geom()
	model := NewSequential("m", conv1, NewLeakyReLU("a", 0.1), conv2)
	x := tensor.New(2, 2, 8, 8)
	x.Randn(r, 1)
	target := tensor.New(2, 2, g2.OutH, g2.OutW)
	target.Randn(r, 1)
	checkGradients(t, model, x, target, 0.05)
}

func TestAutoencoderGradients(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	enc, err := NewConv2D("e1", 1, 4, 3, 2, 1, 8, 8, r)
	if err != nil {
		t.Fatal(err)
	}
	g := enc.Geom() // 4×4
	model := NewSequential("ae",
		enc,
		NewLeakyReLU("a1", 0.1),
		NewFlatten("f"),
		NewDense("lat", 4*g.OutH*g.OutW, 8, r),
		NewDense("exp", 8, 4*g.OutH*g.OutW, r),
		NewReshape4D("r", 4, g.OutH, g.OutW),
		NewUpsample2x("u"),
		NewSigmoid("s"),
	)
	x := tensor.New(2, 1, 8, 8)
	x.Randn(r, 0.5)
	// Sigmoid output vs target in (0,1).
	target := tensor.New(2, 4, 8, 8)
	for i := range target.Data {
		target.Data[i] = float32(r.Float64())
	}
	checkGradients(t, model, x, target, 0.08)
}

func TestAdamReducesLossOnRegression(t *testing.T) {
	r := rand.New(rand.NewSource(4))
	model := NewSequential("m",
		NewDense("d1", 4, 16, r),
		NewLeakyReLU("a", 0.1),
		NewDense("d2", 16, 1, r),
	)
	opt := NewAdam(0.01)
	// Learn y = sum(x).
	x := tensor.New(32, 4)
	x.Randn(r, 1)
	y := tensor.New(32, 1)
	for i := 0; i < 32; i++ {
		var s float32
		for j := 0; j < 4; j++ {
			s += x.Data[i*4+j]
		}
		y.Data[i] = s
	}
	var first, last float64
	for epoch := 0; epoch < 300; epoch++ {
		ZeroGrad(model.Params())
		out := model.Forward(x)
		loss, grad := MSELoss(out, y)
		if epoch == 0 {
			first = loss
		}
		last = loss
		model.Backward(grad)
		opt.Step(model.Params())
	}
	if last > first*0.05 {
		t.Fatalf("Adam did not converge: first %v last %v", first, last)
	}
}

func TestSGDStepDirection(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	d := NewDense("d", 2, 1, r)
	x := tensor.FromSlice([]float32{1, 2}, 1, 2)
	target := tensor.FromSlice([]float32{10}, 1, 1)
	opt := &SGD{LR: 0.05}
	var prev float64 = math.Inf(1)
	for i := 0; i < 50; i++ {
		ZeroGrad(d.Params())
		out := d.Forward(x)
		loss, grad := MSELoss(out, target)
		if loss > prev+1e-9 {
			t.Fatalf("SGD loss increased at step %d: %v -> %v", i, prev, loss)
		}
		prev = loss
		d.Backward(grad)
		opt.Step(d.Params())
	}
}

func TestEmbeddingMatchLoss(t *testing.T) {
	z := tensor.FromSlice([]float32{1, 2}, 1, 2)
	target := tensor.FromSlice([]float32{0, 0}, 1, 2)
	loss, grad := EmbeddingMatchLoss(z, target, 0.5)
	// 0.5 * mean(1+4) = 1.25
	if math.Abs(loss-1.25) > 1e-9 {
		t.Fatalf("loss = %v", loss)
	}
	// grad = 0.5 * 2*z/2 = z/2
	if grad.Data[0] != 0.5 || grad.Data[1] != 1.0 {
		t.Fatalf("grad = %v", grad.Data)
	}
	if l0, _ := EmbeddingMatchLoss(z, z, 0.5); l0 != 0 {
		t.Fatalf("self-match loss = %v", l0)
	}
}

func TestLeakyReLUForwardBackward(t *testing.T) {
	l := NewLeakyReLU("a", 0.01)
	x := tensor.FromSlice([]float32{-2, 0, 3}, 1, 3)
	y := l.Forward(x)
	if y.Data[0] != -0.02 || y.Data[1] != 0 || y.Data[2] != 3 {
		t.Fatalf("forward = %v", y.Data)
	}
	g := l.Backward(tensor.FromSlice([]float32{1, 1, 1}, 1, 3))
	if g.Data[0] != 0.01 || g.Data[2] != 1 {
		t.Fatalf("backward = %v", g.Data)
	}
}

func TestSigmoidRange(t *testing.T) {
	l := NewSigmoid("s")
	x := tensor.FromSlice([]float32{-100, 0, 100}, 1, 3)
	y := l.Forward(x)
	if y.Data[0] > 1e-6 || math.Abs(float64(y.Data[1]-0.5)) > 1e-6 || y.Data[2] < 1-1e-6 {
		t.Fatalf("sigmoid = %v", y.Data)
	}
}

func TestSaveLoadParams(t *testing.T) {
	r := rand.New(rand.NewSource(6))
	m1 := NewSequential("m", NewDense("d1", 3, 4, r), NewDense("d2", 4, 2, r))
	path := filepath.Join(t.TempDir(), "model.hdf")
	meta := map[string]any{"latent": int64(4)}
	if err := SaveParams(path, m1.Params(), meta); err != nil {
		t.Fatal(err)
	}
	m2 := NewSequential("m", NewDense("d1", 3, 4, r), NewDense("d2", 4, 2, r))
	gotMeta, err := LoadParams(path, m2.Params())
	if err != nil {
		t.Fatal(err)
	}
	if gotMeta["latent"] != int64(4) {
		t.Fatalf("meta = %#v", gotMeta)
	}
	x := tensor.New(5, 3)
	x.Randn(r, 1)
	y1 := m1.Forward(x)
	y2 := m2.Forward(x)
	for i := range y1.Data {
		if y1.Data[i] != y2.Data[i] {
			t.Fatal("loaded model diverges from saved model")
		}
	}
	// Shape mismatch must fail.
	m3 := NewSequential("m", NewDense("d1", 3, 5, r))
	if _, err := LoadParams(path, m3.Params()); err == nil {
		t.Fatal("shape mismatch accepted")
	}
}

func TestSaveParamsRejectsDuplicates(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	a := NewDense("same", 2, 2, r)
	b := NewDense("same", 2, 2, r)
	if err := SaveParams(filepath.Join(t.TempDir(), "x.hdf"), append(a.Params(), b.Params()...), nil); err == nil {
		t.Fatal("duplicate parameter names accepted")
	}
}
