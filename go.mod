module github.com/eoml/eoml

go 1.22
