package flows

import (
	"context"
	"errors"
	"net/http/httptest"
	"testing"
)

func newFlowsService(t *testing.T) (*Service, *Client) {
	t.Helper()
	e := engineWithProviders(t, EngineConfig{})
	svc := NewService(e)
	srv := httptest.NewServer(svc.Handler())
	t.Cleanup(srv.Close)
	return svc, NewClient(srv.URL)
}

func TestServiceRegisterAndRunOverHTTP(t *testing.T) {
	_, client := newFlowsService(t)
	ctx := context.Background()

	flowID, err := client.RegisterFlow(ctx, []byte(inferenceFlowJSON))
	if err != nil {
		t.Fatal(err)
	}
	if flowID == "" {
		t.Fatal("empty flow id")
	}
	runID, err := client.StartRun(ctx, flowID, map[string]any{
		"watch_dir": "/scratch/tiles",
		"outbox":    "/scratch/outbox",
	})
	if err != nil {
		t.Fatal(err)
	}
	out, err := client.WaitRun(ctx, runID)
	if err != nil {
		t.Fatal(err)
	}
	labels, ok := out["labels"].(map[string]any)
	if !ok || labels["labeled"] != float64(2) {
		t.Fatalf("remote output: %#v", out)
	}
	events, err := client.Events(ctx, runID)
	if err != nil {
		t.Fatal(err)
	}
	if len(events) < 4 {
		t.Fatalf("events = %d", len(events))
	}
}

func TestServiceRejectsBadDefinitionAndUnknownIDs(t *testing.T) {
	_, client := newFlowsService(t)
	ctx := context.Background()
	if _, err := client.RegisterFlow(ctx, []byte(`{"oops": true}`)); err == nil {
		t.Error("bad definition accepted")
	}
	if _, err := client.StartRun(ctx, "flow-9999", nil); err == nil {
		t.Error("unknown flow started")
	}
	if _, _, err := client.RunStatus(ctx, "run-9999"); err == nil {
		t.Error("unknown run polled")
	}
	if _, err := client.Events(ctx, "run-9999"); err == nil {
		t.Error("unknown run events fetched")
	}
}

func TestServiceRemoteFailureSurfaces(t *testing.T) {
	e := NewEngine(EngineConfig{})
	if err := e.RegisterProvider("bad", func(ctx context.Context, p map[string]any) (any, error) {
		return nil, errors.New("provider down")
	}); err != nil {
		t.Fatal(err)
	}
	svc := NewService(e)
	srv := httptest.NewServer(svc.Handler())
	defer srv.Close()
	client := NewClient(srv.URL)
	ctx := context.Background()

	flowID, err := client.RegisterFlow(ctx, []byte(`{
		"StartAt": "A",
		"States": {"A": {"Type": "Action", "ActionProvider": "bad", "End": true}}
	}`))
	if err != nil {
		t.Fatal(err)
	}
	runID, err := client.StartRun(ctx, flowID, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := client.WaitRun(ctx, runID); err == nil {
		t.Fatal("remote failure swallowed")
	}
}

func TestServiceRejectsUnregisteredProviderAtRunStart(t *testing.T) {
	_, client := newFlowsService(t)
	ctx := context.Background()
	flowID, err := client.RegisterFlow(ctx, []byte(`{
		"StartAt": "A",
		"States": {"A": {"Type": "Action", "ActionProvider": "ghost", "End": true}}
	}`))
	if err != nil {
		t.Fatal(err) // registration stores the definition; providers bind at run time
	}
	if _, err := client.StartRun(ctx, flowID, nil); err == nil {
		t.Fatal("run with unregistered provider accepted")
	}
}
