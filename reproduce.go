package eoml

import (
	"fmt"

	"github.com/eoml/eoml/internal/experiments"
)

// The Reproduce* functions regenerate the paper's tables and figures on
// the calibrated discrete-event simulator and return the rendered text.
// cmd/benchtab wraps them as a CLI; bench_test.go wraps them as
// testing.B benchmarks.

// ReproduceFig3 regenerates the download-speed curves (3 vs 6 workers
// across product sizes).
func ReproduceFig3() string {
	points := experiments.Fig3(experiments.DefaultDownloadModel(), 3, 1)
	return "Fig. 3: download speed vs product size\n" + experiments.RenderFig3(points)
}

// ReproduceFig4 regenerates the strong-scaling completion-time curves.
func ReproduceFig4() string {
	cfg := experiments.DefaultScalingConfig()
	s := experiments.RenderScaling("Fig. 4a: strong scaling by workers (128 files)", "workers",
		experiments.Fig4StrongWorkers(cfg), false)
	s += "\n" + experiments.RenderScaling("Fig. 4b: strong scaling by nodes (80 files, 8 workers/node)", "nodes",
		experiments.Fig4StrongNodes(cfg), true)
	return s
}

// ReproduceFig5 regenerates the weak-scaling completion-time curves.
func ReproduceFig5() string {
	cfg := experiments.DefaultScalingConfig()
	s := experiments.RenderScaling("Fig. 5a: weak scaling by workers (2 files/worker)", "workers",
		experiments.Fig5WeakWorkers(cfg), false)
	s += "\n" + experiments.RenderScaling("Fig. 5b: weak scaling by nodes (8 workers/node, 2 files/worker)", "nodes",
		experiments.Fig5WeakNodes(cfg), true)
	return s
}

// ReproduceTable1 regenerates the tile-throughput table.
func ReproduceTable1() string {
	return experiments.RenderTable1(experiments.RunTable1(experiments.DefaultScalingConfig()))
}

// ReproduceFig6 regenerates the dynamic worker-allocation timeline.
func ReproduceFig6() (string, error) {
	res, err := experiments.RunPipeline(experiments.DefaultPipelineConfig())
	if err != nil {
		return "", err
	}
	s := "Fig. 6: automation timeline (3 download / 32 preprocess / 1 inference workers)\n"
	s += experiments.RenderFig6(res, 72)
	s += fmt.Sprintf("total pipeline time: %.1f virtual seconds; %d tiles labeled\n",
		res.TotalSeconds, res.TilesLabeled)
	return s, nil
}

// ReproduceFig7 regenerates the per-stage latency breakdown.
func ReproduceFig7() (string, error) {
	res, err := experiments.RunPipeline(experiments.DefaultPipelineConfig())
	if err != nil {
		return "", err
	}
	return "Fig. 7: workflow latency breakdown\n" + experiments.RenderFig7(res), nil
}

// ReproduceHeadline regenerates the abstract's 12,000-tiles claim.
func ReproduceHeadline() string {
	secs, rate := experiments.Headline(experiments.DefaultScalingConfig())
	return fmt.Sprintf("Headline: 12,000 tiles with 80 workers on 10 nodes: %.1f virtual seconds (%.1f tiles/s; paper: 44 s, ≈272 tiles/s)\n",
		secs, rate)
}

// ReproduceAblations runs the design-choice ablations from DESIGN.md.
func ReproduceAblations() (string, error) {
	s := "Ablation: node fair-share contention vs contention-free scaling\n"
	s += experiments.RenderContention(experiments.AblationContention(200, nil))
	poll, err := experiments.AblationPoll(nil)
	if err != nil {
		return "", err
	}
	s += "\nAblation: monitor poll interval\n"
	s += experiments.RenderPoll(poll)
	s += "\nAblation: shared-filesystem (Lustre) capacity vs node scaling\n"
	s += experiments.RenderLustre(experiments.AblationLustre(10, 1))
	return s, nil
}
