// Blocked matrix multiplication kernels built on the SIMD primitives in
// simd_amd64.s (8-wide AVX2 FMA, with a scalar fallback on other CPUs).
//
// The decomposition:
//
//   - C rows are processed in blocks of 4 (mrTile). Within a block the
//     kernel walks k once; each B row is pulled into L1 by the first
//     axpy and reused by the next three, quartering B traffic compared
//     to the naive row-at-a-time loop.
//   - The inner update is an 8-wide fused multiply-add over a full C
//     row (axpy), so the arithmetic runs at SIMD rate instead of the
//     one-scalar-FMA-per-step the compiler emits for the naive loop.
//   - Row blocks are distributed across GOMAXPROCS goroutines via
//     parallelRows, same as the naive kernels.
//   - MatMulTB is dot-product shaped (both operands contiguous along
//     k), so it uses the dot primitive directly with no packing.
//
// Summation order over k stays ascending, but the 8-lane FMA
// accumulators change the association order, so blocked results agree
// with the MatMul*Naive oracles to float32 rounding (the property tests
// in blocked_test.go pin this at 1e-5 relative).

package tensor

import "fmt"

// mrTile is the number of C rows computed per block; sized so the
// block's C rows and the current B row stay L1-resident.
const mrTile = 4

// matMulBlockedInto computes C = A·B into cD, overwriting it.
func matMulBlockedInto(aD, bD, cD []float32, m, k, n int) {
	blocks := (m + mrTile - 1) / mrTile
	parallelWork(blocks, mrTile*k*n, func(lo, hi int) {
		var c, a [mrTile][]float32
		for blk := lo; blk < hi; blk++ {
			i := blk * mrTile
			rows := m - i
			if rows > mrTile {
				rows = mrTile
			}
			for r := 0; r < rows; r++ {
				c[r] = cD[(i+r)*n : (i+r+1)*n]
				a[r] = aD[(i+r)*k : (i+r+1)*k]
				clear(c[r])
			}
			for p := 0; p < k; p++ {
				br := bD[p*n : (p+1)*n]
				for r := 0; r < rows; r++ {
					if av := a[r][p]; av != 0 {
						axpy(av, br, c[r])
					}
				}
			}
		}
	})
}

// MatMul computes C = A·B for A of shape [m,k] and B of shape [k,n]
// using the blocked kernel. MatMulNaive is the reference oracle.
func MatMul(a, b *T) *T {
	if len(a.Shape) != 2 || len(b.Shape) != 2 || a.Shape[1] != b.Shape[0] {
		panic(fmt.Sprintf("tensor: matmul %v × %v", a.Shape, b.Shape))
	}
	c := New(a.Shape[0], b.Shape[1])
	matMulBlockedInto(a.Data, b.Data, c.Data, a.Shape[0], a.Shape[1], b.Shape[1])
	return c
}

// MatMulInto computes C = A·B into out, which must already have shape
// [m,n]. Prior contents of out are overwritten, so arena-recycled
// buffers need no zeroing.
func MatMulInto(a, b, out *T) {
	if len(a.Shape) != 2 || len(b.Shape) != 2 || a.Shape[1] != b.Shape[0] {
		panic(fmt.Sprintf("tensor: matmul %v × %v", a.Shape, b.Shape))
	}
	if len(out.Shape) != 2 || out.Shape[0] != a.Shape[0] || out.Shape[1] != b.Shape[1] {
		panic(fmt.Sprintf("tensor: matmul into %v, want [%d %d]", out.Shape, a.Shape[0], b.Shape[1]))
	}
	matMulBlockedInto(a.Data, b.Data, out.Data, a.Shape[0], a.Shape[1], b.Shape[1])
}

// MatMulTA computes C = Aᵀ·B for A [k,m] and B [k,n] using the blocked
// kernel. The A operand for C row i is the strided column A[:,i], read
// one scalar per k step — the axpy over B rows is still the vector op.
func MatMulTA(a, b *T) *T {
	if len(a.Shape) != 2 || len(b.Shape) != 2 || a.Shape[0] != b.Shape[0] {
		panic(fmt.Sprintf("tensor: matmulTA %v × %v", a.Shape, b.Shape))
	}
	k, m, n := a.Shape[0], a.Shape[1], b.Shape[1]
	c := New(m, n)
	aD, bD, cD := a.Data, b.Data, c.Data
	blocks := (m + mrTile - 1) / mrTile
	parallelWork(blocks, mrTile*k*n, func(lo, hi int) {
		var c [mrTile][]float32
		for blk := lo; blk < hi; blk++ {
			i := blk * mrTile
			rows := m - i
			if rows > mrTile {
				rows = mrTile
			}
			for r := 0; r < rows; r++ {
				c[r] = cD[(i+r)*n : (i+r+1)*n]
				clear(c[r])
			}
			for p := 0; p < k; p++ {
				br := bD[p*n : (p+1)*n]
				ar := aD[p*m+i : p*m+i+rows]
				for r := 0; r < rows; r++ {
					if av := ar[r]; av != 0 {
						axpy(av, br, c[r])
					}
				}
			}
		}
	})
	return c
}

// MatMulTB computes C = A·Bᵀ for A [m,k] and B [n,k] using the blocked
// kernel. Both operands are contiguous along k, so each C element is a
// single SIMD dot product; the row block keeps the A row hot across the
// sweep over B rows.
func MatMulTB(a, b *T) *T {
	if len(a.Shape) != 2 || len(b.Shape) != 2 || a.Shape[1] != b.Shape[1] {
		panic(fmt.Sprintf("tensor: matmulTB %v × %v", a.Shape, b.Shape))
	}
	m, k, n := a.Shape[0], a.Shape[1], b.Shape[0]
	c := New(m, n)
	aD, bD, cD := a.Data, b.Data, c.Data
	parallelWork(m, k*n, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			ar := aD[i*k : (i+1)*k]
			crow := cD[i*n : (i+1)*n]
			for j := 0; j < n; j++ {
				crow[j] = dot(ar, bD[j*k:(j+1)*k])
			}
		}
	})
	return c
}
