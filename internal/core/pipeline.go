package core

import (
	"context"
	"fmt"
	"path/filepath"
	"strings"
	"time"

	"github.com/eoml/eoml/internal/aicca"
	"github.com/eoml/eoml/internal/fleet"
	"github.com/eoml/eoml/internal/hdf"
	"github.com/eoml/eoml/internal/laads"
	"github.com/eoml/eoml/internal/metrics"
	"github.com/eoml/eoml/internal/modis"
	"github.com/eoml/eoml/internal/parsl"
	"github.com/eoml/eoml/internal/provenance"
	"github.com/eoml/eoml/internal/stage"
	"github.com/eoml/eoml/internal/tensor"
	"github.com/eoml/eoml/internal/tile"
	"github.com/eoml/eoml/internal/trace"
)

// Report summarizes a completed pipeline run.
type Report struct {
	GranulesRequested int
	FilesDownloaded   int
	BytesDownloaded   int64
	TileFiles         int // granules that yielded ocean-cloud tiles
	TilesProduced     int
	TilesLabeled      int
	FilesShipped      int
	FlowsFailed       int // label-and-move flows that errored
	Elapsed           time.Duration

	// Stage telemetry (Fig. 6 / Fig. 7 counterparts for real runs).
	Timeline *trace.Timeline
	Spans    *trace.Spans

	// Metrics is the final registry snapshot, so batch runs keep parity
	// with a live /metrics scrape of a streaming run.
	Metrics []metrics.Family
}

// Run is one isolated execution of the five-stage workflow, built by
// Engine.NewRun. Both execution modes — batch (Run) and streaming
// (RunStream) — are thin drivers over the same stage objects from
// internal/stage, composed in different orders. Every Run owns its own
// metric registry, health tracker, and stage state; the model weights,
// decode arena, and archive quota it uses are the engine's shared ones.
type Run struct {
	cfg     Config
	id      string
	tenant  string
	labeler *aicca.Labeler
	prov    *provenance.Store
	// extract recycles per-granule decode scratch across the concurrent
	// preprocessing workers (one shard per worker in flight); shared
	// engine-wide, so concurrent runs recycle one pool.
	extract *tensor.ShardedArena
	// fleet leases preprocess/inference tasks to worker processes when
	// cfg.Distribution is "fleet"; nil otherwise.
	fleet   *fleet.Coordinator
	quota   *laads.Quota
	metrics *metrics.Registry
	health  *metrics.Health
}

// Pipeline is the legacy one-shot facade: a single-run Engine. It
// exists so code written against the original one-Pipeline-per-process
// API keeps compiling and behaving byte-identically; everything it does
// is a thin delegation to a Run built the same way the control plane
// builds them — one code path.
type Pipeline struct {
	run *Run
}

// New builds a one-shot pipeline. The labeler may be nil only if the
// config names model and codebook files to load.
func New(cfg Config, labeler *aicca.Labeler) (*Pipeline, error) {
	run, err := NewEngine(EngineOptions{Labeler: labeler}).NewRun(cfg, RunOptions{})
	if err != nil {
		return nil, err
	}
	return &Pipeline{run: run}, nil
}

// Run executes the batch workflow; see Run.Run.
func (p *Pipeline) Run(ctx context.Context) (*Report, error) { return p.run.Run(ctx) }

// RunStream executes the streaming workflow; see Run.RunStream.
func (p *Pipeline) RunStream(ctx context.Context, arrivals <-chan int) (*Report, error) {
	return p.run.RunStream(ctx, arrivals)
}

// SetProvenance attaches a provenance store to the underlying run.
func (p *Pipeline) SetProvenance(store *provenance.Store) { p.run.SetProvenance(store) }

// Metrics returns the underlying run's live metric registry.
func (p *Pipeline) Metrics() *metrics.Registry { return p.run.Metrics() }

// Health returns the underlying run's per-stage liveness tracker.
func (p *Pipeline) Health() *metrics.Health { return p.run.Health() }

// ID returns the control-plane identity of the run (empty for the
// legacy one-shot path).
func (p *Run) ID() string { return p.id }

// Tenant returns the tenant the run is attributed to (may be empty).
func (p *Run) Tenant() string { return p.tenant }

// Config returns the run's validated configuration.
func (p *Run) Config() Config { return p.cfg }

// Metrics returns the run's live metric registry. It implements
// http.Handler (Prometheus text exposition; JSON on request), so
// drivers can mount it directly on /metrics. When the run was built
// with a control-plane ID, every series carries run/tenant labels.
func (p *Run) Metrics() *metrics.Registry { return p.metrics }

// Health returns the run's per-stage liveness tracker. It implements
// http.Handler (200/503 with per-stage JSON), so drivers can mount it
// directly on /healthz.
func (p *Run) Health() *metrics.Health { return p.health }

// newReport builds the report and the shared run context every driver
// hands to the stage orchestrator.
func (p *Run) newReport(granules int) (*Report, *stage.RunContext) {
	rep := &Report{
		GranulesRequested: granules,
		Timeline:          trace.NewTimeline(),
		Spans:             trace.NewSpans(),
	}
	rc := &stage.RunContext{
		Epoch:    time.Now(),
		Timeline: rep.Timeline,
		Spans:    rep.Spans,
		Metrics:  p.metrics,
		Health:   p.health,
		Dirs:     []string{p.cfg.DataDir, p.cfg.TileDir, p.cfg.OutboxDir, p.cfg.DestDir},
	}
	return rep, rc
}

// inferenceService builds the shared monitor+inference stage: crawler,
// flow engine, cross-file batcher, and bounded worker pool, armed at
// setup so labeling overlaps preprocessing (the paper's Fig. 6).
func (p *Run) inferenceService() *stage.InferenceService {
	cfg := stage.InferenceConfig{
		Labeler:      p.labeler,
		BatchTiles:   p.cfg.BatchTiles,
		BatchDelay:   p.cfg.BatchDelay,
		Precision:    aicca.Precision(p.cfg.Precision),
		WatchDir:     p.cfg.TileDir,
		PollInterval: p.cfg.PollInterval,
		Workers:      p.cfg.InferenceWorkers,
		OutboxDir:    p.cfg.OutboxDir,
		StallTimeout: p.cfg.StallTimeout,
		OnMoved:      p.recordInference,
	}
	if p.cfg.Distribution == DistributionFleet {
		// Labeling runs on the fleet: the flow ships the tile file's
		// *path* plus model refs, a worker labels it in place on shared
		// storage, and the move step stays run-side.
		cfg.LabelFile = p.fleetLabelFile
	}
	return stage.NewInferenceService(cfg)
}

// fleetLabelFile is the fleet-distributed inference kernel call: one
// leased task per tile file, labels written in place by the worker.
func (p *Run) fleetLabelFile(ctx context.Context, path string) (int, error) {
	fut, err := p.fleet.Submit(ctx, fleet.LabelFunction, fleet.LabelArgs{
		File:      path,
		Model:     p.cfg.ModelPath,
		Codebook:  p.cfg.CodebookPath,
		Precision: p.cfg.Precision,
	}.Args())
	if err != nil {
		return 0, err
	}
	v, err := fut.Get(ctx)
	if err != nil {
		return 0, err
	}
	res, err := fleet.ParseLabelResult(v)
	return res.Labeled, err
}

// shipment builds the stage-5 transfer, skipped when upstream produced
// no tile files.
func (p *Run) shipment(svc *stage.InferenceService) *stage.Shipment {
	return stage.NewShipment(stage.ShipmentConfig{
		SrcDir:    p.cfg.OutboxDir,
		DestDir:   p.cfg.DestDir,
		Skip:      func() bool { return svc.Expected() == 0 },
		OnShipped: p.recordShipment,
	})
}

// finish copies the stage outcomes into the report.
func (p *Run) finish(rep *Report, rc *stage.RunContext, svc *stage.InferenceService, ship *stage.Shipment) {
	rep.TilesLabeled = svc.TilesLabeled()
	rep.FlowsFailed = svc.FlowsFailed()
	rep.FilesShipped = ship.FilesShipped()
	rep.Elapsed = time.Since(rc.Epoch)
	rep.Metrics = p.metrics.Snapshot()
}

// Run executes download → preprocess → monitor/trigger → inference →
// shipment and returns the run report. The inference service arms
// during orchestrator setup, so labeling overlaps preprocessing as in
// the paper's Fig. 6; shipment begins once every tile file is labeled.
func (p *Run) Run(ctx context.Context) (*Report, error) {
	rep, rc := p.newReport(len(p.cfg.GranuleIDs()))
	svc := p.inferenceService()
	ship := p.shipment(svc)

	download := stage.Func("download", func(ctx context.Context, rc *stage.RunContext) error {
		if p.cfg.Distribution == DistributionFleet {
			// Tasks ship granule refs, not bytes: each worker fetches the
			// granules it leases straight from the archive, so no data
			// moves through this process.
			rc.Health.Beat("download")
			rc.Timeline.Record("download", rc.Since(), 0)
			return nil
		}
		rc.EventCounter("download", stage.EventIn).Add(int64(3 * len(p.cfg.GranuleIDs())))
		files, bytes, err := p.downloadViaCompute(ctx, p.cfg.GranuleIDs(), func(active int) {
			rc.Timeline.Record("download", rc.Since(), active)
			rc.Health.Beat("download")
		})
		if err != nil {
			return err
		}
		rep.FilesDownloaded, rep.BytesDownloaded = files, bytes
		rc.EventCounter("download", stage.EventOut).Add(int64(files))
		return nil
	})
	preprocess := stage.Func("preprocess", func(ctx context.Context, rc *stage.RunContext) error {
		rc.EventCounter("preprocess", stage.EventIn).Add(int64(len(p.cfg.GranuleIDs())))
		var files, tiles int
		var err error
		if p.cfg.Distribution == DistributionFleet {
			files, tiles, err = p.preprocessFleet(ctx, rc)
		} else {
			files, tiles, err = p.preprocessBatch(ctx, rc)
		}
		if err != nil {
			return err
		}
		rep.TileFiles, rep.TilesProduced = files, tiles
		rc.EventCounter("preprocess", stage.EventOut).Add(int64(files))
		svc.ExpectFiles(files)
		return nil
	})

	err := stage.NewOrchestrator(rc).Execute(ctx, download, preprocess, svc, ship)
	p.finish(rep, rc, svc, ship)
	if err != nil {
		// The partial report still carries telemetry and the FlowsFailed
		// count, so callers can see how far the run got.
		return rep, fmt.Errorf("core: %w", err)
	}
	return rep, nil
}

// preprocessBatch runs the Parsl block over every configured granule
// and returns (tileFiles, tilesProduced).
func (p *Run) preprocessBatch(ctx context.Context, rc *stage.RunContext) (int, int, error) {
	exec, err := parsl.NewHTEX(parsl.HTEXConfig{
		Label:          "preprocess",
		WorkersPerNode: p.cfg.PreprocessWorkers,
		InitBlocks:     1,
		MaxBlocks:      1,
		OnWorkerChange: func(busy int) {
			rc.Timeline.Record("preprocess", rc.Since(), busy)
			rc.Health.Beat("preprocess")
		},
	})
	if err != nil {
		return 0, 0, err
	}
	exec.Instrument(p.metrics)
	if err := exec.Start(ctx); err != nil {
		return 0, 0, err
	}
	defer exec.Shutdown(ctx)
	dfk, err := parsl.NewDFK(exec, parsl.DFKConfig{Retries: 1})
	if err != nil {
		return 0, 0, err
	}

	granules := p.cfg.GranuleIDs()
	apps := make([]parsl.App, len(granules))
	for i, g := range granules {
		g := g
		apps[i] = func(ctx context.Context) (any, error) {
			return p.preprocessGranule(g)
		}
	}
	files, tiles := 0, 0
	for i, f := range dfk.Map("tiles", apps) {
		v, err := f.Get(ctx)
		if err != nil {
			return 0, 0, fmt.Errorf("granule %d: %w", granules[i].Index, err)
		}
		r := v.(preResult)
		tiles += r.tiles
		if r.hasFile {
			files++
		}
	}
	return files, tiles, exec.Shutdown(ctx)
}

// preResult is the per-granule outcome of the preprocessing app.
type preResult struct {
	tiles   int
	hasFile bool
}

// preprocessFleet leases one tile-extraction task per granule to the
// worker fleet — all submitted up front, so in-flight parallelism is
// bounded by fleet capacity, not this process's worker pool — and
// returns (tileFiles, tilesProduced).
func (p *Run) preprocessFleet(ctx context.Context, rc *stage.RunContext) (int, int, error) {
	granules := p.cfg.GranuleIDs()
	futs := make([]*fleet.Future, len(granules))
	for i, g := range granules {
		fut, err := p.fleet.Submit(ctx, fleet.PreprocessFunction, p.preprocessArgs(g).Args())
		if err != nil {
			return 0, 0, fmt.Errorf("granule %d: %w", g.Index, err)
		}
		futs[i] = fut
	}
	files, tiles := 0, 0
	for i, fut := range futs {
		started := time.Now()
		v, err := fut.Get(ctx)
		if err != nil {
			return 0, 0, fmt.Errorf("granule %d: %w", granules[i].Index, err)
		}
		res, err := fleet.ParsePreprocessResult(v)
		if err != nil {
			return 0, 0, err
		}
		tiles += res.Tiles
		if res.File != "" {
			files++
			p.recordPreprocess(granules[i], res.File, res.Tiles, started, time.Now())
		}
		rc.Health.Beat("preprocess")
		rc.Timeline.Record("preprocess", rc.Since(), len(futs)-(i+1))
	}
	return files, tiles, nil
}

// preprocessViaFleet is the single-granule form used by the streaming
// driver's per-arrival apps.
func (p *Run) preprocessViaFleet(ctx context.Context, g modis.GranuleID) (any, error) {
	started := time.Now()
	fut, err := p.fleet.Submit(ctx, fleet.PreprocessFunction, p.preprocessArgs(g).Args())
	if err != nil {
		return nil, err
	}
	v, err := fut.Get(ctx)
	if err != nil {
		return nil, err
	}
	res, err := fleet.ParsePreprocessResult(v)
	if err != nil {
		return nil, err
	}
	if res.File == "" {
		return preResult{}, nil
	}
	p.recordPreprocess(g, res.File, res.Tiles, started, time.Now())
	return preResult{tiles: res.Tiles, hasFile: true}, nil
}

// preprocessArgs builds the granule-ref task arguments: paths on
// shared storage plus archive coordinates so a worker without the
// run's filesystem can fetch inputs itself.
func (p *Run) preprocessArgs(g modis.GranuleID) fleet.PreprocessArgs {
	return fleet.PreprocessArgs{
		Satellite:    g.Satellite.String(),
		Year:         g.Year,
		DOY:          g.DOY,
		Index:        g.Index,
		DataDir:      p.cfg.DataDir,
		TileDir:      p.cfg.TileDir,
		TilePixels:   p.cfg.TilePixels,
		MinCloudFrac: p.cfg.MinCloudFrac,
		ArchiveURL:   p.cfg.ArchiveURL,
		ArchiveToken: p.cfg.ArchiveToken,
	}
}

// preprocessGranule converts one granule triple into a tile NetCDF.
func (p *Run) preprocessGranule(g modis.GranuleID) (any, error) {
	started := time.Now()
	read := func(kind modis.Kind) (*hdf.File, error) {
		prod := modis.Product{Satellite: g.Satellite, Kind: kind}
		return hdf.ReadFile(filepath.Join(p.cfg.DataDir, modis.FileName(prod, g)))
	}
	mod02, err := read(modis.L1B)
	if err != nil {
		return nil, err
	}
	mod03, err := read(modis.Geo)
	if err != nil {
		return nil, err
	}
	mod06, err := read(modis.Cloud)
	if err != nil {
		return nil, err
	}
	res, err := tile.Extract(mod02, mod03, mod06, tile.Options{
		TileSize:     p.cfg.TilePixels,
		MinCloudFrac: p.cfg.MinCloudFrac,
		Arena:        p.extract,
	})
	if err != nil {
		return nil, err
	}
	if len(res.Tiles) == 0 {
		return preResult{}, nil // night granule or no ocean clouds
	}
	name := fmt.Sprintf("tiles.%s.A%04d%03d.%s.nc", g.Satellite.Prefix(), g.Year, g.DOY, g.HHMM())
	path := filepath.Join(p.cfg.TileDir, name)
	if err := tile.WriteNetCDF(path, res.Tiles); err != nil {
		return nil, err
	}
	p.recordPreprocess(g, path, len(res.Tiles), started, time.Now())
	return preResult{tiles: len(res.Tiles), hasFile: true}, nil
}

// Summary renders a one-paragraph report.
func (r *Report) Summary() string {
	var b strings.Builder
	fmt.Fprintf(&b, "granules=%d files=%d bytes=%d tileFiles=%d tiles=%d labeled=%d shipped=%d elapsed=%s",
		r.GranulesRequested, r.FilesDownloaded, r.BytesDownloaded,
		r.TileFiles, r.TilesProduced, r.TilesLabeled, r.FilesShipped, r.Elapsed.Round(time.Millisecond))
	if r.FlowsFailed > 0 {
		fmt.Fprintf(&b, " flowsFailed=%d", r.FlowsFailed)
	}
	return b.String()
}
