package experiments

import (
	"fmt"

	"github.com/eoml/eoml/internal/cluster"
	"github.com/eoml/eoml/internal/sim"
)

// ContentionPoint compares on-node worker scaling under the fair-share
// contention model against an idealized contention-free node.
type ContentionPoint struct {
	Workers          int
	FairShareRate    float64 // tiles/s with shared node I/O
	ContentionFree   float64 // tiles/s if each worker had private I/O
	EfficiencyShared float64 // FairShareRate / ContentionFree
}

// AblationContention quantifies the design choice DESIGN.md calls out:
// the node-level fair-share bandwidth is what bends Fig. 4a away from
// linear. Without it (each worker gets the full solo rate) scaling would
// be embarrassingly linear and the paper's plateau would not exist.
func AblationContention(horizon float64, workerCounts []int) []ContentionPoint {
	if len(workerCounts) == 0 {
		workerCounts = []int{1, 2, 4, 8, 16, 32, 64}
	}
	cost := cluster.DefaultTileCost()
	soloRate := 1.0 / (cost.CPUSeconds + cost.IOUnits/cluster.Defiant().NodeIOCapacity)
	var out []ContentionPoint
	for _, w := range workerCounts {
		k := sim.NewKernel()
		m, err := cluster.New(k, cluster.Defiant())
		if err != nil {
			panic(err)
		}
		node, _ := m.Node(0)
		completed := 0
		deadline := sim.Time(horizon)
		for i := 0; i < w; i++ {
			worker := &cluster.Worker{Node: node, Cost: cost}
			worker.SetSharedFS(m.SharedFS)
			worker.RunQueue(func() (int, bool) {
				if k.Now() >= deadline {
					return 0, false
				}
				return 1, true
			}, func(int) { completed++ }, nil)
		}
		k.RunUntil(deadline)
		shared := float64(completed) / horizon
		free := soloRate * float64(w)
		out = append(out, ContentionPoint{
			Workers:          w,
			FairShareRate:    shared,
			ContentionFree:   free,
			EfficiencyShared: shared / free,
		})
	}
	return out
}

// RenderContention prints the ablation table.
func RenderContention(points []ContentionPoint) string {
	s := fmt.Sprintf("%-10s %-16s %-18s %-12s\n", "workers", "fair-share t/s", "contention-free", "efficiency")
	for _, p := range points {
		s += fmt.Sprintf("%-10d %-16.2f %-18.2f %-12.2f\n", p.Workers, p.FairShareRate, p.ContentionFree, p.EfficiencyShared)
	}
	return s
}

// LustrePoint compares node scaling under ample vs constrained shared-
// filesystem bandwidth.
type LustrePoint struct {
	Nodes         int
	AmpleRate     float64 // tiles/s with the default Lustre capacity
	ThrottledRate float64 // tiles/s with Lustre capped at ~6 nodes' demand
}

// AblationLustre probes the hypothesis behind the flattening of the
// paper's Fig. 4b curve at 6–7 nodes: if the shared filesystem tops out
// near six nodes' worth of tile traffic, node scaling bends there while
// a generously provisioned Lustre stays near-linear.
func AblationLustre(maxNodes int, seed int64) []LustrePoint {
	if maxNodes <= 0 {
		maxNodes = 10
	}
	run := func(nodes int, fsCapacity float64, rng *sim.RNG) float64 {
		k := sim.NewKernel()
		spec := cluster.Defiant()
		spec.SharedFSCapacity = fsCapacity
		m, err := cluster.New(k, spec)
		if err != nil {
			panic(err)
		}
		cost := cluster.DefaultTileCost()
		// Make the FS load per tile meaningful for this ablation.
		cost.FSUnits = 1.0
		completed := 0
		deadline := sim.Time(120)
		for w := 0; w < nodes*8; w++ {
			node, _ := m.Node(w % nodes)
			worker := &cluster.Worker{Node: node, Cost: cost, RNG: rng.Fork(), JitterSigma: 0.1}
			worker.SetSharedFS(m.SharedFS)
			worker.RunQueue(func() (int, bool) {
				if k.Now() >= deadline {
					return 0, false
				}
				return 1, true
			}, func(int) { completed++ }, nil)
		}
		k.RunUntil(deadline)
		return float64(completed) / float64(deadline)
	}
	rng := sim.NewRNG(seed)
	// Per-node demand at 8 workers is ≈29 tiles/s; cap the throttled FS
	// at six nodes' worth.
	throttledCap := 6 * 29.0
	ample := cluster.Defiant().SharedFSCapacity
	var out []LustrePoint
	for nodes := 1; nodes <= maxNodes; nodes++ {
		out = append(out, LustrePoint{
			Nodes:         nodes,
			AmpleRate:     run(nodes, ample, rng.Fork()),
			ThrottledRate: run(nodes, throttledCap, rng.Fork()),
		})
	}
	return out
}

// RenderLustre prints the ablation table.
func RenderLustre(points []LustrePoint) string {
	s := fmt.Sprintf("%-8s %-18s %-18s\n", "nodes", "ample Lustre t/s", "6-node-cap t/s")
	for _, p := range points {
		s += fmt.Sprintf("%-8d %-18.1f %-18.1f\n", p.Nodes, p.AmpleRate, p.ThrottledRate)
	}
	return s
}

// PollPoint measures how the monitor's crawl period trades trigger
// latency against crawl work.
type PollPoint struct {
	PollSeconds  float64
	TotalSeconds float64 // end-to-end pipeline time
	MeanWait     float64 // expected trigger wait (poll/2)
	CrawlCount   int     // scans during the pipeline
}

// AblationPoll sweeps the crawler interval on the Fig. 6 pipeline.
func AblationPoll(intervals []float64) ([]PollPoint, error) {
	if len(intervals) == 0 {
		intervals = []float64{0.1, 0.5, 2.0, 5.0}
	}
	var out []PollPoint
	for _, p := range intervals {
		cfg := DefaultPipelineConfig()
		cfg.PollInterval = p
		res, err := RunPipeline(cfg)
		if err != nil {
			return nil, err
		}
		out = append(out, PollPoint{
			PollSeconds:  p,
			TotalSeconds: res.TotalSeconds,
			MeanWait:     p / 2,
			CrawlCount:   int(res.TotalSeconds / p),
		})
	}
	return out, nil
}

// RenderPoll prints the poll ablation.
func RenderPoll(points []PollPoint) string {
	s := fmt.Sprintf("%-12s %-14s %-12s %-10s\n", "poll (s)", "pipeline (s)", "mean wait", "crawls")
	for _, p := range points {
		s += fmt.Sprintf("%-12.2f %-14.2f %-12.2f %-10d\n", p.PollSeconds, p.TotalSeconds, p.MeanWait, p.CrawlCount)
	}
	return s
}
