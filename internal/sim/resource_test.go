package sim

import (
	"math"
	"testing"
	"testing/quick"
)

func TestServerGrantsUpToCapacity(t *testing.T) {
	k := NewKernel()
	s := NewServer(k, 2)
	granted := 0
	for i := 0; i < 3; i++ {
		s.Acquire(1, func() { granted++ })
	}
	k.Run()
	if granted != 2 {
		t.Fatalf("granted = %d, want 2 (capacity)", granted)
	}
	if s.Queued() != 1 {
		t.Fatalf("queued = %d, want 1", s.Queued())
	}
}

func TestServerReleaseAdmitsWaiter(t *testing.T) {
	k := NewKernel()
	s := NewServer(k, 1)
	var order []string
	s.Acquire(1, func() {
		order = append(order, "first")
		k.After(5, func() { s.Release(1) })
	})
	s.Acquire(1, func() { order = append(order, "second:"+formatTime(k.Now())) })
	k.Run()
	if len(order) != 2 || order[1] != "second:5" {
		t.Fatalf("order = %v", order)
	}
}

func TestServerFCFSHeadOfLineBlocking(t *testing.T) {
	k := NewKernel()
	s := NewServer(k, 4)
	var order []int
	s.Acquire(3, func() { order = append(order, 3) }) // fits
	s.Acquire(4, func() { order = append(order, 4) }) // blocks (needs all 4)
	s.Acquire(1, func() { order = append(order, 1) }) // fits but must wait behind
	k.Run()
	if len(order) != 1 || order[0] != 3 {
		t.Fatalf("order = %v, want just [3]: FCFS must not let the 1-unit request jump the queue", order)
	}
}

func TestServerAcquireValidation(t *testing.T) {
	k := NewKernel()
	s := NewServer(k, 2)
	for _, n := range []int{0, -1, 3} {
		n := n
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Acquire(%d) did not panic", n)
				}
			}()
			s.Acquire(n, func() {})
		}()
	}
}

func TestFairShareSingleJobRunsAtFullRate(t *testing.T) {
	k := NewKernel()
	f := NewFairShare(k, 10) // 10 units/sec
	var doneAt Time
	f.Submit(50, func() { doneAt = k.Now() })
	k.Run()
	if doneAt != 5 {
		t.Fatalf("done at %v, want 5", doneAt)
	}
}

func TestFairShareTwoEqualJobsHalveRate(t *testing.T) {
	k := NewKernel()
	f := NewFairShare(k, 10)
	var times []Time
	f.Submit(50, func() { times = append(times, k.Now()) })
	f.Submit(50, func() { times = append(times, k.Now()) })
	k.Run()
	if len(times) != 2 || times[0] != 10 || times[1] != 10 {
		t.Fatalf("completion times = %v, want [10 10]", times)
	}
}

func TestFairShareLateArrivalSlowsInProgressJob(t *testing.T) {
	k := NewKernel()
	f := NewFairShare(k, 10)
	var bigDone, smallDone Time
	f.Submit(100, func() { bigDone = k.Now() })
	k.At(5, func() {
		// Big job has done 50 units at full rate. The small job now takes
		// half the capacity.
		f.Submit(25, func() { smallDone = k.Now() })
	})
	k.Run()
	// Small: 25 units at 5/sec = 5s -> done at t=10.
	// Big: 50 remaining; shares until t=10 (25 served), then full rate for
	// the last 25 -> done at t=12.5.
	if math.Abs(float64(smallDone-10)) > 1e-6 {
		t.Fatalf("small done at %v, want 10", smallDone)
	}
	if math.Abs(float64(bigDone-12.5)) > 1e-6 {
		t.Fatalf("big done at %v, want 12.5", bigDone)
	}
}

func TestFairShareZeroWorkCompletesImmediately(t *testing.T) {
	k := NewKernel()
	f := NewFairShare(k, 1)
	done := false
	f.Submit(0, func() { done = true })
	k.Run()
	if !done {
		t.Fatal("zero-work job never completed")
	}
	if k.Now() != 0 {
		t.Fatalf("clock advanced to %v for zero-work job", k.Now())
	}
}

func TestFairShareCancel(t *testing.T) {
	k := NewKernel()
	f := NewFairShare(k, 10)
	var cancelledDone, survivorDone Time
	j := f.Submit(100, func() { cancelledDone = k.Now() })
	f.Submit(50, func() { survivorDone = k.Now() })
	k.At(2, func() { f.Cancel(j) })
	k.Run()
	if cancelledDone != 0 {
		t.Fatalf("cancelled job completed at %v", cancelledDone)
	}
	// Survivor: 2s at rate 5 (10 units), then full rate 10 for remaining 40
	// units (4s) -> done at 6.
	if math.Abs(float64(survivorDone-6)) > 1e-6 {
		t.Fatalf("survivor done at %v, want 6", survivorDone)
	}
}

func TestFairShareConservesWork(t *testing.T) {
	// Property: total service time for a batch of jobs equals total work /
	// capacity (the resource is work-conserving), and completions are
	// ordered by remaining work.
	prop := func(seed int64, sizes []uint8) bool {
		if len(sizes) == 0 {
			return true
		}
		if len(sizes) > 32 {
			sizes = sizes[:32]
		}
		k := NewKernel()
		f := NewFairShare(k, 7)
		total := 0.0
		count := 0
		for _, s := range sizes {
			w := float64(s) + 1
			total += w
			f.Submit(w, func() { count++ })
		}
		end := k.Run()
		if count != len(sizes) {
			return false
		}
		return math.Abs(float64(end)-total/7) < 1e-6
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestFairShareSteadyStateThroughputSaturates(t *testing.T) {
	// The contention model behind Fig. 4a: workers cycling through a CPU
	// phase then a shared-IO phase have throughput that saturates at
	// capacity/ioWork as workers grow.
	throughput := func(workers int) float64 {
		k := NewKernel()
		io := NewFairShare(k, 38.5) // tile-units per second
		const cpu = 0.069           // seconds per tile
		const ioWork = 1.0          // units per tile
		completed := 0
		deadline := Time(200)
		var runWorker func()
		runWorker = func() {
			k.After(cpu, func() {
				io.Submit(ioWork, func() {
					completed++
					if k.Now() < deadline {
						runWorker()
					}
				})
			})
		}
		for i := 0; i < workers; i++ {
			runWorker()
		}
		k.RunUntil(deadline)
		return float64(completed) / float64(deadline)
	}

	r1 := throughput(1)
	r8 := throughput(8)
	r64 := throughput(64)
	if !(r8 > 2.2*r1) {
		t.Errorf("8 workers did not scale: r1=%.2f r8=%.2f", r1, r8)
	}
	if r64 > 39.0 {
		t.Errorf("64 workers exceeded the shared-resource ceiling: %.2f", r64)
	}
	if r64 < 0.9*r8 {
		t.Errorf("saturated throughput collapsed: r8=%.2f r64=%.2f", r8, r64)
	}
}

func TestRNGDeterminism(t *testing.T) {
	a, b := NewRNG(42), NewRNG(42)
	for i := 0; i < 100; i++ {
		if a.Float64() != b.Float64() {
			t.Fatal("same-seed streams diverged")
		}
	}
	fa, fb := NewRNG(7).Fork(), NewRNG(7).Fork()
	for i := 0; i < 100; i++ {
		if fa.Float64() != fb.Float64() {
			t.Fatal("forked streams with same lineage diverged")
		}
	}
}

func TestRNGLogNormalFactorPositive(t *testing.T) {
	g := NewRNG(1)
	for i := 0; i < 1000; i++ {
		if f := g.LogNormalFactor(0.5); f <= 0 {
			t.Fatalf("non-positive jitter factor %v", f)
		}
	}
	if g.LogNormalFactor(0) != 1 {
		t.Fatal("zero sigma should be an exact 1.0 factor")
	}
}

func formatTime(t Time) string {
	switch t {
	case 5:
		return "5"
	default:
		return "?"
	}
}
