package hdf

import (
	"bytes"
	"strings"
	"testing"
)

func TestDTypeStringAndSize(t *testing.T) {
	cases := map[DType]struct {
		name string
		size int
	}{
		Uint8:      {"uint8", 1},
		Int16:      {"int16", 2},
		Uint16:     {"uint16", 2},
		Int32:      {"int32", 4},
		Float32:    {"float32", 4},
		Float64:    {"float64", 8},
		DType(200): {"dtype(200)", 0},
	}
	for d, want := range cases {
		if d.String() != want.name {
			t.Errorf("%d.String() = %q", d, d.String())
		}
		if d.Size() != want.size {
			t.Errorf("%d.Size() = %d", d, d.Size())
		}
	}
}

func TestReadFromStream(t *testing.T) {
	f := buildSample(t)
	var buf bytes.Buffer
	if err := Write(&buf, f); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf) // io.Reader path
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Datasets()) != 4 {
		t.Fatalf("datasets = %d", len(got.Datasets()))
	}
}

func TestAttrAccessors(t *testing.T) {
	f := NewFile()
	f.Attrs["s"] = "text"
	f.Attrs["i"] = int64(9)
	f.Attrs["f"] = 2.5
	if v, ok := f.AttrString("s"); !ok || v != "text" {
		t.Error("string attr")
	}
	if v, ok := f.AttrInt("i"); !ok || v != 9 {
		t.Error("int attr")
	}
	if v, ok := f.AttrFloat("f"); !ok || v != 2.5 {
		t.Error("float attr")
	}
	if _, ok := f.AttrString("i"); ok {
		t.Error("type-mismatched attr fetched")
	}
	if _, ok := f.AttrInt("missing"); ok {
		t.Error("missing attr fetched")
	}
}

func TestWriteRejectsOverlongString(t *testing.T) {
	f := NewFile()
	f.Attrs["big"] = strings.Repeat("x", 1<<17)
	if err := Write(&bytes.Buffer{}, f); err == nil {
		t.Fatal("overlong attribute string accepted")
	}
}

func TestAddNilAndUnnamedDataset(t *testing.T) {
	f := NewFile()
	if err := f.Add(nil); err == nil {
		t.Error("nil dataset accepted")
	}
	d, _ := NewUint8("x", []int{1}, []uint8{1})
	d.Name = ""
	if err := f.Add(d); err == nil {
		t.Error("unnamed dataset accepted")
	}
}

func TestWriteFileCreateErrors(t *testing.T) {
	f := NewFile()
	if err := WriteFile("/nonexistent-dir-xyz/file.hdf", f); err == nil {
		t.Fatal("write into missing directory accepted")
	}
	if _, err := ReadFile("/nonexistent-dir-xyz/file.hdf"); err == nil {
		t.Fatal("read of missing file accepted")
	}
}

func TestDatasetRawAndLen(t *testing.T) {
	d, _ := NewInt16("x", []int{2, 3}, []int16{1, 2, 3, 4, 5, 6})
	if d.Len() != 6 {
		t.Fatalf("len = %d", d.Len())
	}
	if len(d.Raw()) != 12 {
		t.Fatalf("raw = %d bytes", len(d.Raw()))
	}
	empty := &Dataset{Name: "e", DType: Uint8}
	if empty.Len() != 0 {
		t.Fatalf("rank-0 len = %d", empty.Len())
	}
}
