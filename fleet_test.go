// Multi-process worker-fleet smoke and scaling benchmarks: real
// eoml-worker processes (this test binary re-exec'd in worker mode)
// registering over HTTP with an in-process coordinator, leasing tile
// extraction and inference against a synthetic LAADS archive.
//
// The archive shapes per-connection bandwidth so granule fetch latency
// — not this host's single CPU — bounds throughput; that is what makes
// strong/weak scaling measurable with worker processes on one machine,
// mirroring the paper's multi-facility setup where workers pull data
// near their own compute.
package eoml_test

import (
	"bufio"
	"context"
	"fmt"
	"io"
	"net/http/httptest"
	"os"
	"os/exec"
	"path/filepath"
	"strconv"
	"testing"
	"time"

	"github.com/eoml/eoml/internal/aicca"
	"github.com/eoml/eoml/internal/core"
	"github.com/eoml/eoml/internal/fleet"
	"github.com/eoml/eoml/internal/laads"
	"github.com/eoml/eoml/internal/modis"
	"github.com/eoml/eoml/internal/ricc"
	"github.com/eoml/eoml/internal/tile"
)

// Environment contract between the parent test and re-exec'd workers.
const (
	workerEnvCoord    = "EOML_FLEET_WORKER_COORD"
	workerEnvID       = "EOML_FLEET_WORKER_ID"
	workerEnvSlots    = "EOML_FLEET_WORKER_SLOTS"
	workerEnvPrefetch = "EOML_FLEET_WORKER_PREFETCH"
	workerEnvCacheDir = "EOML_FLEET_WORKER_CACHE_DIR"
)

// TestMain turns this test binary into a fleet worker process when the
// coordinator env var is set (the helper-process pattern): the worker
// serves the standard kernels until its stdin closes, then drains.
func TestMain(m *testing.M) {
	if os.Getenv(workerEnvCoord) != "" {
		runFleetWorkerProcess()
		return
	}
	os.Exit(m.Run())
}

func runFleetWorkerProcess() {
	slots, _ := strconv.Atoi(os.Getenv(workerEnvSlots))
	prefetch, _ := strconv.Atoi(os.Getenv(workerEnvPrefetch))
	w, err := fleet.NewWorker(fleet.WorkerConfig{
		ID:             os.Getenv(workerEnvID),
		CoordinatorURL: os.Getenv(workerEnvCoord),
		Slots:          slots,
		PrefetchWindow: prefetch,
		CacheDir:       os.Getenv(workerEnvCacheDir),
	})
	if err == nil {
		err = w.Start(context.Background())
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Println("ready")
	_, _ = io.Copy(io.Discard, os.Stdin) // parent closes stdin to stop us
	w.Stop()
}

// workerProc is one spawned worker process, stopped by closing stdin.
type workerProc struct {
	cmd   *exec.Cmd
	stdin io.WriteCloser
}

// workerOpts tunes spawned worker processes beyond slot count.
type workerOpts struct {
	// prefetch is the granule lease-ahead window (0 = off).
	prefetch int
	// cacheDir enables the content-addressed download cache.
	cacheDir string
}

// startWorkerProcs re-execs this binary n times in worker mode against
// the coordinator URL (prefetch on, cache off — the default fleet
// configuration) and waits until every worker reports ready.
func startWorkerProcs(tb testing.TB, coordURL string, n, slots int) []workerProc {
	return startWorkerProcsOpts(tb, coordURL, n, slots, workerOpts{prefetch: 4})
}

// startWorkerProcsOpts is startWorkerProcs with explicit prefetch/cache
// settings for the benchmark variants.
func startWorkerProcsOpts(tb testing.TB, coordURL string, n, slots int, opts workerOpts) []workerProc {
	tb.Helper()
	procs := make([]workerProc, 0, n)
	for i := 0; i < n; i++ {
		cmd := exec.Command(os.Args[0], "-test.run=^$")
		cmd.Env = append(os.Environ(),
			workerEnvCoord+"="+coordURL,
			workerEnvID+"="+fmt.Sprintf("proc-worker-%d", i),
			workerEnvSlots+"="+strconv.Itoa(slots),
			workerEnvPrefetch+"="+strconv.Itoa(opts.prefetch),
			workerEnvCacheDir+"="+opts.cacheDir,
		)
		stdin, err := cmd.StdinPipe()
		if err != nil {
			tb.Fatal(err)
		}
		stdout, err := cmd.StdoutPipe()
		if err != nil {
			tb.Fatal(err)
		}
		cmd.Stderr = os.Stderr
		if err := cmd.Start(); err != nil {
			tb.Fatal(err)
		}
		procs = append(procs, workerProc{cmd: cmd, stdin: stdin})
		line, err := bufio.NewReader(stdout).ReadString('\n')
		if err != nil || line != "ready\n" {
			tb.Fatalf("worker %d did not come up: %q, %v", i, line, err)
		}
	}
	return procs
}

func stopWorkerProcs(tb testing.TB, procs []workerProc) {
	tb.Helper()
	for _, p := range procs {
		_ = p.stdin.Close()
	}
	for i, p := range procs {
		if err := p.cmd.Wait(); err != nil {
			tb.Errorf("worker process %d exit: %v", i, err)
		}
	}
}

// fleetDayGranules returns want day-side granule indices, granules
// that actually yield tiles first so every prefix of the slice keeps
// the inference stage busy.
func fleetDayGranules(tb testing.TB, want int) []int {
	tb.Helper()
	gen, err := modis.NewGenerator(64)
	if err != nil {
		tb.Fatal(err)
	}
	var productive, quiet []int
	for idx := 0; idx < modis.GranulesPerDay && len(productive)+len(quiet) < want; idx++ {
		g := modis.GranuleID{Satellite: modis.Terra, Year: 2022, DOY: 1, Index: idx}
		mod02, err := gen.Generate(modis.MOD021KM, g)
		if err != nil {
			tb.Fatal(err)
		}
		if flag, _ := mod02.AttrString("DayNightFlag"); flag != "Day" {
			continue
		}
		mod03, _ := gen.Generate(modis.MOD03, g)
		mod06, _ := gen.Generate(modis.MOD06L2, g)
		res, err := tile.Extract(mod02, mod03, mod06, tile.Options{TileSize: 4})
		if err != nil {
			tb.Fatal(err)
		}
		if len(res.Tiles) >= 2 {
			productive = append(productive, idx)
		} else {
			quiet = append(quiet, idx)
		}
	}
	out := append(productive, quiet...)
	if len(out) < want {
		tb.Fatalf("found only %d day-side granules, want %d", len(out), want)
	}
	return out[:want]
}

// fleetTrainArtifacts trains a tiny labeler on one granule and saves
// model+codebook where worker processes can load them.
func fleetTrainArtifacts(tb testing.TB, granuleIdx int) (string, string) {
	tb.Helper()
	gen, _ := modis.NewGenerator(64)
	g := modis.GranuleID{Satellite: modis.Terra, Year: 2022, DOY: 1, Index: granuleIdx}
	mod02, _ := gen.Generate(modis.MOD021KM, g)
	mod03, _ := gen.Generate(modis.MOD03, g)
	mod06, _ := gen.Generate(modis.MOD06L2, g)
	res, err := tile.Extract(mod02, mod03, mod06, tile.Options{TileSize: 4})
	if err != nil {
		tb.Fatal(err)
	}
	cfg := ricc.Config{
		TileSize: 4, Channels: 6, LatentDim: 8, Beta: 0.3,
		LR: 2e-3, Epochs: 2, BatchSize: 16, Rotations: 1, Seed: 5,
	}
	k := 4
	if len(res.Tiles) < 8 {
		k = 2
	}
	labeler, _, err := aicca.Train(res.Tiles, cfg, k)
	if err != nil {
		tb.Fatal(err)
	}
	dir := tb.TempDir()
	model := filepath.Join(dir, "ricc.hdf")
	codebook := filepath.Join(dir, "codebook.hdf")
	if err := labeler.Model.Save(model); err != nil {
		tb.Fatal(err)
	}
	if err := labeler.Codebook.Save(codebook); err != nil {
		tb.Fatal(err)
	}
	return model, codebook
}

// fleetRunConfig builds a fleet-distributed run over fresh directories.
func fleetRunConfig(tb testing.TB, archiveURL, token string, granules []int, model, codebook string) core.Config {
	tb.Helper()
	root := tb.TempDir()
	cfg := core.DefaultConfig()
	cfg.Granules = granules
	cfg.ArchiveURL = archiveURL
	cfg.ArchiveToken = token
	cfg.DataDir = filepath.Join(root, "data")
	cfg.TileDir = filepath.Join(root, "tiles")
	cfg.OutboxDir = filepath.Join(root, "outbox")
	cfg.DestDir = filepath.Join(root, "dest")
	cfg.TilePixels = 4
	cfg.PollInterval = 10 * time.Millisecond
	cfg.BatchDelay = 2 * time.Millisecond
	cfg.ModelPath = model
	cfg.CodebookPath = codebook
	cfg.Distribution = core.DistributionFleet
	return cfg
}

// TestFleetSmoke is `make fleet-smoke`: a two-process worker fleet
// runs one small campaign end to end — workers fetch granule refs from
// the archive, extract tiles, label them, and the run ships the
// results — exercising the same binary path cmd/eoml-worker wraps.
func TestFleetSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns worker processes")
	}
	srv, err := laads.NewServer(laads.ServerConfig{ScaleDown: 64, Token: "smoke-token"})
	if err != nil {
		t.Fatal(err)
	}
	archive := httptest.NewServer(srv)
	defer archive.Close()

	granules := fleetDayGranules(t, 2)
	model, codebook := fleetTrainArtifacts(t, granules[0])

	coord := fleet.NewCoordinator(fleet.Config{})
	defer coord.Close()
	cp := httptest.NewServer(coord.Handler())
	defer cp.Close()
	// Workers share one download-cache directory so the warm second pass
	// below can assert the cache, not worker affinity, serves the bytes.
	procs := startWorkerProcsOpts(t, cp.URL, 2, 1, workerOpts{prefetch: 4, cacheDir: t.TempDir()})
	defer stopWorkerProcs(t, procs)

	if ws := coord.Workers(); len(ws) != 2 {
		t.Fatalf("registered workers = %d, want 2", len(ws))
	}

	cfg := fleetRunConfig(t, archive.URL, "smoke-token", granules, model, codebook)
	eng := core.NewEngine(core.EngineOptions{Fleet: coord})
	run, err := eng.NewRun(cfg, core.RunOptions{ID: "smoke"})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	rep, err := run.Run(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if rep.TilesProduced == 0 || rep.TilesLabeled != rep.TilesProduced {
		t.Fatalf("labeled %d of %d tiles", rep.TilesLabeled, rep.TilesProduced)
	}
	if rep.FilesShipped == 0 {
		t.Fatal("fleet run shipped nothing")
	}
	// Bytes moved on the workers, not through this process.
	if rep.BytesDownloaded != 0 {
		t.Fatalf("coordinator process downloaded %d bytes; refs should ship, not bytes", rep.BytesDownloaded)
	}
	// The labels the workers wrote must be real labels, not sentinels.
	ents, err := os.ReadDir(cfg.DestDir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range ents {
		tiles, err := tile.ReadNetCDF(filepath.Join(cfg.DestDir, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		for i, tl := range tiles {
			if tl.Label < 0 {
				t.Fatalf("%s tile %d still unlabeled", e.Name(), i)
			}
		}
	}

	// Warm-cache second pass: the same granule set through fresh run
	// directories must be served entirely from the workers' download
	// cache — zero archive requests, zero archive bytes.
	reqBefore, bytesBefore := srv.Stats()
	cfg2 := fleetRunConfig(t, archive.URL, "smoke-token", granules, model, codebook)
	run2, err := eng.NewRun(cfg2, core.RunOptions{ID: "smoke-warm"})
	if err != nil {
		t.Fatal(err)
	}
	rep2, err := run2.Run(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if rep2.TilesProduced != rep.TilesProduced || rep2.TilesLabeled != rep.TilesLabeled {
		t.Fatalf("warm pass produced %d/%d tiles, cold pass %d/%d",
			rep2.TilesProduced, rep2.TilesLabeled, rep.TilesProduced, rep.TilesLabeled)
	}
	reqAfter, bytesAfter := srv.Stats()
	if reqAfter != reqBefore || bytesAfter != bytesBefore {
		t.Fatalf("warm pass hit the archive: %d requests, %d bytes (want 0, 0)",
			reqAfter-reqBefore, bytesAfter-bytesBefore)
	}
}

// BenchmarkFleetScaling measures whole-pipeline granules/s against
// 1/2/4/8 real worker processes. Strong scaling holds the granule set
// fixed; weak scaling grows it proportionally (2 granules per worker).
// The archive throttles each connection to 256 KiB/s, so fetch latency
// dominates and adding worker processes adds real throughput even on a
// single-CPU host — the regime the paper's multi-facility runs live in.
func BenchmarkFleetScaling(b *testing.B) {
	const token = "bench-token"
	srv, err := laads.NewServer(laads.ServerConfig{
		ScaleDown:          64,
		Token:              token,
		PerConnBytesPerSec: 256 << 10,
	})
	if err != nil {
		b.Fatal(err)
	}
	archive := httptest.NewServer(srv)
	defer archive.Close()

	granules := fleetDayGranules(b, 16)
	model, codebook := fleetTrainArtifacts(b, granules[0])

	// One timed run over set; returns granules processed.
	runOnce := func(b *testing.B, eng *core.Engine, set []int) int64 {
		b.Helper()
		b.StopTimer()
		cfg := fleetRunConfig(b, archive.URL, token, set, model, codebook)
		run, err := eng.NewRun(cfg, core.RunOptions{ID: "bench"})
		if err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
		rep, err := run.Run(context.Background())
		if err != nil {
			b.Fatal(err)
		}
		if rep.GranulesRequested != len(set) {
			b.Fatalf("processed %d of %d granules", rep.GranulesRequested, len(set))
		}
		return int64(rep.GranulesRequested)
	}

	// Headline strong/weak series: prefetch + batched leases on, cache
	// off — directly comparable against the BENCH_9 series of the same
	// names, which ran without prefetching or batching.
	for _, mode := range []string{"strong", "weak"} {
		for _, workers := range []int{1, 2, 4, 8} {
			set := granules[:8] // strong: fixed work
			if mode == "weak" {
				set = granules[:2*workers] // weak: work ∝ fleet size
			}
			set, workers := set, workers
			b.Run(fmt.Sprintf("%s/workers=%d", mode, workers), func(b *testing.B) {
				coord := fleet.NewCoordinator(fleet.Config{})
				defer coord.Close()
				cp := httptest.NewServer(coord.Handler())
				defer cp.Close()
				procs := startWorkerProcs(b, cp.URL, workers, 1)
				defer stopWorkerProcs(b, procs)
				eng := core.NewEngine(core.EngineOptions{Fleet: coord})

				var nGranules int64
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					nGranules += runOnce(b, eng, set)
				}
				b.ReportMetric(float64(nGranules)/b.Elapsed().Seconds(), "granules/s")
			})
		}
	}

	// Ablation: the same workload with the prefetch pipeline disabled,
	// isolating its contribution from batching's.
	b.Run("prefetchoff/workers=1", func(b *testing.B) {
		coord := fleet.NewCoordinator(fleet.Config{})
		defer coord.Close()
		cp := httptest.NewServer(coord.Handler())
		defer cp.Close()
		procs := startWorkerProcsOpts(b, cp.URL, 1, 1, workerOpts{})
		defer stopWorkerProcs(b, procs)
		eng := core.NewEngine(core.EngineOptions{Fleet: coord})

		var nGranules int64
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			nGranules += runOnce(b, eng, granules[:8])
		}
		b.ReportMetric(float64(nGranules)/b.Elapsed().Seconds(), "granules/s")
	})

	// Cold cache: the download cache is on but starts empty every
	// iteration (fresh directory, restarted worker), measuring the
	// cache's ingest overhead on first contact.
	b.Run("coldcache/workers=1", func(b *testing.B) {
		coord := fleet.NewCoordinator(fleet.Config{})
		defer coord.Close()
		cp := httptest.NewServer(coord.Handler())
		defer cp.Close()
		eng := core.NewEngine(core.EngineOptions{Fleet: coord})

		var nGranules int64
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			procs := startWorkerProcsOpts(b, cp.URL, 1, 1, workerOpts{prefetch: 4, cacheDir: b.TempDir()})
			nGranules += runOnce(b, eng, granules[:8])
			b.StopTimer()
			stopWorkerProcs(b, procs)
			b.StartTimer()
		}
		b.ReportMetric(float64(nGranules)/b.Elapsed().Seconds(), "granules/s")
	})

	// Warm cache: one un-timed pass fills the cache, then every timed
	// run is served from disk — and the archive must see zero traffic
	// while the timer runs.
	b.Run("warmcache/workers=1", func(b *testing.B) {
		coord := fleet.NewCoordinator(fleet.Config{})
		defer coord.Close()
		cp := httptest.NewServer(coord.Handler())
		defer cp.Close()
		procs := startWorkerProcsOpts(b, cp.URL, 1, 1, workerOpts{prefetch: 4, cacheDir: b.TempDir()})
		defer stopWorkerProcs(b, procs)
		eng := core.NewEngine(core.EngineOptions{Fleet: coord})

		runOnce(b, eng, granules[:8]) // warm the cache, un-timed
		_, bytesBefore := srv.Stats()
		var nGranules int64
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			nGranules += runOnce(b, eng, granules[:8])
		}
		b.StopTimer()
		if _, bytesAfter := srv.Stats(); bytesAfter != bytesBefore {
			b.Fatalf("warm-cache runs fetched %d archive bytes, want 0", bytesAfter-bytesBefore)
		}
		b.ReportMetric(float64(nGranules)/b.Elapsed().Seconds(), "granules/s")
	})
}
