package tile

import (
	"math"
	"path/filepath"
	"reflect"
	"testing"
	"testing/quick"

	"github.com/eoml/eoml/internal/hdf"
	"github.com/eoml/eoml/internal/modis"
	"github.com/eoml/eoml/internal/tensor"
)

// genTriple generates the three products for one granule at scale 8.
func genTriple(t testing.TB, g modis.GranuleID) (mod02, mod03, mod06 *hdf.File, gen *modis.Generator) {
	t.Helper()
	gen, err := modis.NewGenerator(8)
	if err != nil {
		t.Fatal(err)
	}
	mod02, err = gen.Generate(modis.Product{Satellite: g.Satellite, Kind: modis.L1B}, g)
	if err != nil {
		t.Fatal(err)
	}
	mod03, err = gen.Generate(modis.Product{Satellite: g.Satellite, Kind: modis.Geo}, g)
	if err != nil {
		t.Fatal(err)
	}
	mod06, err = gen.Generate(modis.Product{Satellite: g.Satellite, Kind: modis.Cloud}, g)
	if err != nil {
		t.Fatal(err)
	}
	return mod02, mod03, mod06, gen
}

// findGranule locates a granule with the desired day flag that yields at
// least one tile (day=true) within the first day of 2022.
func findGranule(t testing.TB, wantDay bool) modis.GranuleID {
	t.Helper()
	gen, _ := modis.NewGenerator(8)
	for idx := 0; idx < modis.GranulesPerDay; idx++ {
		g := modis.GranuleID{Satellite: modis.Terra, Year: 2022, DOY: 1, Index: idx}
		f, err := gen.Generate(modis.MOD021KM, g)
		if err != nil {
			t.Fatal(err)
		}
		flag, _ := f.AttrString("DayNightFlag")
		if (flag == "Day") != wantDay {
			continue
		}
		if !wantDay {
			return g
		}
		// For day granules also require some kept tiles so tests have
		// material to work with.
		mod02, mod03, mod06, gen := genTriple(t, g)
		res, err := Extract(mod02, mod03, mod06, Options{TileSize: gen.TilePixels()})
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Tiles) >= 3 {
			return g
		}
	}
	t.Fatalf("no suitable granule found (wantDay=%v)", wantDay)
	return modis.GranuleID{}
}

func TestExtractKeepsOnlyOceanCloudTiles(t *testing.T) {
	g := findGranule(t, true)
	mod02, mod03, mod06, gen := genTriple(t, g)
	ts := gen.TilePixels()
	res, err := Extract(mod02, mod03, mod06, Options{TileSize: ts})
	if err != nil {
		t.Fatal(err)
	}
	ny, nx := gen.Dims()
	if res.Stats.GridRows != ny/ts || res.Stats.GridCols != nx/ts {
		t.Fatalf("grid %dx%d, want %dx%d", res.Stats.GridRows, res.Stats.GridCols, ny/ts, nx/ts)
	}
	sum := res.Stats.Kept + res.Stats.RejectedLand + res.Stats.RejectedCloud + res.Stats.RejectedFill
	if sum != res.Stats.Candidates {
		t.Fatalf("stats don't partition candidates: %+v", res.Stats)
	}
	if res.Stats.Kept == 0 {
		t.Fatal("no tiles kept from a day granule")
	}

	// Verify the invariants directly against the source masks.
	landD, _ := mod03.Dataset("LandSeaMask")
	land, _ := landD.Uint8s()
	cloudD, _ := mod06.Dataset("Cloud_Mask_1km")
	cloud, _ := cloudD.Uint8s()
	for _, tl := range res.Tiles {
		if tl.Label != -1 {
			t.Fatalf("fresh tile has label %d", tl.Label)
		}
		if tl.CloudFrac < 0.3 {
			t.Fatalf("kept tile with cloud fraction %v", tl.CloudFrac)
		}
		cloudy := 0
		for y := tl.Row * ts; y < (tl.Row+1)*ts; y++ {
			for x := tl.Col * ts; x < (tl.Col+1)*ts; x++ {
				if land[y*nx+x] != 0 {
					t.Fatalf("tile (%d,%d) contains land", tl.Row, tl.Col)
				}
				if cloud[y*nx+x] != 0 {
					cloudy++
				}
			}
		}
		if got := float32(cloudy) / float32(ts*ts); math.Abs(float64(got-tl.CloudFrac)) > 1e-6 {
			t.Fatalf("cloud fraction mismatch: %v vs %v", got, tl.CloudFrac)
		}
		if len(tl.Data) != len(modis.AICCABands)*ts*ts {
			t.Fatalf("data length %d", len(tl.Data))
		}
		for i, v := range tl.Data {
			if math.IsNaN(float64(v)) || v < 0 || v > 70 {
				t.Fatalf("implausible radiance %v at %d", v, i)
			}
		}
	}
}

func TestExtractNightGranuleRejectsFill(t *testing.T) {
	g := findGranule(t, false)
	mod02, mod03, mod06, gen := genTriple(t, g)
	res, err := Extract(mod02, mod03, mod06, Options{TileSize: gen.TilePixels()})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Tiles) != 0 {
		t.Fatalf("night granule yielded %d tiles (reflective bands are fill)", len(res.Tiles))
	}
	if res.Stats.RejectedFill == 0 && res.Stats.RejectedLand+res.Stats.RejectedCloud != res.Stats.Candidates {
		t.Fatalf("night rejections unaccounted: %+v", res.Stats)
	}
}

func TestExtractThermalBandsWorkAtNight(t *testing.T) {
	// Selecting only thermal bands (>= 20) must yield tiles even at night.
	g := findGranule(t, false)
	mod02, mod03, mod06, gen := genTriple(t, g)
	res, err := Extract(mod02, mod03, mod06, Options{
		TileSize: gen.TilePixels(),
		Bands:    []int{27, 28, 30},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.RejectedFill != 0 {
		t.Fatalf("thermal-only selection rejected %d tiles for fill", res.Stats.RejectedFill)
	}
}

func TestExtractGranuleMismatchRejected(t *testing.T) {
	gA := findGranule(t, true)
	gB := modis.GranuleID{Satellite: gA.Satellite, Year: gA.Year, DOY: gA.DOY, Index: (gA.Index + 1) % modis.GranulesPerDay}
	mod02, mod03, _, _ := genTriple(t, gA)
	_, _, mod06B, _ := genTriple(t, gB)
	if _, err := Extract(mod02, mod03, mod06B, Options{TileSize: 16}); err == nil {
		t.Fatal("mismatched granules accepted")
	}
}

func TestExtractValidation(t *testing.T) {
	g := findGranule(t, true)
	mod02, mod03, mod06, gen := genTriple(t, g)
	if _, err := Extract(mod02, mod03, mod06, Options{TileSize: 10_000}); err == nil {
		t.Fatal("oversized tile accepted")
	}
	if _, err := Extract(mod02, mod03, mod06, Options{TileSize: gen.TilePixels(), Bands: []int{99}}); err == nil {
		t.Fatal("out-of-range band accepted")
	}
	if _, err := Extract(mod03, mod03, mod06, Options{TileSize: gen.TilePixels()}); err == nil {
		t.Fatal("MOD03 passed as MOD02 accepted")
	}
}

func TestNetCDFRoundTrip(t *testing.T) {
	g := findGranule(t, true)
	mod02, mod03, mod06, gen := genTriple(t, g)
	res, err := Extract(mod02, mod03, mod06, Options{TileSize: gen.TilePixels()})
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "tiles.nc")
	if err := WriteNetCDF(path, res.Tiles); err != nil {
		t.Fatal(err)
	}
	back, err := ReadNetCDF(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != len(res.Tiles) {
		t.Fatalf("tile count %d vs %d", len(back), len(res.Tiles))
	}
	for i := range back {
		a, b := res.Tiles[i], back[i]
		if a.Row != b.Row || a.Col != b.Col || a.Lat != b.Lat || a.Lon != b.Lon {
			t.Fatalf("tile %d identity mismatch", i)
		}
		if !reflect.DeepEqual(a.Data, b.Data) {
			t.Fatalf("tile %d radiances differ", i)
		}
		if a.CloudFrac != b.CloudFrac || a.MeanCTP != b.MeanCTP || a.IcePhaseFrac != b.IcePhaseFrac {
			t.Fatalf("tile %d cloud stats differ", i)
		}
		if b.Label != -1 {
			t.Fatalf("tile %d label = %d", i, b.Label)
		}
		if !reflect.DeepEqual(b.Bands, modis.AICCABands) {
			t.Fatalf("tile %d bands = %v", i, b.Bands)
		}
	}
}

func TestAppendLabels(t *testing.T) {
	g := findGranule(t, true)
	mod02, mod03, mod06, gen := genTriple(t, g)
	res, err := Extract(mod02, mod03, mod06, Options{TileSize: gen.TilePixels()})
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "tiles.nc")
	if err := WriteNetCDF(path, res.Tiles); err != nil {
		t.Fatal(err)
	}
	labels := make([]int16, len(res.Tiles))
	for i := range labels {
		labels[i] = int16(i % 42)
	}
	if err := AppendLabels(path, labels); err != nil {
		t.Fatal(err)
	}
	back, err := ReadNetCDF(path)
	if err != nil {
		t.Fatal(err)
	}
	for i, tl := range back {
		if tl.Label != int16(i%42) {
			t.Fatalf("label[%d] = %d", i, tl.Label)
		}
		// Radiances must be untouched by the label rewrite.
		if !reflect.DeepEqual(tl.Data, res.Tiles[i].Data) {
			t.Fatalf("tile %d radiances changed by label append", i)
		}
	}
	// Wrong label count must fail.
	if err := AppendLabels(path, labels[:1]); err == nil && len(labels) != 1 {
		t.Fatal("short label vector accepted")
	}
}

func TestToNetCDFRejectsEmptyAndMixed(t *testing.T) {
	if _, err := ToNetCDF(nil); err == nil {
		t.Fatal("empty batch accepted")
	}
	a := &Tile{Bands: []int{1, 2}, TileSize: 4, Data: make([]float32, 32)}
	b := &Tile{Bands: []int{1}, TileSize: 4, Data: make([]float32, 16)}
	if _, err := ToNetCDF([]*Tile{a, b}); err == nil {
		t.Fatal("mixed band counts accepted")
	}
}

// Property: pixel conservation — every kept tile's radiance values match
// the source swath exactly (after scale/offset), for random tile geometry.
func TestExtractPixelConservationProperty(t *testing.T) {
	g := findGranule(t, true)
	mod02, mod03, mod06, gen := genTriple(t, g)
	radD, _ := mod02.Dataset("EV_1KM_RefSB")
	radVals, _ := radD.Uint16s()
	_, nx := gen.Dims()
	ny := radD.Dims[1]
	scale, _ := mod02.AttrFloat("radiance_scale")

	prop := func(tsRaw uint8, bandRaw uint8) bool {
		ts := int(tsRaw)%24 + 4
		band := int(bandRaw) % 20 // reflective bands only (day granule)
		res, err := Extract(mod02, mod03, mod06, Options{TileSize: ts, Bands: []int{band}})
		if err != nil {
			return false
		}
		for _, tl := range res.Tiles {
			for y := 0; y < ts; y++ {
				for x := 0; x < ts; x++ {
					src := band*ny*nx + (tl.Row*ts+y)*nx + tl.Col*ts + x
					want := float32(float64(radVals[src]) * scale)
					if tl.Data[y*ts+x] != want {
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

// TestExtractArenaMatchesPlain pins the arena-backed scratch path to the
// allocating one: same granule, bit-identical tiles and stats, across
// repeated calls that hit recycled (dirty) buffers, plus a night
// granule whose fill rejection runs through the NaN sentinel path.
func TestExtractArenaMatchesPlain(t *testing.T) {
	arena := tensor.NewShardedArena()
	for _, wantDay := range []bool{true, false} {
		g := findGranule(t, wantDay)
		mod02, mod03, mod06, gen := genTriple(t, g)
		plain, err := Extract(mod02, mod03, mod06, Options{TileSize: gen.TilePixels()})
		if err != nil {
			t.Fatal(err)
		}
		for pass := 0; pass < 3; pass++ { // later passes reuse shard buffers
			pooled, err := Extract(mod02, mod03, mod06, Options{TileSize: gen.TilePixels(), Arena: arena})
			if err != nil {
				t.Fatal(err)
			}
			if pooled.Stats != plain.Stats {
				t.Fatalf("day=%v pass %d: stats %+v, want %+v", wantDay, pass, pooled.Stats, plain.Stats)
			}
			for i := range plain.Tiles {
				if !reflect.DeepEqual(pooled.Tiles[i], plain.Tiles[i]) {
					t.Fatalf("day=%v pass %d: tile %d diverged", wantDay, pass, i)
				}
			}
		}
	}
	if got := arena.Shards(); got != 1 {
		t.Fatalf("sequential extraction used %d shards, want 1", got)
	}
	gets, _, puts := arena.Stats()
	if gets == 0 || gets != puts {
		t.Fatalf("scratch leak: gets=%d puts=%d", gets, puts)
	}
}
