package analysis

import (
	"go/token"
	"sort"
	"strings"
)

// DefaultAnalyzers returns the full eomlvet suite in reporting order.
func DefaultAnalyzers() []*Analyzer {
	return []*Analyzer{
		CtxSend,
		SleepPoll,
		LoneGoroutine,
		CloseCheck,
		ArenaPair,
		SpanPair,
		PkgDoc,
	}
}

// internalOnly scopes a check to library code under internal/.
func internalOnly(pkgPath string) bool {
	return strings.Contains(pkgPath, "/internal/")
}

// pathSuffixAny scopes a check to packages whose import path ends in one
// of the given suffixes.
func pathSuffixAny(suffixes ...string) func(string) bool {
	return func(pkgPath string) bool {
		for _, s := range suffixes {
			if strings.HasSuffix(pkgPath, s) {
				return true
			}
		}
		return false
	}
}

// RunModule loads every package in the module rooted at moduleDir and
// runs the analyzers over it, honoring each analyzer's path scope and
// the in-code ignore directives. The returned diagnostics are sorted by
// position with paths relative to the module root; an empty slice means
// the tree holds every invariant.
func RunModule(moduleDir string, analyzers []*Analyzer) ([]Diagnostic, error) {
	loader, err := NewLoader(moduleDir)
	if err != nil {
		return nil, err
	}
	pkgs, err := loader.LoadAll()
	if err != nil {
		return nil, err
	}
	known := map[string]bool{}
	for _, a := range analyzers {
		known[a.Name] = true
	}
	var all []Diagnostic
	for _, pkg := range pkgs {
		var diags []Diagnostic
		for _, a := range analyzers {
			if a.AppliesTo != nil && !a.AppliesTo(pkg.Path) {
				continue
			}
			diags = append(diags, RunAnalyzer(a, loader.Fset, pkg)...)
		}
		diags = applyIgnores(diags, collectIgnores(loader.Fset, pkg.Files), known)
		all = append(all, diags...)
	}
	for i := range all {
		if rel, ok := strings.CutPrefix(all[i].Pos.Filename, moduleDir+"/"); ok {
			all[i].Pos.Filename = rel
		}
	}
	sort.Slice(all, func(i, j int) bool {
		a, b := all[i], all[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Check < b.Check
	})
	return all, nil
}

// RunAnalyzer runs one analyzer over one loaded package, ignoring the
// analyzer's path scope (the caller owns scoping decisions).
func RunAnalyzer(a *Analyzer, fset *token.FileSet, pkg *Package) []Diagnostic {
	var out []Diagnostic
	pass := &Pass{
		Fset:   fset,
		Files:  pkg.Files,
		Pkg:    pkg.Types,
		Info:   pkg.Info,
		check:  a.Name,
		report: func(d Diagnostic) { out = append(out, d) },
	}
	a.Run(pass)
	return out
}
