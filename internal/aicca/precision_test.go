package aicca

import (
	"math"
	"math/rand"
	"testing"

	"github.com/eoml/eoml/internal/metrics"
	"github.com/eoml/eoml/internal/tile"
)

// makeCorpus42 fabricates tiles from NumClasses visually distinct
// populations — blob position, width, amplitude, and background slope
// all keyed to the class index — so k-means with k = NumClasses finds
// well-separated centroids. makeTiles' two populations would leave most
// of 42 centroids near-duplicates, where any perturbation flips ties;
// that would measure codebook degeneracy, not quantization error.
func makeCorpus42(n int, seed int64) []*tile.Tile {
	r := rand.New(rand.NewSource(seed))
	const ts, nb = 8, 3
	bands := []int{0, 1, 2}
	tiles := make([]*tile.Tile, n)
	for i := range tiles {
		kind := i % NumClasses
		cx := float64(1 + (kind*5)%6)
		cy := float64(1 + (kind*3)%6)
		sigma2 := 2 + float64(kind%4)
		amp := 0.6 + 0.3*float64(kind%3)
		slope := 0.1 * float64(kind%5) / 4
		data := make([]float32, nb*ts*ts)
		for b := 0; b < nb; b++ {
			for y := 0; y < ts; y++ {
				for x := 0; x < ts; x++ {
					dx, dy := float64(x)-cx, float64(y)-cy
					v := amp*math.Exp(-(dx*dx+dy*dy)/sigma2) + slope*float64(x+y)/float64(2*ts)
					data[b*ts*ts+y*ts+x] = float32(v + 0.01*r.NormFloat64())
				}
			}
		}
		tiles[i] = &tile.Tile{
			Granule:  "TEST42",
			Row:      i,
			Data:     data,
			Bands:    bands,
			TileSize: ts,
			Label:    -1,
		}
	}
	return tiles
}

func TestParsePrecision(t *testing.T) {
	cases := []struct {
		in   string
		want Precision
		err  bool
	}{
		{"", PrecisionFloat32, false},
		{"float32", PrecisionFloat32, false},
		{"int8", PrecisionInt8, false},
		{"fp16", "", true},
		{"INT8", "", true},
	}
	for _, c := range cases {
		got, err := ParsePrecision(c.in)
		if (err != nil) != c.err {
			t.Fatalf("ParsePrecision(%q) err = %v, want err=%v", c.in, err, c.err)
		}
		if got != c.want {
			t.Fatalf("ParsePrecision(%q) = %q, want %q", c.in, got, c.want)
		}
	}
}

// TestQ8LabelFlipRate is the hard accuracy gate for the int8 path: an
// AICCA-42-style corpus labeled through both precisions must agree on
// all but 0.5% of tiles, and the quantized latents must stay within a
// cosine floor of the float latents. If a kernel change pushes
// quantization noise past either bound, this test is the tripwire.
func TestQ8LabelFlipRate(t *testing.T) {
	train := makeCorpus42(10*NumClasses, 21)
	labeler, _, err := Train(train, trainCfg(), NumClasses)
	if err != nil {
		t.Fatal(err)
	}

	corpus := makeCorpus42(2000, 22)
	floatLabels, err := labeler.LabelTiles(corpus)
	if err != nil {
		t.Fatal(err)
	}
	q8 := &Labeler{Model: labeler.Model, Codebook: labeler.Codebook, Precision: PrecisionInt8}
	q8Labels, err := q8.LabelTiles(corpus)
	if err != nil {
		t.Fatal(err)
	}

	flips := 0
	for i := range floatLabels {
		if floatLabels[i] != q8Labels[i] {
			flips++
		}
	}
	rate := float64(flips) / float64(len(corpus))
	t.Logf("label flips: %d/%d (%.3f%%)", flips, len(corpus), 100*rate)
	if rate > 0.005 {
		t.Fatalf("int8 label-flip rate %.3f%% > 0.5%% (%d/%d tiles)", 100*rate, flips, len(corpus))
	}

	floatLat, err := labeler.Model.EncodeBatch(corpus)
	if err != nil {
		t.Fatal(err)
	}
	q8Lat, err := labeler.Model.EncodeBatchQ8(corpus)
	if err != nil {
		t.Fatal(err)
	}
	var sum float64
	for i := range floatLat {
		var dot, na, nb float64
		for j := range floatLat[i] {
			dot += float64(floatLat[i][j]) * float64(q8Lat[i][j])
			na += float64(floatLat[i][j]) * float64(floatLat[i][j])
			nb += float64(q8Lat[i][j]) * float64(q8Lat[i][j])
		}
		if na == 0 || nb == 0 {
			continue
		}
		sum += dot / math.Sqrt(na*nb)
	}
	if mean := sum / float64(len(floatLat)); mean < 0.995 {
		t.Fatalf("mean quantized latent cosine %g < 0.995", mean)
	}
}

// TestBatchLabelerPrecisionOverride checks the batcher-local precision
// override: batches flush through the int8 path, matching a direct int8
// labeler bit for bit, while the caller's labeler keeps its own setting.
func TestBatchLabelerPrecisionOverride(t *testing.T) {
	train := makeTiles(64, 23)
	labeler, _, err := Train(train, trainCfg(), 4)
	if err != nil {
		t.Fatal(err)
	}
	corpus := makeTiles(60, 24)
	q8 := &Labeler{Model: labeler.Model, Codebook: labeler.Codebook, Precision: PrecisionInt8}
	want, err := q8.LabelTiles(makeTiles(60, 24))
	if err != nil {
		t.Fatal(err)
	}

	reg := metrics.NewRegistry()
	b := NewBatchLabeler(labeler, BatchConfig{Precision: PrecisionInt8, Metrics: reg})
	defer b.Close()
	if err := b.LabelTiles(corpus); err != nil {
		t.Fatal(err)
	}
	for i := range corpus {
		if corpus[i].Label != want[i] {
			t.Fatalf("tile %d: batcher label %d, direct int8 label %d", i, corpus[i].Label, want[i])
		}
	}
	if labeler.Precision != "" {
		t.Fatalf("batcher override mutated the caller's labeler precision to %q", labeler.Precision)
	}
}
