// This file-top comment touches the package clause, so godoc merges it
// into the package documentation — it should be detached by a blank
// line instead.
package pkgdoc // want "stray package comment"

// Other is more content.
const Other = 2
