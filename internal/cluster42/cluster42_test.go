package cluster42

import (
	"math"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

// blobs generates k well-separated Gaussian blobs of m points each.
func blobs(seed int64, k, m, dim int, sep float64) ([][]float32, []int) {
	r := rand.New(rand.NewSource(seed))
	var data [][]float32
	var truth []int
	centers := make([][]float64, k)
	for c := range centers {
		centers[c] = make([]float64, dim)
		for d := range centers[c] {
			centers[c][d] = float64(c) * sep * (1 + 0.1*float64(d%3))
		}
	}
	for c := 0; c < k; c++ {
		for i := 0; i < m; i++ {
			row := make([]float32, dim)
			for d := 0; d < dim; d++ {
				row[d] = float32(centers[c][d] + r.NormFloat64()*0.3)
			}
			data = append(data, row)
			truth = append(truth, c)
		}
	}
	return data, truth
}

func TestAgglomerateRecoversBlobs(t *testing.T) {
	for _, linkage := range []Linkage{Ward, Average, Complete} {
		data, truth := blobs(1, 4, 20, 5, 10)
		res, err := Agglomerate(data, 4, linkage)
		if err != nil {
			t.Fatal(err)
		}
		if res.K() != 4 {
			t.Fatalf("%v: K = %d", linkage, res.K())
		}
		// Cluster labels must be a relabeling of the ground truth:
		// same-truth pairs together, different-truth pairs apart.
		mapping := map[int]int{}
		for i, l := range res.Labels {
			if want, seen := mapping[truth[i]]; seen {
				if l != want {
					t.Fatalf("%v: truth cluster %d split", linkage, truth[i])
				}
			} else {
				mapping[truth[i]] = l
			}
		}
		if len(mapping) != 4 {
			t.Fatalf("%v: clusters merged: %v", linkage, mapping)
		}
	}
}

func TestAgglomerateSingleCluster(t *testing.T) {
	data, _ := blobs(2, 2, 10, 3, 5)
	res, err := Agglomerate(data, 1, Ward)
	if err != nil {
		t.Fatal(err)
	}
	if res.K() != 1 || res.Sizes[0] != 20 {
		t.Fatalf("K=%d sizes=%v", res.K(), res.Sizes)
	}
	// Centroid must be the global mean.
	var mean float64
	for _, row := range data {
		mean += float64(row[0])
	}
	mean /= float64(len(data))
	if math.Abs(float64(res.Centroids[0][0])-mean) > 1e-4 {
		t.Fatalf("centroid %v vs mean %v", res.Centroids[0][0], mean)
	}
}

func TestAgglomerateKEqualsN(t *testing.T) {
	data, _ := blobs(3, 2, 3, 2, 5)
	res, err := Agglomerate(data, len(data), Ward)
	if err != nil {
		t.Fatal(err)
	}
	if res.K() != len(data) {
		t.Fatalf("K = %d", res.K())
	}
	for i, s := range res.Sizes {
		if s != 1 {
			t.Fatalf("size[%d] = %d", i, s)
		}
	}
	if len(res.MergeHeights) != 0 {
		t.Fatalf("merges = %d", len(res.MergeHeights))
	}
}

func TestAgglomerateValidation(t *testing.T) {
	if _, err := Agglomerate(nil, 1, Ward); err == nil {
		t.Error("empty data accepted")
	}
	data := [][]float32{{1, 2}, {3}}
	if _, err := Agglomerate(data, 1, Ward); err == nil {
		t.Error("ragged data accepted")
	}
	ok := [][]float32{{1}, {2}}
	if _, err := Agglomerate(ok, 3, Ward); err == nil {
		t.Error("k > n accepted")
	}
	if _, err := Agglomerate(ok, 0, Ward); err == nil {
		t.Error("k = 0 accepted")
	}
}

func TestWardMergeHeightsMonotone(t *testing.T) {
	// Ward linkage heights are monotonically non-decreasing.
	data, _ := blobs(4, 3, 15, 4, 6)
	res, err := Agglomerate(data, 1, Ward)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(res.MergeHeights); i++ {
		if res.MergeHeights[i] < res.MergeHeights[i-1]-1e-9 {
			t.Fatalf("merge heights not monotone at %d: %v < %v", i, res.MergeHeights[i], res.MergeHeights[i-1])
		}
	}
	if len(res.MergeHeights) != len(data)-1 {
		t.Fatalf("merges = %d, want %d", len(res.MergeHeights), len(data)-1)
	}
}

func TestAssignNearestCentroid(t *testing.T) {
	centroids := [][]float32{{0, 0}, {10, 0}, {0, 10}}
	data := [][]float32{{1, 1}, {9, -1}, {1, 9}, {5.1, 0}}
	labels, err := Assign(data, centroids)
	if err != nil {
		t.Fatal(err)
	}
	want := []int{0, 1, 2, 1}
	if !reflect.DeepEqual(labels, want) {
		t.Fatalf("labels = %v, want %v", labels, want)
	}
}

func TestAssignValidation(t *testing.T) {
	if _, err := Assign([][]float32{{1}}, nil); err == nil {
		t.Error("no centroids accepted")
	}
	if _, err := Assign([][]float32{{1, 2}}, [][]float32{{1}}); err == nil {
		t.Error("dim mismatch accepted")
	}
}

func TestAssignIsIdempotentOnTrainingData(t *testing.T) {
	// Property: assigning the training data to the centroids of a
	// well-separated clustering reproduces the clustering labels.
	data, _ := blobs(5, 4, 25, 6, 12)
	res, err := Agglomerate(data, 4, Ward)
	if err != nil {
		t.Fatal(err)
	}
	labels, err := Assign(data, res.Centroids)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(labels, res.Labels) {
		t.Fatal("nearest-centroid assignment disagrees with clustering on separated blobs")
	}
}

func TestWithinSSE(t *testing.T) {
	data := [][]float32{{0}, {2}, {10}, {12}}
	centroids := [][]float32{{1}, {11}}
	labels := []int{0, 0, 1, 1}
	sse, err := WithinSSE(data, centroids, labels)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(sse-4) > 1e-9 {
		t.Fatalf("SSE = %v, want 4", sse)
	}
	if _, err := WithinSSE(data, centroids, []int{0}); err == nil {
		t.Error("label count mismatch accepted")
	}
	if _, err := WithinSSE(data, centroids, []int{0, 0, 1, 9}); err == nil {
		t.Error("out-of-range label accepted")
	}
}

func TestMeanSilhouetteSeparatedVsMixed(t *testing.T) {
	sepData, sepTruth := blobs(6, 3, 20, 4, 15)
	s1, err := MeanSilhouette(sepData, sepTruth, 3)
	if err != nil {
		t.Fatal(err)
	}
	if s1 < 0.7 {
		t.Fatalf("separated blobs silhouette %v, want high", s1)
	}
	// Random labels on the same data must score much worse.
	r := rand.New(rand.NewSource(9))
	randomLabels := make([]int, len(sepData))
	for i := range randomLabels {
		randomLabels[i] = r.Intn(3)
	}
	s2, err := MeanSilhouette(sepData, randomLabels, 3)
	if err != nil {
		t.Fatal(err)
	}
	if s2 > s1-0.3 {
		t.Fatalf("random labels silhouette %v not much worse than %v", s2, s1)
	}
}

func TestWardBeatsAverageOnCompactness(t *testing.T) {
	// The ablation claim: Ward minimizes within-cluster variance, so its
	// SSE at k clusters is <= average linkage's on blob data.
	data, _ := blobs(7, 5, 20, 4, 4)
	ward, err := Agglomerate(data, 5, Ward)
	if err != nil {
		t.Fatal(err)
	}
	avg, err := Agglomerate(data, 5, Average)
	if err != nil {
		t.Fatal(err)
	}
	wardSSE, _ := WithinSSE(data, ward.Centroids, ward.Labels)
	avgSSE, _ := WithinSSE(data, avg.Centroids, avg.Labels)
	if wardSSE > avgSSE*1.2 {
		t.Fatalf("ward SSE %v much worse than average %v", wardSSE, avgSSE)
	}
}

// Property: for any data, labels are in range, sizes sum to n, and every
// cluster is non-empty.
func TestAgglomerateInvariantsProperty(t *testing.T) {
	prop := func(seed int64, nRaw, kRaw, dimRaw uint8) bool {
		n := int(nRaw)%40 + 2
		k := int(kRaw)%n + 1
		dim := int(dimRaw)%6 + 1
		r := rand.New(rand.NewSource(seed))
		data := make([][]float32, n)
		for i := range data {
			row := make([]float32, dim)
			for d := range row {
				row[d] = float32(r.NormFloat64())
			}
			data[i] = row
		}
		res, err := Agglomerate(data, k, Ward)
		if err != nil {
			return false
		}
		if res.K() != k {
			return false
		}
		total := 0
		seen := make([]bool, k)
		for _, s := range res.Sizes {
			if s <= 0 {
				return false
			}
			total += s
		}
		if total != n {
			return false
		}
		for _, l := range res.Labels {
			if l < 0 || l >= k {
				return false
			}
			seen[l] = true
		}
		for _, s := range seen {
			if !s {
				return false
			}
		}
		return len(res.MergeHeights) == n-k
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
