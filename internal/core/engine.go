package core

import (
	"fmt"
	"sync"

	"github.com/eoml/eoml/internal/aicca"
	"github.com/eoml/eoml/internal/fleet"
	"github.com/eoml/eoml/internal/laads"
	"github.com/eoml/eoml/internal/metrics"
	"github.com/eoml/eoml/internal/ricc"
	"github.com/eoml/eoml/internal/tensor"
)

// Engine hosts N isolated workflow runs in one process — the control
// plane's execution substrate. What is expensive or shared lives here
// exactly once: loaded model weights (keyed by artifact paths, so a
// hundred runs of the same campaign share one weight copy), the tile
// decode scratch arena, and the per-tenant archive quotas. What belongs
// to one run — its config, metric registry, health tracker, provenance
// store, and stage objects — lives on the Run values NewRun hands out,
// so concurrent runs never collide on state.
type Engine struct {
	labeler *aicca.Labeler       // optional programmatic labeler shared by every run
	quotas  *laads.QuotaPool     // per-tenant archive request quotas (nil = unlimited)
	extract *tensor.ShardedArena // shared per-granule decode scratch
	fleet   *fleet.Coordinator   // worker fleet (nil = fleet distribution unavailable)

	mu     sync.Mutex
	models map[string]*aicca.Labeler // disk-loaded labelers keyed by model|codebook
}

// EngineOptions tunes a new Engine.
type EngineOptions struct {
	// Labeler, when set, is used by every run whose config does not name
	// model artifacts of its own.
	Labeler *aicca.Labeler
	// Quotas, when set, gates each run's archive requests on its
	// tenant's token bucket. Nil admits everything.
	Quotas *laads.QuotaPool
	// Fleet, when set, lets runs with `distribution: fleet` lease their
	// preprocess and inference tasks to registered worker processes.
	Fleet *fleet.Coordinator
}

// NewEngine builds an engine.
func NewEngine(opts EngineOptions) *Engine {
	return &Engine{
		labeler: opts.Labeler,
		quotas:  opts.Quotas,
		extract: tensor.NewShardedArena(),
		fleet:   opts.Fleet,
		models:  map[string]*aicca.Labeler{},
	}
}

// labelerFor resolves the labeler a run uses: the config's named model
// artifacts when present (loaded once and cached — subsequent runs share
// the weights), else the engine's programmatic labeler.
func (e *Engine) labelerFor(cfg Config) (*aicca.Labeler, error) {
	if cfg.ModelPath == "" || cfg.CodebookPath == "" {
		if e.labeler == nil {
			return nil, fmt.Errorf("core: pipeline needs a labeler or model+codebook paths")
		}
		return e.labeler, nil
	}
	key := cfg.ModelPath + "|" + cfg.CodebookPath
	e.mu.Lock()
	defer e.mu.Unlock()
	if l, ok := e.models[key]; ok {
		return l, nil
	}
	model, err := ricc.Load(cfg.ModelPath)
	if err != nil {
		return nil, err
	}
	cb, err := ricc.LoadCodebook(cfg.CodebookPath)
	if err != nil {
		return nil, err
	}
	l, err := aicca.NewLabeler(model, cb)
	if err != nil {
		return nil, err
	}
	e.models[key] = l
	return l, nil
}

// RunOptions carries the per-run identity the control plane assigns.
type RunOptions struct {
	// ID, when non-empty, labels every metric series the run emits with
	// run="<ID>" via a labeled child registry. Empty (the legacy
	// one-shot path) keeps the series label-for-label identical to the
	// pre-engine Pipeline.
	ID string
	// Tenant selects the archive quota bucket and, when non-empty, adds
	// a tenant="<Tenant>" label next to the run label.
	Tenant string
}

// NewRun validates the config and builds an isolated run over the
// engine's shared resources: its own child metric registry, health
// tracker, and stage state, plus the shared weights, decode arena, and
// tenant quota.
func (e *Engine) NewRun(cfg Config, opts RunOptions) (*Run, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	labeler, err := e.labelerFor(cfg)
	if err != nil {
		return nil, err
	}
	var reg *metrics.Registry
	switch {
	case opts.ID != "" && opts.Tenant != "":
		reg = metrics.NewLabeledRegistry(metrics.L("run", opts.ID), metrics.L("tenant", opts.Tenant))
	case opts.ID != "":
		reg = metrics.NewLabeledRegistry(metrics.L("run", opts.ID))
	default:
		reg = metrics.NewRegistry()
	}
	if cfg.Distribution == DistributionFleet && e.fleet == nil {
		return nil, fmt.Errorf("core: config asks for distribution %q but the engine has no fleet coordinator", cfg.Distribution)
	}
	r := &Run{
		cfg:     cfg,
		id:      opts.ID,
		tenant:  opts.Tenant,
		labeler: labeler,
		extract: e.extract,
		fleet:   e.fleet,
		quota:   e.quotas.Tenant(tenantOrDefault(opts.Tenant)),
		metrics: reg,
		health:  metrics.NewHealth(),
	}
	r.extract.Instrument(r.metrics, "tile")
	return r, nil
}

// Fleet returns the engine's worker-fleet coordinator, or nil when the
// engine runs everything in-process. The control plane uses this to
// mount the membership API and instrument the eoml_fleet_* series.
func (e *Engine) Fleet() *fleet.Coordinator { return e.fleet }

// Quotas returns the engine's per-tenant archive quota pool (nil when
// quotas are disabled), so drivers can instrument it.
func (e *Engine) Quotas() *laads.QuotaPool { return e.quotas }

// tenantOrDefault maps the empty tenant onto one shared default bucket,
// so unattributed runs still share a quota instead of each minting an
// unlimited one.
func tenantOrDefault(t string) string {
	if t == "" {
		return "default"
	}
	return t
}
