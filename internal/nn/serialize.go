package nn

import (
	"fmt"

	"github.com/eoml/eoml/internal/hdf"
)

// SaveParams serializes named parameters into an HDF-lite container. Layer
// labels must therefore be unique within a model.
func SaveParams(path string, params []*Param, meta map[string]any) error {
	f := hdf.NewFile()
	for k, v := range meta {
		f.Attrs[k] = v
	}
	seen := map[string]bool{}
	for _, p := range params {
		if seen[p.Name] {
			return fmt.Errorf("nn: duplicate parameter name %q", p.Name)
		}
		seen[p.Name] = true
		d, err := hdf.NewFloat32(p.Name, p.W.Shape, p.W.Data)
		if err != nil {
			return err
		}
		if err := f.Add(d); err != nil {
			return err
		}
	}
	return hdf.WriteFile(path, f)
}

// LoadParams restores parameter values in place from a container written
// by SaveParams. Every parameter must be present with a matching shape.
func LoadParams(path string, params []*Param) (map[string]any, error) {
	f, err := hdf.ReadFile(path)
	if err != nil {
		return nil, err
	}
	for _, p := range params {
		d, err := f.Dataset(p.Name)
		if err != nil {
			return nil, err
		}
		vals, err := d.Float32s()
		if err != nil {
			return nil, err
		}
		if len(vals) != p.W.Len() {
			return nil, fmt.Errorf("nn: parameter %q has %d values, want %d", p.Name, len(vals), p.W.Len())
		}
		copy(p.W.Data, vals)
	}
	return f.Attrs, nil
}
