// Command benchdiff compares two committed benchmark records and fails
// on throughput regressions, so "optimizations" that trade allocations
// for wall-clock (the BENCH_4 arena regression) can't land silently:
//
//	benchdiff [-threshold 0.10] BENCH_4.json BENCH_5.json
//
// Every time/rate metric (ns/op, tiles/s, GFLOPS) present in both
// records is compared; the exit status is non-zero if any metric moved
// against its direction by more than the threshold. Memory metrics are
// printed but never gate. `make bench-diff` runs this against the two
// most recent committed records and is part of `make check`/CI.
//
// Compare silently skips benchmarks absent from either record, which
// would let a renamed (or deleted) hot-path series dodge the gate;
// -require closes that hole by demanding at least one compared
// benchmark match the regexp:
//
//	benchdiff -require 'FleetScaling/(strong|weak)/' BENCH_9.json BENCH_10.json
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"regexp"

	"github.com/eoml/eoml/internal/benchfmt"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintf(os.Stderr, "benchdiff: %v\n", err)
		os.Exit(1)
	}
}

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("benchdiff", flag.ContinueOnError)
	threshold := fs.Float64("threshold", 0.10, "regression tolerance as a fraction (0.10 = 10%)")
	require := fs.String("require", "", "regexp at least one compared benchmark must match (catches renamed/dropped series)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 2 {
		return fmt.Errorf("usage: benchdiff [-threshold 0.10] [-require REGEXP] OLD.json NEW.json")
	}
	var requireRE *regexp.Regexp
	if *require != "" {
		re, err := regexp.Compile(*require)
		if err != nil {
			return fmt.Errorf("bad -require regexp: %w", err)
		}
		requireRE = re
	}
	oldDoc, err := benchfmt.ReadFile(fs.Arg(0))
	if err != nil {
		return err
	}
	newDoc, err := benchfmt.ReadFile(fs.Arg(1))
	if err != nil {
		return err
	}

	deltas := benchfmt.Compare(oldDoc, newDoc, *threshold)
	if len(deltas) == 0 {
		return fmt.Errorf("no shared throughput metrics between %s and %s", fs.Arg(0), fs.Arg(1))
	}
	if requireRE != nil {
		matched := false
		for _, d := range deltas {
			if requireRE.MatchString(d.Bench) {
				matched = true
				break
			}
		}
		if !matched {
			return fmt.Errorf("no compared benchmark matches -require %q — the gated series was renamed or dropped", *require)
		}
	}
	regressions := 0
	fmt.Fprintf(stdout, "%-44s %-12s %14s %14s %8s\n", "benchmark", "metric", "old", "new", "ratio")
	for _, d := range deltas {
		mark := ""
		if d.Regression {
			mark = "  REGRESSION"
			regressions++
		}
		fmt.Fprintf(stdout, "%-44s %-12s %14.4g %14.4g %8.3f%s\n", d.Bench, d.Metric, d.Old, d.New, d.Ratio, mark)
	}
	if regressions > 0 {
		return fmt.Errorf("%d throughput metric(s) regressed beyond %.0f%% (PR %d → PR %d)",
			regressions, *threshold*100, oldDoc.PR, newDoc.PR)
	}
	fmt.Fprintf(stdout, "ok: no throughput regression beyond %.0f%% (PR %d → PR %d)\n",
		*threshold*100, oldDoc.PR, newDoc.PR)
	return nil
}
