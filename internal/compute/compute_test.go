package compute

import (
	"context"
	"errors"
	"fmt"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func registryWithMath(t *testing.T) *Registry {
	t.Helper()
	reg := NewRegistry()
	err := reg.Register("add", func(ctx context.Context, args map[string]any) (any, error) {
		a, _ := args["a"].(float64)
		b, _ := args["b"].(float64)
		return a + b, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := reg.Register("boom", func(ctx context.Context, args map[string]any) (any, error) {
		return nil, fmt.Errorf("deliberate failure")
	}); err != nil {
		t.Fatal(err)
	}
	if err := reg.Register("panic", func(ctx context.Context, args map[string]any) (any, error) {
		panic("kaboom")
	}); err != nil {
		t.Fatal(err)
	}
	if err := reg.Register("sleep", func(ctx context.Context, args map[string]any) (any, error) {
		d, _ := args["ms"].(float64)
		select {
		case <-time.After(time.Duration(d) * time.Millisecond):
			return "slept", nil
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}); err != nil {
		t.Fatal(err)
	}
	return reg
}

func TestRegistryValidation(t *testing.T) {
	reg := NewRegistry()
	if err := reg.Register("", func(ctx context.Context, a map[string]any) (any, error) { return nil, nil }); err == nil {
		t.Error("empty name accepted")
	}
	if err := reg.Register("x", nil); err == nil {
		t.Error("nil function accepted")
	}
	if err := reg.Register("x", func(ctx context.Context, a map[string]any) (any, error) { return nil, nil }); err != nil {
		t.Fatal(err)
	}
	if err := reg.Register("x", func(ctx context.Context, a map[string]any) (any, error) { return nil, nil }); err == nil {
		t.Error("duplicate accepted")
	}
	if _, err := reg.Lookup("nope"); err == nil {
		t.Error("missing lookup accepted")
	}
}

func TestEndpointExecutesTasks(t *testing.T) {
	reg := registryWithMath(t)
	ep, err := NewEndpoint("dtn1", reg, EndpointConfig{Workers: 3})
	if err != nil {
		t.Fatal(err)
	}
	ep.Start()
	defer ep.Stop()

	fut, err := ep.Submit("add", map[string]any{"a": float64(2), "b": float64(3)})
	if err != nil {
		t.Fatal(err)
	}
	v, err := fut.Get(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if v.(float64) != 5 {
		t.Fatalf("result = %v", v)
	}
	if fut.State() != Completed {
		t.Fatalf("state = %v", fut.State())
	}
}

func TestEndpointTaskErrorAndPanic(t *testing.T) {
	reg := registryWithMath(t)
	ep, _ := NewEndpoint("dtn1", reg, EndpointConfig{Workers: 1})
	ep.Start()
	defer ep.Stop()

	fut, err := ep.Submit("boom", nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := fut.Get(context.Background()); err == nil {
		t.Fatal("task error not propagated")
	}
	if fut.State() != Errored {
		t.Fatalf("state = %v", fut.State())
	}
	// A panicking task must not kill the worker.
	fut2, err := ep.Submit("panic", nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := fut2.Get(context.Background()); err == nil {
		t.Fatal("panic not converted to error")
	}
	fut3, err := ep.Submit("add", map[string]any{"a": float64(1), "b": float64(1)})
	if err != nil {
		t.Fatal(err)
	}
	if v, err := fut3.Get(context.Background()); err != nil || v.(float64) != 2 {
		t.Fatalf("worker dead after panic: %v %v", v, err)
	}
}

func TestEndpointBoundedConcurrency(t *testing.T) {
	reg := NewRegistry()
	var now, peak int64
	var mu sync.Mutex
	if err := reg.Register("probe", func(ctx context.Context, args map[string]any) (any, error) {
		mu.Lock()
		now++
		if now > peak {
			peak = now
		}
		mu.Unlock()
		time.Sleep(10 * time.Millisecond)
		mu.Lock()
		now--
		mu.Unlock()
		return nil, nil
	}); err != nil {
		t.Fatal(err)
	}
	ep, _ := NewEndpoint("e", reg, EndpointConfig{Workers: 4})
	ep.Start()
	defer ep.Stop()
	args := make([]map[string]any, 20)
	if _, err := ep.Map(context.Background(), "probe", args); err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	defer mu.Unlock()
	if peak > 4 {
		t.Fatalf("peak concurrency %d exceeds 4 workers", peak)
	}
	if peak < 2 {
		t.Fatalf("peak concurrency %d: pool not parallel", peak)
	}
}

func TestEndpointGracefulStopDrainsQueue(t *testing.T) {
	reg := registryWithMath(t)
	ep, _ := NewEndpoint("e", reg, EndpointConfig{Workers: 2})
	ep.Start()
	var futs []*Future
	for i := 0; i < 10; i++ {
		f, err := ep.Submit("sleep", map[string]any{"ms": float64(5)})
		if err != nil {
			t.Fatal(err)
		}
		futs = append(futs, f)
	}
	ep.Stop() // must wait for all queued tasks
	for i, f := range futs {
		select {
		case <-f.Done():
		default:
			t.Fatalf("task %d not finished after Stop", i)
		}
	}
	if _, err := ep.Submit("add", nil); err == nil {
		t.Fatal("submit after stop accepted")
	}
}

func TestEndpointQueueFull(t *testing.T) {
	reg := registryWithMath(t)
	ep, _ := NewEndpoint("e", reg, EndpointConfig{Workers: 1, QueueDepth: 2})
	ep.Start()
	defer ep.Stop()
	overflowed := false
	for i := 0; i < 10; i++ {
		if _, err := ep.Submit("sleep", map[string]any{"ms": float64(50)}); err != nil {
			overflowed = true
			break
		}
	}
	if !overflowed {
		t.Fatal("queue depth 2 never overflowed")
	}
}

func TestEndpointTaskTimeout(t *testing.T) {
	reg := registryWithMath(t)
	ep, _ := NewEndpoint("e", reg, EndpointConfig{Workers: 1, TaskTimeout: 20 * time.Millisecond})
	ep.Start()
	defer ep.Stop()
	fut, err := ep.Submit("sleep", map[string]any{"ms": float64(5000)})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := fut.Get(context.Background()); err == nil {
		t.Fatal("timeout not enforced")
	}
}

func TestWorkerChangeHookObservesActivity(t *testing.T) {
	reg := registryWithMath(t)
	var maxActive int64
	ep, _ := NewEndpoint("e", reg, EndpointConfig{
		Workers: 3,
		OnWorkerChange: func(active int) {
			for {
				cur := atomic.LoadInt64(&maxActive)
				if int64(active) <= cur || atomic.CompareAndSwapInt64(&maxActive, cur, int64(active)) {
					break
				}
			}
		},
	})
	ep.Start()
	args := make([]map[string]any, 9)
	for i := range args {
		args[i] = map[string]any{"ms": float64(10)}
	}
	if _, err := ep.Map(context.Background(), "sleep", args); err != nil {
		t.Fatal(err)
	}
	ep.Stop()
	if atomic.LoadInt64(&maxActive) < 2 {
		t.Fatalf("hook saw max active %d", maxActive)
	}
	if ep.ActiveWorkers() != 0 {
		t.Fatalf("active after stop = %d", ep.ActiveWorkers())
	}
}

func TestHTTPTransportRoundTrip(t *testing.T) {
	reg := registryWithMath(t)
	ep, _ := NewEndpoint("remote-dtn", reg, EndpointConfig{Workers: 2})
	ep.Start()
	defer ep.Stop()
	srv := httptest.NewServer(ep.Handler())
	defer srv.Close()

	client := NewRemoteEndpoint(srv.URL)
	ctx := context.Background()

	name, _, fns, err := client.Status(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if name != "remote-dtn" || len(fns) != 4 {
		t.Fatalf("status %q %v", name, fns)
	}

	fut, err := client.Submit(ctx, "add", map[string]any{"a": 40, "b": 2})
	if err != nil {
		t.Fatal(err)
	}
	v, err := fut.Get(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if v.(float64) != 42 {
		t.Fatalf("remote result %v", v)
	}
}

func TestHTTPTransportErrors(t *testing.T) {
	reg := registryWithMath(t)
	ep, _ := NewEndpoint("remote", reg, EndpointConfig{Workers: 1})
	ep.Start()
	defer ep.Stop()
	srv := httptest.NewServer(ep.Handler())
	defer srv.Close()
	client := NewRemoteEndpoint(srv.URL)
	ctx := context.Background()

	if _, err := client.Submit(ctx, "nonexistent", nil); err == nil {
		t.Error("unknown function accepted")
	}
	fut, err := client.Submit(ctx, "boom", nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := fut.Get(ctx); err == nil {
		t.Error("remote task error not propagated")
	}
	bogus := &RemoteFuture{TaskID: "nope", ep: client}
	if _, err := bogus.Poll(ctx); err == nil {
		t.Error("unknown remote task accepted")
	}
}

func TestMapPreservesOrder(t *testing.T) {
	reg := NewRegistry()
	if err := reg.Register("iden", func(ctx context.Context, args map[string]any) (any, error) {
		return args["i"], nil
	}); err != nil {
		t.Fatal(err)
	}
	ep, _ := NewEndpoint("e", reg, EndpointConfig{Workers: 8})
	ep.Start()
	defer ep.Stop()
	args := make([]map[string]any, 50)
	for i := range args {
		args[i] = map[string]any{"i": float64(i)}
	}
	results, err := ep.Map(context.Background(), "iden", args)
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range results {
		if r.(float64) != float64(i) {
			t.Fatalf("result[%d] = %v", i, r)
		}
	}
}

// TestSubmitDrainingTyped pins the typed drain rejection: after Stop, a
// local Submit fails with ErrDraining (errors.Is), and the same error
// survives the HTTP hop as a 503 so a remote submitter can distinguish
// requeue-able rejections from fatal ones.
func TestSubmitDrainingTyped(t *testing.T) {
	reg := registryWithMath(t)
	ep, err := NewEndpoint("drain", reg, EndpointConfig{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}

	// Never-started endpoints are "not running", not draining.
	if _, err := ep.Submit("add", nil); errors.Is(err, ErrDraining) {
		t.Fatalf("unstarted Submit = %v, want a non-draining error", err)
	}

	ep.Start()
	ts := httptest.NewServer(ep.Handler())
	defer ts.Close()
	ep.Stop()

	if _, err := ep.Submit("add", nil); !errors.Is(err, ErrDraining) {
		t.Fatalf("Submit after Stop = %v, want ErrDraining", err)
	}
	remote := NewRemoteEndpoint(ts.URL)
	if _, err := remote.Submit(context.Background(), "add", nil); !errors.Is(err, ErrDraining) {
		t.Fatalf("remote Submit after Stop = %v, want ErrDraining across the HTTP hop", err)
	}
}

// TestSubmitStopRace hammers Submit against a concurrent Stop: every
// submission must either be accepted (and its future complete) or fail
// with ErrDraining — never panic on the closed queue.
func TestSubmitStopRace(t *testing.T) {
	reg := registryWithMath(t)
	ep, err := NewEndpoint("race", reg, EndpointConfig{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	ep.Start()
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 200; j++ {
				fut, err := ep.Submit("add", map[string]any{"a": 1.0, "b": 2.0})
				if err != nil {
					if !errors.Is(err, ErrDraining) {
						t.Errorf("Submit = %v, want nil or ErrDraining", err)
					}
					return
				}
				if _, err := fut.Get(context.Background()); err != nil {
					t.Errorf("accepted task errored: %v", err)
				}
			}
		}()
	}
	ep.Stop()
	wg.Wait()
}

// TestSubmitBatchExecutesAll: a batch submit enqueues every task in one
// call, results come back per-future, and the OnEnqueue hook sees each
// accepted task exactly once.
func TestSubmitBatchExecutesAll(t *testing.T) {
	reg := registryWithMath(t)
	var enq atomic.Int64
	ep, err := NewEndpoint("dtn1", reg, EndpointConfig{
		Workers:   2,
		OnEnqueue: func(fn string, args map[string]any) { enq.Add(1) },
	})
	if err != nil {
		t.Fatal(err)
	}
	ep.Start()
	defer ep.Stop()

	specs := make([]Spec, 5)
	for i := range specs {
		specs[i] = Spec{Function: "add", Args: map[string]any{"a": float64(i), "b": float64(1)}}
	}
	futs, err := ep.SubmitBatch(specs)
	if err != nil {
		t.Fatal(err)
	}
	if len(futs) != 5 {
		t.Fatalf("futures = %d, want 5", len(futs))
	}
	for i, f := range futs {
		v, err := f.Get(context.Background())
		if err != nil {
			t.Fatalf("task %d: %v", i, err)
		}
		if v.(float64) != float64(i+1) {
			t.Fatalf("task %d = %v, want %d", i, v, i+1)
		}
	}
	if enq.Load() != 5 {
		t.Fatalf("OnEnqueue saw %d tasks, want 5", enq.Load())
	}
}

// TestSubmitBatchAllOrNothing: one unknown function rejects the whole
// batch with nothing enqueued, and a draining endpoint rejects with the
// typed error.
func TestSubmitBatchAllOrNothing(t *testing.T) {
	reg := registryWithMath(t)
	ep, _ := NewEndpoint("dtn1", reg, EndpointConfig{Workers: 1})
	ep.Start()
	_, err := ep.SubmitBatch([]Spec{
		{Function: "add", Args: map[string]any{"a": float64(1), "b": float64(1)}},
		{Function: "no-such-fn"},
	})
	if err == nil {
		t.Fatal("batch with unknown function accepted")
	}
	ep.mu.Lock()
	if len(ep.futures) != 0 {
		ep.mu.Unlock()
		t.Fatalf("rejected batch left %d futures behind", len(ep.futures))
	}
	ep.mu.Unlock()
	ep.Stop()
	_, err = ep.SubmitBatch([]Spec{{Function: "add"}})
	if !errors.Is(err, ErrDraining) {
		t.Fatalf("post-Stop batch error = %v, want ErrDraining", err)
	}
}

// TestSubmitBatchQueueCapacity: a batch larger than the queue's free
// space is rejected whole.
func TestSubmitBatchQueueCapacity(t *testing.T) {
	reg := registryWithMath(t)
	ep, _ := NewEndpoint("dtn1", reg, EndpointConfig{Workers: 1, QueueDepth: 2})
	ep.Start()
	defer ep.Stop()
	specs := make([]Spec, 8)
	for i := range specs {
		specs[i] = Spec{Function: "sleep", Args: map[string]any{"ms": float64(1)}}
	}
	if _, err := ep.SubmitBatch(specs); err == nil {
		t.Fatal("batch beyond queue capacity accepted")
	}
}

// TestHTTPBatchRoundTrip drives the two batch verbs over a real
// listener: one submit_batch round-trip in, one tasks/poll round-trip
// out with every result.
func TestHTTPBatchRoundTrip(t *testing.T) {
	reg := registryWithMath(t)
	ep, _ := NewEndpoint("dtn1", reg, EndpointConfig{Workers: 2})
	ep.Start()
	defer ep.Stop()
	srv := httptest.NewServer(ep.Handler())
	defer srv.Close()

	remote := NewRemoteEndpoint(srv.URL)
	specs := []Spec{
		{Function: "add", Args: map[string]any{"a": float64(20), "b": float64(22)}},
		{Function: "boom"},
		{Function: "add", Args: map[string]any{"a": float64(1), "b": float64(2)}},
	}
	futs, err := remote.SubmitBatch(context.Background(), specs)
	if err != nil {
		t.Fatal(err)
	}
	ids := make([]string, len(futs))
	for i, f := range futs {
		ids[i] = f.TaskID
	}
	deadline := time.Now().Add(10 * time.Second)
	for {
		sts, err := remote.PollBatch(context.Background(), ids)
		if err != nil {
			t.Fatal(err)
		}
		if len(sts) != 3 {
			t.Fatalf("poll returned %d tasks, want 3", len(sts))
		}
		settled := 0
		for _, st := range sts {
			if st.State == Completed || st.State == Errored {
				settled++
			}
		}
		if settled == 3 {
			if sts[0].Result.(float64) != 42 || sts[2].Result.(float64) != 3 {
				t.Fatalf("results = %v / %v", sts[0].Result, sts[2].Result)
			}
			if sts[1].State != Errored || sts[1].Error == "" {
				t.Fatalf("boom task state = %+v, want errored", sts[1])
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("batch never settled: %+v", sts)
		}
		time.Sleep(2 * time.Millisecond)
	}

	// Unknown IDs fail the whole poll, like GET /tasks/{id}.
	if _, err := remote.PollBatch(context.Background(), []string{"ghost"}); err == nil {
		t.Fatal("poll of unknown id succeeded")
	}
}
