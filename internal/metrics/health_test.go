package metrics

import (
	"encoding/json"
	"net/http/httptest"
	"testing"
	"time"
)

// fakeClock drives Health deterministically.
type fakeClock struct{ t time.Time }

func (c *fakeClock) now() time.Time          { return c.t }
func (c *fakeClock) advance(d time.Duration) { c.t = c.t.Add(d) }
func newFakeHealth() (*Health, *fakeClock) {
	clk := &fakeClock{t: time.Unix(1700000000, 0)}
	h := NewHealth()
	h.SetClock(clk.now)
	return h, clk
}

func TestHealthStallFlip(t *testing.T) {
	h, clk := newFakeHealth()
	h.Watch("inference", 5*time.Second)
	h.Beat("inference")

	if !h.Healthy() {
		t.Fatal("fresh stage reported unhealthy")
	}
	clk.advance(4 * time.Second)
	if !h.Healthy() {
		t.Fatal("stage within stall budget reported unhealthy")
	}
	clk.advance(2 * time.Second) // 6s since beat > 5s budget
	ok, stages := h.Check()
	if ok {
		t.Fatal("stalled stage reported healthy")
	}
	if len(stages) != 1 || !stages[0].Stalled || stages[0].State != StateRunning {
		t.Fatalf("unexpected detail %+v", stages)
	}
	// A beat recovers it.
	h.Beat("inference")
	if !h.Healthy() {
		t.Fatal("stage did not recover after beat")
	}
	// Done stages are exempt from stall checks forever.
	h.Done("inference")
	clk.advance(time.Hour)
	if !h.Healthy() {
		t.Fatal("done stage reported unhealthy")
	}
}

func TestHealthFailAndZeroBudget(t *testing.T) {
	h, clk := newFakeHealth()
	h.Watch("download", 0) // state-only tracking: never stalls
	clk.advance(time.Hour)
	if !h.Healthy() {
		t.Fatal("zero-budget stage reported stalled")
	}
	h.Fail("download")
	if h.Healthy() {
		t.Fatal("failed stage reported healthy")
	}
}

func TestHealthNilSafe(t *testing.T) {
	var h *Health
	h.Watch("x", time.Second)
	h.Beat("x")
	h.Done("x")
	h.Fail("x")
	h.SetClock(time.Now)
	if ok, stages := h.Check(); !ok || stages != nil {
		t.Fatalf("nil health = %v %+v", ok, stages)
	}
}

func TestHealthServeHTTP(t *testing.T) {
	h, clk := newFakeHealth()
	h.Watch("inference", 5*time.Second)
	h.Beat("inference")

	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/healthz", nil))
	if rec.Code != 200 {
		t.Fatalf("healthy code = %d", rec.Code)
	}
	var resp struct {
		Status string        `json:"status"`
		Stages []StageHealth `json:"stages"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatalf("json: %v\n%s", err, rec.Body.String())
	}
	if resp.Status != "ok" || len(resp.Stages) != 1 || resp.Stages[0].Stage != "inference" {
		t.Fatalf("unexpected body %+v", resp)
	}

	clk.advance(10 * time.Second)
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/healthz", nil))
	if rec.Code != 503 {
		t.Fatalf("stalled code = %d, want 503", rec.Code)
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Status != "unhealthy" || !resp.Stages[0].Stalled {
		t.Fatalf("unexpected stalled body %+v", resp)
	}
}

func TestHealthServeHTTPEmpty(t *testing.T) {
	rec := httptest.NewRecorder()
	NewHealth().ServeHTTP(rec, httptest.NewRequest("GET", "/healthz", nil))
	if rec.Code != 200 {
		t.Fatalf("empty health code = %d", rec.Code)
	}
	var resp map[string]any
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if resp["stages"] == nil {
		t.Fatal("stages missing from empty body")
	}
}
