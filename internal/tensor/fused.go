// Fused direct convolution. For the 3×3 kernels RICC uses, materializing
// the im2col matrix costs more memory traffic than the convolution
// itself (K²=9 copies of every input pixel). The fused path keeps the
// nine weights of one (outC, inC) filter in registers and accumulates
// straight from the input planes, splitting each output row into border
// and interior segments so the interior runs without bounds tests.
// ConvDirect (conv.go) is the reference oracle.

package tensor

import "fmt"

// ConvFused computes the convolution without an im2col buffer. Weights
// have shape [OutC, InC, K, K]; bias (optional) has shape [OutC]. For
// K == 3 it runs the register-resident fast path; other kernel sizes
// fall back to a generic direct loop.
func ConvFused(x, w, bias *T, g ConvGeom) *T {
	out := New(x.Shape[0], g.OutC, g.OutH, g.OutW)
	ConvFusedInto(x, w, bias, g, out)
	return out
}

// ConvFusedInto is ConvFused writing into out, which must have shape
// [N, OutC, OutH, OutW]. Every element is overwritten, so dirty
// arena-recycled buffers are fine.
func ConvFusedInto(x, w, bias *T, g ConvGeom, out *T) {
	n := x.Shape[0]
	if len(out.Shape) != 4 || out.Shape[0] != n || out.Shape[1] != g.OutC || out.Shape[2] != g.OutH || out.Shape[3] != g.OutW {
		panic(fmt.Sprintf("tensor: conv into %v, want [%d %d %d %d]", out.Shape, n, g.OutC, g.OutH, g.OutW))
	}
	if g.Kernel == 3 {
		convFused3x3(x, w, bias, g, out)
		return
	}
	convGeneric(x, w, bias, g, out)
}

func convFused3x3(x, w, bias *T, g ConvGeom, out *T) {
	n := x.Shape[0]
	stride, pad := g.Stride, g.Pad
	inH, inW := g.InH, g.InW
	outH, outW := g.OutH, g.OutW
	inPlane := inH * inW
	outPlane := outH * outW
	// Interior ox range: all three taps of a row stay in bounds.
	oxLo := (pad + stride - 1) / stride
	if oxLo > outW {
		oxLo = outW
	}
	oxHi := 0
	if inW >= 3 {
		oxHi = (inW-3+pad)/stride + 1
	}
	if oxHi > outW {
		oxHi = outW
	}
	if oxHi < oxLo {
		oxHi = oxLo
	}
	parallelRows(n*g.OutC, func(lo, hi int) {
		for row := lo; row < hi; row++ {
			b := row / g.OutC
			oc := row % g.OutC
			dst := out.Data[row*outPlane : (row+1)*outPlane]
			var bv float32
			if bias != nil {
				bv = bias.Data[oc]
			}
			for i := range dst {
				dst[i] = bv
			}
			for c := 0; c < g.InC; c++ {
				wv := w.Data[((oc*g.InC)+c)*9 : ((oc*g.InC)+c)*9+9 : ((oc*g.InC)+c)*9+9]
				w0, w1, w2 := wv[0], wv[1], wv[2]
				w3, w4, w5 := wv[3], wv[4], wv[5]
				w6, w7, w8 := wv[6], wv[7], wv[8]
				src := x.Data[(b*g.InC+c)*inPlane : (b*g.InC+c+1)*inPlane]
				for oy := 0; oy < outH; oy++ {
					iy := oy*stride - pad
					var r0, r1, r2 []float32
					if iy >= 0 && iy < inH {
						r0 = src[iy*inW : iy*inW+inW]
					}
					if iy+1 >= 0 && iy+1 < inH {
						r1 = src[(iy+1)*inW : (iy+1)*inW+inW]
					}
					if iy+2 >= 0 && iy+2 < inH {
						r2 = src[(iy+2)*inW : (iy+2)*inW+inW]
					}
					d := dst[oy*outW : oy*outW+outW]
					edge := func(ox int) {
						ix := ox*stride - pad
						var s float32
						if r0 != nil {
							if ix >= 0 && ix < inW {
								s += w0 * r0[ix]
							}
							if ix+1 >= 0 && ix+1 < inW {
								s += w1 * r0[ix+1]
							}
							if ix+2 >= 0 && ix+2 < inW {
								s += w2 * r0[ix+2]
							}
						}
						if r1 != nil {
							if ix >= 0 && ix < inW {
								s += w3 * r1[ix]
							}
							if ix+1 >= 0 && ix+1 < inW {
								s += w4 * r1[ix+1]
							}
							if ix+2 >= 0 && ix+2 < inW {
								s += w5 * r1[ix+2]
							}
						}
						if r2 != nil {
							if ix >= 0 && ix < inW {
								s += w6 * r2[ix]
							}
							if ix+1 >= 0 && ix+1 < inW {
								s += w7 * r2[ix+1]
							}
							if ix+2 >= 0 && ix+2 < inW {
								s += w8 * r2[ix+2]
							}
						}
						d[ox] += s
					}
					ox := 0
					for ; ox < oxLo; ox++ {
						edge(ox)
					}
					if r0 != nil && r1 != nil && r2 != nil {
						// All rows in bounds: unguarded 9-tap interior.
						for ; ox < oxHi; ox++ {
							ix := ox*stride - pad
							d[ox] += w0*r0[ix] + w1*r0[ix+1] + w2*r0[ix+2] +
								w3*r1[ix] + w4*r1[ix+1] + w5*r1[ix+2] +
								w6*r2[ix] + w7*r2[ix+1] + w8*r2[ix+2]
						}
					} else {
						// Top/bottom border row: gate per source row only.
						for ; ox < oxHi; ox++ {
							ix := ox*stride - pad
							var s float32
							if r0 != nil {
								s += w0*r0[ix] + w1*r0[ix+1] + w2*r0[ix+2]
							}
							if r1 != nil {
								s += w3*r1[ix] + w4*r1[ix+1] + w5*r1[ix+2]
							}
							if r2 != nil {
								s += w6*r2[ix] + w7*r2[ix+1] + w8*r2[ix+2]
							}
							d[ox] += s
						}
					}
					for ; ox < outW; ox++ {
						edge(ox)
					}
				}
			}
		}
	})
}

// convGeneric is the fallback for kernel sizes other than 3, writing
// into out with the same channel-accumulation order as the 3×3 path.
func convGeneric(x, w, bias *T, g ConvGeom, out *T) {
	n := x.Shape[0]
	k, stride, pad := g.Kernel, g.Stride, g.Pad
	inPlane := g.InH * g.InW
	outPlane := g.OutH * g.OutW
	parallelRows(n*g.OutC, func(lo, hi int) {
		for row := lo; row < hi; row++ {
			b := row / g.OutC
			oc := row % g.OutC
			dst := out.Data[row*outPlane : (row+1)*outPlane]
			var bv float32
			if bias != nil {
				bv = bias.Data[oc]
			}
			for i := range dst {
				dst[i] = bv
			}
			for c := 0; c < g.InC; c++ {
				src := x.Data[(b*g.InC+c)*inPlane:]
				wBase := ((oc * g.InC) + c) * k * k
				for oy := 0; oy < g.OutH; oy++ {
					for ox := 0; ox < g.OutW; ox++ {
						var s float32
						for ky := 0; ky < k; ky++ {
							iy := oy*stride + ky - pad
							if iy < 0 || iy >= g.InH {
								continue
							}
							for kx := 0; kx < k; kx++ {
								ix := ox*stride + kx - pad
								if ix < 0 || ix >= g.InW {
									continue
								}
								s += src[iy*g.InW+ix] * w.Data[wBase+ky*k+kx]
							}
						}
						dst[oy*g.OutW+ox] += s
					}
				}
			}
		}
	})
}
