package tensor

import (
	"sync"
	"sync/atomic"

	"github.com/eoml/eoml/internal/metrics"
)

// Allocator is the buffer source of the inference hot path: Get returns
// a tensor of the given shape with undefined contents, Put recycles one
// obtained from Get. GetI8/PutI8 are the same contract for the int8
// scratch of the quantized inference path. *Arena (concurrent,
// sync.Pool-backed) and *LocalArena (single-goroutine free lists) both
// implement it, so the nn.Layer inference code is agnostic to the
// pooling strategy.
type Allocator interface {
	Get(shape ...int) *T
	Put(t *T)
	GetI8(n int) []int8
	PutI8(s []int8)
}

// LocalArena recycles tensor buffers in power-of-two size classes for a
// single goroutine: plain slice free lists, no locks, no atomics on the
// Get/Put fast path. Obtain one from ShardedArena.Acquire (or NewLocal
// for a purely private arena) and keep it on one goroutine.
type LocalArena struct {
	free   [arenaBuckets][]*T
	freeI8 [arenaBuckets][][]int8

	// Stats are atomics only so an Instrument snapshot can read them
	// while the owning goroutine is mid-encode; the owner is the sole
	// writer, so the adds never contend.
	gets atomic.Int64
	news atomic.Int64
	puts atomic.Int64
}

// NewLocal returns an empty single-goroutine arena.
func NewLocal() *LocalArena { return &LocalArena{} }

// Get returns a tensor of the given shape with undefined contents,
// reusing a free-listed buffer of the same size class when available.
func (a *LocalArena) Get(shape ...int) *T {
	if a == nil {
		return New(shape...)
	}
	n := 1
	for _, s := range shape {
		if s <= 0 {
			panic("tensor: non-positive dim in arena Get")
		}
		n *= s
	}
	a.gets.Add(1)
	b := bucketFor(n)
	if b < arenaBuckets {
		if l := len(a.free[b]); l > 0 {
			t := a.free[b][l-1]
			a.free[b][l-1] = nil
			a.free[b] = a.free[b][:l-1]
			t.Data = t.Data[:n]
			t.Shape = append(t.Shape[:0], shape...)
			return t
		}
	}
	a.news.Add(1)
	capacity := n
	if b < arenaBuckets {
		capacity = 1 << b
	}
	return &T{Shape: append([]int(nil), shape...), Data: make([]float32, n, capacity)}
}

// Put returns a tensor to the free list. Tensors whose capacity is not
// a pooled size class are dropped for the garbage collector.
func (a *LocalArena) Put(t *T) {
	if a == nil || t == nil || cap(t.Data) == 0 {
		return
	}
	c := cap(t.Data)
	if c&(c-1) != 0 {
		return
	}
	b := bucketFor(c)
	if b >= arenaBuckets {
		return
	}
	a.puts.Add(1)
	t.Data = t.Data[:0]
	a.free[b] = append(a.free[b], t)
}

// GetI8 returns an int8 scratch slice of length n with undefined
// contents, free-listed in the same size classes as Get. A nil receiver
// degrades to plain allocation.
func (a *LocalArena) GetI8(n int) []int8 {
	if n <= 0 {
		panic("tensor: non-positive length in arena GetI8")
	}
	if a == nil {
		return make([]int8, n)
	}
	a.gets.Add(1)
	b := bucketFor(n)
	if b < arenaBuckets {
		if l := len(a.freeI8[b]); l > 0 {
			s := a.freeI8[b][l-1]
			a.freeI8[b][l-1] = nil
			a.freeI8[b] = a.freeI8[b][:l-1]
			return s[:n]
		}
	}
	a.news.Add(1)
	capacity := n
	if b < arenaBuckets {
		capacity = 1 << b
	}
	return make([]int8, n, capacity)
}

// PutI8 returns an int8 scratch slice obtained from GetI8 to the free
// list. Non-size-class capacities are dropped for the garbage collector.
func (a *LocalArena) PutI8(s []int8) {
	if a == nil || cap(s) == 0 {
		return
	}
	c := cap(s)
	if c&(c-1) != 0 {
		return
	}
	b := bucketFor(c)
	if b >= arenaBuckets {
		return
	}
	a.puts.Add(1)
	a.freeI8[b] = append(a.freeI8[b], s[:0])
}

// Stats reports Get calls, free-list misses (fresh allocations), and
// Puts.
func (a *LocalArena) Stats() (gets, news, puts int64) {
	if a == nil {
		return 0, 0, 0
	}
	return a.gets.Load(), a.news.Load(), a.puts.Load()
}

// ShardedArena is a checkout pool of LocalArenas: one shard per
// concurrently running worker, each shard keeping the warm buffers of
// the workloads it served. The size-bucketed Arena pays a synchronized
// sync.Pool Get/Put on every tensor and can lose its buffers to GC pool
// purging mid-run; the encode hot path has stronger structure — one
// worker (an Encode call, a tile-extraction granule) owns all of its
// scratch for the span of the call — so ShardedArena hands each worker
// a private LocalArena instead: zero synchronization on the per-tensor
// fast path, one mutex acquire/release per *call* to check the shard in
// and out. Shards are created on demand, so the steady state holds
// exactly as many shards as the peak concurrency, and an idle shard
// keeps its free lists (nothing is purged behind the worker's back).
//
// Lifecycle rules (see DESIGN.md §8):
//
//   - Acquire returns a LocalArena for the calling goroutine's
//     exclusive use; Release returns it. Acquire/Release must pair (the
//     eomlvet arenapair analyzer enforces this), typically via defer.
//   - A shard must never be shared across goroutines between Acquire
//     and Release, and never used after Release.
//   - A nil *ShardedArena degrades to nil shards and plain allocation,
//     mirroring the nil *Arena contract.
type ShardedArena struct {
	mu     sync.Mutex
	idle   []*LocalArena
	shards []*LocalArena // every shard ever created, for Stats
}

// NewShardedArena returns an empty sharded arena.
func NewShardedArena() *ShardedArena { return &ShardedArena{} }

// Acquire checks a shard out for the calling goroutine's exclusive use
// until Release. On a nil receiver it returns a nil *LocalArena, which
// degrades to plain allocation.
func (s *ShardedArena) Acquire() *LocalArena {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if l := len(s.idle); l > 0 {
		a := s.idle[l-1]
		s.idle[l-1] = nil
		s.idle = s.idle[:l-1]
		return a
	}
	a := NewLocal()
	s.shards = append(s.shards, a)
	return a
}

// Release checks a shard back in. Releasing nil (from a nil-receiver
// Acquire) is a no-op.
func (s *ShardedArena) Release(a *LocalArena) {
	if s == nil || a == nil {
		return
	}
	s.mu.Lock()
	s.idle = append(s.idle, a)
	s.mu.Unlock()
}

// Shards reports how many shards exist (peak checkout concurrency so
// far).
func (s *ShardedArena) Shards() int {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.shards)
}

// Stats sums Get calls, misses, and Puts over every shard.
func (s *ShardedArena) Stats() (gets, news, puts int64) {
	if s == nil {
		return 0, 0, 0
	}
	s.mu.Lock()
	shards := append([]*LocalArena(nil), s.shards...)
	s.mu.Unlock()
	for _, a := range shards {
		g, n, p := a.Stats()
		gets += g
		news += n
		puts += p
	}
	return gets, news, puts
}

// Instrument exports the aggregate hit/miss/outstanding counters of all
// shards to reg under the given arena label, using the same series the
// contended Arena exports. Safe on a nil arena or nil registry, and safe
// to call more than once for the same registry and label (batch + stream
// runs in one process): re-registering replaces the reader functions, so
// the series are never double-counted.
func (s *ShardedArena) Instrument(reg *metrics.Registry, name string) {
	if s == nil {
		return
	}
	l := metrics.L("arena", name)
	reg.CounterFunc("eoml_arena_hits_total",
		"Arena Gets served from the pool without allocating.",
		func() float64 { gets, news, _ := s.Stats(); return float64(gets - news) }, l)
	reg.CounterFunc("eoml_arena_misses_total",
		"Arena Gets that missed the pool and allocated.",
		func() float64 { _, news, _ := s.Stats(); return float64(news) }, l)
	reg.GaugeFunc("eoml_arena_outstanding",
		"Tensors handed out by Get and not yet returned by Put.",
		func() float64 { gets, _, puts := s.Stats(); return float64(gets - puts) }, l)
}
