package ricc

import (
	"fmt"

	"github.com/eoml/eoml/internal/cluster42"
	"github.com/eoml/eoml/internal/hdf"
)

// Save writes the model weights, normalizer, and configuration to an
// HDF-lite container.
func (m *Model) Save(path string) error {
	if m.Norm == nil {
		return fmt.Errorf("ricc: cannot save untrained model (no normalizer)")
	}
	f := hdf.NewFile()
	f.Attrs["kind"] = "ricc-model"
	f.Attrs["tile_size"] = int64(m.Cfg.TileSize)
	f.Attrs["channels"] = int64(m.Cfg.Channels)
	f.Attrs["latent_dim"] = int64(m.Cfg.LatentDim)
	f.Attrs["beta"] = m.Cfg.Beta
	f.Attrs["seed"] = m.Cfg.Seed
	for _, p := range m.Params() {
		d, err := hdf.NewFloat32(p.Name, p.W.Shape, p.W.Data)
		if err != nil {
			return err
		}
		if err := f.Add(d); err != nil {
			return err
		}
	}
	nb := len(m.Norm.Min)
	minD, err := hdf.NewFloat32("norm.min", []int{nb}, m.Norm.Min)
	if err != nil {
		return err
	}
	maxD, err := hdf.NewFloat32("norm.max", []int{nb}, m.Norm.Max)
	if err != nil {
		return err
	}
	if err := f.Add(minD); err != nil {
		return err
	}
	if err := f.Add(maxD); err != nil {
		return err
	}
	return hdf.WriteFile(path, f)
}

// Load reconstructs a model from a container written by Save.
func Load(path string) (*Model, error) {
	f, err := hdf.ReadFile(path)
	if err != nil {
		return nil, err
	}
	if kind, _ := f.AttrString("kind"); kind != "ricc-model" {
		return nil, fmt.Errorf("ricc: %s is not a RICC model file", path)
	}
	cfg := DefaultConfig()
	if v, ok := f.AttrInt("tile_size"); ok {
		cfg.TileSize = int(v)
	}
	if v, ok := f.AttrInt("channels"); ok {
		cfg.Channels = int(v)
	}
	if v, ok := f.AttrInt("latent_dim"); ok {
		cfg.LatentDim = int(v)
	}
	if v, ok := f.AttrFloat("beta"); ok {
		cfg.Beta = v
	}
	if v, ok := f.AttrInt("seed"); ok {
		cfg.Seed = v
	}
	m, err := NewModel(cfg)
	if err != nil {
		return nil, err
	}
	for _, p := range m.Params() {
		d, err := f.Dataset(p.Name)
		if err != nil {
			return nil, err
		}
		vals, err := d.Float32s()
		if err != nil {
			return nil, err
		}
		if len(vals) != p.W.Len() {
			return nil, fmt.Errorf("ricc: parameter %q has %d values, want %d", p.Name, len(vals), p.W.Len())
		}
		copy(p.W.Data, vals)
	}
	norm := &Normalizer{}
	for _, part := range []struct {
		name string
		dst  *[]float32
	}{{"norm.min", &norm.Min}, {"norm.max", &norm.Max}} {
		d, err := f.Dataset(part.name)
		if err != nil {
			return nil, err
		}
		vals, err := d.Float32s()
		if err != nil {
			return nil, err
		}
		*part.dst = vals
	}
	m.Norm = norm
	return m, nil
}

// Codebook is the fixed set of AICCA cluster centroids produced by the
// training pipeline and consumed by inference.
type Codebook struct {
	Centroids [][]float32
}

// BuildCodebook clusters latent vectors into k classes with Ward linkage
// and returns the resulting centroids.
func BuildCodebook(latents [][]float32, k int) (*Codebook, *cluster42.Result, error) {
	res, err := cluster42.Agglomerate(latents, k, cluster42.Ward)
	if err != nil {
		return nil, nil, err
	}
	return &Codebook{Centroids: res.Centroids}, res, nil
}

// Assign labels latent vectors by nearest centroid.
func (cb *Codebook) Assign(latents [][]float32) ([]int, error) {
	return cluster42.Assign(latents, cb.Centroids)
}

// Save writes the codebook to an HDF-lite container.
func (cb *Codebook) Save(path string) error {
	if len(cb.Centroids) == 0 {
		return fmt.Errorf("ricc: empty codebook")
	}
	k, dim := len(cb.Centroids), len(cb.Centroids[0])
	flat := make([]float32, 0, k*dim)
	for _, c := range cb.Centroids {
		if len(c) != dim {
			return fmt.Errorf("ricc: ragged codebook")
		}
		flat = append(flat, c...)
	}
	f := hdf.NewFile()
	f.Attrs["kind"] = "ricc-codebook"
	f.Attrs["classes"] = int64(k)
	d, err := hdf.NewFloat32("centroids", []int{k, dim}, flat)
	if err != nil {
		return err
	}
	if err := f.Add(d); err != nil {
		return err
	}
	return hdf.WriteFile(path, f)
}

// LoadCodebook reads a codebook container.
func LoadCodebook(path string) (*Codebook, error) {
	f, err := hdf.ReadFile(path)
	if err != nil {
		return nil, err
	}
	if kind, _ := f.AttrString("kind"); kind != "ricc-codebook" {
		return nil, fmt.Errorf("ricc: %s is not a codebook file", path)
	}
	d, err := f.Dataset("centroids")
	if err != nil {
		return nil, err
	}
	if len(d.Dims) != 2 {
		return nil, fmt.Errorf("ricc: centroids rank %d", len(d.Dims))
	}
	flat, err := d.Float32s()
	if err != nil {
		return nil, err
	}
	k, dim := d.Dims[0], d.Dims[1]
	cb := &Codebook{Centroids: make([][]float32, k)}
	for i := 0; i < k; i++ {
		cb.Centroids[i] = flat[i*dim : (i+1)*dim]
	}
	return cb, nil
}
