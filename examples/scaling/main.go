// Scaling study: capacity planning for petascale tokenization.
//
// The paper motivates its throughput measurements with "dynamic
// tokenization and sharding of petascale satellite data for distributed
// AI model training ... across thousands of GPUs". This example uses the
// calibrated discrete-event model of the Defiant cluster to answer the
// planner's questions: how do workers and nodes trade off, where does a
// node saturate, and how long would a full MODIS day — and a full year —
// of preprocessing take at various allocations?
//
//	go run ./examples/scaling
package main

import (
	"fmt"

	"github.com/eoml/eoml"
)

func main() {
	fmt.Println("== Strong and weak scaling of tile preprocessing (virtual Defiant) ==")
	fmt.Println()
	fmt.Print(eoml.ReproduceFig4())
	fmt.Println()
	fmt.Print(eoml.ReproduceFig5())
	fmt.Println()
	fmt.Print(eoml.ReproduceTable1())
	fmt.Println()
	fmt.Print(eoml.ReproduceHeadline())
	fmt.Println()

	// Planner's corollary: a MODIS day yields ≈12,000 ocean-cloud tiles.
	// At the measured 10-node rate (Table I, ≈270–330 tiles/s), a day
	// preprocesses in under a minute and a year in a few hours — the
	// "dynamic tokenization" feasibility argument of the paper's §I.
	const tilesPerDay = 12000.0
	const tenNodeRate = 270.0 // tiles/s, conservative Table I anchor
	secondsPerDay := tilesPerDay / tenNodeRate
	fmt.Printf("capacity plan: 1 day of MODIS ≈ %.0f s on 10 nodes; 1 year ≈ %.1f h; 24 years ≈ %.1f days\n",
		secondsPerDay, 365*secondsPerDay/3600, 24*365*secondsPerDay/86400)
}
