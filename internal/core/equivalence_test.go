package core

import (
	"context"
	"testing"
)

// TestRunAndRunStreamEquivalent drives the identical granule set
// through both execution modes and asserts the drivers — now thin
// compositions of the same stage objects — produce matching outcomes.
func TestRunAndRunStreamEquivalent(t *testing.T) {
	granules := findProductiveGranules(t, 3, 3)
	labeler := trainTestLabeler(t, granules[0])
	ts := newArchive(t)
	ctx := context.Background()

	batchCfg := testConfig(t, ts.URL, granules)
	batchPipe, err := New(batchCfg, labeler)
	if err != nil {
		t.Fatal(err)
	}
	batchRep, err := batchPipe.Run(ctx)
	if err != nil {
		t.Fatal(err)
	}

	streamCfg := testConfig(t, ts.URL, nil) // stream mode ignores cfg.Granules
	streamPipe, err := New(streamCfg, labeler)
	if err != nil {
		t.Fatal(err)
	}
	arrivals := make(chan int, len(granules))
	for _, idx := range granules {
		arrivals <- idx
	}
	close(arrivals)
	streamRep, err := streamPipe.RunStream(ctx, arrivals)
	if err != nil {
		t.Fatal(err)
	}

	if batchRep.GranulesRequested != streamRep.GranulesRequested {
		t.Errorf("granules: batch %d, stream %d", batchRep.GranulesRequested, streamRep.GranulesRequested)
	}
	if batchRep.FilesDownloaded != streamRep.FilesDownloaded {
		t.Errorf("downloads: batch %d, stream %d", batchRep.FilesDownloaded, streamRep.FilesDownloaded)
	}
	if batchRep.TileFiles != streamRep.TileFiles {
		t.Errorf("tile files: batch %d, stream %d", batchRep.TileFiles, streamRep.TileFiles)
	}
	if batchRep.TilesProduced != streamRep.TilesProduced {
		t.Errorf("tiles produced: batch %d, stream %d", batchRep.TilesProduced, streamRep.TilesProduced)
	}
	if batchRep.TilesLabeled != streamRep.TilesLabeled {
		t.Errorf("tiles labeled: batch %d, stream %d", batchRep.TilesLabeled, streamRep.TilesLabeled)
	}
	if batchRep.FilesShipped != streamRep.FilesShipped {
		t.Errorf("files shipped: batch %d, stream %d", batchRep.FilesShipped, streamRep.FilesShipped)
	}
	if batchRep.TilesLabeled == 0 || batchRep.FilesShipped == 0 {
		t.Fatalf("degenerate run: %s", batchRep.Summary())
	}
	if batchRep.FlowsFailed != 0 || streamRep.FlowsFailed != 0 {
		t.Errorf("flow failures: batch %d, stream %d", batchRep.FlowsFailed, streamRep.FlowsFailed)
	}
}
