package analysis

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// writeModule lays out a synthetic module under a temp dir: files maps
// module-relative paths to contents. Returns the module root.
func writeModule(t *testing.T, files map[string]string) string {
	t.Helper()
	root := t.TempDir()
	for rel, content := range files {
		path := filepath.Join(root, filepath.FromSlash(rel))
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return root
}

func TestNewLoaderMissingGoMod(t *testing.T) {
	root := t.TempDir()
	if _, err := NewLoader(root); err == nil {
		t.Fatal("NewLoader succeeded on a directory without go.mod")
	}
}

func TestNewLoaderMalformedGoMod(t *testing.T) {
	root := writeModule(t, map[string]string{
		"go.mod": "// no module line here\ngo 1.22\n",
	})
	_, err := NewLoader(root)
	if err == nil || !strings.Contains(err.Error(), "no module line") {
		t.Fatalf("err = %v, want a no-module-line error", err)
	}
}

func TestFindModuleRootNotFound(t *testing.T) {
	// A temp dir has no go.mod anywhere up to the filesystem root
	// (barring a pathological host); the walk must terminate with an
	// error instead of spinning at "/".
	if _, err := FindModuleRoot(t.TempDir()); err == nil {
		t.Skip("a go.mod exists above the temp dir on this host")
	}
}

func TestLoadDirSyntaxError(t *testing.T) {
	root := writeModule(t, map[string]string{
		"go.mod":      "module example.com/m\n\ngo 1.22\n",
		"broken/b.go": "package broken\n\nfunc f( {\n",
	})
	l, err := NewLoader(root)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := l.LoadDir(filepath.Join(root, "broken"), "example.com/m/broken"); err == nil {
		t.Fatal("LoadDir accepted a file that does not parse")
	}
}

func TestLoadDirTypeError(t *testing.T) {
	root := writeModule(t, map[string]string{
		"go.mod":   "module example.com/m\n\ngo 1.22\n",
		"bad/b.go": "package bad\n\nvar x int = \"not an int\"\n",
		"ok/ok.go": "package ok\n\nvar Y = 1\n",
	})
	l, err := NewLoader(root)
	if err != nil {
		t.Fatal(err)
	}
	_, err = l.LoadDir(filepath.Join(root, "bad"), "example.com/m/bad")
	if err == nil || !strings.Contains(err.Error(), "type-checking") {
		t.Fatalf("err = %v, want a type-checking error", err)
	}
	// A broken sibling must not poison the loader for healthy packages.
	if _, err := l.LoadDir(filepath.Join(root, "ok"), "example.com/m/ok"); err != nil {
		t.Fatalf("healthy package failed after a broken one: %v", err)
	}
}

func TestLoadDirImportCycle(t *testing.T) {
	root := writeModule(t, map[string]string{
		"go.mod": "module example.com/m\n\ngo 1.22\n",
		"a/a.go": "package a\n\nimport \"example.com/m/b\"\n\nvar X = b.Y\n",
		"b/b.go": "package b\n\nimport \"example.com/m/a\"\n\nvar Y = a.X\n",
	})
	l, err := NewLoader(root)
	if err != nil {
		t.Fatal(err)
	}
	_, err = l.LoadDir(filepath.Join(root, "a"), "example.com/m/a")
	if err == nil || !strings.Contains(err.Error(), "import cycle") {
		t.Fatalf("err = %v, want an import-cycle error", err)
	}
}

func TestLoadDirNoBuildableFiles(t *testing.T) {
	root := writeModule(t, map[string]string{
		"go.mod":            "module example.com/m\n\ngo 1.22\n",
		"empty/doc_test.go": "package empty\n",
	})
	l, err := NewLoader(root)
	if err != nil {
		t.Fatal(err)
	}
	_, err = l.LoadDir(filepath.Join(root, "empty"), "example.com/m/empty")
	if err == nil || !strings.Contains(err.Error(), "no buildable Go files") {
		t.Fatalf("err = %v, want a no-buildable-files error", err)
	}
}

func TestLoadAllSkipsAndSorts(t *testing.T) {
	root := writeModule(t, map[string]string{
		"go.mod":              "module example.com/m\n\ngo 1.22\n",
		"zeta/z.go":           "package zeta\n\nvar Z = 1\n",
		"alpha/a.go":          "package alpha\n\nvar A = 1\n",
		"alpha/testdata/t.go": "package ignored\n\nfunc bad( {\n", // never parsed
		".hidden/h.go":        "package hidden\n\nfunc bad( {\n",  // never parsed
		"_skip/s.go":          "package skip\n\nfunc bad( {\n",    // never parsed
		"docsonly/README.md":  "no Go files here\n",
		"alpha/a_test.go":     "package alpha\n\nfunc bad( {\n", // tests excluded
	})
	l, err := NewLoader(root)
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := l.LoadAll()
	if err != nil {
		t.Fatal(err)
	}
	var paths []string
	for _, p := range pkgs {
		paths = append(paths, p.Path)
	}
	want := []string{"example.com/m/alpha", "example.com/m/zeta"}
	if strings.Join(paths, " ") != strings.Join(want, " ") {
		t.Fatalf("LoadAll = %v, want %v", paths, want)
	}
}

func TestLoadAllSurfacesBrokenPackage(t *testing.T) {
	root := writeModule(t, map[string]string{
		"go.mod":      "module example.com/m\n\ngo 1.22\n",
		"ok/ok.go":    "package ok\n\nvar X = 1\n",
		"broken/b.go": "package broken\n\nvar x int = \"nope\"\n",
	})
	l, err := NewLoader(root)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := l.LoadAll(); err == nil {
		t.Fatal("LoadAll succeeded over a module with a type-broken package")
	}
}

func TestLoadDirCachesPackages(t *testing.T) {
	root := writeModule(t, map[string]string{
		"go.mod":    "module example.com/m\n\ngo 1.22\n",
		"dep/d.go":  "package dep\n\nvar D = 1\n",
		"top/t.go":  "package top\n\nimport \"example.com/m/dep\"\n\nvar T = dep.D\n",
		"side/s.go": "package side\n\nimport \"example.com/m/dep\"\n\nvar S = dep.D\n",
	})
	l, err := NewLoader(root)
	if err != nil {
		t.Fatal(err)
	}
	top, err := l.LoadDir(filepath.Join(root, "top"), "example.com/m/top")
	if err != nil {
		t.Fatal(err)
	}
	side, err := l.LoadDir(filepath.Join(root, "side"), "example.com/m/side")
	if err != nil {
		t.Fatal(err)
	}
	// Cross-package type identity: both importers must see the same
	// *types.Package for the shared dep, or facts keyed by types.Object
	// would silently stop matching across packages.
	depFromTop := top.Types.Imports()[0]
	depFromSide := side.Types.Imports()[0]
	if depFromTop != depFromSide {
		t.Fatal("shared dependency type-checked twice: type identity broken")
	}
}
