package laads

import (
	"context"
	"sync"
	"time"

	"github.com/eoml/eoml/internal/metrics"
)

// QuotaPool hands out per-tenant archive-request quotas. The multi-run
// engine owns one pool: every run submitted by a tenant draws from that
// tenant's token bucket, so N concurrent runs cannot multiply one
// tenant's request rate against the archive — the control-plane
// counterpart of the server's aggregate bandwidth shaping.
//
// A nil *QuotaPool, or one built with a non-positive rate, hands out nil
// *Quota values whose Acquire is a no-op, mirroring the nil *Registry
// convention so callers wire quotas unconditionally.
type QuotaPool struct {
	mu    sync.Mutex
	rate  float64 // requests per second per tenant
	burst float64
	// tenants maps tenant name to its bucket. guarded by mu
	tenants map[string]*Quota
	reg     *metrics.Registry
}

// NewQuotaPool builds a pool granting each tenant requestsPerSec with
// the given burst allowance (requests that may be issued back-to-back
// before the rate applies; burst < 1 is raised to 1). requestsPerSec <=
// 0 disables quotas: every Tenant call returns nil.
func NewQuotaPool(requestsPerSec float64, burst int) *QuotaPool {
	if requestsPerSec <= 0 {
		return nil
	}
	if burst < 1 {
		burst = 1
	}
	return &QuotaPool{rate: requestsPerSec, burst: float64(burst), tenants: map[string]*Quota{}}
}

// Instrument registers the pool's per-tenant wait histograms with reg.
// Tenants created before Instrument are re-registered; tenants created
// after register eagerly at creation.
func (p *QuotaPool) Instrument(reg *metrics.Registry) {
	if p == nil {
		return
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	p.reg = reg
	for name, q := range p.tenants {
		q.instrument(reg, name)
	}
}

// Tenant finds or creates the named tenant's quota. All runs of one
// tenant share the returned bucket.
func (p *QuotaPool) Tenant(name string) *Quota {
	if p == nil {
		return nil
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	q, ok := p.tenants[name]
	if !ok {
		q = &Quota{rate: p.rate, burst: p.burst, tokens: p.burst, last: time.Now()}
		q.instrument(p.reg, name)
		p.tenants[name] = q
	}
	return q
}

// Quota is one tenant's request token bucket: Acquire blocks until a
// request token is available or the context is cancelled. A nil *Quota
// admits everything immediately.
type Quota struct {
	mu sync.Mutex
	// rate is the refill rate in tokens per second. guarded by mu
	rate float64
	// burst caps the bucket. guarded by mu
	burst float64
	// tokens is the current budget. guarded by mu
	tokens float64
	// last is the previous refill instant. guarded by mu
	last time.Time
	wait *metrics.Histogram
}

// instrument registers the tenant's wait histogram; caller holds no
// lock ordering obligations (registry registration is idempotent).
func (q *Quota) instrument(reg *metrics.Registry, tenant string) {
	if reg == nil {
		return
	}
	q.mu.Lock()
	q.wait = reg.Histogram("eoml_laads_quota_wait_seconds",
		"Seconds each archive request waited on its tenant's request-rate quota.",
		metrics.DurationBuckets(), metrics.L("tenant", tenant))
	q.mu.Unlock()
}

// Acquire takes one request token, sleeping (context-aware) until the
// bucket refills enough. It returns ctx.Err() if the wait is cancelled.
func (q *Quota) Acquire(ctx context.Context) error {
	if q == nil {
		return nil
	}
	start := time.Now()
	for {
		q.mu.Lock()
		now := time.Now()
		q.tokens += now.Sub(q.last).Seconds() * q.rate
		q.last = now
		if q.tokens > q.burst {
			q.tokens = q.burst
		}
		if q.tokens >= 1 {
			q.tokens--
			wait := q.wait
			q.mu.Unlock()
			if wait != nil {
				wait.Observe(time.Since(start).Seconds())
			}
			return nil
		}
		// Size the wait under the lock: deficit and rate are guarded
		// state, and a delay computed from a torn read oversleeps.
		delay := time.Duration((1 - q.tokens) / q.rate * float64(time.Second))
		q.mu.Unlock()
		timer := time.NewTimer(delay)
		select {
		case <-ctx.Done():
			timer.Stop()
			return ctx.Err()
		case <-timer.C:
		}
	}
}
