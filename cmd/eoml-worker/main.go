// Command eoml-worker is one fleet worker process: it serves the
// tile-extraction and AICCA-labeling kernels on a local compute
// endpoint, registers that endpoint with a control plane started as
// `eoml serve -fleet`, heartbeats to stay live, and drains gracefully
// on SIGINT. Tasks arrive as granule *references* — shared-storage
// paths plus archive coordinates — never bytes, so a worker can run at
// another facility and fetch its own inputs.
//
//	eoml serve -addr localhost:8080 -fleet        # control plane
//	eoml-worker -coordinator http://localhost:8080
//	eoml-worker -coordinator http://localhost:8080 -slots 4
//	eoml-worker -coordinator http://localhost:8080 \
//	    -prefetch 4 -cache-dir /var/cache/eoml -cache-max-bytes 1073741824
//
// -prefetch overlaps archive fetch with compute (granule N+1..N+k
// stream in while N runs), and -cache-dir keeps fetched granules in a
// content-addressed on-disk cache so re-leases and repeat runs hit disk
// instead of the archive.
//
// Submit a run whose YAML declares `distribution: fleet` and the
// coordinator leases its preprocess and inference work to every
// registered worker.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"time"

	"github.com/eoml/eoml"
)

func main() {
	id := flag.String("id", "", "worker identity; default worker-<hostname>-<pid>")
	coordinator := flag.String("coordinator", "http://localhost:8080", "control-plane base URL hosting the /fleet/ membership API")
	listen := flag.String("listen", "127.0.0.1:0", "task endpoint listen address (0 = OS-assigned port)")
	advertise := flag.String("advertise", "", "endpoint URL to register instead of the listen address (NAT / multi-facility)")
	slots := flag.Int("slots", 1, "tasks this worker executes concurrently")
	taskTimeout := flag.Duration("task-timeout", 0, "per-task execution bound (0 = none)")
	prefetch := flag.Int("prefetch", 2, "granules fetched ahead of a free compute slot (0 = off); extends registered capacity by the same amount")
	cacheDir := flag.String("cache-dir", "", "content-addressed download cache directory (empty = caching off)")
	cacheMaxBytes := flag.Int64("cache-max-bytes", 0, "download cache size bound in bytes (0 = unbounded)")
	archiveRPS := flag.Float64("archive-rps", 0, "per-tenant archive request-rate quota in requests/s (0 = unlimited)")
	archiveBurst := flag.Int("archive-burst", 8, "per-tenant archive request burst when -archive-rps is set")
	flag.Parse()

	if *id == "" {
		host, err := os.Hostname()
		if err != nil {
			host = "unknown"
		}
		*id = fmt.Sprintf("worker-%s-%d", host, os.Getpid())
	}

	var quota *eoml.QuotaPool
	if *archiveRPS > 0 {
		quota = eoml.NewQuotaPool(*archiveRPS, *archiveBurst)
	}
	w, err := eoml.NewFleetWorker(eoml.FleetWorkerConfig{
		ID:             *id,
		CoordinatorURL: *coordinator,
		ListenAddr:     *listen,
		AdvertiseURL:   *advertise,
		Slots:          *slots,
		TaskTimeout:    *taskTimeout,
		PrefetchWindow: *prefetch,
		CacheDir:       *cacheDir,
		CacheMaxBytes:  *cacheMaxBytes,
		ArchiveQuota:   quota,
	})
	if err != nil {
		log.Fatalf("eoml-worker: %v", err)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	startCtx, cancel := context.WithTimeout(ctx, 30*time.Second)
	err = w.Start(startCtx)
	cancel()
	if err != nil {
		log.Fatalf("eoml-worker: %v", err)
	}
	fmt.Printf("eoml-worker: %s serving %d slot(s) on %s, registered with %s\n", *id, *slots, w.URL(), *coordinator)

	<-ctx.Done()
	fmt.Println("eoml-worker: draining")
	w.Stop()
}
