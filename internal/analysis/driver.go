package analysis

import (
	"go/token"
	"sort"
	"strings"
)

// DefaultAnalyzers returns the full eomlvet suite in reporting order:
// the syntactic per-package checks first, then the interprocedural
// call-graph checks (lockguard, ctxflow, locksleep).
func DefaultAnalyzers() []*Analyzer {
	return []*Analyzer{
		CtxSend,
		SleepPoll,
		LoneGoroutine,
		CloseCheck,
		ArenaPair,
		SpanPair,
		PkgDoc,
		LockGuard,
		CtxFlow,
		LockSleep,
	}
}

// internalOnly scopes a check to library code under internal/.
func internalOnly(pkgPath string) bool {
	return strings.Contains(pkgPath, "/internal/")
}

// pathSuffixAny scopes a check to packages whose import path ends in one
// of the given suffixes.
func pathSuffixAny(suffixes ...string) func(string) bool {
	return func(pkgPath string) bool {
		for _, s := range suffixes {
			if strings.HasSuffix(pkgPath, s) {
				return true
			}
		}
		return false
	}
}

// RunModule loads every package in the module rooted at moduleDir and
// runs the analyzers over it, honoring each analyzer's path scope and
// the in-code ignore directives. The returned diagnostics are sorted by
// position with paths relative to the module root; an empty slice means
// the tree holds every invariant.
func RunModule(moduleDir string, analyzers []*Analyzer) ([]Diagnostic, error) {
	loader, err := NewLoader(moduleDir)
	if err != nil {
		return nil, err
	}
	pkgs, err := loader.LoadAll()
	if err != nil {
		return nil, err
	}
	known := map[string]bool{}
	hasModuleAnalyzer := false
	for _, a := range analyzers {
		known[a.Name] = true
		if a.RunModule != nil {
			hasModuleAnalyzer = true
		}
	}
	var all []Diagnostic
	for _, pkg := range pkgs {
		for _, a := range analyzers {
			if a.Run == nil || (a.AppliesTo != nil && !a.AppliesTo(pkg.Path)) {
				continue
			}
			all = append(all, RunAnalyzer(a, loader.Fset, pkg)...)
		}
	}
	// Interprocedural analyzers share one call graph and fact store over
	// the whole module; their AppliesTo bounds reporting, not analysis.
	if hasModuleAnalyzer {
		graph := BuildCallGraph(loader.Fset, pkgs)
		facts := ComputeFacts(graph)
		for _, a := range analyzers {
			if a.RunModule == nil {
				continue
			}
			all = append(all, runModulePass(a, loader.Fset, pkgs, graph, facts, a.AppliesTo)...)
		}
	}
	// Ignore directives are collected module-wide and applied once, so a
	// directive satisfied by an interprocedural finding is not reported
	// stale by the per-package pass (and vice versa).
	var directives []*ignoreDirective
	for _, pkg := range pkgs {
		directives = append(directives, collectIgnores(loader.Fset, pkg.Files)...)
	}
	all = applyIgnores(all, directives, known)
	for i := range all {
		if rel, ok := strings.CutPrefix(all[i].Pos.Filename, moduleDir+"/"); ok {
			all[i].Pos.Filename = rel
		}
	}
	sort.Slice(all, func(i, j int) bool {
		a, b := all[i], all[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Check < b.Check
	})
	return all, nil
}

// RunAnalyzer runs one analyzer over one loaded package, ignoring the
// analyzer's path scope (the caller owns scoping decisions).
func RunAnalyzer(a *Analyzer, fset *token.FileSet, pkg *Package) []Diagnostic {
	var out []Diagnostic
	pass := &Pass{
		Fset:   fset,
		Files:  pkg.Files,
		Pkg:    pkg.Types,
		Info:   pkg.Info,
		check:  a.Name,
		report: func(d Diagnostic) { out = append(out, d) },
	}
	a.Run(pass)
	return out
}

// RunModuleAnalyzer runs one interprocedural analyzer over a package
// set with a freshly built call graph and fact store, ignoring the
// analyzer's path scope (the caller owns scoping decisions). The
// driver path (RunModule) shares one graph across analyzers instead.
func RunModuleAnalyzer(a *Analyzer, fset *token.FileSet, pkgs []*Package) []Diagnostic {
	graph := BuildCallGraph(fset, pkgs)
	return runModulePass(a, fset, pkgs, graph, ComputeFacts(graph), nil)
}

func runModulePass(a *Analyzer, fset *token.FileSet, pkgs []*Package, graph *CallGraph, facts *Facts, scope func(string) bool) []Diagnostic {
	var out []Diagnostic
	pass := &ModulePass{
		Fset:   fset,
		Pkgs:   pkgs,
		Graph:  graph,
		Facts:  facts,
		check:  a.Name,
		scope:  scope,
		report: func(d Diagnostic) { out = append(out, d) },
	}
	a.RunModule(pass)
	return out
}
