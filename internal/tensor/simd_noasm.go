//go:build !amd64

package tensor

// SIMDEnabled reports whether the vector kernels are active; on
// non-amd64 platforms the scalar fallbacks are always used.
func SIMDEnabled() bool { return false }

func axpy(alpha float32, x, y []float32) { axpyGeneric(alpha, x, y) }

func dot(x, y []float32) float32 { return dotGeneric(x, y) }

func dotQ8x4(x, w []int8, out *[4]int32) { dotQ8x4Generic(x, w, out) }

func maxAbs(x []float32) float32 { return maxAbsGeneric(x) }

func quantizeSpan(dst []int8, src []float32, inv float32) { quantizeGeneric(dst, src, inv) }
