package tensor

import (
	"math/rand"
	"testing"
)

// Lengths straddle every unroll boundary in the assembly: scalar tail
// only, one 8-wide group, the 32-wide body, and combinations.
var simdLens = []int{0, 1, 2, 3, 7, 8, 9, 15, 16, 17, 31, 32, 33, 63, 64, 100, 255, 256, 1000}

func TestAxpyMatchesGeneric(t *testing.T) {
	r := rand.New(rand.NewSource(31))
	for _, n := range simdLens {
		x := make([]float32, n)
		y := make([]float32, n)
		want := make([]float32, n)
		for i := range x {
			x[i] = float32(r.NormFloat64())
			y[i] = float32(r.NormFloat64())
			want[i] = y[i]
		}
		alpha := float32(r.NormFloat64())
		axpyGeneric(alpha, x, want)
		axpy(alpha, x, y)
		for i := range y {
			if !close32(y[i], want[i], 1e-6) {
				t.Fatalf("axpy n=%d: [%d] = %g, want %g", n, i, y[i], want[i])
			}
		}
	}
}

func TestDotMatchesGeneric(t *testing.T) {
	r := rand.New(rand.NewSource(32))
	for _, n := range simdLens {
		x := make([]float32, n)
		y := make([]float32, n)
		for i := range x {
			x[i] = float32(r.NormFloat64())
			y[i] = float32(r.NormFloat64())
		}
		want := dotGeneric(x, y)
		got := dot(x, y)
		if !close32(got, want, 1e-5) {
			t.Fatalf("dot n=%d: %g, want %g", n, got, want)
		}
	}
}
