// Package fleet is the real multi-process distribution layer: a
// coordinator that leases preprocessing and inference tasks to a pool
// of worker processes (cmd/eoml-worker) over the compute fabric's HTTP
// transport. Workers register their endpoint URL with the coordinator,
// send heartbeats, and execute tasks that ship granule *references* —
// paths on shared storage plus archive credentials for workers without
// one — never granule bytes. The coordinator provides what the paper's
// multi-facility setting demands of a scheduler: per-worker in-flight
// bounds, lease + requeue when a worker's heartbeats stop, speculative
// work stealing from stragglers (safe because every kernel writes its
// output atomically and deterministically, so a duplicated task is
// idempotent), and elastic scale-out/in hints mirroring internal/parsl
// block allocation.
package fleet

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"github.com/eoml/eoml/internal/compute"
	"github.com/eoml/eoml/internal/metrics"
)

// Transport executes one task on a worker endpoint and blocks until the
// task finishes. A returned *TaskError means the task function itself
// failed (fatal for the task); any other error is a transport failure
// (worker unreachable, endpoint draining) and the coordinator requeues
// the lease.
type Transport interface {
	Run(ctx context.Context, workerURL, function string, args map[string]any) (any, error)
}

// TaskSpec names one task of a batched lease.
type TaskSpec struct {
	Function string
	Args     map[string]any
}

// TaskResult is one task's outcome within a batched lease: Err nil on
// success, a *TaskError when the task function itself failed, anything
// else a per-task transport failure.
type TaskResult struct {
	Result any
	Err    error
}

// BatchTransport executes a whole lease batch on one worker endpoint —
// one submit round-trip carrying every task, one poll stream collecting
// every result — and blocks until all of them settle. The returned
// slice matches specs by index. A non-nil error is a batch-level
// transport failure (worker unreachable, endpoint draining): no
// per-task outcomes are known and the coordinator requeues every lease.
// Transports that also implement this interface get batched dispatch;
// plain Transports fall back to one Run call per task.
type BatchTransport interface {
	Transport
	RunBatch(ctx context.Context, workerURL string, specs []TaskSpec) ([]TaskResult, error)
}

// TaskError marks a failure reported by the task function itself, as
// opposed to a failure reaching the worker. Retrying deterministic
// kernels cannot fix it, so the coordinator fails the task immediately.
type TaskError struct{ Msg string }

func (e *TaskError) Error() string { return e.Msg }

// Scaler receives the coordinator's elastic provisioning hints, the
// counterpart of internal/parsl's block Provider: ScaleOut when the
// backlog exceeds fleet capacity, ScaleIn when workers sit idle. Both
// are hints — the scaler owns the actual worker lifecycle. Calls are
// made outside the coordinator's lock and may block briefly.
type Scaler interface {
	// ScaleOut reports that `backlog` pending tasks have no free worker
	// slot to run on.
	ScaleOut(backlog int)
	// ScaleIn reports workers that have been idle past the configured
	// retirement age and may be shut down.
	ScaleIn(ids []string)
}

// Config tunes a Coordinator.
type Config struct {
	// HeartbeatTimeout evicts a worker whose last heartbeat is older
	// than this; its uncompleted leases are requeued. Default 3s.
	HeartbeatTimeout time.Duration
	// SweepEvery is the period of the background liveness/steal/scale
	// sweep started by Start. Default HeartbeatTimeout/4.
	SweepEvery time.Duration
	// MaxAttempts bounds dispatches per task (first try + requeues).
	// Default 3.
	MaxAttempts int
	// StealAfter lets an idle worker duplicate ("steal") a lease that
	// has been outstanding on another worker for longer than this; the
	// first result wins and the loser is discarded. Kernels write
	// atomically and deterministically, so duplication is safe.
	// 0 means the default 10s; negative disables stealing.
	StealAfter time.Duration
	// IdleRetireAfter is how long a worker must be idle before the
	// coordinator hints ScaleIn for it; 0 disables the hint.
	IdleRetireAfter time.Duration
	// LeaseBatch caps how many pending tasks one dispatch leases to a
	// worker in a single transport round-trip (when the Transport also
	// implements BatchTransport). Default 8; 1 disables batching.
	LeaseBatch int
	// Transport executes tasks on workers; default is the compute HTTP
	// transport.
	Transport Transport
	// Scaler, when set, receives elastic provisioning hints.
	Scaler Scaler
	// Clock replaces the time source (tests). Default time.Now.
	Clock func() time.Time
}

func (c Config) withDefaults() Config {
	if c.HeartbeatTimeout <= 0 {
		c.HeartbeatTimeout = 3 * time.Second
	}
	if c.SweepEvery <= 0 {
		c.SweepEvery = c.HeartbeatTimeout / 4
	}
	if c.MaxAttempts <= 0 {
		c.MaxAttempts = 3
	}
	if c.StealAfter == 0 {
		c.StealAfter = 10 * time.Second
	}
	if c.LeaseBatch <= 0 {
		c.LeaseBatch = 8
	}
	if c.Transport == nil {
		c.Transport = NewHTTPTransport()
	}
	if c.Clock == nil {
		c.Clock = time.Now
	}
	return c
}

// worker is the coordinator's view of one registered worker process.
type worker struct {
	id  string
	url string
	// capacity bounds in-flight leases on this worker. guarded by mu
	capacity int
	// lastBeat is the most recent registration or heartbeat. guarded by mu
	lastBeat time.Time
	// inflight counts leases currently executing there. guarded by mu
	inflight int
	// idleSince is when inflight last dropped to zero. guarded by mu
	idleSince time.Time
	// retireHinted records that ScaleIn already named this worker, so
	// sweeps do not nag the scaler every period. guarded by mu
	retireHinted bool
}

// task is one unit of leased work.
type task struct {
	id   string
	fn   string
	args map[string]any
	fut  *Future
	// ctx is the submitter's context, additionally canceled when the
	// coordinator closes.
	ctx    context.Context
	cancel context.CancelFunc
	detach func() bool // releases the coordinator-close AfterFunc
	// attempts counts dispatches (incremented at lease). guarded by mu
	attempts int
	// done marks the first completion; later results are discarded —
	// the dedupe that makes lease requeue and stealing label nothing
	// twice. guarded by mu
	done bool
	// stolen marks that a speculative duplicate was dispatched, so a
	// task is stolen at most once. guarded by mu
	stolen bool
	// leasedAt is the most recent dispatch instant. guarded by mu
	leasedAt time.Time
	// assigned holds the worker IDs currently executing this task
	// (primary lease plus at most one steal). guarded by mu
	assigned map[string]bool
}

// Future is the submitter's handle to a fleet task.
type Future struct {
	// TaskID is the coordinator-assigned task identity.
	TaskID string

	mu     sync.Mutex
	result any
	err    error
	done   chan struct{}
}

// Get blocks until the task completes or ctx is canceled.
func (f *Future) Get(ctx context.Context) (any, error) {
	select {
	case <-f.done:
		f.mu.Lock()
		defer f.mu.Unlock()
		return f.result, f.err
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

// Done returns a channel closed when the task completes.
func (f *Future) Done() <-chan struct{} { return f.done }

func (f *Future) complete(result any, err error) {
	f.mu.Lock()
	f.result, f.err = result, err
	f.mu.Unlock()
	close(f.done)
}

// Coordinator leases tasks to registered workers. Construct with
// NewCoordinator, optionally Start the background sweep, Submit tasks,
// and Close to unwind.
type Coordinator struct {
	cfg Config

	base       context.Context
	baseCancel context.CancelFunc

	mu sync.Mutex
	// workers maps worker ID to its record. guarded by mu
	workers map[string]*worker
	// pending is the FIFO dispatch queue. guarded by mu
	pending []*task
	// leased holds every task with at least one live lease. guarded by mu
	leased map[string]*task
	// nextID numbers tasks. guarded by mu
	nextID int
	// closed rejects further submissions. guarded by mu
	closed bool

	wg     sync.WaitGroup // execute goroutines
	loopWG sync.WaitGroup // Start's sweep loop

	// Monotonic counters, exposed via Instrument.
	submitted atomic.Int64
	completed atomic.Int64
	failed    atomic.Int64
	requeued  atomic.Int64
	stolen    atomic.Int64
	evicted   atomic.Int64

	// Batch-size histograms, non-nil once Instrument runs. Written via
	// atomic pointer loads because dispatch runs concurrently with
	// Instrument in tests.
	leaseBatchHist  atomic.Pointer[metrics.Histogram]
	resultBatchHist atomic.Pointer[metrics.Histogram]
}

// NewCoordinator builds a coordinator.
func NewCoordinator(cfg Config) *Coordinator {
	base, cancel := context.WithCancel(context.Background())
	return &Coordinator{
		cfg:        cfg.withDefaults(),
		base:       base,
		baseCancel: cancel,
		workers:    map[string]*worker{},
		leased:     map[string]*task{},
	}
}

// Instrument registers the eoml_fleet_* series on reg. Safe to call
// once per registry.
func (c *Coordinator) Instrument(reg *metrics.Registry) {
	reg.GaugeFunc("eoml_fleet_workers",
		"Worker processes currently registered and live.",
		func() float64 { c.mu.Lock(); defer c.mu.Unlock(); return float64(len(c.workers)) })
	reg.GaugeFunc("eoml_fleet_tasks_pending",
		"Tasks queued at the coordinator awaiting a free worker slot.",
		func() float64 { c.mu.Lock(); defer c.mu.Unlock(); return float64(len(c.pending)) })
	reg.GaugeFunc("eoml_fleet_tasks_inflight",
		"Leases currently executing across all workers (steals count).",
		func() float64 {
			c.mu.Lock()
			defer c.mu.Unlock()
			n := 0
			for _, w := range c.workers {
				n += w.inflight
			}
			return float64(n)
		})
	reg.CounterFunc("eoml_fleet_tasks_submitted_total",
		"Tasks accepted by Submit.", func() float64 { return float64(c.submitted.Load()) })
	reg.CounterFunc("eoml_fleet_tasks_completed_total",
		"Tasks that delivered a successful result (each counted once).",
		func() float64 { return float64(c.completed.Load()) })
	reg.CounterFunc("eoml_fleet_tasks_failed_total",
		"Tasks that failed terminally (task error, cancellation, or attempts exhausted).",
		func() float64 { return float64(c.failed.Load()) })
	reg.CounterFunc("eoml_fleet_tasks_requeued_total",
		"Leases returned to the queue after a transport failure, drain rejection, or worker eviction.",
		func() float64 { return float64(c.requeued.Load()) })
	reg.CounterFunc("eoml_fleet_tasks_stolen_total",
		"Speculative duplicate leases dispatched to idle workers from stragglers.",
		func() float64 { return float64(c.stolen.Load()) })
	reg.CounterFunc("eoml_fleet_workers_evicted_total",
		"Workers evicted after missing their heartbeat budget or failing a transport call.",
		func() float64 { return float64(c.evicted.Load()) })
	sizeBuckets := []float64{1, 2, 4, 8, 16, 32}
	c.leaseBatchHist.Store(reg.Histogram("eoml_fleet_lease_batch_size",
		"Tasks leased to one worker per batched dispatch round-trip.", sizeBuckets))
	c.resultBatchHist.Store(reg.Histogram("eoml_fleet_result_batch_size",
		"Task results collected from one worker per batched poll round-trip.", sizeBuckets))
}

// Register adds a worker (or refreshes its URL/capacity) and counts as
// a heartbeat. capacity <= 0 defaults to 1.
func (c *Coordinator) Register(id, url string, capacity int) error {
	if id == "" || url == "" {
		return fmt.Errorf("fleet: register needs a worker id and url")
	}
	if capacity <= 0 {
		capacity = 1
	}
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return fmt.Errorf("fleet: coordinator closed")
	}
	w, ok := c.workers[id]
	if !ok {
		now := c.cfg.Clock()
		w = &worker{id: id, idleSince: now}
		c.workers[id] = w
	}
	w.url = url
	w.capacity = capacity
	w.lastBeat = c.cfg.Clock()
	w.retireHinted = false
	c.dispatchLocked()
	c.mu.Unlock()
	return nil
}

// Heartbeat refreshes a worker's liveness; false means the worker is
// unknown (evicted or never registered) and should re-register.
func (c *Coordinator) Heartbeat(id string) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	w, ok := c.workers[id]
	if !ok {
		return false
	}
	w.lastBeat = c.cfg.Clock()
	return true
}

// Deregister removes a worker gracefully. In-flight leases are left to
// finish; if the worker's endpoint is already gone their transport
// calls fail and the leases requeue.
func (c *Coordinator) Deregister(id string) {
	c.mu.Lock()
	delete(c.workers, id)
	c.mu.Unlock()
}

// WorkerStatus is one worker's row in Workers().
type WorkerStatus struct {
	ID            string  `json:"id"`
	URL           string  `json:"url"`
	Capacity      int     `json:"capacity"`
	InFlight      int     `json:"in_flight"`
	SinceBeatSecs float64 `json:"since_beat_seconds"`
}

// Workers reports the live worker set, sorted by ID.
func (c *Coordinator) Workers() []WorkerStatus {
	c.mu.Lock()
	defer c.mu.Unlock()
	now := c.cfg.Clock()
	out := make([]WorkerStatus, 0, len(c.workers))
	for _, w := range c.workers {
		out = append(out, WorkerStatus{
			ID: w.id, URL: w.url, Capacity: w.capacity, InFlight: w.inflight,
			SinceBeatSecs: now.Sub(w.lastBeat).Seconds(),
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// Submit enqueues one task for the named worker function and returns
// its future. The task runs under ctx: canceling it fails the task
// (and aborts its in-flight leases) rather than requeueing it.
func (c *Coordinator) Submit(ctx context.Context, function string, args map[string]any) (*Future, error) {
	if function == "" {
		return nil, fmt.Errorf("fleet: submit needs a function name")
	}
	tctx, tcancel := context.WithCancel(ctx)
	detach := context.AfterFunc(c.base, tcancel)
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		detach()
		tcancel()
		return nil, fmt.Errorf("fleet: coordinator closed")
	}
	c.nextID++
	id := fmt.Sprintf("fleet-task-%06d", c.nextID)
	t := &task{
		id: id, fn: function, args: args,
		fut:    &Future{TaskID: id, done: make(chan struct{})},
		ctx:    tctx,
		cancel: tcancel,
		detach: detach,
		// assigned is allocated at first lease.
	}
	c.submitted.Add(1)
	c.pending = append(c.pending, t)
	c.dispatchLocked()
	c.mu.Unlock()
	return t.fut, nil
}

// Start launches the periodic sweep (heartbeat eviction, stealing,
// scale hints) until ctx is done or Close is called. Tests that use a
// fake clock skip Start and call Sweep directly.
func (c *Coordinator) Start(ctx context.Context) {
	c.loopWG.Add(1)
	go func() {
		defer c.loopWG.Done()
		ticker := time.NewTicker(c.cfg.SweepEvery)
		defer ticker.Stop()
		for {
			select {
			case <-ctx.Done():
				return
			case <-c.base.Done():
				return
			case <-ticker.C:
				c.Sweep()
			}
		}
	}()
}

// Close rejects further submissions, cancels every task context (which
// aborts in-flight transport calls), fails still-queued tasks, and
// joins all goroutines.
func (c *Coordinator) Close() {
	c.mu.Lock()
	c.closed = true
	c.mu.Unlock()
	c.baseCancel()
	c.mu.Lock()
	for _, t := range c.pending {
		c.completeLocked(t, nil, fmt.Errorf("fleet: coordinator closed"))
	}
	c.pending = nil
	c.mu.Unlock()
	c.loopWG.Wait()
	c.wg.Wait()
}

// Sweep runs one liveness pass: evict workers past their heartbeat
// budget (requeueing their leases), dispatch, steal from stragglers,
// and emit scale hints. Start calls this periodically; tests call it
// directly after advancing a fake clock.
func (c *Coordinator) Sweep() {
	now := c.cfg.Clock()
	var hint scaleHint
	c.mu.Lock()
	for id, w := range c.workers {
		if now.Sub(w.lastBeat) <= c.cfg.HeartbeatTimeout {
			continue
		}
		c.evictLocked(id, fmt.Errorf("worker %s evicted (heartbeat lost)", id))
	}
	c.dispatchLocked()
	c.stealLocked(now)
	hint = c.scaleHintLocked(now)
	c.mu.Unlock()
	c.applyScale(hint)
}

// evictLocked removes a worker and requeues its sole-assigned leases.
// The zombie execute goroutines still blocked on its transport calls
// find their lease revoked when they return and discard everything
// except a successful result, so nothing completes twice.
func (c *Coordinator) evictLocked(id string, cause error) {
	if _, ok := c.workers[id]; !ok {
		return
	}
	delete(c.workers, id)
	c.evicted.Add(1)
	for _, t := range c.leased {
		if !t.assigned[id] {
			continue
		}
		delete(t.assigned, id)
		if !t.done && len(t.assigned) == 0 {
			delete(c.leased, t.id)
			c.requeueLocked(t, cause)
		}
	}
}

// requeueLocked puts a revoked lease back at the front of the queue,
// or fails the task when its attempt budget is spent.
func (c *Coordinator) requeueLocked(t *task, cause error) {
	if t.done {
		return
	}
	if t.attempts >= c.cfg.MaxAttempts {
		c.completeLocked(t, nil, fmt.Errorf("fleet: task %s failed after %d attempts: %w", t.id, t.attempts, cause))
		return
	}
	c.requeued.Add(1)
	c.pending = append([]*task{t}, c.pending...)
}

// completeLocked delivers the task's first (and only) outcome.
func (c *Coordinator) completeLocked(t *task, result any, err error) {
	if t.done {
		return
	}
	t.done = true
	delete(c.leased, t.id)
	if err != nil {
		c.failed.Add(1)
	} else {
		c.completed.Add(1)
	}
	// Cancel the task context: any straggler duplicate still executing
	// aborts its transport call instead of wasting the worker.
	t.detach()
	t.cancel()
	t.fut.complete(result, err)
}

// dispatchLocked assigns pending tasks to the least-loaded workers
// with free capacity. When the transport supports batching, one
// round-trip carries up to LeaseBatch tasks (bounded by the worker's
// free capacity) instead of one — the RPC-overhead collapse that
// matters for small-granule workloads.
func (c *Coordinator) dispatchLocked() {
	now := c.cfg.Clock()
	bt, batching := c.cfg.Transport.(BatchTransport)
	for len(c.pending) > 0 {
		w := c.pickWorkerLocked(nil)
		if w == nil {
			return
		}
		limit := 1
		if batching {
			limit = c.cfg.LeaseBatch
			if free := w.capacity - w.inflight; free < limit {
				limit = free
			}
			// Fair-share bound: a backlog shallower than the fleet's free
			// capacity must spread across workers, not pile onto the first
			// pick — otherwise a full-batch lease serializes a small run on
			// one worker and strong scaling collapses. Deep backlogs still
			// lease whole batches.
			freeWorkers := 0
			for _, o := range c.workers {
				if o.inflight < o.capacity {
					freeWorkers++
				}
			}
			if fair := (len(c.pending) + freeWorkers - 1) / freeWorkers; fair < limit {
				limit = fair
			}
		}
		var batch []*task
		for len(c.pending) > 0 && len(batch) < limit {
			t := c.pending[0]
			c.pending = c.pending[1:]
			if t.done {
				continue
			}
			if t.ctx.Err() != nil {
				c.completeLocked(t, nil, t.ctx.Err())
				continue
			}
			batch = append(batch, t)
		}
		if len(batch) == 0 {
			return
		}
		if h := c.leaseBatchHist.Load(); h != nil {
			h.Observe(float64(len(batch)))
		}
		if batching && len(batch) > 1 {
			c.leaseBatchLocked(batch, w, now, bt)
			continue
		}
		c.leaseLocked(batch[0], w, now)
	}
}

// pickWorkerLocked returns the live worker with the lowest in-flight
// count that still has free capacity (ties broken by ID for
// determinism), or nil. A non-nil exclude set skips those workers.
func (c *Coordinator) pickWorkerLocked(exclude map[string]bool) *worker {
	var best *worker
	for _, w := range c.workers {
		if w.inflight >= w.capacity || exclude[w.id] {
			continue
		}
		if best == nil || w.inflight < best.inflight || (w.inflight == best.inflight && w.id < best.id) {
			best = w
		}
	}
	return best
}

// leaseLocked records the lease and launches its execute goroutine.
func (c *Coordinator) leaseLocked(t *task, w *worker, now time.Time) {
	t.attempts++
	t.leasedAt = now
	if t.assigned == nil {
		t.assigned = map[string]bool{}
	}
	t.assigned[w.id] = true
	c.leased[t.id] = t
	w.inflight++
	w.retireHinted = false
	c.wg.Add(1)
	go c.execute(t, w)
}

// execute runs one lease to completion on the worker and folds the
// outcome back into the coordinator state.
func (c *Coordinator) execute(t *task, w *worker) {
	defer c.wg.Done()
	result, err := c.cfg.Transport.Run(t.ctx, w.url, t.fn, t.args)

	c.mu.Lock()
	w.inflight--
	if w.inflight == 0 {
		w.idleSince = c.cfg.Clock()
	}
	mine := t.assigned[w.id]
	delete(t.assigned, w.id)
	if len(t.assigned) == 0 {
		delete(c.leased, t.id)
	}
	var taskErr *TaskError
	switch {
	case t.done:
		// A duplicate (steal loser) or post-eviction zombie: discard.
	case err == nil:
		// Success always wins, even from a revoked lease — the work is
		// done and atomic, so deliver it.
		c.completeLocked(t, result, nil)
	case !mine:
		// Lease revoked by eviction, which already requeued the task;
		// this goroutine's failure is stale news.
	case t.ctx.Err() != nil:
		c.completeLocked(t, nil, t.ctx.Err())
	case errors.As(err, &taskErr):
		// The task function itself failed; kernels are deterministic,
		// so retrying elsewhere cannot help.
		c.completeLocked(t, nil, err)
	default:
		// Transport failure: requeue the lease. A non-drain failure
		// (connection refused, poll error) is strong evidence the
		// worker process died, so evict it now instead of waiting out
		// its heartbeat budget; a draining worker is shutting down
		// cleanly and deregisters itself.
		c.requeueLocked(t, err)
		if !errors.Is(err, compute.ErrDraining) {
			c.evictLocked(w.id, err)
		}
	}
	c.dispatchLocked()
	c.mu.Unlock()
}

// leaseBatchLocked records one lease per batch task and launches the
// shared executeBatch goroutine.
func (c *Coordinator) leaseBatchLocked(ts []*task, w *worker, now time.Time, bt BatchTransport) {
	for _, t := range ts {
		t.attempts++
		t.leasedAt = now
		if t.assigned == nil {
			t.assigned = map[string]bool{}
		}
		t.assigned[w.id] = true
		c.leased[t.id] = t
	}
	w.inflight += len(ts)
	w.retireHinted = false
	c.wg.Add(1)
	go c.executeBatch(ts, w, bt)
}

// executeBatch runs one lease batch to completion on the worker and
// folds every task's outcome back into the coordinator state — the
// batched mirror of execute, with the same per-task case order. The
// batch runs under the coordinator's base context rather than any one
// task's: canceling a single submitter context cannot abort a shared
// round-trip, so a canceled task's lease is settled at fold time
// instead (success still wins; otherwise the cancellation is
// delivered).
func (c *Coordinator) executeBatch(ts []*task, w *worker, bt BatchTransport) {
	defer c.wg.Done()
	specs := make([]TaskSpec, len(ts))
	for i, t := range ts {
		specs[i] = TaskSpec{Function: t.fn, Args: t.args}
	}
	results, err := bt.RunBatch(c.base, w.url, specs)
	if err == nil && len(results) != len(ts) {
		err = fmt.Errorf("fleet: batch transport returned %d results for %d tasks", len(results), len(ts))
	}

	c.mu.Lock()
	w.inflight -= len(ts)
	if w.inflight == 0 {
		w.idleSince = c.cfg.Clock()
	}
	if err == nil {
		if h := c.resultBatchHist.Load(); h != nil {
			h.Observe(float64(len(results)))
		}
	}
	var evictCause error
	for i, t := range ts {
		mine := t.assigned[w.id]
		delete(t.assigned, w.id)
		if len(t.assigned) == 0 {
			delete(c.leased, t.id)
		}
		var r TaskResult
		if err != nil {
			r = TaskResult{Err: err}
		} else {
			r = results[i]
		}
		var taskErr *TaskError
		switch {
		case t.done:
			// A duplicate (steal loser) or post-eviction zombie: discard.
		case r.Err == nil:
			// Success always wins, even from a revoked lease.
			c.completeLocked(t, r.Result, nil)
		case !mine:
			// Lease revoked by eviction, which already requeued the task.
		case t.ctx.Err() != nil:
			c.completeLocked(t, nil, t.ctx.Err())
		case errors.As(r.Err, &taskErr):
			c.completeLocked(t, nil, r.Err)
		default:
			c.requeueLocked(t, r.Err)
			if !errors.Is(r.Err, compute.ErrDraining) {
				evictCause = r.Err
			}
		}
	}
	if evictCause != nil {
		// Same judgment as execute: a non-drain transport failure means
		// the worker process is likely dead. Evicted after the fold so
		// every batch member settles exactly once.
		c.evictLocked(w.id, evictCause)
	}
	c.dispatchLocked()
	c.mu.Unlock()
}

// stealLocked dispatches speculative duplicates of stale leases to
// idle capacity. Each task is stolen at most once; the first result
// wins and completeLocked discards the loser.
func (c *Coordinator) stealLocked(now time.Time) {
	if c.cfg.StealAfter < 0 || len(c.pending) > 0 {
		return
	}
	for _, t := range c.leased {
		if t.done || t.stolen || now.Sub(t.leasedAt) <= c.cfg.StealAfter {
			continue
		}
		w := c.pickWorkerLocked(t.assigned)
		if w == nil {
			return
		}
		t.stolen = true
		c.stolen.Add(1)
		c.leaseLocked(t, w, now)
	}
}

// scaleHint is one sweep's elastic provisioning advice.
type scaleHint struct {
	out    int
	retire []string
}

// scaleHintLocked computes this sweep's hints: uncovered backlog for
// ScaleOut, long-idle workers for ScaleIn.
func (c *Coordinator) scaleHintLocked(now time.Time) scaleHint {
	if c.cfg.Scaler == nil {
		return scaleHint{}
	}
	free := 0
	for _, w := range c.workers {
		if spare := w.capacity - w.inflight; spare > 0 {
			free += spare
		}
	}
	var h scaleHint
	if uncovered := len(c.pending) - free; uncovered > 0 {
		h.out = uncovered
	}
	if c.cfg.IdleRetireAfter > 0 {
		for _, w := range c.workers {
			if w.inflight == 0 && !w.retireHinted && now.Sub(w.idleSince) > c.cfg.IdleRetireAfter {
				w.retireHinted = true
				h.retire = append(h.retire, w.id)
			}
		}
		sort.Strings(h.retire)
	}
	return h
}

// applyScale delivers hints outside the lock (the scaler may block).
func (c *Coordinator) applyScale(h scaleHint) {
	if c.cfg.Scaler == nil {
		return
	}
	if h.out > 0 {
		c.cfg.Scaler.ScaleOut(h.out)
	}
	if len(h.retire) > 0 {
		c.cfg.Scaler.ScaleIn(h.retire)
	}
}
