package analysis

import (
	"go/ast"
	"strings"
)

// PkgDoc enforces the godoc contract this PR's docs pass established:
// every package carries exactly one package comment, in one file, and
// for library packages it starts "Package <name>" so godoc renders it.
// The bug class is real — a file-top comment left touching the package
// clause (as in tensor/arena.go, tensor/blocked.go, and nn/infer.go
// before this PR) silently becomes part of the package documentation,
// burying the canonical overview under kernel-tuning notes.
var PkgDoc = &Analyzer{
	Name: "pkgdoc",
	Doc:  "each package needs one package comment in one file; library package comments must start \"Package <name>\"; file comments must be detached from the package clause by a blank line",
	Run:  runPkgDoc,
}

func runPkgDoc(pass *Pass) {
	var documented []*ast.File
	for _, f := range pass.Files {
		if f.Doc != nil {
			documented = append(documented, f)
		}
	}
	name := pass.Pkg.Name()
	if len(documented) == 0 {
		pass.Reportf(pass.Files[0].Name.Pos(), "package %s has no package comment", name)
		return
	}

	// The canonical doc is the first one with the proper godoc prefix
	// ("Package <name>" for libraries, anything for main); every other
	// package-clause comment is a stray file comment that godoc would
	// merge into the package documentation.
	properPrefix := func(f *ast.File) bool {
		if name == "main" {
			return true
		}
		text := f.Doc.Text()
		return strings.HasPrefix(text, "Package "+name+" ") ||
			strings.HasPrefix(text, "Package "+name+"\n")
	}
	canonical := -1
	for i, f := range documented {
		if properPrefix(f) {
			canonical = i
			break
		}
	}
	if canonical < 0 {
		pass.Reportf(documented[0].Name.Pos(),
			"package comment for %s does not start %q", name, "Package "+name)
		canonical = 0
	}
	for i, f := range documented {
		if i == canonical {
			continue
		}
		pass.Reportf(f.Name.Pos(),
			"stray package comment: package %s is already documented in another file; detach this file's comment from the package clause with a blank line", name)
	}
}
