package stage

import (
	"context"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sync"
	"time"

	"github.com/eoml/eoml/internal/aicca"
	"github.com/eoml/eoml/internal/flows"
	"github.com/eoml/eoml/internal/metrics"
	"github.com/eoml/eoml/internal/watch"
)

// flowDefinition is the Globus-Flows-style definition of stages 3–4:
// label the watched file, then move it to the shipment outbox.
const flowDefinition = `{
  "Comment": "EO-ML inference flow: label tiles, stage for shipment",
  "StartAt": "Infer",
  "States": {
    "Infer": {
      "Type": "Action",
      "ActionProvider": "inference",
      "Parameters": {"file": "$.file"},
      "ResultPath": "$.labeled",
      "Next": "Move"
    },
    "Move": {
      "Type": "Action",
      "ActionProvider": "move",
      "Parameters": {"file": "$.file", "outbox": "$.outbox", "labeled": "$.labeled"},
      "ResultPath": "$.moved",
      "Next": "Done"
    },
    "Done": {"Type": "Succeed"}
  }
}`

// InferenceConfig tunes an InferenceService.
type InferenceConfig struct {
	// Labeler performs the actual tile classification.
	Labeler *aicca.Labeler
	// BatchTiles / BatchDelay tune the cross-file encode batcher.
	BatchTiles int
	BatchDelay time.Duration
	// Precision, when non-empty, overrides the labeler's encode
	// arithmetic for batches flushed through this service.
	Precision aicca.Precision
	// WatchDir is the directory the monitor crawls for tile files.
	WatchDir string
	// Pattern filters watched file names; default "*.nc".
	Pattern string
	// PollInterval is the crawler scan period.
	PollInterval time.Duration
	// Workers bounds the inference worker pool; default 1.
	Workers int
	// OutboxDir receives labeled files staged for shipment.
	OutboxDir string
	// StallTimeout caps the wait for inference to catch up with the
	// expected file count; default 5 minutes.
	StallTimeout time.Duration
	// OnMoved, when set, observes every labeled file move (provenance).
	OnMoved func(src, dst string, labeled int, started, ended time.Time)
	// LabelFile, when set, replaces the in-process batcher for the
	// flow's inference action — the hook fleet distribution uses to
	// lease labeling to a worker process. It must label the file in
	// place and return the tile count; the move step stays local.
	LabelFile func(ctx context.Context, path string) (int, error)
}

func (c InferenceConfig) withDefaults() InferenceConfig {
	if c.Pattern == "" {
		c.Pattern = "*.nc"
	}
	if c.Workers <= 0 {
		c.Workers = 1
	}
	if c.StallTimeout <= 0 {
		c.StallTimeout = 5 * time.Minute
	}
	return c
}

// InferenceService is the monitor & trigger + inference machinery of
// the workflow as one reusable stage: a filesystem crawler feeding a
// bounded worker pool that runs the label-and-move flow through a
// cross-file encode batcher. Both the batch and the streaming driver
// compose this same service.
//
// Lifecycle: Setup builds the batcher, flow engine, and crawler and
// arms the background goroutines (so labeling overlaps preprocessing);
// ExpectFiles tells the service how many tile files upstream produced;
// Run blocks until that many flows completed (successfully or not) and
// returns the join of all flow errors; Drain retires the crawler, pool,
// and batcher gracefully; Close is the idempotent forced variant for
// error paths.
type InferenceService struct {
	cfg InferenceConfig

	batcher     *aicca.BatchLabeler
	engine      *flows.Engine
	def         *flows.Definition
	crawler     *watch.Crawler
	events      chan watch.Event
	progress    chan struct{}
	stopCrawler context.CancelFunc
	crawlerDone chan struct{}
	poolWG      sync.WaitGroup
	armed       bool
	stopOnce    sync.Once

	health       *metrics.Health
	monitorIn    *metrics.Counter
	monitorOut   *metrics.Counter
	flowIn       *metrics.Counter
	flowOut      *metrics.Counter
	flowFailures *metrics.Counter
	tilesCtr     *metrics.Counter

	mu           sync.Mutex
	expected     int
	expectSet    bool
	completed    int
	filesLabeled int
	tilesLabeled int
	flowErrs     []error
}

// NewInferenceService builds an unarmed service; Setup arms it.
func NewInferenceService(cfg InferenceConfig) *InferenceService {
	return &InferenceService{cfg: cfg.withDefaults()}
}

// Name implements Stage.
func (s *InferenceService) Name() string { return "inference" }

// Setup builds the machinery and arms the crawler and worker pool.
func (s *InferenceService) Setup(ctx context.Context, rc *RunContext) error {
	// Register the monitor & trigger and inference series eagerly, and
	// arm the inference stall clock with the same budget Run's abort
	// timer uses, so /healthz flips stalled around the time Run gives
	// up. The monitor stage is the crawler inside this service — it has
	// no orchestrator slot, so its series are owned here.
	s.health = rc.Health
	s.monitorIn = rc.EventCounter("monitor", EventIn)
	s.monitorOut = rc.EventCounter("monitor", EventOut)
	s.flowIn = rc.EventCounter(s.Name(), EventIn)
	s.flowOut = rc.EventCounter(s.Name(), EventOut)
	s.flowFailures = rc.Metrics.Counter("eoml_inference_flow_failures_total",
		"Label-and-move flows that returned an error.")
	s.tilesCtr = rc.Metrics.Counter("eoml_inference_tiles_labeled_total",
		"Tiles labeled across all watched files.")
	rc.Metrics.GaugeFunc("eoml_inference_files_expected",
		"Tile files upstream says to expect (0 until the expectation is set).",
		func() float64 { return float64(s.Expected()) })
	rc.Metrics.CounterFunc("eoml_inference_flows_completed_total",
		"Label-and-move flows finished, successfully or not.",
		func() float64 { return float64(s.Completed()) })
	rc.Health.Watch("monitor", 0)
	rc.Health.Watch(s.Name(), s.cfg.StallTimeout)
	if s.cfg.Labeler != nil {
		s.cfg.Labeler.Model.Arena().Instrument(rc.Metrics, "ricc")
	}

	s.batcher = aicca.NewBatchLabeler(s.cfg.Labeler, aicca.BatchConfig{
		MaxTiles:  s.cfg.BatchTiles,
		MaxDelay:  s.cfg.BatchDelay,
		Timeline:  rc.Timeline,
		Epoch:     rc.Epoch,
		Metrics:   rc.Metrics,
		Precision: s.cfg.Precision,
	})
	s.engine = flows.NewEngine(flows.EngineConfig{})
	if err := s.engine.RegisterProvider("inference", s.inferenceProvider()); err != nil {
		return err
	}
	if err := s.engine.RegisterProvider("move", s.moveProvider()); err != nil {
		return err
	}
	def, err := flows.ParseDefinition([]byte(flowDefinition))
	if err != nil {
		return err
	}
	s.def = def
	s.crawler, err = watch.NewCrawler(watch.Config{
		Dir:      s.cfg.WatchDir,
		Pattern:  s.cfg.Pattern,
		Interval: s.cfg.PollInterval,
	})
	if err != nil {
		return err
	}

	s.events = make(chan watch.Event, 4*s.cfg.Workers+64)
	s.progress = make(chan struct{}, 1)
	s.crawlerDone = make(chan struct{})
	crawlCtx, stop := context.WithCancel(ctx)
	s.stopCrawler = stop

	for w := 0; w < s.cfg.Workers; w++ {
		s.poolWG.Add(1)
		go s.worker(ctx, rc)
	}
	go func() {
		defer close(s.crawlerDone)
		_ = s.crawler.Run(crawlCtx, func(evs []watch.Event) error {
			for _, ev := range evs {
				s.monitorIn.Inc()
				s.health.Beat("monitor")
				// Enqueue must never block past cancellation: after the
				// pool exits (cancelled run), nothing drains events, so a
				// bare send could wedge the crawler goroutine forever.
				select {
				case s.events <- ev:
					s.monitorOut.Inc()
				case <-crawlCtx.Done():
					return crawlCtx.Err()
				}
			}
			return nil
		})
	}()
	s.armed = true
	return nil
}

// worker labels and moves watched files until the event channel closes.
func (s *InferenceService) worker(ctx context.Context, rc *RunContext) {
	defer s.poolWG.Done()
	//eomlvet:ignore ctxsend bounded drain: shutdown() closes events only after the crawler (sole sender) has exited, so the range always terminates
	for ev := range s.events {
		s.flowIn.Inc()
		run, err := s.engine.Start(ctx, s.def, map[string]any{
			"file":   ev.Path,
			"outbox": s.cfg.OutboxDir,
		})
		var out map[string]any
		if err == nil {
			out, err = run.Wait(ctx)
		}
		s.mu.Lock()
		s.completed++
		if err != nil {
			s.flowErrs = append(s.flowErrs, fmt.Errorf("flow %s: %w", filepath.Base(ev.Path), err))
			s.flowFailures.Inc()
		} else {
			s.filesLabeled++
			if n, ok := out["labeled"].(int); ok {
				s.tilesLabeled += n
				s.tilesCtr.Add(int64(n))
			}
			rc.Timeline.Record("inference", rc.Since(), s.filesLabeled)
			s.flowOut.Inc()
		}
		s.mu.Unlock()
		// Every completed flow — failed or not — is liveness: the stall
		// clock tracks progress, not success.
		s.health.Beat(s.Name())
		s.bump()
	}
}

// bump nudges the progress channel so Run re-checks its condition.
func (s *InferenceService) bump() {
	select {
	case s.progress <- struct{}{}:
	default:
	}
}

// ExpectFiles tells the service how many tile files upstream produced;
// Run returns once that many flows have completed. Safe to call while
// Run is already waiting.
func (s *InferenceService) ExpectFiles(n int) {
	s.mu.Lock()
	s.expected = n
	s.expectSet = true
	s.mu.Unlock()
	s.bump()
}

// Run blocks until every expected file's flow completed, then returns
// the join of all flow errors (nil when every flow succeeded). Failed
// flows still count toward completion, so a bad file cannot stall the
// run — its error surfaces in the join instead.
func (s *InferenceService) Run(ctx context.Context, rc *RunContext) error {
	stall := time.NewTimer(s.cfg.StallTimeout)
	defer stall.Stop()
	for {
		s.mu.Lock()
		done := s.expectSet && s.completed >= s.expected
		completed, expected := s.completed, s.expected
		s.mu.Unlock()
		if done {
			break
		}
		select {
		case <-s.progress:
		case <-ctx.Done():
			return ctx.Err()
		case <-stall.C:
			return fmt.Errorf("inference stalled: %d/%d files processed", completed, expected)
		}
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return errors.Join(s.flowErrs...)
}

// Drain gracefully retires the crawler, worker pool, and batcher.
func (s *InferenceService) Drain(ctx context.Context, rc *RunContext) error {
	s.shutdown()
	return nil
}

// Close tears the service down on any exit path; idempotent.
func (s *InferenceService) Close() error {
	if s.armed {
		s.shutdown()
	} else if s.batcher != nil {
		s.batcher.Close()
	}
	return nil
}

// shutdown stops the crawler, joins the pool, and closes the batcher,
// exactly once. Ordering matters: the crawler must have exited before
// events is closed, and the pool must have exited before the batcher
// (workers mid-flow still need it) is flushed and closed.
func (s *InferenceService) shutdown() {
	s.stopOnce.Do(func() {
		s.stopCrawler()
		//eomlvet:ignore ctxsend bounded join: stopCrawler cancels the crawler context, and the crawler closes crawlerDone on exit unconditionally
		<-s.crawlerDone
		close(s.events)
		s.poolWG.Wait()
		s.batcher.Close()
	})
}

// FilesLabeled reports how many watched files were labeled and moved.
func (s *InferenceService) FilesLabeled() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.filesLabeled
}

// TilesLabeled reports the total tiles labeled across all files.
func (s *InferenceService) TilesLabeled() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.tilesLabeled
}

// FlowsFailed reports how many label-and-move flows failed.
func (s *InferenceService) FlowsFailed() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.flowErrs)
}

// Completed reports how many flows finished, successfully or not.
func (s *InferenceService) Completed() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.completed
}

// Expected reports the expected file count (zero until ExpectFiles).
func (s *InferenceService) Expected() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.expected
}

func (s *InferenceService) inferenceProvider() flows.ActionProvider {
	return func(ctx context.Context, params map[string]any) (any, error) {
		path, _ := params["file"].(string)
		if path == "" {
			return nil, fmt.Errorf("stage: inference action needs a file")
		}
		if s.cfg.LabelFile != nil {
			return s.cfg.LabelFile(ctx, path)
		}
		return s.batcher.LabelFile(path)
	}
}

func (s *InferenceService) moveProvider() flows.ActionProvider {
	return func(ctx context.Context, params map[string]any) (any, error) {
		started := time.Now()
		src, _ := params["file"].(string)
		outbox, _ := params["outbox"].(string)
		if src == "" || outbox == "" {
			return nil, fmt.Errorf("stage: move action needs file and outbox")
		}
		labeled, _ := params["labeled"].(int)
		dst := filepath.Join(outbox, filepath.Base(src))
		if err := os.Rename(src, dst); err != nil {
			// Cross-device rename fallback.
			if cerr := copyPreserving(src, dst); cerr != nil {
				return nil, cerr
			}
		}
		if s.cfg.OnMoved != nil {
			s.cfg.OnMoved(src, dst, labeled, started, time.Now())
		}
		return dst, nil
	}
}

// copyPreserving moves src to dst across filesystems: it copies into a
// temp file next to dst, carries over the source file mode, fsyncs, and
// renames into place before removing the source — so a crash mid-move
// can leave a stray temp file but never a truncated dst or a lost file.
func copyPreserving(src, dst string) error {
	info, err := os.Stat(src)
	if err != nil {
		return err
	}
	in, err := os.Open(src)
	if err != nil {
		return err
	}
	defer in.Close()
	tmp, err := os.CreateTemp(filepath.Dir(dst), ".move-*")
	if err != nil {
		return err
	}
	tmpPath := tmp.Name()
	defer os.Remove(tmpPath) // no-op once renamed into place
	if _, err := io.Copy(tmp, in); err != nil {
		_ = tmp.Close() // the copy error is the one worth reporting
		return err
	}
	if err := tmp.Chmod(info.Mode().Perm()); err != nil {
		_ = tmp.Close()
		return err
	}
	if err := tmp.Sync(); err != nil {
		_ = tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	if err := os.Rename(tmpPath, dst); err != nil {
		return err
	}
	return os.Remove(src)
}
