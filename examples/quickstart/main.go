// Quickstart: the smallest complete EO-ML run.
//
// It starts an in-process synthetic LAADS archive, trains a miniature
// RICC model on one day's cloud tiles, then executes the five-stage
// workflow — download, preprocess, monitor & trigger, inference,
// shipment — and prints the run report.
//
//	go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"
	"net/http/httptest"
	"os"
	"path/filepath"
	"time"

	"github.com/eoml/eoml"
)

func main() {
	const scale = 32 // granule resolution divisor; tiles are 128/32 = 4 px

	// A local stand-in for the NASA LAADS DAAC.
	archive, err := eoml.NewArchiveServer(eoml.ArchiveOptions{ScaleDown: scale, Token: "demo"})
	if err != nil {
		log.Fatal(err)
	}
	server := httptest.NewServer(archive)
	defer server.Close()

	root, err := os.MkdirTemp("", "eoml-quickstart-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(root)

	cfg := eoml.DefaultConfig()
	cfg.ArchiveURL = server.URL
	cfg.ArchiveToken = "demo"
	cfg.TilePixels = 4
	cfg.PreprocessWorkers = 4
	cfg.PollInterval = 20 * time.Millisecond
	cfg.DataDir = filepath.Join(root, "data")
	cfg.TileDir = filepath.Join(root, "tiles")
	cfg.OutboxDir = filepath.Join(root, "outbox")
	cfg.DestDir = filepath.Join(root, "orion")

	// Pick three daytime granules with ocean clouds.
	granules, err := eoml.FindDayGranules(cfg, scale, 3, 4)
	if err != nil {
		log.Fatal(err)
	}
	cfg.Granules = granules
	fmt.Printf("quickstart: using granules %v of 2022-001 (Terra)\n", granules)

	ctx := context.Background()
	fmt.Println("quickstart: training RICC autoencoder + AICCA codebook…")
	labeler, err := eoml.TrainFromArchive(ctx, cfg, eoml.TrainOptions{Classes: 6, Epochs: 3, Seed: 1})
	if err != nil {
		log.Fatal(err)
	}

	pipe, err := eoml.NewPipeline(cfg, labeler)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("quickstart: running the five-stage workflow…")
	rep, err := pipe.Run(ctx)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("quickstart:", rep.Summary())

	// Inspect a shipped, labeled product.
	shipped, err := filepath.Glob(filepath.Join(cfg.DestDir, "*.nc"))
	if err != nil || len(shipped) == 0 {
		log.Fatalf("no shipped files: %v", err)
	}
	tiles, err := eoml.ReadTiles(shipped[0])
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("quickstart: %s holds %d labeled tiles; first tile class=%d cloudFrac=%.2f CTP=%.0f hPa\n",
		filepath.Base(shipped[0]), len(tiles), tiles[0].Label, tiles[0].CloudFrac, tiles[0].MeanCTP)
}
