package tile

import (
	"fmt"

	"github.com/eoml/eoml/internal/netcdf"
)

// Dimension and variable names of the tile NetCDF schema. The schema
// mirrors the AICCA dataset layout: one file per granule, one record per
// tile, radiances plus per-tile physical properties and a label variable
// that inference fills in later.
const (
	dimTile = "tile"
	dimBand = "band"
	dimY    = "y"
	dimX    = "x"
)

// ToNetCDF assembles a tile batch into a NetCDF dataset. All tiles must
// share the same band set and tile size.
func ToNetCDF(tiles []*Tile) (*netcdf.File, error) {
	if len(tiles) == 0 {
		return nil, fmt.Errorf("tile: no tiles to encode")
	}
	first := tiles[0]
	nb, ts := len(first.Bands), first.TileSize
	for _, t := range tiles {
		if len(t.Bands) != nb || t.TileSize != ts {
			return nil, fmt.Errorf("tile: heterogeneous tile shapes in batch")
		}
	}
	f := netcdf.New()
	if err := f.AddDim(dimTile, len(tiles)); err != nil {
		return nil, err
	}
	if err := f.AddDim(dimBand, nb); err != nil {
		return nil, err
	}
	if err := f.AddDim(dimY, ts); err != nil {
		return nil, err
	}
	if err := f.AddDim(dimX, ts); err != nil {
		return nil, err
	}
	if err := f.Attrs.SetString("title", "EO-ML ocean-cloud tiles"); err != nil {
		return nil, err
	}
	if err := f.Attrs.SetString("granule", first.Granule); err != nil {
		return nil, err
	}
	bands := make([]int32, nb)
	for i, b := range first.Bands {
		bands[i] = int32(b)
	}
	if err := f.Attrs.SetInts("bands", bands...); err != nil {
		return nil, err
	}

	npix := ts * ts
	rad := make([]float32, len(tiles)*nb*npix)
	lat := make([]float32, len(tiles))
	lon := make([]float32, len(tiles))
	cf := make([]float32, len(tiles))
	ctp := make([]float32, len(tiles))
	cot := make([]float32, len(tiles))
	cer := make([]float32, len(tiles))
	cwp := make([]float32, len(tiles))
	icef := make([]float32, len(tiles))
	rows := make([]int32, len(tiles))
	cols := make([]int32, len(tiles))
	labels := make([]int16, len(tiles))
	for i, t := range tiles {
		copy(rad[i*nb*npix:], t.Data)
		lat[i], lon[i] = t.Lat, t.Lon
		cf[i] = t.CloudFrac
		ctp[i], cot[i], cer[i], cwp[i] = t.MeanCTP, t.MeanCOT, t.MeanCER, t.MeanCWP
		icef[i] = t.IcePhaseFrac
		rows[i], cols[i] = int32(t.Row), int32(t.Col)
		labels[i] = t.Label
	}
	addF := func(name string, dims []string, vals []float32, units string) error {
		v, err := f.AddFloat(name, dims, vals)
		if err != nil {
			return err
		}
		if units != "" {
			return v.Attrs.SetString("units", units)
		}
		return nil
	}
	tileDims := []string{dimTile}
	if err := addF("radiance", []string{dimTile, dimBand, dimY, dimX}, rad, "W/m^2/um/sr"); err != nil {
		return nil, err
	}
	if err := addF("latitude", tileDims, lat, "degrees_north"); err != nil {
		return nil, err
	}
	if err := addF("longitude", tileDims, lon, "degrees_east"); err != nil {
		return nil, err
	}
	if err := addF("cloud_fraction", tileDims, cf, "1"); err != nil {
		return nil, err
	}
	if err := addF("cloud_top_pressure", tileDims, ctp, "hPa"); err != nil {
		return nil, err
	}
	if err := addF("cloud_optical_thickness", tileDims, cot, "1"); err != nil {
		return nil, err
	}
	if err := addF("cloud_effective_radius", tileDims, cer, "micron"); err != nil {
		return nil, err
	}
	if err := addF("cloud_water_path", tileDims, cwp, "g/m^2"); err != nil {
		return nil, err
	}
	if err := addF("ice_phase_fraction", tileDims, icef, "1"); err != nil {
		return nil, err
	}
	if _, err := f.AddInt("tile_row", tileDims, rows); err != nil {
		return nil, err
	}
	if _, err := f.AddInt("tile_col", tileDims, cols); err != nil {
		return nil, err
	}
	lv, err := f.AddShort("label", tileDims, labels)
	if err != nil {
		return nil, err
	}
	if err := lv.Attrs.SetString("long_name", "AICCA cloud class (0..41), -1 unassigned"); err != nil {
		return nil, err
	}
	if err := lv.Attrs.SetShorts("_FillValue", -1); err != nil {
		return nil, err
	}
	return f, nil
}

// FromNetCDF reconstructs tiles from a file written by ToNetCDF.
func FromNetCDF(f *netcdf.File) ([]*Tile, error) {
	ntiles, err := f.DimLen(dimTile)
	if err != nil {
		return nil, err
	}
	nb, err := f.DimLen(dimBand)
	if err != nil {
		return nil, err
	}
	ts, err := f.DimLen(dimY)
	if err != nil {
		return nil, err
	}
	granule, _ := f.Attrs.GetString("granule")
	bandAttr, _ := f.Attrs.GetInts("bands")
	bands := make([]int, len(bandAttr))
	for i, b := range bandAttr {
		bands[i] = int(b)
	}

	getF := func(name string) ([]float32, error) {
		v, err := f.Var(name)
		if err != nil {
			return nil, err
		}
		return v.Float32s()
	}
	rad, err := getF("radiance")
	if err != nil {
		return nil, err
	}
	lat, err := getF("latitude")
	if err != nil {
		return nil, err
	}
	lon, err := getF("longitude")
	if err != nil {
		return nil, err
	}
	cf, err := getF("cloud_fraction")
	if err != nil {
		return nil, err
	}
	ctp, err := getF("cloud_top_pressure")
	if err != nil {
		return nil, err
	}
	cot, err := getF("cloud_optical_thickness")
	if err != nil {
		return nil, err
	}
	cer, err := getF("cloud_effective_radius")
	if err != nil {
		return nil, err
	}
	cwp, err := getF("cloud_water_path")
	if err != nil {
		return nil, err
	}
	icef, err := getF("ice_phase_fraction")
	if err != nil {
		return nil, err
	}
	rowV, err := f.Var("tile_row")
	if err != nil {
		return nil, err
	}
	rows, err := rowV.Int32s()
	if err != nil {
		return nil, err
	}
	colV, err := f.Var("tile_col")
	if err != nil {
		return nil, err
	}
	cols, err := colV.Int32s()
	if err != nil {
		return nil, err
	}
	labV, err := f.Var("label")
	if err != nil {
		return nil, err
	}
	labels, err := labV.Int16s()
	if err != nil {
		return nil, err
	}

	npix := ts * ts
	tiles := make([]*Tile, ntiles)
	for i := range tiles {
		tiles[i] = &Tile{
			Granule:      granule,
			Row:          int(rows[i]),
			Col:          int(cols[i]),
			Data:         rad[i*nb*npix : (i+1)*nb*npix],
			Bands:        bands,
			TileSize:     ts,
			Lat:          lat[i],
			Lon:          lon[i],
			CloudFrac:    cf[i],
			MeanCTP:      ctp[i],
			MeanCOT:      cot[i],
			MeanCER:      cer[i],
			MeanCWP:      cwp[i],
			IcePhaseFrac: icef[i],
			Label:        labels[i],
		}
	}
	return tiles, nil
}

// WriteNetCDF writes a tile batch to path.
func WriteNetCDF(path string, tiles []*Tile) error {
	f, err := ToNetCDF(tiles)
	if err != nil {
		return err
	}
	return netcdf.WriteFile(path, f)
}

// ReadNetCDF loads a tile batch from path.
func ReadNetCDF(path string) ([]*Tile, error) {
	f, err := netcdf.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return FromNetCDF(f)
}

// AppendLabels rewrites the tile file at path with the label variable set.
// This is the "append cloud labels to NetCDF file" step of the paper's
// inference Flow.
func AppendLabels(path string, labels []int16) error {
	f, err := netcdf.ReadFile(path)
	if err != nil {
		return err
	}
	v, err := f.Var("label")
	if err != nil {
		return err
	}
	if err := v.SetShorts(labels); err != nil {
		return err
	}
	return netcdf.WriteFile(path, f)
}
