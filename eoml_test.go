package eoml_test

import (
	"context"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"github.com/eoml/eoml"
)

// startArchive serves a tiny synthetic archive for facade tests.
func startArchive(t *testing.T) *httptest.Server {
	t.Helper()
	h, err := eoml.NewArchiveServer(eoml.ArchiveOptions{ScaleDown: 64, Token: "tok"})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(h)
	t.Cleanup(ts.Close)
	return ts
}

func facadeConfig(t *testing.T, url string) eoml.Config {
	t.Helper()
	root := t.TempDir()
	cfg := eoml.DefaultConfig()
	cfg.ArchiveURL = url
	cfg.ArchiveToken = "tok"
	// Indices around local noon on the synthetic orbit (day side with
	// ocean clouds); verified productive by the core tests at scale 64.
	cfg.Granules = []int{2, 3, 4}
	cfg.TilePixels = 4
	cfg.PreprocessWorkers = 4
	cfg.PollInterval = 10 * time.Millisecond
	cfg.DataDir = filepath.Join(root, "data")
	cfg.TileDir = filepath.Join(root, "tiles")
	cfg.OutboxDir = filepath.Join(root, "outbox")
	cfg.DestDir = filepath.Join(root, "orion")
	return cfg
}

// pickProductiveGranules scans for day granules that yield tiles by
// running training with each candidate until one sticks.
func pickProductiveGranules(t *testing.T, cfg *eoml.Config, archiveURL string) {
	t.Helper()
	ctx := context.Background()
	for start := 0; start < 288; start += 4 {
		cfg.Granules = []int{start, start + 1, start + 2}
		if _, err := eoml.TrainFromArchive(ctx, *cfg, eoml.TrainOptions{Classes: 4, Epochs: 1}); err == nil {
			return
		}
	}
	t.Fatal("no productive granule window found")
}

func TestFacadeTrainRunAtlas(t *testing.T) {
	ts := startArchive(t)
	cfg := facadeConfig(t, ts.URL)
	pickProductiveGranules(t, &cfg, ts.URL)
	ctx := context.Background()

	labeler, err := eoml.TrainFromArchive(ctx, cfg, eoml.TrainOptions{Classes: 4, Epochs: 2, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}

	// Save/load round trip through the facade.
	dir := t.TempDir()
	mp, cp := filepath.Join(dir, "m.hdf"), filepath.Join(dir, "cb.hdf")
	if err := eoml.SaveLabeler(labeler, mp, cp); err != nil {
		t.Fatal(err)
	}
	loaded, err := eoml.LoadLabeler(mp, cp)
	if err != nil {
		t.Fatal(err)
	}

	pipe, err := eoml.NewPipeline(cfg, loaded)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := pipe.Run(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if rep.TilesLabeled == 0 || rep.FilesShipped == 0 {
		t.Fatalf("report: %s", rep.Summary())
	}

	// Read a shipped file and build the class atlas.
	shipped, err := filepath.Glob(filepath.Join(cfg.DestDir, "*.nc"))
	if err != nil || len(shipped) == 0 {
		t.Fatalf("no shipped files: %v", err)
	}
	tiles, err := eoml.ReadTiles(shipped[0])
	if err != nil {
		t.Fatal(err)
	}
	atlas := eoml.ClassAtlas(tiles)
	if len(atlas) == 0 {
		t.Fatal("empty atlas from labeled tiles")
	}
	for _, cs := range atlas {
		if cs.Class < 0 || cs.Class >= 4 || cs.Count == 0 {
			t.Fatalf("atlas row %+v", cs)
		}
	}
}

func TestLoadConfigFileFacade(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "wf.yaml")
	doc := `
archive:
  url: http://localhost:9
paths:
  data: ` + dir + `/d
  tiles: ` + dir + `/t
  outbox: ` + dir + `/o
  dest: ` + dir + `/x
`
	if err := writeFile(path, doc); err != nil {
		t.Fatal(err)
	}
	cfg, err := eoml.LoadConfigFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if cfg.ArchiveURL != "http://localhost:9" {
		t.Fatalf("cfg: %+v", cfg)
	}
}

func TestReproduceFunctionsRender(t *testing.T) {
	if testing.Short() {
		t.Skip("full table sweeps")
	}
	if s := eoml.ReproduceHeadline(); !strings.Contains(s, "12,000 tiles") {
		t.Errorf("headline: %s", s)
	}
	if s := eoml.ReproduceFig3(); !strings.Contains(s, "workers") {
		t.Errorf("fig3 render broken")
	}
	s6, err := eoml.ReproduceFig6()
	if err != nil || !strings.Contains(s6, "timeline") {
		t.Errorf("fig6: %v", err)
	}
	s7, err := eoml.ReproduceFig7()
	if err != nil || !strings.Contains(s7, "latency") {
		t.Errorf("fig7: %v", err)
	}
	ab, err := eoml.ReproduceAblations()
	if err != nil || !strings.Contains(ab, "fair-share") {
		t.Errorf("ablations: %v", err)
	}
}

func TestTrainValidation(t *testing.T) {
	cfg := facadeConfig(t, "http://localhost:1")
	cfg.Granules = nil
	if _, err := eoml.TrainFromArchive(context.Background(), cfg, eoml.TrainOptions{}); err == nil {
		t.Fatal("no granules accepted")
	}
}

func writeFile(path, content string) error {
	return os.WriteFile(path, []byte(content), 0o644)
}
