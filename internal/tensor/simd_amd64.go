//go:build amd64

package tensor

// useSIMD gates the AVX2+FMA kernels on runtime CPU support (CPUID
// feature bits plus OS XMM/YMM state saving).
var useSIMD = cpuSupportsAVX2FMA()

// cpuSupportsAVX2FMA reports whether the CPU and OS support the AVX2 and
// FMA instructions the assembly kernels use. Implemented in simd_amd64.s.
func cpuSupportsAVX2FMA() bool

// axpyAVX computes y[i] += alpha * x[i] over len(x) elements with
// 8-wide FMA. len(y) must be >= len(x). Implemented in simd_amd64.s.
//
//go:noescape
func axpyAVX(alpha float32, x, y []float32)

// dotAVX returns the inner product over len(x) elements with 8-wide
// FMA. len(y) must be >= len(x). Implemented in simd_amd64.s.
//
//go:noescape
func dotAVX(x, y []float32) float32

// dotQ8x4AVX computes four int8 dot products of x against the four
// consecutive length-len(x) rows packed in w (row stride = len(x)),
// writing exact int32 sums into out: VPMOVSXBW widens 16 int8 lanes to
// int16, VPMADDWD multiplies and pair-sums into int32, and the int32
// adds are exact, so the result is bit-identical to dotQ8x4Generic.
// Caller guarantees len(w) >= 4*len(x). Implemented in simd_amd64.s.
//
//go:noescape
func dotQ8x4AVX(x, w []int8, out *[4]int32)

// maxAbsAVX returns max |x[i]| over len(x) elements, 8 lanes at a time.
// len(x) must be a positive multiple of 8. NaN lanes are ignored (the
// MAXPS operand order keeps the accumulator when a lane is NaN), like
// the scalar fallback, whose comparisons a NaN never wins. Implemented
// in simd_amd64.s.
//
//go:noescape
func maxAbsAVX(x []float32) float32

// quantize32AVX quantizes src into dst with the reciprocal scale inv:
// round half away from zero (add ±0.5, truncate), clamp to [-127, 127],
// NaN to 0 — bit-identical to quantizeVal per element. len(src) must be
// a multiple of 32 and len(dst) >= len(src). Implemented in
// simd_amd64.s.
//
//go:noescape
func quantize32AVX(dst []int8, src []float32, inv float32)

// SIMDEnabled reports whether the vector kernels are active; benchmarks
// surface it so recorded numbers are interpretable across machines.
func SIMDEnabled() bool { return useSIMD }

func axpy(alpha float32, x, y []float32) {
	if useSIMD {
		axpyAVX(alpha, x, y)
		return
	}
	axpyGeneric(alpha, x, y)
}

func dot(x, y []float32) float32 {
	if useSIMD {
		return dotAVX(x, y)
	}
	return dotGeneric(x, y)
}

func dotQ8x4(x, w []int8, out *[4]int32) {
	if useSIMD {
		dotQ8x4AVX(x, w, out)
		return
	}
	dotQ8x4Generic(x, w, out)
}

func maxAbs(x []float32) float32 {
	if useSIMD && len(x) >= 8 {
		n := len(x) &^ 7
		m := maxAbsAVX(x[:n])
		if t := maxAbsGeneric(x[n:]); t > m {
			m = t
		}
		return m
	}
	return maxAbsGeneric(x)
}

func quantizeSpan(dst []int8, src []float32, inv float32) {
	if useSIMD {
		if n := len(src) &^ 31; n > 0 {
			quantize32AVX(dst[:n], src[:n], inv)
			dst, src = dst[n:], src[n:]
		}
	}
	quantizeGeneric(dst, src, inv)
}
