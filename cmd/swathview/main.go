// Command swathview renders a synthetic MODIS swath as ASCII — the
// reproduction's answer to the paper's Fig. 1: panel (a) shows the
// radiance/cloud field with land masked, panel (b) the ocean-cloud tile
// grid with either the kept/rejected decision or, with a trained model
// (-model/-codebook), the AICCA class assigned to each kept tile.
//
//	swathview -year 2022 -doy 1 -index 150 -scale 16
//	swathview -index 150 -model ricc.hdf -codebook aicca-codebook.hdf
package main

import (
	"flag"
	"fmt"
	"log"

	"github.com/eoml/eoml/internal/aicca"
	"github.com/eoml/eoml/internal/modis"
	"github.com/eoml/eoml/internal/ricc"
	"github.com/eoml/eoml/internal/tile"
)

func main() {
	year := flag.Int("year", 2022, "acquisition year")
	doy := flag.Int("doy", 1, "day of year")
	index := flag.Int("index", 150, "five-minute granule slot (0..287)")
	scale := flag.Int("scale", 16, "resolution divisor")
	width := flag.Int("width", 100, "output columns")
	modelPath := flag.String("model", "", "RICC model file (enables class labels)")
	cbPath := flag.String("codebook", "", "AICCA codebook file")
	flag.Parse()

	gen, err := modis.NewGenerator(*scale)
	if err != nil {
		log.Fatalf("swathview: %v", err)
	}
	g := modis.GranuleID{Satellite: modis.Terra, Year: *year, DOY: *doy, Index: *index}
	if err := g.Validate(); err != nil {
		log.Fatalf("swathview: %v", err)
	}
	mod02, err := gen.Generate(modis.MOD021KM, g)
	if err != nil {
		log.Fatalf("swathview: %v", err)
	}
	mod03, _ := gen.Generate(modis.MOD03, g)
	mod06, _ := gen.Generate(modis.MOD06L2, g)

	flagStr, _ := mod02.AttrString("DayNightFlag")
	fmt.Printf("MODIS %s granule A%04d%03d.%s (%s), scale 1/%d\n\n",
		g.Satellite, g.Year, g.DOY, g.HHMM(), flagStr, *scale)

	// Panel (a): cloud field over ocean, land masked.
	landD, _ := mod03.Dataset("LandSeaMask")
	land, _ := landD.Uint8s()
	fracD, _ := mod06.Dataset("Cloud_Fraction")
	frac, _ := fracD.Float32s()
	ny, nx := gen.Dims()
	fmt.Println("(a) cloud field ('.'=clear ocean, shades=cloud, '#'=land):")
	printField(ny, nx, *width, func(i int) byte {
		if land[i] != 0 {
			return '#'
		}
		switch c := frac[i]; {
		case c > 0.85:
			return '@'
		case c > 0.7:
			return '%'
		case c > 0.55:
			return '+'
		case c > 0.4:
			return ':'
		default:
			return '.'
		}
	})

	// Panel (b): tile decisions / labels.
	ts := gen.TilePixels()
	res, err := tile.Extract(mod02, mod03, mod06, tile.Options{TileSize: ts})
	if err != nil {
		log.Fatalf("swathview: %v", err)
	}
	var labeler *aicca.Labeler
	if *modelPath != "" && *cbPath != "" {
		m, err := ricc.Load(*modelPath)
		if err != nil {
			log.Fatalf("swathview: %v", err)
		}
		cb, err := ricc.LoadCodebook(*cbPath)
		if err != nil {
			log.Fatalf("swathview: %v", err)
		}
		labeler, err = aicca.NewLabeler(m, cb)
		if err != nil {
			log.Fatalf("swathview: %v", err)
		}
		if _, err := labeler.LabelTiles(res.Tiles); err != nil {
			log.Fatalf("swathview: %v", err)
		}
	}

	kept := map[[2]int]*tile.Tile{}
	for _, t := range res.Tiles {
		kept[[2]int{t.Row, t.Col}] = t
	}
	if labeler != nil {
		fmt.Printf("\n(b) ocean-cloud tiles by AICCA class (0-9a-z..., '.'=rejected): %d kept of %d\n",
			res.Stats.Kept, res.Stats.Candidates)
	} else {
		fmt.Printf("\n(b) tile selection ('O'=ocean-cloud kept, '.'=rejected): %d kept of %d\n",
			res.Stats.Kept, res.Stats.Candidates)
	}
	for r := 0; r < res.Stats.GridRows; r++ {
		for c := 0; c < res.Stats.GridCols; c++ {
			t, ok := kept[[2]int{r, c}]
			switch {
			case !ok:
				fmt.Print(". ")
			case labeler != nil:
				fmt.Printf("%c ", classGlyph(int(t.Label)))
			default:
				fmt.Print("O ")
			}
		}
		fmt.Println()
	}
	fmt.Printf("\nrejections: %d land, %d under-cloudy, %d nighttime-fill\n",
		res.Stats.RejectedLand, res.Stats.RejectedCloud, res.Stats.RejectedFill)
}

// printField downsamples an ny×nx byte field to the requested width.
func printField(ny, nx, width int, glyph func(i int) byte) {
	if width > nx {
		width = nx
	}
	height := ny * width / nx / 2 // terminal cells are ~2:1
	if height < 1 {
		height = 1
	}
	for y := 0; y < height; y++ {
		row := make([]byte, width)
		for x := 0; x < width; x++ {
			sy := y * ny / height
			sx := x * nx / width
			row[x] = glyph(sy*nx + sx)
		}
		fmt.Println(string(row))
	}
}

// classGlyph maps an AICCA class to a compact character.
func classGlyph(class int) byte {
	const glyphs = "0123456789abcdefghijklmnopqrstuvwxyzABCDEF"
	if class < 0 || class >= len(glyphs) {
		return '?'
	}
	return glyphs[class]
}
