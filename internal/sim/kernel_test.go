package sim

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestKernelOrdersEventsByTime(t *testing.T) {
	k := NewKernel()
	var order []int
	k.At(3, func() { order = append(order, 3) })
	k.At(1, func() { order = append(order, 1) })
	k.At(2, func() { order = append(order, 2) })
	end := k.Run()
	if end != 3 {
		t.Fatalf("final time = %v, want 3", end)
	}
	want := []int{1, 2, 3}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

func TestKernelTiesFireInScheduleOrder(t *testing.T) {
	k := NewKernel()
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		k.At(5, func() { order = append(order, i) })
	}
	k.Run()
	for i := range order {
		if order[i] != i {
			t.Fatalf("tie order = %v, want ascending", order)
		}
	}
}

func TestKernelAfterIsRelative(t *testing.T) {
	k := NewKernel()
	var seen []Time
	k.At(10, func() {
		k.After(5, func() { seen = append(seen, k.Now()) })
	})
	k.Run()
	if len(seen) != 1 || seen[0] != 15 {
		t.Fatalf("After fired at %v, want [15]", seen)
	}
}

func TestKernelSchedulingInPastPanics(t *testing.T) {
	k := NewKernel()
	k.At(10, func() {
		defer func() {
			if recover() == nil {
				t.Error("scheduling in past did not panic")
			}
		}()
		k.At(5, func() {})
	})
	k.Run()
}

func TestKernelCancelPreventsFiring(t *testing.T) {
	k := NewKernel()
	fired := false
	e := k.At(1, func() { fired = true })
	k.Cancel(e)
	k.Cancel(e) // second cancel is a no-op
	k.Run()
	if fired {
		t.Fatal("cancelled event fired")
	}
	if !e.Cancelled() {
		t.Fatal("event not marked cancelled")
	}
}

func TestKernelCancelFromAnotherEvent(t *testing.T) {
	k := NewKernel()
	fired := false
	victim := k.At(2, func() { fired = true })
	k.At(1, func() { k.Cancel(victim) })
	k.Run()
	if fired {
		t.Fatal("event cancelled mid-run still fired")
	}
}

func TestKernelRunUntilStopsAtDeadline(t *testing.T) {
	k := NewKernel()
	var fired []Time
	for _, at := range []Time{1, 2, 3, 4, 5} {
		at := at
		k.At(at, func() { fired = append(fired, at) })
	}
	now := k.RunUntil(3)
	if now != 3 {
		t.Fatalf("RunUntil returned %v, want 3", now)
	}
	if len(fired) != 3 {
		t.Fatalf("fired %v events, want 3", len(fired))
	}
	k.Run()
	if len(fired) != 5 {
		t.Fatalf("after full run fired %v, want 5", len(fired))
	}
}

func TestKernelRunUntilAdvancesClockToDeadline(t *testing.T) {
	k := NewKernel()
	k.RunUntil(42)
	if k.Now() != 42 {
		t.Fatalf("clock = %v, want 42", k.Now())
	}
}

func TestKernelStep(t *testing.T) {
	k := NewKernel()
	n := 0
	k.At(1, func() { n++ })
	k.At(2, func() { n++ })
	if !k.Step() || n != 1 {
		t.Fatalf("first step: n=%d", n)
	}
	if !k.Step() || n != 2 {
		t.Fatalf("second step: n=%d", n)
	}
	if k.Step() {
		t.Fatal("step on empty queue returned true")
	}
}

func TestKernelEventsScheduledDuringRun(t *testing.T) {
	k := NewKernel()
	count := 0
	var tick func()
	tick = func() {
		count++
		if count < 100 {
			k.After(1, tick)
		}
	}
	k.At(0, tick)
	end := k.Run()
	if count != 100 {
		t.Fatalf("count = %d, want 100", count)
	}
	if end != 99 {
		t.Fatalf("end = %v, want 99", end)
	}
}

// Property: for any batch of events with arbitrary non-negative times, the
// kernel fires them in non-decreasing time order and the clock never runs
// backwards.
func TestKernelMonotonicProperty(t *testing.T) {
	prop := func(delays []uint16) bool {
		k := NewKernel()
		var fired []Time
		for _, d := range delays {
			at := Time(d)
			k.At(at, func() { fired = append(fired, k.Now()) })
		}
		k.Run()
		if len(fired) != len(delays) {
			return false
		}
		return sort.SliceIsSorted(fired, func(i, j int) bool { return fired[i] < fired[j] })
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: interleaving schedules and cancels still fires exactly the
// non-cancelled events.
func TestKernelCancelProperty(t *testing.T) {
	prop := func(seed int64, n uint8) bool {
		r := rand.New(rand.NewSource(seed))
		k := NewKernel()
		total := int(n%64) + 1
		firedCount := 0
		cancelled := 0
		events := make([]*Event, 0, total)
		for i := 0; i < total; i++ {
			e := k.At(Time(r.Intn(50)), func() { firedCount++ })
			events = append(events, e)
		}
		for _, e := range events {
			if r.Float64() < 0.3 {
				k.Cancel(e)
				cancelled++
			}
		}
		k.Run()
		return firedCount == total-cancelled
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
