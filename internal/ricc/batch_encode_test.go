package ricc

import (
	"math"
	"math/rand"
	"testing"
)

// TestEncodeBatchMatchesPerTile is the batch-GEMM equivalence property
// test: for random model shapes and batch sizes — including N=1 and N
// not a multiple of the GEMM register block — EncodeBatch over the
// whole set must match encoding each tile by itself within 1e-6
// relative, and the contended-arena oracle EncodeLocked must agree
// bit-for-bit (same kernels, different allocator).
func TestEncodeBatchMatchesPerTile(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	cases := []struct {
		ts, ch, latent, n int
	}{
		{8, 2, 8, 1},    // N=1: the degenerate batch
		{8, 3, 16, 5},   // odd N, below any block multiple
		{16, 6, 32, 13}, // production shape, N not a multiple of the block
		{16, 1, 4, 37},
		{12, 4, 24, 30},
	}
	for _, tc := range cases {
		cfg := DefaultConfig()
		cfg.TileSize, cfg.Channels, cfg.LatentDim = tc.ts, tc.ch, tc.latent
		cfg.Seed = int64(tc.ts*1000 + tc.n)
		m, err := NewModel(cfg)
		if err != nil {
			t.Fatal(err)
		}
		tiles := syntheticTiles(tc.n, tc.ts, tc.ch, r.Int63())
		if m.Norm, err = FitNormalizer(tiles); err != nil {
			t.Fatal(err)
		}

		batched, err := m.EncodeBatch(tiles)
		if err != nil {
			t.Fatal(err)
		}
		locked, err := m.EncodeLocked(tiles)
		if err != nil {
			t.Fatal(err)
		}
		for i := range tiles {
			single, err := m.Encode(tiles[i : i+1])
			if err != nil {
				t.Fatal(err)
			}
			for j := range single[0] {
				want, got := float64(single[0][j]), float64(batched[i][j])
				if math.Abs(got-want) > 1e-6*(1+math.Abs(want)) {
					t.Fatalf("case %+v tile %d dim %d: batched %g vs per-tile %g", tc, i, j, got, want)
				}
				if locked[i][j] != batched[i][j] {
					t.Fatalf("case %+v tile %d dim %d: locked oracle %g != sharded %g",
						tc, i, j, locked[i][j], batched[i][j])
				}
			}
		}
	}
}
