package aicca

import (
	"testing"

	"github.com/eoml/eoml/internal/tile"
)

func geoTile(lat, lon float32, label int16) *tile.Tile {
	return &tile.Tile{Lat: lat, Lon: lon, Label: label}
}

func TestGeoHistogramGridsAndCounts(t *testing.T) {
	tiles := []*tile.Tile{
		geoTile(5, 5, 0),
		geoTile(7, 8, 0),
		geoTile(5, 5, 1),
		geoTile(-15, 100, 2),
		geoTile(-15, 100, 2),
		geoTile(12, 12, 3), // separate cell at 10 deg grid
		geoTile(0, 0, -1),  // unlabeled: skipped
	}
	cells, err := GeoHistogram(tiles, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(cells) != 3 {
		t.Fatalf("cells = %d: %+v", len(cells), cells)
	}
	// Sorted south to north: the -20..-10 cell first.
	south := cells[0]
	if south.LatMin != -20 || south.LonMin != 100 || south.Total != 2 {
		t.Fatalf("south cell %+v", south)
	}
	cl, share := south.DominantClass()
	if cl != 2 || share != 1.0 {
		t.Fatalf("south dominant %d %.2f", cl, share)
	}
	tropics := cells[1]
	if tropics.LatMin != 0 || tropics.Total != 3 {
		t.Fatalf("tropics cell %+v", tropics)
	}
	cl, share = tropics.DominantClass()
	if cl != 0 || share < 0.6 || share > 0.7 {
		t.Fatalf("tropics dominant %d %.2f", cl, share)
	}
}

func TestGeoHistogramValidation(t *testing.T) {
	if _, err := GeoHistogram(nil, 0); err == nil {
		t.Error("zero cell accepted")
	}
	if _, err := GeoHistogram(nil, 91); err == nil {
		t.Error("oversized cell accepted")
	}
	cells, err := GeoHistogram(nil, 10)
	if err != nil || len(cells) != 0 {
		t.Errorf("empty input: %v, %v", cells, err)
	}
}

func TestDominantClassTieBreaksLow(t *testing.T) {
	c := GeoCell{Counts: map[int]int{3: 2, 1: 2}, Total: 4}
	cl, share := c.DominantClass()
	if cl != 1 || share != 0.5 {
		t.Fatalf("dominant %d %.2f", cl, share)
	}
	empty := GeoCell{Counts: map[int]int{}}
	if cl, _ := empty.DominantClass(); cl != -1 {
		t.Fatalf("empty dominant %d", cl)
	}
}
