package fleet

import (
	"context"
	"sync"
)

// Prefetcher overlaps fetch with compute on a worker: hung off the
// endpoint's OnEnqueue hook, it sees every leased task while it waits
// for a compute slot and fetches its archive inputs ahead of execution.
// With lease-ahead capacity (WorkerConfig.PrefetchWindow) the endpoint
// queue holds the next k granules, so while granule N runs
// preprocess+inference, granules N+1..N+k stream in concurrently —
// through the same per-tenant quota and download cache the kernels use,
// so the overlap never exceeds the facility's request-rate agreement
// and never double-fetches (the cache's singleflight coalesces a
// prefetch racing its own compute slot).
type Prefetcher struct {
	k *Kernels
	// sem bounds concurrent prefetch fetches to the window size.
	sem    chan struct{}
	ctx    context.Context
	cancel context.CancelFunc
	wg     sync.WaitGroup
}

// NewPrefetcher builds a prefetcher over the worker's kernels; window
// bounds how many granules fetch ahead concurrently (<= 0 disables —
// OnEnqueue becomes a no-op).
func NewPrefetcher(k *Kernels, window int) *Prefetcher {
	ctx, cancel := context.WithCancel(context.Background())
	p := &Prefetcher{k: k, ctx: ctx, cancel: cancel}
	if window > 0 {
		p.sem = make(chan struct{}, window)
	}
	return p
}

// OnEnqueue observes one accepted task (compute.EndpointConfig's hook
// contract: called outside the endpoint lock, must not block). Only
// preprocess tasks carry archive inputs worth fetching ahead; when the
// window is already full the task is skipped — its compute slot fetches
// as usual, cache-assisted.
func (p *Prefetcher) OnEnqueue(function string, args map[string]any) {
	if p.sem == nil || function != PreprocessFunction {
		return
	}
	select {
	case p.sem <- struct{}{}:
	default:
		return // window full; no backpressure on the enqueue path
	}
	p.wg.Add(1)
	go func() {
		defer p.wg.Done()
		defer func() { <-p.sem }()
		p.k.prefetchInputs(p.ctx, args)
	}()
}

// Close cancels in-flight prefetches and waits for them to unwind.
func (p *Prefetcher) Close() {
	p.cancel()
	p.wg.Wait()
}
