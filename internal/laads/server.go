// Package laads simulates the NASA LAADS DAAC: an HTTPS archive of MODIS
// products with a listing API, token authentication, per-connection and
// aggregate bandwidth shaping, and optional fault injection.
//
// The paper's stage 1 downloads MOD02/MOD03/MOD06 granules from
// https://ladsweb.modaps.eosdis.nasa.gov with wget-style clients fanned
// out over Globus Compute workers. Real LAADS needs credentials and
// serves ~60 GB/day; this server generates synthetic granules on demand
// (package modis) and reproduces the *transfer* behaviour that drives
// Fig. 3 — per-connection throughput caps, shared aggregate bandwidth,
// and per-request overhead — over a real net/http stack.
//
// URL layout (mirroring the LAADS archive tree):
//
//	GET /archive/{product}/{year}/{doy}/            JSON listing
//	GET /archive/{product}/{year}/{doy}/{file}      granule bytes
package laads

import (
	"context"
	"encoding/json"
	"fmt"
	"math/rand"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"time"

	"github.com/eoml/eoml/internal/metrics"
	"github.com/eoml/eoml/internal/modis"
)

// FileInfo is one listing entry.
type FileInfo struct {
	Name string `json:"name"`
	Size int64  `json:"size"`
}

// ServerConfig tunes the simulated archive.
type ServerConfig struct {
	// ScaleDown is the granule resolution divisor (see modis.Generator).
	ScaleDown int
	// Token, when non-empty, must be presented as a Bearer token.
	Token string
	// PerConnBytesPerSec caps each response stream; 0 disables shaping.
	PerConnBytesPerSec int64
	// AggregateBytesPerSec caps the whole server; 0 disables the cap.
	// The ratio between this and the per-connection cap is what makes 6
	// download workers faster than 3 in Fig. 3 — until the aggregate pipe
	// saturates.
	AggregateBytesPerSec int64
	// RequestOverhead delays every response, modeling TLS + archive
	// latency (the fixed cost that penalizes single-file downloads).
	RequestOverhead time.Duration
	// FailureRate injects 503 responses with the given probability.
	FailureRate float64
	// Seed drives fault injection.
	Seed int64
	// CacheGranules bounds the number of encoded granules kept in memory.
	CacheGranules int
	// Metrics, when set, receives request, byte, and token-bucket-wait
	// series. Nil is valid (throwaway metrics).
	Metrics *metrics.Registry
}

// Server is the archive. It implements http.Handler.
type Server struct {
	cfg ServerConfig
	gen *modis.Generator

	mu      sync.Mutex
	rng     *rand.Rand
	cache   map[string][]byte
	order   []string // FIFO eviction
	limiter *tokenBucket

	requests  int64
	bytesSent int64

	mRequests  *metrics.Counter
	mFaults    *metrics.Counter
	mBytes     *metrics.Counter
	mTokenWait *metrics.Histogram
}

// NewServer builds an archive server.
func NewServer(cfg ServerConfig) (*Server, error) {
	if cfg.ScaleDown == 0 {
		cfg.ScaleDown = 16
	}
	if cfg.CacheGranules == 0 {
		cfg.CacheGranules = 64
	}
	gen, err := modis.NewGenerator(cfg.ScaleDown)
	if err != nil {
		return nil, err
	}
	s := &Server{
		cfg:   cfg,
		gen:   gen,
		rng:   rand.New(rand.NewSource(cfg.Seed)),
		cache: map[string][]byte{},
	}
	if cfg.AggregateBytesPerSec > 0 {
		s.limiter = newTokenBucket(cfg.AggregateBytesPerSec)
	}
	s.mRequests = cfg.Metrics.Counter("eoml_laads_server_requests_total",
		"Archive requests received (listings and granules).")
	s.mFaults = cfg.Metrics.Counter("eoml_laads_server_faults_total",
		"Injected 503 responses (fault injection).")
	s.mBytes = cfg.Metrics.Counter("eoml_laads_server_bytes_total",
		"Granule payload bytes sent, counted after shaping.")
	s.mTokenWait = cfg.Metrics.Histogram("eoml_laads_server_token_wait_seconds",
		"Seconds each chunk waited on the aggregate-bandwidth token bucket.",
		metrics.DurationBuckets())
	return s, nil
}

// Stats reports request and byte counters.
func (s *Server) Stats() (requests, bytesSent int64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.requests, s.bytesSent
}

// ServeHTTP routes archive requests.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	s.requests++
	fail := s.cfg.FailureRate > 0 && s.rng.Float64() < s.cfg.FailureRate
	s.mu.Unlock()
	s.mRequests.Inc()

	if s.cfg.Token != "" {
		if r.Header.Get("Authorization") != "Bearer "+s.cfg.Token {
			http.Error(w, "missing or invalid LAADS token", http.StatusUnauthorized)
			return
		}
	}
	if fail {
		s.mFaults.Inc()
		http.Error(w, "simulated archive fault", http.StatusServiceUnavailable)
		return
	}
	if s.cfg.RequestOverhead > 0 {
		// Tied to the request context: a client that gives up mid-overhead
		// releases the handler goroutine instead of pinning it.
		if err := sleepCtx(r.Context(), s.cfg.RequestOverhead); err != nil {
			return
		}
	}

	parts := strings.Split(strings.Trim(r.URL.Path, "/"), "/")
	if len(parts) < 4 || parts[0] != "archive" {
		http.NotFound(w, r)
		return
	}
	product, err := modis.ParseProduct(parts[1])
	if err != nil {
		http.Error(w, err.Error(), http.StatusNotFound)
		return
	}
	year, err1 := strconv.Atoi(parts[2])
	doy, err2 := strconv.Atoi(parts[3])
	if err1 != nil || err2 != nil {
		http.Error(w, "bad year/doy", http.StatusBadRequest)
		return
	}
	switch len(parts) {
	case 4:
		s.serveListing(w, product, year, doy)
	case 5:
		s.serveGranule(w, r, product, year, doy, parts[4])
	default:
		http.NotFound(w, r)
	}
}

func (s *Server) serveListing(w http.ResponseWriter, p modis.Product, year, doy int) {
	listing := make([]FileInfo, 0, modis.GranulesPerDay)
	for idx := 0; idx < modis.GranulesPerDay; idx++ {
		g := modis.GranuleID{Satellite: p.Satellite, Year: year, DOY: doy, Index: idx}
		if g.Validate() != nil {
			http.Error(w, "bad date", http.StatusBadRequest)
			return
		}
		listing = append(listing, FileInfo{
			Name: modis.FileName(p, g),
			// The listing advertises paper-scale nominal sizes; the body
			// served is the generated (scaled) granule. Clients measure
			// speed against actual bytes transferred.
			Size: modis.NominalBytes(p),
		})
	}
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(listing); err != nil {
		// Client went away mid-encode; nothing sensible to do.
		return
	}
}

func (s *Server) serveGranule(w http.ResponseWriter, r *http.Request, p modis.Product, year, doy int, name string) {
	wantP, g, err := modis.ParseFileName(name)
	if err != nil || wantP != p || g.Year != year || g.DOY != doy {
		http.Error(w, "no such granule", http.StatusNotFound)
		return
	}
	data, err := s.granuleBytes(p, g, name)
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Header().Set("Content-Length", strconv.Itoa(len(data)))
	s.sendShaped(r.Context(), w, data)
}

// granuleBytes returns (and caches) the encoded granule.
func (s *Server) granuleBytes(p modis.Product, g modis.GranuleID, key string) ([]byte, error) {
	s.mu.Lock()
	if data, ok := s.cache[key]; ok {
		s.mu.Unlock()
		return data, nil
	}
	s.mu.Unlock()

	data, err := s.gen.GenerateBytes(p, g)
	if err != nil {
		return nil, err
	}

	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.cache[key]; !ok {
		s.cache[key] = data
		s.order = append(s.order, key)
		for len(s.order) > s.cfg.CacheGranules {
			delete(s.cache, s.order[0])
			s.order = s.order[1:]
		}
	}
	return data, nil
}

// sendShaped writes data under the per-connection and aggregate caps.
// Pacing happens *before* each chunk (against the bytes already sent), so
// a file smaller than one chunk still observes the rate on its tail and a
// throttled connection never bursts the whole payload at once. Every wait
// observes ctx (the request context), so a client that disconnects mid-
// transfer releases its server goroutine immediately instead of sleeping
// through the remaining shaped bytes.
func (s *Server) sendShaped(ctx context.Context, w http.ResponseWriter, data []byte) {
	chunk := 64 << 10
	if s.cfg.PerConnBytesPerSec > 0 {
		// ~20 pacing decisions per second of nominal transfer time.
		chunk = int(s.cfg.PerConnBytesPerSec / 20)
		if chunk < 1<<10 {
			chunk = 1 << 10
		}
		if chunk > 64<<10 {
			chunk = 64 << 10
		}
	}
	flusher, _ := w.(http.Flusher)
	sent := 0
	start := time.Now()
	for sent < len(data) {
		if s.cfg.PerConnBytesPerSec > 0 && sent > 0 {
			ideal := time.Duration(float64(sent) / float64(s.cfg.PerConnBytesPerSec) * float64(time.Second))
			if elapsed := time.Since(start); elapsed < ideal {
				if err := sleepCtx(ctx, ideal-elapsed); err != nil {
					return
				}
			}
		}
		n := chunk
		if sent+n > len(data) {
			n = len(data) - sent
		}
		if s.limiter != nil {
			waitStart := time.Now()
			if err := s.limiter.take(ctx, int64(n)); err != nil {
				return
			}
			s.mTokenWait.Observe(time.Since(waitStart).Seconds())
		}
		if _, err := w.Write(data[sent : sent+n]); err != nil {
			return
		}
		if flusher != nil {
			flusher.Flush()
		}
		sent += n
		s.mu.Lock()
		s.bytesSent += int64(n)
		s.mu.Unlock()
		s.mBytes.Add(int64(n))
	}
}

// sleepCtx waits for d or until ctx is cancelled, whichever comes first.
func sleepCtx(ctx context.Context, d time.Duration) error {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// tokenBucket is a blocking byte-rate limiter shared by all connections.
type tokenBucket struct {
	mu     sync.Mutex
	rate   int64 // bytes per second
	tokens float64
	last   time.Time
}

func newTokenBucket(rate int64) *tokenBucket {
	return &tokenBucket{rate: rate, tokens: float64(rate) / 10, last: time.Now()}
}

// take blocks until n bytes of budget are available or ctx is cancelled.
// Each wait is sized to the current deficit rather than a fixed poll
// interval, and a cancelled waiter consumes no budget — so one dead
// connection never steals tokens from the live ones.
func (b *tokenBucket) take(ctx context.Context, n int64) error {
	for {
		b.mu.Lock()
		now := time.Now()
		b.tokens += now.Sub(b.last).Seconds() * float64(b.rate)
		b.last = now
		if cap := float64(b.rate); b.tokens > cap {
			b.tokens = cap
		}
		if b.tokens >= float64(n) {
			b.tokens -= float64(n)
			b.mu.Unlock()
			return nil
		}
		deficit := float64(n) - b.tokens
		b.mu.Unlock()
		if err := sleepCtx(ctx, time.Duration(deficit/float64(b.rate)*float64(time.Second))); err != nil {
			return err
		}
	}
}

// String describes the server configuration.
func (s *Server) String() string {
	return fmt.Sprintf("laads.Server{scale=%d, perConn=%dB/s, aggregate=%dB/s}",
		s.cfg.ScaleDown, s.cfg.PerConnBytesPerSec, s.cfg.AggregateBytesPerSec)
}
