// Package slurmsim is a discrete-event Slurm-like scheduler over the
// simulated cluster: jobs request whole nodes, wait FCFS in a queue, and
// receive an allocation with a configurable scheduler latency — the
// "Slurm scheduler allocating nodes" component of the preprocessing
// launch latency in Fig. 7. Parsl's block requests map one-to-one onto
// these jobs.
package slurmsim

import (
	"fmt"

	"github.com/eoml/eoml/internal/cluster"
	"github.com/eoml/eoml/internal/sim"
)

// Config tunes the scheduler.
type Config struct {
	// SchedLatency is the virtual delay between a job reaching the head
	// of the queue with free nodes and its allocation starting.
	SchedLatency sim.Duration
}

// JobState tracks a job through the queue.
type JobState string

// Job states, named as in squeue.
const (
	StatePending   JobState = "PENDING"
	StateRunning   JobState = "RUNNING"
	StateCompleted JobState = "COMPLETED"
)

// Allocation is a granted set of nodes. Call Release when the job ends.
type Allocation struct {
	JobID int
	Nodes []*cluster.Node

	s        *Scheduler
	released bool
}

// Release returns the nodes to the scheduler.
func (a *Allocation) Release() {
	if a.released {
		return
	}
	a.released = true
	a.s.release(a)
}

// Scheduler allocates whole nodes FCFS.
type Scheduler struct {
	cfg     Config
	k       *sim.Kernel
	machine *cluster.Machine

	free    []int // free node IDs, ascending
	queue   []*job
	states  map[int]JobState
	nextJob int
}

type job struct {
	id    int
	nodes int
	run   func(*Allocation)
}

// New builds a scheduler over a machine.
func New(k *sim.Kernel, m *cluster.Machine, cfg Config) *Scheduler {
	s := &Scheduler{cfg: cfg, k: k, machine: m, states: map[int]JobState{}}
	for i := 0; i < m.NumNodes(); i++ {
		s.free = append(s.free, i)
	}
	return s
}

// FreeNodes reports currently unallocated nodes.
func (s *Scheduler) FreeNodes() int { return len(s.free) }

// QueueLength reports pending jobs.
func (s *Scheduler) QueueLength() int { return len(s.queue) }

// JobState reports a job's state.
func (s *Scheduler) JobState(id int) (JobState, error) {
	st, ok := s.states[id]
	if !ok {
		return "", fmt.Errorf("slurmsim: no job %d", id)
	}
	return st, nil
}

// Submit enqueues a whole-node job; run is invoked (in virtual time) when
// the allocation is granted. Returns the job ID.
func (s *Scheduler) Submit(nodes int, run func(*Allocation)) (int, error) {
	if nodes <= 0 || nodes > s.machine.NumNodes() {
		return 0, fmt.Errorf("slurmsim: job wants %d of %d nodes", nodes, s.machine.NumNodes())
	}
	s.nextJob++
	id := s.nextJob
	s.states[id] = StatePending
	s.queue = append(s.queue, &job{id: id, nodes: nodes, run: run})
	s.dispatch()
	return id, nil
}

// dispatch grants the head of the queue while nodes are available. Strict
// FCFS: a large job at the head blocks smaller jobs behind it, as a
// no-backfill Slurm partition would.
func (s *Scheduler) dispatch() {
	for len(s.queue) > 0 {
		head := s.queue[0]
		if head.nodes > len(s.free) {
			return
		}
		s.queue = s.queue[1:]
		granted := s.free[:head.nodes]
		s.free = append([]int(nil), s.free[head.nodes:]...)

		alloc := &Allocation{JobID: head.id, s: s}
		for _, nid := range granted {
			n, err := s.machine.Node(nid)
			if err != nil {
				panic(err) // free list corrupt: programming error
			}
			alloc.Nodes = append(alloc.Nodes, n)
		}
		s.states[head.id] = StateRunning
		run := head.run
		s.k.After(s.cfg.SchedLatency, func() { run(alloc) })
	}
}

func (s *Scheduler) release(a *Allocation) {
	for _, n := range a.Nodes {
		s.free = append(s.free, n.ID)
	}
	// Keep the free list ordered for determinism.
	for i := 1; i < len(s.free); i++ {
		for j := i; j > 0 && s.free[j] < s.free[j-1]; j-- {
			s.free[j], s.free[j-1] = s.free[j-1], s.free[j]
		}
	}
	s.states[a.JobID] = StateCompleted
	s.dispatch()
}
