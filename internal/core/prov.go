package core

import (
	"fmt"
	"path/filepath"
	"time"

	"github.com/eoml/eoml/internal/modis"
	"github.com/eoml/eoml/internal/provenance"
)

// SetProvenance attaches a provenance store; subsequent Run calls record
// the full lineage of every shipped product (granules → tile file →
// labeled file → shipped file) into it.
func (p *Run) SetProvenance(store *provenance.Store) {
	p.prov = store
}

// recordGranule registers a downloaded granule entity.
func (p *Run) recordGranule(prod modis.Product, g modis.GranuleID) string {
	if p.prov == nil {
		return ""
	}
	id := "granule:" + modis.FileName(prod, g)
	// Errors here are programming errors (bad IDs); lineage must never
	// abort science runs, so they are intentionally not fatal.
	_ = p.prov.AddEntity(provenance.Entity{
		ID:   id,
		Kind: "granule",
		URI:  p.cfg.ArchiveURL + "/archive/" + prod.ShortName(),
		Attrs: map[string]string{
			"satellite": g.Satellite.String(),
			"acquired":  fmt.Sprintf("%04d-%03d %s", g.Year, g.DOY, g.HHMM()),
		},
	})
	return id
}

// recordPreprocess registers the tile entity and the preprocessing
// activity linking it to its source granules.
func (p *Run) recordPreprocess(g modis.GranuleID, tilePath string, tiles int, started, ended time.Time) {
	if p.prov == nil {
		return
	}
	var inputs []string
	for _, prod := range p.cfg.Products() {
		inputs = append(inputs, p.recordGranule(prod, g))
	}
	tileID := "tiles:" + filepath.Base(tilePath)
	_ = p.prov.AddEntity(provenance.Entity{
		ID:   tileID,
		Kind: "tiles",
		URI:  "file://" + tilePath,
		Attrs: map[string]string{
			"count": fmt.Sprint(tiles),
		},
	})
	_ = p.prov.AddActivity(provenance.Activity{
		ID:      fmt.Sprintf("preprocess:%s:%04d", filepath.Base(tilePath), g.Index),
		Name:    "preprocess",
		Agent:   "defiant",
		Started: started,
		Ended:   ended,
		Inputs:  inputs,
		Outputs: []string{tileID},
	})
}

// recordInference registers the labeled entity derived from a tile
// file. It is wired into the stage layer as the inference service's
// OnMoved hook, so every label-and-move flow reports through it.
func (p *Run) recordInference(tilePath, outboxPath string, labeled int, started, ended time.Time) {
	if p.prov == nil {
		return
	}
	tileID := "tiles:" + filepath.Base(tilePath)
	labeledID := "labeled:" + filepath.Base(outboxPath)
	_ = p.prov.AddEntity(provenance.Entity{
		ID:   labeledID,
		Kind: "tiles",
		URI:  "file://" + outboxPath,
		Attrs: map[string]string{
			"labeled": fmt.Sprint(labeled),
		},
	})
	_ = p.prov.AddActivity(provenance.Activity{
		ID:      "inference:" + filepath.Base(outboxPath),
		Name:    "inference",
		Agent:   "defiant",
		Started: started,
		Ended:   ended,
		Inputs:  []string{tileID},
		Outputs: []string{labeledID},
	})
}

// recordShipment registers shipped entities for each outbox file. It is
// the shipment stage's OnShipped hook.
func (p *Run) recordShipment(names []string, started, ended time.Time) {
	if p.prov == nil || len(names) == 0 {
		return
	}
	var inputs, outputs []string
	for _, name := range names {
		in := "labeled:" + name
		out := "shipped:" + name
		_ = p.prov.AddEntity(provenance.Entity{
			ID:   out,
			Kind: "tiles",
			URI:  "file://" + filepath.Join(p.cfg.DestDir, name),
		})
		inputs = append(inputs, in)
		outputs = append(outputs, out)
	}
	_ = p.prov.AddActivity(provenance.Activity{
		ID:      fmt.Sprintf("shipment:%d", len(names)),
		Name:    "shipment",
		Agent:   "globus-transfer",
		Started: started,
		Ended:   ended,
		Inputs:  inputs,
		Outputs: outputs,
	})
}
