// Package metrics is the pipeline's zero-dependency observability
// layer: a registry of counters, gauges, and fixed-bucket histograms
// with an atomic hot path (no locks on the increment side) and
// snapshot-on-read exposition. The Registry serves Prometheus text
// exposition and a JSON variant over HTTP (expose.go), and Health
// (health.go) tracks per-stage liveness for /healthz.
//
// The design follows the repo's instrumentation rules:
//
//   - Registration is eager and idempotent: components register every
//     series they may ever emit at construction/Instrument time (so the
//     metric catalogue is complete even on a clean run), and registering
//     the same name+labels twice returns the same metric.
//   - Increments are lock-free: Counter, Gauge, and Histogram mutate
//     only atomics. The registry mutex is touched at registration and
//     snapshot time, never per-observation.
//   - A nil *Registry is valid everywhere and hands out throwaway
//     metrics, mirroring the nil *tensor.Arena convention, so library
//     code can instrument unconditionally.
package metrics

import (
	"fmt"
	"math"
	"regexp"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Label is one name=value pair attached to a metric series.
type Label struct {
	Key   string `json:"key"`
	Value string `json:"value"`
}

// L is shorthand for building a Label.
func L(key, value string) Label { return Label{Key: key, Value: value} }

// Kind classifies a metric family.
type Kind string

// The three family kinds, named as Prometheus TYPE lines render them.
const (
	KindCounter   Kind = "counter"
	KindGauge     Kind = "gauge"
	KindHistogram Kind = "histogram"
)

// Counter is a monotonically increasing count.
type Counter struct {
	v atomic.Int64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n; negative deltas panic (counters are monotonic).
func (c *Counter) Add(n int64) {
	if n < 0 {
		panic("metrics: negative counter add")
	}
	c.v.Add(n)
}

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is a value that can go up and down.
type Gauge struct {
	v atomic.Int64
}

// Set replaces the value.
func (g *Gauge) Set(n int64) { g.v.Store(n) }

// Add adjusts the value by n (negative allowed).
func (g *Gauge) Add(n int64) { g.v.Add(n) }

// Inc adds one.
func (g *Gauge) Inc() { g.v.Add(1) }

// Dec subtracts one.
func (g *Gauge) Dec() { g.v.Add(-1) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// Histogram counts observations into fixed buckets. Bounds are upper
// bucket edges in increasing order; an implicit +Inf bucket catches the
// overflow. Observation is lock-free (one atomic add per observation
// plus a CAS loop for the running sum).
type Histogram struct {
	bounds  []float64
	counts  []atomic.Int64 // len(bounds)+1; last is +Inf overflow
	sumBits atomic.Uint64
}

// DurationBuckets is the default latency bucketing in seconds, spanning
// sub-millisecond flow actions to multi-minute downloads.
func DurationBuckets() []float64 {
	return []float64{.0005, .001, .0025, .005, .01, .025, .05, .1, .25, .5, 1, 2.5, 5, 10, 30, 60, 120, 300}
}

// SizeBuckets is the default power-of-two bucketing for batch sizes and
// object counts.
func SizeBuckets() []float64 {
	return []float64{1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024}
}

func newHistogram(bounds []float64) *Histogram {
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic(fmt.Sprintf("metrics: histogram bounds not increasing at %v", bounds[i]))
		}
	}
	return &Histogram{
		bounds: append([]float64(nil), bounds...),
		counts: make([]atomic.Int64, len(bounds)+1),
	}
}

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.bounds, v) // first bound >= v
	h.counts[i].Add(1)
	for {
		old := h.sumBits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Sum returns the sum of all observations.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sumBits.Load()) }

// Count returns the number of observations.
func (h *Histogram) Count() int64 {
	var n int64
	for i := range h.counts {
		n += h.counts[i].Load()
	}
	return n
}

// nameRE is the Prometheus metric/label name grammar.
var nameRE = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*$`)

// series is one labeled instance within a family.
type series struct {
	labels  []Label
	counter *Counter
	gauge   *Gauge
	hist    *Histogram
	fn      func() float64 // function-backed counter/gauge
}

// family groups every series sharing a metric name.
type family struct {
	name   string
	help   string
	kind   Kind
	series map[string]*series // keyed by label signature
	order  []string           // signatures in registration order
}

// Registry holds metric families and hands out their series. All
// methods are safe for concurrent use; a nil *Registry hands out
// unregistered throwaway metrics and renders empty.
type Registry struct {
	mu       sync.Mutex
	base     []Label // appended to every series (per-run/tenant identity)
	families map[string]*family
	order    []string // family names in registration order
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: map[string]*family{}}
}

// NewLabeledRegistry returns an empty registry whose base labels are
// stamped onto every series registered with it. This is how the engine
// gives each workflow run its own child registry: components keep
// emitting the same family names they always did, and the run/tenant
// identity rides in as labels — so several runs' registries can be
// merged into one exposition (MergeFamilies) without any series
// colliding and without re-registration panics.
func NewLabeledRegistry(labels ...Label) *Registry {
	for _, l := range labels {
		if !nameRE.MatchString(l.Key) {
			panic(fmt.Sprintf("metrics: invalid base label key %q", l.Key))
		}
	}
	return &Registry{base: append([]Label(nil), labels...), families: map[string]*family{}}
}

// BaseLabels returns the labels stamped onto every series.
func (r *Registry) BaseLabels() []Label {
	if r == nil {
		return nil
	}
	return append([]Label(nil), r.base...)
}

// signature renders labels into a stable map key, sorted by label key.
func signature(labels []Label) string {
	sorted := append([]Label(nil), labels...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Key < sorted[j].Key })
	var b strings.Builder
	for _, l := range sorted {
		b.WriteString(l.Key)
		b.WriteByte('=')
		b.WriteString(l.Value)
		b.WriteByte(',')
	}
	return b.String()
}

// register finds or creates the family and series for name+labels,
// panicking on name grammar violations and kind conflicts (both are
// programming errors the tests catch).
func (r *Registry) register(name, help string, kind Kind, labels []Label) *series {
	if !nameRE.MatchString(name) {
		panic(fmt.Sprintf("metrics: invalid metric name %q", name))
	}
	for _, l := range labels {
		if !nameRE.MatchString(l.Key) {
			panic(fmt.Sprintf("metrics: invalid label key %q in %s", l.Key, name))
		}
	}
	if len(r.base) > 0 {
		labels = append(append([]Label(nil), r.base...), labels...)
	}
	fam, ok := r.families[name]
	if !ok {
		fam = &family{name: name, help: help, kind: kind, series: map[string]*series{}}
		r.families[name] = fam
		r.order = append(r.order, name)
	} else if fam.kind != kind {
		panic(fmt.Sprintf("metrics: %s registered as %s, re-requested as %s", name, fam.kind, kind))
	}
	sig := signature(labels)
	s, ok := fam.series[sig]
	if !ok {
		s = &series{labels: append([]Label(nil), labels...)}
		fam.series[sig] = s
		fam.order = append(fam.order, sig)
	}
	return s
}

// Counter returns the counter for name+labels, registering it on first
// use. Idempotent: the same name+labels always yield the same Counter.
func (r *Registry) Counter(name, help string, labels ...Label) *Counter {
	if r == nil {
		return &Counter{}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	s := r.register(name, help, KindCounter, labels)
	if s.fn != nil {
		panic(fmt.Sprintf("metrics: %s%v is function-backed", name, labels))
	}
	if s.counter == nil {
		s.counter = &Counter{}
	}
	return s.counter
}

// Gauge returns the gauge for name+labels, registering it on first use.
func (r *Registry) Gauge(name, help string, labels ...Label) *Gauge {
	if r == nil {
		return &Gauge{}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	s := r.register(name, help, KindGauge, labels)
	if s.fn != nil {
		panic(fmt.Sprintf("metrics: %s%v is function-backed", name, labels))
	}
	if s.gauge == nil {
		s.gauge = &Gauge{}
	}
	return s.gauge
}

// Histogram returns the histogram for name+labels, registering it with
// the given bucket bounds on first use (later bounds are ignored).
func (r *Registry) Histogram(name, help string, bounds []float64, labels ...Label) *Histogram {
	if r == nil {
		return newHistogram(bounds)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	s := r.register(name, help, KindHistogram, labels)
	if s.hist == nil {
		s.hist = newHistogram(bounds)
	}
	return s.hist
}

// GaugeFunc registers a gauge whose value is read from fn at snapshot
// time — for values a component already tracks (queue depths, worker
// counts). Re-registering the same name+labels replaces fn, so a
// successor component (e.g. a fresh executor with the same label) takes
// over the series.
func (r *Registry) GaugeFunc(name, help string, fn func() float64, labels ...Label) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	s := r.register(name, help, KindGauge, labels)
	s.fn = fn
}

// CounterFunc registers a counter whose value is read from fn at
// snapshot time; fn must be monotonic. Re-registering replaces fn.
func (r *Registry) CounterFunc(name, help string, fn func() float64, labels ...Label) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	s := r.register(name, help, KindCounter, labels)
	s.fn = fn
}

// HistogramSnapshot is the frozen state of one histogram series.
type HistogramSnapshot struct {
	// Bounds are the upper bucket edges; Cumulative[i] counts
	// observations <= Bounds[i]. The +Inf bucket equals Count.
	Bounds     []float64 `json:"bounds"`
	Cumulative []int64   `json:"cumulative"`
	Count      int64     `json:"count"`
	Sum        float64   `json:"sum"`
}

// Series is the frozen state of one labeled series.
type Series struct {
	Labels    []Label            `json:"labels,omitempty"`
	Value     float64            `json:"value"`
	Histogram *HistogramSnapshot `json:"histogram,omitempty"`
}

// Family is the frozen state of one metric family.
type Family struct {
	Name   string   `json:"name"`
	Help   string   `json:"help"`
	Kind   Kind     `json:"kind"`
	Series []Series `json:"series"`
}

// Snapshot freezes every family for exposition, families in
// registration order, series in registration order within a family.
func (r *Registry) Snapshot() []Family {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]Family, 0, len(r.order))
	for _, name := range r.order {
		fam := r.families[name]
		fs := Family{Name: fam.name, Help: fam.help, Kind: fam.kind}
		for _, sig := range fam.order {
			s := fam.series[sig]
			snap := Series{Labels: s.labels}
			switch {
			case s.fn != nil:
				snap.Value = s.fn()
			case s.counter != nil:
				snap.Value = float64(s.counter.Value())
			case s.gauge != nil:
				snap.Value = float64(s.gauge.Value())
			case s.hist != nil:
				h := &HistogramSnapshot{
					Bounds:     append([]float64(nil), s.hist.bounds...),
					Cumulative: make([]int64, len(s.hist.bounds)),
					Sum:        s.hist.Sum(),
				}
				var cum int64
				for i := range s.hist.counts {
					cum += s.hist.counts[i].Load()
					if i < len(h.Cumulative) {
						h.Cumulative[i] = cum
					}
				}
				h.Count = cum
				snap.Histogram = h
			}
			fs.Series = append(fs.Series, snap)
		}
		out = append(out, fs)
	}
	return out
}
