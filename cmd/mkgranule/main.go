// Command mkgranule writes synthetic MODIS granules to disk — handy for
// inspecting the data model without running the archive server.
//
// Usage:
//
//	mkgranule -out /tmp/granules -year 2022 -doy 1 -index 150 -scale 16 \
//	    -products MOD021KM,MOD03,MOD06_L2
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"strings"

	"github.com/eoml/eoml/internal/hdf"
	"github.com/eoml/eoml/internal/modis"
)

func main() {
	out := flag.String("out", ".", "output directory")
	year := flag.Int("year", 2022, "acquisition year")
	doy := flag.Int("doy", 1, "day of year")
	index := flag.Int("index", 150, "five-minute granule slot (0..287)")
	count := flag.Int("count", 1, "number of consecutive granules")
	scale := flag.Int("scale", 16, "resolution divisor")
	sat := flag.String("satellite", "Terra", "Terra or Aqua")
	productsArg := flag.String("products", "MOD021KM,MOD03,MOD06_L2", "comma-separated product short names")
	flag.Parse()

	satellite := modis.Terra
	if strings.EqualFold(*sat, "aqua") {
		satellite = modis.Aqua
	}
	gen, err := modis.NewGenerator(*scale)
	if err != nil {
		log.Fatalf("mkgranule: %v", err)
	}
	if err := os.MkdirAll(*out, 0o755); err != nil {
		log.Fatalf("mkgranule: %v", err)
	}

	var products []modis.Product
	for _, name := range strings.Split(*productsArg, ",") {
		p, err := modis.ParseProduct(strings.TrimSpace(name))
		if err != nil {
			log.Fatalf("mkgranule: %v", err)
		}
		if p.Satellite != satellite {
			log.Fatalf("mkgranule: product %s does not match satellite %s", name, satellite)
		}
		products = append(products, p)
	}

	for i := 0; i < *count; i++ {
		g := modis.GranuleID{Satellite: satellite, Year: *year, DOY: *doy, Index: *index + i}
		if err := g.Validate(); err != nil {
			log.Fatalf("mkgranule: %v", err)
		}
		for _, p := range products {
			f, err := gen.Generate(p, g)
			if err != nil {
				log.Fatalf("mkgranule: %v", err)
			}
			name := modis.FileName(p, g)
			path := filepath.Join(*out, name)
			if err := hdf.WriteFile(path, f); err != nil {
				log.Fatalf("mkgranule: %v", err)
			}
			info, _ := os.Stat(path)
			flag, _ := f.AttrString("DayNightFlag")
			fmt.Printf("wrote %s (%d bytes, %s)\n", path, info.Size(), flag)
		}
	}
}
