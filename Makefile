# Standard entry points for the eoml repo.
#
#   make check   — what CI runs: gofmt gate + vet + eomlvet + race tests
#   make lint    — the repo's own analyzer suite (cmd/eomlvet)
#   make bench   — the hot-path benchmarks recorded in BENCH_1.json

GO ?= go

.PHONY: build test vet lint race fmt bench bench-all check

build:
	$(GO) build ./...

# gofmt cleanliness gate: fails listing any file that needs formatting.
fmt:
	@unformatted=$$(gofmt -l .); \
	if [ -n "$$unformatted" ]; then \
		echo "gofmt required for:"; echo "$$unformatted"; exit 1; \
	fi

test:
	$(GO) test ./...

# go vet plus the two extra passes worth running explicitly: copied locks
# and discarded pure-function results.
vet:
	$(GO) vet ./...
	$(GO) vet -copylocks -unusedresult ./...

# eomlvet: the repo's own stdlib-only analyzers for concurrency and
# resource invariants (see DESIGN.md §10). Exits non-zero on any finding.
lint:
	$(GO) run ./cmd/eomlvet ./...

race:
	$(GO) test -race ./...

# Hot-path benchmarks from this PR (kernels, arena, batching).
bench:
	$(GO) test -run xxx -bench 'BenchmarkMatMulBlocked|BenchmarkEncodeArena|BenchmarkLabelFileBatched' -benchmem -benchtime 1s .

# Every figure/table/ablation benchmark in the repo.
bench-all:
	$(GO) test -run xxx -bench . -benchmem ./...

check: fmt vet lint race
