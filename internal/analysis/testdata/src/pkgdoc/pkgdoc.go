// A fixture whose package comment does not follow the godoc
// "Package pkgdoc ..." convention, so tooling never renders it.
package pkgdoc // want "does not start .Package pkgdoc."

// Exported is here so the package has content.
const Exported = 1
