// Package parsl reimplements the core of the Parsl parallel programming
// library used by the paper's preprocessing stage: apps that return
// futures, a DataFlowKernel that fires tasks when their dependencies
// resolve, and a high-throughput executor that acquires elastic "blocks"
// of workers from a provider (the Slurm provider on Defiant; a local
// provider here).
//
// The semantics reproduced are the ones the paper's scaling experiments
// exercise: blocks of nodes × workers-per-node, automatic scale-out while
// work is queued, scale-in of idle blocks, task retries, and worker-count
// observability for the Fig. 6 timeline.
package parsl

import (
	"context"
	"fmt"
	"sync"
	"time"

	"github.com/eoml/eoml/internal/metrics"
)

// Provider allocates and releases blocks of workers, abstracting the
// cluster resource manager (Slurm on Defiant).
type Provider interface {
	// Allocate requests a block; it blocks until the block is granted (as
	// a Slurm batch allocation would wait in queue) or ctx is cancelled,
	// and returns a handle.
	Allocate(ctx context.Context, nodes, workersPerNode int) (blockID string, err error)
	// Release returns a block to the resource manager.
	Release(blockID string) error
}

// LocalProvider grants blocks immediately (optionally after a fixed
// allocation delay that models scheduler latency — part of the
// preprocessing launch latency measured in Fig. 7).
type LocalProvider struct {
	// AllocationDelay is slept before each grant.
	AllocationDelay time.Duration
	// MaxNodes bounds total allocated nodes; 0 means unlimited.
	MaxNodes int

	mu        sync.Mutex
	nextBlock int
	nodesUsed map[string]int
}

// Allocate grants a block after the configured delay. A cancellation
// during the delay rolls the grant back — the nodes return to the pool.
func (p *LocalProvider) Allocate(ctx context.Context, nodes, workersPerNode int) (string, error) {
	if nodes <= 0 || workersPerNode <= 0 {
		return "", fmt.Errorf("parsl: block of %d nodes × %d workers", nodes, workersPerNode)
	}
	p.mu.Lock()
	if p.nodesUsed == nil {
		p.nodesUsed = map[string]int{}
	}
	if p.MaxNodes > 0 {
		total := 0
		for _, n := range p.nodesUsed {
			total += n
		}
		if total+nodes > p.MaxNodes {
			p.mu.Unlock()
			return "", fmt.Errorf("parsl: provider at capacity (%d/%d nodes)", total, p.MaxNodes)
		}
	}
	p.nextBlock++
	id := fmt.Sprintf("block-%04d", p.nextBlock)
	p.nodesUsed[id] = nodes
	p.mu.Unlock()
	if p.AllocationDelay > 0 {
		t := time.NewTimer(p.AllocationDelay)
		select {
		case <-t.C:
		case <-ctx.Done():
			t.Stop()
			p.mu.Lock()
			delete(p.nodesUsed, id)
			p.mu.Unlock()
			return "", ctx.Err()
		}
	}
	return id, nil
}

// Release frees a block.
func (p *LocalProvider) Release(blockID string) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if _, ok := p.nodesUsed[blockID]; !ok {
		return fmt.Errorf("parsl: unknown block %q", blockID)
	}
	delete(p.nodesUsed, blockID)
	return nil
}

// NodesInUse reports currently allocated nodes.
func (p *LocalProvider) NodesInUse() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	total := 0
	for _, n := range p.nodesUsed {
		total += n
	}
	return total
}

// HTEXConfig tunes a HighThroughputExecutor.
type HTEXConfig struct {
	Label          string
	Provider       Provider
	NodesPerBlock  int
	WorkersPerNode int
	// InitBlocks blocks are allocated at Start.
	InitBlocks int
	// MinBlocks/MaxBlocks bound elastic scaling.
	MinBlocks, MaxBlocks int
	// ScaleInterval is the elasticity check period.
	ScaleInterval time.Duration
	// IdleTimeout: a block idle this long is released (scale-in).
	IdleTimeout time.Duration
	// OnWorkerChange observes the busy-worker count after every change.
	OnWorkerChange func(busy int)
}

func (c *HTEXConfig) fillDefaults() error {
	if c.Provider == nil {
		c.Provider = &LocalProvider{}
	}
	if c.NodesPerBlock <= 0 {
		c.NodesPerBlock = 1
	}
	if c.WorkersPerNode <= 0 {
		return fmt.Errorf("parsl: executor %q needs workers per node", c.Label)
	}
	if c.MaxBlocks <= 0 {
		c.MaxBlocks = 1
	}
	if c.InitBlocks > c.MaxBlocks {
		c.InitBlocks = c.MaxBlocks
	}
	if c.MinBlocks > c.MaxBlocks {
		return fmt.Errorf("parsl: executor %q MinBlocks %d > MaxBlocks %d", c.Label, c.MinBlocks, c.MaxBlocks)
	}
	if c.ScaleInterval <= 0 {
		c.ScaleInterval = 10 * time.Millisecond
	}
	if c.IdleTimeout <= 0 {
		c.IdleTimeout = 100 * time.Millisecond
	}
	return nil
}

// HighThroughputExecutor runs tasks on elastic blocks of workers.
type HighThroughputExecutor struct {
	cfg HTEXConfig

	mu       sync.Mutex
	idle     *sync.Cond // signalled whenever queued or busy drops
	queue    chan func()
	queued   int
	busy     int
	blocks   map[string]*block
	started  bool
	shutdown bool
	scalerWG sync.WaitGroup
	stopScal chan struct{}
}

type block struct {
	id       string
	stop     chan struct{}
	wg       sync.WaitGroup
	lastBusy time.Time
}

// NewHTEX builds an executor.
func NewHTEX(cfg HTEXConfig) (*HighThroughputExecutor, error) {
	if err := cfg.fillDefaults(); err != nil {
		return nil, err
	}
	e := &HighThroughputExecutor{
		cfg:      cfg,
		queue:    make(chan func(), 1<<16),
		blocks:   map[string]*block{},
		stopScal: make(chan struct{}),
	}
	e.idle = sync.NewCond(&e.mu)
	return e, nil
}

// Label names the executor.
func (e *HighThroughputExecutor) Label() string { return e.cfg.Label }

// Start allocates the initial blocks and launches the elasticity loop.
// ctx bounds the initial allocations and every scale-out the elasticity
// loop performs afterwards; cancelling it stops scale-outs but not the
// executor itself (Shutdown owns teardown).
func (e *HighThroughputExecutor) Start(ctx context.Context) error {
	e.mu.Lock()
	if e.started {
		e.mu.Unlock()
		return nil
	}
	e.started = true
	e.mu.Unlock()
	for i := 0; i < e.cfg.InitBlocks; i++ {
		if err := e.addBlock(ctx); err != nil {
			return err
		}
	}
	e.scalerWG.Add(1)
	go e.scaler(ctx)
	return nil
}

// Submit enqueues a ready task closure.
func (e *HighThroughputExecutor) Submit(task func()) error {
	e.mu.Lock()
	if !e.started || e.shutdown {
		e.mu.Unlock()
		return fmt.Errorf("parsl: executor %q not running", e.cfg.Label)
	}
	e.queued++
	e.mu.Unlock()
	select {
	case e.queue <- task:
		return nil
	default:
		e.mu.Lock()
		e.queued--
		e.idle.Broadcast()
		e.mu.Unlock()
		return fmt.Errorf("parsl: executor %q queue full", e.cfg.Label)
	}
}

// Shutdown stops scaling, drains queued tasks, and releases all blocks.
// ctx bounds the drain block allocated when every block was already
// scaled in; queued work still drains after cancellation, on whatever
// blocks exist.
func (e *HighThroughputExecutor) Shutdown(ctx context.Context) error {
	e.mu.Lock()
	if !e.started || e.shutdown {
		e.mu.Unlock()
		return nil
	}
	e.shutdown = true
	e.mu.Unlock()

	close(e.stopScal)
	e.scalerWG.Wait()

	// Ensure something can drain the queue even if all blocks were scaled
	// in before shutdown.
	e.mu.Lock()
	needBlock := e.queued > 0 && len(e.blocks) == 0
	e.mu.Unlock()
	if needBlock {
		if err := e.addBlock(ctx); err != nil {
			return fmt.Errorf("parsl: shutdown drain: %w", err)
		}
	}

	// Drain: wait until the queue empties and no worker is busy. Workers
	// signal e.idle on every decrement, so this blocks without polling.
	e.mu.Lock()
	for e.queued != 0 || e.busy != 0 {
		e.idle.Wait()
	}
	e.mu.Unlock()
	close(e.queue)

	e.mu.Lock()
	blocks := make([]*block, 0, len(e.blocks))
	for _, b := range e.blocks {
		blocks = append(blocks, b)
	}
	e.blocks = map[string]*block{}
	e.mu.Unlock()
	for _, b := range blocks {
		close(b.stop)
		b.wg.Wait()
		if err := e.cfg.Provider.Release(b.id); err != nil {
			return err
		}
	}
	return nil
}

// BusyWorkers reports workers currently executing a task.
func (e *HighThroughputExecutor) BusyWorkers() int {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.busy
}

// Blocks reports the current block count.
func (e *HighThroughputExecutor) Blocks() int {
	e.mu.Lock()
	defer e.mu.Unlock()
	return len(e.blocks)
}

// QueuedTasks reports tasks waiting for a worker.
func (e *HighThroughputExecutor) QueuedTasks() int {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.queued
}

// Instrument exports the executor's queue and worker gauges to reg,
// labeled with the executor's Label. Function-backed: the gauges read
// live executor state at scrape time; re-instrumenting the same label
// hands the series to the newest executor (batch drivers build a fresh
// HTEX per run).
func (e *HighThroughputExecutor) Instrument(reg *metrics.Registry) {
	l := metrics.L("executor", e.cfg.Label)
	reg.GaugeFunc("eoml_executor_busy_workers",
		"Workers currently executing a task.",
		func() float64 { return float64(e.BusyWorkers()) }, l)
	reg.GaugeFunc("eoml_executor_queued_tasks",
		"Tasks waiting for a free worker.",
		func() float64 { return float64(e.QueuedTasks()) }, l)
	reg.GaugeFunc("eoml_executor_blocks",
		"Elastic worker blocks currently allocated.",
		func() float64 { return float64(e.Blocks()) }, l)
}

func (e *HighThroughputExecutor) addBlock(ctx context.Context) error {
	id, err := e.cfg.Provider.Allocate(ctx, e.cfg.NodesPerBlock, e.cfg.WorkersPerNode)
	if err != nil {
		return err
	}
	b := &block{id: id, stop: make(chan struct{}), lastBusy: time.Now()}
	workers := e.cfg.NodesPerBlock * e.cfg.WorkersPerNode
	for w := 0; w < workers; w++ {
		b.wg.Add(1)
		go e.worker(b)
	}
	e.mu.Lock()
	e.blocks[id] = b
	e.mu.Unlock()
	return nil
}

func (e *HighThroughputExecutor) worker(b *block) {
	defer b.wg.Done()
	for {
		select {
		case <-b.stop:
			return
		case task, ok := <-e.queue:
			if !ok {
				return
			}
			e.mu.Lock()
			e.queued--
			e.busy++
			busy := e.busy
			b.lastBusy = time.Now()
			hook := e.cfg.OnWorkerChange
			e.mu.Unlock()
			if hook != nil {
				hook(busy)
			}
			task()
			e.mu.Lock()
			e.busy--
			busy = e.busy
			b.lastBusy = time.Now()
			e.idle.Broadcast()
			e.mu.Unlock()
			if hook != nil {
				hook(busy)
			}
		}
	}
}

// scaler implements the elasticity strategy: scale out while tasks queue,
// scale idle blocks in. ctx (from Start) bounds each scale-out
// allocation.
func (e *HighThroughputExecutor) scaler(ctx context.Context) {
	defer e.scalerWG.Done()
	ticker := time.NewTicker(e.cfg.ScaleInterval)
	defer ticker.Stop()
	for {
		select {
		case <-e.stopScal:
			return
		case <-ticker.C:
		}
		e.mu.Lock()
		queued := e.queued
		nblocks := len(e.blocks)
		var idleBlock *block
		now := time.Now()
		for _, b := range e.blocks {
			if now.Sub(b.lastBusy) > e.cfg.IdleTimeout {
				idleBlock = b
				break
			}
		}
		e.mu.Unlock()

		switch {
		case queued > 0 && nblocks < e.cfg.MaxBlocks:
			// Scale out. Allocation errors are retried on the next tick.
			_ = e.addBlock(ctx)
		case queued == 0 && idleBlock != nil && nblocks > e.cfg.MinBlocks:
			// Scale in the idle block.
			e.mu.Lock()
			delete(e.blocks, idleBlock.id)
			e.mu.Unlock()
			close(idleBlock.stop)
			idleBlock.wg.Wait()
			_ = e.cfg.Provider.Release(idleBlock.id)
		}
	}
}
