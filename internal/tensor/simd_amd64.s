//go:build amd64

#include "textflag.h"

// func cpuSupportsAVX2FMA() bool
//
// CPUID leaf 1 ECX: FMA (bit 12), OSXSAVE (bit 27), AVX (bit 28);
// XGETBV XCR0 bits 1|2 confirm the OS saves XMM/YMM state;
// CPUID leaf 7 EBX bit 5 is AVX2.
TEXT ·cpuSupportsAVX2FMA(SB), NOSPLIT, $0-1
	MOVL $1, AX
	XORL CX, CX
	CPUID
	MOVL CX, R8
	ANDL $0x18001000, R8
	CMPL R8, $0x18001000
	JNE  no
	XORL CX, CX
	XGETBV
	ANDL $6, AX
	CMPL AX, $6
	JNE  no
	MOVL $7, AX
	XORL CX, CX
	CPUID
	ANDL $0x20, BX
	JZ   no
	MOVB $1, ret+0(FP)
	RET
no:
	MOVB $0, ret+0(FP)
	RET

// func axpyAVX(alpha float32, x, y []float32)
//
// y[i] += alpha * x[i] for i < len(x). Caller guarantees
// len(y) >= len(x). 4x-unrolled 8-wide FMA body, then an 8-wide loop,
// then a scalar loop for the remainder.
TEXT ·axpyAVX(SB), NOSPLIT, $0-56
	VBROADCASTSS alpha+0(FP), Y0
	MOVQ x_base+8(FP), SI
	MOVQ x_len+16(FP), CX
	MOVQ y_base+32(FP), DI
	MOVQ CX, DX
	SHRQ $5, DX
	JZ   axpy_tail8
axpy_loop32:
	VMOVUPS (SI), Y1
	VMOVUPS 32(SI), Y2
	VMOVUPS 64(SI), Y3
	VMOVUPS 96(SI), Y4
	VFMADD213PS (DI), Y0, Y1
	VFMADD213PS 32(DI), Y0, Y2
	VFMADD213PS 64(DI), Y0, Y3
	VFMADD213PS 96(DI), Y0, Y4
	VMOVUPS Y1, (DI)
	VMOVUPS Y2, 32(DI)
	VMOVUPS Y3, 64(DI)
	VMOVUPS Y4, 96(DI)
	ADDQ $128, SI
	ADDQ $128, DI
	DECQ DX
	JNZ  axpy_loop32
axpy_tail8:
	MOVQ CX, DX
	ANDQ $31, DX
	MOVQ DX, R8
	SHRQ $3, R8
	JZ   axpy_tail1
axpy_loop8:
	VMOVUPS (SI), Y1
	VFMADD213PS (DI), Y0, Y1
	VMOVUPS Y1, (DI)
	ADDQ $32, SI
	ADDQ $32, DI
	DECQ R8
	JNZ  axpy_loop8
axpy_tail1:
	ANDQ $7, DX
	JZ   axpy_done
axpy_loop1:
	VMOVSS (SI), X1
	VFMADD213SS (DI), X0, X1
	VMOVSS X1, (DI)
	ADDQ $4, SI
	ADDQ $4, DI
	DECQ DX
	JNZ  axpy_loop1
axpy_done:
	VZEROUPPER
	RET

// func dotAVX(x, y []float32) float32
//
// Inner product over len(x) elements. Caller guarantees
// len(y) >= len(x). Two independent 8-wide FMA accumulators hide
// FMA latency; horizontal reduction, then a scalar remainder loop.
TEXT ·dotAVX(SB), NOSPLIT, $0-52
	MOVQ x_base+0(FP), SI
	MOVQ x_len+8(FP), CX
	MOVQ y_base+24(FP), DI
	VXORPS Y0, Y0, Y0
	VXORPS Y5, Y5, Y5
	MOVQ CX, DX
	SHRQ $4, DX
	JZ   dot_reduce
dot_loop16:
	VMOVUPS (SI), Y1
	VMOVUPS 32(SI), Y2
	VFMADD231PS (DI), Y1, Y0
	VFMADD231PS 32(DI), Y2, Y5
	ADDQ $64, SI
	ADDQ $64, DI
	DECQ DX
	JNZ  dot_loop16
dot_reduce:
	VADDPS Y5, Y0, Y0
	VEXTRACTF128 $1, Y0, X1
	VADDPS X1, X0, X0
	VHADDPS X0, X0, X0
	VHADDPS X0, X0, X0
	ANDQ $15, CX
	JZ   dot_done
dot_loop1:
	VMOVSS (SI), X1
	VMOVSS (DI), X2
	VFMADD231SS X2, X1, X0
	ADDQ $4, SI
	ADDQ $4, DI
	DECQ CX
	JNZ  dot_loop1
dot_done:
	VMOVSS X0, ret+48(FP)
	VZEROUPPER
	RET

// func dotQ8x4AVX(x, w []int8, out *[4]int32)
//
// Four int8 dot products of x against the four consecutive
// length-len(x) rows packed in w (row stride = len(x)):
// out[r] = Σ x[i]·w[r·len(x)+i], accumulated exactly in int32.
// Caller guarantees len(w) >= 4*len(x).
//
// The 16-wide body widens 16 int8 to int16 (VPMOVSXBW), multiplies and
// pair-sums into 8 int32 lanes (VPMADDWD, exact: |a·b| ≤ 127² so the
// pair sum fits int16-product range into int32), and accumulates with
// VPADDD. The activation row is widened once per group and reused by
// all four weight rows. Every add is an int32 add, so any summation
// order gives the same bits as the scalar fallback.
TEXT ·dotQ8x4AVX(SB), NOSPLIT, $0-56
	MOVQ x_base+0(FP), SI
	MOVQ x_len+8(FP), CX
	MOVQ w_base+24(FP), DI
	MOVQ out+48(FP), R9
	MOVQ CX, BX           // row stride = len(x)
	LEAQ (BX)(BX*2), R11  // 3*stride
	VPXOR Y0, Y0, Y0
	VPXOR Y1, Y1, Y1
	VPXOR Y2, Y2, Y2
	VPXOR Y3, Y3, Y3
	MOVQ CX, DX
	SHRQ $4, DX
	JZ   dq8_reduce

dq8_loop16:
	VPMOVSXBW (SI), Y4
	VPMOVSXBW (DI), Y5
	VPMADDWD  Y5, Y4, Y5
	VPADDD    Y5, Y0, Y0
	VPMOVSXBW (DI)(BX*1), Y5
	VPMADDWD  Y5, Y4, Y5
	VPADDD    Y5, Y1, Y1
	VPMOVSXBW (DI)(BX*2), Y5
	VPMADDWD  Y5, Y4, Y5
	VPADDD    Y5, Y2, Y2
	VPMOVSXBW (DI)(R11*1), Y5
	VPMADDWD  Y5, Y4, Y5
	VPADDD    Y5, Y3, Y3
	ADDQ $16, SI
	ADDQ $16, DI
	DECQ DX
	JNZ  dq8_loop16

dq8_reduce:
	// Horizontal-reduce each 8-lane accumulator into a scalar register
	// so the tail loop can add into plain int32s.
	VEXTRACTI128 $1, Y0, X4
	VPADDD  X4, X0, X0
	VPSHUFD $0x4E, X0, X4
	VPADDD  X4, X0, X0
	VPSHUFD $0xB1, X0, X4
	VPADDD  X4, X0, X0
	VMOVD   X0, R8
	VEXTRACTI128 $1, Y1, X4
	VPADDD  X4, X1, X1
	VPSHUFD $0x4E, X1, X4
	VPADDD  X4, X1, X1
	VPSHUFD $0xB1, X1, X4
	VPADDD  X4, X1, X1
	VMOVD   X1, R10
	VEXTRACTI128 $1, Y2, X4
	VPADDD  X4, X2, X2
	VPSHUFD $0x4E, X2, X4
	VPADDD  X4, X2, X2
	VPSHUFD $0xB1, X2, X4
	VPADDD  X4, X2, X2
	VMOVD   X2, R12
	VEXTRACTI128 $1, Y3, X4
	VPADDD  X4, X3, X3
	VPSHUFD $0x4E, X3, X4
	VPADDD  X4, X3, X3
	VPSHUFD $0xB1, X3, X4
	VPADDD  X4, X3, X3
	VMOVD   X3, R13
	ANDQ $15, CX
	JZ   dq8_store

dq8_tail1:
	MOVBLSX (SI), AX
	MOVBLSX (DI), DX
	IMULL   AX, DX
	ADDL    DX, R8
	MOVBLSX (DI)(BX*1), DX
	IMULL   AX, DX
	ADDL    DX, R10
	MOVBLSX (DI)(BX*2), DX
	IMULL   AX, DX
	ADDL    DX, R12
	MOVBLSX (DI)(R11*1), DX
	IMULL   AX, DX
	ADDL    DX, R13
	INCQ SI
	INCQ DI
	DECQ CX
	JNZ  dq8_tail1

dq8_store:
	MOVL R8, (R9)
	MOVL R10, 4(R9)
	MOVL R12, 8(R9)
	MOVL R13, 12(R9)
	VZEROUPPER
	RET

// func maxAbsAVX(x []float32) float32
//
// Max |x[i]| over len(x) elements; len(x) must be a positive multiple
// of 8. The accumulator is the SECOND source of every VMAXPS, so a NaN
// data lane yields the accumulator (MAXPS returns the second source
// when either operand is NaN) — NaNs are ignored, matching
// maxAbsGeneric, where a NaN loses every comparison.
TEXT ·maxAbsAVX(SB), NOSPLIT, $0-28
	MOVQ x_base+0(FP), SI
	MOVQ x_len+8(FP), CX

	// Y3 = 0x7FFFFFFF lanes (abs mask), built without a constants section.
	VPCMPEQD Y3, Y3, Y3
	VPSRLD   $1, Y3, Y3
	VXORPS   Y0, Y0, Y0 // accumulator; |x| >= 0 so 0 is the identity

ma_loop8:
	VMOVUPS (SI), Y1
	VANDPS  Y3, Y1, Y1
	VMAXPS  Y0, Y1, Y0 // max(data, acc): acc survives NaN data lanes
	ADDQ    $32, SI
	SUBQ    $8, CX
	JNZ     ma_loop8

	// Horizontal max of Y0's 8 lanes.
	VEXTRACTF128 $1, Y0, X1
	VMAXPS       X0, X1, X0
	VPSHUFD      $0x4E, X0, X1
	VMAXPS       X0, X1, X0
	VPSHUFD      $0xB1, X0, X1
	VMAXPS       X0, X1, X0
	VZEROUPPER
	MOVSS X0, ret+24(FP)
	RET

// func quantize32AVX(dst []int8, src []float32, inv float32)
//
// Quantizes src into dst, 32 floats per iteration; len(src) must be a
// positive multiple of 32, len(dst) >= len(src). Per lane, bit-exactly
// quantizeVal: r = x*inv, add copysign(0.5, r), clamp to [-127, 127] in
// float (so overflow and the ±126.5 thresholds behave like the scalar
// branches), truncate toward zero, and zero NaN lanes via a self-equal
// mask. The four int32 vectors pack to int8 through VPACKSSDW/WB with
// VPERMQ $0xD8 fixing the per-128-bit-lane interleave after each pack.
TEXT ·quantize32AVX(SB), NOSPLIT, $0-52
	MOVQ dst_base+0(FP), DI
	MOVQ src_base+24(FP), SI
	MOVQ src_len+32(FP), CX

	VBROADCASTSS inv+48(FP), Y14

	// Constants: sign mask, 0.5, 127.0, -127.0.
	VPCMPEQD Y15, Y15, Y15
	VPSLLD   $31, Y15, Y10
	MOVL     $0x3F000000, AX
	VMOVD    AX, X11
	VPBROADCASTD X11, Y11
	MOVL     $0x42FE0000, AX
	VMOVD    AX, X12
	VPBROADCASTD X12, Y12
	MOVL     $0xC2FE0000, AX
	VMOVD    AX, X13
	VPBROADCASTD X13, Y13

q32_loop:
	// Group 0: elements 0-7 -> int32 in Y1.
	VMOVUPS    (SI), Y0
	VMULPS     Y14, Y0, Y0
	VANDPS     Y10, Y0, Y2
	VORPS      Y11, Y2, Y2
	VADDPS     Y2, Y0, Y2
	VMINPS     Y12, Y2, Y2
	VMAXPS     Y13, Y2, Y2
	VCVTTPS2DQ Y2, Y2
	VCMPPS     $0, Y0, Y0, Y0 // ordered self-equal: NaN lanes -> 0
	VPAND      Y0, Y2, Y1

	// Group 1: elements 8-15 -> Y3.
	VMOVUPS    32(SI), Y0
	VMULPS     Y14, Y0, Y0
	VANDPS     Y10, Y0, Y2
	VORPS      Y11, Y2, Y2
	VADDPS     Y2, Y0, Y2
	VMINPS     Y12, Y2, Y2
	VMAXPS     Y13, Y2, Y2
	VCVTTPS2DQ Y2, Y2
	VCMPPS     $0, Y0, Y0, Y0
	VPAND      Y0, Y2, Y3

	// Group 2: elements 16-23 -> Y5.
	VMOVUPS    64(SI), Y0
	VMULPS     Y14, Y0, Y0
	VANDPS     Y10, Y0, Y2
	VORPS      Y11, Y2, Y2
	VADDPS     Y2, Y0, Y2
	VMINPS     Y12, Y2, Y2
	VMAXPS     Y13, Y2, Y2
	VCVTTPS2DQ Y2, Y2
	VCMPPS     $0, Y0, Y0, Y0
	VPAND      Y0, Y2, Y5

	// Group 3: elements 24-31 -> Y7.
	VMOVUPS    96(SI), Y0
	VMULPS     Y14, Y0, Y0
	VANDPS     Y10, Y0, Y2
	VORPS      Y11, Y2, Y2
	VADDPS     Y2, Y0, Y2
	VMINPS     Y12, Y2, Y2
	VMAXPS     Y13, Y2, Y2
	VCVTTPS2DQ Y2, Y2
	VCMPPS     $0, Y0, Y0, Y0
	VPAND      Y0, Y2, Y7

	// int32x8 x4 -> int16x16 x2 -> int8x32, fixing lane interleave.
	VPACKSSDW Y3, Y1, Y1
	VPERMQ    $0xD8, Y1, Y1
	VPACKSSDW Y7, Y5, Y5
	VPERMQ    $0xD8, Y5, Y5
	VPACKSSWB Y5, Y1, Y1
	VPERMQ    $0xD8, Y1, Y1
	VMOVDQU   Y1, (DI)

	ADDQ $128, SI
	ADDQ $32, DI
	SUBQ $32, CX
	JNZ  q32_loop

	VZEROUPPER
	RET
