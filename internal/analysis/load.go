package analysis

import (
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one parsed and type-checked package.
type Package struct {
	Path  string // import path ("ctxsend" for bare fixture packages)
	Dir   string
	Files []*ast.File // non-test files only, build-tag filtered
	Types *types.Package
	Info  *types.Info
}

// Loader parses and type-checks packages of one module without the go
// tool: in-module import paths resolve straight to directories, stdlib
// imports go through the source-mode go/importer. Packages are cached,
// so shared deps (internal/tensor, internal/trace) type-check once and
// cross-package type identity holds.
type Loader struct {
	Fset       *token.FileSet
	ModuleDir  string
	ModulePath string

	build   build.Context
	std     types.ImporterFrom
	pkgs    map[string]*Package
	loading map[string]bool
}

// NewLoader builds a loader for the module rooted at moduleDir (the
// directory holding go.mod).
func NewLoader(moduleDir string) (*Loader, error) {
	modulePath, err := modulePath(filepath.Join(moduleDir, "go.mod"))
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	std, ok := importer.ForCompiler(fset, "source", nil).(types.ImporterFrom)
	if !ok {
		return nil, fmt.Errorf("analysis: source importer is not an ImporterFrom")
	}
	return &Loader{
		Fset:       fset,
		ModuleDir:  moduleDir,
		ModulePath: modulePath,
		build:      build.Default,
		std:        std,
		pkgs:       map[string]*Package{},
		loading:    map[string]bool{},
	}, nil
}

// modulePath extracts the module path from a go.mod file.
func modulePath(gomod string) (string, error) {
	data, err := os.ReadFile(gomod)
	if err != nil {
		return "", err
	}
	for _, line := range strings.Split(string(data), "\n") {
		if rest, ok := strings.CutPrefix(strings.TrimSpace(line), "module "); ok {
			return strings.Trim(strings.TrimSpace(rest), `"`), nil
		}
	}
	return "", fmt.Errorf("analysis: no module line in %s", gomod)
}

// FindModuleRoot walks up from dir to the nearest directory with a go.mod.
func FindModuleRoot(dir string) (string, error) {
	dir, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("analysis: no go.mod at or above %s", dir)
		}
		dir = parent
	}
}

// LoadAll loads every package directory under the module root, skipping
// testdata, hidden directories, and directories with no buildable
// non-test Go files. Results are sorted by import path.
func (l *Loader) LoadAll() ([]*Package, error) {
	var pkgs []*Package
	err := filepath.WalkDir(l.ModuleDir, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if path != l.ModuleDir && (name == "testdata" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
			return filepath.SkipDir
		}
		names, err := l.goFiles(path)
		if err != nil || len(names) == 0 {
			return err
		}
		rel, err := filepath.Rel(l.ModuleDir, path)
		if err != nil {
			return err
		}
		importPath := l.ModulePath
		if rel != "." {
			importPath = l.ModulePath + "/" + filepath.ToSlash(rel)
		}
		pkg, err := l.LoadDir(path, importPath)
		if err != nil {
			return err
		}
		pkgs = append(pkgs, pkg)
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Slice(pkgs, func(i, j int) bool { return pkgs[i].Path < pkgs[j].Path })
	return pkgs, nil
}

// goFiles lists the buildable non-test Go files in dir, honoring build
// constraints for the host GOOS/GOARCH.
func (l *Loader) goFiles(dir string) ([]string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		match, err := l.build.MatchFile(dir, name)
		if err != nil {
			return nil, fmt.Errorf("analysis: %s/%s: %w", dir, name, err)
		}
		if match {
			names = append(names, name)
		}
	}
	sort.Strings(names)
	return names, nil
}

// LoadDir parses and type-checks the package in dir under the given
// import path, loading in-module dependencies recursively.
func (l *Loader) LoadDir(dir, importPath string) (*Package, error) {
	if pkg, ok := l.pkgs[importPath]; ok {
		return pkg, nil
	}
	if l.loading[importPath] {
		return nil, fmt.Errorf("analysis: import cycle through %s", importPath)
	}
	l.loading[importPath] = true
	defer delete(l.loading, importPath)

	names, err := l.goFiles(dir)
	if err != nil {
		return nil, err
	}
	if len(names) == 0 {
		return nil, fmt.Errorf("analysis: no buildable Go files in %s", dir)
	}
	var files []*ast.File
	for _, name := range names {
		f, err := parser.ParseFile(l.Fset, filepath.Join(dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}

	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
	}
	var typeErrs []error
	conf := types.Config{
		Importer: (*loaderImporter)(l),
		Error:    func(err error) { typeErrs = append(typeErrs, err) },
	}
	tpkg, _ := conf.Check(importPath, l.Fset, files, info)
	if len(typeErrs) > 0 {
		return nil, fmt.Errorf("analysis: type-checking %s: %w", importPath, typeErrs[0])
	}
	pkg := &Package{Path: importPath, Dir: dir, Files: files, Types: tpkg, Info: info}
	l.pkgs[importPath] = pkg
	return pkg, nil
}

// loaderImporter routes in-module imports to the Loader and everything
// else (the stdlib) to the source importer.
type loaderImporter Loader

func (i *loaderImporter) Import(path string) (*types.Package, error) {
	return i.ImportFrom(path, (*Loader)(i).ModuleDir, 0)
}

func (i *loaderImporter) ImportFrom(path, srcDir string, _ types.ImportMode) (*types.Package, error) {
	l := (*Loader)(i)
	if rel, ok := strings.CutPrefix(path, l.ModulePath); ok && (rel == "" || rel[0] == '/') {
		dir := filepath.Join(l.ModuleDir, filepath.FromSlash(strings.TrimPrefix(rel, "/")))
		pkg, err := l.LoadDir(dir, path)
		if err != nil {
			return nil, err
		}
		return pkg.Types, nil
	}
	return l.std.ImportFrom(path, srcDir, 0)
}
