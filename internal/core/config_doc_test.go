package core

import (
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// TestConfigKeysMatchParser pins ConfigKeys() to the three places a
// config key must appear: the LoadConfig parsing code, DESIGN.md's
// configuration table, and cmd/eoml's -init sample declaration. A key
// added to any one of them without the others fails here, which is how
// the stall_timeout_ms documentation drift happened in the first place.
func TestConfigKeysMatchParser(t *testing.T) {
	src, err := os.ReadFile("config.go")
	if err != nil {
		t.Fatal(err)
	}
	design, err := os.ReadFile(filepath.Join("..", "..", "DESIGN.md"))
	if err != nil {
		t.Fatal(err)
	}
	sample, err := os.ReadFile(filepath.Join("..", "..", "cmd", "eoml", "main.go"))
	if err != nil {
		t.Fatal(err)
	}

	keys := ConfigKeys()
	leaves := map[string]bool{}
	for _, key := range keys {
		parts := strings.Split(key, ".")
		leaf := parts[len(parts)-1]
		leaves[leaf] = true
		for _, part := range parts {
			leaves[part] = true // nested group names (archive, paths, …) are keys too
		}
		if !strings.Contains(string(src), `["`+leaf+`"]`) {
			t.Errorf("ConfigKeys lists %q but LoadConfig has no [%q] lookup", key, leaf)
		}
		if !strings.Contains(string(design), "`"+key+"`") {
			t.Errorf("DESIGN.md configuration table missing key `%s`", key)
		}
		if !strings.Contains(string(sample), leaf+":") {
			t.Errorf("cmd/eoml sample config missing key %s (leaf %s)", key, leaf)
		}
	}

	// Reverse: every map lookup in LoadConfig must be listed. The parser
	// indexes doc[...] for top-level keys and m[...] for nested ones.
	for _, match := range regexp.MustCompile(`(?:doc|m)\["([a-z_]+)"\]`).FindAllStringSubmatch(string(src), -1) {
		if !leaves[match[1]] {
			t.Errorf("LoadConfig parses key %q that ConfigKeys does not list", match[1])
		}
	}
}
