package tensor

// Portable scalar reference implementations of the two SIMD primitives
// behind the blocked matmul kernels. On amd64 with AVX2+FMA the
// assembly versions in simd_amd64.s are used instead; these generic
// loops are the fallback and the oracle the asm is tested against.

// axpyGeneric computes y[i] += alpha * x[i] over len(x) elements.
func axpyGeneric(alpha float32, x, y []float32) {
	y = y[:len(x)]
	for i, v := range x {
		y[i] += alpha * v
	}
}

// dotGeneric returns the inner product of x and y over len(x) elements.
func dotGeneric(x, y []float32) float32 {
	y = y[:len(x)]
	var s float32
	for i, v := range x {
		s += v * y[i]
	}
	return s
}
