package nn

import (
	"math"
	"math/rand"
	"sync"
	"testing"

	"github.com/eoml/eoml/internal/tensor"
)

// riccLikeStack builds an encoder+decoder chain exercising every layer
// type the RICC autoencoder uses: conv, activations, flatten/reshape,
// dense, and nearest-neighbor upsampling.
func riccLikeStack(t *testing.T, r *rand.Rand) *Sequential {
	t.Helper()
	c1, err := NewConv2D("c1", 3, 8, 3, 2, 1, 16, 16, r)
	if err != nil {
		t.Fatal(err)
	}
	c2, err := NewConv2D("c2", 8, 4, 3, 1, 1, 8, 8, r)
	if err != nil {
		t.Fatal(err)
	}
	c3, err := NewConv2D("c3", 4, 3, 3, 1, 1, 16, 16, r)
	if err != nil {
		t.Fatal(err)
	}
	return NewSequential("stack",
		c1, NewLeakyReLU("a1", 0.1),
		c2, NewLeakyReLU("a2", 0.1),
		NewFlatten("fl"),
		NewDense("d1", 4*8*8, 4*8*8, r),
		NewReshape4D("rs", 4, 8, 8),
		NewUpsample2x("up"),
		c3, NewSigmoid("sg"),
	)
}

func inferDiff(got, want *tensor.T) float64 {
	worst := 0.0
	for i := range want.Data {
		d := math.Abs(float64(got.Data[i]-want.Data[i])) / (1 + math.Abs(float64(want.Data[i])))
		if d > worst {
			worst = d
		}
	}
	return worst
}

func TestInferMatchesForward(t *testing.T) {
	r := rand.New(rand.NewSource(41))
	model := riccLikeStack(t, r)
	x := tensor.New(5, 3, 16, 16)
	for i := range x.Data {
		x.Data[i] = float32(r.Float64())
	}
	want := model.Forward(x)
	arena := tensor.NewArena()
	for pass := 0; pass < 3; pass++ { // repeated passes hit recycled buffers
		got := model.Infer(x, arena)
		if !got.SameShape(want) {
			t.Fatalf("pass %d: shape %v, want %v", pass, got.Shape, want.Shape)
		}
		if d := inferDiff(got, want); d > 1e-5 {
			t.Fatalf("pass %d: worst relative diff %g", pass, d)
		}
		arena.Put(got)
	}
}

func TestInferNilArena(t *testing.T) {
	r := rand.New(rand.NewSource(42))
	model := riccLikeStack(t, r)
	x := tensor.New(2, 3, 16, 16)
	for i := range x.Data {
		x.Data[i] = float32(r.Float64())
	}
	want := model.Forward(x)
	got := model.Infer(x, nil)
	if d := inferDiff(got, want); d > 1e-5 {
		t.Fatalf("worst relative diff %g", d)
	}
}

// TestInferConcurrent runs concurrent Infer calls on one model, each
// with a private arena, under the race detector: Infer must not touch
// shared layer state the way Forward does.
func TestInferConcurrent(t *testing.T) {
	r := rand.New(rand.NewSource(43))
	model := riccLikeStack(t, r)
	x := tensor.New(3, 3, 16, 16)
	for i := range x.Data {
		x.Data[i] = float32(r.Float64())
	}
	want := model.Forward(x)
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			arena := tensor.NewArena()
			for iter := 0; iter < 5; iter++ {
				got := model.Infer(x, arena)
				if d := inferDiff(got, want); d > 1e-5 {
					t.Errorf("worst relative diff %g", d)
					return
				}
				arena.Put(got)
			}
		}()
	}
	wg.Wait()
}

// TestInferBatchMatchesForward pins the batch-GEMM path to the training
// forward pass bit-for-bit: both run im2col + the blocked matmul with
// the identical bias/NCHW epilogue, so any drift means the batched
// kernels diverged. Covers N=1 and batch sizes that are not multiples
// of the GEMM register block.
func TestInferBatchMatchesForward(t *testing.T) {
	r := rand.New(rand.NewSource(44))
	model := riccLikeStack(t, r)
	for _, n := range []int{1, 3, 5, 7} {
		x := tensor.New(n, 3, 16, 16)
		for i := range x.Data {
			x.Data[i] = float32(r.Float64())
		}
		want := model.Forward(x)
		shards := tensor.NewShardedArena()
		arena := shards.Acquire()
		for pass := 0; pass < 3; pass++ { // repeated passes hit recycled buffers
			got := model.InferBatch(x, arena)
			if !got.SameShape(want) {
				t.Fatalf("n=%d pass %d: shape %v, want %v", n, pass, got.Shape, want.Shape)
			}
			for i := range want.Data {
				if got.Data[i] != want.Data[i] {
					t.Fatalf("n=%d pass %d: InferBatch[%d]=%g, Forward=%g (want bit-identical)",
						n, pass, i, got.Data[i], want.Data[i])
				}
			}
			arena.Put(got)
		}
		shards.Release(arena)
	}
}

func TestInferBatchNilAllocator(t *testing.T) {
	r := rand.New(rand.NewSource(45))
	model := riccLikeStack(t, r)
	x := tensor.New(2, 3, 16, 16)
	for i := range x.Data {
		x.Data[i] = float32(r.Float64())
	}
	want := model.Forward(x)
	got := model.InferBatch(x, nil)
	if d := inferDiff(got, want); d != 0 {
		t.Fatalf("worst relative diff %g, want bit-identical", d)
	}
}
