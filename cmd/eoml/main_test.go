package main

import (
	"testing"

	"github.com/eoml/eoml"
)

// The -init sample must always parse and validate: a user's very first
// contact with the tool cannot be a config error.
func TestSampleConfigParses(t *testing.T) {
	cfg, err := eoml.LoadConfig([]byte(sampleConfig))
	if err != nil {
		t.Fatalf("sample config invalid: %v", err)
	}
	if cfg.ArchiveURL == "" || len(cfg.Granules) == 0 {
		t.Fatalf("sample config incomplete: %+v", cfg)
	}
	if cfg.ModelPath == "" || cfg.CodebookPath == "" {
		t.Fatal("sample config must name model artifacts so -train can save them")
	}
}
