package tensor

import (
	"sync"
	"testing"

	"github.com/eoml/eoml/internal/metrics"
)

func TestLocalArenaReusesBuffers(t *testing.T) {
	a := NewLocal()
	first := a.Get(3, 5, 7)
	if first.Len() != 105 || len(first.Data) != 105 {
		t.Fatalf("shape/len mismatch: %v len %d", first.Shape, len(first.Data))
	}
	a.Put(first)
	// Same size class (105 -> 128): must come back from the free list.
	second := a.Get(128)
	if &second.Data[:1][0] != &first.Data[:1][0] {
		t.Fatal("same-class Get did not reuse the free-listed buffer")
	}
	gets, news, puts := a.Stats()
	if gets != 2 || news != 1 || puts != 1 {
		t.Fatalf("stats gets=%d news=%d puts=%d, want 2/1/1", gets, news, puts)
	}
	a.Put(New(3, 5, 7)) // non-power-of-two capacity: dropped
	if _, _, puts := a.Stats(); puts != 1 {
		t.Fatalf("pooled a non-size-class buffer (puts=%d)", puts)
	}
	a.Put(nil) // must not panic
}

func TestNilLocalArenaDegradesToNew(t *testing.T) {
	var a *LocalArena
	x := a.Get(2, 3)
	if x.Len() != 6 {
		t.Fatalf("nil local arena Get: %v", x.Shape)
	}
	a.Put(x) // no-op, must not panic
}

func TestShardedArenaReusesShards(t *testing.T) {
	s := NewShardedArena()
	a := s.Acquire()
	x := a.Get(64)
	a.Put(x)
	s.Release(a)
	if got := s.Shards(); got != 1 {
		t.Fatalf("shards = %d, want 1", got)
	}
	// Sequential Acquire must hand the same warm shard back.
	b := s.Acquire()
	if b != a {
		t.Fatal("sequential Acquire created a new shard instead of reusing the idle one")
	}
	y := b.Get(64)
	if &y.Data[:1][0] != &x.Data[:1][0] {
		t.Fatal("warm shard did not reuse its free-listed buffer")
	}
	b.Put(y)
	s.Release(b)

	gets, news, puts := s.Stats()
	if gets != 2 || news != 1 || puts != 2 {
		t.Fatalf("stats gets=%d news=%d puts=%d, want 2/1/2", gets, news, puts)
	}
}

func TestNilShardedArenaDegrades(t *testing.T) {
	var s *ShardedArena
	a := s.Acquire()
	x := a.Get(2, 2)
	if x.Len() != 4 {
		t.Fatalf("nil sharded arena Get: %v", x.Shape)
	}
	a.Put(x)
	s.Release(a)
	s.Instrument(nil, "nil") // no-op, must not panic
	if g, n, p := s.Stats(); g != 0 || n != 0 || p != 0 {
		t.Fatalf("nil stats %d/%d/%d", g, n, p)
	}
}

// TestShardedArenaHammer churns Acquire/Get/Put/Release from many
// goroutines under -race: shards must never alias while checked out,
// and concurrent Stats/Instrument reads must be safe mid-flight.
func TestShardedArenaHammer(t *testing.T) {
	s := NewShardedArena()
	reg := metrics.NewRegistry()
	s.Instrument(reg, "hammer")
	const workers = 8
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for iter := 0; iter < 200; iter++ {
				a := s.Acquire()
				x := a.Get(37, 3)
				y := a.Get(256)
				for i := range x.Data {
					x.Data[i] = float32(w)
				}
				for i := range x.Data {
					if x.Data[i] != float32(w) {
						t.Errorf("worker %d saw foreign write", w)
						return
					}
				}
				a.Put(y)
				a.Put(x)
				s.Release(a)
			}
		}(w)
	}
	// Concurrent scrapes while the workers churn.
	for i := 0; i < 50; i++ {
		_ = reg.Snapshot()
	}
	wg.Wait()
	if got := s.Shards(); got < 1 || got > workers {
		t.Fatalf("shards = %d, want 1..%d", got, workers)
	}
	gets, news, puts := s.Stats()
	if gets != workers*200*2 || puts != gets {
		t.Fatalf("stats gets=%d puts=%d, want %d each", gets, puts, workers*200*2)
	}
	if news > int64(s.Shards()*2) {
		t.Fatalf("news=%d exceeds warm bound for %d shards", news, s.Shards())
	}
}

// arenaSeriesValue digs one arena series value out of a registry
// snapshot, failing if the (name, arena-label) pair resolves to more or
// fewer than one series — the double-count failure mode.
func arenaSeriesValue(t *testing.T, reg *metrics.Registry, name, arena string) float64 {
	t.Helper()
	var vals []float64
	for _, fam := range reg.Snapshot() {
		if fam.Name != name {
			continue
		}
		for _, s := range fam.Series {
			for _, l := range s.Labels {
				if l.Key == "arena" && l.Value == arena {
					vals = append(vals, s.Value)
				}
			}
		}
	}
	if len(vals) != 1 {
		t.Fatalf("%s{arena=%q}: %d series, want exactly 1", name, arena, len(vals))
	}
	return vals[0]
}

// TestInstrumentTwiceDoesNotDoubleCount pins the double-registration
// guard for both arena flavors: a process that runs a batch pipeline and
// then a streaming pipeline instruments the same model arena into the
// same registry twice, which must neither panic nor double the series.
func TestInstrumentTwiceDoesNotDoubleCount(t *testing.T) {
	t.Run("sharded", func(t *testing.T) {
		s := NewShardedArena()
		a := s.Acquire()
		a.Put(a.Get(64))
		s.Release(a)
		reg := metrics.NewRegistry()
		s.Instrument(reg, "ricc")
		s.Instrument(reg, "ricc") // second run in the same process
		if got := arenaSeriesValue(t, reg, "eoml_arena_misses_total", "ricc"); got != 1 {
			t.Fatalf("misses after double Instrument = %v, want 1", got)
		}
		if got := arenaSeriesValue(t, reg, "eoml_arena_outstanding", "ricc"); got != 0 {
			t.Fatalf("outstanding after double Instrument = %v, want 0", got)
		}
	})
	t.Run("contended", func(t *testing.T) {
		a := NewArena()
		a.Put(a.Get(64))
		reg := metrics.NewRegistry()
		a.Instrument(reg, "ricc")
		a.Instrument(reg, "ricc")
		if got := arenaSeriesValue(t, reg, "eoml_arena_misses_total", "ricc"); got != 1 {
			t.Fatalf("misses after double Instrument = %v, want 1", got)
		}
	})
	t.Run("successor-takes-over", func(t *testing.T) {
		old, fresh := NewShardedArena(), NewShardedArena()
		a := old.Acquire()
		a.Put(a.Get(64))
		old.Release(a)
		reg := metrics.NewRegistry()
		old.Instrument(reg, "ricc")
		fresh.Instrument(reg, "ricc") // newest arena owns the series
		if got := arenaSeriesValue(t, reg, "eoml_arena_misses_total", "ricc"); got != 0 {
			t.Fatalf("series still reads the replaced arena: %v", got)
		}
	})
}
