package analysis

import (
	"go/ast"
)

// ArenaPair keeps the tensor.Arena honest: the arena only amortizes
// allocations (PR 1's 305→15 allocs/op win) if every Get is returned
// with a Put. A function that Gets and never Puts silently regresses the
// hot path back to the allocator. The check is per function declaration:
// a function calling (tensor.Arena).Get must either call Put (directly,
// deferred, or in a nested literal) or visibly transfer ownership by
// returning the gotten tensor — the Layer.Infer contract, where the
// caller recycles. Any other transfer (storing the tensor in a field,
// handing it to a goroutine) carries an ignore directive naming the new
// owner.
var ArenaPair = &Analyzer{
	Name: "arenapair",
	Doc:  "a function that calls tensor.Arena.Get must Put the tensor back, return it to the caller, or document the ownership transfer with an ignore directive",
	Run:  runArenaPair,
}

const tensorPkg = "github.com/eoml/eoml/internal/tensor"

func runArenaPair(pass *Pass) {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok && fd.Body != nil {
				checkArenaPairs(pass, fd)
			}
		}
	}
}

func checkArenaPairs(pass *Pass, fd *ast.FuncDecl) {
	var gets []*ast.CallExpr
	puts := 0
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		fn := calleeFunc(pass.Info, call)
		switch {
		case isMethodOn(fn, tensorPkg, "Arena", "Get"):
			gets = append(gets, call)
		case isMethodOn(fn, tensorPkg, "Arena", "Put"):
			puts++
		}
		return true
	})
	// Any Put in the function is taken as evidence of pairing discipline;
	// per-tensor matching is the reviewer's job, count matching is ours.
	if len(gets) == 0 || puts > 0 {
		return
	}
	parents := parentMap(fd.Body)
	for _, get := range gets {
		if returnsOwnership(pass, parents, fd, get) {
			continue
		}
		pass.Reportf(get.Pos(), "tensor.Arena Get without any Put in %s; the tensor never returns to the arena", fd.Name.Name)
	}
}

// returnsOwnership reports whether the Get call's result is returned by
// the function, directly or through the variable it is assigned to.
func returnsOwnership(pass *Pass, parents map[ast.Node]ast.Node, fd *ast.FuncDecl, get *ast.CallExpr) bool {
	switch p := parents[get].(type) {
	case *ast.ReturnStmt:
		return true
	case *ast.AssignStmt:
		if len(p.Lhs) != 1 || len(p.Rhs) != 1 {
			return false
		}
		id, ok := p.Lhs[0].(*ast.Ident)
		if !ok || id.Name == "_" {
			return false
		}
		obj := pass.Info.ObjectOf(id)
		if obj == nil {
			return false
		}
		returned := false
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			ret, ok := n.(*ast.ReturnStmt)
			if !ok {
				return true
			}
			// The returned expression must BE the tensor variable;
			// returning a field or element of it still leaks the buffer.
			for _, res := range ret.Results {
				if use, ok := ast.Unparen(res).(*ast.Ident); ok && pass.Info.ObjectOf(use) == obj {
					returned = true
				}
			}
			return !returned
		})
		return returned
	}
	return false
}
