package trace

import (
	"strings"
	"testing"
)

func TestTimelineRecordAndQuery(t *testing.T) {
	tl := NewTimeline()
	tl.Record("download", 0, 3)
	tl.Record("download", 10, 0)
	tl.Record("preprocess", 8, 16)
	tl.Record("preprocess", 30, 32)
	tl.Record("preprocess", 50, 0)

	if got := tl.CountAt("download", 5); got != 3 {
		t.Fatalf("download@5 = %d", got)
	}
	if got := tl.CountAt("download", 15); got != 0 {
		t.Fatalf("download@15 = %d", got)
	}
	if got := tl.CountAt("preprocess", 40); got != 32 {
		t.Fatalf("preprocess@40 = %d", got)
	}
	if got := tl.CountAt("preprocess", 1); got != 0 {
		t.Fatalf("preprocess@1 = %d (before first sample)", got)
	}
	if got := tl.PeakCount("preprocess"); got != 32 {
		t.Fatalf("peak = %d", got)
	}
	stages := tl.Stages()
	if len(stages) != 2 || stages[0] != "download" {
		t.Fatalf("stages = %v", stages)
	}
}

func TestTimelineOutOfOrderSamplesSorted(t *testing.T) {
	tl := NewTimeline()
	tl.Record("s", 10, 5)
	tl.Record("s", 5, 2)
	samples := tl.Samples("s")
	if samples[0].T != 5 || samples[1].T != 10 {
		t.Fatalf("samples = %v", samples)
	}
}

func TestTimelineRender(t *testing.T) {
	tl := NewTimeline()
	tl.Record("download", 0, 3)
	tl.Record("download", 50, 0)
	tl.Record("inference", 60, 1)
	tl.Record("inference", 70, 0)
	out := tl.Render(100, 40)
	if !strings.Contains(out, "download") || !strings.Contains(out, "inference") {
		t.Fatalf("render:\n%s", out)
	}
	if !strings.Contains(out, "peak=3") {
		t.Fatalf("render missing peak:\n%s", out)
	}
	// Download row must show activity early and silence late.
	lines := strings.Split(out, "\n")
	dl := lines[0]
	bar := dl[strings.Index(dl, "|")+1 : strings.LastIndex(dl, "|")]
	if bar[0] == ' ' {
		t.Fatalf("download inactive at t=0: %q", bar)
	}
	if bar[len(bar)-1] != ' ' {
		t.Fatalf("download active at end: %q", bar)
	}
}

func TestSpansAddGetGap(t *testing.T) {
	sp := NewSpans()
	sp.Add("download", 0, 5.63)
	sp.Add("preprocess", 6.0, 38.8)
	sp.Add("inference", 38.85, 44.0)

	d, ok := sp.Get("download")
	if !ok || d.Duration() != 5.63 {
		t.Fatalf("download span %v %v", d, ok)
	}
	gap, err := sp.Gap("download", "preprocess")
	if err != nil {
		t.Fatal(err)
	}
	if gap < 0.36 || gap > 0.38 {
		t.Fatalf("gap = %v", gap)
	}
	if _, err := sp.Gap("download", "nope"); err == nil {
		t.Fatal("missing span accepted")
	}
	// Overwrite keeps one entry.
	sp.Add("download", 0, 6.0)
	if len(sp.All()) != 3 {
		t.Fatalf("spans = %d", len(sp.All()))
	}
	d2, _ := sp.Get("download")
	if d2.End != 6.0 {
		t.Fatalf("overwrite lost: %v", d2)
	}
}

func TestSpansRenderTable(t *testing.T) {
	sp := NewSpans()
	sp.Add("download-launch", 0, 5.63)
	out := sp.Render()
	if !strings.Contains(out, "download-launch") || !strings.Contains(out, "5.630") {
		t.Fatalf("render:\n%s", out)
	}
}

func TestSpanBeginEnd(t *testing.T) {
	sp := NewSpans()
	h := sp.Begin("inference", 1.5)
	if h.Name() != "inference" || h.Start() != 1.5 {
		t.Fatalf("handle = %q/%v", h.Name(), h.Start())
	}
	// Nothing is recorded until End.
	if _, ok := sp.Get("inference"); ok {
		t.Fatal("span recorded before End")
	}
	h.End(4.0)
	got, ok := sp.Get("inference")
	if !ok || got.Start != 1.5 || got.End != 4.0 {
		t.Fatalf("span = %+v ok=%v", got, ok)
	}
	// Re-begin + End overwrites, matching Add semantics.
	sp.Begin("inference", 2.0).End(3.0)
	got, _ = sp.Get("inference")
	if got.Start != 2.0 || got.End != 3.0 || len(sp.All()) != 1 {
		t.Fatalf("overwrite: %+v n=%d", got, len(sp.All()))
	}
}
