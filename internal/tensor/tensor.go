// Package tensor provides the float32 tensor arithmetic used by the RICC
// autoencoder: dense matrix multiplication, im2col-based 2-D convolution
// helpers, and elementwise kernels, with goroutine parallelism on the
// heavy loops.
//
// The representation is a flat float32 slice plus a shape; layouts follow
// the NCHW convention used throughout the nn package.
package tensor

import (
	"fmt"
	"math"
	"math/rand"
	"runtime"
	"sync"
)

// T is a dense n-dimensional float32 tensor.
type T struct {
	Shape []int
	Data  []float32
}

// New allocates a zero tensor of the given shape.
func New(shape ...int) *T {
	n := 1
	for _, s := range shape {
		if s <= 0 {
			panic(fmt.Sprintf("tensor: non-positive dim in shape %v", shape))
		}
		n *= s
	}
	return &T{Shape: append([]int(nil), shape...), Data: make([]float32, n)}
}

// FromSlice wraps data in a tensor of the given shape; len(data) must
// match the shape volume. The slice is used directly, not copied.
func FromSlice(data []float32, shape ...int) *T {
	t := &T{Shape: append([]int(nil), shape...), Data: data}
	if t.Len() != len(data) {
		panic(fmt.Sprintf("tensor: %d values for shape %v", len(data), shape))
	}
	return t
}

// Len returns the number of elements.
func (t *T) Len() int {
	n := 1
	for _, s := range t.Shape {
		n *= s
	}
	return n
}

// Clone deep-copies the tensor.
func (t *T) Clone() *T {
	return &T{Shape: append([]int(nil), t.Shape...), Data: append([]float32(nil), t.Data...)}
}

// Reshape returns a view with a new shape of equal volume.
func (t *T) Reshape(shape ...int) *T {
	v := &T{Shape: append([]int(nil), shape...), Data: t.Data}
	if v.Len() != t.Len() {
		panic(fmt.Sprintf("tensor: reshape %v -> %v changes volume", t.Shape, shape))
	}
	return v
}

// SameShape reports whether two tensors have identical shapes.
func (t *T) SameShape(o *T) bool {
	if len(t.Shape) != len(o.Shape) {
		return false
	}
	for i := range t.Shape {
		if t.Shape[i] != o.Shape[i] {
			return false
		}
	}
	return true
}

// Zero resets all elements.
func (t *T) Zero() {
	for i := range t.Data {
		t.Data[i] = 0
	}
}

// Randn fills the tensor with Gaussian values of the given standard
// deviation, using a deterministic source.
func (t *T) Randn(rng *rand.Rand, stddev float64) {
	for i := range t.Data {
		t.Data[i] = float32(rng.NormFloat64() * stddev)
	}
}

// AddInPlace accumulates o into t elementwise.
func (t *T) AddInPlace(o *T) {
	if !t.SameShape(o) {
		panic(fmt.Sprintf("tensor: add %v + %v", t.Shape, o.Shape))
	}
	for i, v := range o.Data {
		t.Data[i] += v
	}
}

// ScaleInPlace multiplies all elements by a.
func (t *T) ScaleInPlace(a float32) {
	for i := range t.Data {
		t.Data[i] *= a
	}
}

// Dot returns the inner product of two equal-shape tensors.
func Dot(a, b *T) float64 {
	if !a.SameShape(b) {
		panic(fmt.Sprintf("tensor: dot %v · %v", a.Shape, b.Shape))
	}
	var s float64
	for i := range a.Data {
		s += float64(a.Data[i]) * float64(b.Data[i])
	}
	return s
}

// L2 returns the Euclidean norm of the tensor.
func (t *T) L2() float64 {
	var s float64
	for _, v := range t.Data {
		s += float64(v) * float64(v)
	}
	return math.Sqrt(s)
}

// minParallelWork is the total arithmetic (fused multiply-adds, element
// copies) below which forking goroutines costs more than it saves. The
// threshold is total work, not index count: a 4-block GEMM over a huge
// k·n panel forks, while a 1000-row elementwise loop runs inline.
const minParallelWork = 1 << 16

// parallelWork runs fn over [0, n) split across GOMAXPROCS goroutines.
// unitWork is the caller's estimate of the arithmetic per index; the
// loop runs inline when n·unitWork is under minParallelWork.
func parallelWork(n, unitWork int, fn func(lo, hi int)) {
	workers := runtime.GOMAXPROCS(0)
	if workers > n {
		workers = n
	}
	if unitWork < 1 {
		unitWork = 1
	}
	if workers <= 1 || n*unitWork < minParallelWork {
		fn(0, n)
		return
	}
	var wg sync.WaitGroup
	chunk := (n + workers - 1) / workers
	for lo := 0; lo < n; lo += chunk {
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			fn(lo, hi)
		}(lo, hi)
	}
	wg.Wait()
}

// parallelRows is parallelWork with a nominal per-row cost of 1024, for
// loops whose per-index work is moderate or unknown; it forks at the
// same n ≥ 64 boundary the original count-based cutoff used.
func parallelRows(n int, fn func(lo, hi int)) { parallelWork(n, 1024, fn) }

// MatMulNaive computes C = A·B with the unblocked row-parallel triple
// loop. It is kept as the reference oracle for the blocked kernel in
// blocked.go; hot paths should call MatMul.
func MatMulNaive(a, b *T) *T {
	if len(a.Shape) != 2 || len(b.Shape) != 2 || a.Shape[1] != b.Shape[0] {
		panic(fmt.Sprintf("tensor: matmul %v × %v", a.Shape, b.Shape))
	}
	m, k, n := a.Shape[0], a.Shape[1], b.Shape[1]
	c := New(m, n)
	parallelWork(m, k*n, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			ar := a.Data[i*k : (i+1)*k]
			cr := c.Data[i*n : (i+1)*n]
			for p, av := range ar {
				if av == 0 {
					continue
				}
				br := b.Data[p*n : (p+1)*n]
				for j, bv := range br {
					cr[j] += av * bv
				}
			}
		}
	})
	return c
}

// MatMulTANaive computes C = Aᵀ·B with the unblocked loop nest; it is
// the reference oracle for the blocked MatMulTA.
func MatMulTANaive(a, b *T) *T {
	if len(a.Shape) != 2 || len(b.Shape) != 2 || a.Shape[0] != b.Shape[0] {
		panic(fmt.Sprintf("tensor: matmulTA %v × %v", a.Shape, b.Shape))
	}
	k, m, n := a.Shape[0], a.Shape[1], b.Shape[1]
	c := New(m, n)
	// Accumulate per output row to stay race-free under parallelism.
	parallelWork(m, k*n, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			cr := c.Data[i*n : (i+1)*n]
			for p := 0; p < k; p++ {
				av := a.Data[p*m+i]
				if av == 0 {
					continue
				}
				br := b.Data[p*n : (p+1)*n]
				for j, bv := range br {
					cr[j] += av * bv
				}
			}
		}
	})
	return c
}

// MatMulTBNaive computes C = A·Bᵀ with the unblocked loop nest; it is
// the reference oracle for the blocked MatMulTB.
func MatMulTBNaive(a, b *T) *T {
	if len(a.Shape) != 2 || len(b.Shape) != 2 || a.Shape[1] != b.Shape[1] {
		panic(fmt.Sprintf("tensor: matmulTB %v × %v", a.Shape, b.Shape))
	}
	m, k, n := a.Shape[0], a.Shape[1], b.Shape[0]
	c := New(m, n)
	parallelWork(m, k*n, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			ar := a.Data[i*k : (i+1)*k]
			cr := c.Data[i*n : (i+1)*n]
			for j := 0; j < n; j++ {
				br := b.Data[j*k : (j+1)*k]
				var s float32
				for p := range ar {
					s += ar[p] * br[p]
				}
				cr[j] = s
			}
		}
	})
	return c
}
