// Package sleeppoll is the golden fixture for the sleeppoll analyzer.
package sleeppoll

import (
	"context"
	"time"
)

func badForever() {
	for {
		time.Sleep(time.Millisecond) // want "sleep-poll"
	}
}

func badRange(xs []int) {
	for range xs {
		time.Sleep(time.Millisecond) // want "sleep-poll"
	}
}

func badNested(ready func() bool) {
	for i := 0; i < 10; i++ {
		if !ready() {
			time.Sleep(10 * time.Millisecond) // want "sleep-poll"
		}
	}
}

func goodSingleSleep() {
	time.Sleep(time.Second)
}

func goodLiteralResetsScope() []func() {
	var fns []func()
	for i := 0; i < 3; i++ {
		fns = append(fns, func() { time.Sleep(time.Millisecond) })
	}
	return fns
}

func goodTimerSelect(ctx context.Context) {
	t := time.NewTicker(time.Second)
	defer t.Stop()
	for {
		select {
		case <-t.C:
		case <-ctx.Done():
			return
		}
	}
}

func goodIgnoredModeledOverhead() {
	for {
		//eomlvet:ignore sleeppoll modeled overhead: the sleep is the simulated latency under test
		time.Sleep(time.Millisecond)
		return
	}
}
