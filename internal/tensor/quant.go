// Symmetric int8 quantization for the reduced-precision inference path.
//
// The scheme (DESIGN.md §8):
//
//   - Activations are quantized per tensor with one scale
//     sx = maxAbs/127 and no zero point, so a float zero quantizes to
//     int8 zero and the zero padding written by im2col needs no
//     correction term.
//   - Weights are quantized per output channel: column j of the float
//     [K, Out] training layout gets its own scale, and the quantized
//     matrix is stored transposed as [Out][K] rows so the int8 GEMM
//     reads both operands contiguously along k.
//   - Products accumulate in int32, which is exact for any summation
//     order (k is capped at MaxQ8K), so the kernel is bit-exactly
//     reproducible run to run and the AVX2 path must agree with the
//     pure-Go oracle exactly — not to a tolerance, unlike the float
//     kernels.
//
// Rounding is half away from zero, clamped to [-127, 127]; -128 is
// never produced, keeping the range symmetric.

package tensor

import "fmt"

// MaxQ8K is the largest inner dimension the int8 GEMM accepts: every
// partial product has magnitude at most 127², so int32 accumulation over
// k terms is exact while k ≤ (2³¹−1)/127².
const MaxQ8K = (1<<31 - 1) / (127 * 127)

// QuantizeScale returns the symmetric per-tensor scale for xs:
// maxAbs/127, or 1 when every value is zero (any scale maps 0 to 0).
// NaN values are ignored; they quantize to 0.
func QuantizeScale(xs []float32) float32 {
	m := maxAbs(xs)
	if m == 0 {
		return 1
	}
	return m / 127
}

// quantizeVal rounds v/scale (passed as v·inv) half away from zero and
// clamps to [-127, 127]. NaN maps to 0.
func quantizeVal(v, inv float32) int8 {
	r := v * inv
	if r >= 126.5 {
		return 127
	}
	if r <= -126.5 {
		return -127
	}
	if r != r { // NaN
		return 0
	}
	if r >= 0 {
		return int8(r + 0.5)
	}
	return int8(r - 0.5)
}

// QuantizeInto quantizes src into dst (len(dst) >= len(src)) with the
// given scale (AVX2-accelerated when available; the vector and scalar
// paths are bit-identical).
func QuantizeInto(dst []int8, src []float32, scale float32) {
	quantizeSpan(dst[:len(src)], src, 1/scale)
}

// Quantize quantizes src into dst with a fresh per-tensor scale and
// returns that scale.
func Quantize(dst []int8, src []float32) float32 {
	scale := QuantizeScale(src)
	QuantizeInto(dst, src, scale)
	return scale
}

// Dequantize returns q·scale.
func Dequantize(q int8, scale float32) float32 { return float32(q) * scale }

// QWeights is a weight matrix quantized per output channel, stored
// transposed relative to the float [K, Out] training layout: row j of
// Data holds output channel j's K weights, so MatMulQ8Into reads both
// GEMM operands contiguously along k.
type QWeights struct {
	K, Out int
	Data   []int8    // [Out][K]
	Scales []float32 // per output channel: maxAbs(column j)/127
}

// QuantizeWeights quantizes w (shape [K, Out], the layout the float
// kernels multiply by) into per-output-channel int8 rows.
func QuantizeWeights(w *T) *QWeights {
	if len(w.Shape) != 2 {
		panic(fmt.Sprintf("tensor: quantize weights of shape %v", w.Shape))
	}
	k, out := w.Shape[0], w.Shape[1]
	if k > MaxQ8K {
		panic(fmt.Sprintf("tensor: quantized inner dim %d exceeds %d", k, MaxQ8K))
	}
	q := &QWeights{K: k, Out: out, Data: make([]int8, k*out), Scales: make([]float32, out)}
	for j := 0; j < out; j++ {
		var maxAbs float32
		for p := 0; p < k; p++ {
			v := w.Data[p*out+j]
			if v < 0 {
				v = -v
			}
			if v > maxAbs {
				maxAbs = v
			}
		}
		scale := float32(1)
		if maxAbs > 0 {
			scale = maxAbs / 127
		}
		q.Scales[j] = scale
		inv := 1 / scale
		row := q.Data[j*k : (j+1)*k]
		for p := 0; p < k; p++ {
			row[p] = quantizeVal(w.Data[p*out+j], inv)
		}
	}
	return q
}

// MatMulQ8Into computes the int8 GEMM out = dequant(a · Wᵀ) for a of
// shape [m, q.K] (int8, row-major, per-tensor scale sa) against the
// quantized weights q: out[i·Out+j] = sa · q.Scales[j] · Σₚ a[i,p]·W[j,p]
// with the sum accumulated exactly in int32. out must hold m·q.Out
// float32 values; prior contents are overwritten. Four weight rows are
// processed per inner call so the activation row loads once per group
// (dotQ8x4, AVX2-accelerated when available).
func MatMulQ8Into(a []int8, sa float32, q *QWeights, m int, out []float32) {
	k, n := q.K, q.Out
	if len(a) < m*k || len(out) < m*n {
		panic(fmt.Sprintf("tensor: matmulQ8 a[%d] out[%d] for m=%d k=%d n=%d", len(a), len(out), m, k, n))
	}
	parallelWork(m, k*n, func(lo, hi int) {
		var acc [4]int32
		for i := lo; i < hi; i++ {
			ar := a[i*k : (i+1)*k]
			or := out[i*n : (i+1)*n]
			j := 0
			for ; j+4 <= n; j += 4 {
				dotQ8x4(ar, q.Data[j*k:(j+4)*k], &acc)
				or[j] = sa * q.Scales[j] * float32(acc[0])
				or[j+1] = sa * q.Scales[j+1] * float32(acc[1])
				or[j+2] = sa * q.Scales[j+2] * float32(acc[2])
				or[j+3] = sa * q.Scales[j+3] * float32(acc[3])
			}
			for ; j < n; j++ {
				or[j] = sa * q.Scales[j] * float32(dotQ8Generic(ar, q.Data[j*k:(j+1)*k]))
			}
		}
	})
}

// MatMulQ8Naive is the unblocked serial reference for MatMulQ8Into.
// Because int32 accumulation is exact, the two must agree bit for bit —
// the property tests pin exact equality, not a tolerance.
func MatMulQ8Naive(a []int8, sa float32, q *QWeights, m int) []float32 {
	k, n := q.K, q.Out
	out := make([]float32, m*n)
	for i := 0; i < m; i++ {
		ar := a[i*k : (i+1)*k]
		for j := 0; j < n; j++ {
			wr := q.Data[j*k : (j+1)*k]
			var s int32
			for p, v := range ar {
				s += int32(v) * int32(wr[p])
			}
			out[i*n+j] = sa * q.Scales[j] * float32(s)
		}
	}
	return out
}

// Im2ColQ8Into unfolds an int8-quantized NCHW input (n batch items,
// flattened into x) into the [n·OutH·OutW, InC·K·K] column matrix in
// dst, mirroring Im2ColInto. Because the quantization is symmetric,
// zero padding quantizes to 0 and gathering quantized bytes here equals
// quantizing the float im2col matrix — while touching 4× less memory.
func Im2ColQ8Into(x []int8, n int, g ConvGeom, dst []int8) {
	k, stride, pad := g.Kernel, g.Stride, g.Pad
	rows, width := n*g.OutH*g.OutW, g.InC*k*k
	if len(x) < n*g.InC*g.InH*g.InW || len(dst) < rows*width {
		panic(fmt.Sprintf("tensor: im2colQ8 x[%d] dst[%d] for %+v n=%d", len(x), len(dst), g, n))
	}
	inPlane := g.InH * g.InW
	parallelWork(n*g.OutH, g.OutW*width, func(lo, hi int) {
		for row := lo; row < hi; row++ {
			b := row / g.OutH
			oy := row % g.OutH
			for ox := 0; ox < g.OutW; ox++ {
				out := dst[(row*g.OutW+ox)*width:]
				di := 0
				for c := 0; c < g.InC; c++ {
					src := x[(b*g.InC+c)*inPlane:]
					for ky := 0; ky < k; ky++ {
						iy := oy*stride + ky - pad
						for kx := 0; kx < k; kx++ {
							ix := ox*stride + kx - pad
							if iy >= 0 && iy < g.InH && ix >= 0 && ix < g.InW {
								out[di] = src[iy*g.InW+ix]
							} else {
								out[di] = 0
							}
							di++
						}
					}
				}
			}
		}
	})
}
