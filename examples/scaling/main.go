// Scaling study: measured worker-fleet scaling, then capacity planning.
//
// The paper motivates its throughput measurements with "dynamic
// tokenization and sharding of petascale satellite data for distributed
// AI model training ... across thousands of GPUs". Earlier revisions of
// this example answered the planner's questions purely on the
// calibrated discrete-event model; now that the repo has a real worker
// fleet (`internal/fleet`, DESIGN.md §15), the scaling curve itself is
// *measured*: the same campaign runs against 1, 2, and 4 fleet workers
// leasing tile extraction and inference, with the synthetic archive
// shaping each connection's bandwidth so fetch latency — the
// multi-facility regime — bounds throughput.
//
//	go run ./examples/scaling
package main

import (
	"context"
	"fmt"
	"log"
	"net/http/httptest"
	"os"
	"path/filepath"
	"time"

	"github.com/eoml/eoml"
)

func main() {
	const scale = 64 // granule resolution divisor; tiles are 128/64×2 = 4 px at tile.pixels 4
	const token = "demo"

	// A local LAADS stand-in that throttles every connection to
	// 256 KiB/s: adding workers adds concurrent fetch streams, which is
	// exactly why the paper fans the download-heavy stages out.
	archive, err := eoml.NewArchiveServer(eoml.ArchiveOptions{
		ScaleDown:          scale,
		Token:              token,
		PerConnBytesPerSec: 256 << 10,
	})
	if err != nil {
		log.Fatal(err)
	}
	server := httptest.NewServer(archive)
	defer server.Close()

	root, err := os.MkdirTemp("", "eoml-scaling-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(root)

	base := eoml.DefaultConfig()
	base.ArchiveURL = server.URL
	base.ArchiveToken = token
	base.TilePixels = 4
	base.PollInterval = 10 * time.Millisecond
	base.DataDir = filepath.Join(root, "seed", "data") // placeholder; per-run dirs below
	base.TileDir = filepath.Join(root, "seed", "tiles")
	base.OutboxDir = filepath.Join(root, "seed", "outbox")
	base.DestDir = filepath.Join(root, "seed", "dest")

	granules, err := eoml.FindDayGranules(base, scale, 8, 1)
	if err != nil {
		log.Fatal(err)
	}
	base.Granules = granules
	fmt.Printf("scaling: campaign of %d granules from 2022-001 (Terra)\n", len(granules))

	// Fleet workers load model artifacts from shared storage, so train
	// once and save to disk — the `model.weights`/`model.codebook` keys
	// of a YAML declaration.
	ctx := context.Background()
	fmt.Println("scaling: training RICC autoencoder + AICCA codebook…")
	labeler, err := eoml.TrainFromArchive(ctx, base, eoml.TrainOptions{Classes: 6, Epochs: 2, Seed: 1})
	if err != nil {
		log.Fatal(err)
	}
	base.ModelPath = filepath.Join(root, "ricc.hdf")
	base.CodebookPath = filepath.Join(root, "codebook.hdf")
	if err := labeler.Model.Save(base.ModelPath); err != nil {
		log.Fatal(err)
	}
	if err := labeler.Codebook.Save(base.CodebookPath); err != nil {
		log.Fatal(err)
	}

	fmt.Println()
	fmt.Println("== Strong scaling, measured: fixed campaign vs fleet size ==")
	fmt.Println()
	fmt.Println("workers   elapsed      granules/s   speedup")
	var base1 float64
	for _, workers := range []int{1, 2, 4} {
		gps, elapsed := runFleet(ctx, base, root, workers)
		if base1 == 0 {
			base1 = gps
		}
		fmt.Printf("%7d   %-9s    %8.2f   %6.2fx\n",
			workers, elapsed.Round(10*time.Millisecond), gps, gps/base1)
	}

	// Planner's corollary, now anchored on the measured single-worker
	// rate: a MODIS day is 288 granules, so the per-worker rate tells
	// you how many fetch-bound workers a day's reprocessing needs.
	fmt.Println()
	perDay := 288.0 / base1
	fmt.Printf("capacity plan: 1 day of MODIS ≈ %.0f s on 1 worker at this bandwidth; "+
		"fleet scaling is ~linear while fetch-bound, so N workers divide that by ~N\n", perDay)
	fmt.Println("(full-scale strong/weak curves over real processes: BENCH_9.json, BenchmarkFleetScaling)")
}

// runFleet executes the campaign with distribution:fleet against n
// in-process fleet workers and returns (granules/s, elapsed).
func runFleet(ctx context.Context, base eoml.Config, root string, n int) (float64, time.Duration) {
	coord := eoml.NewFleetCoordinator(eoml.FleetConfig{})
	defer coord.Close()
	cp := httptest.NewServer(coord.Handler())
	defer cp.Close()

	for i := 0; i < n; i++ {
		w, err := eoml.NewFleetWorker(eoml.FleetWorkerConfig{
			ID:             fmt.Sprintf("scaling-worker-%d", i),
			CoordinatorURL: cp.URL,
			Slots:          1,
		})
		if err != nil {
			log.Fatal(err)
		}
		if err := w.Start(ctx); err != nil {
			log.Fatal(err)
		}
		defer w.Stop()
	}

	cfg := base
	dir := filepath.Join(root, fmt.Sprintf("fleet-%d", n))
	cfg.DataDir = filepath.Join(dir, "data")
	cfg.TileDir = filepath.Join(dir, "tiles")
	cfg.OutboxDir = filepath.Join(dir, "outbox")
	cfg.DestDir = filepath.Join(dir, "dest")
	cfg.Distribution = "fleet"

	eng := eoml.NewEngine(eoml.EngineOptions{Fleet: coord})
	run, err := eng.NewRun(cfg, eoml.RunOptions{ID: fmt.Sprintf("fleet-%d", n)})
	if err != nil {
		log.Fatal(err)
	}
	start := time.Now()
	rep, err := run.Run(ctx)
	if err != nil {
		log.Fatal(err)
	}
	elapsed := time.Since(start)
	if rep.TilesLabeled == 0 {
		log.Fatal("scaling: fleet run labeled nothing")
	}
	return float64(rep.GranulesRequested) / elapsed.Seconds(), elapsed
}
