package flows

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

// inferenceFlowJSON is a miniature of the paper's stage-3/4 flow:
// crawl -> choice(files found?) -> infer -> append -> move -> succeed.
const inferenceFlowJSON = `{
  "Comment": "EO-ML inference flow",
  "StartAt": "Crawl",
  "States": {
    "Crawl": {
      "Type": "Action",
      "ActionProvider": "crawler",
      "Parameters": {"dir": "$.watch_dir"},
      "ResultPath": "$.crawl",
      "Next": "AnyFiles"
    },
    "AnyFiles": {
      "Type": "Choice",
      "Choices": [
        {"Variable": "$.crawl.count", "NumericGreaterThan": 0, "Next": "Infer"}
      ],
      "Default": "NothingToDo"
    },
    "Infer": {
      "Type": "Action",
      "ActionProvider": "inference",
      "Parameters": {"files": "$.crawl.files"},
      "ResultPath": "$.labels",
      "Next": "Move"
    },
    "Move": {
      "Type": "Action",
      "ActionProvider": "mover",
      "Parameters": {"files": "$.crawl.files", "dest": "$.outbox"},
      "ResultPath": "$.moved",
      "Next": "Done"
    },
    "NothingToDo": {"Type": "Succeed"},
    "Done": {"Type": "Succeed"}
  }
}`

func engineWithProviders(t *testing.T, cfg EngineConfig) *Engine {
	t.Helper()
	e := NewEngine(cfg)
	must := func(err error) {
		t.Helper()
		if err != nil {
			t.Fatal(err)
		}
	}
	must(e.RegisterProvider("crawler", func(ctx context.Context, p map[string]any) (any, error) {
		dir, _ := p["dir"].(string)
		if dir == "/empty" {
			return map[string]any{"count": float64(0), "files": []any{}}, nil
		}
		return map[string]any{"count": float64(2), "files": []any{dir + "/a.nc", dir + "/b.nc"}}, nil
	}))
	must(e.RegisterProvider("inference", func(ctx context.Context, p map[string]any) (any, error) {
		files, _ := p["files"].([]any)
		return map[string]any{"labeled": float64(len(files))}, nil
	}))
	must(e.RegisterProvider("mover", func(ctx context.Context, p map[string]any) (any, error) {
		return "ok", nil
	}))
	return e
}

func TestParseAndRunInferenceFlow(t *testing.T) {
	def, err := ParseDefinition([]byte(inferenceFlowJSON))
	if err != nil {
		t.Fatal(err)
	}
	e := engineWithProviders(t, EngineConfig{})
	run, err := e.Start(context.Background(), def, map[string]any{
		"watch_dir": "/scratch/tiles",
		"outbox":    "/scratch/outbox",
	})
	if err != nil {
		t.Fatal(err)
	}
	out, err := run.Wait(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if run.Status() != RunSucceeded {
		t.Fatalf("status %v", run.Status())
	}
	labels, ok := out["labels"].(map[string]any)
	if !ok || labels["labeled"] != float64(2) {
		t.Fatalf("labels = %#v", out["labels"])
	}
	if out["moved"] != "ok" {
		t.Fatalf("moved = %v", out["moved"])
	}
	// Event log must contain entered/exited pairs for all visited states.
	events := run.Events()
	entered := 0
	for _, ev := range events {
		if ev.Kind == EventStateEntered {
			entered++
		}
	}
	if entered != 4 { // Crawl, AnyFiles, Infer, Move... plus Done = 5? Done is Succeed
		// Visited: Crawl, AnyFiles, Infer, Move, Done = 5
		if entered != 5 {
			t.Fatalf("entered %d states", entered)
		}
	}
}

func TestChoiceDefaultBranch(t *testing.T) {
	def, err := ParseDefinition([]byte(inferenceFlowJSON))
	if err != nil {
		t.Fatal(err)
	}
	e := engineWithProviders(t, EngineConfig{})
	run, err := e.Start(context.Background(), def, map[string]any{"watch_dir": "/empty"})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := run.Wait(context.Background()); err != nil {
		t.Fatal(err)
	}
	// The empty branch must not have run inference.
	for _, ev := range run.Events() {
		if ev.State == "Infer" {
			t.Fatal("inference ran on empty crawl")
		}
	}
}

func TestValidationErrors(t *testing.T) {
	cases := map[string]string{
		"no start":        `{"States": {"A": {"Type": "Succeed"}}}`,
		"bad start":       `{"StartAt": "X", "States": {"A": {"Type": "Succeed"}}}`,
		"bad next":        `{"StartAt": "A", "States": {"A": {"Type": "Pass", "Next": "Z"}, "B": {"Type": "Succeed"}}}`,
		"no terminal":     `{"StartAt": "A", "States": {"A": {"Type": "Pass", "Next": "A"}}}`,
		"no provider":     `{"StartAt": "A", "States": {"A": {"Type": "Action", "End": true}}}`,
		"dangling action": `{"StartAt": "A", "States": {"A": {"Type": "Action", "ActionProvider": "p"}}}`,
		"unknown type":    `{"StartAt": "A", "States": {"A": {"Type": "Banana", "End": true}}}`,
		"choice no rules": `{"StartAt": "A", "States": {"A": {"Type": "Choice"}, "B": {"Type": "Succeed"}}}`,
		"rule two cmp":    `{"StartAt": "A", "States": {"A": {"Type": "Choice", "Choices": [{"Variable": "$.x", "StringEquals": "a", "IsNull": true, "Next": "B"}]}, "B": {"Type": "Succeed"}}}`,
		"unknown field":   `{"StartAt": "A", "Bogus": 1, "States": {"A": {"Type": "Succeed"}}}`,
	}
	for name, doc := range cases {
		if _, err := ParseDefinition([]byte(doc)); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

func TestUnregisteredProviderRejectedAtStart(t *testing.T) {
	def, err := ParseDefinition([]byte(`{
		"StartAt": "A",
		"States": {"A": {"Type": "Action", "ActionProvider": "ghost", "End": true}}
	}`))
	if err != nil {
		t.Fatal(err)
	}
	e := NewEngine(EngineConfig{})
	if _, err := e.Start(context.Background(), def, nil); err == nil {
		t.Fatal("ghost provider accepted")
	}
}

func TestFailStateAndProviderError(t *testing.T) {
	e := NewEngine(EngineConfig{})
	if err := e.RegisterProvider("bad", func(ctx context.Context, p map[string]any) (any, error) {
		return nil, errors.New("provider exploded")
	}); err != nil {
		t.Fatal(err)
	}
	def, err := ParseDefinition([]byte(`{
		"StartAt": "A",
		"States": {"A": {"Type": "Action", "ActionProvider": "bad", "End": true}}
	}`))
	if err != nil {
		t.Fatal(err)
	}
	run, err := e.Start(context.Background(), def, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := run.Wait(context.Background()); err == nil {
		t.Fatal("provider error swallowed")
	}
	if run.Status() != RunFailed {
		t.Fatalf("status %v", run.Status())
	}

	def2, err := ParseDefinition([]byte(`{
		"StartAt": "F",
		"States": {"F": {"Type": "Fail", "Error": "BadDay", "Cause": "nothing works"}}
	}`))
	if err != nil {
		t.Fatal(err)
	}
	run2, err := e.Start(context.Background(), def2, nil)
	if err != nil {
		t.Fatal(err)
	}
	_, err = run2.Wait(context.Background())
	if err == nil || !strings.Contains(err.Error(), "BadDay") {
		t.Fatalf("fail state error: %v", err)
	}
}

func TestCycleGuard(t *testing.T) {
	def, err := ParseDefinition([]byte(`{
		"StartAt": "A",
		"States": {
			"A": {"Type": "Pass", "Next": "B"},
			"B": {"Type": "Pass", "Next": "A"},
			"C": {"Type": "Succeed"}
		}
	}`))
	if err != nil {
		t.Fatal(err)
	}
	e := NewEngine(EngineConfig{MaxTransitions: 50})
	run, err := e.Start(context.Background(), def, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := run.Wait(context.Background()); err == nil {
		t.Fatal("cycle not caught")
	}
}

func TestWaitState(t *testing.T) {
	def, err := ParseDefinition([]byte(`{
		"StartAt": "W",
		"States": {
			"W": {"Type": "Wait", "Seconds": 0.05, "Next": "S"},
			"S": {"Type": "Succeed"}
		}
	}`))
	if err != nil {
		t.Fatal(err)
	}
	e := NewEngine(EngineConfig{})
	start := time.Now()
	run, err := e.Start(context.Background(), def, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := run.Wait(context.Background()); err != nil {
		t.Fatal(err)
	}
	if time.Since(start) < 40*time.Millisecond {
		t.Fatal("wait state did not wait")
	}
}

func TestPassResultInjection(t *testing.T) {
	def, err := ParseDefinition([]byte(`{
		"StartAt": "P",
		"States": {
			"P": {"Type": "Pass", "Result": {"k": 42}, "ResultPath": "$.injected", "Next": "S"},
			"S": {"Type": "Succeed"}
		}
	}`))
	if err != nil {
		t.Fatal(err)
	}
	e := NewEngine(EngineConfig{})
	run, err := e.Start(context.Background(), def, nil)
	if err != nil {
		t.Fatal(err)
	}
	out, err := run.Wait(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	inj, ok := out["injected"].(map[string]any)
	if !ok || inj["k"] != float64(42) {
		t.Fatalf("injected = %#v", out["injected"])
	}
}

func TestParameterSubstitutionNested(t *testing.T) {
	e := NewEngine(EngineConfig{})
	var got map[string]any
	if err := e.RegisterProvider("probe", func(ctx context.Context, p map[string]any) (any, error) {
		got = p
		return nil, nil
	}); err != nil {
		t.Fatal(err)
	}
	def, err := ParseDefinition([]byte(`{
		"StartAt": "A",
		"States": {"A": {
			"Type": "Action",
			"ActionProvider": "probe",
			"Parameters": {
				"plain": "hello",
				"ref": "$.cfg.path",
				"nested": {"inner": "$.cfg.n"},
				"list": ["$.cfg.path", "x"]
			},
			"End": true
		}}
	}`))
	if err != nil {
		t.Fatal(err)
	}
	run, err := e.Start(context.Background(), def, map[string]any{
		"cfg": map[string]any{"path": "/data", "n": float64(7)},
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := run.Wait(context.Background()); err != nil {
		t.Fatal(err)
	}
	if got["plain"] != "hello" || got["ref"] != "/data" {
		t.Fatalf("params = %#v", got)
	}
	if got["nested"].(map[string]any)["inner"] != float64(7) {
		t.Fatalf("nested = %#v", got["nested"])
	}
	if got["list"].([]any)[0] != "/data" {
		t.Fatalf("list = %#v", got["list"])
	}
}

func TestActionOverheadMeasurable(t *testing.T) {
	// The Fig. 7 measurement: with a configured 5ms dispatch overhead and
	// instant providers, mean action latency must be >= 5ms.
	e := NewEngine(EngineConfig{ActionOverhead: 5 * time.Millisecond})
	if err := e.RegisterProvider("instant", func(ctx context.Context, p map[string]any) (any, error) {
		return nil, nil
	}); err != nil {
		t.Fatal(err)
	}
	def, err := ParseDefinition([]byte(`{
		"StartAt": "A",
		"States": {
			"A": {"Type": "Action", "ActionProvider": "instant", "Next": "B"},
			"B": {"Type": "Action", "ActionProvider": "instant", "End": true}
		}
	}`))
	if err != nil {
		t.Fatal(err)
	}
	run, err := e.Start(context.Background(), def, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := run.Wait(context.Background()); err != nil {
		t.Fatal(err)
	}
	// Overhead is slept after state-entered, so it lands inside the
	// enter→exit window.
	lat := MeanActionLatency(run.Events(), def)
	if lat < 5*time.Millisecond {
		t.Fatalf("mean action latency %v < overhead", lat)
	}
}

func TestProviderPanicBecomesError(t *testing.T) {
	e := NewEngine(EngineConfig{})
	if err := e.RegisterProvider("explode", func(ctx context.Context, p map[string]any) (any, error) {
		panic("provider bug")
	}); err != nil {
		t.Fatal(err)
	}
	def, _ := ParseDefinition([]byte(`{
		"StartAt": "A",
		"States": {"A": {"Type": "Action", "ActionProvider": "explode", "End": true}}
	}`))
	run, err := e.Start(context.Background(), def, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := run.Wait(context.Background()); err == nil {
		t.Fatal("panic swallowed")
	}
}

func TestConcurrentRunsIsolated(t *testing.T) {
	e := NewEngine(EngineConfig{})
	var counter int64
	if err := e.RegisterProvider("count", func(ctx context.Context, p map[string]any) (any, error) {
		return atomic.AddInt64(&counter, 1), nil
	}); err != nil {
		t.Fatal(err)
	}
	def, _ := ParseDefinition([]byte(`{
		"StartAt": "A",
		"States": {"A": {"Type": "Action", "ActionProvider": "count", "ResultPath": "$.n", "End": true}}
	}`))
	runs := make([]*Run, 10)
	for i := range runs {
		r, err := e.Start(context.Background(), def, map[string]any{"run": fmt.Sprint(i)})
		if err != nil {
			t.Fatal(err)
		}
		runs[i] = r
	}
	seen := map[float64]bool{}
	for _, r := range runs {
		out, err := r.Wait(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		n, ok := out["n"].(int64)
		if !ok {
			// Provider returned int64; engine stores it untyped.
			t.Fatalf("n = %#v", out["n"])
		}
		if seen[float64(n)] {
			t.Fatal("runs shared state")
		}
		seen[float64(n)] = true
	}
	if atomic.LoadInt64(&counter) != 10 {
		t.Fatalf("provider ran %d times", counter)
	}
	// Run lookup by ID.
	if _, err := e.Run(runs[0].ID); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Run("run-999999"); err == nil {
		t.Fatal("unknown run found")
	}
}
