package modis

import (
	"bytes"
	"fmt"
	"math"

	"github.com/eoml/eoml/internal/hdf"
)

// Generator synthesizes granules at a configurable resolution.
//
// ScaleDown divides both swath dimensions: 1 reproduces the full
// 2030×1354 swath (≈198 MB of MOD02 per granule), 8 yields 253×169
// (≈3 MB), which is the default for container-scale runs. A 128×128-pixel
// AICCA tile at full resolution corresponds to a (128/ScaleDown)²-pixel
// tile on a scaled granule; the preprocessor accepts the tile size as a
// parameter so the tiles-per-granule ratio is preserved at any scale.
type Generator struct {
	// ScaleDown divides the swath resolution. Must be >= 1.
	ScaleDown int
}

// NewGenerator returns a generator at the given scale-down factor.
func NewGenerator(scaleDown int) (*Generator, error) {
	if scaleDown < 1 {
		return nil, fmt.Errorf("modis: scale-down %d must be >= 1", scaleDown)
	}
	return &Generator{ScaleDown: scaleDown}, nil
}

// Dims returns the swath dimensions at the generator's scale.
func (gen *Generator) Dims() (ny, nx int) {
	return FullAlongTrack / gen.ScaleDown, FullCrossTrack / gen.ScaleDown
}

// TilePixels returns the edge length, in scaled pixels, that corresponds
// to a full-resolution 128-pixel AICCA tile.
func (gen *Generator) TilePixels() int {
	t := TileSize / gen.ScaleDown
	if t < 4 {
		t = 4
	}
	return t
}

// scene holds the per-granule physical fields shared by all products.
type scene struct {
	ny, nx int
	lats   []float32
	lons   []float32
	land   []uint8   // 0 ocean, 1 land, 2 coast
	cloud  []float32 // cloudiness in [0,1]
	day    bool
}

// buildScene computes geolocation, the land mask from the fixed planetary
// field, and the granule's cloud field. Products of the same granule share
// one scene, which is what makes MOD02 radiances physically consistent
// with MOD06 cloud properties.
func (gen *Generator) buildScene(g GranuleID) *scene {
	ny, nx := gen.Dims()
	s := &scene{ny: ny, nx: nx}
	s.lats, s.lons = swathGrid(g, ny, nx)

	s.land = make([]uint8, ny*nx)
	for i := range s.land {
		if isLand(float64(s.lats[i]), float64(s.lons[i])) {
			s.land[i] = 1
		}
	}
	markCoast(s.land, ny, nx)

	// Cloud field: three noise octaves at synoptic scale plus a
	// mesoscale texture octave, evaluated in swath-local coordinates.
	cn := newNoise2(g.Seed(), 4)
	s.cloud = make([]float32, ny*nx)
	for i := 0; i < ny; i++ {
		for j := 0; j < nx; j++ {
			// Scale coordinates so one noise feature spans ~300 km.
			x := float64(j) * float64(gen.ScaleDown) / 300.0
			y := float64(i) * float64(gen.ScaleDown) / 300.0
			v := cn.at(x, y)
			// Sharpen the field so it bimodally separates clear sky from
			// cloud decks, like real marine stratocumulus scenes.
			v = sharpen(v)
			s.cloud[i*nx+j] = float32(v)
		}
	}

	// Day/night from the orbit half at the granule midpoint.
	s.day = isDaySide(g, float64(g.Index)+0.5)
	return s
}

// sharpen pushes a [0,1] value toward 0 or 1 with a logistic curve.
func sharpen(v float64) float64 {
	return 1 / (1 + math.Exp(-10*(v-0.52)))
}

// markCoast upgrades land pixels adjacent to ocean to the coast class.
func markCoast(land []uint8, ny, nx int) {
	isOcean := func(i, j int) bool {
		if i < 0 || i >= ny || j < 0 || j >= nx {
			return false
		}
		return land[i*nx+j] == 0
	}
	for i := 0; i < ny; i++ {
		for j := 0; j < nx; j++ {
			if land[i*nx+j] != 1 {
				continue
			}
			if isOcean(i-1, j) || isOcean(i+1, j) || isOcean(i, j-1) || isOcean(i, j+1) {
				land[i*nx+j] = 2
			}
		}
	}
}

// CloudyThreshold is the cloud-field value above which a pixel counts as
// cloudy in the MOD06 mask (and in the tile selection rule).
const CloudyThreshold = 0.5

// Radiance encoding constants for the scaled-integer MOD02 bands.
const (
	RadianceScale  = 0.002
	RadianceOffset = 0.0
	maxScaledValue = 32767
)

// Generate synthesizes one product granule.
func (gen *Generator) Generate(p Product, g GranuleID) (*hdf.File, error) {
	if err := g.Validate(); err != nil {
		return nil, err
	}
	if p.Satellite != g.Satellite {
		return nil, fmt.Errorf("modis: product %s does not match granule satellite %s", p.ShortName(), g.Satellite)
	}
	s := gen.buildScene(g)
	f := hdf.NewFile()
	f.Attrs["ShortName"] = p.ShortName()
	f.Attrs["Platform"] = g.Satellite.String()
	f.Attrs["AcquisitionDate"] = fmt.Sprintf("A%04d%03d.%s", g.Year, g.DOY, g.HHMM())
	f.Attrs["Collection"] = Collection
	f.Attrs["ScaleDown"] = int64(gen.ScaleDown)
	if s.day {
		f.Attrs["DayNightFlag"] = "Day"
	} else {
		f.Attrs["DayNightFlag"] = "Night"
	}

	var err error
	switch p.Kind {
	case Geo:
		err = gen.fillGeo(f, s)
	case L1B:
		err = gen.fillL1B(f, s, g)
	case Cloud:
		err = gen.fillCloud(f, s)
	default:
		err = fmt.Errorf("modis: unknown product kind %d", p.Kind)
	}
	if err != nil {
		return nil, err
	}
	return f, nil
}

// GenerateBytes renders the encoded granule file.
func (gen *Generator) GenerateBytes(p Product, g GranuleID) ([]byte, error) {
	f, err := gen.Generate(p, g)
	if err != nil {
		return nil, err
	}
	var buf bytes.Buffer
	if err := hdf.Write(&buf, f); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

func (gen *Generator) fillGeo(f *hdf.File, s *scene) error {
	dims := []int{s.ny, s.nx}
	lat, err := hdf.NewFloat32("Latitude", dims, s.lats)
	if err != nil {
		return err
	}
	lon, err := hdf.NewFloat32("Longitude", dims, s.lons)
	if err != nil {
		return err
	}
	lsm, err := hdf.NewUint8("LandSeaMask", dims, s.land)
	if err != nil {
		return err
	}
	for _, d := range []*hdf.Dataset{lat, lon, lsm} {
		if err := f.Add(d); err != nil {
			return err
		}
	}
	return nil
}

// fillL1B synthesizes the 36-band calibrated radiance cube. Reflective
// bands respond to cloud albedo during the day; thermal bands respond to
// cloud-top temperature day and night. At night the reflective bands carry
// the fill value, reproducing the missing-band behaviour the paper notes
// for nighttime granules.
func (gen *Generator) fillL1B(f *hdf.File, s *scene, g GranuleID) error {
	n := s.ny * s.nx
	values := make([]uint16, NumBands*n)
	const fill = uint16(65535)
	seed := g.Seed()
	for b := 0; b < NumBands; b++ {
		reflective := b < 20
		base := values[b*n : (b+1)*n]
		if reflective && !s.day {
			for i := range base {
				base[i] = fill
			}
			continue
		}
		gain := bandGain(b)
		for i := 0; i < n; i++ {
			cloud := float64(s.cloud[i])
			land := s.land[i] != 0
			var phys float64
			if reflective {
				surface := 0.06 // dark ocean
				if land {
					surface = 0.28
				}
				phys = surface + cloud*0.65*gain
			} else {
				// Brightness temperature mapped into reflectance-like
				// units: colder (high cloud) -> larger stored value.
				surfaceT := 0.18
				if land {
					surfaceT = 0.22
				}
				phys = surfaceT + cloud*0.5*gain
			}
			// Mesoscale texture so tiles are not flat fields.
			tex := latticeHash(seed, int64(b+100), int64(i%s.nx), int64(i/s.nx))
			phys += (tex - 0.5) * 0.06
			if phys < 0 {
				phys = 0
			}
			sv := (phys - RadianceOffset) / RadianceScale
			if sv > maxScaledValue {
				sv = maxScaledValue
			}
			base[i] = uint16(sv)
		}
	}
	d, err := hdf.NewUint16("EV_1KM_RefSB", []int{NumBands, s.ny, s.nx}, values)
	if err != nil {
		return err
	}
	if err := f.Add(d); err != nil {
		return err
	}
	f.Attrs["radiance_scale"] = RadianceScale
	f.Attrs["radiance_offset"] = RadianceOffset
	f.Attrs["_FillValue"] = int64(fill)
	return nil
}

// bandGain differentiates the spectral response of the 36 bands.
func bandGain(b int) float64 {
	return 0.6 + 0.4*math.Sin(float64(b)*0.7)*math.Sin(float64(b)*0.7)
}

func (gen *Generator) fillCloud(f *hdf.File, s *scene) error {
	n := s.ny * s.nx
	dims := []int{s.ny, s.nx}
	mask := make([]uint8, n)
	ctp := make([]float32, n)  // cloud-top pressure, hPa
	cot := make([]float32, n)  // cloud optical thickness
	cer := make([]float32, n)  // cloud effective radius, micron
	cwp := make([]float32, n)  // cloud water path, g/m^2
	phase := make([]uint8, n)  // 0 clear, 1 liquid, 2 ice
	frac := make([]float32, n) // cloud fraction
	for i := 0; i < n; i++ {
		c := float64(s.cloud[i])
		frac[i] = float32(c)
		if c > CloudyThreshold {
			mask[i] = 1
			depth := (c - CloudyThreshold) / (1 - CloudyThreshold) // 0..1
			ctp[i] = float32(950 - 650*depth)
			cot[i] = float32(2 + 38*depth)
			cer[i] = float32(8 + 22*depth)
			cwp[i] = float32(20 + 480*depth)
			if ctp[i] < 450 {
				phase[i] = 2
			} else {
				phase[i] = 1
			}
		} else {
			ctp[i] = 1013
		}
	}
	add := func(d *hdf.Dataset, err error) error {
		if err != nil {
			return err
		}
		return f.Add(d)
	}
	if err := add(hdf.NewUint8("Cloud_Mask_1km", dims, mask)); err != nil {
		return err
	}
	if err := add(hdf.NewFloat32("Cloud_Fraction", dims, frac)); err != nil {
		return err
	}
	if err := add(hdf.NewFloat32("Cloud_Top_Pressure", dims, ctp)); err != nil {
		return err
	}
	if err := add(hdf.NewFloat32("Cloud_Optical_Thickness", dims, cot)); err != nil {
		return err
	}
	if err := add(hdf.NewFloat32("Cloud_Effective_Radius", dims, cer)); err != nil {
		return err
	}
	if err := add(hdf.NewFloat32("Cloud_Water_Path", dims, cwp)); err != nil {
		return err
	}
	if err := add(hdf.NewUint8("Cloud_Phase_Infrared", dims, phase)); err != nil {
		return err
	}
	// Convenience copy of the land/sea mask so MOD06-only consumers can
	// filter ocean pixels, mirroring the ancillary mask in the real L2
	// product.
	if err := add(hdf.NewUint8("LandSeaMask", dims, s.land)); err != nil {
		return err
	}
	return nil
}
