package core

import (
	"context"
	"fmt"
	"os"
	"sync"
	"time"

	"github.com/eoml/eoml/internal/aicca"
	"github.com/eoml/eoml/internal/flows"
	"github.com/eoml/eoml/internal/laads"
	"github.com/eoml/eoml/internal/modis"
	"github.com/eoml/eoml/internal/parsl"
	"github.com/eoml/eoml/internal/trace"
	"github.com/eoml/eoml/internal/transfer"
	"github.com/eoml/eoml/internal/watch"
)

// RunStream executes the workflow in streaming mode — the paper's §V
// extension to "batch as well as streaming data". Granule indices arrive
// on a channel (as they would from a satellite downlink feed); each
// arrival is downloaded and preprocessed immediately, the monitor/flow
// machinery labels tile files as they appear, and shipment happens once
// the stream closes and the backlog drains.
//
// Unlike Run, preprocessing is NOT delayed until all downloads finish:
// per-granule isolation (atomic writes, per-granule tile files) makes the
// partial-file hazard of the batch design structurally impossible here.
func (p *Pipeline) RunStream(ctx context.Context, arrivals <-chan int) (*Report, error) {
	start := time.Now()
	rep := &Report{
		Timeline: trace.NewTimeline(),
		Spans:    trace.NewSpans(),
	}
	since := func() float64 { return time.Since(start).Seconds() }

	for _, dir := range []string{p.cfg.DataDir, p.cfg.TileDir, p.cfg.OutboxDir, p.cfg.DestDir} {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return nil, err
		}
	}

	// Monitor + inference flow, as in Run: one cross-file batcher plus a
	// bounded worker pool.
	batcher := aicca.NewBatchLabeler(p.labeler, aicca.BatchConfig{
		MaxTiles: p.cfg.BatchTiles,
		MaxDelay: p.cfg.BatchDelay,
		Timeline: rep.Timeline,
		Epoch:    start,
	})
	defer batcher.Close()

	engine := flows.NewEngine(flows.EngineConfig{})
	if err := engine.RegisterProvider("inference", p.inferenceProvider(batcher)); err != nil {
		return nil, err
	}
	if err := engine.RegisterProvider("move", p.moveProvider()); err != nil {
		return nil, err
	}
	flowDef, err := flows.ParseDefinition([]byte(inferenceFlowDefinition))
	if err != nil {
		return nil, err
	}
	crawler, err := watch.NewCrawler(watch.Config{
		Dir:      p.cfg.TileDir,
		Pattern:  "*.nc",
		Interval: p.cfg.PollInterval,
	})
	if err != nil {
		return nil, err
	}

	var mu sync.Mutex
	labeled := 0
	tilesLabeled := 0
	var flowErr error
	inferCtx, stopCrawler := context.WithCancel(ctx)
	defer stopCrawler()
	crawlerDone := make(chan struct{})

	progress := make(chan struct{}, 1)
	bump := func() {
		select {
		case progress <- struct{}{}:
		default:
		}
	}

	events := make(chan watch.Event, 4*p.cfg.InferenceWorkers+64)
	var poolWG sync.WaitGroup
	for w := 0; w < p.cfg.InferenceWorkers; w++ {
		poolWG.Add(1)
		go func() {
			defer poolWG.Done()
			for ev := range events {
				run, err := engine.Start(ctx, flowDef, map[string]any{
					"file":   ev.Path,
					"outbox": p.cfg.OutboxDir,
				})
				var out map[string]any
				if err == nil {
					out, err = run.Wait(ctx)
				}
				mu.Lock()
				if err != nil {
					if flowErr == nil {
						flowErr = err
					}
				} else {
					labeled++
					if n, ok := out["labeled"].(int); ok {
						tilesLabeled += n
					}
					rep.Timeline.Record("inference", since(), labeled)
				}
				mu.Unlock()
				bump()
			}
		}()
	}

	go func() {
		defer close(crawlerDone)
		_ = crawler.Run(inferCtx, func(evs []watch.Event) error {
			for _, ev := range evs {
				events <- ev
			}
			return nil
		})
	}()

	// A persistent preprocessing executor handles granules as they land.
	exec, err := parsl.NewHTEX(parsl.HTEXConfig{
		Label:          "stream-preprocess",
		WorkersPerNode: p.cfg.PreprocessWorkers,
		InitBlocks:     1,
		MaxBlocks:      1,
		OnWorkerChange: func(busy int) {
			rep.Timeline.Record("preprocess", since(), busy)
		},
	})
	if err != nil {
		return nil, err
	}
	if err := exec.Start(); err != nil {
		return nil, err
	}
	dfk, err := parsl.NewDFK(exec, parsl.DFKConfig{Retries: 1})
	if err != nil {
		return nil, err
	}

	client := laads.NewClient(p.cfg.ArchiveURL, p.cfg.ArchiveToken)
	var futs []*parsl.AppFuture

	// Consume the stream: download each arrival's product triple, then
	// submit its preprocessing app.
	for idx := range arrivals {
		if idx < 0 || idx >= modis.GranulesPerDay {
			exec.Shutdown()
			return nil, fmt.Errorf("core: stream granule index %d out of range", idx)
		}
		g := modis.GranuleID{Satellite: p.cfg.Satellite, Year: p.cfg.Year, DOY: p.cfg.DOY, Index: idx}
		rep.GranulesRequested++
		rep.Timeline.Record("download", since(), 1)
		var tasks []laads.Task
		for _, prod := range p.cfg.Products() {
			tasks = append(tasks, laads.Task{Product: prod, Year: g.Year, DOY: g.DOY, Name: modis.FileName(prod, g)})
		}
		dlRep, err := client.DownloadAll(ctx, tasks, p.cfg.DataDir, p.cfg.DownloadWorkers)
		if err != nil {
			exec.Shutdown()
			return nil, fmt.Errorf("core: stream download granule %d: %w", idx, err)
		}
		rep.FilesDownloaded += len(dlRep.Files)
		rep.BytesDownloaded += dlRep.TotalBytes
		rep.Timeline.Record("download", since(), 0)

		futs = append(futs, dfk.Submit(fmt.Sprintf("stream-tiles[%d]", idx), func(ctx context.Context) (any, error) {
			return p.preprocessGranule(g)
		}))
	}

	// Stream closed: drain preprocessing.
	expectFiles := 0
	for i, f := range futs {
		v, err := f.Get(ctx)
		if err != nil {
			exec.Shutdown()
			return nil, fmt.Errorf("core: stream preprocess %d: %w", i, err)
		}
		r := v.(preResult)
		rep.TilesProduced += r.tiles
		if r.hasFile {
			expectFiles++
		}
	}
	rep.TileFiles = expectFiles
	if err := exec.Shutdown(); err != nil {
		return nil, err
	}

	// Drain inference: block on worker progress signals, no poll loop.
	stall := time.NewTimer(5 * time.Minute)
	defer stall.Stop()
	for {
		mu.Lock()
		done := labeled >= expectFiles
		err := flowErr
		mu.Unlock()
		if err != nil {
			return nil, fmt.Errorf("core: stream inference: %w", err)
		}
		if done {
			break
		}
		select {
		case <-progress:
		case <-ctx.Done():
			return nil, ctx.Err()
		case <-stall.C:
			return nil, fmt.Errorf("core: stream inference stalled: %d/%d", labeled, expectFiles)
		}
	}
	stopCrawler()
	<-crawlerDone
	close(events)
	poolWG.Wait()
	batcher.Close()
	mu.Lock()
	rep.TilesLabeled = tilesLabeled
	mu.Unlock()

	// Shipment.
	shipWall := time.Now()
	if expectFiles > 0 {
		svc := transfer.NewService(transfer.Options{VerifyChecksum: true, Parallelism: 4})
		if _, err := svc.RegisterEndpoint("defiant", "ACE Defiant", p.cfg.OutboxDir); err != nil {
			return nil, err
		}
		if _, err := svc.RegisterEndpoint("orion", "Frontier Orion", p.cfg.DestDir); err != nil {
			return nil, err
		}
		taskID, err := svc.SubmitDir("defiant", "orion", ".", ".")
		if err != nil {
			return nil, err
		}
		st, err := svc.Wait(ctx, taskID)
		if err != nil {
			return nil, err
		}
		if st.State != transfer.Succeeded {
			return nil, fmt.Errorf("core: stream shipment failed: %v", st.Errors)
		}
		rep.FilesShipped = st.FilesDone
		if p.prov != nil {
			entries, err := os.ReadDir(p.cfg.OutboxDir)
			if err == nil {
				var names []string
				for _, e := range entries {
					if !e.IsDir() {
						names = append(names, e.Name())
					}
				}
				p.recordShipment(names, shipWall, time.Now())
			}
		}
	}
	rep.Elapsed = time.Since(start)
	return rep, nil
}
