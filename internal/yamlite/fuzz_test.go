package yamlite

import (
	"testing"
)

// FuzzParse drives the parser with arbitrary documents. Two properties
// must hold for every input: Parse never panics (config files are
// user-authored, so arbitrary bytes reach this code path in normal
// operation), and any tree Parse accepts survives a Marshal → Parse
// round trip (otherwise a valid config rewritten by tooling would stop
// loading).
func FuzzParse(f *testing.F) {
	seeds := []string{
		"",
		"key: value\n",
		"a: 1\nb: 2.5\nc: true\nd: null\ne: ~\n",
		"outer:\n  inner: deep\n  other: 2\n",
		"list:\n  - one\n  - two\n",
		"- a: 1\n- b: 2\n",
		"flow: [1, 2, 3]\nmap: {a: 1, b: two}\n",
		"quoted: \"a \\\"b\\\" c\"\nsingle: 'x y'\n",
		"# comment only\n",
		"key: value # trailing comment\n",
		"endpoints:\n  - name: defiant\n    workers: 32\n  - name: andes\n    workers: 8\n",
		"laads:\n  token: \"abc123\"\n  products: [MOD021KM, MOD03, MOD35_L2]\n",
		"bad:\n\t- tab indent\n",
		"dup: 1\ndup: 2\n",
		"a:\n - 1\n  - 2\n",
		"deep:\n a:\n  b:\n   c:\n    d: 1\n",
		"x: [1, [2, [3]]]\n",
		"neg: -12\nexp: 1e9\nhex-ish: 0x10\n",
	}
	for _, s := range seeds {
		f.Add([]byte(s))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		v, err := Parse(data)
		if err != nil {
			return
		}
		out := Marshal(v)
		if _, err := Parse(out); err != nil {
			t.Fatalf("re-parse of marshalled tree failed: %v\noriginal: %q\nmarshalled: %q", err, data, out)
		}
	})
}
