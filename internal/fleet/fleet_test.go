package fleet

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/eoml/eoml/internal/compute"
	"github.com/eoml/eoml/internal/metrics"
)

// fakeClock is a manually advanced time source.
type fakeClock struct {
	mu  sync.Mutex
	now time.Time
}

func newFakeClock() *fakeClock {
	return &fakeClock{now: time.Date(2024, 1, 1, 0, 0, 0, 0, time.UTC)}
}

func (f *fakeClock) Now() time.Time {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.now
}

func (f *fakeClock) Advance(d time.Duration) {
	f.mu.Lock()
	f.now = f.now.Add(d)
	f.mu.Unlock()
}

// transportFunc adapts a function to the Transport interface.
type transportFunc func(ctx context.Context, url, fn string, args map[string]any) (any, error)

func (f transportFunc) Run(ctx context.Context, url, fn string, args map[string]any) (any, error) {
	return f(ctx, url, fn, args)
}

func counterValue(t *testing.T, reg *metrics.Registry, name string) float64 {
	t.Helper()
	for _, fam := range reg.Snapshot() {
		if fam.Name == name {
			total := 0.0
			for _, s := range fam.Series {
				total += s.Value
			}
			return total
		}
	}
	t.Fatalf("metric %s not found", name)
	return 0
}

func TestFleetDispatchAndComplete(t *testing.T) {
	clk := newFakeClock()
	c := NewCoordinator(Config{
		Clock: clk.Now,
		Transport: transportFunc(func(ctx context.Context, url, fn string, args map[string]any) (any, error) {
			return map[string]any{"echo": args["n"], "worker": url}, nil
		}),
	})
	defer c.Close()
	reg := metrics.NewRegistry()
	c.Instrument(reg)

	if err := c.Register("w1", "http://w1", 2); err != nil {
		t.Fatal(err)
	}
	if err := c.Register("w2", "http://w2", 2); err != nil {
		t.Fatal(err)
	}

	ctx := context.Background()
	var futs []*Future
	for i := 0; i < 8; i++ {
		fut, err := c.Submit(ctx, "echo", map[string]any{"n": i})
		if err != nil {
			t.Fatal(err)
		}
		futs = append(futs, fut)
	}
	for i, fut := range futs {
		v, err := fut.Get(ctx)
		if err != nil {
			t.Fatalf("task %d: %v", i, err)
		}
		m := v.(map[string]any)
		if m["echo"] != i {
			t.Fatalf("task %d echoed %v", i, m["echo"])
		}
	}
	if got := counterValue(t, reg, "eoml_fleet_tasks_completed_total"); got != 8 {
		t.Fatalf("completed = %v, want 8", got)
	}
	if got := counterValue(t, reg, "eoml_fleet_tasks_failed_total"); got != 0 {
		t.Fatalf("failed = %v, want 0", got)
	}
	ws := c.Workers()
	if len(ws) != 2 || ws[0].ID != "w1" || ws[1].ID != "w2" {
		t.Fatalf("workers = %+v", ws)
	}
}

// TestFleetInFlightBounds holds tasks open and asserts the coordinator
// never leases beyond a worker's declared capacity.
func TestFleetInFlightBounds(t *testing.T) {
	release := make(chan struct{})
	var mu sync.Mutex
	inflight, peak := 0, 0
	c := NewCoordinator(Config{
		Transport: transportFunc(func(ctx context.Context, url, fn string, args map[string]any) (any, error) {
			mu.Lock()
			inflight++
			if inflight > peak {
				peak = inflight
			}
			mu.Unlock()
			<-release
			mu.Lock()
			inflight--
			mu.Unlock()
			return "ok", nil
		}),
	})
	defer c.Close()
	if err := c.Register("w1", "http://w1", 2); err != nil {
		t.Fatal(err)
	}

	ctx := context.Background()
	var futs []*Future
	for i := 0; i < 6; i++ {
		fut, err := c.Submit(ctx, "hold", nil)
		if err != nil {
			t.Fatal(err)
		}
		futs = append(futs, fut)
	}
	close(release)
	for _, fut := range futs {
		if _, err := fut.Get(ctx); err != nil {
			t.Fatal(err)
		}
	}
	mu.Lock()
	defer mu.Unlock()
	if peak > 2 {
		t.Fatalf("peak in-flight %d exceeds capacity 2", peak)
	}
}

// TestFleetDrainingRequeue: a drain rejection (compute.ErrDraining) is
// a transport failure, so the lease requeues and retries instead of
// failing the task.
func TestFleetDrainingRequeue(t *testing.T) {
	var mu sync.Mutex
	calls := 0
	c := NewCoordinator(Config{
		Transport: transportFunc(func(ctx context.Context, url, fn string, args map[string]any) (any, error) {
			mu.Lock()
			calls++
			first := calls == 1
			mu.Unlock()
			if first {
				// What RemoteEndpoint.Submit returns when the worker's
				// endpoint answered 503 mid-drain.
				return nil, fmt.Errorf("compute: submit: endpoint draining: %w", compute.ErrDraining)
			}
			return "ok", nil
		}),
	})
	defer c.Close()
	reg := metrics.NewRegistry()
	c.Instrument(reg)
	if err := c.Register("w1", "http://w1", 1); err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	fut, err := c.Submit(ctx, "work", nil)
	if err != nil {
		t.Fatal(err)
	}
	v, err := fut.Get(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if v != "ok" {
		t.Fatalf("result = %v", v)
	}
	if got := counterValue(t, reg, "eoml_fleet_tasks_requeued_total"); got != 1 {
		t.Fatalf("requeued = %v, want 1", got)
	}
	if got := counterValue(t, reg, "eoml_fleet_tasks_failed_total"); got != 0 {
		t.Fatalf("failed = %v, want 0", got)
	}
}

// TestFleetTaskErrorFatal: a *TaskError (the task function itself
// failed) must fail the task immediately, with no requeue.
func TestFleetTaskErrorFatal(t *testing.T) {
	calls := 0
	var mu sync.Mutex
	c := NewCoordinator(Config{
		Transport: transportFunc(func(ctx context.Context, url, fn string, args map[string]any) (any, error) {
			mu.Lock()
			calls++
			mu.Unlock()
			return nil, &TaskError{Msg: "no such granule"}
		}),
	})
	defer c.Close()
	if err := c.Register("w1", "http://w1", 1); err != nil {
		t.Fatal(err)
	}
	fut, err := c.Submit(context.Background(), "work", nil)
	if err != nil {
		t.Fatal(err)
	}
	_, err = fut.Get(context.Background())
	var te *TaskError
	if !errors.As(err, &te) {
		t.Fatalf("err = %v, want TaskError", err)
	}
	mu.Lock()
	defer mu.Unlock()
	if calls != 1 {
		t.Fatalf("transport called %d times, want 1 (task errors are fatal)", calls)
	}
}

// TestFleetMaxAttempts: persistent transport failure exhausts the
// attempt budget and fails the task. Drain rejections are used because
// they requeue without evicting the worker, so every retry has a
// worker to bounce off.
func TestFleetMaxAttempts(t *testing.T) {
	calls := 0
	var mu sync.Mutex
	c := NewCoordinator(Config{
		MaxAttempts: 3,
		Transport: transportFunc(func(ctx context.Context, url, fn string, args map[string]any) (any, error) {
			mu.Lock()
			calls++
			mu.Unlock()
			return nil, fmt.Errorf("always busy: %w", compute.ErrDraining)
		}),
	})
	defer c.Close()
	reg := metrics.NewRegistry()
	c.Instrument(reg)
	if err := c.Register("w1", "http://w1", 1); err != nil {
		t.Fatal(err)
	}
	fut, err := c.Submit(context.Background(), "work", nil)
	if err != nil {
		t.Fatal(err)
	}
	_, err = fut.Get(context.Background())
	if err == nil || !strings.Contains(err.Error(), "failed after 3 attempts") {
		t.Fatalf("err = %v, want attempts-exhausted", err)
	}
	mu.Lock()
	if calls != 3 {
		t.Fatalf("transport called %d times, want 3", calls)
	}
	mu.Unlock()
	if got := counterValue(t, reg, "eoml_fleet_tasks_failed_total"); got != 1 {
		t.Fatalf("failed = %v, want 1", got)
	}
}

// TestFleetHeartbeatEviction drives eviction with a fake clock: a
// worker stops beating mid-task, Sweep requeues its lease to a live
// worker, and the zombie's late failure is discarded — the task
// completes exactly once.
func TestFleetHeartbeatEviction(t *testing.T) {
	clk := newFakeClock()
	block := make(chan struct{})
	c := NewCoordinator(Config{
		HeartbeatTimeout: 3 * time.Second,
		Clock:            clk.Now,
		Transport: transportFunc(func(ctx context.Context, url, fn string, args map[string]any) (any, error) {
			if url == "http://dead" {
				<-block // stuck until after the retry completes
				return nil, fmt.Errorf("connection reset")
			}
			return "ok", nil
		}),
	})
	defer c.Close()
	reg := metrics.NewRegistry()
	c.Instrument(reg)

	if err := c.Register("dead", "http://dead", 1); err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	fut, err := c.Submit(ctx, "work", nil)
	if err != nil {
		t.Fatal(err)
	}

	// The live worker joins and keeps beating; the dead one goes quiet.
	clk.Advance(2 * time.Second)
	if err := c.Register("live", "http://live", 1); err != nil {
		t.Fatal(err)
	}
	clk.Advance(2 * time.Second) // dead: 4s since beat; live: 2s
	c.Sweep()

	v, err := fut.Get(ctx)
	if err != nil {
		t.Fatalf("task after eviction: %v", err)
	}
	if v != "ok" {
		t.Fatalf("result = %v", v)
	}
	close(block) // release the zombie; its failure must be discarded
	c.Close()    // joins the zombie goroutine before we read counters

	if got := counterValue(t, reg, "eoml_fleet_workers_evicted_total"); got != 1 {
		t.Fatalf("evicted = %v, want 1", got)
	}
	if got := counterValue(t, reg, "eoml_fleet_tasks_completed_total"); got != 1 {
		t.Fatalf("completed = %v, want 1 (exactly-once)", got)
	}
	if got := counterValue(t, reg, "eoml_fleet_tasks_failed_total"); got != 0 {
		t.Fatalf("failed = %v, want 0", got)
	}
	ws := c.Workers()
	if len(ws) != 1 || ws[0].ID != "live" {
		t.Fatalf("workers after eviction = %+v", ws)
	}
}

// TestFleetStealExactlyOnce: an idle worker speculatively duplicates a
// straggler's lease; both copies finish, but the future resolves once
// and the completed counter says 1.
func TestFleetStealExactlyOnce(t *testing.T) {
	clk := newFakeClock()
	slowRelease := make(chan struct{})
	c := NewCoordinator(Config{
		HeartbeatTimeout: time.Hour, // no eviction in this test
		StealAfter:       5 * time.Second,
		Clock:            clk.Now,
		Transport: transportFunc(func(ctx context.Context, url, fn string, args map[string]any) (any, error) {
			if url == "http://slow" {
				select {
				case <-slowRelease:
					return "slow-ok", nil
				case <-ctx.Done():
					return nil, ctx.Err()
				}
			}
			return "fast-ok", nil
		}),
	})
	defer c.Close()
	reg := metrics.NewRegistry()
	c.Instrument(reg)

	if err := c.Register("slow", "http://slow", 1); err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	fut, err := c.Submit(ctx, "work", nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Register("fast", "http://fast", 1); err != nil {
		t.Fatal(err)
	}
	clk.Advance(10 * time.Second)
	c.Sweep() // lease is 10s old > StealAfter: duplicate onto fast

	v, err := fut.Get(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if v != "fast-ok" {
		t.Fatalf("result = %v, want the thief's", v)
	}
	close(slowRelease) // loser finishes; result must be discarded
	c.Close()

	if got := counterValue(t, reg, "eoml_fleet_tasks_stolen_total"); got != 1 {
		t.Fatalf("stolen = %v, want 1", got)
	}
	if got := counterValue(t, reg, "eoml_fleet_tasks_completed_total"); got != 1 {
		t.Fatalf("completed = %v, want 1 (exactly-once)", got)
	}
}

// recordingScaler captures hints.
type recordingScaler struct {
	mu     sync.Mutex
	out    []int
	retire [][]string
}

func (r *recordingScaler) ScaleOut(n int) {
	r.mu.Lock()
	r.out = append(r.out, n)
	r.mu.Unlock()
}

func (r *recordingScaler) ScaleIn(ids []string) {
	r.mu.Lock()
	r.retire = append(r.retire, ids)
	r.mu.Unlock()
}

// TestFleetScaleHints: backlog beyond capacity asks for scale-out;
// long-idle workers are named for retirement exactly once.
func TestFleetScaleHints(t *testing.T) {
	clk := newFakeClock()
	sc := &recordingScaler{}
	block := make(chan struct{})
	defer close(block)
	c := NewCoordinator(Config{
		HeartbeatTimeout: time.Hour,
		StealAfter:       -1, // disabled
		IdleRetireAfter:  30 * time.Second,
		Scaler:           sc,
		Clock:            clk.Now,
		Transport: transportFunc(func(ctx context.Context, url, fn string, args map[string]any) (any, error) {
			select {
			case <-block:
				return "ok", nil
			case <-ctx.Done():
				return nil, ctx.Err()
			}
		}),
	})
	defer c.Close()
	if err := c.Register("w1", "http://w1", 1); err != nil {
		t.Fatal(err)
	}
	if err := c.Register("idle", "http://idle", 1); err != nil {
		t.Fatal(err)
	}

	// Load: 4 tasks over 2 slots -> both leased, 2 pending, 0 free.
	ctx := context.Background()
	for i := 0; i < 4; i++ {
		if _, err := c.Submit(ctx, "work", nil); err != nil {
			t.Fatal(err)
		}
	}
	c.Sweep()
	sc.mu.Lock()
	if len(sc.out) != 1 || sc.out[0] != 2 {
		t.Fatalf("scale-out hints = %v, want [2]", sc.out)
	}
	sc.mu.Unlock()
}

// TestFleetIdleRetireHintOnce: an idle worker is named for retirement
// on one sweep, not re-nagged every sweep.
func TestFleetIdleRetireHintOnce(t *testing.T) {
	clk := newFakeClock()
	sc := &recordingScaler{}
	c := NewCoordinator(Config{
		HeartbeatTimeout: time.Hour,
		IdleRetireAfter:  30 * time.Second,
		Scaler:           sc,
		Clock:            clk.Now,
		Transport: transportFunc(func(ctx context.Context, url, fn string, args map[string]any) (any, error) {
			return "ok", nil
		}),
	})
	defer c.Close()
	if err := c.Register("idle", "http://idle", 1); err != nil {
		t.Fatal(err)
	}
	clk.Advance(time.Minute)
	c.Sweep()
	c.Sweep()
	sc.mu.Lock()
	defer sc.mu.Unlock()
	if len(sc.retire) != 1 || len(sc.retire[0]) != 1 || sc.retire[0][0] != "idle" {
		t.Fatalf("retire hints = %v, want one hint naming idle", sc.retire)
	}
}

// TestFleetSubmitAfterClose.
func TestFleetSubmitAfterClose(t *testing.T) {
	c := NewCoordinator(Config{
		Transport: transportFunc(func(ctx context.Context, url, fn string, args map[string]any) (any, error) {
			return "ok", nil
		}),
	})
	c.Close()
	if _, err := c.Submit(context.Background(), "work", nil); err == nil {
		t.Fatal("submit after close succeeded")
	}
}

// TestFleetCloseFailsPending: queued tasks with no worker resolve with
// an error instead of hanging their futures.
func TestFleetCloseFailsPending(t *testing.T) {
	c := NewCoordinator(Config{
		Transport: transportFunc(func(ctx context.Context, url, fn string, args map[string]any) (any, error) {
			return "ok", nil
		}),
	})
	fut, err := c.Submit(context.Background(), "work", nil) // no workers registered
	if err != nil {
		t.Fatal(err)
	}
	c.Close()
	if _, err := fut.Get(context.Background()); err == nil {
		t.Fatal("pending task's future resolved without error after Close")
	}
}

// TestFleetHeartbeatUnknownWorker: beats from an evicted worker are
// refused so the worker knows to re-register.
func TestFleetHeartbeatUnknownWorker(t *testing.T) {
	c := NewCoordinator(Config{})
	defer c.Close()
	if c.Heartbeat("ghost") {
		t.Fatal("heartbeat for unknown worker accepted")
	}
	if err := c.Register("w1", "http://w1", 1); err != nil {
		t.Fatal(err)
	}
	if !c.Heartbeat("w1") {
		t.Fatal("heartbeat for registered worker refused")
	}
}

// TestFleetStealRaceHammer exercises the steal/complete/requeue paths
// under -race: many tasks, aggressive stealing, concurrent sweeps.
// Every task must complete exactly once.
func TestFleetStealRaceHammer(t *testing.T) {
	const tasks = 120
	var mu sync.Mutex
	perTask := map[int]int{} // task n -> transport executions
	c := NewCoordinator(Config{
		HeartbeatTimeout: time.Hour,
		StealAfter:       time.Nanosecond, // everything outstanding is stealable
		Transport: transportFunc(func(ctx context.Context, url, fn string, args map[string]any) (any, error) {
			n := args["n"].(int)
			mu.Lock()
			perTask[n]++
			mu.Unlock()
			return n, nil
		}),
	})
	for i := 0; i < 4; i++ {
		if err := c.Register(fmt.Sprintf("w%d", i), fmt.Sprintf("http://w%d", i), 2); err != nil {
			t.Fatal(err)
		}
	}

	ctx := context.Background()
	var wg sync.WaitGroup
	stopSweeps := make(chan struct{})
	for s := 0; s < 3; s++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stopSweeps:
					return
				default:
					c.Sweep()
				}
			}
		}()
	}

	futs := make([]*Future, tasks)
	for i := 0; i < tasks; i++ {
		fut, err := c.Submit(ctx, "work", map[string]any{"n": i})
		if err != nil {
			t.Fatal(err)
		}
		futs[i] = fut
	}
	for i, fut := range futs {
		v, err := fut.Get(ctx)
		if err != nil {
			t.Fatalf("task %d: %v", i, err)
		}
		if v != i {
			t.Fatalf("task %d returned %v (cross-task result mixup)", i, v)
		}
	}
	close(stopSweeps)
	wg.Wait()
	c.Close()

	if got := c.completed.Load(); got != tasks {
		t.Fatalf("completed = %d, want %d (exactly-once delivery)", got, tasks)
	}
}
