package netcdf

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// Decoders in this repository sit behind a network archive and a shared
// filesystem; they must reject arbitrary garbage with an error, never a
// panic or a hang. These property tests feed random and mutated byte
// streams to the decoder.

func TestDecodeNeverPanicsOnRandomBytes(t *testing.T) {
	prop := func(seed int64, n uint16) (ok bool) {
		defer func() {
			if recover() != nil {
				ok = false
			}
		}()
		r := rand.New(rand.NewSource(seed))
		data := make([]byte, int(n)%4096)
		r.Read(data)
		_, _ = Decode(data)
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestDecodeNeverPanicsOnMutatedValidFile(t *testing.T) {
	f := New()
	if err := f.AddDim("tile", 3); err != nil {
		t.Fatal(err)
	}
	if _, err := f.AddFloat("v", []string{"tile"}, []float32{1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	if err := f.Attrs.SetString("title", "mutation target"); err != nil {
		t.Fatal(err)
	}
	valid, err := Encode(f)
	if err != nil {
		t.Fatal(err)
	}

	prop := func(seed int64) (ok bool) {
		defer func() {
			if recover() != nil {
				ok = false
			}
		}()
		r := rand.New(rand.NewSource(seed))
		data := append([]byte(nil), valid...)
		// Flip 1-4 random bytes.
		for i := 0; i < r.Intn(4)+1; i++ {
			data[r.Intn(len(data))] ^= byte(1 << r.Intn(8))
		}
		_, _ = Decode(data)
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestDecodeRejectsHugeClaimedSizes(t *testing.T) {
	// A header claiming a gigantic variable must error cleanly rather
	// than attempting a huge allocation. Construct a valid file and bump
	// a dimension length in the encoded header.
	f := New()
	if err := f.AddDim("n", 2); err != nil {
		t.Fatal(err)
	}
	if _, err := f.AddFloat("v", []string{"n"}, []float32{1, 2}); err != nil {
		t.Fatal(err)
	}
	data, err := Encode(f)
	if err != nil {
		t.Fatal(err)
	}
	// dim length lives at a fixed offset: magic(4) numrecs(4) tag(4)
	// count(4) namelen(4) name+pad(4) -> length at 24.
	data[24], data[25], data[26], data[27] = 0x7F, 0xFF, 0xFF, 0xFF
	if _, err := Decode(data); err == nil {
		t.Fatal("huge dimension accepted")
	}
}
